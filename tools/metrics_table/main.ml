(* Regenerates the exposition mapping table in docs/OBSERVABILITY.md from
   the live registry, so the documented names can never drift from the
   mangling Report.Prom_text actually performs:

     dune exec tools/metrics_table/main.exe

   and paste the output over the table in the docs. Call-time
   registrations (spans, derived latency histograms) are materialized by
   running one explain through each entry point first, mirroring the
   runtime @metrics-lint. *)

open Whynot

let () =
  let p0 = Pattern.Parse.pattern_exn "SEQ(A, B) WITHIN 20" in
  let t = Events.Tuple.of_list [ ("A", 0); ("B", 50) ] in
  ignore (Explain.Pipeline.explain [ p0 ] t);
  ignore (Cep.Bulk.explain_trace [ p0 ] (Events.Trace.of_list [ ("t0", t) ]));
  let detector = Cep.Detector.create [ p0 ] in
  ignore
    (Cep.Detector.feed detector
       { Cep.Detector.event = "A"; timestamp = 0; tag = "x" });
  let stream = Cep.Stream.create [ p0 ] in
  ignore (Cep.Stream.feed stream ~key:"k" "A" 0);
  (* a 4-shard pool registers the per-shard serve.shard.<k>.* series; the
     docs enumerate exactly these four (higher shard counts follow the
     same pattern) *)
  let service = Serve.Service.create ~shards:4 [ p0 ] in
  ignore (Serve.Service.metrics_body service);
  ignore (Obs.counter "serve.shed");
  ignore (Obs.counter "serve.keepalive.reuses");
  (* the request-path latency decomposition registers at first request *)
  List.iter
    (fun name ->
      Obs.observe_span ~hist_buckets:Serve.Http.latency_buckets name ~ns:0)
    [ "serve.request.queue_wait"; "serve.shard.service"; "serve.request.write" ];
  let snap = Obs.snapshot () in
  let keep (name, _) = not (String.starts_with ~prefix:"test." name) in
  let row source kind exposition =
    Printf.printf "| `%s` | %s | %s |\n" source kind exposition
  in
  print_string "| source metric | kind | exposition series |\n";
  print_string "|---|---|---|\n";
  let mangle = Report.Prom_text.mangle in
  List.iter
    (fun (name, _) -> row name "counter" (Printf.sprintf "`%s`" (mangle name)))
    (List.filter keep snap.Obs.counters);
  List.iter
    (fun (name, _) -> row name "gauge" (Printf.sprintf "`%s`" (mangle name)))
    (List.filter keep snap.Obs.gauges);
  List.iter
    (fun (name, _) ->
      row name "histogram"
        (Printf.sprintf "`%s` (`_bucket{le=...}`, `_sum`, `_count`)"
           (mangle name)))
    (List.filter keep snap.Obs.histograms);
  List.iter
    (fun (name, _) ->
      row name "span"
        (Printf.sprintf "`%s%s` (`_sum`, `_count`), `%s%s`" (mangle name)
           Report.Prom_text.span_suffix (mangle name)
           Report.Prom_text.span_max_suffix))
    (List.filter keep snap.Obs.spans)
