(* The rule engine: each rule is one Ast_iterator pass over a parsed
   implementation. Rules are purely syntactic (no typing environment), so
   each one is scoped to where its syntactic signal is reliable — see
   docs/STATIC_ANALYSIS.md for the catalog and the reasoning. *)

open Parsetree

type ctx = {
  file : string;  (** repo-relative, '/'-separated *)
  config : Config.t;
  add : rule:string -> Location.t -> string -> unit;
  add_metric : kind:string -> string -> Location.t -> unit;
      (** metric/trace/log-name registration sites, aggregated by the
          engine; [kind] is the registrar ("counter", "with_span", ...) or
          "trace"/"log"/"catalog" for names with no exposition form, and
          decides which derived exposition names the docs must carry *)
}

(* --- shared helpers --------------------------------------------------- *)

let flatten lid =
  match Longident.flatten lid with
  | parts -> parts
  | exception Misc.Fatal_error -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

let contains_ident structure_or_expr_iter pred =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match ident_path e with
          | Some path when pred path -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  structure_or_expr_iter it;
  !found

let expr_contains_ident e pred = contains_ident (fun it -> it.expr it e) pred

let rec last = function [ x ] -> Some x | _ :: rest -> last rest | [] -> None

let ends_with path suffix =
  let n = List.length path and k = List.length suffix in
  n >= k
  && List.filteri (fun i _ -> i >= n - k) path = suffix

(* --- checked-arith ---------------------------------------------------- *)

let arith_ops = [ "+"; "-"; "*" ]

let rec small_int_literal max_lit e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> (
      match int_of_string_opt s with
      | Some v -> abs v <= max_lit
      | None -> false)
  | Pexp_constraint (e, _) -> small_int_literal max_lit e
  | _ -> false

let checked_arith ctx structure =
  if Config.under_any ctx.config.checked_arith_paths ctx.file then begin
    let max_lit = ctx.config.checked_arith_max_literal in
    let flag loc what =
      ctx.add ~rule:"checked-arith" loc
        (what
       ^ " on int in an overflow-critical module — use Numeric.Checked, a \
          saturating helper, or annotate the line with (* check: idx *) and \
          a reason")
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            match e.pexp_desc with
            | Pexp_apply
                ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                  args ) when List.mem op arith_ops || op = "~-" ->
                (match (op, args) with
                | _, [ (_, a); (_, b) ] when List.mem op arith_ops ->
                    if
                      not (small_int_literal max_lit a || small_int_literal max_lit b)
                    then flag e.pexp_loc (Printf.sprintf "bare (%s)" op)
                | "~-", [ (_, a) ] ->
                    if not (small_int_literal max_lit a) then
                      flag e.pexp_loc "bare unary negation"
                | _ ->
                    (* over/under-applied operator: flag conservatively *)
                    flag e.pexp_loc (Printf.sprintf "bare (%s)" op));
                (* the callee ident is the operator itself: recurse into the
                   arguments only *)
                List.iter (fun (_, a) -> it.expr it a) args
            | Pexp_ident { txt = Longident.Lident op; _ }
              when List.mem op arith_ops ->
                flag e.pexp_loc
                  (Printf.sprintf "bare (%s) passed as a function" op)
            | _ -> Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it structure
  end

(* --- poly-compare ----------------------------------------------------- *)

(* A syntactically structured operand: comparing it with polymorphic (=) is
   either unsound (Map/Set payloads), allocation-happy, or clearer as a
   match. Nullary constructors (None, [], Eof) are immediate and fine. *)
let structured_literal e =
  match e.pexp_desc with
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ -> true
  | Pexp_record _ -> true
  | Pexp_array _ -> true
  | _ -> false

let defines_toplevel_compare structure =
  List.exists
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.exists
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = "compare"; _ } -> true
              | _ -> false)
            bindings
      | _ -> false)
    structure

let poly_compare ctx structure =
  let local_compare = defines_toplevel_compare structure in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                [ (_, a); (_, b) ] )
            when structured_literal a || structured_literal b ->
              ctx.add ~rule:"poly-compare" e.pexp_loc
                (Printf.sprintf
                   "polymorphic (%s) against a structured value — match on \
                    the constructor or use a typed equal (Option.equal, \
                    Ast.equal, Events.Tuple.equal, ...)"
                   op)
          | Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ } ->
              ctx.add ~rule:"poly-compare" e.pexp_loc
                (Printf.sprintf
                   "physical equality (%s) — almost never what event/pattern \
                    code means; use (=) on immediates or a typed equal"
                   op)
          | Pexp_ident { txt = Longident.Lident "compare"; _ }
            when not local_compare ->
              ctx.add ~rule:"poly-compare" e.pexp_loc
                "polymorphic compare — use a monomorphic comparator \
                 (Int.compare, String.compare, Ast.compare, ...)"
          | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Stdlib", (("compare" | "=" | "<>" | "==" | "!=") as op)); _ } ->
              ctx.add ~rule:"poly-compare" e.pexp_loc
                (Printf.sprintf
                   "Stdlib.(%s) is polymorphic — use a monomorphic \
                    comparator or typed equal"
                   op)
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

(* --- exn-swallow ------------------------------------------------------ *)

let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all p
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

(* A handler body that re-raises, converts to a new exception, exits, or
   records the failure to Obs/Logs is deliberate; anything else silently
   swallows whatever flew by (including asserts and Out_of_memory). *)
let handler_accounted body =
  expr_contains_ident body (fun path ->
      match last path with
      | Some
          ( "raise" | "raise_notrace" | "raise_with_backtrace" | "reraise"
          | "failwith" | "invalid_arg" | "exit" ) ->
          true
      | _ -> List.exists (fun c -> c = "Obs" || c = "Logs") path)

let exn_swallow ctx structure =
  let check_case ~kind case =
    let pat =
      match (kind, case.pc_lhs.ppat_desc) with
      | `Try, _ -> Some case.pc_lhs
      | `Match, Ppat_exception p -> Some p
      | `Match, _ -> None
    in
    match pat with
    | Some p when catch_all p && not (handler_accounted case.pc_rhs) ->
        ctx.add ~rule:"exn-swallow" case.pc_lhs.ppat_loc
          "catch-all exception handler that neither re-raises nor records \
           the failure (Obs counter / Logs) — swallowed asserts and \
           Out_of_memory corrupt silently"
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_try (_, cases) -> List.iter (check_case ~kind:`Try) cases
          | Pexp_match (_, cases) -> List.iter (check_case ~kind:`Match) cases
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

(* --- no-stdout -------------------------------------------------------- *)

let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes";
  ]

let no_stdout ctx structure =
  if
    Config.under_any ctx.config.no_stdout_deny ctx.file
    && not (Config.under_any ctx.config.no_stdout_allow ctx.file)
  then begin
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match ident_path e with
            | Some ([ p ] | [ "Stdlib"; p ]) when List.mem p print_fns ->
                ctx.add ~rule:"no-stdout" e.pexp_loc
                  (p
                 ^ ": stdout printing belongs to bin/ and lib/report — \
                    return a string or take a formatter/sink")
            | Some ([ "stdout" ] | [ "Stdlib"; "stdout" ]) ->
                ctx.add ~rule:"no-stdout" e.pexp_loc
                  "stdout handle used in library code — take an out_channel \
                   or a sink instead"
            | Some [ "Printf"; "printf" ] ->
                ctx.add ~rule:"no-stdout" e.pexp_loc
                  "Printf.printf prints to stdout — use sprintf into a \
                   sink, or move the printing to bin/ or lib/report"
            | Some [ "Format"; p ]
              when p = "printf" || p = "std_formatter"
                   || String.starts_with ~prefix:"print_" p ->
                ctx.add ~rule:"no-stdout" e.pexp_loc
                  ("Format." ^ p
                 ^ " targets stdout — take a formatter argument instead")
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.structure it structure
  end

(* --- domain-safety ---------------------------------------------------- *)

let creators = [ [ "Hashtbl"; "create" ]; [ "Queue"; "create" ]; [ "Stack"; "create" ]; [ "Buffer"; "create" ] ]

let mutators =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Buffer", [ "add_string"; "add_char"; "add_bytes"; "clear"; "reset" ]);
  ]

let rec binding_body e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> binding_body e
  | _ -> e

let domain_safety ctx structure =
  let spawns =
    contains_ident
      (fun it -> it.structure it structure)
      (fun path -> ends_with path [ "Domain"; "spawn" ])
  in
  let is_root = spawns || List.mem ctx.file ctx.config.domain_roots in
  if is_root then begin
    (* module-level mutable containers: refs and Hashtbl/Queue/... values *)
    let toplevel_mutables =
      List.concat_map
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.filter_map
                (fun vb ->
                  match (vb.pvb_pat.ppat_desc, (binding_body vb.pvb_expr).pexp_desc) with
                  | Ppat_var { txt; _ }, Pexp_apply (f, _) -> (
                      match ident_path f with
                      | Some [ "ref" ] | Some [ "Stdlib"; "ref" ] -> Some txt
                      | Some path when List.mem path creators -> Some txt
                      | _ -> None)
                  | _ -> None)
                bindings
          | _ -> [])
        structure
    in
    let is_toplevel_mutable e =
      match ident_path e with
      | Some [ name ] -> List.mem name toplevel_mutables
      | _ -> false
    in
    let flag loc name =
      ctx.add ~rule:"domain-safety" loc
        (Printf.sprintf
           "module-level mutable %s mutated in a Domain-parallel module — \
            use Atomic, or do the access under a Mutex taken in the same \
            binding"
           name)
    in
    let check_item item =
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              (* An item that takes a Mutex manages its own exclusion; its
                 accesses are deliberate. *)
              let locks =
                expr_contains_ident vb.pvb_expr (fun path ->
                    ends_with path [ "Mutex"; "lock" ])
              in
              if not locks then begin
                let it =
                  {
                    Ast_iterator.default_iterator with
                    expr =
                      (fun it e ->
                        (match e.pexp_desc with
                        | Pexp_apply
                            ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                              (_, target) :: _ )
                          when is_toplevel_mutable target ->
                            flag e.pexp_loc "ref"
                        | Pexp_apply
                            ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("incr" | "decr"); _ }; _ },
                              [ (_, target) ] )
                          when is_toplevel_mutable target ->
                            flag e.pexp_loc "ref"
                        | Pexp_apply (f, (_, target) :: _)
                          when is_toplevel_mutable target -> (
                            match ident_path f with
                            | Some [ m; fn ]
                              when List.exists
                                     (fun (m', fns) -> m = m' && List.mem fn fns)
                                     mutators ->
                                flag e.pexp_loc (m ^ " value")
                            | _ -> ())
                        | _ -> ());
                        Ast_iterator.default_iterator.expr it e);
                  }
                in
                it.expr it vb.pvb_expr
              end)
            bindings
      | _ -> ()
    in
    List.iter check_item structure
  end

(* --- metrics-doc ------------------------------------------------------ *)

let metric_registrars =
  [
    "counter";
    "gauge";
    "histogram";
    "span";
    "with_span";
    "observe_span";
    "with_trace";
    "with_capture";
    "span_interval";
    "emit";
  ]

(* [Obs.Trace.*] names trace events / spans and [Obs.Log.emit] names log
   events — neither has an exposition-format series, so they collapse to
   the raw-only kinds "trace"/"log". [Obs.observe_span] records into the
   same span metric (and optional [.duration_us] histogram) as
   [Obs.with_span], so it shares that kind. Everything else keeps its
   registrar name; the engine derives the exposition names the docs must
   also carry (see [Engine.required_doc_names]). *)
let metric_kind path fn =
  if List.mem "Trace" path then "trace"
  else if List.mem "Log" path then "log"
  else if String.equal fn "with_trace" then "trace"
  else if String.equal fn "observe_span" then "with_span"
  else fn

let metrics_doc ctx structure =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some path
                when List.mem "Obs" path
                     && (match last path with
                        | Some fn -> List.mem fn metric_registrars
                        | None -> false) ->
                  let fn = Option.value ~default:"" (last path) in
                  let kind = metric_kind path fn in
                  let latency_histogram =
                    (* [Obs.with_span ~hist_buckets] registers a derived
                       [<name>.duration_us] histogram at call time; its
                       names must be documented like any other histogram. *)
                    String.equal kind "with_span"
                    && List.exists
                         (fun (lbl, _) ->
                           match lbl with
                           | Asttypes.Labelled "hist_buckets"
                           | Asttypes.Optional "hist_buckets" ->
                               true
                           | _ -> false)
                         args
                  in
                  List.iter
                    (fun (lbl, arg) ->
                      match (lbl, arg.pexp_desc) with
                      | ( Asttypes.Nolabel,
                          Pexp_constant (Pconst_string (name, _, _)) ) ->
                          ctx.add_metric ~kind name arg.pexp_loc;
                          if latency_histogram then
                            ctx.add_metric ~kind:"histogram"
                              (name ^ ".duration_us") arg.pexp_loc
                      | _ -> ())
                    args
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt = ("kind_names" | "event_names"); _ } ->
                      (* the Obs.Trace event-kind and Obs.Log event-type
                         catalogs: literal string lists; every member must
                         be documented too (raw names only) *)
                      let rec strings e =
                        match e.pexp_desc with
                        | Pexp_construct
                            ( { txt = Longident.Lident "::"; _ },
                              Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) ->
                            (match hd.pexp_desc with
                            | Pexp_constant (Pconst_string (s, _, _)) ->
                                ctx.add_metric ~kind:"catalog" s hd.pexp_loc
                            | _ -> ());
                            strings tl
                        | _ -> ()
                      in
                      strings vb.pvb_expr
                  | _ -> ())
                bindings
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it item);
    }
  in
  it.structure it structure

(* --- entry point ------------------------------------------------------ *)

(* The per-file syntactic passes, in execution order. The interprocedural
   lock rules live in {!Locks} and run as a whole-tree second phase in the
   engine, not here. *)
let passes =
  [
    ("checked-arith", checked_arith);
    ("poly-compare", poly_compare);
    ("exn-swallow", exn_swallow);
    ("no-stdout", no_stdout);
    ("domain-safety", domain_safety);
    ("metrics-doc", metrics_doc);
  ]

let check ?(time = fun _rule f -> f ()) ctx structure =
  List.iter
    (fun (rule, f) ->
      if Config.enabled ctx.config rule then time rule (fun () -> f ctx structure))
    passes
