(* A single finding. [file] is repo-relative with '/' separators; [line] is
   1-based, [col] 0-based (compiler convention, clickable in editors). *)

type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let of_location ~file ~rule ~severity ~message (loc : Location.t) =
  {
    file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    severity;
    message;
  }

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d [%s] %s: %s" d.file d.line d.col d.rule
    (severity_name d.severity) d.message

let to_json d =
  Whynot.Report.Json.Obj
    [
      ("file", Whynot.Report.Json.String d.file);
      ("line", Whynot.Report.Json.Int d.line);
      ("col", Whynot.Report.Json.Int d.col);
      ("rule", Whynot.Report.Json.String d.rule);
      ("severity", Whynot.Report.Json.String (severity_name d.severity));
      ("message", Whynot.Report.Json.String d.message);
    ]
