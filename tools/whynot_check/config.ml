(* Rule configuration. The checked-in tools/whynot_check/config.json is the
   source of truth for the repo; [default] mirrors it so the engine is usable
   (and testable) without any file. *)

module Json = Whynot.Report.Json

(* The rule catalog: id plus the one-line description that --list-rules and
   docs/STATIC_ANALYSIS.md show. The four lock-* rules plus
   condition-discipline run as one fused interprocedural pass (see
   {!Locks}); the rest are per-file syntactic passes. *)
let rule_table =
  [
    ( "domain-safety",
      "module-level mutable state in Domain-parallel modules must be Atomic \
       or mutated under a Mutex taken in the same binding" );
    ( "checked-arith",
      "bare int arithmetic in overflow-critical modules must use \
       Numeric.Checked, a saturating helper, or an annotated reason" );
    ( "poly-compare",
      "no polymorphic (=)/compare on structured values and no physical \
       equality — use typed comparators" );
    ( "exn-swallow",
      "catch-all exception handlers must re-raise or record the failure \
       (Obs/Logs)" );
    ( "no-stdout",
      "library code must not print to stdout — return a string or take a \
       formatter/sink" );
    ( "metrics-doc",
      "every registered metric/trace/log name (and its exposition form) \
       must appear in the observability catalog" );
    ( "lock-balance",
      "every Mutex.lock is released on all paths, including exceptional \
       ones (Fun.protect / match-exception / straight-line unlock)" );
    ( "lock-order",
      "nested lock acquisitions follow the single global order pinned in \
       config.json (lock_order); conflicting pairs are deadlock findings" );
    ( "blocking-under-lock",
      "no Unix I/O, Domain.join, Thread.delay or Shard.submit while \
       holding a mutex; Condition.wait on the held mutex is the only \
       sanctioned blocking point" );
    ( "condition-discipline",
      "each condition variable pairs with exactly one mutex; wait holds \
       that mutex and sits in a while loop" );
    ( "stale-suppression",
      "every inline (* check: *) comment must still suppress a live \
       finding — stale ones are findings themselves" );
  ]

let all_rules = List.map fst rule_table

let describe rule =
  match List.assoc_opt rule rule_table with Some d -> d | None -> ""

(* The fused interprocedural pass ({!Locks}) runs iff any of these is on. *)
let lock_rules =
  [ "lock-balance"; "lock-order"; "blocking-under-lock"; "condition-discipline" ]

type t = {
  rules : string list;  (** enabled rule ids *)
  domain_roots : string list;
      (** files treated as Domain-parallel even without a [Domain.spawn]
          call of their own (shared-state modules used from spawned code) *)
  checked_arith_paths : string list;
      (** directories whose int arithmetic must be checked/annotated *)
  checked_arith_max_literal : int;
      (** [e + k] with a literal |k| <= this is exempt (index arithmetic) *)
  no_stdout_deny : string list;  (** directories where stdout is banned... *)
  no_stdout_allow : string list;  (** ...minus these carve-outs *)
  docs_path : string;  (** metric-name catalog for metrics-doc *)
  lock_order : string list;
      (** the single global acquisition order, outermost first; a lock
          class is "<file-basename>.<mutex identifier>" *)
  lock_multi_acquire : string list;
      (** lock classes where acquiring several instances of the same class
          in one batch is sanctioned (e.g. shard.sm ascending admission) *)
}

let default =
  {
    rules = all_rules;
    domain_roots =
      [
        "lib/obs.ml";
        "lib/serve/http.ml";
        "lib/serve/shard.ml";
        "lib/serve/service.ml";
        "bench/serve_load.ml";
        "bin/whynot_cli.ml";
      ];
    checked_arith_paths =
      [ "lib/tcn"; "lib/lp"; "lib/cep/plan.ml"; "lib/cep/compile.ml" ];
    checked_arith_max_literal = 64;
    no_stdout_deny = [ "lib" ];
    no_stdout_allow = [ "lib/report" ];
    docs_path = "docs/OBSERVABILITY.md";
    lock_order =
      [
        "http.qm"; "http.cm"; "shard.sm"; "shard.cm"; "obs.rt_lock";
        "obs.ring_lock"; "obs.lock";
      ];
    lock_multi_acquire = [ "shard.sm" ];
  }

let enabled t rule = List.mem rule t.rules

let lock_analysis_enabled t = List.exists (enabled t) lock_rules

let string_list ?(default = []) name json =
  match Json.member name json with
  | Some (Json.List items) ->
      List.filter_map Json.to_string_opt items
  | _ -> default

let of_json json =
  let d = default in
  {
    rules = string_list ~default:d.rules "rules" json;
    domain_roots = string_list ~default:d.domain_roots "domain_roots" json;
    checked_arith_paths =
      string_list ~default:d.checked_arith_paths "checked_arith_paths" json;
    checked_arith_max_literal =
      (match Json.member "checked_arith_max_literal" json with
      | Some v -> Option.value ~default:d.checked_arith_max_literal (Json.to_int v)
      | None -> d.checked_arith_max_literal);
    no_stdout_deny = string_list ~default:d.no_stdout_deny "no_stdout_deny" json;
    no_stdout_allow =
      string_list ~default:d.no_stdout_allow "no_stdout_allow" json;
    docs_path =
      (match Json.member "docs_path" json with
      | Some v -> Option.value ~default:d.docs_path (Json.to_string_opt v)
      | None -> d.docs_path);
    lock_order = string_list ~default:d.lock_order "lock_order" json;
    lock_multi_acquire =
      string_list ~default:d.lock_multi_acquire "lock_multi_acquire" json;
  }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Ok json -> Ok (of_json json)
      | Error msg -> Error (path ^ ": " ^ msg))

(* [file] is repo-relative with '/' separators. *)
let under dir file =
  file = dir || String.starts_with ~prefix:(dir ^ "/") file

let under_any dirs file = List.exists (fun d -> under d file) dirs
