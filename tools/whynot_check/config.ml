(* Rule configuration. The checked-in tools/whynot_check/config.json is the
   source of truth for the repo; [default] mirrors it so the engine is usable
   (and testable) without any file. *)

module Json = Whynot.Report.Json

let all_rules =
  [
    "domain-safety";
    "checked-arith";
    "poly-compare";
    "exn-swallow";
    "no-stdout";
    "metrics-doc";
  ]

type t = {
  rules : string list;  (** enabled rule ids *)
  domain_roots : string list;
      (** files treated as Domain-parallel even without a [Domain.spawn]
          call of their own (shared-state modules used from spawned code) *)
  checked_arith_paths : string list;
      (** directories whose int arithmetic must be checked/annotated *)
  checked_arith_max_literal : int;
      (** [e + k] with a literal |k| <= this is exempt (index arithmetic) *)
  no_stdout_deny : string list;  (** directories where stdout is banned... *)
  no_stdout_allow : string list;  (** ...minus these carve-outs *)
  docs_path : string;  (** metric-name catalog for metrics-doc *)
}

let default =
  {
    rules = all_rules;
    domain_roots =
      [
        "lib/obs.ml";
        "lib/serve/http.ml";
        "lib/serve/shard.ml";
        "lib/serve/service.ml";
      ];
    checked_arith_paths =
      [ "lib/tcn"; "lib/lp"; "lib/cep/plan.ml"; "lib/cep/compile.ml" ];
    checked_arith_max_literal = 64;
    no_stdout_deny = [ "lib" ];
    no_stdout_allow = [ "lib/report" ];
    docs_path = "docs/OBSERVABILITY.md";
  }

let enabled t rule = List.mem rule t.rules

let string_list ?(default = []) name json =
  match Json.member name json with
  | Some (Json.List items) ->
      List.filter_map Json.to_string_opt items
  | _ -> default

let of_json json =
  let d = default in
  {
    rules = string_list ~default:d.rules "rules" json;
    domain_roots = string_list ~default:d.domain_roots "domain_roots" json;
    checked_arith_paths =
      string_list ~default:d.checked_arith_paths "checked_arith_paths" json;
    checked_arith_max_literal =
      (match Json.member "checked_arith_max_literal" json with
      | Some v -> Option.value ~default:d.checked_arith_max_literal (Json.to_int v)
      | None -> d.checked_arith_max_literal);
    no_stdout_deny = string_list ~default:d.no_stdout_deny "no_stdout_deny" json;
    no_stdout_allow =
      string_list ~default:d.no_stdout_allow "no_stdout_allow" json;
    docs_path =
      (match Json.member "docs_path" json with
      | Some v -> Option.value ~default:d.docs_path (Json.to_string_opt v)
      | None -> d.docs_path);
  }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Ok json -> Ok (of_json json)
      | Error msg -> Error (path ^ ": " ^ msg))

(* [file] is repo-relative with '/' separators. *)
let under dir file =
  file = dir || String.starts_with ~prefix:(dir ^ "/") file

let under_any dirs file = List.exists (fun d -> under d file) dirs
