(* Driver: parse every .ml under the roots with compiler-libs, run the rule
   passes, resolve inline suppressions and the baseline, and aggregate the
   cross-file metrics-doc check. *)

module Json = Whynot.Report.Json

type metric_site = {
  m_name : string;
  m_kind : string;
      (* registrar name ("counter", "with_span", ...) or "trace"/"log"/
         "catalog" for names with no exposition-format series *)
  m_file : string;
  m_loc : Location.t;
}

type file_result = {
  diags : Diag.t list;
  metrics : metric_site list;
}

type result = {
  findings : Diag.t list;  (** after suppressions and baseline, sorted *)
  suppressed : Diag.t list;  (** dropped by an inline (* check: *) comment *)
  baselined : Diag.t list;  (** dropped by a baseline entry *)
  stale_baseline : Baseline.entry list;
  errors : string list;  (** IO / parse failures — infrastructure, not findings *)
  files_scanned : int;
}

(* Parse and check one compilation unit given as source text. Returns raw
   findings (suppressions already applied — they are per-line properties of
   the source) and the metric registration sites for aggregation. *)
let check_source ~config ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | exception exn ->
      let msg =
        match exn with
        | Syntaxerr.Error _ -> "syntax error"
        | exn -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: cannot parse: %s" filename msg)
  | structure ->
      let suppressions = Suppress.scan source in
      let raw = ref [] and suppressed = ref [] and metrics = ref [] in
      let add ~rule loc message =
        let d =
          Diag.of_location ~file:filename ~rule ~severity:Diag.Error ~message loc
        in
        if Suppress.suppresses suppressions ~line:d.Diag.line ~rule then
          suppressed := d :: !suppressed
        else raw := d :: !raw
      in
      let add_metric ~kind name loc =
        metrics :=
          { m_name = name; m_kind = kind; m_file = filename; m_loc = loc }
          :: !metrics
      in
      let ctx = { Rules.file = filename; config; add; add_metric } in
      Rules.check ctx structure;
      Ok ({ diags = List.rev !raw; metrics = List.rev !metrics }, List.rev !suppressed)

(* The metrics-doc aggregation: every registered metric / trace / log name
   must appear (as a substring, same as the runtime @metrics-lint) in the
   docs catalog — and for metrics with a Prometheus exposition form, so
   must the exposition name(s) {!Report.Prom_text} derives, keeping the
   /metrics surface documented end to end. [docs = None] means the catalog
   could not be read — reported as an infrastructure error by the caller,
   not here. *)
let required_doc_names m =
  let mangled = Whynot.Report.Prom_text.mangle m.m_name in
  match m.m_kind with
  | "counter" | "gauge" | "histogram" -> [ m.m_name; mangled ]
  | "span" | "with_span" ->
      [ m.m_name; mangled ^ Whynot.Report.Prom_text.span_suffix ]
  | _ -> [ m.m_name ]

let missing_metric_diags ~docs metrics =
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  metrics
  |> List.concat_map (fun m ->
         if String.starts_with ~prefix:"test." m.m_name then []
         else
           required_doc_names m
           |> List.filter (fun name -> not (contains docs name))
           |> List.map (fun name ->
                  let derived =
                    if String.equal name m.m_name then ""
                    else Printf.sprintf " (exposition name of %S)" m.m_name
                  in
                  Diag.of_location ~file:m.m_file ~rule:"metrics-doc"
                    ~severity:Diag.Error
                    ~message:
                      (Printf.sprintf
                         "metric/trace/log name %S%s is not documented in \
                          the observability catalog — add it to \
                          docs/OBSERVABILITY.md"
                         name derived)
                    m.m_loc))

let list_ml_files roots =
  let files = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.iter (fun entry ->
               if not (String.starts_with ~prefix:"." entry || entry = "_build")
               then walk (Filename.concat path entry))
    | false -> if Filename.check_suffix path ".ml" then files := path :: !files
    | exception Sys_error _ -> ()
  in
  List.iter walk roots;
  List.rev !files

let run ~config ?(baseline = Baseline.empty) ?docs roots =
  let files = list_ml_files roots in
  let errors = ref [] in
  let docs_text =
    match docs with
    | Some text -> Some text
    | None -> (
        match In_channel.with_open_text config.Config.docs_path In_channel.input_all with
        | text -> Some text
        | exception Sys_error msg ->
            if Config.enabled config "metrics-doc" then
              errors := ("metrics-doc: cannot read docs catalog: " ^ msg) :: !errors;
            None)
  in
  let per_file =
    List.filter_map
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg ->
            errors := msg :: !errors;
            None
        | source -> (
            match check_source ~config ~filename:path source with
            | Ok pair -> Some pair
            | Error msg ->
                errors := msg :: !errors;
                None))
      files
  in
  let diags = List.concat_map (fun (fr, _) -> fr.diags) per_file in
  let suppressed = List.concat_map (fun (_, s) -> s) per_file in
  let metrics = List.concat_map (fun (fr, _) -> fr.metrics) per_file in
  let metric_diags =
    match docs_text with
    | Some docs when Config.enabled config "metrics-doc" ->
        missing_metric_diags ~docs metrics
    | _ -> []
  in
  let findings, baselined, stale_baseline =
    Baseline.apply baseline (diags @ metric_diags)
  in
  {
    findings = List.sort Diag.compare findings;
    suppressed = List.sort Diag.compare suppressed;
    baselined = List.sort Diag.compare baselined;
    stale_baseline;
    errors = List.rev !errors;
    files_scanned = List.length files;
  }

(* Exit-code gating: 0 clean, 1 findings, 2 infrastructure (IO/parse). *)
let gate r =
  if r.errors <> [] then 2
  else if List.exists (fun d -> d.Diag.severity = Diag.Error) r.findings then 1
  else 0

let summary_json r =
  let count rule =
    List.length (List.filter (fun d -> d.Diag.rule = rule) r.findings)
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("files_scanned", Json.Int r.files_scanned);
      ("findings", Json.List (List.map Diag.to_json r.findings));
      ("suppressed", Json.List (List.map Diag.to_json r.suppressed));
      ("baselined", Json.List (List.map Diag.to_json r.baselined));
      ( "stale_baseline",
        Json.List
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("file", Json.String e.file);
                   ("rule", Json.String e.rule);
                   ( "line",
                     match e.line with Some l -> Json.Int l | None -> Json.Null );
                   ("reason", Json.String e.reason);
                 ])
             r.stale_baseline) );
      ("errors", Json.List (List.map (fun e -> Json.String e) r.errors));
      ( "summary",
        Json.Obj
          (List.map (fun rule -> (rule, Json.Int (count rule))) Config.all_rules)
      );
      ("exit_code", Json.Int (gate r));
    ]
