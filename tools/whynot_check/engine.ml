(* Driver: parse every .ml under the roots with compiler-libs, run the
   per-file rule passes, then the whole-tree interprocedural lock analysis
   ({!Locks}), resolve inline suppressions / stale suppressions / the
   baseline, and aggregate the cross-file metrics-doc check. *)

module Json = Whynot.Report.Json

type metric_site = {
  m_name : string;
  m_kind : string;
      (* registrar name ("counter", "with_span", ...) or "trace"/"log"/
         "catalog" for names with no exposition-format series *)
  m_file : string;
  m_loc : Location.t;
}

type file_result = {
  diags : Diag.t list;
  metrics : metric_site list;
}

type result = {
  findings : Diag.t list;  (** after suppressions and baseline, sorted *)
  suppressed : Diag.t list;  (** dropped by an inline (* check: *) comment *)
  baselined : Diag.t list;  (** dropped by a baseline entry *)
  stale_baseline : Baseline.entry list;
  errors : string list;  (** IO / parse failures — infrastructure, not findings *)
  files_scanned : int;
  files_analyzed : int;  (** files that parsed and went through the rules *)
  timings : (string * float) list;
      (** wall-time (seconds) per rule pass; the four lock rules run fused
          as one interprocedural pass, reported under "lock-discipline" *)
  lock_pairs : (string * string * string) list;
      (** observed acquisition pairs (outer, inner, path) — the raw
          evidence behind lock-order, exposed for reports and tests *)
}

(* one parsed compilation unit, carried across both analysis phases so the
   lock diags resolve against the same suppression table (which also
   tracks per-comment usage for stale-suppression) *)
type parsed = {
  u_file : string;
  u_structure : Parsetree.structure;
  u_suppress : Suppress.t;
  mutable u_diags : Diag.t list;
  mutable u_suppressed : Diag.t list;
  mutable u_metrics : metric_site list;
}

let parse_unit ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  (* check: swallow - parse failure becomes an infrastructure error (exit 2) *)
  | exception exn ->
      let msg =
        match exn with
        | Syntaxerr.Error _ -> "syntax error"
        | exn -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: cannot parse: %s" filename msg)
  | structure ->
      Ok
        {
          u_file = filename;
          u_structure = structure;
          u_suppress = Suppress.scan source;
          u_diags = [];
          u_suppressed = [];
          u_metrics = [];
        }

(* run the per-file syntactic rules on one parsed unit *)
let run_file_rules ~config ~time u =
  let raw = ref [] and suppressed = ref [] and metrics = ref [] in
  let add ~rule loc message =
    let d =
      Diag.of_location ~file:u.u_file ~rule ~severity:Diag.Error ~message loc
    in
    if Suppress.suppresses u.u_suppress ~line:d.Diag.line ~rule then
      suppressed := d :: !suppressed
    else raw := d :: !raw
  in
  let add_metric ~kind name loc =
    metrics :=
      { m_name = name; m_kind = kind; m_file = u.u_file; m_loc = loc }
      :: !metrics
  in
  let ctx = { Rules.file = u.u_file; config; add; add_metric } in
  Rules.check ~time ctx u.u_structure;
  u.u_diags <- List.rev !raw;
  u.u_suppressed <- List.rev !suppressed;
  u.u_metrics <- List.rev !metrics

(* Parse and check one compilation unit given as source text — the
   per-file syntactic rules only (the interprocedural lock rules need the
   whole tree; see [analyze_sources]). Returns raw findings (suppressions
   already applied — they are per-line properties of the source) and the
   metric registration sites for aggregation. *)
let check_source ~config ~filename source =
  match parse_unit ~filename source with
  | Error msg -> Error msg
  | Ok u ->
      run_file_rules ~config ~time:(fun _ f -> f ()) u;
      Ok ({ diags = u.u_diags; metrics = u.u_metrics }, u.u_suppressed)

(* The metrics-doc aggregation: every registered metric / trace / log name
   must appear (as a substring, same as the runtime @metrics-lint) in the
   docs catalog — and for metrics with a Prometheus exposition form, so
   must the exposition name(s) {!Report.Prom_text} derives, keeping the
   /metrics surface documented end to end. [docs = None] means the catalog
   could not be read — reported as an infrastructure error by the caller,
   not here. *)
let required_doc_names m =
  let mangled = Whynot.Report.Prom_text.mangle m.m_name in
  match m.m_kind with
  | "counter" | "gauge" | "histogram" -> [ m.m_name; mangled ]
  | "span" | "with_span" ->
      [ m.m_name; mangled ^ Whynot.Report.Prom_text.span_suffix ]
  | _ -> [ m.m_name ]

let missing_metric_diags ~docs metrics =
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  metrics
  |> List.concat_map (fun m ->
         if String.starts_with ~prefix:"test." m.m_name then []
         else
           required_doc_names m
           |> List.filter (fun name -> not (contains docs name))
           |> List.map (fun name ->
                  let derived =
                    if String.equal name m.m_name then ""
                    else Printf.sprintf " (exposition name of %S)" m.m_name
                  in
                  Diag.of_location ~file:m.m_file ~rule:"metrics-doc"
                    ~severity:Diag.Error
                    ~message:
                      (Printf.sprintf
                         "metric/trace/log name %S%s is not documented in \
                          the observability catalog — add it to \
                          docs/OBSERVABILITY.md"
                         name derived)
                    m.m_loc))

let list_ml_files roots =
  let files = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | true ->
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.iter (fun entry ->
               if not (String.starts_with ~prefix:"." entry || entry = "_build")
               then walk (Filename.concat path entry))
    | false -> if Filename.check_suffix path ".ml" then files := path :: !files
    | exception Sys_error _ -> ()
  in
  List.iter walk roots;
  List.rev !files

(* The full pipeline over already-read sources. [docs = None] skips the
   metrics-doc aggregation (used by fixture tests); [run] below resolves
   the docs catalog from the config and reports read failures. *)
let analyze_read ~config ?docs ~errors ~files_scanned sources =
  let errors = ref (List.rev errors) in
  let timings : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let time rule f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt timings rule) in
    Hashtbl.replace timings rule (prev +. dt)
  in
  let units =
    List.filter_map
      (fun (filename, source) ->
        match parse_unit ~filename source with
        | Ok u -> Some u
        | Error msg ->
            errors := msg :: !errors;
            None)
      sources
  in
  List.iter (fun u -> run_file_rules ~config ~time u) units;
  (* second phase: the interprocedural lock analysis over the whole tree,
     with its findings resolved against the same per-file suppression
     tables *)
  let lock_suppressed = ref [] and lock_kept = ref [] and lock_pairs = ref [] in
  (if Config.lock_analysis_enabled config then
     time "lock-discipline" (fun () ->
         let structures = List.map (fun u -> (u.u_file, u.u_structure)) units in
         let diags, facts = Locks.analyze ~config structures in
         lock_pairs :=
           List.map (fun f -> (f.Locks.p_outer, f.Locks.p_inner, f.Locks.p_path)) facts;
         let table_for file =
           List.find_opt (fun u -> String.equal u.u_file file) units
         in
         List.iter
           (fun (d : Diag.t) ->
             match table_for d.Diag.file with
             | Some u
               when Suppress.suppresses u.u_suppress ~line:d.Diag.line
                      ~rule:d.Diag.rule ->
                 lock_suppressed := d :: !lock_suppressed
             | _ -> lock_kept := d :: !lock_kept)
           diags));
  (* stale suppressions: every inline comment must have matched something
     above; gated on its rule id so restricted --rules runs (which see
     only a subset of findings) do not mis-flag live comments *)
  let stale_suppression_diags =
    if Config.enabled config "stale-suppression" then
      List.concat_map
        (fun u ->
          Suppress.stale u.u_suppress
          |> List.map (fun (c : Suppress.comment) ->
                 {
                   Diag.file = u.u_file;
                   line = c.Suppress.c_line;
                   col = 0;
                   rule = "stale-suppression";
                   severity = Diag.Error;
                   message =
                     Printf.sprintf
                       "stale suppression (* check: %s *) — it no longer \
                        suppresses any finding; remove the comment"
                       (String.concat ", " c.Suppress.c_tokens);
                 }))
        units
    else []
  in
  let metric_diags =
    match docs with
    | Some docs when Config.enabled config "metrics-doc" ->
        missing_metric_diags ~docs (List.concat_map (fun u -> u.u_metrics) units)
    | _ -> []
  in
  let diags =
    List.concat_map (fun u -> u.u_diags) units
    @ !lock_kept @ stale_suppression_diags @ metric_diags
  in
  let suppressed =
    List.concat_map (fun u -> u.u_suppressed) units @ !lock_suppressed
  in
  ( diags,
    suppressed,
    List.rev !errors,
    files_scanned,
    List.length units,
    List.sort (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) timings []),
    !lock_pairs )

let finish ~baseline
    (diags, suppressed, errors, files_scanned, files_analyzed, timings, lock_pairs) =
  let findings, baselined, stale_baseline = Baseline.apply baseline diags in
  {
    findings = List.sort Diag.compare findings;
    suppressed = List.sort Diag.compare suppressed;
    baselined = List.sort Diag.compare baselined;
    stale_baseline;
    errors;
    files_scanned;
    files_analyzed;
    timings;
    lock_pairs;
  }

(* In-memory entry point used by the fixture tests: a list of
   (filename, source) pairs runs through the full pipeline, including the
   interprocedural lock phase and stale-suppression detection. *)
let analyze_sources ~config ?(baseline = Baseline.empty) ?docs sources =
  finish ~baseline
    (analyze_read ~config ?docs ~errors:[] ~files_scanned:(List.length sources)
       sources)

let run ~config ?(baseline = Baseline.empty) ?docs roots =
  let files = list_ml_files roots in
  let errors = ref [] in
  let docs_text =
    match docs with
    | Some text -> Some text
    | None -> (
        match In_channel.with_open_text config.Config.docs_path In_channel.input_all with
        | text -> Some text
        | exception Sys_error msg ->
            if Config.enabled config "metrics-doc" then
              errors := ("metrics-doc: cannot read docs catalog: " ^ msg) :: !errors;
            None)
  in
  let sources =
    List.filter_map
      (fun path ->
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg ->
            errors := msg :: !errors;
            None
        | source -> Some (path, source))
      files
  in
  finish ~baseline
    (analyze_read ~config ?docs:docs_text ~errors:(List.rev !errors)
       ~files_scanned:(List.length files) sources)

(* Exit-code gating: 0 clean, 1 findings, 2 infrastructure (IO/parse). *)
let gate r =
  if r.errors <> [] then 2
  else if List.exists (fun d -> d.Diag.severity = Diag.Error) r.findings then 1
  else 0

let summary_json r =
  let count rule =
    List.length (List.filter (fun d -> d.Diag.rule = rule) r.findings)
  in
  Json.Obj
    [
      ("version", Json.Int 2);
      ("files_scanned", Json.Int r.files_scanned);
      ("files_analyzed", Json.Int r.files_analyzed);
      ("findings", Json.List (List.map Diag.to_json r.findings));
      ("suppressed", Json.List (List.map Diag.to_json r.suppressed));
      ("baselined", Json.List (List.map Diag.to_json r.baselined));
      ( "stale_baseline",
        Json.List
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("file", Json.String e.file);
                   ("rule", Json.String e.rule);
                   ( "line",
                     match e.line with Some l -> Json.Int l | None -> Json.Null );
                   ("reason", Json.String e.reason);
                 ])
             r.stale_baseline) );
      ("errors", Json.List (List.map (fun e -> Json.String e) r.errors));
      ( "timings_ms",
        Json.Obj
          (List.map (fun (rule, s) -> (rule, Json.Float (s *. 1000.))) r.timings)
      );
      ( "lock_pairs",
        Json.List
          (List.map
             (fun (outer, inner, path) ->
               Json.Obj
                 [
                   ("outer", Json.String outer);
                   ("inner", Json.String inner);
                   ("path", Json.String path);
                 ])
             r.lock_pairs) );
      ( "summary",
        Json.Obj
          (List.map (fun rule -> (rule, Json.Int (count rule))) Config.all_rules)
      );
      ("exit_code", Json.Int (gate r));
    ]
