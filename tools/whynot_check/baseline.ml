(* Checked-in per-site exceptions (tools/whynot_check/baseline.json).

   The baseline is for deliberate, documented exceptions — not for parking
   violations. Every entry must carry a [reason]; entries that no longer
   match any finding are reported as stale (warning) so the file cannot
   silently rot. An entry without a [line] matches the rule anywhere in the
   file (for whole-file exemptions like generated code). *)

module Json = Whynot.Report.Json

type entry = {
  file : string;
  rule : string;
  line : int option;
  reason : string;
}

type t = entry list

let empty : t = []

let of_json json =
  match json with
  | Json.List items ->
      let parse item =
        match
          ( Json.member "file" item |> Option.map Json.to_string_opt,
            Json.member "rule" item |> Option.map Json.to_string_opt,
            Json.member "reason" item |> Option.map Json.to_string_opt )
        with
        | Some (Some file), Some (Some rule), Some (Some reason) ->
            Ok
              {
                file;
                rule;
                line = Option.bind (Json.member "line" item) Json.to_int;
                reason;
              }
        | _ -> Error "baseline entry needs string fields \"file\", \"rule\", \"reason\""
      in
      List.fold_left
        (fun acc item ->
          Result.bind acc (fun acc ->
              Result.map (fun e -> e :: acc) (parse item)))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error "baseline must be a JSON array"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Ok json -> of_json json
      | Error msg -> Error (path ^ ": " ^ msg))

let matches entry (d : Diag.t) =
  entry.file = d.file && entry.rule = d.rule
  && match entry.line with None -> true | Some l -> l = d.line

(* Partition findings into (kept, baselined) and report stale entries. *)
let apply (t : t) diags =
  let kept, baselined =
    List.partition (fun d -> not (List.exists (fun e -> matches e d) t)) diags
  in
  let stale =
    List.filter (fun e -> not (List.exists (fun d -> matches e d) diags)) t
  in
  (kept, baselined, stale)
