(* Interprocedural lock-discipline analysis.

   Two phases over the untyped ASTs of every file in the run:

   1. a fixpoint computes a per-function *lock summary* — which lock
      classes the function acquires (transitively), whether it may block
      (Unix I/O, Domain.join, Thread.delay, Condition.wait), and whether it
      may raise — over a module-local + cross-file call graph resolved
      syntactically (module name = capitalized file basename);

   2. an emission walk threads the *held-lock set* through every function
      body and enforces four rules on top of the summaries:

      - lock-balance: every Mutex.lock is released on all paths, including
        exceptional ones (Fun.protect ~finally, match-exception handlers
        and straight-line unlock are the accepted shapes);
      - lock-order: nested acquisitions must follow the single global
        order pinned in config.json ([lock_order]); any pair acquired in
        conflicting orders anywhere in the call graph is a deadlock
        finding naming both acquisition paths;
      - blocking-under-lock: no blocking call while holding a mutex, with
        Condition.wait on the held mutex as the sole sanctioned blocking
        point;
      - condition-discipline: each condition variable pairs with exactly
        one mutex, wait holds that mutex and sits in a while loop.

   A lock *class* is "<file basename>.<last identifier of the mutex
   expression>" (e.g. [shard.sm], [http.cm]): the analysis is untyped, so
   distinct instances of one class are identified. Classes listed in
   [lock_multi_acquire] may batch-acquire several instances at once (the
   ascending-order shard admission); everything else acquiring its own
   class twice is a self-deadlock finding.

   Known over-approximations (see docs/STATIC_ANALYSIS.md): lambda
   arguments are walked inline at the call site; a raise caught by an
   enclosing try still marks the function as may-raise; stdlib calls with
   no summary are assumed pure and non-blocking. *)

open Parsetree

type fact = {
  p_outer : string;  (** lock class already held *)
  p_inner : string;  (** lock class acquired while holding [p_outer] *)
  p_path : string;  (** acquisition path, e.g. "shard.submit → http.enqueue" *)
  p_file : string;
  p_loc : Location.t;
}

type summary = {
  sm_acquires : (string * string) list;  (** lock class -> example path *)
  sm_blocks : (string * string) list;  (** blocking op -> example path *)
  sm_raises : bool;
}

let empty_summary = { sm_acquires = []; sm_blocks = []; sm_raises = false }

let summary_equal a b =
  let keys l = List.sort String.compare (List.map fst l) in
  List.equal String.equal (keys a.sm_acquires) (keys b.sm_acquires)
  && List.equal String.equal (keys a.sm_blocks) (keys b.sm_blocks)
  && Bool.equal a.sm_raises b.sm_raises

type func = {
  fn_file : string;
  fn_base : string;  (** file basename without extension, e.g. "http" *)
  fn_qual : string;  (** submodule-qualified name, e.g. "Trace.with_span" *)
  fn_display : string;  (** path segment shown in findings, e.g. "http.stop" *)
  fn_expr : expression;
}

type acc = {
  mutable a_acquires : (string * string) list;
  mutable a_blocks : (string * string) list;
  mutable a_raises : bool;
}

type env = {
  order : string list;
  multi : string list;
  enabled : string -> bool;
  file : string;
  base : string;
  display : string;  (** current function, used as the path root *)
  prefixes : string list;  (** enclosing module prefixes, innermost first *)
  scope : (string * summary) list;  (** local let-bound functions *)
  funcs : (string, func) Hashtbl.t;  (** key: "<file>:<qual>" *)
  modules : (string, string) Hashtbl.t;  (** module name -> file *)
  summaries : (string, summary) Hashtbl.t;
  acc : acc;
  emit : bool;
  add : rule:string -> Location.t -> string -> unit;
  add_fact : fact -> unit;
  waits : (string * string * string * Location.t * string) list ref;
      (** cv class, mutex class, path, loc, file *)
  signals : (string * string list * string * string * Location.t * string) list ref;
      (** cv class, held classes, signal/broadcast, path, loc, file *)
  in_while : bool;
  protected : string list;
      (** classes whose release is guaranteed by an enclosing
          Fun.protect ~finally or exception handler *)
}

(* --- small helpers ----------------------------------------------------- *)

let flatten lid =
  match Longident.flatten lid with
  | parts -> parts
  | exception Misc.Fatal_error -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

let rec last = function [ x ] -> Some x | _ :: rest -> last rest | [] -> None

let ends_with path suffix =
  let n = List.length path and k = List.length suffix in
  n >= k && List.equal String.equal (List.filteri (fun i _ -> i >= n - k) path) suffix

let classes held = List.map fst held
let holds held cls = List.exists (fun (c, _) -> String.equal c cls) held

let count_class held cls =
  List.length (List.filter (fun (c, _) -> String.equal c cls) held)

(* remove the innermost (last) occurrence of [cls] *)
let remove_last held cls =
  let rec go = function
    | [] -> []
    | (c, l) :: rest ->
        if String.equal c cls && not (holds rest cls) then rest
        else (c, l) :: go rest
  in
  go held

let same_classes a b =
  List.equal String.equal
    (List.sort String.compare (classes a))
    (List.sort String.compare (classes b))

let names held = String.concat ", " (classes held)

let dedup l =
  List.fold_left (fun acc x -> if List.exists (String.equal x) acc then acc else x :: acc) [] l
  |> List.rev

let module_base file =
  String.lowercase_ascii (Filename.remove_extension (Filename.basename file))

(* the class of a mutex / condition-variable expression *)
let rec value_class env e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = flatten txt in
      match last path with
      | None -> None
      | Some n ->
          (* [Obs.lock] used from another module attributes to obs, not to
             the using module *)
          let base =
            let rec owner = function
              | [] | [ _ ] -> env.base
              | m :: rest -> (
                  match Hashtbl.find_opt env.modules m with
                  | Some f -> module_base f
                  | None -> owner rest)
            in
            owner path
          in
          Some (base ^ "." ^ n))
  | Pexp_field (_, { txt; _ }) -> (
      match last (flatten txt) with
      | Some n -> Some (env.base ^ "." ^ n)
      | None -> None)
  | Pexp_constraint (e, _) -> value_class env e
  | _ -> None

(* classes directly unlocked anywhere inside [e] — used to treat
   Fun.protect ~finally and exception handlers as release guarantees *)
let unlock_classes env e =
  let found = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, [ (_, m) ]) -> (
              match ident_path f with
              | Some p when ends_with p [ "Mutex"; "unlock" ] -> (
                  match value_class env m with
                  | Some c -> found := c :: !found
                  | None -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  dedup !found

let direct_children e =
  let acc = ref [] in
  let collect =
    { Ast_iterator.default_iterator with expr = (fun _ c -> acc := c :: !acc) }
  in
  Ast_iterator.default_iterator.expr collect e;
  List.rev !acc

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> strip e
  | _ -> e

let is_function e =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* Unix calls that complete immediately — everything else under the Unix
   module counts as (potentially) blocking I/O *)
let unix_nonblocking =
  [
    "gettimeofday"; "time"; "getpid"; "getppid"; "error_message"; "getenv";
    "environment"; "getuid"; "geteuid"; "string_of_inet_addr";
  ]

let blocking_primitive path =
  if ends_with path [ "Domain"; "join" ] then Some "Domain.join"
  else if ends_with path [ "Thread"; "delay" ] then Some "Thread.delay"
  else if ends_with path [ "Shard"; "submit" ] then Some "Shard.submit"
  else
    match path with
    | [ "Unix"; fn ] | [ _; "Unix"; fn ] ->
        if List.exists (String.equal fn) unix_nonblocking then None
        else Some ("Unix." ^ fn)
    | _ -> None

let raising_primitive path =
  match path with
  | [ p ] | [ "Stdlib"; p ] -> (
      match p with
      | "raise" | "raise_notrace" | "raise_with_backtrace" | "failwith"
      | "invalid_arg" ->
          true
      | _ -> false)
  | _ -> false

let diverging_primitive path =
  raising_primitive path
  || match path with [ "exit" ] | [ "Stdlib"; "exit" ] -> true | _ -> false

(* --- summary accumulation ---------------------------------------------- *)

let acc_acquire env cls path =
  if not (List.mem_assoc cls env.acc.a_acquires) then
    env.acc.a_acquires <- (cls, path) :: env.acc.a_acquires

let acc_block env desc path =
  if not (List.mem_assoc desc env.acc.a_blocks) then
    env.acc.a_blocks <- (desc, path) :: env.acc.a_blocks

let note_raise env held loc what =
  env.acc.a_raises <- true;
  let unprot =
    List.filter (fun (c, _) -> not (List.exists (String.equal c) env.protected)) held
  in
  if env.emit && unprot <> [] then
    env.add ~rule:"lock-balance" loc
      (Printf.sprintf
         "%s while holding %s — release it on the exceptional path too \
          (Fun.protect ~finally, or a handler that unlocks)"
         what (names unprot))

(* --- call-graph resolution --------------------------------------------- *)

let summary_for env f =
  Option.value ~default:empty_summary
    (Hashtbl.find_opt env.summaries (f.fn_file ^ ":" ^ f.fn_qual))

let resolve env path =
  let joined = String.concat "." path in
  let try_file file qual =
    Option.map
      (fun f -> (f.fn_display, summary_for env f))
      (Hashtbl.find_opt env.funcs (file ^ ":" ^ qual))
  in
  let local =
    match path with
    | [ name ] ->
        Option.map (fun s -> (env.base ^ "." ^ name, s)) (List.assoc_opt name env.scope)
    | _ -> None
  in
  match local with
  | Some r -> Some r
  | None -> (
      let rec same_file = function
        | [] -> None
        | p :: rest -> (
            let qual = if String.equal p "" then joined else p ^ "." ^ joined in
            match try_file env.file qual with
            | Some r -> Some r
            | None -> same_file rest)
      in
      match same_file env.prefixes with
      | Some r -> Some r
      | None ->
          let rec cross = function
            | [] | [ _ ] -> None
            | m :: rest -> (
                match Hashtbl.find_opt env.modules m with
                | Some file -> (
                    match try_file file (String.concat "." rest) with
                    | Some r -> Some r
                    | None -> cross rest)
                | None -> cross rest)
          in
          cross path)

(* apply a callee's summary at a call site *)
let apply_summary env held loc callee s =
  List.iter
    (fun (cls, p) ->
      let path = env.display ^ " → " ^ p in
      acc_acquire env cls path;
      if env.emit then
        List.iter
          (fun (h, _) ->
            env.add_fact
              { p_outer = h; p_inner = cls; p_path = path; p_file = env.file; p_loc = loc };
            if
              String.equal h cls
              && not (List.exists (String.equal cls) env.multi)
            then
              env.add ~rule:"lock-order" loc
                (Printf.sprintf
                   "call to %s re-acquires lock class %s already held here \
                    (path: %s) — self-deadlock on the same instance"
                   callee cls path))
          held)
    s.sm_acquires;
  List.iter
    (fun (desc, p) -> acc_block env desc (env.display ^ " → " ^ p))
    s.sm_blocks;
  (if held <> [] && env.emit then
     match s.sm_blocks with
     | (desc, p) :: _ ->
         env.add ~rule:"blocking-under-lock" loc
           (Printf.sprintf
              "call to %s may block (%s) while holding %s — path: %s"
              callee desc (names held)
              (env.display ^ " → " ^ p))
     | [] -> ());
  if s.sm_raises then
    note_raise env held loc ("call to " ^ callee ^ ", which may raise")

(* --- the walker --------------------------------------------------------

   [walk env held e] threads the held-lock set (acquisition order, innermost
   last) through [e] and returns the set at the exit plus a flag saying the
   expression provably diverges (raise / exit / all branches diverge). *)

let mute env =
  {
    env with
    emit = false;
    add = (fun ~rule:_ _ _ -> ());
    add_fact = (fun _ -> ());
    waits = ref [];
    signals = ref [];
  }

let join env loc entry branches =
  let live = List.filter (fun (_, d) -> not d) branches in
  match live with
  | [] -> (entry, true)
  | (h0, _) :: rest ->
      if List.for_all (fun (h, _) -> same_classes h h0) rest then (h0, false)
      else begin
        (if env.emit then begin
           let all = List.map fst live in
           let union = dedup (List.concat_map classes all) in
           let partial =
             List.filter
               (fun c -> not (List.for_all (fun h -> holds h c) all))
               union
           in
           env.add ~rule:"lock-balance" loc
             (Printf.sprintf
                "lock %s held on some paths out of this expression but not \
                 others — release it on every path (in %s)"
                (String.concat ", " partial) env.display)
         end);
        let others = List.map fst rest in
        let inter =
          List.filter (fun (c, _) -> List.for_all (fun h -> holds h c) others) h0
        in
        (inter, false)
      end

let rec walk env held e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> walk_apply env held e.pexp_loc f args
  | Pexp_sequence (a, b) ->
      let ha, da = walk env held a in
      if da then (ha, true) else walk env ha b
  | Pexp_let (_, vbs, body) ->
      let env', held', div =
        List.fold_left
          (fun (env, held, div) vb ->
            if div then (env, held, div)
            else
              let name =
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } -> Some txt
                | _ -> None
              in
              match name with
              | Some n when is_function vb.pvb_expr ->
                  let s = local_summary env n vb.pvb_expr in
                  if env.emit then emit_local env n s vb.pvb_expr;
                  ({ env with scope = (n, s) :: env.scope }, held, false)
              | _ ->
                  let h, d = walk env held vb.pvb_expr in
                  (env, h, d))
          (env, held, false) vbs
      in
      if div then (held', true) else walk env' held' body
  | Pexp_ifthenelse (c, a, b) ->
      let hc, dc = walk env held c in
      if dc then (hc, true)
      else
        let ba = walk env hc a in
        let bb = match b with Some b -> walk env hc b | None -> (hc, false) in
        join env e.pexp_loc hc [ ba; bb ]
  | Pexp_match (scrut, cases) ->
      let exc_cases, val_cases =
        List.partition
          (fun c ->
            match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
          cases
      in
      let handler_unlocks =
        dedup (List.concat_map (fun c -> unlock_classes env c.pc_rhs) exc_cases)
      in
      let hs, ds =
        walk { env with protected = handler_unlocks @ env.protected } held scrut
      in
      let case_branch entry c =
        (match c.pc_guard with Some g -> ignore (walk env entry g) | None -> ());
        walk env entry c.pc_rhs
      in
      let val_branches = if ds then [] else List.map (case_branch hs) val_cases in
      let exc_branches = List.map (case_branch held) exc_cases in
      (match val_branches @ exc_branches with
      | [] -> (hs, ds)
      | branches -> join env e.pexp_loc held branches)
  | Pexp_try (body, cases) ->
      let handler_unlocks =
        dedup (List.concat_map (fun c -> unlock_classes env c.pc_rhs) cases)
      in
      let hb, db =
        walk { env with protected = handler_unlocks @ env.protected } held body
      in
      let handler_branches =
        List.map
          (fun c ->
            (match c.pc_guard with Some g -> ignore (walk env held g) | None -> ());
            walk env held c.pc_rhs)
          cases
      in
      join env e.pexp_loc held ((hb, db) :: handler_branches)
  | Pexp_while (cond, body) ->
      let hc, _ = walk env held cond in
      if env.emit && not (same_classes hc held) then
        env.add ~rule:"lock-balance" cond.pexp_loc
          "a while condition changes the held-lock set — the held set must \
           be loop-invariant";
      let hb, _ = walk { env with in_while = true } hc body in
      if env.emit && not (same_classes hb hc) then
        env.add ~rule:"lock-balance" e.pexp_loc
          (Printf.sprintf
             "held locks change across a loop iteration (%s vs %s) — \
              acquire and release within one iteration or outside the loop"
             (names hc) (names hb));
      (hc, false)
  | Pexp_for (_, lo, hi, _, body) ->
      let h1, _ = walk env held lo in
      let h2, _ = walk env h1 hi in
      let hb, _ = walk env h2 body in
      if env.emit && not (same_classes hb h2) then
        env.add ~rule:"lock-balance" e.pexp_loc
          "held locks change across a for-loop iteration — acquire and \
           release within one iteration or outside the loop";
      (h2, false)
  | Pexp_fun _ | Pexp_function _ ->
      (* a lambda in value position: runs later, in an unknown context —
         analyze its body from an empty held set; its lock effects still
         land in this function's summary (the closure escapes from here) *)
      walk_lambda { env with in_while = false; protected = [] } [] e |> ignore;
      (held, false)
  | Pexp_assert inner -> (
      let h, _ = walk env held inner in
      match inner.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
          note_raise env h e.pexp_loc "assert false";
          (h, true)
      | _ ->
          note_raise env h e.pexp_loc "a failing assert";
          (h, false))
  | Pexp_constraint (inner, _) | Pexp_newtype (_, inner) | Pexp_open (_, inner)
  | Pexp_letexception (_, inner) | Pexp_letmodule (_, _, inner) ->
      walk env held inner
  | Pexp_ident { txt; _ } ->
      if env.emit && raising_primitive (flatten txt) then ();
      (held, false)
  | _ ->
      (* generic fallback: thread the held set through the direct
         subexpressions in syntactic order *)
      List.fold_left
        (fun (h, d) child -> if d then (h, d) else walk env h child)
        (held, false) (direct_children e)

(* walk a syntactic function's body (params stripped) from an empty held
   set, checking that nothing is left locked at the fall-through exits *)
and walk_lambda env held e =
  let e = strip e in
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk_lambda env held body
  | Pexp_function cases ->
      let branches = List.map (fun c -> walk env held c.pc_rhs) cases in
      join env e.pexp_loc held branches
  | _ -> walk env held e

(* analyze one named function body: strip params, walk from empty, flag
   locks still held at the fall-through exit *)
and walk_fn env fexpr =
  let rec go e =
    let e = strip e in
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> go body
    | Pexp_function cases ->
        List.iter
          (fun c ->
            let h, d = walk env [] c.pc_rhs in
            if not d then check_leftover env h)
          cases
    | _ ->
        let h, d = walk env [] e in
        if not d then check_leftover env h
  in
  go fexpr

and check_leftover env held =
  if env.emit then
    List.iter
      (fun (cls, loc) ->
        env.add ~rule:"lock-balance" loc
          (Printf.sprintf
             "Mutex.lock of %s is not released on the fall-through path of %s"
             cls env.display))
      held

(* local let-bound functions: mini-fixpoint so recursive locals converge *)
and local_summary env name fexpr =
  let rec go prev n =
    let acc = { a_acquires = []; a_blocks = []; a_raises = false } in
    let env' = mute { env with acc; scope = (name, prev) :: env.scope } in
    walk_fn env' fexpr;
    let s =
      {
        sm_acquires = List.rev acc.a_acquires;
        sm_blocks = List.rev acc.a_blocks;
        sm_raises = acc.a_raises;
      }
    in
    if n <= 0 || summary_equal s prev then s else go s (n - 1)
  in
  go empty_summary 6

and emit_local env name s fexpr =
  let acc = { a_acquires = []; a_blocks = []; a_raises = false } in
  let env' =
    {
      env with
      acc;
      scope = (name, s) :: env.scope;
      display = env.base ^ "." ^ name;
      in_while = false;
      protected = [];
    }
  in
  walk_fn env' fexpr

and walk_apply env held loc f args =
  let cpath = Option.value ~default:[] (ident_path f) in
  match (cpath, args) with
  | [ "@@" ], [ (_, fn); (l, arg) ] -> walk_apply env held loc fn [ (l, arg) ]
  | [ "|>" ], [ (l, arg); (_, fn) ] -> walk_apply env held loc fn [ (l, arg) ]
  | ([ "ignore" ] | [ "Stdlib"; "ignore" ]), [ (_, a) ] -> walk env held a
  | p, [ (_, m) ] when ends_with p [ "Mutex"; "lock" ] -> (
      match value_class env m with
      | None -> (held, false)
      | Some cls ->
          acc_acquire env cls env.display;
          if env.emit then begin
            List.iter
              (fun (h, _) ->
                env.add_fact
                  {
                    p_outer = h;
                    p_inner = cls;
                    p_path = env.display;
                    p_file = env.file;
                    p_loc = loc;
                  })
              held;
            if holds held cls && not (List.exists (String.equal cls) env.multi)
            then
              env.add ~rule:"lock-order" loc
                (Printf.sprintf
                   "second acquisition of lock class %s while one is \
                    already held (path: %s) — self-deadlock unless the \
                    class is listed in lock_multi_acquire"
                   cls env.display)
          end;
          (held @ [ (cls, loc) ], false))
  | p, [ (_, m) ] when ends_with p [ "Mutex"; "unlock" ] -> (
      match value_class env m with
      | None -> (held, false)
      | Some cls ->
          if holds held cls then (remove_last held cls, false)
          else begin
            if env.emit then
              env.add ~rule:"lock-balance" loc
                (Printf.sprintf
                   "Mutex.unlock of %s with no matching Mutex.lock on this \
                    path (in %s)"
                   cls env.display);
            (held, false)
          end)
  | p, [ (_, cv); (_, m) ] when ends_with p [ "Condition"; "wait" ] ->
      (match (value_class env cv, value_class env m) with
      | Some cvc, Some mc ->
          acc_block env ("Condition.wait on " ^ cvc) env.display;
          if env.emit then begin
            env.waits := (cvc, mc, env.display, loc, env.file) :: !(env.waits);
            if not (holds held mc) then
              env.add ~rule:"condition-discipline" loc
                (Printf.sprintf
                   "Condition.wait on %s names mutex %s, which is not held \
                    here — wait must run with its own mutex held"
                   cvc mc);
            let other = List.filter (fun (c, _) -> not (String.equal c mc)) held in
            if other <> [] then
              env.add ~rule:"blocking-under-lock" loc
                (Printf.sprintf
                   "Condition.wait on %s blocks while also holding %s — \
                    only the mutex being waited on may be held"
                   cvc (names other));
            if not env.in_while then
              env.add ~rule:"condition-discipline" loc
                (Printf.sprintf
                   "Condition.wait on %s is not inside a while loop — \
                    spurious wakeups require re-checking the predicate"
                   cvc)
          end
      | _ -> ());
      (held, false)
  | p, [ (_, cv) ]
    when ends_with p [ "Condition"; "signal" ]
         || ends_with p [ "Condition"; "broadcast" ] ->
      (match value_class env cv with
      | Some cvc when env.emit ->
          let kind =
            if ends_with p [ "Condition"; "signal" ] then "signal" else "broadcast"
          in
          env.signals :=
            (cvc, classes held, kind, env.display, loc, env.file) :: !(env.signals)
      | _ -> ());
      (held, false)
  | p, args when ends_with p [ "Fun"; "protect" ] -> walk_protect env held args
  | [], _ ->
      (* computed callee: walk it, then the arguments *)
      let hf, df = walk env held f in
      if df then (hf, true) else walk_args env hf loc args
  | p, _ -> (
      let held, div = walk_args env held loc args in
      if div then (held, true)
      else
        match resolve env p with
        | Some (display, s) ->
            apply_summary env held loc display s;
            (held, false)
        | None -> (
            match blocking_primitive p with
            | Some desc ->
                acc_block env desc env.display;
                if env.emit && held <> [] then
                  env.add ~rule:"blocking-under-lock" loc
                    (Printf.sprintf "%s while holding %s (in %s)" desc
                       (names held) env.display);
                (held, false)
            | None ->
                if raising_primitive p then
                  note_raise env held loc
                    ("call to " ^ String.concat "." p ^ ", which raises");
                (held, diverging_primitive p)))

(* Fun.protect ~finally:(fun () -> ...) (fun () -> body): classes the
   finally releases are protected inside the body — a raise there still
   unlocks them *)
and walk_protect env held args =
  let finally =
    List.find_map
      (fun (lbl, a) ->
        match lbl with
        | Asttypes.Labelled "finally" -> Some a
        | _ -> None)
      args
  in
  let thunk =
    List.find_map
      (fun (lbl, a) -> match lbl with Asttypes.Nolabel -> Some a | _ -> None)
      args
  in
  let fin_unlocks =
    match finally with Some f -> unlock_classes env f | None -> []
  in
  let h1, d1 =
    match thunk with
    | Some t when is_function t ->
        walk_lambda
          { env with protected = fin_unlocks @ env.protected; in_while = false }
          held t
    | Some t -> walk { env with protected = fin_unlocks @ env.protected } held t
    | None -> (held, false)
  in
  let h2, d2 =
    match finally with
    | Some f when is_function f -> walk_lambda { env with in_while = false } h1 f
    | Some f -> walk env h1 f
    | None -> (h1, false)
  in
  (h2, d1 || d2)

(* arguments: lambdas are walked inline against the current held set (this
   is what sees Unix.shutdown inside Hashtbl.iter under a lock, and the
   batch List.iter (fun s -> Mutex.lock s.sm) admission); idents naming
   known functions or blocking primitives count as calls *)
and walk_args env held loc args =
  List.fold_left
    (fun (held, div) (lbl, a) ->
      if div then (held, div)
      else
        let a' = strip a in
        match a'.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
            let before = held in
            let after, _ =
              walk_lambda { env with in_while = false } held a'
            in
            let net =
              dedup
                (List.filter
                   (fun c -> count_class after c > count_class before c)
                   (classes after))
            in
            List.iter
              (fun cls ->
                if env.emit then begin
                  env.add_fact
                    {
                      p_outer = cls;
                      p_inner = cls;
                      p_path = env.display;
                      p_file = env.file;
                      p_loc = a.pexp_loc;
                    };
                  if not (List.exists (String.equal cls) env.multi) then
                    env.add ~rule:"lock-order" a.pexp_loc
                      (Printf.sprintf
                         "a function argument acquires lock class %s and \
                          leaves it held (batch acquisition, in %s) — \
                          sanctioned only for classes in lock_multi_acquire \
                          with a documented intra-class order"
                         cls env.display)
                end)
              net;
            (after, false)
        | Pexp_ident { txt; _ } -> (
            let p = flatten txt in
            match resolve env p with
            | Some (display, s) ->
                apply_summary env held a.pexp_loc display s;
                (held, false)
            | None -> (
                match blocking_primitive p with
                | Some desc ->
                    acc_block env desc env.display;
                    if env.emit && held <> [] && not (String.equal desc "Shard.submit")
                    then
                      env.add ~rule:"blocking-under-lock" a.pexp_loc
                        (Printf.sprintf
                           "%s (passed as a function argument) may run while \
                            holding %s (in %s)"
                           desc (names held) env.display);
                    (held, false)
                | None -> (held, false)))
        | _ ->
            let _ = lbl in
            let h, d = walk env held a in
            let _ = loc in
            (h, d))
    (held, false) args

(* --- collection --------------------------------------------------------

   Harvest every module-level syntactic function (including ones nested in
   submodules, qualified "Sub.name") plus the non-function bindings, whose
   right-hand sides run at module initialization. *)

let collect ~file ~base structure funcs func_list inits =
  let add_func qual name expr =
    let f =
      {
        fn_file = file;
        fn_base = base;
        fn_qual = qual;
        fn_display = base ^ "." ^ name;
        fn_expr = expr;
      }
    in
    Hashtbl.replace funcs (file ^ ":" ^ qual) f;
    func_list := f :: !func_list
  in
  let rec items prefix str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } when is_function vb.pvb_expr ->
                    let qual =
                      if String.equal prefix "" then txt else prefix ^ "." ^ txt
                    in
                    add_func qual txt vb.pvb_expr
                | _ -> inits := (file, base, prefix, vb.pvb_expr) :: !inits)
              vbs
        | Pstr_eval (e, _) -> inits := (file, base, prefix, e) :: !inits
        | Pstr_module mb -> sub prefix mb
        | Pstr_recmodule mbs -> List.iter (sub prefix) mbs
        | _ -> ())
      str
  and sub prefix mb =
    match mb.pmb_name.txt with
    | Some mname ->
        let prefix' =
          if String.equal prefix "" then mname else prefix ^ "." ^ mname
        in
        mod_expr prefix' mb.pmb_expr
    | None -> ()
  and mod_expr prefix me =
    match me.pmod_desc with
    | Pmod_structure str -> items prefix str
    | Pmod_constraint (me, _) -> mod_expr prefix me
    | _ -> ()
  in
  items "" structure

let prefixes_of qual =
  let comps = String.split_on_char '.' qual in
  let rec mods = function [] | [ _ ] -> [] | x :: r -> x :: mods r in
  let mods = mods comps in
  let rec build acc sofar = function
    | [] -> acc
    | m :: rest ->
        let sofar = if String.equal sofar "" then m else sofar ^ "." ^ m in
        build (sofar :: acc) sofar rest
  in
  build [ "" ] "" mods

(* --- entry point -------------------------------------------------------- *)

let analyze ~(config : Config.t) units =
  let diags = ref [] and facts = ref [] in
  let waits = ref [] and signals = ref [] in
  let modules = Hashtbl.create 64 in
  let funcs = Hashtbl.create 256 in
  let summaries = Hashtbl.create 256 in
  let func_list = ref [] and inits = ref [] in
  let enabled = Config.enabled config in
  let add file ~rule loc message =
    if enabled rule then
      diags :=
        Diag.of_location ~file ~rule ~severity:Diag.Error ~message loc :: !diags
  in
  List.iter
    (fun (file, structure) ->
      let base = module_base file in
      let m = String.capitalize_ascii base in
      if not (Hashtbl.mem modules m) then Hashtbl.add modules m file;
      collect ~file ~base structure funcs func_list inits)
    units;
  let func_list = List.rev !func_list and inits = List.rev !inits in
  let env_for ~emit ~file ~base ~display ~prefixes =
    {
      order = config.Config.lock_order;
      multi = config.Config.lock_multi_acquire;
      enabled;
      file;
      base;
      display;
      prefixes;
      scope = [];
      funcs;
      modules;
      summaries;
      acc = { a_acquires = []; a_blocks = []; a_raises = false };
      emit;
      add = (if emit then add file else fun ~rule:_ _ _ -> ());
      add_fact = (if emit then fun f -> facts := f :: !facts else fun _ -> ());
      waits = (if emit then waits else ref []);
      signals = (if emit then signals else ref []);
      in_while = false;
      protected = [];
    }
  in
  let env_of ~emit f =
    env_for ~emit ~file:f.fn_file ~base:f.fn_base ~display:f.fn_display
      ~prefixes:(prefixes_of f.fn_qual)
  in
  (* phase 1: summary fixpoint (monotone from bottom, so a bounded number
     of rounds converges; the cap is a belt against pathologies) *)
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 20 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        let env = env_of ~emit:false f in
        walk_fn env f.fn_expr;
        let s =
          {
            sm_acquires = List.rev env.acc.a_acquires;
            sm_blocks = List.rev env.acc.a_blocks;
            sm_raises = env.acc.a_raises;
          }
        in
        let key = f.fn_file ^ ":" ^ f.fn_qual in
        let old =
          Option.value ~default:empty_summary (Hashtbl.find_opt summaries key)
        in
        if not (summary_equal s old) then begin
          Hashtbl.replace summaries key s;
          changed := true
        end)
      func_list
  done;
  (* phase 2: emission *)
  List.iter (fun f -> walk_fn (env_of ~emit:true f) f.fn_expr) func_list;
  List.iter
    (fun (file, base, prefix, e) ->
      let env =
        env_for ~emit:true ~file ~base ~display:(base ^ ".<init>")
          ~prefixes:(prefixes_of (if String.equal prefix "" then "x" else prefix ^ ".x"))
      in
      let held, d = walk env [] e in
      if not d then check_leftover env held)
    inits;
  (* global checks over the collected facts *)
  let facts = List.rev !facts in
  (if enabled "lock-order" then begin
     let directed = Hashtbl.create 32 in
     List.iter
       (fun f ->
         let k = f.p_outer ^ "|" ^ f.p_inner in
         if not (Hashtbl.mem directed k) then Hashtbl.add directed k f)
       facts;
     let rank cls =
       let rec go i = function
         | [] -> None
         | c :: rest -> if String.equal c cls then Some i else go (i + 1) rest
       in
       go 0 config.Config.lock_order
     in
     let reported = Hashtbl.create 8 in
     Hashtbl.iter
       (fun _ f ->
         let a = f.p_outer and b = f.p_inner in
         if not (String.equal a b) then
           match Hashtbl.find_opt directed (b ^ "|" ^ a) with
           | Some g ->
               let key =
                 if String.compare a b <= 0 then a ^ "|" ^ b else b ^ "|" ^ a
               in
               if not (Hashtbl.mem reported key) then begin
                 Hashtbl.add reported key ();
                 add f.p_file ~rule:"lock-order" f.p_loc
                   (Printf.sprintf
                      "locks %s and %s are acquired in conflicting orders: \
                       %s then %s via %s, but %s then %s via %s — deadlock; \
                       follow the pinned lock_order in config.json"
                      a b a b f.p_path b a g.p_path)
               end
           | None -> (
               match (rank a, rank b) with
               | Some ra, Some rb ->
                   if ra > rb then
                     add f.p_file ~rule:"lock-order" f.p_loc
                       (Printf.sprintf
                          "acquires %s while holding %s, violating the \
                           pinned global lock order in config.json (path: %s)"
                          b a f.p_path)
               | _ ->
                   add f.p_file ~rule:"lock-order" f.p_loc
                     (Printf.sprintf
                        "acquisition pair %s → %s (path: %s) is not covered \
                         by lock_order in config.json — extend the pinned \
                         order"
                        a b f.p_path)))
       directed
   end);
  (if enabled "condition-discipline" then begin
     let assoc = Hashtbl.create 8 in
     List.iter
       (fun (cvc, mc, _path, loc, file) ->
         match Hashtbl.find_opt assoc cvc with
         | None -> Hashtbl.add assoc cvc mc
         | Some m0 when not (String.equal m0 mc) ->
             add file ~rule:"condition-discipline" loc
               (Printf.sprintf
                  "condition %s is waited on under two different mutexes \
                   (%s here, %s elsewhere) — a condition variable must be \
                   associated with exactly one mutex"
                  cvc mc m0)
         | Some _ -> ())
       (List.rev !waits);
     List.iter
       (fun (cvc, held, kind, path, loc, file) ->
         match Hashtbl.find_opt assoc cvc with
         | Some m when not (List.exists (String.equal m) held) ->
             add file ~rule:"condition-discipline" loc
               (Printf.sprintf
                  "Condition.%s on %s without holding its associated mutex \
                   %s (in %s) — signal under the mutex or the waiter can \
                   miss the wakeup"
                  kind cvc m path)
         | _ -> ())
       (List.rev !signals)
   end);
  (List.rev !diags, facts)
