(* whynot-check: static-analysis gate for the repo's correctness invariants.

   Usage:
     whynot_check [--config FILE] [--baseline FILE] [--docs FILE]
                  [--rules r1,r2] [--json FILE] [--list-rules] [--quiet]
                  ROOT...

   Exit codes: 0 clean, 1 findings, 2 infrastructure error (unreadable or
   unparsable input, bad config/baseline). *)

module Config = Whynot_check.Config
module Baseline = Whynot_check.Baseline
module Engine = Whynot_check.Engine
module Diag = Whynot_check.Diag

let usage () =
  prerr_endline
    "usage: whynot_check [--config FILE] [--baseline FILE] [--docs FILE]\n\
    \                    [--rules r1,r2] [--json FILE] [--list-rules] [--quiet]\n\
    \                    ROOT...";
  exit 2

let () =
  let config = ref None and baseline = ref None and docs = ref None in
  let rules = ref None and json_out = ref None and quiet = ref false in
  let roots = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--config" :: v :: rest ->
        config := Some v;
        parse_args rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse_args rest
    | "--docs" :: v :: rest ->
        docs := Some v;
        parse_args rest
    | "--rules" :: v :: rest ->
        rules := Some (String.split_on_char ',' v |> List.map String.trim);
        parse_args rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse_args rest
    | "--list-rules" :: _ ->
        List.iter
          (fun (rule, description) -> Printf.printf "%-20s %s\n" rule description)
          Config.rule_table;
        exit 0
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | arg :: _ when String.starts_with ~prefix:"--" arg -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then usage ();
  let config =
    match !config with
    | None -> Config.default
    | Some path -> (
        match Config.load path with
        | Ok c -> c
        | Error msg ->
            prerr_endline ("whynot_check: bad config: " ^ msg);
            exit 2)
  in
  let config =
    match !rules with
    | None -> config
    | Some rules ->
        (match List.find_opt (fun r -> not (List.mem r Config.all_rules)) rules with
        | Some r ->
            prerr_endline ("whynot_check: unknown rule: " ^ r);
            exit 2
        | None -> ());
        { config with Config.rules }
  in
  let config =
    match !docs with
    | None -> config
    | Some path -> { config with Config.docs_path = path }
  in
  let baseline =
    match !baseline with
    | None -> Baseline.empty
    | Some path -> (
        match Baseline.load path with
        | Ok b -> b
        | Error msg ->
            prerr_endline ("whynot_check: bad baseline: " ^ msg);
            exit 2)
  in
  let result = Engine.run ~config ~baseline roots in
  (match !json_out with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Whynot.Report.Json.to_string ~indent:2 (Engine.summary_json result));
          Out_channel.output_char oc '\n'));
  if not !quiet then begin
    List.iter (fun d -> Format.printf "%a@." Diag.pp d) result.Engine.findings;
    List.iter
      (fun (e : Baseline.entry) ->
        Format.printf "%s [%s] warning: stale baseline entry (%s)@." e.file
          e.rule e.reason)
      result.Engine.stale_baseline;
    List.iter (fun msg -> Format.eprintf "whynot_check: %s@." msg) result.Engine.errors;
    let n = List.length result.Engine.findings in
    Format.printf
      "whynot-check: %d file(s) analyzed, %d finding(s), %d suppressed, %d \
       baselined@."
      result.Engine.files_analyzed n
      (List.length result.Engine.suppressed)
      (List.length result.Engine.baselined)
  end;
  exit (Engine.gate result)
