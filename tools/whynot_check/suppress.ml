(* Inline per-site suppressions: a [(* check: token, token - reason *)]
   comment suppresses matching findings on its own line and, when it is the
   only thing on its line, on the next line as well (annotation-above style).

   Tokens are matched against a rule id or one of its short aliases, so the
   annotation can say what the site is ([idx] for index arithmetic,
   [sentinel] for saturating sentinel sums) rather than repeat the rule
   name. *)

let aliases = function
  | "checked-arith" -> [ "idx"; "sentinel"; "arith"; "impl" ]
  | "poly-compare" -> [ "poly"; "physical-eq" ]
  | "domain-safety" -> [ "domain"; "race" ]
  | "exn-swallow" -> [ "swallow" ]
  | "no-stdout" -> [ "stdout" ]
  | _ -> []

type t = (int * string list) list
(** line number -> suppression tokens in effect on that line *)

let marker = "(* check:"

(* Line number (1-based) of each byte offset, computed lazily via a scan. *)
let scan source : t =
  let n = String.length source in
  let entries = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let i = ref 0 in
  while !i < n do
    (if source.[!i] = '\n' then begin
       incr line;
       line_start := !i + 1
     end
     else if
       !i + String.length marker <= n
       && String.sub source !i (String.length marker) = marker
     then begin
       (* extract tokens up to the closing "*)" or end of the token part
          (an optional "- reason" tail is ignored) *)
       let start = !i + String.length marker in
       let close = ref start in
       while
         !close + 1 < n && not (source.[!close] = '*' && source.[!close + 1] = ')')
       do
         incr close
       done;
       let body = String.sub source start (!close - start) in
       let body =
         match String.index_opt body '-' with
         | Some dash -> String.sub body 0 dash
         | None -> body
       in
       let tokens =
         String.split_on_char ',' body
         |> List.map String.trim
         |> List.filter (fun s -> s <> "")
       in
       let only_thing_on_line =
         let rec blank j = j >= !i || ((source.[j] = ' ' || source.[j] = '\t') && blank (j + 1)) in
         blank !line_start
       in
       entries := (!line, tokens) :: !entries;
       if only_thing_on_line then entries := (!line + 1, tokens) :: !entries
     end);
    incr i
  done;
  !entries

let suppresses (t : t) ~line ~rule =
  let accepted = rule :: aliases rule in
  List.exists
    (fun (l, tokens) -> l = line && List.exists (fun tok -> List.mem tok accepted) tokens)
    t
