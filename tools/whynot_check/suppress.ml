(* Inline per-site suppressions: a [(* check: token, token - reason *)]
   comment suppresses matching findings on its own line and, when it is the
   only thing on its line, on the next line as well (annotation-above style).

   Tokens are matched against a rule id or one of its short aliases, so the
   annotation can say what the site is ([idx] for index arithmetic,
   [sentinel] for saturating sentinel sums) rather than repeat the rule
   name.

   Each comment tracks whether it ever matched a finding, so the engine can
   report stale suppressions (the inline mirror of stale baseline
   entries). *)

let aliases = function
  | "checked-arith" -> [ "idx"; "sentinel"; "arith"; "impl" ]
  | "poly-compare" -> [ "poly"; "physical-eq" ]
  | "domain-safety" -> [ "domain"; "race" ]
  | "exn-swallow" -> [ "swallow" ]
  | "no-stdout" -> [ "stdout" ]
  | "lock-balance" -> [ "lock"; "unlock" ]
  | "lock-order" -> [ "order"; "deadlock" ]
  | "blocking-under-lock" -> [ "blocking"; "syscall" ]
  | "condition-discipline" -> [ "condition"; "cv" ]
  | _ -> []

type comment = {
  c_line : int;  (** 1-based line the comment sits on *)
  c_covers : int list;  (** lines on which it suppresses findings *)
  c_tokens : string list;
  mutable c_used : bool;  (** did it ever match a finding? *)
}

type t = comment list

let marker = "(* check:"

(* A lexically-aware scan: the marker only counts as a suppression when it
   opens a comment in code position — occurrences inside string literals
   (e.g. the checker's own message templates) or nested inside an ordinary
   comment (prose *about* the annotation form) are skipped. This is what
   lets the gate run over its own sources. *)
let scan source : t =
  let n = String.length source in
  let comments = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let newline j =
    incr line;
    line_start := j + 1
  in
  let at j s =
    j + String.length s <= n && String.sub source j (String.length s) = s
  in
  (* [j] is on the opening quote; returns the index past the closing one *)
  let skip_string j =
    let j = ref (j + 1) in
    let stop = ref false in
    while (not !stop) && !j < n do
      (match source.[!j] with
      | '\\' ->
          (* the escaped char may itself be the newline of a "\<nl>"
             line continuation — keep the line count honest *)
          if !j + 1 < n && source.[!j + 1] = '\n' then newline (!j + 1);
          incr j
      | '"' -> stop := true
      | '\n' -> newline !j
      | _ -> ());
      incr j
    done;
    !j
  in
  (* [j] is on the "(*"; skips the whole (possibly nested) comment,
     honouring string literals inside it, as the OCaml lexer does *)
  let skip_comment j =
    let depth = ref 1 in
    let j = ref (j + 2) in
    while !depth > 0 && !j < n do
      if at !j "(*" then begin
        incr depth;
        j := !j + 2
      end
      else if at !j "*)" then begin
        decr depth;
        j := !j + 2
      end
      else if source.[!j] = '"' then j := skip_string !j
      else begin
        if source.[!j] = '\n' then newline !j;
        incr j
      end
    done;
    !j
  in
  let i = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin
      newline !i;
      incr i
    end
    else if at !i marker then begin
      (* extract tokens up to the closing "*)" or end of the token part
         (an optional "- reason" tail is ignored) *)
      let c_line = !line and c_start = !i and c_line_start = !line_start in
      let start = !i + String.length marker in
      let close = ref start in
      while
        !close + 1 < n && not (source.[!close] = '*' && source.[!close + 1] = ')')
      do
        if source.[!close] = '\n' then newline !close;
        incr close
      done;
      let body = String.sub source start (!close - start) in
      let body =
        match String.index_opt body '-' with
        | Some dash -> String.sub body 0 dash
        | None -> body
      in
      let tokens =
        String.split_on_char ',' body
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let only_thing_on_line =
        let rec blank j =
          j >= c_start || ((source.[j] = ' ' || source.[j] = '\t') && blank (j + 1))
        in
        blank c_line_start
      in
      let covers =
        if only_thing_on_line then [ c_line; c_line + 1 ] else [ c_line ]
      in
      comments :=
        { c_line; c_covers = covers; c_tokens = tokens; c_used = false }
        :: !comments;
      i := (if !close + 1 < n then !close + 2 else n)
    end
    else if at !i "(*" then i := skip_comment !i
    else if c = '"' then i := skip_string !i
    else if c = '\'' && !i + 2 < n && source.[!i + 1] <> '\\' && source.[!i + 2] = '\''
    then i := !i + 3 (* char literal, incl. '"' and '(' *)
    else if c = '\'' && !i + 1 < n && source.[!i + 1] = '\\' then begin
      (* escaped char literal: '\n' '\\' '\"' '\123' *)
      match String.index_from_opt source (!i + 2) '\'' with
      | Some j when j - !i <= 6 -> i := j + 1
      | _ -> incr i
    end
    else incr i
  done;
  List.rev !comments

let suppresses (t : t) ~line ~rule =
  let accepted = rule :: aliases rule in
  let hit = ref false in
  List.iter
    (fun c ->
      if
        List.mem line c.c_covers
        && List.exists (fun tok -> List.mem tok accepted) c.c_tokens
      then begin
        c.c_used <- true;
        hit := true
      end)
    t;
  !hit

(* Comments that never matched a finding — candidates for removal. Only
   meaningful after every diag of the run has been pushed through
   [suppresses]. *)
let stale (t : t) = List.filter (fun c -> not c.c_used) t
