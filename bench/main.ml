(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) plus the repository's ablations, then runs one
   Bechamel micro-benchmark per table/figure kernel. Every run also writes
   a JSON report (default BENCH.json) with per-section wall-clock and
   the engine's Obs metrics snapshot, so perf changes can be diffed
   across PRs with the compare mode below.

   Usage:
     dune exec bench/main.exe                 # standard scale (minutes)
     dune exec bench/main.exe -- --quick      # small scale (seconds)
     dune exec bench/main.exe -- --smoke      # tiny smoke subset (CI budget)
     dune exec bench/main.exe -- --paper      # the paper's full sizes
     dune exec bench/main.exe -- fig5 fig10   # only selected sections
     dune exec bench/main.exe -- --out o.json # report path
     dune exec bench/main.exe -- --trace t.jsonl --trace-format jsonl
     dune exec bench/main.exe -- --rt-events  # profile runtime GC pauses
     dune exec bench/main.exe -- compare A.json B.json [--threshold PCT]

   The compare mode is the perf regression gate: it diffs two bench
   reports on their deterministic work metrics (pivots, nodes,
   evictions, ...) and exits nonzero when any regressed past the
   threshold. Timings are printed but never gate. *)

open Whynot
module E = Experiments

(* --- compare mode: the perf regression gate --- *)

let compare_mode () =
  let threshold = ref 2.0 in
  let files = ref [] in
  let expect_threshold = ref false in
  Array.iteri
    (fun i arg ->
      if i > 1 then
        if !expect_threshold then begin
          (match float_of_string_opt arg with
          | Some t -> threshold := t
          | None ->
              prerr_endline "bench compare: --threshold expects a number";
              exit 2);
          expect_threshold := false
        end
        else
          match arg with
          | "--threshold" -> expect_threshold := true
          | f -> files := f :: !files)
    Sys.argv;
  match List.rev !files with
  | [ base_path; cur_path ] -> (
      let load path =
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error msg -> Error msg
        | text -> (
            match Report.Json.of_string text with
            | Ok v -> Ok v
            | Error msg -> Error (path ^ ": " ^ msg))
      in
      match (load base_path, load cur_path) with
      | Ok baseline, Ok current -> (
          match
            Report.Bench_compare.run ~threshold:!threshold ~baseline ~current
              ()
          with
          | Ok r ->
              Format.printf "comparing %s (baseline) -> %s@." base_path
                cur_path;
              Format.printf "%a@?" Report.Bench_compare.pp r;
              exit (if Report.Bench_compare.passed r then 0 else 1)
          | Error msg ->
              prerr_endline ("bench compare: " ^ msg);
              exit 2)
      | Error msg, _ | _, Error msg ->
          prerr_endline ("bench compare: " ^ msg);
          exit 2)
  | _ ->
      prerr_endline
        "usage: bench compare BASELINE.json CURRENT.json [--threshold PCT]";
      exit 2

let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "compare" then
    compare_mode ()

type scale = Smoke | Quick | Standard | Paper

let scale = ref Standard
let only : string list ref = ref []
let report_path = ref "BENCH.json"
let trace_path : string option ref = ref None
let trace_format = ref Report.Trace_json.Jsonl
let trace_sample = ref 1
let rt_events = ref false

let () =
  let expect_csv_dir = ref false
  and expect_out = ref false
  and expect_trace = ref false
  and expect_trace_format = ref false
  and expect_trace_sample = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if !expect_csv_dir then begin
          E.Harness.set_csv_dir (Some arg);
          expect_csv_dir := false
        end
        else if !expect_out then begin
          report_path := arg;
          expect_out := false
        end
        else if !expect_trace then begin
          trace_path := Some arg;
          expect_trace := false
        end
        else if !expect_trace_format then begin
          (match Report.Trace_json.format_of_string arg with
          | Some f -> trace_format := f
          | None ->
              prerr_endline "bench: --trace-format expects jsonl|chrome|folded";
              exit 2);
          expect_trace_format := false
        end
        else if !expect_trace_sample then begin
          (match int_of_string_opt arg with
          | Some n when n >= 1 -> trace_sample := n
          | _ ->
              prerr_endline "bench: --trace-sample expects an integer >= 1";
              exit 2);
          expect_trace_sample := false
        end
        else
          match arg with
          | "--smoke" -> scale := Smoke
          | "--quick" -> scale := Quick
          | "--paper" -> scale := Paper
          | "--standard" -> scale := Standard
          | "--csv" -> expect_csv_dir := true
          | "--out" -> expect_out := true
          | "--trace" -> expect_trace := true
          | "--trace-format" -> expect_trace_format := true
          | "--trace-sample" -> expect_trace_sample := true
          | "--rt-events" -> rt_events := true
          | section -> only := section :: !only)
    Sys.argv

let () =
  if !rt_events then begin
    Obs.Rt_events.start ();
    at_exit Obs.Rt_events.stop
  end

let () =
  match !trace_path with
  | None -> ()
  | Some path ->
      Obs.Trace.configure ~sample:!trace_sample ();
      at_exit (fun () ->
          Report.Trace_json.write_file ~format:!trace_format path
            (Obs.Trace.events ()))

(* The smoke scale reuses the quick parameters but runs only a cheap
   representative subset of sections, so `dune build @bench-smoke` fits a
   test-suite time budget. *)
let smoke_sections =
  [
    "table1"; "table2"; "fig5"; "bnb"; "trace"; "serve"; "serve_mt";
    "serve_trace"; "serve_gc"; "detect";
  ]

let () =
  if !scale = Smoke && !only = [] then only := smoke_sections

let pick ~quick ~standard ~paper =
  match !scale with Smoke | Quick -> quick | Standard -> standard | Paper -> paper

let timings : (string * float) list ref = ref []

let section name f =
  if !only = [] || List.mem name !only then begin
    Format.printf "@.=== %s ===@.@." name;
    let (), dt = E.Harness.time f in
    timings := (name, dt) :: !timings;
    Format.printf "[section %s took %.1f s]@." name dt
  end

(* --- paper tables --- *)

let table1 () = E.Table1.print (E.Table1.run ())

let table2 () =
  E.Table2.print (E.Table2.run ~instances:(pick ~quick:2 ~standard:5 ~paper:10) ())

(* --- consistency: Figure 5 --- *)

let fig5 () =
  let ns = pick ~quick:[ 1; 2; 3 ] ~standard:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
      ~paper:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  let repeats = pick ~quick:2 ~standard:5 ~paper:10 in
  E.Fig5.print (E.Fig5.run { E.Fig5.default with ns; repeats })

(* --- modification: Figures 6-11 --- *)

let fig6 () =
  let config =
    {
      E.Fig6.default with
      event_counts = pick ~quick:[ 4; 6 ] ~standard:[ 4; 6; 8; 10 ] ~paper:[ 4; 6; 8; 10 ];
      days = pick ~quick:8 ~standard:20 ~paper:30;
    }
  in
  E.Fig6.print (E.Fig6.run config)

let rtfm_tuples () = pick ~quick:200 ~standard:6000 ~paper:10_000

let fig7 () =
  E.Rtfm_sweep.print ~title:"Figure 7: varying fault rate (distance 200)" ~vary:`Rate
    (E.Rtfm_sweep.fig7 ~tuples:(rtfm_tuples ())
       ~rates:[ 0.02; 0.05; 0.1; 0.15; 0.2 ] ())

let fig8 () =
  E.Rtfm_sweep.print ~title:"Figure 8: varying fault distance (rate 0.1)"
    ~vary:`Distance
    (E.Rtfm_sweep.fig8 ~tuples:(rtfm_tuples ()) ~distances:[ 50; 100; 200; 300; 400 ] ())

let fig9 () =
  let tuple_counts =
    pick ~quick:[ 100; 200 ] ~standard:[ 1000; 2000; 4000; 6000 ]
      ~paper:[ 2000; 4000; 6000; 8000; 10_000 ]
  in
  E.Rtfm_sweep.print ~title:"Figure 9: varying tuple number (rate 0.1, distance 200)"
    ~vary:`Tuples
    (E.Rtfm_sweep.fig9 ~tuple_counts ())

let fig10 () =
  let config =
    {
      E.Synthetic.default_fig10 with
      ns = pick ~quick:[ 4; 6 ] ~standard:[ 4; 6; 8; 10; 12 ] ~paper:[ 4; 6; 8; 10; 12 ];
      tuples = pick ~quick:100 ~standard:500 ~paper:1000;
    }
  in
  E.Synthetic.print
    ~title:"Figure 10: AND with embedded SEQ, ATLEAST 900 WITHIN 1000"
    (E.Synthetic.fig10 config)

let fig11 () =
  let config =
    {
      E.Synthetic.default_fig11 with
      ns =
        pick ~quick:[ 2; 4 ] ~standard:[ 2; 3; 4; 5; 6; 8; 10 ]
          ~paper:[ 2; 3; 4; 5; 6; 8; 10 ];
      tuples = pick ~quick:100 ~standard:500 ~paper:1000;
    }
  in
  E.Synthetic.print
    ~title:"Figure 11: AND without embedded SEQ, ATLEAST 900 WITHIN 1000"
    (E.Synthetic.fig11 config)

(* --- application: Figure 12 --- *)

let fig12_config () =
  {
    E.Fig12.default with
    answers = pick ~quick:60 ~standard:200 ~paper:300;
    non_answers = pick ~quick:20 ~standard:70 ~paper:100;
  }

let fig12a () =
  E.Fig12.print ~title:"Figure 12(a): query accuracy vs fault rate (distance 160)"
    ~vary:`Rate
    (E.Fig12.fig12a ~config:(fig12_config ()) ~rates:[ 0.05; 0.1; 0.15; 0.2 ] ())

let fig12b () =
  E.Fig12.print ~title:"Figure 12(b): query accuracy vs fault distance (rate 0.1)"
    ~vary:`Distance
    (E.Fig12.fig12b ~config:(fig12_config ()) ~distances:[ 40; 80; 160; 320 ] ())

(* --- ablations --- *)

let ablations () =
  E.Ablation.print_solver
    (E.Ablation.solver_ablation
       ~tuples:(pick ~quick:10 ~standard:50 ~paper:100)
       ~ns:[ 4; 8; 12 ] ());
  E.Ablation.print_sampling
    (E.Ablation.sampling_ablation
       ~repeats:(pick ~quick:10 ~standard:30 ~paper:50)
       ~n:3 ~sample_counts:[ 1; 2; 4; 8; 16; 32 ] ());
  E.Ablation.print_engines
    (E.Ablation.consistency_engine_ablation
       ~ns:(pick ~quick:[ 2; 4 ] ~standard:[ 2; 4; 6; 8; 10 ] ~paper:[ 2; 4; 6; 8; 10 ])
       ());
  E.Ablation.print_pw
    (E.Ablation.possible_worlds_ablation
       ~tuples:(pick ~quick:5 ~standard:20 ~paper:40)
       ~ns:[ 2; 3; 4 ] ());
  (* Multicore bulk explanation: identical results to sequential (tested);
     wall-time scaling is bounded by the cores actually available — domain
     counts beyond them only measure spawn/GC overhead, so the sweep stops
     at the recommended count. *)
  let cores = Domain.recommended_domain_count () in
  let domain_counts =
    List.filter (fun d -> d = 1 || d <= cores) [ 1; 2; 4; 8 ]
  in
  let prng = Whynot.Numeric.Prng.create 99 in
  let tuples = pick ~quick:100 ~standard:1000 ~paper:4000 in
  let clean = Datagen.Rtfm.generate prng ~tuples in
  let observed = Datagen.Faults.trace prng ~rate:0.5 ~distance:400 clean in
  let rows =
    List.map
      (fun domains ->
        let _, dt =
          E.Harness.time (fun () ->
              Whynot.Cep.Bulk.explain_trace ~domains
                ~strategy:Explain.Modification.Full Datagen.Rtfm.patterns observed)
        in
        [ string_of_int domains; E.Harness.ms dt ])
      domain_counts
  in
  E.Harness.print_table
    ~title:
      (Printf.sprintf
         "Ablation: multicore bulk explanation (%d RTFM tuples, Pattern(Full), %d core(s) available)"
         tuples cores)
    ~header:[ "domains"; "wall time (ms)" ]
    rows

(* --- branch-and-bound vs flat binding sweep --- *)

let counter_value name = Option.value ~default:0 (Obs.find_counter name)

let bnb () =
  let ns = pick ~quick:[ 4; 6 ] ~standard:[ 4; 6; 8; 10 ] ~paper:[ 4; 6; 8; 10; 12 ] in
  let tuples_per_n = pick ~quick:2 ~standard:8 ~paper:12 in
  let prng = Numeric.Prng.create 7 in
  let explain ~engine net t =
    Explain.Modification.explain_network ~strategy:Explain.Modification.Full
      ~engine net t
  in
  let total_flat = ref 0.0 and total_bnb = ref 0.0 and total_par = ref 0.0 in
  let rows =
    List.map
      (fun n ->
        (* AND(E1..En): n^2 bindings (n [min] choices x n [max] choices) —
           the binding space actually grows with n, unlike fig10's
           two-child AND. *)
        let pattern = Datagen.Workloads.fig11_pattern ~n in
        let net = Tcn.Encode.pattern_set [ pattern ] in
        let count = Tcn.Bindings.count net.set_bindings in
        let instances =
          List.init tuples_per_n (fun _ ->
              Datagen.Faults.tuple prng ~rate:0.5 ~distance:400
                (Datagen.Workloads.random_matching_tuple ~horizon:5000 prng
                   [ pattern ]))
        in
        let run engine =
          E.Harness.time (fun () ->
              List.map (fun t -> explain ~engine net t) instances)
        in
        let flat_results, flat_dt = run Explain.Modification.Flat in
        let nodes0 = counter_value "bnb.nodes_expanded" in
        let bnb_results, bnb_dt = run (Explain.Modification.Bnb { domains = 1 }) in
        let nodes = counter_value "bnb.nodes_expanded" - nodes0 in
        let par_results, par_dt =
          run
            (Explain.Modification.Bnb
               { domains = Domain.recommended_domain_count () })
        in
        (* The whole point: same optimum, same repaired tuple, on every
           instance, whichever engine and degree of parallelism. *)
        List.iter2
          (fun a b ->
            match (a, b) with
            | None, None -> ()
            | Some ra, Some rb ->
                assert (ra.Explain.Modification.cost = rb.Explain.Modification.cost);
                assert (
                  Events.Tuple.equal ra.Explain.Modification.repaired
                    rb.Explain.Modification.repaired)
            | _ -> assert false)
          flat_results bnb_results;
        List.iter2
          (fun a b ->
            match (a, b) with
            | None, None -> ()
            | Some ra, Some rb ->
                assert (ra.Explain.Modification.cost = rb.Explain.Modification.cost);
                assert (
                  Events.Tuple.equal ra.Explain.Modification.repaired
                    rb.Explain.Modification.repaired)
            | _ -> assert false)
          bnb_results par_results;
        let leaves =
          List.fold_left
            (fun acc r ->
              match r with
              | Some { Explain.Modification.bindings_tried; _ } ->
                  acc + bindings_tried
              | None -> acc)
            0 bnb_results
        in
        total_flat := !total_flat +. flat_dt;
        total_bnb := !total_bnb +. bnb_dt;
        total_par := !total_par +. par_dt;
        [
          string_of_int n;
          string_of_int (count * tuples_per_n);
          string_of_int nodes;
          string_of_int leaves;
          E.Harness.ms flat_dt;
          E.Harness.ms bnb_dt;
          E.Harness.ms par_dt;
          Printf.sprintf "%.1fx" (flat_dt /. bnb_dt);
        ])
      ns
  in
  E.Harness.print_table
    ~title:
      (Printf.sprintf
         "Branch-and-bound vs flat Full sweep (fig11 family, %d faulted \
          tuple(s) per n, %d core(s))"
         tuples_per_n
         (Domain.recommended_domain_count ()))
    ~header:
      [ "n"; "|Aleph_Gamma|"; "bnb nodes"; "bnb leaves"; "flat (ms)";
        "bnb (ms)"; "bnb-par (ms)"; "speedup" ]
    rows;
  timings := ("bnb/flat-total", !total_flat) :: !timings;
  timings := ("bnb/serial-total", !total_bnb) :: !timings;
  timings := ("bnb/parallel-total", !total_par) :: !timings;
  Format.printf "bnb speedup over flat: %.2fx serial, %.2fx parallel@."
    (!total_flat /. !total_bnb)
    (!total_flat /. !total_par)

(* --- Bechamel micro-benchmarks: one Test.make per table/figure kernel --- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let p0 =
    Pattern.Parse.pattern_exn
      "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"
  in
  let t2 =
    Events.Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]
  in
  let net = Tcn.Encode.pattern_set [ p0 ] in
  let fig5_patterns = Datagen.Workloads.fig4_pattern_set ~n:4 ~b:2 in
  let prng = Numeric.Prng.create 123 in
  let flight = Datagen.Flight.generate prng ~num_events:6 ~days:1 in
  let flight_tuple =
    snd (List.hd (Events.Trace.bindings flight.Datagen.Flight.observed))
  in
  let flight_net = Tcn.Encode.pattern_set [ flight.Datagen.Flight.pattern ] in
  let rtfm_tuple =
    let clean = snd (List.hd (Events.Trace.bindings (Datagen.Rtfm.generate prng ~tuples:1))) in
    Datagen.Faults.tuple prng ~rate:0.3 ~distance:200 clean
  in
  let rtfm_net = Tcn.Encode.pattern_set Datagen.Rtfm.patterns in
  let p10 = Datagen.Workloads.fig10_pattern ~n:8 in
  let t10 =
    Datagen.Faults.tuple prng ~rate:0.4 ~distance:500
      (Datagen.Workloads.random_matching_tuple ~horizon:5000 prng [ p10 ])
  in
  let net10 = Tcn.Encode.pattern_set [ p10 ] in
  let p11 = Datagen.Workloads.fig11_pattern ~n:6 in
  let t11 =
    Datagen.Faults.tuple prng ~rate:0.4 ~distance:500
      (Datagen.Workloads.random_matching_tuple ~horizon:5000 prng [ p11 ])
  in
  let net11 = Tcn.Encode.pattern_set [ p11 ] in
  let rtfm_trace =
    Datagen.Faults.trace prng ~rate:0.1 ~distance:160 (Datagen.Rtfm.generate prng ~tuples:20)
  in
  let tests =
    [
      Test.make ~name:"table1/modification-full-p0"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~strategy:Explain.Modification.Full net
               t2));
      Test.make ~name:"table2/match-check-p0"
        (Staged.stage (fun () -> Pattern.Matcher.matches t2 p0));
      Test.make ~name:"fig5/consistency-full-n4"
        (Staged.stage (fun () -> Explain.Consistency.check fig5_patterns));
      Test.make ~name:"fig6/repair-single-flight"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~strategy:Explain.Modification.Single
               flight_net flight_tuple));
      Test.make ~name:"fig7-9/repair-single-rtfm"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~strategy:Explain.Modification.Single
               rtfm_net rtfm_tuple));
      Test.make ~name:"fig10/repair-full-general-n8"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~strategy:Explain.Modification.Full
               net10 t10));
      Test.make ~name:"fig11/repair-single-and-n6"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~strategy:Explain.Modification.Single
               net11 t11));
      Test.make ~name:"fig12/explain-trace-20-tuples"
        (Staged.stage (fun () ->
             Cep.Query.explain_trace ~strategy:Explain.Modification.Single ~max_cost:480
               Datagen.Rtfm.patterns rtfm_trace));
      Test.make ~name:"ablation/repair-flow-general-n8"
        (Staged.stage (fun () ->
             Explain.Modification.explain_network ~solver:Explain.Modification.Flow
               ~strategy:Explain.Modification.Full net10 t10));
      Test.make ~name:"ablation/consistency-pruned-n4"
        (Staged.stage (fun () ->
             Explain.Consistency.check ~strategy:Explain.Consistency.Pruned
               fig5_patterns));
      Test.make ~name:"extension/query-repair-p0"
        (Staged.stage (fun () -> Explain.Query_repair.explain [ p0 ] [ t2 ]));
      Test.make ~name:"extension/topk-p0"
        (Staged.stage (fun () -> Explain.Topk.explain ~k:3 [ p0 ] t2));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (pick ~quick:0.2 ~standard:0.5 ~paper:1.0))
      ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"whynot" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, ns_per_run) :: acc)
      results []
    |> List.sort (fun (na, ta) (nb, tb) ->
           match String.compare na nb with 0 -> Float.compare ta tb | c -> c)
  in
  E.Harness.print_table ~title:"Bechamel micro-benchmarks (per-call latency)"
    ~header:[ "kernel"; "time per call" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
           else Printf.sprintf "%.1f us" (ns /. 1e3)
         in
         [ name; human ])
       rows)

(* --- tracing overhead (acceptance: < 5% on a standard explain run) --- *)

(* Captured before the trace section runs its extra workload, so the
   report's metrics cover exactly the same work as a run without the
   trace section — keeping `compare` parity with earlier bench reports.
   The trace section must therefore stay ordered last. *)
let metrics_before_trace : Report.Json.t option ref = ref None
let trace_overhead : (string * Report.Json.t) list ref = ref []

let trace_section () =
  metrics_before_trace := Some (Report.Obs_json.snapshot ());
  let n = pick ~quick:6 ~standard:8 ~paper:10 in
  let tuples = pick ~quick:4 ~standard:12 ~paper:16 in
  let prng = Numeric.Prng.create 11 in
  let pattern = Datagen.Workloads.fig11_pattern ~n in
  let net = Tcn.Encode.pattern_set [ pattern ] in
  let instances =
    List.init tuples (fun _ ->
        Datagen.Faults.tuple prng ~rate:0.5 ~distance:400
          (Datagen.Workloads.random_matching_tuple ~horizon:5000 prng
             [ pattern ]))
  in
  let run () =
    List.iter
      (fun t ->
        ignore
          (Explain.Modification.explain_network
             ~strategy:Explain.Modification.Full net t))
      instances
  in
  run () (* warm-up *);
  let was_enabled = Obs.Trace.enabled_now () in
  Obs.Trace.disable ();
  let (), off_dt = E.Harness.time run in
  (* Respect a user-supplied --trace ring (keep appending to it);
     otherwise configure a throwaway one at default sampling. *)
  if was_enabled then Obs.Trace.enable () else Obs.Trace.configure ();
  let e0 = Obs.Trace.emitted () and d0 = Obs.Trace.dropped () in
  let (), on_dt = E.Harness.time run in
  let emitted = Obs.Trace.emitted () - e0
  and dropped = Obs.Trace.dropped () - d0 in
  if not was_enabled then Obs.Trace.disable ();
  let overhead_pct = (on_dt -. off_dt) /. off_dt *. 100.0 in
  Format.printf
    "tracing off: %.3f s   on: %.3f s   overhead: %+.2f%%   (%d event(s), %d \
     dropped)@."
    off_dt on_dt overhead_pct emitted dropped;
  trace_overhead :=
    [
      ("off_seconds", Report.Json.Float off_dt);
      ("on_seconds", Report.Json.Float on_dt);
      ("overhead_pct", Report.Json.Float overhead_pct);
      ("events_emitted", Report.Json.Int emitted);
      ("events_dropped", Report.Json.Int dropped);
    ]

(* --- serve: scrape cost and per-event ingest latency --- *)

(* The domain-spawning workload lives in [Serve_load] (keeping this file
   free of Domain.spawn for the domain-safety rule); ordered after the
   trace section so its counters stay out of the report's metrics
   snapshot (compare parity with earlier reports). *)
let serve_stats : (string * Report.Json.t) list ref = ref []

let serve_section () =
  serve_stats :=
    Serve_load.run
      ~events:(pick ~quick:2_000 ~standard:10_000 ~paper:40_000)
      ~scrapes:(pick ~quick:50 ~standard:200 ~paper:500)

(* serve_mt: the pooled/sharded serving soak with its latency histogram,
   p99 gate and (on >=4 cores at gating scales) the 3x throughput gate.
   Post-trace for the same compare-parity reason as serve. *)
let serve_mt_stats : (string * Report.Json.t) list ref = ref []

let serve_mt_section () =
  serve_mt_stats :=
    Serve_load.run_mt
      ~events:(pick ~quick:4_000 ~standard:20_000 ~paper:60_000)
      ~gate:(match !scale with Standard | Paper -> true | Smoke | Quick -> false)

(* serve_trace: the request-capture overhead check — the same pooled
   keep-alive soak with tail capture off then on, the per-stage latency
   decomposition, and (on >=4 cores at gating scales) the <10% overhead
   gate. Post-trace for the same compare-parity reason as serve. *)
let serve_trace_stats : (string * Report.Json.t) list ref = ref []

let serve_trace_section () =
  serve_trace_stats :=
    Serve_load.run_trace
      ~events:(pick ~quick:4_000 ~standard:20_000 ~paper:60_000)
      ~gate:(match !scale with Standard | Paper -> true | Smoke | Quick -> false)

(* serve_gc: the runtime-events profiling check — the same pooled
   keep-alive soak with the GC-pause poller off then on, pause
   percentiles and per-request attribution totals, and (on >=4 cores at
   gating scales) the <5% poller-overhead gate. Post-trace for the same
   compare-parity reason as serve. *)
let serve_gc_stats : (string * Report.Json.t) list ref = ref []

let serve_gc_section () =
  serve_gc_stats :=
    Serve_load.run_gc
      ~events:(pick ~quick:4_000 ~standard:20_000 ~paper:60_000)
      ~gate:(match !scale with Standard | Paper -> true | Smoke | Quick -> false)

(* --- detect: the streaming detector, naive oracle vs compiled plan ---

   Replays one deterministic interleaved stream through both engines.
   The differential check is hard (the bench fails on any disagreement in
   matches or eviction counters); the numbers are the point — the
   compiled plan's per-event cost against the enumerate-off-the-AST
   oracle. Ordered after the trace snapshot so its detector counters stay
   out of the report's gated metrics (compare parity with pre-detect
   reports). *)
let detect_stats : (string * Report.Json.t) list ref = ref []

let detect_section () =
  let events = pick ~quick:5_000 ~standard:40_000 ~paper:120_000 in
  let query = [ Pattern.Parse.pattern_exn "SEQ(A, B, C) WITHIN 50" ] in
  let prng = Numeric.Prng.create 42 in
  let types = [| "A"; "B"; "C"; "X" |] in
  let stream =
    let ts = ref 0 in
    List.init events (fun i ->
        ts := !ts + Numeric.Prng.int prng 3;
        {
          Cep.Detector.event = Numeric.Prng.choose prng types;
          timestamp = !ts;
          tag = Printf.sprintf "s%d" i;
        })
  in
  let run engine =
    let d = Cep.Detector.create ~engine ~max_partials:8192 query in
    let matches = ref 0 in
    let (), dt =
      E.Harness.time (fun () ->
          List.iter
            (fun i ->
              matches := !matches + List.length (Cep.Detector.feed d i))
            stream)
    in
    ( !matches,
      Cep.Detector.dropped_capacity d,
      Cep.Detector.evicted_horizon d,
      dt )
  in
  let nm, nd, nh, naive_dt = run Cep.Detector.Naive in
  let cm, cd, ch, compiled_dt = run Cep.Detector.Compiled in
  if nm <> cm || nd <> cd || nh <> ch then
    failwith
      (Printf.sprintf
         "detect: engines disagree (naive %d matches/%d dropped/%d expired, \
          compiled %d/%d/%d)"
         nm nd nh cm cd ch);
  let per_event dt = dt /. float_of_int events *. 1e6 in
  let speedup = naive_dt /. compiled_dt in
  Format.printf
    "detect: %d event(s), %d match(es)@.naive:    %.3f s (%.2f us/event)@.compiled: %.3f s (%.2f us/event)  speedup %.1fx@."
    events nm naive_dt (per_event naive_dt) compiled_dt
    (per_event compiled_dt) speedup;
  detect_stats :=
    [
      ("events", Report.Json.Int events);
      ("matches", Report.Json.Int nm);
      ("naive_seconds", Report.Json.Float naive_dt);
      ("naive_us_per_event", Report.Json.Float (per_event naive_dt));
      ("compiled_seconds", Report.Json.Float compiled_dt);
      ("compiled_us_per_event", Report.Json.Float (per_event compiled_dt));
      ("speedup", Report.Json.Float speedup);
    ]

let scale_name () =
  match !scale with
  | Smoke -> "smoke"
  | Quick -> "quick"
  | Standard -> "standard"
  | Paper -> "paper"

(* Per-scenario wall-clock + the full metrics snapshot (key solver and
   detector counters included), the perf trajectory's data points. *)
let write_report () =
  let open Report.Json in
  let metrics =
    match !metrics_before_trace with
    | Some m -> m
    | None -> Report.Obs_json.snapshot ()
  in
  let report =
    Obj
      ([
         ("schema", String "whynot.bench/1");
         ("scale", String (scale_name ()));
         ( "sections",
           List
             (List.rev_map
                (fun (name, dt) ->
                  Obj [ ("name", String name); ("seconds", Float dt) ])
                !timings) );
         ("metrics", metrics);
       ]
      @ (match !trace_overhead with
        | [] -> []
        | fields -> [ ("trace_overhead", Obj fields) ])
      @ (match !serve_stats with
        | [] -> []
        | fields -> [ ("serve", Obj fields) ])
      @ (match !serve_mt_stats with
        | [] -> []
        | fields -> [ ("serve_mt", Obj fields) ])
      @ (match !serve_trace_stats with
        | [] -> []
        | fields -> [ ("serve_trace", Obj fields) ])
      @ (match !serve_gc_stats with
        | [] -> []
        | fields -> [ ("serve_gc", Obj fields) ])
      @
      match !detect_stats with
      | [] -> []
      | fields -> [ ("detect", Obj fields) ])
  in
  let oc = open_out !report_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~indent:2 report ^ "\n"));
  Format.printf "@.[wrote %s]@." !report_path

let () =
  Format.printf "whynot benchmark harness — scale: %s@." (scale_name ());
  section "table1" table1;
  section "table2" table2;
  section "fig5" fig5;
  section "fig6" fig6;
  section "fig7" fig7;
  section "fig8" fig8;
  section "fig9" fig9;
  section "fig10" fig10;
  section "fig11" fig11;
  section "fig12a" fig12a;
  section "fig12b" fig12b;
  section "bnb" bnb;
  section "ablations" ablations;
  section "micro" micro;
  (* Trace and serve must stay after every workload section: the trace
     section snapshots [metrics_before_trace] first, keeping its own and
     serve's counter traffic out of the report. *)
  section "trace" trace_section;
  section "serve" serve_section;
  section "serve_mt" serve_mt_section;
  section "serve_trace" serve_trace_section;
  section "serve_gc" serve_gc_section;
  section "detect" detect_section;
  write_report ()
