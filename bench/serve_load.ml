(* The serve bench workload: boots the telemetry service in-process on an
   ephemeral port, replays a generated stream through POST /ingest while a
   second domain scrapes /metrics concurrently, then measures quiet-stream
   scrape cost. Doubles as the CI smoke check that the service mode boots:
   the scraped exposition must parse and its ingest counter must match the
   events fed exactly.

   Isolated in its own module so the file that spawns domains carries no
   module-level mutable state (domain-safety rule): everything mutable
   here is function-local or an Atomic. *)

open Whynot
module E = Experiments

let run ~events ~scrapes =
  let query =
    match Pattern.Parse.pattern_set "SEQ(E1, E2) WITHIN 20" with
    | Ok q -> q
    | Error msg -> failwith msg
  in
  let ingested0 =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
  in
  let service = Serve.Service.create ~max_partials:512 query in
  let server = Serve.Http.listen ~port:0 () in
  let port = Serve.Http.port server in
  let http_domain =
    Domain.spawn (fun () ->
        Serve.Http.serve server (Serve.Service.handle service))
  in
  let stop_scraper = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop_scraper) do
          match Serve.Http.get ~port "/metrics" with
          | Ok (200, _) -> Stdlib.incr n
          | Ok _ | Error _ -> ()
        done;
        !n)
  in
  let batch = 500 in
  let buf = Buffer.create (batch * 16) in
  let sent = ref 0 in
  let (), ingest_dt =
    E.Harness.time (fun () ->
        while !sent < events do
          Buffer.clear buf;
          let k = min batch (events - !sent) in
          for i = 0 to k - 1 do
            let seq = !sent + i in
            (* Alternating E1/E2 with strictly increasing timestamps: a
               steady stream of in-window matches under bounded partials. *)
            Buffer.add_string buf
              (Printf.sprintf "E%d,%d,s%d\n" (1 + (seq mod 2)) (seq * 3) seq)
          done;
          (match Serve.Http.post ~port "/ingest" (Buffer.contents buf) with
          | Ok (200, _) -> ()
          | Ok (st, body) ->
              failwith (Printf.sprintf "ingest HTTP %d: %s" st body)
          | Error msg -> failwith ("ingest: " ^ msg));
          sent := !sent + k
        done)
  in
  Atomic.set stop_scraper true;
  let concurrent_scrapes = Domain.join scraper in
  let last_body = ref "" in
  let (), scrape_dt =
    E.Harness.time (fun () ->
        for _ = 1 to scrapes do
          match Serve.Http.get ~port "/metrics" with
          | Ok (200, body) -> last_body := body
          | Ok (st, _) -> failwith (Printf.sprintf "scrape HTTP %d" st)
          | Error msg -> failwith ("scrape: " ^ msg)
        done)
  in
  Serve.Http.stop server;
  Domain.join http_domain;
  let ingested =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
    - ingested0
  in
  if ingested <> events then
    failwith
      (Printf.sprintf "serve: fed %d event(s) but serve.ingest.lines says %d"
         events ingested);
  (match Report.Prom_text.parse_values !last_body with
  | Error msg -> failwith ("serve: /metrics did not parse: " ^ msg)
  | Ok samples -> (
      let find name =
        List.find_map
          (fun (n, v) -> if String.equal n name then Some v else None)
          samples
      in
      match find "whynot_serve_ingest_lines" with
      | Some v when int_of_float v - ingested0 = events -> ()
      | Some v ->
          failwith
            (Printf.sprintf
               "serve: scraped whynot_serve_ingest_lines %.0f, expected %d" v
               (ingested0 + events))
      | None -> failwith "serve: whynot_serve_ingest_lines missing from scrape"));
  let matches = Option.value ~default:0 (Obs.find_counter "serve.matches") in
  let ingest_us = ingest_dt /. float_of_int events *. 1e6 in
  let scrape_us = scrape_dt /. float_of_int scrapes *. 1e6 in
  Format.printf
    "ingest: %d event(s) in %.3f s (%.1f us/event, %d match(es)) with %d \
     concurrent scrape(s)@.scrape: %d quiet scrape(s), %.1f us each@."
    events ingest_dt ingest_us matches concurrent_scrapes scrapes scrape_us;
  [
    ("events", Report.Json.Int events);
    ("ingest_seconds", Report.Json.Float ingest_dt);
    ("ingest_us_per_event", Report.Json.Float ingest_us);
    ("matches", Report.Json.Int matches);
    ("concurrent_scrapes", Report.Json.Int concurrent_scrapes);
    ("quiet_scrapes", Report.Json.Int scrapes);
    ("scrape_us_per_call", Report.Json.Float scrape_us);
  ]

(* --- serve_mt: the multi-core soak ---

   Replays the same keyed stream twice: once through the sequential
   baseline (inline single-shard service behind the one-thread accept
   loop) and once through the pooled stack (serve_pool workers +
   threaded detector shards), with one keep-alive client domain per
   worker. Each POST's round-trip is timed client-side; the merged
   latency distribution is printed as a histogram and gated on p99.
   The >=3x throughput gate only arms on >=4 cores at standard scale —
   on fewer cores the pooled stack cannot beat the baseline by
   parallelism and the ratio is reported without gating. *)

let mt_query () =
  match Pattern.Parse.pattern_set "SEQ(E1, E2) WITHIN 20" with
  | Ok q -> q
  | Error msg -> failwith msg

let mt_batch = 200
let keys_per_client = 4

(* Client [c]'s lines [seq0, seq0+k): 4 interleaved key streams, each
   alternating E1/E2 on strictly increasing timestamps — every key is an
   independent steady stream of in-window matches. *)
let mt_body ~client ~seq0 ~k =
  let buf = Buffer.create (k * 24) in
  for i = 0 to k - 1 do
    let seq = seq0 + i in
    let key = Printf.sprintf "c%dk%d" client (seq mod keys_per_client) in
    let step = seq / keys_per_client in
    Buffer.add_string buf
      (Printf.sprintf "E%d,%d,%s-%d,%s\n"
         (1 + (step mod 2))
         (step * 3) key step key)
  done;
  Buffer.contents buf

(* Feed [events] lines over one keep-alive connection, timing each POST.
   Returns the per-request latencies in seconds, most recent first. *)
let mt_feed ~port ~client ~events =
  let conn = Serve.Http.Client.connect ~port in
  let lats = ref [] in
  let sent = ref 0 in
  while !sent < events do
    let k = min mt_batch (events - !sent) in
    let body = mt_body ~client ~seq0:!sent ~k in
    let t0 = Unix.gettimeofday () in
    (match Serve.Http.Client.post conn "/ingest" body with
    | Ok (200, _) -> ()
    | Ok (st, b) -> failwith (Printf.sprintf "serve_mt ingest HTTP %d: %s" st b)
    | Error msg -> failwith ("serve_mt ingest: " ^ msg));
    lats := (Unix.gettimeofday () -. t0) :: !lats;
    sent := !sent + k
  done;
  Serve.Http.Client.close conn;
  !lats

let percentile_ms sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank)) *. 1000.0

let latency_bounds_ms = [ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 ]

let p99_budget_ms = 500.0

let run_mt ~events ~gate =
  let query = mt_query () in
  let cores = Domain.recommended_domain_count () in
  let workers = max 2 (min cores 8) in
  let shards = workers in
  let lines0 =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
  in
  (* sequential baseline: inline single-shard service, one-thread loop *)
  let baseline_dt, fresh_us, reused_us =
    let service = Serve.Service.create ~max_partials:512 query in
    let server = Serve.Http.listen ~port:0 () in
    let port = Serve.Http.port server in
    let d =
      Domain.spawn (fun () ->
          Serve.Http.serve server (Serve.Service.handle service))
    in
    let (), dt =
      E.Harness.time (fun () -> ignore (mt_feed ~port ~client:0 ~events))
    in
    (* keep-alive saving, measured against the quiet sequential server so
       pool scheduling noise stays out of it: /health with a fresh
       connection per request vs the same count over one kept-alive
       connection. Per-request medians, not means — on a loaded box a
       single descheduling outlier would otherwise swamp the ~tens of
       microseconds of connect/accept/teardown that keep-alive removes. *)
    let ka_reqs = 80 in
    let median_us check =
      let samples =
        Array.init ka_reqs (fun _ ->
            let t0 = Unix.gettimeofday () in
            (match check () with
            | Ok (200, _) -> ()
            | Ok (st, _) ->
                failwith (Printf.sprintf "serve_mt health HTTP %d" st)
            | Error msg -> failwith ("serve_mt health: " ^ msg));
            Unix.gettimeofday () -. t0)
      in
      Array.sort Float.compare samples;
      samples.(ka_reqs / 2) *. 1e6
    in
    let fresh_us = median_us (fun () -> Serve.Http.get ~port "/health") in
    let conn = Serve.Http.Client.connect ~port in
    let reused_us = median_us (fun () -> Serve.Http.Client.get conn "/health") in
    Serve.Http.Client.close conn;
    Serve.Http.stop server;
    Domain.join d;
    Serve.Service.shutdown service;
    (dt, fresh_us, reused_us)
  in
  (* pooled: worker domains over sharded detection, one client per worker *)
  let per_client = events / workers in
  let pooled_events = per_client * workers in
  let service =
    Serve.Service.create ~max_partials:512 ~shards ~threaded:true query
  in
  let server = Serve.Http.listen ~port:0 () in
  let port = Serve.Http.port server in
  let pool_d =
    Domain.spawn (fun () ->
        Serve.Http.serve_pool ~workers server (Serve.Service.handle service))
  in
  let (latencies, pooled_dt) =
    E.Harness.time (fun () ->
        let clients =
          List.init workers (fun c ->
              Domain.spawn (fun () ->
                  mt_feed ~port ~client:(c + 1) ~events:per_client))
        in
        List.concat_map Domain.join clients)
  in
  Serve.Http.stop server;
  Domain.join pool_d;
  Serve.Service.shutdown service;
  (* both replays fully ingested, nothing shed *)
  let ingested =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines") - lines0
  in
  if ingested <> events + pooled_events then
    failwith
      (Printf.sprintf
         "serve_mt: fed %d event(s) but serve.ingest.lines moved by %d"
         (events + pooled_events) ingested);
  let sorted = Array.of_list latencies in
  Array.sort Float.compare sorted;
  let p50 = percentile_ms sorted 50.0 and p99 = percentile_ms sorted 99.0 in
  let histogram =
    List.map
      (fun le ->
        let n =
          Array.fold_left
            (fun acc l -> if l *. 1000.0 <= le then acc + 1 else acc)
            0 sorted
        in
        (le, n))
      latency_bounds_ms
  in
  let baseline_tput = float_of_int events /. baseline_dt in
  let pooled_tput = float_of_int pooled_events /. pooled_dt in
  let speedup = pooled_tput /. baseline_tput in
  Format.printf
    "baseline: %d event(s) in %.3f s (%.0f ev/s, 1 thread)@.pooled:   %d \
     event(s) in %.3f s (%.0f ev/s, %d worker(s) x %d shard(s)) — %.2fx@."
    events baseline_dt baseline_tput pooled_events pooled_dt pooled_tput
    workers shards speedup;
  Format.printf "request latency (%d POSTs): p50 %.2f ms, p99 %.2f ms@."
    (Array.length sorted) p50 p99;
  List.iter
    (fun (le, n) -> Format.printf "  le %6.1f ms: %d@." le n)
    histogram;
  Format.printf
    "keep-alive: %.1f us/req fresh connections, %.1f us/req reused (%.1f us \
     saved)@."
    fresh_us reused_us (fresh_us -. reused_us);
  (* gates: p99 always; 3x throughput only on >=4 cores at gating scale *)
  if p99 > p99_budget_ms then
    failwith
      (Printf.sprintf "serve_mt: p99 request latency %.1f ms over budget %.1f"
         p99 p99_budget_ms);
  let throughput_gate =
    if not gate then "skipped (sub-standard scale)"
    else if cores < 4 then
      Printf.sprintf "skipped (%d core(s) available, need 4)" cores
    else if speedup < 3.0 then
      failwith
        (Printf.sprintf
           "serve_mt: pooled throughput %.2fx baseline, gate requires 3x on \
            %d cores"
           speedup cores)
    else Printf.sprintf "passed (%.2fx >= 3x)" speedup
  in
  Format.printf "throughput gate: %s@." throughput_gate;
  [
    ("events", Report.Json.Int events);
    ("cores", Report.Json.Int cores);
    ("workers", Report.Json.Int workers);
    ("shards", Report.Json.Int shards);
    ("baseline_seconds", Report.Json.Float baseline_dt);
    ("baseline_events_per_s", Report.Json.Float baseline_tput);
    ("pooled_events", Report.Json.Int pooled_events);
    ("pooled_seconds", Report.Json.Float pooled_dt);
    ("pooled_events_per_s", Report.Json.Float pooled_tput);
    ("speedup", Report.Json.Float speedup);
    ("latency_p50_ms", Report.Json.Float p50);
    ("latency_p99_ms", Report.Json.Float p99);
    ("latency_p99_budget_ms", Report.Json.Float p99_budget_ms);
    ( "latency_histogram_ms",
      Report.Json.Obj
        (List.map
           (fun (le, n) ->
             (Printf.sprintf "le_%g" le, Report.Json.Int n))
           histogram) );
    ("fresh_conn_us_per_req", Report.Json.Float fresh_us);
    ("keepalive_us_per_req", Report.Json.Float reused_us);
    ("keepalive_saving_us", Report.Json.Float (fresh_us -. reused_us));
    ("throughput_gate", Report.Json.String throughput_gate);
  ]

(* --- serve_trace: request-capture overhead and per-stage attribution ---

   Replays the keyed keep-alive soak twice through the pooled stack:
   once with tail capture disabled (the deployment default) and once
   with capture on at threshold 0 — every request retained, the worst
   case — then reports the wall-clock overhead and the per-stage
   latency decomposition read back from the [*.duration_us] histograms
   the request path feeds. The <10% overhead gate only arms on >=4
   cores at gating scales: on fewer cores the client domains time-share
   with the server pool and scheduler noise swamps the per-request cost
   under measurement. *)

let trace_stages =
  [ "serve.request.queue_wait"; "serve.shard.service"; "serve.request.write" ]

let overhead_budget_pct = 10.0

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* Upper bound (us) of the first bucket at which the cumulative count
   reaches p% of [total]; the +inf overflow bucket reports the largest
   finite bound (so the value is a floor there, never an invention). *)
let bucket_percentile_us buckets total p =
  if total = 0 then 0.0
  else
    let target =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int total)))
    in
    let rec go acc last = function
      | [] -> last
      | (bound, count) :: rest ->
          let here =
            match bound with Some b -> float_of_int b | None -> last
          in
          let acc = acc + count in
          if acc >= target then here else go acc here rest
    in
    go 0 0.0 buckets

let run_trace ~events ~gate =
  let query = mt_query () in
  let cores = Domain.recommended_domain_count () in
  let workers = max 2 (min cores 8) in
  let shards = workers in
  let per_client = events / workers in
  let pooled_events = per_client * workers in
  (* One full soak: pooled server, one keep-alive client per worker.
     With [check_slow], hit /debug/slow while the server is still up and
     require a complete span tree in the answer. *)
  let soak ~check_slow =
    let service =
      Serve.Service.create ~max_partials:512 ~shards ~threaded:true query
    in
    let server = Serve.Http.listen ~port:0 () in
    let port = Serve.Http.port server in
    let pool_d =
      Domain.spawn (fun () ->
          Serve.Http.serve_pool ~workers server (Serve.Service.handle service))
    in
    let (), dt =
      E.Harness.time (fun () ->
          let clients =
            List.init workers (fun c ->
                Domain.spawn (fun () ->
                    ignore (mt_feed ~port ~client:(c + 1) ~events:per_client)))
          in
          List.iter Domain.join clients)
    in
    if check_slow then begin
      match Serve.Http.get ~port "/debug/slow" with
      | Ok (200, body) ->
          List.iter
            (fun span ->
              if not (contains ~needle:span body) then
                failwith
                  (Printf.sprintf "serve_trace: /debug/slow lacks %s spans"
                     span))
            ("serve.request" :: trace_stages)
      | Ok (st, _) -> failwith (Printf.sprintf "serve_trace: /debug/slow HTTP %d" st)
      | Error msg -> failwith ("serve_trace: /debug/slow: " ^ msg)
    end;
    Serve.Http.stop server;
    Domain.join pool_d;
    Serve.Service.shutdown service;
    dt
  in
  (* capture off: the near-zero-cost default *)
  Obs.Request.disable ();
  let off_dt = soak ~check_slow:false in
  (* capture on at threshold 0: every request's span tree retained *)
  Obs.Request.configure ~threshold_us:0 ~capacity:64 ();
  let before =
    List.map
      (fun name -> (name, Obs.find_histogram (name ^ ".duration_us")))
      trace_stages
  in
  let on_dt = soak ~check_slow:true in
  let retained = List.length (Obs.Request.retained ()) in
  Obs.Request.disable ();
  Obs.Request.clear_retained ();
  if retained = 0 then failwith "serve_trace: capture-on soak retained nothing";
  (* Per-stage decomposition of the capture-on replay only: diff the
     microsecond histograms against the pre-replay snapshot (earlier
     sections feed the same series). *)
  let stage_stats =
    List.map
      (fun name ->
        let hname = name ^ ".duration_us" in
        let after =
          match Obs.find_histogram hname with
          | Some h -> h
          | None -> failwith ("serve_trace: histogram missing: " ^ hname)
        in
        let delta =
          match List.assoc name before with
          | None -> after.Obs.h_buckets
          | Some b ->
              List.map2
                (fun (bound, ca) (_, cb) -> (bound, ca - cb))
                after.Obs.h_buckets b.Obs.h_buckets
        in
        let total = List.fold_left (fun acc (_, c) -> acc + c) 0 delta in
        ( name,
          total,
          bucket_percentile_us delta total 50.0,
          bucket_percentile_us delta total 99.0 ))
      trace_stages
  in
  let overhead_pct = (on_dt -. off_dt) /. off_dt *. 100.0 in
  Format.printf
    "capture off: %d event(s) in %.3f s@.capture on:  %d event(s) in %.3f s \
     — overhead %+.2f%% (%d trace(s) retained)@."
    pooled_events off_dt pooled_events on_dt overhead_pct retained;
  Format.printf "per-stage latency, capture-on replay (bucket upper bounds):@.";
  List.iter
    (fun (name, n, p50, p99) ->
      Format.printf "  %-26s %6d obs   p50 <= %7.0f us   p99 <= %7.0f us@."
        name n p50 p99)
    stage_stats;
  let overhead_gate =
    if not gate then "skipped (sub-standard scale)"
    else if cores < 4 then
      Printf.sprintf "skipped (%d core(s) available, need 4)" cores
    else if overhead_pct > overhead_budget_pct then
      failwith
        (Printf.sprintf
           "serve_trace: capture overhead %+.2f%% over budget %.0f%%"
           overhead_pct overhead_budget_pct)
    else
      Printf.sprintf "passed (%+.2f%% <= %.0f%%)" overhead_pct
        overhead_budget_pct
  in
  Format.printf "overhead gate: %s@." overhead_gate;
  [
    ("events", Report.Json.Int pooled_events);
    ("cores", Report.Json.Int cores);
    ("workers", Report.Json.Int workers);
    ("shards", Report.Json.Int shards);
    ("off_seconds", Report.Json.Float off_dt);
    ("on_seconds", Report.Json.Float on_dt);
    ("overhead_pct", Report.Json.Float overhead_pct);
    ("overhead_budget_pct", Report.Json.Float overhead_budget_pct);
    ("overhead_gate", Report.Json.String overhead_gate);
    ("retained_traces", Report.Json.Int retained);
    ( "stages",
      Report.Json.Obj
        (List.map
           (fun (name, n, p50, p99) ->
             ( name,
               Report.Json.Obj
                 [
                   ("observations", Report.Json.Int n);
                   ("p50_le_us", Report.Json.Float p50);
                   ("p99_le_us", Report.Json.Float p99);
                 ] ))
           stage_stats) );
  ]

(* --- serve_gc: runtime-events poller overhead and GC attribution ---

   Replays the keyed keep-alive soak twice through the pooled stack:
   once with runtime profiling off (the deployment default) and once
   with [Obs.Rt_events] on — poller domain live, per-domain GC pause
   decoding, per-request gc_overlap_us attribution — then reports the
   wall-clock overhead, pause percentiles from the
   [runtime.gc.pause.duration_us] delta and attribution totals from the
   [serve.request.gc_overlap_us] delta. While the profiled server is
   still up, /debug/gc, /metrics and /debug/slow must all carry the new
   telemetry. The <5% overhead gate arms on >=4 cores at gating scales,
   for the same reason as serve_trace's. *)

let gc_overhead_budget_pct = 5.0

let run_gc ~events ~gate =
  let query = mt_query () in
  let cores = Domain.recommended_domain_count () in
  let workers = max 2 (min cores 8) in
  let shards = workers in
  let per_client = events / workers in
  let pooled_events = per_client * workers in
  (* One full soak. With [check_gc], hit the debug endpoints while the
     profiled server is still up. *)
  let soak ~check_gc =
    let service =
      Serve.Service.create ~max_partials:512 ~shards ~threaded:true query
    in
    let server = Serve.Http.listen ~port:0 () in
    let port = Serve.Http.port server in
    let pool_d =
      Domain.spawn (fun () ->
          Serve.Http.serve_pool ~workers server (Serve.Service.handle service))
    in
    let (), dt =
      E.Harness.time (fun () ->
          let clients =
            List.init workers (fun c ->
                Domain.spawn (fun () ->
                    ignore (mt_feed ~port ~client:(c + 1) ~events:per_client)))
          in
          List.iter Domain.join clients)
    in
    if check_gc then begin
      (match Serve.Http.get ~port "/debug/gc" with
      | Ok (200, body) ->
          if not (contains ~needle:"\"running\":true" body) then
            failwith "serve_gc: /debug/gc reports profiling off";
          if not (contains ~needle:"\"recent\"" body) then
            failwith "serve_gc: /debug/gc carries no domain summaries"
      | Ok (st, _) -> failwith (Printf.sprintf "serve_gc: /debug/gc HTTP %d" st)
      | Error msg -> failwith ("serve_gc: /debug/gc: " ^ msg));
      (match Serve.Http.get ~port "/metrics" with
      | Ok (200, body) ->
          if not (contains ~needle:"runtime_gc_pause_duration_us" body) then
            failwith "serve_gc: /metrics lacks runtime_gc_pause_duration_us"
      | Ok (st, _) -> failwith (Printf.sprintf "serve_gc: /metrics HTTP %d" st)
      | Error msg -> failwith ("serve_gc: /metrics: " ^ msg));
      match Serve.Http.get ~port "/debug/slow?limit=8" with
      | Ok (200, body) ->
          if not (contains ~needle:"\"gc_us\"" body) then
            failwith "serve_gc: /debug/slow lacks per-stage gc attribution"
      | Ok (st, _) ->
          failwith (Printf.sprintf "serve_gc: /debug/slow HTTP %d" st)
      | Error msg -> failwith ("serve_gc: /debug/slow: " ^ msg)
    end;
    Serve.Http.stop server;
    Domain.join pool_d;
    Serve.Service.shutdown service;
    dt
  in
  (* profiling off: the deployment default (stop a globally-enabled
     poller first so the baseline really is unprofiled) *)
  if Obs.Rt_events.running () then Obs.Rt_events.stop ();
  Obs.Request.disable ();
  let off_dt = soak ~check_gc:false in
  (* profiling on, every request retained so /debug/slow shows the
     attribution; histogram deltas isolate this replay from earlier
     sections feeding the same series *)
  let before_pause = Obs.find_histogram "runtime.gc.pause.duration_us" in
  let before_overlap = Obs.find_histogram "serve.request.gc_overlap_us" in
  Obs.Request.configure ~threshold_us:0 ~capacity:64 ();
  Obs.Rt_events.start ();
  let on_dt = soak ~check_gc:true in
  Obs.Rt_events.stop ();
  Obs.Request.disable ();
  Obs.Request.clear_retained ();
  Obs.Rt_events.reset_for_test ();
  let delta name before =
    let after =
      match Obs.find_histogram name with
      | Some h -> h
      | None -> failwith ("serve_gc: histogram missing: " ^ name)
    in
    match before with
    | None -> (after.Obs.h_count, after.Obs.h_sum, after.Obs.h_buckets)
    | Some b ->
        ( after.Obs.h_count - b.Obs.h_count,
          after.Obs.h_sum - b.Obs.h_sum,
          List.map2
            (fun (bound, ca) (_, cb) -> (bound, ca - cb))
            after.Obs.h_buckets b.Obs.h_buckets )
  in
  let pauses_n, pause_sum_us, pause_delta =
    delta "runtime.gc.pause.duration_us" before_pause
  in
  let overlap_n, overlap_sum_us, _ =
    delta "serve.request.gc_overlap_us" before_overlap
  in
  if pauses_n = 0 then failwith "serve_gc: profiled soak recorded no GC pauses";
  let pause_p50 = bucket_percentile_us pause_delta pauses_n 50.0 in
  let pause_p99 = bucket_percentile_us pause_delta pauses_n 99.0 in
  let overhead_pct = (on_dt -. off_dt) /. off_dt *. 100.0 in
  Format.printf
    "profiling off: %d event(s) in %.3f s@.profiling on:  %d event(s) in \
     %.3f s — overhead %+.2f%%@."
    pooled_events off_dt pooled_events on_dt overhead_pct;
  Format.printf
    "GC pauses: %d recorded, %d us total, p50 <= %.0f us, p99 <= %.0f us@."
    pauses_n pause_sum_us pause_p50 pause_p99;
  Format.printf
    "attribution: %d request(s) observed, %d us of request time under GC@."
    overlap_n overlap_sum_us;
  let overhead_gate =
    if not gate then "skipped (sub-standard scale)"
    else if cores < 4 then
      Printf.sprintf "skipped (%d core(s) available, need 4)" cores
    else if overhead_pct > gc_overhead_budget_pct then
      failwith
        (Printf.sprintf "serve_gc: poller overhead %+.2f%% over budget %.0f%%"
           overhead_pct gc_overhead_budget_pct)
    else
      Printf.sprintf "passed (%+.2f%% <= %.0f%%)" overhead_pct
        gc_overhead_budget_pct
  in
  Format.printf "overhead gate: %s@." overhead_gate;
  [
    ("events", Report.Json.Int pooled_events);
    ("cores", Report.Json.Int cores);
    ("workers", Report.Json.Int workers);
    ("shards", Report.Json.Int shards);
    ("off_seconds", Report.Json.Float off_dt);
    ("on_seconds", Report.Json.Float on_dt);
    ("overhead_pct", Report.Json.Float overhead_pct);
    ("overhead_budget_pct", Report.Json.Float gc_overhead_budget_pct);
    ("overhead_gate", Report.Json.String overhead_gate);
    ("gc_pauses", Report.Json.Int pauses_n);
    ("gc_pause_total_us", Report.Json.Int pause_sum_us);
    ("gc_pause_p50_le_us", Report.Json.Float pause_p50);
    ("gc_pause_p99_le_us", Report.Json.Float pause_p99);
    ("requests_observed", Report.Json.Int overlap_n);
    ("gc_overlap_total_us", Report.Json.Int overlap_sum_us);
  ]
