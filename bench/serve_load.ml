(* The serve bench workload: boots the telemetry service in-process on an
   ephemeral port, replays a generated stream through POST /ingest while a
   second domain scrapes /metrics concurrently, then measures quiet-stream
   scrape cost. Doubles as the CI smoke check that the service mode boots:
   the scraped exposition must parse and its ingest counter must match the
   events fed exactly.

   Isolated in its own module so the file that spawns domains carries no
   module-level mutable state (domain-safety rule): everything mutable
   here is function-local or an Atomic. *)

open Whynot
module E = Experiments

let run ~events ~scrapes =
  let query =
    match Pattern.Parse.pattern_set "SEQ(E1, E2) WITHIN 20" with
    | Ok q -> q
    | Error msg -> failwith msg
  in
  let ingested0 =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
  in
  let service = Serve.Service.create ~max_partials:512 query in
  let server = Serve.Http.listen ~port:0 () in
  let port = Serve.Http.port server in
  let http_domain =
    Domain.spawn (fun () ->
        Serve.Http.serve server (Serve.Service.handle service))
  in
  let stop_scraper = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop_scraper) do
          match Serve.Http.get ~port "/metrics" with
          | Ok (200, _) -> Stdlib.incr n
          | Ok _ | Error _ -> ()
        done;
        !n)
  in
  let batch = 500 in
  let buf = Buffer.create (batch * 16) in
  let sent = ref 0 in
  let (), ingest_dt =
    E.Harness.time (fun () ->
        while !sent < events do
          Buffer.clear buf;
          let k = min batch (events - !sent) in
          for i = 0 to k - 1 do
            let seq = !sent + i in
            (* Alternating E1/E2 with strictly increasing timestamps: a
               steady stream of in-window matches under bounded partials. *)
            Buffer.add_string buf
              (Printf.sprintf "E%d,%d,s%d\n" (1 + (seq mod 2)) (seq * 3) seq)
          done;
          (match Serve.Http.post ~port "/ingest" (Buffer.contents buf) with
          | Ok (200, _) -> ()
          | Ok (st, body) ->
              failwith (Printf.sprintf "ingest HTTP %d: %s" st body)
          | Error msg -> failwith ("ingest: " ^ msg));
          sent := !sent + k
        done)
  in
  Atomic.set stop_scraper true;
  let concurrent_scrapes = Domain.join scraper in
  let last_body = ref "" in
  let (), scrape_dt =
    E.Harness.time (fun () ->
        for _ = 1 to scrapes do
          match Serve.Http.get ~port "/metrics" with
          | Ok (200, body) -> last_body := body
          | Ok (st, _) -> failwith (Printf.sprintf "scrape HTTP %d" st)
          | Error msg -> failwith ("scrape: " ^ msg)
        done)
  in
  Serve.Http.stop server;
  Domain.join http_domain;
  let ingested =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
    - ingested0
  in
  if ingested <> events then
    failwith
      (Printf.sprintf "serve: fed %d event(s) but serve.ingest.lines says %d"
         events ingested);
  (match Report.Prom_text.parse_values !last_body with
  | Error msg -> failwith ("serve: /metrics did not parse: " ^ msg)
  | Ok samples -> (
      let find name =
        List.find_map
          (fun (n, v) -> if String.equal n name then Some v else None)
          samples
      in
      match find "whynot_serve_ingest_lines" with
      | Some v when int_of_float v - ingested0 = events -> ()
      | Some v ->
          failwith
            (Printf.sprintf
               "serve: scraped whynot_serve_ingest_lines %.0f, expected %d" v
               (ingested0 + events))
      | None -> failwith "serve: whynot_serve_ingest_lines missing from scrape"));
  let matches = Option.value ~default:0 (Obs.find_counter "serve.matches") in
  let ingest_us = ingest_dt /. float_of_int events *. 1e6 in
  let scrape_us = scrape_dt /. float_of_int scrapes *. 1e6 in
  Format.printf
    "ingest: %d event(s) in %.3f s (%.1f us/event, %d match(es)) with %d \
     concurrent scrape(s)@.scrape: %d quiet scrape(s), %.1f us each@."
    events ingest_dt ingest_us matches concurrent_scrapes scrapes scrape_us;
  [
    ("events", Report.Json.Int events);
    ("ingest_seconds", Report.Json.Float ingest_dt);
    ("ingest_us_per_event", Report.Json.Float ingest_us);
    ("matches", Report.Json.Int matches);
    ("concurrent_scrapes", Report.Json.Int concurrent_scrapes);
    ("quiet_scrapes", Report.Json.Int scrapes);
    ("scrape_us_per_call", Report.Json.Float scrape_us);
  ]
