open Whynot
module Tuple = Events.Tuple
module Trace = Events.Trace
module Prng = Numeric.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Metrics --- *)

let test_rmse_nrmse () =
  let truth = Tuple.of_list [ ("A", 10); ("B", 20) ] in
  let repaired = Tuple.of_list [ ("A", 13); ("B", 16) ] in
  check_float "rmse" (sqrt ((9.0 +. 16.0) /. 2.0)) (Datagen.Metrics.rmse ~truth ~repaired);
  check_float "nrmse normalises by mean truth"
    (sqrt (12.5) /. 15.0)
    (Datagen.Metrics.nrmse ~truth ~repaired);
  check_float "identical tuples" 0.0 (Datagen.Metrics.rmse ~truth ~repaired:truth);
  check_float "empty" 0.0 (Datagen.Metrics.rmse ~truth:Tuple.empty ~repaired)

let test_metrics_mean () =
  check_float "mean" 2.0 (Datagen.Metrics.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Datagen.Metrics.mean [])

let test_trace_metrics () =
  let truth =
    Trace.of_list
      [ ("a", Tuple.of_list [ ("A", 10) ]); ("b", Tuple.of_list [ ("A", 20) ]) ]
  in
  let repaired =
    Trace.of_list
      [ ("a", Tuple.of_list [ ("A", 13) ]); ("b", Tuple.of_list [ ("A", 24) ]) ]
  in
  check_float "trace rmse = mean of per-tuple" 3.5
    (Datagen.Metrics.trace_rmse ~truth ~repaired)

(* --- Faults --- *)

let test_faults_rate_zero_and_one () =
  let prng = Prng.create 1 in
  let t = Tuple.of_list (List.init 20 (fun i -> (Printf.sprintf "E%d" i, 1000))) in
  check_bool "rate 0 unchanged" true
    (Tuple.equal t (Datagen.Faults.tuple prng ~rate:0.0 ~distance:100 t));
  let faulted = Datagen.Faults.tuple prng ~rate:1.0 ~distance:100 t in
  check_bool "rate 1 changes everything" true
    (Tuple.fold (fun e ts acc -> acc && ts <> Tuple.find t e) faulted true)

let test_faults_bounded () =
  let prng = Prng.create 2 in
  let t = Tuple.of_list (List.init 50 (fun i -> (Printf.sprintf "E%d" i, 500))) in
  let faulted = Datagen.Faults.tuple prng ~rate:1.0 ~distance:30 t in
  Tuple.fold
    (fun e ts () ->
      let d = abs (ts - Tuple.find t e) in
      check_bool "within distance" true (d >= 1 && d <= 30))
    faulted ();
  (* never negative even near zero *)
  let near_zero = Tuple.of_list [ ("A", 1) ] in
  for seed = 0 to 30 do
    let f = Datagen.Faults.tuple (Prng.create seed) ~rate:1.0 ~distance:50 near_zero in
    check_bool "clamped at 0" true (Tuple.find f "A" >= 0)
  done

let test_faults_rate_statistics () =
  let prng = Prng.create 3 in
  let t = Tuple.of_list (List.init 2000 (fun i -> (Printf.sprintf "E%d" i, 10_000))) in
  let faulted = Datagen.Faults.tuple prng ~rate:0.3 ~distance:5 t in
  let changed =
    Tuple.fold (fun e ts acc -> if ts <> Tuple.find t e then acc + 1 else acc) faulted 0
  in
  check_bool "about 30% faulted" true (changed > 480 && changed < 720)

(* --- Workloads --- *)

let test_random_matching_tuple () =
  let prng = Prng.create 4 in
  let patterns =
    [ Pattern.Parse.pattern_exn "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" ]
  in
  for _ = 1 to 20 do
    let t = Datagen.Workloads.random_matching_tuple prng patterns in
    check_bool "matches" true (Pattern.Matcher.matches_set t patterns);
    check_int "only real events" 4 (Tuple.cardinal t)
  done

let test_random_matching_tuple_inconsistent () =
  let patterns =
    [ Pattern.Parse.pattern_exn "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" ]
  in
  check_bool "raises on inconsistent" true
    (try
       ignore (Datagen.Workloads.random_matching_tuple (Prng.create 0) patterns);
       false
     with Invalid_argument _ -> true)

let test_matching_trace () =
  let prng = Prng.create 5 in
  let patterns = [ Pattern.Parse.pattern_exn "SEQ(E1, E2) ATLEAST 5 WITHIN 50" ] in
  let trace = Datagen.Workloads.matching_trace prng patterns ~tuples:25 in
  check_int "tuple count" 25 (Trace.cardinal trace);
  check_int "all match" 25 (List.length (Cep.Query.answers patterns trace));
  (* variety: not all tuples identical *)
  let distinct =
    Trace.fold (fun _ t acc -> Tuple.find t "E1" :: acc) trace []
    |> List.sort_uniq compare |> List.length
  in
  check_bool "timestamps vary" true (distinct > 5)

let test_fig4_structure () =
  let ps = Datagen.Workloads.fig4_pattern_set ~n:3 ~b:2 in
  check_int "1 AND + 3 anchors" 4 (List.length ps);
  check_int "12 events" 12
    (Events.Event.Set.cardinal (Pattern.Ast.events_of_set ps));
  check_bool "valid" true (Result.is_ok (Pattern.Ast.validate_set ps))

let test_fig10_fig11_structure () =
  let p10 = Datagen.Workloads.fig10_pattern ~n:8 in
  check_bool "fig10 general" true (Pattern.Ast.classify p10 = Pattern.Ast.General);
  check_int "fig10 events" 8 (Events.Event.Set.cardinal (Pattern.Ast.events p10));
  let p11 = Datagen.Workloads.fig11_pattern ~n:6 in
  check_bool "fig11 no seq in and" true
    (Pattern.Ast.classify p11 = Pattern.Ast.And_no_seq_inside);
  check_int "fig11 events" 6 (Events.Event.Set.cardinal (Pattern.Ast.events p11));
  check_bool "fig10 rejects small n" true
    (try ignore (Datagen.Workloads.fig10_pattern ~n:3); false
     with Invalid_argument _ -> true)

(* --- Flight --- *)

let test_flight_generator () =
  let prng = Prng.create 6 in
  let { Datagen.Flight.pattern; truth; observed } =
    Datagen.Flight.generate prng ~num_events:6 ~days:20
  in
  check_int "days" 20 (Trace.cardinal truth);
  check_int "all truth tuples match" 20
    (List.length (Cep.Query.answers [ pattern ] truth));
  (* observed deviates from truth somewhere across the month *)
  let deviations =
    List.fold_left
      (fun acc (id, t_truth) ->
        let t_obs = Option.get (Trace.find_opt observed id) in
        acc + Tuple.delta t_truth t_obs)
      0 (Trace.bindings truth)
  in
  check_bool "imprecision present" true (deviations > 0);
  check_bool "rejects odd num_events" true
    (try ignore (Datagen.Flight.generate prng ~num_events:5 ~days:1); false
     with Invalid_argument _ -> true)

(* --- RTFM --- *)

let test_rtfm_generator () =
  let prng = Prng.create 7 in
  let trace = Datagen.Rtfm.generate prng ~tuples:30 in
  check_int "tuples" 30 (Trace.cardinal trace);
  check_int "all clean tuples match the extracted patterns" 30
    (List.length (Cep.Query.answers Datagen.Rtfm.patterns trace));
  Trace.fold
    (fun _ t () ->
      List.iter
        (fun a -> check_bool "activity present" true (Tuple.mem a t))
        Datagen.Rtfm.activities)
    trace ();
  check_bool "patterns valid" true
    (Result.is_ok (Pattern.Ast.validate_set Datagen.Rtfm.patterns))

let suite =
  ( "datagen",
    [
      Alcotest.test_case "rmse / nrmse" `Quick test_rmse_nrmse;
      Alcotest.test_case "mean" `Quick test_metrics_mean;
      Alcotest.test_case "trace metrics" `Quick test_trace_metrics;
      Alcotest.test_case "faults rate 0 / 1" `Quick test_faults_rate_zero_and_one;
      Alcotest.test_case "faults bounded and clamped" `Quick test_faults_bounded;
      Alcotest.test_case "faults rate statistics" `Quick test_faults_rate_statistics;
      Alcotest.test_case "random matching tuple" `Quick test_random_matching_tuple;
      Alcotest.test_case "matching tuple: inconsistent raises" `Quick
        test_random_matching_tuple_inconsistent;
      Alcotest.test_case "matching trace" `Quick test_matching_trace;
      Alcotest.test_case "fig4 workload structure" `Quick test_fig4_structure;
      Alcotest.test_case "fig10/fig11 workload structure" `Quick test_fig10_fig11_structure;
      Alcotest.test_case "flight generator" `Quick test_flight_generator;
      Alcotest.test_case "rtfm generator" `Quick test_rtfm_generator;
    ] )
