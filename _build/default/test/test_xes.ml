open Whynot.Events

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_iso8601 () =
  (match Xes.minutes_of_iso8601 "1970-01-01T00:00:00.000+00:00" with
  | Ok 0 -> ()
  | Ok other -> Alcotest.failf "epoch should be 0, got %d" other
  | Error e -> Alcotest.fail e);
  (match Xes.minutes_of_iso8601 "1970-01-02T01:30" with
  | Ok v -> check_int "one day + 90 minutes" (1440 + 90) v
  | Error e -> Alcotest.fail e);
  (match Xes.minutes_of_iso8601 "2020-03-01T00:00:00Z" with
  | Ok v ->
      (* leap year 2020: Feb has 29 days *)
      check_int "round trips through civil arithmetic" v
        (match Xes.minutes_of_iso8601 (Xes.iso8601_of_minutes v) with
        | Ok v' -> v'
        | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  check_bool "garbage rejected" true (Result.is_error (Xes.minutes_of_iso8601 "yesterday"));
  check_bool "bad month rejected" true
    (Result.is_error (Xes.minutes_of_iso8601 "2020-13-01T00:00"))

let prop_date_roundtrip =
  QCheck.Test.make ~name:"iso8601 render/parse round trip" ~count:500
    QCheck.(int_bound 40_000_000) (fun minutes ->
      Xes.minutes_of_iso8601 (Xes.iso8601_of_minutes minutes) = Ok minutes)

let sample_log =
  {xml|<?xml version="1.0" encoding="UTF-8"?>
<!-- exported by some process mining tool -->
<log xes.version="1.0" xmlns="http://www.xes-standard.org/">
  <extension name="Concept" prefix="concept" uri="http://example.org"/>
  <trace>
    <string key="concept:name" value="case-7"/>
    <event>
      <string key="concept:name" value="Create Fine"/>
      <date key="time:timestamp" value="2006-07-24T00:00:00.000+02:00"/>
    </event>
    <event>
      <string key="concept:name" value="Send Fine"/>
      <date key="time:timestamp" value="2006-07-26T10:30:00.000+02:00"/>
      <string key="org:resource" value="unused"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case-9"/>
    <event>
      <string key="concept:name" value="Create Fine"/>
      <date key="time:timestamp" value="2006-08-02T00:00:00.000+02:00"/>
    </event>
    <event>
      <string key="concept:name" value="Create Fine"/>
      <date key="time:timestamp" value="2006-08-03T00:00:00.000+02:00"/>
    </event>
  </trace>
</log>|xml}

let test_import () =
  match Xes.of_string sample_log with
  | Error e -> Alcotest.fail e
  | Ok (trace, dropped) ->
      check_int "two traces" 2 (Trace.cardinal trace);
      check_int "one repeated activity dropped" 1 dropped;
      let case7 = Option.get (Trace.find_opt trace "case-7") in
      check_int "two events" 2 (Tuple.cardinal case7);
      let create = Tuple.find case7 "Create Fine" in
      let send = Tuple.find case7 "Send Fine" in
      check_int "2 days 10h30 apart" ((2 * 1440) + 630) (send - create)

let test_roundtrip () =
  let trace =
    Trace.of_list
      [
        ("a", Tuple.of_list [ ("X", 1000); ("Y", 2000) ]);
        ("b", Tuple.of_list [ ("X", 1500) ]);
      ]
  in
  match Xes.of_string (Xes.to_string trace) with
  | Error e -> Alcotest.fail e
  | Ok (trace', dropped) ->
      check_int "nothing dropped" 0 dropped;
      check_bool "equal traces" true
        (List.for_all2
           (fun (i1, t1) (i2, t2) -> i1 = i2 && Tuple.equal t1 t2)
           (Trace.bindings trace) (Trace.bindings trace'))

let test_escaping () =
  let trace = Trace.of_list [ ("a<b>&\"q\"", Tuple.of_list [ ("E&1", 5) ]) ] in
  match Xes.of_string (Xes.to_string trace) with
  | Error e -> Alcotest.fail e
  | Ok (trace', _) -> (
      match Trace.bindings trace' with
      | [ (id, t) ] ->
          check_str "id escaped and restored" "a<b>&\"q\"" id;
          check_int "event name too" 5 (Tuple.find t "E&1")
      | _ -> Alcotest.fail "expected one trace")

let test_errors () =
  check_bool "not xml" true (Result.is_error (Xes.of_string "hello"));
  check_bool "wrong root" true (Result.is_error (Xes.of_string "<foo></foo>"));
  check_bool "mismatched tags" true
    (Result.is_error (Xes.of_string "<log><trace></log></trace>"));
  check_bool "bad date" true
    (Result.is_error
       (Xes.of_string
          {xml|<log><trace><event><string key="concept:name" value="A"/><date key="time:timestamp" value="nope"/></event></trace></log>|xml}))

let test_file_io () =
  let path = Filename.temp_file "whynot" ".xes" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = Trace.of_list [ ("t", Tuple.of_list [ ("A", 42) ]) ] in
      Xes.write_file path trace;
      match Xes.read_file path with
      | Ok (trace', 0) ->
          check_int "read back" 42
            (Tuple.find (Option.get (Trace.find_opt trace' "t")) "A")
      | Ok _ -> Alcotest.fail "unexpected drops"
      | Error e -> Alcotest.fail e)

let suite =
  ( "xes",
    [
      Alcotest.test_case "iso8601 parsing" `Quick test_iso8601;
      Gen.qt prop_date_roundtrip;
      Alcotest.test_case "import sample log" `Quick test_import;
      Alcotest.test_case "round trip" `Quick test_roundtrip;
      Alcotest.test_case "escaping" `Quick test_escaping;
      Alcotest.test_case "error reporting" `Quick test_errors;
      Alcotest.test_case "file io" `Quick test_file_io;
    ] )
