open Whynot
module Topk = Explain.Topk
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let p0 = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120"
let t2 = Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]

let test_head_is_optimum () =
  match Topk.explain ~k:5 [ p0 ] t2 with
  | None -> Alcotest.fail "expected candidates"
  | Some { candidates; bindings_tried; _ } ->
      check_int "all 16 bindings visited" 16 bindings_tried;
      let head = List.hd candidates in
      check_int "head is the Full optimum (44)" 44 head.cost;
      check_bool "costs non-decreasing" true
        (let costs = List.map (fun c -> c.Topk.cost) candidates in
         List.sort compare costs = costs);
      check_bool "all candidates match" true
        (List.for_all
           (fun c -> Pattern.Matcher.matches c.Topk.repaired p0)
           candidates);
      check_bool "candidates distinct" true
        (let tuples = List.map (fun c -> Tuple.bindings c.Topk.repaired) candidates in
         List.length (List.sort_uniq compare tuples) = List.length tuples)

let test_k_limits () =
  match Topk.explain ~k:1 [ p0 ] t2 with
  | Some { candidates; _ } -> check_int "k=1" 1 (List.length candidates)
  | None -> Alcotest.fail "expected candidates"

let test_blames () =
  match Topk.explain ~k:8 [ p0 ] t2 with
  | None -> Alcotest.fail "expected candidates"
  | Some { blames; _ } ->
      check_bool "some event blamed" true (blames <> []);
      check_bool "frequencies in (0,1]" true
        (List.for_all (fun b -> b.Topk.frequency > 0.0 && b.Topk.frequency <= 1.0) blames);
      check_bool "sorted by frequency desc" true
        (let fs = List.map (fun b -> b.Topk.frequency) blames in
         List.sort (fun a b -> compare b a) fs = fs);
      (* the violated AND(E2,E4) pair must dominate the blame list *)
      let top = (List.hd blames).Topk.event in
      check_bool "top blame is E2 or E4" true (top = "E2" || top = "E4")

let test_inconsistent_none () =
  let bad = p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" in
  check_bool "None on inconsistent" true (Topk.explain [ bad ] t2 = None)

let test_already_matching () =
  let q = p "SEQ(E1, E2)" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 5) ] in
  match Topk.explain [ q ] t with
  | Some { candidates; blames; _ } ->
      check_int "single zero-cost candidate" 0 (List.hd candidates).cost;
      check_int "nothing blamed" 0 (List.length blames)
  | None -> Alcotest.fail "expected candidate"

let test_bad_k () =
  check_bool "k=0 raises" true
    (try ignore (Topk.explain ~k:0 [ p0 ] t2); false with Invalid_argument _ -> true)

let prop_head_equals_full =
  QCheck.Test.make ~name:"top-1 equals Algorithm 2 Full optimum" ~count:100
    (Gen.pattern_and_tuple ~horizon:120 ()) (fun (pat, t) ->
      match
        ( Topk.explain ~k:1 [ pat ] t,
          Explain.Modification.explain ~strategy:Explain.Modification.Full [ pat ] t )
      with
      | Some { candidates = [ head ]; _ }, Some full -> head.cost = full.cost
      | None, None -> true
      | _ -> false)

let suite =
  ( "topk",
    [
      Alcotest.test_case "head is the optimum" `Quick test_head_is_optimum;
      Alcotest.test_case "k limits output" `Quick test_k_limits;
      Alcotest.test_case "blame summary" `Quick test_blames;
      Alcotest.test_case "inconsistent -> None" `Quick test_inconsistent_none;
      Alcotest.test_case "already matching" `Quick test_already_matching;
      Alcotest.test_case "k validation" `Quick test_bad_k;
      Gen.qt prop_head_equals_full;
    ] )
