open Whynot
module Scenarios = Datagen.Scenarios

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let per_scenario name f =
  List.map
    (fun s -> Alcotest.test_case (name ^ ": " ^ s.Scenarios.name) `Quick (fun () -> f s))
    Scenarios.all

let clean_simulations_match s =
  let prng = Numeric.Prng.create 17 in
  let trace = Scenarios.generate prng s ~cases:40 in
  check_int "all clean cases match the query" 40
    (List.length (Cep.Query.answers [ s.Scenarios.query ] trace))

let broken_query_inconsistent s =
  check_bool "broken variant rejected by Algorithm 1" false
    (Explain.Consistency.check ~strategy:Explain.Consistency.Pruned
       [ s.Scenarios.broken_query ])
      .consistent;
  check_bool "real query consistent" true
    (Explain.Consistency.check ~strategy:Explain.Consistency.Pruned
       [ s.Scenarios.query ])
      .consistent

let faulted_cases_explainable s =
  let prng = Numeric.Prng.create 23 in
  let trace = Scenarios.generate prng s ~cases:30 in
  let observed = Datagen.Faults.trace prng ~rate:0.4 ~distance:100 trace in
  let non_answers = Cep.Query.non_answers [ s.Scenarios.query ] observed in
  check_bool "faults create non-answers" true (non_answers <> []);
  let repaired = Cep.Query.explain_trace [ s.Scenarios.query ] observed in
  check_int "everything explainable" 0
    (List.length (Cep.Query.non_answers [ s.Scenarios.query ] repaired))

let lint_blames_broken s =
  let report = Explain.Lint.run [ s.Scenarios.broken_query ] in
  check_bool "some bound flagged fatal" true
    (List.exists
       (fun f -> match f.Explain.Lint.verdict with Explain.Lint.Fatal _ -> true | _ -> false)
       report.findings)

let suite =
  ( "scenarios",
    per_scenario "clean cases match" clean_simulations_match
    @ per_scenario "broken query inconsistent" broken_query_inconsistent
    @ per_scenario "faulted cases explainable" faulted_cases_explainable
    @ per_scenario "lint blames the broken bound" lint_blames_broken )
