open Whynot
module Sql = Cep.Sql
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let p = Pattern.Parse.pattern_exn

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_paper_example () =
  (* Section 7.3: AND(E1, E2) WITHIN 30 — two disjuncts, one per order. *)
  let c = Sql.of_patterns [ p "AND(E1, E2) WITHIN 30" ] in
  let t d = Tuple.of_list [ ("E1", 100); ("E2", 100 + d) ] in
  check_bool "in window, E1 first" true (Sql.eval c (t 30));
  check_bool "in window, E2 first" true (Sql.eval c (t (-30)));
  check_bool "out of window" false (Sql.eval c (t 31));
  (* one disjunct per consistent binding: the two orders of the paper's
     example, plus the two degenerate simultaneous ones (min = max), some
     possibly deduplicated *)
  match c with
  | Sql.Any ds ->
      check_bool "2 to 4 disjuncts" true (List.length ds >= 2 && List.length ds <= 4)
  | _ -> Alcotest.fail "expected a disjunction"

let test_seq_single_conjunct () =
  (* no AND: a single conjunction, as the paper's simple case *)
  let c = Sql.of_patterns [ p "SEQ(E1, E2) ATLEAST 120 WITHIN 200" ] in
  (match c with
  | Sql.All _ | Sql.Cmp _ -> ()
  | _ -> Alcotest.fail "expected one conjunct");
  let sql = Sql.to_string c in
  check_bool "mentions the lower bound" true
    (contains sql "E1 + 120 <= E2");
  check_bool "mentions the upper bound" true (contains sql "E2 <= E1 + 200")

let test_inconsistent_is_false () =
  let c =
    Sql.of_patterns
      [ p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" ]
  in
  check_bool "False" true (c = Sql.False);
  check_str "renders as 1 = 0" "1 = 0" (Sql.to_string c)

let test_select () =
  let s = Sql.select ~table:"Flight" [ p "SEQ(EWR, MCO) ATLEAST 120 WITHIN 200" ] in
  check_bool "full statement" true (contains s "SELECT * FROM Flight WHERE")

let test_binding_cap () =
  check_bool "cap enforced" true
    (try
       ignore
         (Sql.of_patterns ~max_bindings:2 [ p "AND(E1, E2, E3)" ]);
       false
     with Invalid_argument _ -> true)

let test_missing_event_false () =
  let c = Sql.of_patterns [ p "SEQ(E1, E2)" ] in
  check_bool "unbound column is not a match" false
    (Sql.eval c (Tuple.of_list [ ("E1", 5) ]))

(* The headline property: the SQL translation is equivalent to the
   matcher on every tuple. *)
let prop_sql_equals_matcher =
  QCheck.Test.make ~name:"SQL translation = matcher (Section 7.3)" ~count:400
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      match Sql.of_patterns [ pat ] with
      | c -> Sql.eval c t = Pattern.Matcher.matches t pat
      | exception Invalid_argument _ -> true (* binding cap *))

let prop_rendered_sql_reparses_nothing =
  QCheck.Test.make ~name:"rendered SQL is non-empty and balanced" ~count:200
    (Gen.pattern ()) (fun pat ->
      match Sql.of_patterns [ pat ] with
      | c ->
          let s = Sql.to_string c in
          let depth =
            String.fold_left
              (fun d ch -> if ch = '(' then d + 1 else if ch = ')' then d - 1 else d)
              0 s
          in
          String.length s > 0 && depth = 0
      | exception Invalid_argument _ -> true)

let suite =
  ( "sql",
    [
      Alcotest.test_case "paper's 7.3 example" `Quick test_paper_example;
      Alcotest.test_case "simple SEQ conjunct" `Quick test_seq_single_conjunct;
      Alcotest.test_case "inconsistent query = 1 = 0" `Quick test_inconsistent_is_false;
      Alcotest.test_case "select statement" `Quick test_select;
      Alcotest.test_case "binding cap" `Quick test_binding_cap;
      Alcotest.test_case "missing event" `Quick test_missing_event_false;
      Gen.qt prop_sql_equals_matcher;
      Gen.qt prop_rendered_sql_reparses_nothing;
    ] )
