open Whynot
module Sat = Reduction.Sat
module Set_cover = Reduction.Set_cover
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- 3SAT --- *)

let lit var positive = { Sat.var; positive }

let test_sat_eval_and_brute () =
  (* (x0 | x1 | x2) & (!x0 | !x1 | !x2) *)
  let f =
    {
      Sat.num_vars = 3;
      clauses = [ [ lit 0 true; lit 1 true; lit 2 true ];
                  [ lit 0 false; lit 1 false; lit 2 false ] ];
    }
  in
  check_bool "satisfiable" true (Sat.brute_force f <> None);
  check_bool "eval true assignment" true (Sat.eval [| true; false; false |] f);
  check_bool "eval false assignment" false (Sat.eval [| true; true; true |] f)

let test_sat_unsat_instance () =
  (* All 8 sign combinations over 3 vars: unsatisfiable. *)
  let clauses =
    List.concat_map
      (fun s0 ->
        List.concat_map
          (fun s1 -> List.map (fun s2 -> [ lit 0 s0; lit 1 s1; lit 2 s2 ]) [ true; false ])
          [ true; false ])
      [ true; false ]
  in
  let f = { Sat.num_vars = 3; clauses } in
  check_bool "unsat" true (Sat.brute_force f = None);
  check_bool "reduction inconsistent" false
    (Explain.Consistency.check ~strategy:Explain.Consistency.Pruned (Sat.to_patterns f)).consistent

let test_sat_reduction_agreement () =
  let prng = Numeric.Prng.create 42 in
  for _ = 1 to 25 do
    let f = Sat.random_3sat prng ~num_vars:3 ~num_clauses:5 in
    let sat = Sat.brute_force f <> None in
    let report = Explain.Consistency.check ~strategy:Explain.Consistency.Pruned (Sat.to_patterns f) in
    check_bool "Theorem 2: consistent iff satisfiable" sat report.consistent;
    (* And when consistent, the witness decodes to a satisfying assignment. *)
    match report.witness with
    | Some w -> (
        match Sat.assignment_of_witness f w with
        | Some assignment -> check_bool "decoded assignment satisfies" true (Sat.eval assignment f)
        | None -> Alcotest.fail "witness missing gadget events")
    | None -> check_bool "no witness iff unsat" false sat
  done

let test_sat_validation () =
  check_bool "random instance well-formed" true
    (let prng = Numeric.Prng.create 1 in
     let f = Sat.random_3sat prng ~num_vars:5 ~num_clauses:8 in
     List.for_all
       (fun c ->
         List.length c = 3
         && List.length (List.sort_uniq compare (List.map (fun l -> l.Sat.var) c)) = 3)
       f.clauses);
  check_bool "rejects tiny var count" true
    (try
       ignore (Sat.random_3sat (Numeric.Prng.create 1) ~num_vars:2 ~num_clauses:1);
       false
     with Invalid_argument _ -> true)

(* --- SET COVER --- *)

let test_set_cover_brute () =
  let inst = { Set_cover.num_elements = 4; sets = [| [ 0; 1 ]; [ 2; 3 ]; [ 0; 1; 2; 3 ] |] } in
  Alcotest.(check (option (list int))) "picks the big set" (Some [ 2 ])
    (Set_cover.brute_force_min_cover inst);
  check_bool "validates" true (Result.is_ok (Set_cover.validate inst));
  let bad = { Set_cover.num_elements = 4; sets = [| [ 0; 1 ] |] } in
  check_bool "uncovered detected" true (Result.is_error (Set_cover.validate bad))

let test_set_cover_reduction_agreement () =
  let prng = Numeric.Prng.create 7 in
  for _ = 1 to 8 do
    let inst =
      Set_cover.random_instance prng ~num_elements:3 ~num_sets:4 ~density:0.4
    in
    let cover_size =
      List.length (Option.get (Set_cover.brute_force_min_cover inst))
    in
    let patterns = Set_cover.to_patterns inst in
    let t = Set_cover.tuple inst in
    match
      Explain.Modification.explain ~strategy:Explain.Modification.Full
        ~solver:Explain.Modification.Flow patterns t
    with
    | Some { cost; repaired; _ } ->
        check_int "Theorem 3: min cost = min cover size" cover_size cost;
        (* The moved set events form a cover. *)
        let chosen = Set_cover.cover_of_repair inst repaired in
        let covered = Array.make inst.num_elements false in
        List.iter (fun i -> List.iter (fun e -> covered.(e) <- true) inst.sets.(i)) chosen;
        check_bool "repair decodes to a cover" true (Array.for_all Fun.id covered)
    | None -> Alcotest.fail "reduction pattern set must be consistent"
  done

let test_set_cover_tuple_shape () =
  let inst = { Set_cover.num_elements = 2; sets = [| [ 0 ]; [ 1 ]; [ 0; 1 ] |] } in
  let t = Set_cover.tuple inst in
  check_int "S at 2" 2 (Tuple.find t "S0");
  check_int "S' at 0" 0 (Tuple.find t "SP1");
  check_int "U at 1" 1 (Tuple.find t "U0");
  check_int "cardinal" 8 (Tuple.cardinal t)

let suite =
  ( "reduction",
    [
      Alcotest.test_case "3sat eval + brute force" `Quick test_sat_eval_and_brute;
      Alcotest.test_case "3sat unsat instance" `Quick test_sat_unsat_instance;
      Alcotest.test_case "Theorem 2 reduction agreement" `Quick test_sat_reduction_agreement;
      Alcotest.test_case "3sat generator validity" `Quick test_sat_validation;
      Alcotest.test_case "set cover brute force" `Quick test_set_cover_brute;
      Alcotest.test_case "Theorem 3 reduction agreement" `Quick
        test_set_cover_reduction_agreement;
      Alcotest.test_case "set cover tuple shape" `Quick test_set_cover_tuple_shape;
    ] )
