(* Bounded Kleene (REPEAT sugar): parser desugaring, batch matching over
   alias-named tuples, and streaming alias filling in the detector. *)

open Whynot
module Ast = Pattern.Ast
module Event = Events.Event
module Tuple = Events.Tuple
module Detector = Cep.Detector

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let test_alias_scheme () =
  let a = Event.repeat_alias ~base:"B" ~group:2 ~index:3 in
  check_bool "info recovered" true (Event.alias_info a = Some ("B", 2, 3));
  check_bool "plain event has none" true (Event.alias_info "B" = None);
  check_bool "not artificial" false (Event.is_artificial a);
  check_bool "malformed rejected" true (Event.alias_info "B#x_y" = None)

let test_parse_repeat () =
  let q = p "REPEAT(B, 3) ATLEAST 5 WITHIN 40" in
  match q with
  | Ast.Seq ([ Ast.Event b1; Ast.Event b2; Ast.Event b3 ], w) ->
      check_bool "aliases in order" true
        (Event.alias_info b1 = Some ("B", 1, 1)
        && Event.alias_info b2 = Some ("B", 1, 2)
        && Event.alias_info b3 = Some ("B", 1, 3));
      check_bool "window kept" true (w.atleast = Some 5 && w.within = Some 40)
  | _ -> Alcotest.fail "expected a SEQ of three aliases"

let test_parse_repeat_groups_numbered_apart () =
  let q = p "SEQ(REPEAT(A, 2), X, REPEAT(A, 2))" in
  let events = Events.Event.Set.elements (Ast.events q) in
  check_int "five events" 5 (List.length events);
  check_bool "valid (no duplicates)" true (Result.is_ok (Ast.validate q))

let test_parse_repeat_errors () =
  let fails s = check_bool s true (Result.is_error (Pattern.Parse.pattern s)) in
  fails "REPEAT(B, 0)";
  fails "REPEAT(B)";
  fails "REPEAT(SEQ(A, B), 2)";
  fails "REPEAT(B, 2" (* unclosed *)

let test_batch_matching () =
  let q = p "SEQ(A, REPEAT(B, 2) WITHIN 10, C)" in
  let alias i = Event.repeat_alias ~base:"B" ~group:1 ~index:i in
  let t =
    Tuple.of_list [ ("A", 0); (alias 1, 5); (alias 2, 9); ("C", 20) ]
  in
  check_bool "matches" true (Pattern.Matcher.matches t q);
  let bad = Tuple.add (alias 2) 40 t in
  check_bool "copies window enforced" false (Pattern.Matcher.matches bad q)

let inst event timestamp tag = { Detector.event; timestamp; tag }

let test_detector_fills_aliases () =
  let q = p "SEQ(A, REPEAT(B, 2), C) WITHIN 100" in
  let d = Detector.create [ q ] in
  let matches =
    Detector.feed_all d
      [ inst "A" 0 "a"; inst "B" 5 "b1"; inst "B" 9 "b2"; inst "C" 20 "c" ]
  in
  check_int "one match" 1 (List.length matches);
  let tags = (List.hd matches).Detector.tags in
  check_bool "b1 fills the first alias" true
    (List.assoc (Event.repeat_alias ~base:"B" ~group:1 ~index:1) tags = "b1");
  check_bool "b2 fills the second" true
    (List.assoc (Event.repeat_alias ~base:"B" ~group:1 ~index:2) tags = "b2")

let test_detector_counts_combinations () =
  (* three Bs, choose an ascending pair: C(3,2) = 3 matches *)
  let q = p "REPEAT(B, 2) WITHIN 100" in
  let d = Detector.create [ q ] in
  let matches =
    Detector.feed_all d [ inst "B" 1 "x"; inst "B" 2 "y"; inst "B" 3 "z" ]
  in
  check_int "three ascending pairs" 3 (List.length matches)

let test_detector_not_enough_copies () =
  let q = p "REPEAT(B, 3) WITHIN 100" in
  let d = Detector.create [ q ] in
  let matches = Detector.feed_all d [ inst "B" 1 "x"; inst "B" 2 "y" ] in
  check_int "two copies never match a 3-repeat" 0 (List.length matches)

let test_detector_repeat_with_window () =
  (* copies must fit WITHIN 5 of each other region *)
  let q = p "REPEAT(B, 2) ATLEAST 2 WITHIN 5" in
  let d = Detector.create [ q ] in
  let matches =
    Detector.feed_all d [ inst "B" 0 "x"; inst "B" 1 "y"; inst "B" 4 "z" ]
  in
  (* pairs: (0,1) span 1 < atleast 2: no; (0,4) span 4: yes; (1,4) span 3: yes *)
  check_int "window-respecting pairs" 2 (List.length matches)

let test_consistency_and_repair_with_repeat () =
  let q = p "SEQ(A, REPEAT(B, 2) ATLEAST 10, C) WITHIN 15" in
  (* B-copies need >= 10 between first and last; A..C within 15: consistent *)
  check_bool "consistent" true (Explain.Consistency.check [ q ]).consistent;
  let impossible = p "SEQ(A, REPEAT(B, 2) ATLEAST 10, C) WITHIN 5" in
  check_bool "inconsistent" false (Explain.Consistency.check [ impossible ]).consistent;
  (* repair a tuple over alias events *)
  let alias i = Event.repeat_alias ~base:"B" ~group:1 ~index:i in
  let t = Tuple.of_list [ ("A", 0); (alias 1, 1); (alias 2, 3); ("C", 14) ] in
  match Explain.Modification.explain [ q ] t with
  | Some { cost; repaired; _ } ->
      check_bool "repaired matches" true (Pattern.Matcher.matches repaired q);
      check_bool "cost positive" true (cost > 0)
  | None -> Alcotest.fail "expected a repair"

let suite =
  ( "repeat",
    [
      Alcotest.test_case "alias naming scheme" `Quick test_alias_scheme;
      Alcotest.test_case "parse REPEAT" `Quick test_parse_repeat;
      Alcotest.test_case "groups numbered apart" `Quick test_parse_repeat_groups_numbered_apart;
      Alcotest.test_case "REPEAT parse errors" `Quick test_parse_repeat_errors;
      Alcotest.test_case "batch matching over aliases" `Quick test_batch_matching;
      Alcotest.test_case "detector fills aliases" `Quick test_detector_fills_aliases;
      Alcotest.test_case "detector combination count" `Quick test_detector_counts_combinations;
      Alcotest.test_case "not enough copies" `Quick test_detector_not_enough_copies;
      Alcotest.test_case "repeat with window" `Quick test_detector_repeat_with_window;
      Alcotest.test_case "consistency + repair with REPEAT" `Quick
        test_consistency_and_repair_with_repeat;
    ] )
