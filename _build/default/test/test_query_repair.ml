open Whynot
module Qr = Explain.Query_repair
module Tuple = Events.Tuple
module Ast = Pattern.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let test_no_change_when_matching () =
  let q = [ p "SEQ(E1, E2) ATLEAST 5 WITHIN 20" ] in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 10) ] in
  match Qr.explain q [ t ] with
  | Ok { cost; changes; patterns } ->
      check_int "zero cost" 0 cost;
      check_int "no changes" 0 (List.length changes);
      check_bool "query unchanged" true (List.for_all2 Ast.equal q patterns)
  | Error _ -> Alcotest.fail "expected success"

let test_widen_within () =
  let q = [ p "SEQ(E1, E2) ATLEAST 5 WITHIN 20" ] in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 35) ] in
  match Qr.explain q [ t ] with
  | Ok { cost; changes; patterns } ->
      check_int "widen by 15" 15 cost;
      check_int "one change" 1 (List.length changes);
      check_bool "repaired accepts" true (Pattern.Matcher.matches_set t patterns);
      let c = List.hd changes in
      check_bool "within became 35" true (c.new_window.within = Some 35);
      check_bool "atleast untouched" true (c.new_window.atleast = Some 5)
  | Error _ -> Alcotest.fail "expected success"

let test_lower_atleast () =
  let q = [ p "SEQ(E1, E2) ATLEAST 50" ] in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 30) ] in
  match Qr.explain q [ t ] with
  | Ok { cost; changes; _ } ->
      check_int "lower by 20" 20 cost;
      check_bool "atleast became 30" true
        ((List.hd changes).new_window.atleast = Some 30)
  | Error _ -> Alcotest.fail "expected success"

let test_nested_windows () =
  (* Example-1 style: the inner AND window and the outer ATLEAST both
     need adjustment for this tuple. *)
  let q = [ p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" ] in
  let t2 = Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ] in
  match Qr.explain q [ t2 ] with
  | Ok { cost; patterns; changes } ->
      (* only |E4 - E2| = 74 violates its WITHIN 30: widen by 44. *)
      check_int "widen the second AND by 44" 44 cost;
      check_int "exactly one window changed" 1 (List.length changes);
      check_bool "repaired accepts t2" true (Pattern.Matcher.matches_set t2 patterns)
  | Error _ -> Alcotest.fail "expected success"

let test_order_violation_unfixable () =
  let q = [ p "SEQ(E1, E2) WITHIN 10" ] in
  let t = Tuple.of_list [ ("E1", 20); ("E2", 5) ] in
  match Qr.explain q [ t ] with
  | Error (Qr.Order_violation _) -> ()
  | Ok _ -> Alcotest.fail "order violations cannot be window-repaired"
  | Error f -> Alcotest.failf "wrong failure: %a" Qr.pp_failure f

let test_unbound_event () =
  let q = [ p "SEQ(E1, E2)" ] in
  match Qr.explain q [ Tuple.of_list [ ("E1", 0) ] ] with
  | Error (Qr.Unbound_event "E2") -> ()
  | _ -> Alcotest.fail "expected Unbound_event"

let test_multiple_tuples () =
  let q = [ p "SEQ(E1, E2) ATLEAST 10 WITHIN 20" ] in
  let tuples =
    [
      Tuple.of_list [ ("E1", 0); ("E2", 5) ] (* needs atleast <= 5 *);
      Tuple.of_list [ ("E1", 0); ("E2", 28) ] (* needs within >= 28 *);
    ]
  in
  match Qr.explain q tuples with
  | Ok { cost; patterns; _ } ->
      check_int "both directions widened" (5 + 8) cost;
      check_bool "accepts all expected" true
        (List.for_all (fun t -> Pattern.Matcher.matches_set t patterns) tuples)
  | Error _ -> Alcotest.fail "expected success"

let test_changes_ranked_by_cost () =
  let q = [ p "SEQ(SEQ(E1, E2) WITHIN 5, SEQ(E3, E4) WITHIN 5) WITHIN 100" ] in
  let t =
    Tuple.of_list [ ("E1", 0); ("E2", 8) (* +3 *); ("E3", 10); ("E4", 40) (* +25 *) ]
  in
  match Qr.explain q [ t ] with
  | Ok { changes = first :: _ :: _ as changes; _ } ->
      check_int "two changes" 2 (List.length changes);
      check_int "biggest first" 25 first.change_cost
  | Ok _ -> Alcotest.fail "expected two changes"
  | Error _ -> Alcotest.fail "expected success"

let test_empty_expected_raises () =
  check_bool "raises" true
    (try ignore (Qr.explain [ p "E1" ] []); false with Invalid_argument _ -> true)

(* Soundness: a successful query repair always accepts all expected tuples,
   costs zero iff they already match, and only ever *widens* windows. *)
let prop_sound =
  QCheck.Test.make ~name:"query repair: sound, minimal-zero, widening-only"
    ~count:300 (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      match Qr.explain [ pat ] [ t ] with
      | Error (Qr.Order_violation _) -> not (Pattern.Matcher.matches t pat)
      | Error (Qr.Unbound_event _) -> false (* generator binds all events *)
      | Ok { patterns; cost; changes } ->
          let widened_only =
            List.for_all
              (fun c ->
                let ge_old =
                  match (c.Qr.old_window.within, c.Qr.new_window.within) with
                  | Some o, Some n -> n >= o
                  | None, None -> true
                  | _ -> false
                in
                let le_old =
                  match (c.Qr.old_window.atleast, c.Qr.new_window.atleast) with
                  | Some o, Some n -> n <= o
                  | None, None -> true
                  | _ -> false
                in
                ge_old && le_old)
              changes
          in
          List.for_all (fun p' -> Pattern.Matcher.matches t p') patterns
          && (cost = 0) = Pattern.Matcher.matches t pat
          && widened_only)

(* Duality with the data repair: after repairing the query, the data repair
   is free; and vice versa the original query accepts the data repair. *)
let prop_duality =
  QCheck.Test.make ~name:"query repair and data repair are dual routes"
    ~count:150 (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      match Qr.explain [ pat ] [ t ] with
      | Error _ -> true
      | Ok { patterns; _ } -> (
          match Explain.Modification.explain patterns t with
          | Some { cost; _ } -> cost = 0
          | None -> false))

let qt = Gen.qt

let suite =
  ( "query_repair",
    [
      Alcotest.test_case "no change when matching" `Quick test_no_change_when_matching;
      Alcotest.test_case "widen WITHIN" `Quick test_widen_within;
      Alcotest.test_case "lower ATLEAST" `Quick test_lower_atleast;
      Alcotest.test_case "nested windows (Example 1 tuple)" `Quick test_nested_windows;
      Alcotest.test_case "order violation unfixable" `Quick test_order_violation_unfixable;
      Alcotest.test_case "unbound event" `Quick test_unbound_event;
      Alcotest.test_case "multiple expected tuples" `Quick test_multiple_tuples;
      Alcotest.test_case "changes ranked by cost" `Quick test_changes_ranked_by_cost;
      Alcotest.test_case "empty expected raises" `Quick test_empty_expected_raises;
      qt prop_sound;
      qt prop_duality;
    ] )
