open Whynot
module Tuple = Events.Tuple
module Trace = Events.Trace
module Query = Cep.Query
module Stream = Cep.Stream

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let query = [ p "SEQ(E1, E2) ATLEAST 10 WITHIN 20" ]

let good = Tuple.of_list [ ("E1", 0); ("E2", 15) ]
let bad = Tuple.of_list [ ("E1", 0); ("E2", 50) ]

let trace =
  Trace.of_list [ ("a", good); ("b", bad); ("c", Tuple.of_list [ ("E1", 5); ("E2", 16) ]) ]

let test_answers () =
  Alcotest.(check (list string)) "answers" [ "a"; "c" ] (Query.answers query trace);
  Alcotest.(check (list string)) "non-answers" [ "b" ] (Query.non_answers query trace)

let test_accuracy () =
  let a = Query.accuracy ~truth:[ "a"; "b"; "c" ] ~found:[ "a"; "b"; "d" ] in
  check_bool "precision 2/3" true (abs_float (a.precision -. (2. /. 3.)) < 1e-9);
  check_bool "recall 2/3" true (abs_float (a.recall -. (2. /. 3.)) < 1e-9);
  check_bool "f" true (abs_float (a.f_measure -. (2. /. 3.)) < 1e-9);
  let perfect = Query.accuracy ~truth:[ "a" ] ~found:[ "a" ] in
  check_bool "perfect" true (perfect.f_measure = 1.0);
  let none = Query.accuracy ~truth:[ "a" ] ~found:[] in
  check_bool "empty found precision 1" true (none.precision = 1.0);
  check_bool "empty found recall 0" true (none.recall = 0.0);
  check_bool "zero f" true (none.f_measure = 0.0)

let test_explain_trace () =
  let repaired = Query.explain_trace query trace in
  check_int "all repaired" 0 (List.length (Query.non_answers query repaired));
  (* answers pass through untouched *)
  check_bool "answer unchanged" true
    (Tuple.equal (Option.get (Trace.find_opt repaired "a")) good)

let test_explain_trace_budget () =
  (* b needs cost 30 to reach within-20; a budget below that leaves it. *)
  let repaired = Query.explain_trace ~max_cost:10 query trace in
  Alcotest.(check (list string)) "over-budget kept as non-answer" [ "b" ]
    (Query.non_answers query repaired)

let test_stream_matched () =
  let engine = Stream.create query in
  check_bool "first event pending" true
    (Stream.feed engine ~key:"k" "E1" 0 = Stream.Pending);
  match Stream.feed engine ~key:"k" "E2" 15 with
  | Stream.Matched t -> check_int "tuple complete" 2 (Tuple.cardinal t)
  | _ -> Alcotest.fail "expected Matched"

let test_stream_failed_with_explanation () =
  let engine = Stream.create ~explain:true query in
  ignore (Stream.feed engine ~key:"k" "E1" 0);
  match Stream.feed engine ~key:"k" "E2" 50 with
  | Stream.Failed { failure = Pattern.Matcher.Window_violation _; explanation; _ } -> (
      match explanation with
      | Some e ->
          check_int "explanation cost" 30 e.Explain.Modification.cost;
          check_bool "explanation matches" true
            (Pattern.Matcher.matches_set e.repaired query)
      | None -> Alcotest.fail "expected explanation")
  | _ -> Alcotest.fail "expected Failed with window violation"

let test_stream_misc () =
  let engine = Stream.create query in
  check_bool "irrelevant event ignored" true
    (Stream.feed engine ~key:"k" "Other" 3 = Stream.Pending);
  check_bool "current empty for unseen key" true
    (Tuple.is_empty (Stream.current engine ~key:"zzz"));
  ignore (Stream.feed engine ~key:"k1" "E1" 0);
  ignore (Stream.feed engine ~key:"k1" "E2" 15);
  ignore (Stream.feed engine ~key:"k2" "E1" 0);
  check_int "one finished key" 1 (List.length (Stream.finished engine));
  (* latest timestamp wins and re-evaluates *)
  (match Stream.feed engine ~key:"k1" "E2" 100 with
  | Stream.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed after overwrite");
  check_bool "required events" true
    (Events.Event.Set.equal (Stream.required_events engine)
       (Events.Event.Set.of_list [ "E1"; "E2" ]))

let prop_answers_partition =
  QCheck.Test.make ~name:"answers and non-answers partition the trace" ~count:100
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      let trace = Trace.of_list [ ("x", t) ] in
      let a = Query.answers [ pat ] trace and n = Query.non_answers [ pat ] trace in
      List.length a + List.length n = 1
      && (a = [ "x" ]) = Pattern.Matcher.matches t pat)

let suite =
  ( "cep",
    [
      Alcotest.test_case "answers / non-answers" `Quick test_answers;
      Alcotest.test_case "accuracy metrics" `Quick test_accuracy;
      Alcotest.test_case "explain_trace repairs all" `Quick test_explain_trace;
      Alcotest.test_case "explain_trace cost budget" `Quick test_explain_trace_budget;
      Alcotest.test_case "stream matched" `Quick test_stream_matched;
      Alcotest.test_case "stream failed + explanation" `Quick
        test_stream_failed_with_explanation;
      Alcotest.test_case "stream bookkeeping" `Quick test_stream_misc;
      Gen.qt prop_answers_partition;
    ] )
