(* QCheck generators shared by the property-based tests: random well-formed
   patterns (unique events per pattern, valid windows), random tuples over
   their events, and random interval-condition sets. *)

open Whynot
module Ast = Pattern.Ast
module Tuple = Events.Tuple

let event_name i = Printf.sprintf "E%d" i

(* Build a random pattern consuming events from a pool so no event repeats
   within the pattern (Definition 2 binds each event once). *)
let rec build st pool depth =
  let n = List.length pool in
  if n = 0 then invalid_arg "Gen.build: empty pool";
  if n = 1 || depth = 0 then
    match pool with
    | e :: rest -> (Ast.event e, rest)
    | [] -> assert false
  else begin
    let arity = 2 + Random.State.int st (min 2 (n - 1)) in
    let rec children k pool acc =
      if k = 0 || pool = [] then (List.rev acc, pool)
      else
        let child, pool = build st pool (depth - 1) in
        children (k - 1) pool (child :: acc)
    in
    let kids, pool = children arity pool [] in
    let kids =
      match kids with [] -> [ Ast.event "E_fallback" ] | ks -> ks
    in
    let atleast =
      if Random.State.bool st then Some (Random.State.int st 40) else None
    in
    let within =
      if Random.State.bool st then
        Some (Option.value atleast ~default:0 + Random.State.int st 80)
      else None
    in
    let w = { Ast.atleast; within } in
    if Random.State.bool st then (Ast.Seq (kids, w), pool) else (Ast.And (kids, w), pool)
  end

let pattern_gen ?(max_events = 7) () : Ast.t QCheck.Gen.t =
 fun st ->
  let n = 1 + Random.State.int st max_events in
  let pool = List.init n event_name in
  let p, _ = build st pool 3 in
  p

let pattern ?max_events () =
  QCheck.make
    ~print:(fun p -> Ast.to_string p)
    (pattern_gen ?max_events ())

(* A pattern together with a uniform random tuple over exactly its events. *)
let pattern_and_tuple_gen ?(horizon = 200) ?max_events () :
    (Ast.t * Tuple.t) QCheck.Gen.t =
 fun st ->
  let p = pattern_gen ?max_events () st in
  let t =
    Events.Event.Set.fold
      (fun e acc -> Tuple.add e (Random.State.int st (horizon + 1)) acc)
      (Ast.events p) Tuple.empty
  in
  (p, t)

let pattern_and_tuple ?horizon ?max_events () =
  QCheck.make
    ~print:(fun (p, t) -> Format.asprintf "%a over %a" Ast.pp p Tuple.pp t)
    (pattern_and_tuple_gen ?horizon ?max_events ())

(* Random interval-condition sets over a small event universe — may be
   consistent or not, which is the point for consistency cross-checks. *)
let intervals_gen ?(events = 5) ?(conditions = 6) () :
    Tcn.Condition.interval list QCheck.Gen.t =
 fun st ->
  List.init conditions (fun _ ->
      let pick () = event_name (Random.State.int st events) in
      let src = pick () in
      let dst = ref (pick ()) in
      while !dst = src do
        dst := pick ()
      done;
      let lo = Random.State.int st 60 - 20 in
      let hi =
        if Random.State.bool st then Some (lo + Random.State.int st 50) else None
      in
      { Tcn.Condition.src; dst = !dst; lo; hi })

let intervals ?events ?conditions () =
  QCheck.make
    ~print:(fun phis ->
      Format.asprintf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Tcn.Condition.pp_interval)
        phis)
    (intervals_gen ?events ?conditions ())

let tuple_over events ~horizon : Tuple.t QCheck.Gen.t =
 fun st ->
  List.fold_left
    (fun acc e -> Tuple.add e (Random.State.int st (horizon + 1)) acc)
    Tuple.empty events

(* Deterministic registration of QCheck properties: a fixed seed makes every
   `dune runtest` reproduce the same cases (counterexamples found during
   development are pinned as regression tests where they matter). *)
let qt test = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20210620 |]) test
