open Whynot
module Sim = Datagen.Process_sim
module Tuple = Events.Tuple
module Trace = Events.Trace
module Prng = Numeric.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dep ?(min_delay = 1) ?(max_delay = 10) after = { Sim.after; min_delay; max_delay }

let act ?(requires = []) ?(skip = 0.0) name =
  { Sim.name; requires; skip_probability = skip }

let linear =
  Sim.model_exn
    [ act "A"; act ~requires:[ dep "A" ] "B"; act ~requires:[ dep "B" ] "C" ]

let test_validation () =
  let err acts msg =
    match Sim.model acts with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  err [ act "A"; act "A" ] "duplicate names";
  err [ act ~requires:[ dep "Z" ] "A" ] "unknown dependency";
  err
    [ act ~requires:[ dep ~min_delay:5 ~max_delay:2 "B" ] "A"; act "B" ]
    "inverted delays";
  err [ act ~skip:1.5 "A" ] "bad probability";
  err
    [ act ~requires:[ dep "B" ] "A"; act ~requires:[ dep "A" ] "B" ]
    "cycle";
  check_bool "valid model accepted" true (Result.is_ok (Sim.model [ act "A" ]))

let test_topological_order () =
  let m =
    Sim.model_exn
      [ act ~requires:[ dep "A"; dep "B" ] "C"; act "A"; act ~requires:[ dep "A" ] "B" ]
  in
  Alcotest.(check (list string)) "topo order" [ "A"; "B"; "C" ] (Sim.activities m)

let test_simulate_respects_delays () =
  let prng = Prng.create 1 in
  for _ = 1 to 50 do
    let t = Sim.simulate_case prng linear in
    let a = Tuple.find t "A" and b = Tuple.find t "B" and c = Tuple.find t "C" in
    check_int "A at start" 0 a;
    check_bool "B delay in range" true (b - a >= 1 && b - a <= 10);
    check_bool "C delay in range" true (c - b >= 1 && c - b <= 10)
  done

let test_join_waits_for_all () =
  let m =
    Sim.model_exn
      [
        act "A";
        act ~requires:[ dep ~min_delay:100 ~max_delay:100 "A" ] "Slow";
        act ~requires:[ dep ~min_delay:1 ~max_delay:1 "A" ] "Fast";
        act ~requires:[ dep ~min_delay:0 ~max_delay:0 "Slow"; dep ~min_delay:0 ~max_delay:0 "Fast" ] "Join";
      ]
  in
  let t = Sim.simulate_case (Prng.create 2) m in
  check_int "join waits for the slow branch" 100 (Tuple.find t "Join")

let test_skip_propagates () =
  let m =
    Sim.model_exn
      [ act "A"; act ~requires:[ dep "A" ] ~skip:1.0 "B"; act ~requires:[ dep "B" ] "C" ]
  in
  let t = Sim.simulate_case (Prng.create 3) m in
  check_bool "B skipped" false (Tuple.mem "B" t);
  check_bool "C transitively skipped" false (Tuple.mem "C" t);
  check_bool "A present" true (Tuple.mem "A" t)

let test_skip_statistics () =
  let m = Sim.model_exn [ act "A"; act ~requires:[ dep "A" ] ~skip:0.5 "B" ] in
  let prng = Prng.create 4 in
  let present = ref 0 in
  for _ = 1 to 1000 do
    if Tuple.mem "B" (Sim.simulate_case prng m) then incr present
  done;
  check_bool "about half present" true (!present > 400 && !present < 600)

let test_simulate_log () =
  let prng = Prng.create 5 in
  let log = Sim.simulate ~start_spread:500 prng linear ~cases:30 in
  check_int "cases" 30 (Trace.cardinal log);
  let starts =
    Trace.fold (fun _ t acc -> Tuple.find t "A" :: acc) log []
  in
  check_bool "starts vary" true (List.length (List.sort_uniq compare starts) > 5)

let test_matches_compatible_pattern () =
  (* windows subsumeing the delay ranges always match *)
  let q = Pattern.Parse.pattern_exn "SEQ(A, B, C) ATLEAST 2 WITHIN 20" in
  let prng = Prng.create 6 in
  let log = Sim.simulate prng linear ~cases:50 in
  check_int "all simulated cases match" 50
    (List.length (Cep.Query.answers [ q ] log))

let suite =
  ( "process_sim",
    [
      Alcotest.test_case "model validation" `Quick test_validation;
      Alcotest.test_case "topological order" `Quick test_topological_order;
      Alcotest.test_case "delays respected" `Quick test_simulate_respects_delays;
      Alcotest.test_case "join waits for all" `Quick test_join_waits_for_all;
      Alcotest.test_case "skip propagates" `Quick test_skip_propagates;
      Alcotest.test_case "skip statistics" `Quick test_skip_statistics;
      Alcotest.test_case "simulate a log" `Quick test_simulate_log;
      Alcotest.test_case "compatible pattern matches" `Quick test_matches_compatible_pattern;
    ] )
