open Whynot
module Ast = Pattern.Ast
module Tuple = Events.Tuple
module Condition = Tcn.Condition
module Consistency = Explain.Consistency
module Modification = Explain.Modification
module Baselines = Explain.Baselines

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

(* --- Consistency (Algorithm 1) --- *)

let test_consistency_trivial () =
  let r = Consistency.check [ p "SEQ(E1, E2) ATLEAST 1 WITHIN 5" ] in
  check_bool "consistent" true r.consistent;
  check_bool "witness matches" true (r.witness <> None)

let test_consistency_single_event () =
  let r = Consistency.check [ p "E1" ] in
  check_bool "consistent" true r.consistent;
  match r.witness with
  | Some w -> check_bool "witness binds E1" true (Tuple.mem "E1" w)
  | None -> Alcotest.fail "expected witness"

let test_consistency_paper_inconsistent () =
  (* Section 1.1.1: two ATLEAST-30 ANDs cannot fit in a 45-minute SEQ. *)
  let r =
    Consistency.check
      [ p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" ]
  in
  check_bool "inconsistent" false r.consistent;
  check_int "all 16 bindings refuted" 16 r.bindings_checked

let test_consistency_cross_pattern () =
  (* Consistent individually, contradictory jointly. *)
  let ps = [ p "SEQ(E1, E2) ATLEAST 10"; p "SEQ(E2, E1) ATLEAST 10" ] in
  check_bool "joint inconsistency detected" false (Consistency.check ps).consistent

let test_consistency_fig4_family () =
  List.iter
    (fun n ->
      check_bool "b=1 inconsistent" false
        (Consistency.check (Datagen.Workloads.fig4_pattern_set ~n ~b:1)).consistent;
      check_bool "b=2 consistent" true
        (Consistency.check (Datagen.Workloads.fig4_pattern_set ~n ~b:2)).consistent)
    [ 1; 2; 3 ]

let test_consistency_sampled_no_false_positive () =
  (* Randomized runs on inconsistent sets must never report consistent. *)
  for seed = 0 to 20 do
    let r =
      Consistency.check ~strategy:(Consistency.Sampled 4) ~seed
        (Datagen.Workloads.fig4_pattern_set ~n:2 ~b:1)
    in
    check_bool "never false positive" false r.consistent;
    check_bool "flagged inexact" false r.exact
  done

let prop_consistency_witness_matches =
  QCheck.Test.make ~name:"Alg 1 witness always matches the pattern set" ~count:200
    (Gen.pattern ()) (fun pat ->
      let r = Consistency.check [ pat ] in
      match r.witness with
      | Some w -> r.consistent && Pattern.Matcher.matches w pat
      | None -> not r.consistent)

let prop_sampled_implies_full =
  QCheck.Test.make ~name:"sampled consistent => full consistent" ~count:100
    (Gen.pattern ()) (fun pat ->
      let sampled =
        Consistency.check ~strategy:(Consistency.Sampled 3) ~seed:1 [ pat ]
      in
      (not sampled.consistent) || (Consistency.check [ pat ]).consistent)

(* --- Lp_repair / Flow_repair --- *)

let test_lp_repair_simple () =
  let phis = [ Condition.interval ~lo:10 ~hi:20 "A" "B" ] in
  let t = Tuple.of_list [ ("A", 100); ("B", 105) ] in
  match Explain.Lp_repair.repair t phis with
  | None -> Alcotest.fail "feasible"
  | Some { repaired; cost; integral_relaxation } ->
      check_int "minimal cost" 5 cost;
      check_bool "integral" true integral_relaxation;
      check_bool "satisfies" true (Condition.intervals_hold repaired phis)

let test_lp_repair_zero_when_satisfied () =
  let phis = [ Condition.interval ~lo:0 ~hi:20 "A" "B" ] in
  let t = Tuple.of_list [ ("A", 100); ("B", 105) ] in
  match Explain.Lp_repair.repair t phis with
  | Some { cost; repaired; _ } ->
      check_int "zero cost" 0 cost;
      check_bool "unchanged" true (Tuple.equal repaired t)
  | None -> Alcotest.fail "feasible"

let test_lp_repair_infeasible () =
  let phis =
    [ Condition.interval ~lo:5 "A" "B"; Condition.interval ~lo:0 ~hi:2 "B" "A" ]
  in
  let t = Tuple.of_list [ ("A", 0); ("B", 0) ] in
  check_bool "None on inconsistent" true (Explain.Lp_repair.repair t phis = None)

let test_lp_repair_artificial_free () =
  (* Artificial events move for free: only the real move is billed. *)
  let art = Events.Event.artificial_start 0 in
  let phis =
    [ Condition.exact art "A"; Condition.interval ~lo:10 ~hi:10 art "B" ]
  in
  let t = Tuple.of_list [ ("A", 50); ("B", 80); (art, 50) ] in
  match Explain.Lp_repair.repair t phis with
  | Some { cost; _ } -> check_int "cost counts only A and B" 20 cost
  | None -> Alcotest.fail "feasible"

let test_lp_repair_nonnegative () =
  (* The cheap fix would push A to -5; the domain forces another optimum. *)
  let phis = [ Condition.interval ~lo:10 ~hi:10 "A" "B" ] in
  let t = Tuple.of_list [ ("A", 5); ("B", 0) ] in
  match Explain.Lp_repair.repair t phis with
  | Some { repaired; _ } ->
      check_bool "A stays >= 0" true (Tuple.find repaired "A" >= 0);
      check_bool "B stays >= 0" true (Tuple.find repaired "B" >= 0);
      check_bool "satisfies" true (Condition.intervals_hold repaired phis)
  | None -> Alcotest.fail "feasible"

let repair_instance_gen =
  QCheck.Gen.pair (Gen.intervals_gen ()) (QCheck.Gen.int_bound 10_000)

let arb_repair_instance =
  QCheck.make
    ~print:(fun (phis, seed) ->
      Format.asprintf "seed %d, [%a]" seed
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Condition.pp_interval)
        phis)
    repair_instance_gen

let tuple_for phis seed =
  let events = Events.Event.Set.elements (Condition.interval_events phis) in
  let st = Random.State.make [| seed |] in
  Gen.tuple_over events ~horizon:120 st

let prop_lp_repair_sound =
  QCheck.Test.make ~name:"LP repair: feasible, billed exactly, zero iff satisfied"
    ~count:300 arb_repair_instance (fun (phis, seed) ->
      let t = tuple_for phis seed in
      match Explain.Lp_repair.repair t phis with
      | None -> not (Tcn.Stn.consistent (Tcn.Stn.of_intervals phis))
      | Some { repaired; cost; _ } ->
          Condition.intervals_hold repaired phis
          && Tuple.delta t repaired = cost
          && (cost = 0) = Condition.intervals_hold t phis
          && Tuple.fold (fun _ ts acc -> acc && ts >= 0) repaired true)

let prop_lp_equals_flow =
  QCheck.Test.make ~name:"flow repair optimum = LP repair optimum" ~count:300
    arb_repair_instance (fun (phis, seed) ->
      let t = tuple_for phis seed in
      match (Explain.Lp_repair.repair t phis, Explain.Flow_repair.repair t phis) with
      | None, None -> true
      | Some a, Some b ->
          a.cost = b.cost
          && Condition.intervals_hold b.repaired phis
          && Tuple.delta t b.repaired = b.cost
      | _ -> false)

let prop_lp_relaxation_integral =
  QCheck.Test.make ~name:"repair LP relaxation is integral (total unimodularity)"
    ~count:300 arb_repair_instance (fun (phis, seed) ->
      let t = tuple_for phis seed in
      match Explain.Lp_repair.repair t phis with
      | Some { integral_relaxation; _ } -> integral_relaxation
      | None -> true)

(* --- Modification (Algorithm 2) --- *)

let test_modification_paper_example () =
  let p0 = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" in
  let t2 =
    Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]
  in
  (match Modification.explain ~strategy:Modification.Full [ p0 ] t2 with
  | Some { cost; bindings_tried; repaired; exact } ->
      check_int "cost 44 (Example 6)" 44 cost;
      check_int "16 bindings" 16 bindings_tried;
      check_bool "exact" true exact;
      check_bool "matches" true (Pattern.Matcher.matches repaired p0)
  | None -> Alcotest.fail "expected repair");
  match Modification.explain ~strategy:Modification.Single [ p0 ] t2 with
  | Some { cost; bindings_tried; exact; _ } ->
      check_int "single also 44 here" 44 cost;
      check_int "one binding" 1 bindings_tried;
      check_bool "inexact flag" false exact
  | None -> Alcotest.fail "expected repair"

let test_modification_zero_cost_on_match () =
  let q = p "SEQ(E1, E2) WITHIN 10" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 5) ] in
  match Modification.explain [ q ] t with
  | Some { cost; repaired; _ } ->
      check_int "zero" 0 cost;
      check_bool "unchanged" true (Tuple.equal repaired t)
  | None -> Alcotest.fail "expected repair"

let test_modification_inconsistent_none () =
  let q = p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 10); ("E3", 5); ("E4", 20) ] in
  check_bool "None on inconsistent query" true (Modification.explain [ q ] t = None)

let test_modification_missing_event () =
  let q = p "SEQ(E1, E2)" in
  check_bool "raises on unbound pattern event" true
    (try ignore (Modification.explain [ q ] (Tuple.of_list [ ("E1", 0) ])); false
     with Invalid_argument _ -> true)

let test_modification_sampled_dedupes () =
  (* AND(E1, E2, E3) has 9 bindings; drawing 100 samples must solve (and
     report) each distinct binding at most once. *)
  let q = p "AND(E1, E2, E3) WITHIN 40" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 90); ("E3", 55) ] in
  match Modification.explain ~strategy:(Modification.Sampled 100) [ q ] t with
  | Some { bindings_tried; _ } ->
      check_bool "tried counts distinct bindings only" true (bindings_tried <= 9);
      check_bool "at least the single binding" true (bindings_tried >= 1)
  | None -> Alcotest.fail "expected repair"

let test_modification_untouched_events_kept () =
  let q = p "SEQ(E1, E2) WITHIN 2" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 50); ("Unrelated", 7) ] in
  match Modification.explain [ q ] t with
  | Some { repaired; _ } -> check_int "unrelated kept" 7 (Tuple.find repaired "Unrelated")
  | None -> Alcotest.fail "expected repair"

let arb_pattern_tuple = Gen.pattern_and_tuple ~horizon:120 ()

let prop_modification_full_sound =
  QCheck.Test.make ~name:"Alg 2 Full: repaired matches at billed cost" ~count:200
    arb_pattern_tuple (fun (pat, t) ->
      match Modification.explain ~strategy:Modification.Full [ pat ] t with
      | Some { repaired; cost; _ } ->
          Pattern.Matcher.matches repaired pat && Tuple.delta t repaired = cost
      | None -> not (Consistency.check [ pat ]).consistent)

(* Proposition 8 exactly as stated: equality for patterns of the form
   AND(E1, ..., En). (QCheck found nested AND-only counterexamples, so the
   proposition does not extend beyond the flat form — see DESIGN.md.) *)
let flat_and = function
  | Ast.And (children, _) ->
      List.for_all (function Ast.Event _ -> true | _ -> false) children
  | Ast.Event _ | Ast.Seq _ -> false

let prop_modification_single_upper_bound =
  QCheck.Test.make
    ~name:"single binding cost >= full cost; equal for flat AND and for simple"
    ~count:200 arb_pattern_tuple (fun (pat, t) ->
      match
        ( Modification.explain ~strategy:Modification.Full [ pat ] t,
          Modification.explain ~strategy:Modification.Single [ pat ] t )
      with
      | Some full, Some single ->
          full.cost <= single.cost
          && ((not (flat_and pat || Ast.classify pat = Ast.Simple))
             || full.cost = single.cost)
      | None, _ -> true (* inconsistent set *)
      | Some _, None -> true (* single binding may miss the feasible binding *))

let prop_modification_flow_equals_lp =
  QCheck.Test.make ~name:"Alg 2 with Flow solver = with LP solver" ~count:150
    arb_pattern_tuple (fun (pat, t) ->
      match
        ( Modification.explain ~solver:Modification.Lp [ pat ] t,
          Modification.explain ~solver:Modification.Flow [ pat ] t )
      with
      | Some a, Some b -> a.cost = b.cost
      | None, None -> true
      | _ -> false)

(* --- Baselines --- *)

let test_brute_force_exactness_small () =
  let q = p "SEQ(E1, E2) ATLEAST 10 WITHIN 12" in
  let t = Tuple.of_list [ ("E1", 20); ("E2", 25) ] in
  (match Baselines.brute_force ~grid:1 ~radius:10 [ q ] t with
  | Some { cost; matched; repaired } ->
      check_int "exact cost 5" 5 cost;
      check_bool "matched" true matched;
      check_bool "really matches" true (Pattern.Matcher.matches repaired q)
  | None -> Alcotest.fail "expected brute-force repair");
  (* With a coarse grid the exact optimum may be missed but a lattice repair
     should still be found. *)
  match Baselines.brute_force ~grid:5 ~radius:20 [ q ] t with
  | Some { cost; _ } -> check_bool "coarse cost >= exact" true (cost >= 5)
  | None -> Alcotest.fail "expected coarse repair"

let test_brute_force_out_of_radius () =
  let q = p "SEQ(E1, E2) ATLEAST 100" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 0) ] in
  check_bool "radius too small: None" true
    (Baselines.brute_force ~grid:1 ~radius:10 [ q ] t = None)

let test_greedy_simple_fix () =
  let q = p "SEQ(E1, E2) ATLEAST 10 WITHIN 12" in
  let t = Tuple.of_list [ ("E1", 20); ("E2", 25) ] in
  let r = Baselines.greedy [ q ] t in
  check_bool "greedy matched" true r.matched;
  check_bool "greedy cost positive" true (r.cost > 0)

let prop_greedy_reports_match_truthfully =
  QCheck.Test.make ~name:"greedy: matched flag is truthful, cost is delta" ~count:200
    arb_pattern_tuple (fun (pat, t) ->
      let r = Baselines.greedy [ pat ] t in
      r.matched = Pattern.Matcher.matches r.repaired pat
      && r.cost = Tuple.delta t r.repaired)

let prop_brute_force_never_beats_exact =
  QCheck.Test.make ~name:"brute force cost >= exact Full cost" ~count:100
    (Gen.pattern_and_tuple ~horizon:30 ~max_events:4 ()) (fun (pat, t) ->
      match
        ( Baselines.brute_force ~grid:1 ~radius:12 [ pat ] t,
          Modification.explain ~strategy:Modification.Full [ pat ] t )
      with
      | Some bf, Some exact -> bf.cost >= exact.cost
      | _ -> true)

let qt = Gen.qt

let suite =
  ( "explain",
    [
      Alcotest.test_case "consistency trivial" `Quick test_consistency_trivial;
      Alcotest.test_case "consistency single event" `Quick test_consistency_single_event;
      Alcotest.test_case "consistency paper inconsistent" `Quick
        test_consistency_paper_inconsistent;
      Alcotest.test_case "consistency cross-pattern" `Quick test_consistency_cross_pattern;
      Alcotest.test_case "consistency fig4 family" `Quick test_consistency_fig4_family;
      Alcotest.test_case "sampled: no false positives" `Quick
        test_consistency_sampled_no_false_positive;
      qt prop_consistency_witness_matches;
      qt prop_sampled_implies_full;
      Alcotest.test_case "lp repair minimal" `Quick test_lp_repair_simple;
      Alcotest.test_case "lp repair zero on satisfied" `Quick test_lp_repair_zero_when_satisfied;
      Alcotest.test_case "lp repair infeasible" `Quick test_lp_repair_infeasible;
      Alcotest.test_case "lp repair artificial free" `Quick test_lp_repair_artificial_free;
      Alcotest.test_case "lp repair non-negative domain" `Quick test_lp_repair_nonnegative;
      qt prop_lp_repair_sound;
      qt prop_lp_equals_flow;
      qt prop_lp_relaxation_integral;
      Alcotest.test_case "modification paper example (44)" `Quick
        test_modification_paper_example;
      Alcotest.test_case "modification zero cost on match" `Quick
        test_modification_zero_cost_on_match;
      Alcotest.test_case "modification inconsistent -> None" `Quick
        test_modification_inconsistent_none;
      Alcotest.test_case "modification missing event raises" `Quick
        test_modification_missing_event;
      Alcotest.test_case "modification keeps untouched events" `Quick
        test_modification_untouched_events_kept;
      Alcotest.test_case "modification sampled dedupes" `Quick
        test_modification_sampled_dedupes;
      qt prop_modification_full_sound;
      qt prop_modification_single_upper_bound;
      qt prop_modification_flow_equals_lp;
      Alcotest.test_case "brute force exact on fine grid" `Quick
        test_brute_force_exactness_small;
      Alcotest.test_case "brute force out of radius" `Quick test_brute_force_out_of_radius;
      Alcotest.test_case "greedy fixes a simple violation" `Quick test_greedy_simple_fix;
      qt prop_greedy_reports_match_truthfully;
      qt prop_brute_force_never_beats_exact;
    ] )
