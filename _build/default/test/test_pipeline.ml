open Whynot
module Pipeline = Explain.Pipeline
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let p0 = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120"
let t1 = Tuple.of_list [ ("E1", 1028); ("E2", 1138); ("E3", 1045); ("E4", 1153) ]
let t2 = Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]

let test_already_answer () =
  check_bool "matching tuple" true (Pipeline.explain [ p0 ] t1 = Pipeline.Already_answer)

let test_inconsistent_route () =
  let bad = p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" in
  match Pipeline.explain [ bad ] t2 with
  | Pipeline.Inconsistent_query r -> check_bool "flagged" false r.consistent
  | _ -> Alcotest.fail "expected Inconsistent_query"

let test_timestamp_route () =
  match Pipeline.explain [ p0 ] t2 with
  | Pipeline.Modify_timestamps r -> check_int "cost 44" 44 r.Explain.Modification.cost
  | _ -> Alcotest.fail "expected Modify_timestamps"

let test_budget_falls_back_to_query_repair () =
  match Pipeline.explain ~max_cost:10 [ p0 ] t2 with
  | Pipeline.Modify_query qr ->
      check_int "window widening 44" 44 qr.Explain.Query_repair.cost;
      check_bool "repaired query accepts t2" true
        (Pattern.Matcher.matches_set t2 qr.patterns)
  | _ -> Alcotest.fail "expected Modify_query"

let test_budget_generous_keeps_timestamps () =
  match Pipeline.explain ~max_cost:100 [ p0 ] t2 with
  | Pipeline.Modify_timestamps _ -> ()
  | _ -> Alcotest.fail "expected Modify_timestamps under a sufficient budget"

let test_no_explanation () =
  (* Order violated AND over budget: windows cannot fix event order. *)
  let q = p "SEQ(E1, E2) WITHIN 10" in
  let t = Tuple.of_list [ ("E1", 500); ("E2", 0) ] in
  match Pipeline.explain ~max_cost:3 [ q ] t with
  | Pipeline.No_explanation -> ()
  | o -> Alcotest.failf "expected No_explanation, got %a" Pipeline.pp_outcome o

let prop_pipeline_total =
  QCheck.Test.make ~name:"pipeline always yields a coherent outcome" ~count:150
    (Gen.pattern_and_tuple ~horizon:120 ()) (fun (pat, t) ->
      match Pipeline.explain [ pat ] t with
      | Pipeline.Already_answer -> Pattern.Matcher.matches t pat
      | Pipeline.Inconsistent_query r -> not r.Explain.Consistency.consistent
      | Pipeline.Modify_timestamps r ->
          Pattern.Matcher.matches r.Explain.Modification.repaired pat
      | Pipeline.Modify_query _ -> false (* no budget given: never this route *)
      | Pipeline.No_explanation -> false (* Full strategy finds any feasible repair *))

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "already an answer" `Quick test_already_answer;
      Alcotest.test_case "inconsistent query route" `Quick test_inconsistent_route;
      Alcotest.test_case "timestamp modification route" `Quick test_timestamp_route;
      Alcotest.test_case "budget fallback to query repair" `Quick
        test_budget_falls_back_to_query_repair;
      Alcotest.test_case "generous budget stays on data" `Quick
        test_budget_generous_keeps_timestamps;
      Alcotest.test_case "no explanation" `Quick test_no_explanation;
      Gen.qt prop_pipeline_total;
    ] )
