open Whynot.Numeric

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Checked --- *)

let test_checked_basic () =
  check_int "add" 7 (Checked.add 3 4);
  check_int "sub" (-1) (Checked.sub 3 4);
  check_int "mul" 12 (Checked.mul 3 4);
  check_int "neg" (-3) (Checked.neg 3);
  check_int "abs" 3 (Checked.abs (-3));
  check_int "gcd" 6 (Checked.gcd 12 18);
  check_int "gcd neg" 6 (Checked.gcd (-12) 18);
  check_int "gcd zero" 5 (Checked.gcd 0 5)

let test_checked_overflow () =
  let raises f = Alcotest.check_raises "overflow" Checked.Overflow (fun () -> ignore (f ())) in
  raises (fun () -> Checked.add max_int 1);
  raises (fun () -> Checked.sub min_int 1);
  raises (fun () -> Checked.mul max_int 2);
  raises (fun () -> Checked.mul 2 max_int);
  raises (fun () -> Checked.neg min_int);
  raises (fun () -> Checked.abs min_int);
  check_int "edge ok" max_int (Checked.add (max_int - 1) 1);
  check_int "min+max" (-1) (Checked.add min_int max_int)

(* --- Rat --- *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "neg den" (Rat.make (-3) 2) (Rat.make 3 (-2));
  Alcotest.check rat "zero" Rat.zero (Rat.make 0 17);
  check_int "den positive" 2 (Rat.den (Rat.make 3 (-2)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Rat.make 1 0))

let test_rat_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rat.make 5 6) (Rat.add half third);
  Alcotest.check rat "1/2-1/3" (Rat.make 1 6) (Rat.sub half third);
  Alcotest.check rat "1/2*1/3" (Rat.make 1 6) (Rat.mul half third);
  Alcotest.check rat "1/2 / 1/3" (Rat.make 3 2) (Rat.div half third);
  Alcotest.check rat "inv" (Rat.make 3 1) (Rat.inv third);
  check_bool "lt" true Rat.(third < half);
  check_int "floor -3/2" (-2) (Rat.floor (Rat.make (-3) 2));
  check_int "ceil -3/2" (-1) (Rat.ceil (Rat.make (-3) 2));
  check_int "floor 3/2" 1 (Rat.floor (Rat.make 3 2));
  check_int "ceil 3/2" 2 (Rat.ceil (Rat.make 3 2));
  check_bool "is_integer" true (Rat.is_integer (Rat.of_int 5));
  check_bool "not integer" false (Rat.is_integer half);
  check_int "to_int_exn" 5 (Rat.to_int_exn (Rat.of_int 5))

let rat_gen : Rat.t QCheck.Gen.t =
 fun st ->
  let num = Random.State.int st 2001 - 1000 in
  let den = 1 + Random.State.int st 50 in
  Rat.make num den

let arb_rat = QCheck.make ~print:Rat.to_string rat_gen
let arb_rat2 = QCheck.pair arb_rat arb_rat
let arb_rat3 = QCheck.triple arb_rat arb_rat arb_rat

let prop_field =
  QCheck.Test.make ~name:"rat field laws" ~count:500 arb_rat3 (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a b) (Rat.mul b a)
      && Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c))
      && Rat.equal (Rat.mul (Rat.mul a b) c) (Rat.mul a (Rat.mul b c))
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_sub_div =
  QCheck.Test.make ~name:"rat sub/div inverses" ~count:500 arb_rat2 (fun (a, b) ->
      Rat.equal (Rat.add (Rat.sub a b) b) a
      && (Rat.sign b = 0 || Rat.equal (Rat.mul (Rat.div a b) b) a))

let prop_compare_total =
  QCheck.Test.make ~name:"rat compare consistent with floats" ~count:500 arb_rat2
    (fun (a, b) ->
      let c = Rat.compare a b in
      let fa = Rat.to_float a and fb = Rat.to_float b in
      (c < 0 && fa < fb +. 1e-9)
      || (c > 0 && fa > fb -. 1e-9)
      || (c = 0 && abs_float (fa -. fb) < 1e-9))

let prop_floor_ceil =
  QCheck.Test.make ~name:"rat floor/ceil bracket" ~count:500 arb_rat (fun a ->
      let f = Rat.floor a and c = Rat.ceil a in
      Rat.(of_int f <= a)
      && Rat.(a <= of_int c)
      && c - f <= 1
      && (Rat.is_integer a = (f = c)))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.next64 a = Prng.next64 b)
  done;
  let c = Prng.create 43 in
  check_bool "different seed differs" true (Prng.next64 (Prng.create 42) <> Prng.next64 c)

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let v = Prng.int_in g (-5) 5 in
    check_bool "int_in range" true (v >= -5 && v <= 5);
    let f = Prng.float g 2.0 in
    check_bool "float range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_uniformity () =
  let g = Prng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "bucket within 10% of uniform" true
        (abs (c - (n / 10)) < n / 100))
    buckets

let test_prng_shuffle_permutes () =
  let g = Prng.create 3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let qt = Gen.qt

let suite =
  ( "numeric",
    [
      Alcotest.test_case "checked basics" `Quick test_checked_basic;
      Alcotest.test_case "checked overflow" `Quick test_checked_overflow;
      Alcotest.test_case "rat normalization" `Quick test_rat_normalization;
      Alcotest.test_case "rat arithmetic" `Quick test_rat_arith;
      qt prop_field;
      qt prop_sub_div;
      qt prop_compare_total;
      qt prop_floor_ceil;
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
      Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    ] )
