test/test_stn_inc.ml: Alcotest Events Gen List Printf QCheck Random Tcn Whynot
