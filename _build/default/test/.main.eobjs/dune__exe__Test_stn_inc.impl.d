test/test_stn_inc.ml: Alcotest Events Gen List QCheck Tcn Whynot
