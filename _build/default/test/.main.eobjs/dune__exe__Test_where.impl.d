test/test_where.ml: Alcotest Cep Events Explain Format List Option Pattern Result Whynot
