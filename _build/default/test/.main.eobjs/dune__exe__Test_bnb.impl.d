test/test_bnb.ml: Alcotest Datagen Events Explain Gen Hashtbl Numeric Pattern QCheck Whynot
