test/main.mli:
