test/test_cep.ml: Alcotest Cep Events Explain Gen List Option Pattern QCheck Whynot
