test/test_lint.ml: Alcotest Explain Gen List Pattern QCheck Whynot
