test/test_pipeline.ml: Alcotest Events Explain Gen Pattern QCheck Whynot
