test/test_diagnose.ml: Alcotest Events Explain Format List Pattern String Whynot
