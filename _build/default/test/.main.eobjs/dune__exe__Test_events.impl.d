test/test_events.ml: Alcotest Csv_io Event List Option String Time Trace Tuple Whynot
