test/test_rewrite.ml: Alcotest Events Gen Pattern QCheck Result Tcn Whynot
