test/test_numeric.ml: Alcotest Array Checked Fun Gen Prng QCheck Random Rat Whynot
