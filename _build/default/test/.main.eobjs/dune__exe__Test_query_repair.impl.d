test/test_query_repair.ml: Alcotest Events Explain Gen List Pattern QCheck Whynot
