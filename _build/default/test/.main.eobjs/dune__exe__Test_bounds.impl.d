test/test_bounds.ml: Alcotest Events Explain Format Gen Hashtbl List Pattern QCheck Random Tcn Whynot
