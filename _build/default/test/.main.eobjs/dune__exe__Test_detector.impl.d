test/test_detector.ml: Alcotest Cep Events Format Gen List Pattern QCheck Random Whynot
