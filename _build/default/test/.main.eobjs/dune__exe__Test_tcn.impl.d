test/test_tcn.ml: Alcotest Events Explain Gen List Pattern Printf QCheck Random Seq Tcn Whynot
