test/test_tcn.ml: Alcotest Events Explain Gen List Pattern QCheck Random Seq Tcn Whynot
