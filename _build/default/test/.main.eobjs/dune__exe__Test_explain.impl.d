test/test_explain.ml: Alcotest Datagen Events Explain Format Gen List Pattern QCheck Random Tcn Whynot
