test/test_topk.ml: Alcotest Events Explain Gen List Pattern QCheck Whynot
