test/test_weights.ml: Alcotest Events Explain Format Gen Hashtbl List Option Pattern QCheck Random Tcn Whynot
