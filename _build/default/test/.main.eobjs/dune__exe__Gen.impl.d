test/gen.ml: Events Format List Option Pattern Printf QCheck QCheck_alcotest Random Tcn Whynot
