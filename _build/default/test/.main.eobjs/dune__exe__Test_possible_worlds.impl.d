test/test_possible_worlds.ml: Alcotest Events Explain Gen Numeric Pattern QCheck Whynot
