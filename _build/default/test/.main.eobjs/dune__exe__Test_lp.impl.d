test/test_lp.ml: Alcotest Array Gen List Lp Numeric QCheck Random Whynot
