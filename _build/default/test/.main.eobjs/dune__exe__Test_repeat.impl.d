test/test_repeat.ml: Alcotest Cep Events Explain List Pattern Result Whynot
