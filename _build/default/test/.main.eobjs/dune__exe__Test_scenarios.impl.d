test/test_scenarios.ml: Alcotest Cep Datagen Explain List Numeric Whynot
