test/test_process_sim.ml: Alcotest Cep Datagen Events List Numeric Pattern Result Whynot
