test/test_pattern.ml: Alcotest Events Format Gen Pattern QCheck Result Whynot
