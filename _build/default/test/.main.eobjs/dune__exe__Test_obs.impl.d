test/test_obs.ml: Alcotest Cep Events Explain List Obs Pattern Printf Report Whynot
