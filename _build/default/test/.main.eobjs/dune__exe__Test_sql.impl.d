test/test_sql.ml: Alcotest Cep Events Gen List Pattern QCheck String Whynot
