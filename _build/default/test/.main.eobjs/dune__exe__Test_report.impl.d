test/test_report.ml: Alcotest Events Explain Gen List Option Pattern QCheck Report Result Whynot
