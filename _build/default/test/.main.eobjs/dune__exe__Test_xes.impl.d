test/test_xes.ml: Alcotest Filename Fun Gen List Option QCheck Result Sys Trace Tuple Whynot Xes
