test/test_datagen.ml: Alcotest Cep Datagen Events List Numeric Option Pattern Printf Result Whynot
