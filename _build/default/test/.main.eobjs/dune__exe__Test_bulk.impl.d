test/test_bulk.ml: Alcotest Cep Datagen Events Explain List Numeric Printf Whynot
