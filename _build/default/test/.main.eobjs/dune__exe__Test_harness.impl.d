test/test_harness.ml: Alcotest Events Experiments List Pattern String Tcn Whynot
