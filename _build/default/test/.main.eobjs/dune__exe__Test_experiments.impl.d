test/test_experiments.ml: Alcotest Cep Datagen Experiments Explain List Numeric Option Whynot
