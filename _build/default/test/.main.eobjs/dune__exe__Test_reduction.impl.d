test/test_reduction.ml: Alcotest Array Events Explain Fun List Numeric Option Reduction Result Whynot
