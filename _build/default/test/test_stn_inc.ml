open Whynot
module Condition = Tcn.Condition
module Stn = Tcn.Stn
module Stn_inc = Tcn.Stn_inc
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_push_pop_basic () =
  let inc = Stn_inc.create [ "A"; "B"; "C" ] in
  check_bool "fresh is consistent" true (Stn_inc.consistent inc);
  check_bool "push ok" true (Stn_inc.push inc (Condition.interval ~lo:1 ~hi:5 "A" "B"));
  check_bool "push ok 2" true (Stn_inc.push inc (Condition.interval ~lo:1 ~hi:5 "B" "C"));
  check_int "depth" 2 (Stn_inc.depth inc);
  (* contradiction: C before A *)
  check_bool "contradiction detected" false
    (Stn_inc.push inc (Condition.interval ~lo:0 ~hi:1 "C" "A"));
  check_bool "inconsistent now" false (Stn_inc.consistent inc);
  Stn_inc.pop inc;
  check_bool "consistent after pop" true (Stn_inc.consistent inc);
  check_bool "can push again" true
    (Stn_inc.push inc (Condition.interval ~lo:0 "A" "C"))

let test_push_while_inconsistent_raises () =
  let inc = Stn_inc.create [ "A"; "B" ] in
  ignore (Stn_inc.push inc (Condition.interval ~lo:5 ~hi:5 "A" "B"));
  ignore (Stn_inc.push inc (Condition.interval ~lo:5 ~hi:5 "B" "A"));
  check_bool "inconsistent" false (Stn_inc.consistent inc);
  check_bool "push raises" true
    (try ignore (Stn_inc.push inc (Condition.interval "A" "B")); false
     with Invalid_argument _ -> true);
  Stn_inc.pop inc;
  Stn_inc.pop inc;
  check_bool "pop on empty raises" true
    (try Stn_inc.pop inc; false with Invalid_argument _ -> true)

let test_unknown_event () =
  let inc = Stn_inc.create [ "A" ] in
  check_bool "unknown event raises" true
    (try ignore (Stn_inc.push inc (Condition.interval "A" "Z")); false
     with Invalid_argument _ -> true)

let test_solution () =
  let inc = Stn_inc.create [ "A"; "B" ] in
  ignore (Stn_inc.push inc (Condition.interval ~lo:3 ~hi:3 "A" "B"));
  match Stn_inc.solution inc with
  | Some t -> check_int "distance respected" 3 (Tuple.find t "B" - Tuple.find t "A")
  | None -> Alcotest.fail "expected solution"

(* Equivalence with the batch engine under random push/pop sequences. *)
let prop_matches_batch =
  QCheck.Test.make ~name:"incremental consistency = batch consistency under pushes"
    ~count:300 (Gen.intervals ()) (fun phis ->
      let events =
        Events.Event.Set.elements (Condition.interval_events phis)
      in
      let inc = Stn_inc.create events in
      let rec push_all prefix = function
        | [] -> true
        | phi :: rest ->
            let prefix = phi :: prefix in
            let batch = Stn.consistent (Stn.of_intervals ~events prefix) in
            let ok = Stn_inc.push inc phi in
            (* each prefix must agree with the batch engine *)
            if ok <> batch then false
            else if not ok then true (* stop: caller may not push further *)
            else push_all prefix rest
      in
      push_all [] phis)

let prop_pop_restores =
  QCheck.Test.make ~name:"pop restores the exact previous state" ~count:200
    (QCheck.pair (Gen.intervals ()) (Gen.intervals ()))
    (fun (base, extra) ->
      let events =
        Events.Event.Set.elements
          (Condition.interval_events (base @ extra))
      in
      let inc = Stn_inc.create events in
      let rec push_while = function
        | [] -> true
        | phi :: rest -> if Stn_inc.push inc phi then push_while rest else false
      in
      if not (push_while base) then QCheck.assume_fail ()
      else begin
        let solution_before = Stn_inc.solution inc in
        let depth_before = Stn_inc.depth inc in
        (* push the extras (stopping on inconsistency), then pop them all *)
        let pushed = ref 0 in
        (try
           List.iter
             (fun phi ->
               incr pushed;
               if not (Stn_inc.push inc phi) then raise Exit)
             extra
         with Exit -> ());
        for _ = 1 to !pushed do
          Stn_inc.pop inc
        done;
        Stn_inc.depth inc = depth_before
        && Stn_inc.consistent inc
        && Stn_inc.solution inc = solution_before
      end)

let suite =
  ( "stn_inc",
    [
      Alcotest.test_case "push/pop basics" `Quick test_push_pop_basic;
      Alcotest.test_case "inconsistent state discipline" `Quick
        test_push_while_inconsistent_raises;
      Alcotest.test_case "unknown event" `Quick test_unknown_event;
      Alcotest.test_case "solution extraction" `Quick test_solution;
      Gen.qt prop_matches_batch;
      Gen.qt prop_pop_restores;
    ] )
