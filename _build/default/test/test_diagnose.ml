open Whynot
module Diagnose = Explain.Diagnose
module Tuple = Events.Tuple
module Trace = Events.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let query = [ p "SEQ(A, B) ATLEAST 10 WITHIN 20" ]

let trace =
  Trace.of_list
    [
      ("ok1", Tuple.of_list [ ("A", 0); ("B", 15) ]);
      ("ok2", Tuple.of_list [ ("A", 5); ("B", 16) ]);
      ("win1", Tuple.of_list [ ("A", 0); ("B", 100) ]) (* window: cost 80 *);
      ("win2", Tuple.of_list [ ("A", 0); ("B", 3) ]) (* window: cost 7 *);
      ("ord", Tuple.of_list [ ("A", 50); ("B", 10) ]) (* B before A *);
      ("mis", Tuple.of_list [ ("A", 0) ]) (* B absent *);
    ]

let report = Diagnose.run query trace

let test_counts () =
  check_int "total" 6 report.total;
  check_int "answers" 2 report.answers

let test_missing () =
  match report.missing_events with
  | [ { description; tuples } ] ->
      check_bool "event B" true (description = "B");
      check_bool "tuple mis" true (tuples = [ "mis" ])
  | _ -> Alcotest.fail "expected one missing-event class"

let test_order () =
  match report.order_violations with
  | [ { tuples; _ } ] -> check_bool "tuple ord" true (tuples = [ "ord" ])
  | _ -> Alcotest.fail "expected one order class"

let test_window () =
  match report.window_violations with
  | [ { tuples; description } ] ->
      check_bool "both window tuples" true
        (List.sort compare tuples = [ "win1"; "win2" ]);
      check_bool "names the violated node" true
        (description = "SEQ(A, B) ATLEAST 10 WITHIN 20")
  | _ -> Alcotest.fail "expected one window class"

let test_costs () =
  (* win1 needs 80, win2 needs 7, ord needs 50, mis has
     no repair (missing event). *)
  check_int "three repairable non-answers" 3 (List.length report.repair_costs);
  check_bool "win1 cost 80" true (List.assoc "win1" report.repair_costs = 80);
  check_bool "win2 cost 7" true (List.assoc "win2" report.repair_costs = 7);
  check_bool "median is the middle cost" true
    (report.median_repair_cost = Some (List.assoc "ord" report.repair_costs))

let test_without_costs () =
  let r = Diagnose.run ~with_costs:false query trace in
  check_int "no costs computed" 0 (List.length r.repair_costs);
  check_bool "no median" true (r.median_repair_cost = None)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp_renders () =
  let s = Format.asprintf "%a" Diagnose.pp report in
  check_bool "mentions totals" true (contains s "2/6");
  check_bool "mentions median" true (contains s "median")

let test_empty_trace () =
  let r = Diagnose.run query Trace.empty in
  check_int "empty" 0 r.total;
  check_bool "no classes" true
    (r.missing_events = [] && r.order_violations = [] && r.window_violations = [])

let suite =
  ( "diagnose",
    [
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "missing events class" `Quick test_missing;
      Alcotest.test_case "order violation class" `Quick test_order;
      Alcotest.test_case "window violation class" `Quick test_window;
      Alcotest.test_case "repair costs + median" `Quick test_costs;
      Alcotest.test_case "costs disabled" `Quick test_without_costs;
      Alcotest.test_case "pretty printer" `Quick test_pp_renders;
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
    ] )
