open Whynot
module Rat = Numeric.Rat
module Simplex = Lp.Simplex
module Ilp = Lp.Ilp
module Mcf = Lp.Mcf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rat = Alcotest.testable Rat.pp Rat.equal
let r = Rat.of_int

let optimal_or_fail = function
  | Simplex.Optimal { objective; values } -> (objective, values)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

(* min x + y  s.t. x + 2y >= 4, 3x + y >= 6  ->  optimum at (8/5, 6/5). *)
let test_simplex_basic_ge () =
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x); (r 2, y) ] Simplex.Ge (r 4);
  Simplex.add_constraint m [ (r 3, x); (r 1, y) ] Simplex.Ge (r 6);
  Simplex.set_objective m [ (r 1, x); (r 1, y) ];
  let objective, values = optimal_or_fail (Simplex.solve m) in
  Alcotest.check rat "objective 14/5" (Rat.make 14 5) objective;
  Alcotest.check rat "x = 8/5" (Rat.make 8 5) values.(x);
  Alcotest.check rat "y = 6/5" (Rat.make 6 5) values.(y)

(* max x + y via min of negation, under x <= 3, y <= 2. *)
let test_simplex_le_max () =
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x) ] Simplex.Le (r 3);
  Simplex.add_constraint m [ (r 1, y) ] Simplex.Le (r 2);
  Simplex.set_objective m [ (r (-1), x); (r (-1), y) ];
  let objective, _ = optimal_or_fail (Simplex.solve m) in
  Alcotest.check rat "objective -5" (r (-5)) objective

let test_simplex_eq () =
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x); (r 1, y) ] Simplex.Eq (r 10);
  Simplex.add_constraint m [ (r 1, x); (r (-1), y) ] Simplex.Eq (r 4);
  Simplex.set_objective m [ (r 1, x) ];
  let _, values = optimal_or_fail (Simplex.solve m) in
  Alcotest.check rat "x = 7" (r 7) values.(x);
  Alcotest.check rat "y = 3" (r 3) values.(y)

let test_simplex_infeasible () =
  let m = Simplex.create () in
  let x = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x) ] Simplex.Le (r 1);
  Simplex.add_constraint m [ (r 1, x) ] Simplex.Ge (r 2);
  Simplex.set_objective m [ (r 1, x) ];
  check_bool "infeasible" true (Simplex.solve m = Simplex.Infeasible)

let test_simplex_unbounded () =
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x); (r (-1), y) ] Simplex.Le (r 1);
  Simplex.set_objective m [ (r (-1), x) ];
  check_bool "unbounded" true (Simplex.solve m = Simplex.Unbounded)

let test_simplex_negative_rhs () =
  (* x - y <= -2 with min x: x = 0 forces y >= 2, fine; rhs normalisation
     path must flip the row. *)
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x); (r (-1), y) ] Simplex.Le (r (-2));
  Simplex.set_objective m [ (r 1, x); (r 1, y) ];
  let objective, _ = optimal_or_fail (Simplex.solve m) in
  Alcotest.check rat "objective 2" (r 2) objective

let test_simplex_degenerate () =
  (* Redundant constraints force degenerate pivots; Bland must terminate. *)
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x); (r 1, y) ] Simplex.Ge (r 2);
  Simplex.add_constraint m [ (r 2, x); (r 2, y) ] Simplex.Ge (r 4);
  Simplex.add_constraint m [ (r 1, x); (r 1, y) ] Simplex.Le (r 2);
  Simplex.set_objective m [ (r 3, x); (r 1, y) ];
  let objective, _ = optimal_or_fail (Simplex.solve m) in
  Alcotest.check rat "objective 2 (all mass on y)" (r 2) objective

let test_simplex_copy_isolated () =
  let m = Simplex.create () in
  let x = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x) ] Simplex.Le (r 5);
  Simplex.set_objective m [ (r (-1), x) ];
  let m2 = Simplex.copy m in
  Simplex.add_constraint m2 [ (r 1, x) ] Simplex.Le (r 3);
  let o1, _ = optimal_or_fail (Simplex.solve m) in
  let o2, _ = optimal_or_fail (Simplex.solve m2) in
  Alcotest.check rat "original unchanged" (r (-5)) o1;
  Alcotest.check rat "copy constrained" (r (-3)) o2

(* Random feasible-by-construction LPs: simplex must find an optimum no
   worse than the known feasible point, and the optimum must be feasible. *)
let random_lp_gen : (Simplex.model * Rat.t) QCheck.Gen.t =
 fun st ->
  let n = 2 + Random.State.int st 4 in
  let m = Simplex.create () in
  let vars = List.init n (fun _ -> Simplex.add_var m) in
  let point = List.map (fun _ -> Random.State.int st 10) vars in
  let rows = 1 + Random.State.int st 5 in
  for _ = 1 to rows do
    let coeffs = List.map (fun _ -> Random.State.int st 7 - 3) vars in
    let value =
      List.fold_left2 (fun acc c x -> acc + (c * x)) 0 coeffs point
    in
    let slack = Random.State.int st 5 in
    let terms = List.map2 (fun c v -> (r c, v)) coeffs vars in
    if Random.State.bool st then
      Simplex.add_constraint m terms Simplex.Le (r (value + slack))
    else Simplex.add_constraint m terms Simplex.Ge (r (value - slack))
  done;
  let costs = List.map (fun _ -> Random.State.int st 5) vars in
  Simplex.set_objective m (List.map2 (fun c v -> (r c, v)) costs vars);
  let feasible_cost =
    List.fold_left2 (fun acc c x -> acc + (c * x)) 0 costs point
  in
  (m, r feasible_cost)

let prop_simplex_sound =
  QCheck.Test.make ~name:"simplex: optimal <= known feasible point" ~count:200
    (QCheck.make random_lp_gen) (fun (m, feasible_cost) ->
      match Simplex.solve m with
      | Simplex.Optimal { objective; _ } -> Rat.compare objective feasible_cost <= 0
      | Simplex.Infeasible -> false (* feasible by construction *)
      | Simplex.Unbounded -> true (* nonneg costs make this rare but legal *))

(* --- ILP --- *)

let test_ilp_integral_passthrough () =
  let m = Simplex.create () in
  let x = Simplex.add_var m in
  Simplex.add_constraint m [ (r 1, x) ] Simplex.Ge (r 3);
  Simplex.set_objective m [ (r 1, x) ];
  match Ilp.solve m with
  | Ilp.Optimal { objective; values } ->
      Alcotest.check rat "objective" (r 3) objective;
      check_int "x" 3 values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_branches () =
  (* min -x - y s.t. 2x + 2y <= 5: LP gives 5/2 total, ILP must settle on
     x + y = 2. *)
  let m = Simplex.create () in
  let x = Simplex.add_var m and y = Simplex.add_var m in
  Simplex.add_constraint m [ (r 2, x); (r 2, y) ] Simplex.Le (r 5);
  Simplex.set_objective m [ (r (-1), x); (r (-1), y) ];
  check_bool "relaxation fractional" true (Ilp.relaxation_is_integral m = Some false);
  match Ilp.solve m with
  | Ilp.Optimal { objective; values } ->
      Alcotest.check rat "objective -2" (r (-2)) objective;
      check_int "sum integral" 2 (values.(x) + values.(y))
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_infeasible_by_integrality () =
  (* 2x = 3 has a fractional LP solution but no integer one. *)
  let m = Simplex.create () in
  let x = Simplex.add_var m in
  Simplex.add_constraint m [ (r 2, x) ] Simplex.Eq (r 3);
  Simplex.set_objective m [ (r 1, x) ];
  check_bool "ILP infeasible" true (Ilp.solve m = Ilp.Infeasible)

(* --- MCF --- *)

let test_mcf_no_negative_cycle () =
  let g = Mcf.create 3 in
  let _ = Mcf.add_edge g ~src:0 ~dst:1 ~cap:5 ~cost:2 in
  let _ = Mcf.add_edge g ~src:1 ~dst:2 ~cap:5 ~cost:2 in
  let _ = Mcf.add_edge g ~src:2 ~dst:0 ~cap:5 ~cost:2 in
  check_int "all-positive cycle: no flow" 0 (Mcf.min_cost_circulation g)

let test_mcf_cancels_negative_cycle () =
  let g = Mcf.create 3 in
  let e1 = Mcf.add_edge g ~src:0 ~dst:1 ~cap:4 ~cost:(-3) in
  let e2 = Mcf.add_edge g ~src:1 ~dst:2 ~cap:2 ~cost:1 in
  let e3 = Mcf.add_edge g ~src:2 ~dst:0 ~cap:5 ~cost:1 in
  (* Cycle cost -1, bottleneck 2. *)
  check_int "total cost" (-2) (Mcf.min_cost_circulation g);
  check_int "flow e1" 2 (Mcf.flow g e1);
  check_int "flow e2" 2 (Mcf.flow g e2);
  check_int "flow e3" 2 (Mcf.flow g e3)

let test_mcf_parallel_cycles () =
  let g = Mcf.create 2 in
  let cheap = Mcf.add_edge g ~src:0 ~dst:1 ~cap:3 ~cost:(-5) in
  let pricey = Mcf.add_edge g ~src:0 ~dst:1 ~cap:3 ~cost:(-1) in
  let back = Mcf.add_edge g ~src:1 ~dst:0 ~cap:4 ~cost:2 in
  (* Saturate the cheap arc (3 units at -3 each), then one more unit through
     the pricier arc (+1 net): only the cheap cycle is profitable. *)
  check_int "total" (-9) (Mcf.min_cost_circulation g);
  check_int "cheap saturated" 3 (Mcf.flow g cheap);
  check_int "pricey untouched" 0 (Mcf.flow g pricey);
  check_int "return flow" 3 (Mcf.flow g back)

let test_mcf_residual_distances () =
  let g = Mcf.create 3 in
  let _ = Mcf.add_edge g ~src:0 ~dst:1 ~cap:5 ~cost:4 in
  let _ = Mcf.add_edge g ~src:1 ~dst:2 ~cap:5 ~cost:1 in
  let _ = Mcf.add_edge g ~src:0 ~dst:2 ~cap:5 ~cost:10 in
  ignore (Mcf.min_cost_circulation g);
  let d = Mcf.residual_distances g ~source:0 in
  check_bool "d0" true (d.(0) = Some 0);
  check_bool "d1" true (d.(1) = Some 4);
  check_bool "d2 via 1" true (d.(2) = Some 5)

let test_mcf_validation () =
  let g = Mcf.create 2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Mcf.add_edge: node out of range")
    (fun () -> ignore (Mcf.add_edge g ~src:0 ~dst:7 ~cap:1 ~cost:0));
  Alcotest.check_raises "negative cap" (Invalid_argument "Mcf.add_edge: negative capacity")
    (fun () -> ignore (Mcf.add_edge g ~src:0 ~dst:1 ~cap:(-1) ~cost:0))

let qt = Gen.qt

let suite =
  ( "lp",
    [
      Alcotest.test_case "simplex >= constraints" `Quick test_simplex_basic_ge;
      Alcotest.test_case "simplex <= constraints (max)" `Quick test_simplex_le_max;
      Alcotest.test_case "simplex equalities" `Quick test_simplex_eq;
      Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
      Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
      Alcotest.test_case "simplex negative rhs" `Quick test_simplex_negative_rhs;
      Alcotest.test_case "simplex degenerate (Bland)" `Quick test_simplex_degenerate;
      Alcotest.test_case "simplex copy isolation" `Quick test_simplex_copy_isolated;
      qt prop_simplex_sound;
      Alcotest.test_case "ilp integral passthrough" `Quick test_ilp_integral_passthrough;
      Alcotest.test_case "ilp branches on fractional" `Quick test_ilp_branches;
      Alcotest.test_case "ilp integrality infeasible" `Quick test_ilp_infeasible_by_integrality;
      Alcotest.test_case "mcf positive cycle idle" `Quick test_mcf_no_negative_cycle;
      Alcotest.test_case "mcf cancels negative cycle" `Quick test_mcf_cancels_negative_cycle;
      Alcotest.test_case "mcf picks cheapest cycle" `Quick test_mcf_parallel_cycles;
      Alcotest.test_case "mcf residual distances" `Quick test_mcf_residual_distances;
      Alcotest.test_case "mcf validation" `Quick test_mcf_validation;
    ] )
