(* Plausibility bounds: per-event caps on how far a repair may move. *)

open Whynot
module Modification = Explain.Modification
module Tuple = Events.Tuple
module Condition = Tcn.Condition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let bounds_of alist e = List.assoc_opt e alist

let test_bounds_redirect_the_repair () =
  (* B - A >= 10 needs a 5-minute move; capping B at 2 forces most of it
     onto A. *)
  let q = p "SEQ(A, B) ATLEAST 10" in
  let t = Tuple.of_list [ ("A", 20); ("B", 25) ] in
  match Modification.explain ~bounds:(bounds_of [ ("B", 2) ]) [ q ] t with
  | Some { repaired; cost; _ } ->
      check_int "still minimal" 5 cost;
      check_bool "B moved at most 2" true (abs (Tuple.find repaired "B" - 25) <= 2);
      check_bool "matches" true (Pattern.Matcher.matches repaired q)
  | None -> Alcotest.fail "expected repair"

let test_bounds_make_repair_infeasible () =
  let q = p "SEQ(A, B) ATLEAST 100" in
  let t = Tuple.of_list [ ("A", 50); ("B", 60) ] in
  check_bool "tight bounds: no explanation" true
    (Modification.explain ~bounds:(fun _ -> Some 10) [ q ] t = None);
  check_bool "loose bounds: explanation exists" true
    (Modification.explain ~bounds:(fun _ -> Some 100) [ q ] t <> None)

let test_zero_bound_pins_event () =
  let q = p "SEQ(A, B) ATLEAST 10" in
  let t = Tuple.of_list [ ("A", 20); ("B", 25) ] in
  match Modification.explain ~bounds:(bounds_of [ ("A", 0) ]) [ q ] t with
  | Some { repaired; _ } ->
      check_int "A pinned" 20 (Tuple.find repaired "A");
      check_int "B does all the work" 30 (Tuple.find repaired "B")
  | None -> Alcotest.fail "expected repair"

let test_negative_bound_rejected () =
  let q = p "SEQ(A, B) ATLEAST 10" in
  let t = Tuple.of_list [ ("A", 20); ("B", 25) ] in
  check_bool "raises" true
    (try ignore (Modification.explain ~bounds:(fun _ -> Some (-3)) [ q ] t); false
     with Invalid_argument _ -> true)

let arb =
  QCheck.make
    ~print:(fun ((phis : Condition.interval list), seed) ->
      Format.asprintf "seed %d over %d conditions" seed (List.length phis))
    (QCheck.Gen.pair (Gen.intervals_gen ()) (QCheck.Gen.int_bound 10_000))

let bound_fun seed e =
  match Hashtbl.hash (seed, e, "b") land 3 with
  | 0 -> None
  | k -> Some (10 * k)

let prop_bounded_lp_equals_flow =
  QCheck.Test.make ~name:"bounded repair: flow optimum = LP optimum" ~count:300 arb
    (fun (phis, seed) ->
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let st = Random.State.make [| seed |] in
      let t = Gen.tuple_over events ~horizon:120 st in
      let bounds = bound_fun seed in
      match
        ( Explain.Lp_repair.repair ~bounds t phis,
          Explain.Flow_repair.repair ~bounds t phis )
      with
      | None, None -> true
      | Some a, Some b ->
          a.cost = b.cost
          && Condition.intervals_hold b.repaired phis
          && List.for_all
               (fun e ->
                 match bounds e with
                 | Some r ->
                     abs (Events.Tuple.find b.repaired e - Events.Tuple.find t e) <= r
                 | None -> true)
               events
      | _ -> false)

let prop_bounds_never_cheaper =
  QCheck.Test.make ~name:"bounded optimum >= unbounded optimum" ~count:200 arb
    (fun (phis, seed) ->
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let st = Random.State.make [| seed |] in
      let t = Gen.tuple_over events ~horizon:120 st in
      match
        ( Explain.Lp_repair.repair t phis,
          Explain.Lp_repair.repair ~bounds:(bound_fun seed) t phis )
      with
      | None, None | Some _, None -> true
      | Some unbounded, Some bounded -> bounded.cost >= unbounded.cost
      | None, Some _ -> false (* bounds can only shrink the feasible set *))

let suite =
  ( "bounds",
    [
      Alcotest.test_case "bounds redirect the repair" `Quick test_bounds_redirect_the_repair;
      Alcotest.test_case "too-tight bounds: infeasible" `Quick
        test_bounds_make_repair_infeasible;
      Alcotest.test_case "zero bound pins an event" `Quick test_zero_bound_pins_event;
      Alcotest.test_case "negative bound rejected" `Quick test_negative_bound_rejected;
      Gen.qt prop_bounded_lp_equals_flow;
      Gen.qt prop_bounds_never_cheaper;
    ] )
