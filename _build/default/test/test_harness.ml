open Whynot
module Harness = Experiments.Harness

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_format_table_alignment () =
  let s =
    Harness.format_table ~title:"T" ~header:[ "a"; "bbbb" ]
      [ [ "xx"; "y" ]; [ "x"; "yyyyy" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | title :: header :: separator :: _ ->
      check_str "title" "T" title;
      check_bool "separator dashes match header width" true
        (String.length separator = String.length header)
  | _ -> Alcotest.fail "expected at least 3 lines");
  check_bool "column padded to longest cell" true
    (String.length (List.nth lines 1) >= String.length "a   bbbb")

let test_csv_rendering () =
  check_str "plain cells" "a,b\n1,2\n"
    (Harness.csv_of_table ~header:[ "a"; "b" ] [ [ "1"; "2" ] ]);
  check_str "quoting" "a\n\"x,y\"\n"
    (Harness.csv_of_table ~header:[ "a" ] [ [ "x,y" ] ]);
  check_str "embedded quote doubled" "a\n\"he said \"\"hi\"\"\"\n"
    (Harness.csv_of_table ~header:[ "a" ] [ [ "he said \"hi\"" ] ])

let test_formatters () =
  check_str "f3" "1.235" (Harness.f3 1.23456);
  check_str "ms" "1500.000" (Harness.ms 1.5)

let test_algorithm_names () =
  check_str "full" "Pattern(Full)" (Harness.algorithm_name Harness.Pattern_full);
  check_str "single" "Pattern(Single)" (Harness.algorithm_name Harness.Pattern_single);
  check_str "bf" "Brute-force"
    (Harness.algorithm_name (Harness.Brute_force { grid = 1; radius = 5 }));
  check_str "greedy" "Greedy" (Harness.algorithm_name Harness.Greedy)

let test_repair_tuple_roster () =
  let p = Pattern.Parse.pattern_exn "SEQ(A, B) ATLEAST 10 WITHIN 12" in
  let net = Tcn.Encode.pattern_set [ p ] in
  let t = Events.Tuple.of_list [ ("A", 20); ("B", 25) ] in
  List.iter
    (fun algo ->
      match Harness.repair_tuple algo net [ p ] t with
      | Some repaired ->
          check_bool
            (Harness.algorithm_name algo ^ " repaired tuple matches")
            true
            (Pattern.Matcher.matches repaired p)
      | None -> Alcotest.failf "%s found nothing" (Harness.algorithm_name algo))
    [
      Harness.Pattern_full;
      Harness.Pattern_single;
      Harness.Brute_force { grid = 1; radius = 10 };
      Harness.Greedy;
    ]

let test_time_measures () =
  let v, dt = Harness.time (fun () -> 42) in
  check_bool "value" true (v = 42);
  check_bool "non-negative" true (dt >= 0.0)

let suite =
  ( "harness",
    [
      Alcotest.test_case "table alignment" `Quick test_format_table_alignment;
      Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
      Alcotest.test_case "float formatters" `Quick test_formatters;
      Alcotest.test_case "algorithm names" `Quick test_algorithm_names;
      Alcotest.test_case "repair roster" `Quick test_repair_tuple_roster;
      Alcotest.test_case "timing" `Quick test_time_measures;
    ] )
