open Whynot
module Ast = Pattern.Ast
module Rewrite = Pattern.Rewrite
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let ast = Alcotest.testable Ast.pp Ast.equal

let test_flatten_seq () =
  Alcotest.check ast "SEQ splice" (p "SEQ(A, B, C, D)")
    (Rewrite.normalize (p "SEQ(A, SEQ(B, C), D)"));
  Alcotest.check ast "deep splice" (p "SEQ(A, B, C, D, E)")
    (Rewrite.normalize (p "SEQ(SEQ(A, SEQ(B, C)), SEQ(D, E))"))

let test_flatten_and () =
  Alcotest.check ast "AND splice" (p "AND(A, B, C) WITHIN 9")
    (Rewrite.normalize (p "AND(A, AND(B, C)) WITHIN 9"))

let test_windowed_children_kept () =
  Alcotest.check ast "windowed SEQ child not spliced"
    (p "SEQ(A, SEQ(B, C) WITHIN 5, D)")
    (Rewrite.normalize (p "SEQ(A, SEQ(B, C) WITHIN 5, D)"));
  Alcotest.check ast "windowed AND child kept"
    (p "AND(A, AND(B, C) ATLEAST 2)")
    (Rewrite.normalize (p "AND(A, AND(B, C) ATLEAST 2)"))

let test_singleton_collapse () =
  Alcotest.check ast "SEQ of one" (p "E1") (Rewrite.normalize (Ast.seq [ Ast.event "E1" ]));
  Alcotest.check ast "AND of one" (p "E1") (Rewrite.normalize (Ast.and_ [ Ast.event "E1" ]));
  (* a real window on a composite single event: WITHIN is trivially satisfied *)
  Alcotest.check ast "trivial window dropped" (p "E1")
    (Rewrite.normalize (Ast.seq ~within:10 [ Ast.event "E1" ]));
  (* ATLEAST > 0 on a single event can never match: kept as written *)
  check_bool "unsatisfiable singleton kept" true
    (Rewrite.normalize (Ast.seq ~atleast:5 [ Ast.event "E1" ]) <> p "E1")

let test_atleast_zero_dropped () =
  Alcotest.check ast "ATLEAST 0 dropped" (p "SEQ(A, B) WITHIN 7")
    (Rewrite.normalize (p "SEQ(A, B) ATLEAST 0 WITHIN 7"))

let test_mixed_kinds_not_spliced () =
  Alcotest.check ast "AND under SEQ untouched" (p "SEQ(A, AND(B, C))")
    (Rewrite.normalize (p "SEQ(A, AND(B, C))"))

let test_binding_space_shrinks () =
  let before = p "AND(AND(A, B), AND(C, D))" in
  let count q =
    Tcn.Bindings.count (Tcn.Encode.pattern_set [ q ]).Tcn.Encode.set_bindings
  in
  let after = Rewrite.normalize before in
  Alcotest.check ast "flattened" (p "AND(A, B, C, D)") after;
  check_int "before: 3 ANDs" (2 * 2 * (2 * 2) * (2 * 2)) (count before);
  check_int "after: 1 AND over 4" (4 * 4) (count after)

let prop_semantics_preserved =
  QCheck.Test.make ~name:"normalize preserves matching exactly" ~count:500
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      Pattern.Matcher.matches t pat = Pattern.Matcher.matches t (Rewrite.normalize pat))

let prop_normalize_valid_and_idempotent =
  QCheck.Test.make ~name:"normalize output valid and idempotent" ~count:300
    (Gen.pattern ()) (fun pat ->
      let n = Rewrite.normalize pat in
      Result.is_ok (Ast.validate n) && Ast.equal n (Rewrite.normalize n))

let prop_never_grows =
  QCheck.Test.make ~name:"normalize never grows the pattern or binding space"
    ~count:300 (Gen.pattern ()) (fun pat ->
      let count q =
        Tcn.Bindings.count (Tcn.Encode.pattern_set [ q ]).Tcn.Encode.set_bindings
      in
      let n = Rewrite.normalize pat in
      Ast.size n <= Ast.size pat && count n <= count pat)

let suite =
  ( "rewrite",
    [
      Alcotest.test_case "flatten SEQ" `Quick test_flatten_seq;
      Alcotest.test_case "flatten AND" `Quick test_flatten_and;
      Alcotest.test_case "windowed children kept" `Quick test_windowed_children_kept;
      Alcotest.test_case "singleton collapse" `Quick test_singleton_collapse;
      Alcotest.test_case "ATLEAST 0 dropped" `Quick test_atleast_zero_dropped;
      Alcotest.test_case "mixed kinds untouched" `Quick test_mixed_kinds_not_spliced;
      Alcotest.test_case "binding space shrinks" `Quick test_binding_space_shrinks;
      Gen.qt prop_semantics_preserved;
      Gen.qt prop_normalize_valid_and_idempotent;
      Gen.qt prop_never_grows;
    ] )
