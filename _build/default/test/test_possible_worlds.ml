open Whynot
module Pw = Explain.Possible_worlds
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let p = Pattern.Parse.pattern_exn

let test_world_count () =
  let u = Pw.of_intervals [ ("A", 0, 2); ("B", 5, 5); ("C", 1, 4) ] in
  check_int "3 * 1 * 4" 12 (Pw.world_count u);
  check_int "center A" 1 (Tuple.find (Pw.center u) "A");
  check_int "center B" 5 (Tuple.find (Pw.center u) "B")

let test_validation () =
  check_bool "empty interval" true
    (try ignore (Pw.of_intervals [ ("A", 3, 2) ]); false
     with Invalid_argument _ -> true);
  check_bool "duplicate" true
    (try ignore (Pw.of_intervals [ ("A", 0, 1); ("A", 2, 3) ]); false
     with Invalid_argument _ -> true);
  check_bool "negative radius" true
    (try ignore (Pw.of_tuple ~radius:(-1) Tuple.empty); false
     with Invalid_argument _ -> true)

let test_confidence_extremes () =
  let q = [ p "SEQ(A, B) WITHIN 100" ] in
  let always = Pw.of_intervals [ ("A", 0, 2); ("B", 10, 12) ] in
  check_float "all worlds match" 1.0 (Pw.confidence_exact always q);
  let never = Pw.of_intervals [ ("A", 50, 52); ("B", 0, 2) ] in
  check_float "no world matches" 0.0 (Pw.confidence_exact never q)

let test_confidence_exact_value () =
  (* A in {0,1}, B in {0,1}: SEQ(A,B) matches iff A <= B: 3 of 4 worlds. *)
  let u = Pw.of_intervals [ ("A", 0, 1); ("B", 0, 1) ] in
  check_float "3/4" 0.75 (Pw.confidence_exact u [ p "SEQ(A, B)" ])

let test_confidence_limit () =
  let u = Pw.of_tuple ~radius:1000 (Tuple.of_list [ ("A", 5000); ("B", 9000) ]) in
  check_bool "limit enforced" true
    (try ignore (Pw.confidence_exact u [ p "SEQ(A, B)" ]); false
     with Invalid_argument _ -> true)

let test_sampled_close_to_exact () =
  let u = Pw.of_intervals [ ("A", 0, 9); ("B", 0, 9) ] in
  let q = [ p "SEQ(A, B)" ] in
  let exact = Pw.confidence_exact u q in
  let prng = Numeric.Prng.create 99 in
  let sampled = Pw.confidence_sampled ~samples:20_000 prng u q in
  check_bool "within 3 points" true (abs_float (exact -. sampled) < 0.03)

let test_most_likely_world () =
  let q = [ p "SEQ(A, B) ATLEAST 10" ] in
  let u = Pw.of_intervals [ ("A", 0, 0); ("B", 0, 12) ] in
  (* centre has B = 6; nearest matching world moves B to 10: distance 4. *)
  match Pw.most_likely_matching_world u q with
  | Some (world, dist) ->
      check_int "B at 10" 10 (Tuple.find world "B");
      check_int "distance 4" 4 dist;
      check_bool "matches" true (Pattern.Matcher.matches_set world q)
  | None -> Alcotest.fail "expected a matching world"

let test_most_likely_none () =
  let q = [ p "SEQ(A, B) ATLEAST 100" ] in
  let u = Pw.of_intervals [ ("A", 0, 5); ("B", 0, 5) ] in
  check_bool "no matching world" true (Pw.most_likely_matching_world u q = None)

(* The paper's Section 7.2 claim, executable: the minimum-change repair is
   never worse than the best world restricted to the uncertainty box. *)
let prop_min_change_bounds_possible_worlds =
  QCheck.Test.make
    ~name:"min-change repair cost <= best possible-world distance" ~count:100
    (Gen.pattern_and_tuple ~horizon:40 ~max_events:4 ()) (fun (pat, t) ->
      let u = Pw.of_tuple ~radius:6 t in
      match Pw.most_likely_matching_world ~limit:2_000_000 u [ pat ] with
      | None -> true
      | Some (_, dist) -> (
          match Explain.Modification.explain [ pat ] t with
          | Some { cost; _ } -> cost <= dist
          | None -> false (* a matching world exists, so the query is consistent *)))

let qt = Gen.qt

let suite =
  ( "possible_worlds",
    [
      Alcotest.test_case "world count / center" `Quick test_world_count;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "confidence extremes" `Quick test_confidence_extremes;
      Alcotest.test_case "confidence exact value" `Quick test_confidence_exact_value;
      Alcotest.test_case "enumeration limit" `Quick test_confidence_limit;
      Alcotest.test_case "sampled close to exact" `Quick test_sampled_close_to_exact;
      Alcotest.test_case "most likely matching world" `Quick test_most_likely_world;
      Alcotest.test_case "no matching world" `Quick test_most_likely_none;
      qt prop_min_change_bounds_possible_worlds;
    ] )
