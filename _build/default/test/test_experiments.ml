(* Integration tests: shrunk versions of every figure harness, checking the
   qualitative shapes the paper reports rather than absolute numbers. *)

open Whynot
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find_algo row_algos name =
  match List.assoc_opt name row_algos with
  | Some r -> r
  | None -> Alcotest.failf "algorithm %s missing" name

let test_table1 () =
  let r = E.Table1.run () in
  check_bool "t1 matches" true r.t1_matches;
  check_bool "t2 fails" false r.t2_matches;
  check_bool "inconsistent variant" true r.inconsistent_variant_rejected;
  check_int "full cost 44" 44 r.full_cost;
  check_int "16 bindings" 16 r.full_bindings;
  check_int "single cost 44" 44 r.single_cost;
  check_int "example 3 cost 44" 44 r.example3_cost

let test_table2 () =
  List.iter
    (fun row -> check_bool row.E.Table2.pattern_class true row.verified)
    (E.Table2.run ~instances:3 ~seed:77 ())

let test_fig5 () =
  let result =
    E.Fig5.run { E.Fig5.default with ns = [ 1; 2; 3 ]; repeats = 3; sample_counts = [ 1; 10 ] }
  in
  let strat name =
    List.find (fun s -> s.E.Fig5.strategy = name) result.strategies
  in
  check_bool "full is exact" true ((strat "Full").accuracy = 1.0);
  check_bool "10-binding beats 1-binding" true
    ((strat "10-binding").accuracy >= (strat "1-binding").accuracy);
  check_bool "1-binding never exceeds full" true ((strat "1-binding").accuracy <= 1.0);
  check_int "one row per n" 3 (List.length result.rows)

let test_fig6 () =
  let rows =
    E.Fig6.run { E.Fig6.default with event_counts = [ 4; 6 ]; days = 8 }
  in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun row ->
      let get name =
        match find_algo row.E.Fig6.per_algorithm name with
        | Some r -> r
        | None -> Alcotest.failf "%s skipped unexpectedly" name
      in
      let full = get "Pattern(Full)" and single = get "Pattern(Single)" in
      check_bool "single no slower than full" true
        (single.Experiments.Repair_run.time <= full.Experiments.Repair_run.time +. 1e-6);
      check_bool "exact methods repair everything" true
        (full.unrepaired = 0 && single.unrepaired = 0);
      (* Brute force is only attempted at <= 5 events. *)
      match List.assoc "Brute-force" row.per_algorithm with
      | Some _ -> check_bool "bf allowed size" true (row.events <= 5)
      | None -> check_bool "bf skipped above limit" true (row.events > 5))
    rows

let test_rtfm_point () =
  let row =
    E.Rtfm_sweep.run_point ~seed:123
      { E.Rtfm_sweep.rate = 0.1; distance = 150; tuples = 120 }
  in
  check_bool "some non-answers injected" true (row.non_answers > 0);
  let full = find_algo row.per_algorithm "Pattern(Full)" in
  let single = find_algo row.per_algorithm "Pattern(Single)" in
  let greedy = find_algo row.per_algorithm "Greedy" in
  check_bool "full repairs all" true (full.unrepaired = 0);
  check_bool "exact rmse at most greedy rmse (weakly)" true
    (full.rmse <= greedy.rmse +. 1e-9);
  check_bool "single rmse close to full" true (single.rmse <= 2.0 *. full.rmse +. 1.0);
  check_bool "repaired trace has no non-answers for full" true
    (Cep.Query.non_answers Datagen.Rtfm.patterns full.repaired_trace = [])

let test_rtfm_rate_monotone () =
  (* More faults -> more non-answers. *)
  let row_at rate =
    E.Rtfm_sweep.run_point ~seed:9 { E.Rtfm_sweep.rate; distance = 150; tuples = 150 }
  in
  let low = row_at 0.05 and high = row_at 0.3 in
  check_bool "non-answers grow with rate" true (high.non_answers >= low.non_answers)

let test_fig10_shape () =
  let rows =
    E.Synthetic.fig10 { E.Synthetic.default_fig10 with ns = [ 4; 6 ]; tuples = 60 }
  in
  List.iter
    (fun row ->
      let full = find_algo row.E.Synthetic.per_algorithm "Pattern(Full)" in
      let single = find_algo row.per_algorithm "Pattern(Single)" in
      (* Constant-size bindings: full explores exactly 4, so its time is a
         small multiple of single's. *)
      check_bool "full slower but bounded" true
        (full.Experiments.Repair_run.time >= single.Experiments.Repair_run.time *. 0.9);
      check_bool "full exact" true (full.unrepaired = 0))
    rows

let test_fig11_prop8 () =
  (* Without SEQ inside AND the single-binding repair cost must equal the
     full optimum on every tuple (Proposition 8); RMSE may differ only
     through tie-breaking, so compare costs directly. *)
  let prng = Numeric.Prng.create 31 in
  let patterns = [ Datagen.Workloads.fig11_pattern ~n:5 ] in
  for _ = 1 to 15 do
    let t = Datagen.Workloads.random_matching_tuple ~horizon:3000 prng patterns in
    let t = Datagen.Faults.tuple prng ~rate:0.5 ~distance:400 t in
    let cost strategy =
      (Option.get (Explain.Modification.explain ~strategy patterns t)).cost
    in
    check_int "Proposition 8 equality"
      (cost Explain.Modification.Full)
      (cost Explain.Modification.Single)
  done

let test_fig12_shape () =
  let config = { E.Fig12.default with answers = 40; non_answers = 15 } in
  let rows = E.Fig12.fig12a ~config ~rates:[ 0.05; 0.2 ] () in
  (* Pattern(Single) beats Greedy over the sweep (pointwise ties can flip at
     the lowest fault rates, as in the paper's near-1.0 region). *)
  let mean f = Datagen.Metrics.mean (List.map f rows) in
  check_bool "single more accurate than greedy on average" true
    (mean (fun r -> r.E.Fig12.single.f_measure)
    >= mean (fun r -> r.E.Fig12.greedy.f_measure) -. 1e-9);
  List.iter
    (fun row ->
      check_bool "f-measures in range" true
        (row.E.Fig12.single.f_measure >= 0.0 && row.single.f_measure <= 1.0))
    rows

let test_ablation_solver () =
  let rows = E.Ablation.solver_ablation ~tuples:10 ~ns:[ 4 ] () in
  List.iter
    (fun r ->
      check_bool "optima equal" true r.E.Ablation.costs_equal;
      check_bool "relaxation integral" true r.integral)
    rows

let test_ablation_sampling () =
  let rows = E.Ablation.sampling_ablation ~repeats:8 ~n:2 ~sample_counts:[ 1; 32 ] () in
  match rows with
  | [ one; many ] ->
      check_bool "more samples no less accurate" true (many.E.Ablation.accuracy >= one.E.Ablation.accuracy)
  | _ -> Alcotest.fail "two rows expected"

let suite =
  ( "experiments",
    [
      Alcotest.test_case "table 1 worked example" `Quick test_table1;
      Alcotest.test_case "table 2 claims" `Slow test_table2;
      Alcotest.test_case "fig 5 shrunk" `Quick test_fig5;
      Alcotest.test_case "fig 6 shrunk" `Slow test_fig6;
      Alcotest.test_case "rtfm point (figs 7-9)" `Slow test_rtfm_point;
      Alcotest.test_case "rtfm monotone in rate" `Slow test_rtfm_rate_monotone;
      Alcotest.test_case "fig 10 shape" `Slow test_fig10_shape;
      Alcotest.test_case "fig 11 Proposition 8" `Slow test_fig11_prop8;
      Alcotest.test_case "fig 12 shape" `Slow test_fig12_shape;
      Alcotest.test_case "ablation solver equality" `Quick test_ablation_solver;
      Alcotest.test_case "ablation sampling monotone" `Quick test_ablation_sampling;
    ] )
