(* Weighted modification costs: per-event per-unit prices on Formula 1. *)

open Whynot
module Modification = Explain.Modification
module Tuple = Events.Tuple
module Condition = Tcn.Condition

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let weights_of alist e = Option.value ~default:1 (List.assoc_opt e alist)

let test_weights_steer_the_repair () =
  (* B - A must be >= 10; both moves cost 5 unweighted. Pricing A high
     forces the repair onto B, and vice versa. *)
  let q = p "SEQ(A, B) ATLEAST 10" in
  let t = Tuple.of_list [ ("A", 20); ("B", 25) ] in
  let run weights =
    Option.get (Modification.explain ~weights:(weights_of weights) [ q ] t)
  in
  let expensive_a = run [ ("A", 10) ] in
  check_int "A untouched" 20 (Tuple.find expensive_a.repaired "A");
  check_int "B moved to 30" 30 (Tuple.find expensive_a.repaired "B");
  check_int "weighted cost 5" 5 expensive_a.cost;
  let expensive_b = run [ ("B", 10) ] in
  check_int "B untouched" 25 (Tuple.find expensive_b.repaired "B");
  check_int "A moved to 15" 15 (Tuple.find expensive_b.repaired "A");
  check_int "weighted cost 5 again" 5 expensive_b.cost

let test_zero_weight_is_free () =
  let q = p "SEQ(A, B) ATLEAST 100" in
  let t = Tuple.of_list [ ("A", 50); ("B", 60) ] in
  match Modification.explain ~weights:(weights_of [ ("B", 0) ]) [ q ] t with
  | Some { cost; repaired; _ } ->
      check_int "free event absorbs everything" 0 cost;
      check_int "A untouched" 50 (Tuple.find repaired "A");
      check_int "B pushed out for free" 150 (Tuple.find repaired "B")
  | None -> Alcotest.fail "expected repair"

let test_negative_weight_rejected () =
  let q = p "SEQ(A, B) ATLEAST 10" in
  let t = Tuple.of_list [ ("A", 20); ("B", 25) ] in
  check_bool "raises" true
    (try
       ignore (Modification.explain ~weights:(weights_of [ ("A", -1) ]) [ q ] t);
       false
     with Invalid_argument _ -> true)

let test_default_weights_match_unweighted () =
  let q = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" in
  let t = Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ] in
  let weighted =
    Option.get (Modification.explain ~weights:(fun _ -> 1) [ q ] t)
  in
  let plain = Option.get (Modification.explain [ q ] t) in
  check_int "same optimum" plain.cost weighted.cost

let arb =
  QCheck.make
    ~print:(fun ((phis : Condition.interval list), seed) ->
      Format.asprintf "seed %d over %d conditions" seed (List.length phis))
    (QCheck.Gen.pair (Gen.intervals_gen ()) (QCheck.Gen.int_bound 10_000))

let weight_fun seed e =
  (* deterministic pseudo-random weights in 0..4 *)
  (Hashtbl.hash (seed, e) land 3) + if Hashtbl.hash (e, seed) land 7 = 0 then 0 else 1

let prop_weighted_lp_equals_flow =
  QCheck.Test.make ~name:"weighted repair: flow optimum = LP optimum" ~count:300 arb
    (fun (phis, seed) ->
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let st = Random.State.make [| seed |] in
      let t = Gen.tuple_over events ~horizon:120 st in
      let weights = weight_fun seed in
      match
        ( Explain.Lp_repair.repair ~weights t phis,
          Explain.Flow_repair.repair ~weights t phis )
      with
      | None, None -> true
      | Some a, Some b ->
          a.cost = b.cost && Condition.intervals_hold b.repaired phis
      | _ -> false)

let prop_weighted_cost_bounds =
  QCheck.Test.make ~name:"uniform weight w scales the optimum by exactly w"
    ~count:150 arb (fun (phis, seed) ->
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let st = Random.State.make [| seed |] in
      let t = Gen.tuple_over events ~horizon:120 st in
      match
        ( Explain.Lp_repair.repair t phis,
          Explain.Lp_repair.repair ~weights:(fun _ -> 3) t phis )
      with
      | None, None -> true
      | Some plain, Some scaled -> scaled.cost = 3 * plain.cost
      | _ -> false)

let suite =
  ( "weights",
    [
      Alcotest.test_case "weights steer the repair" `Quick test_weights_steer_the_repair;
      Alcotest.test_case "zero weight is free" `Quick test_zero_weight_is_free;
      Alcotest.test_case "negative weight rejected" `Quick test_negative_weight_rejected;
      Alcotest.test_case "default weights = unweighted" `Quick
        test_default_weights_match_unweighted;
      Gen.qt prop_weighted_lp_equals_flow;
      Gen.qt prop_weighted_cost_bounds;
    ] )
