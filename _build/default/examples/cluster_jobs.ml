(* Cluster job monitoring (Section 1.2): a job terminated because two
   higher-priority jobs arrived.

     SEQ(E1, AND(E2, E3), E4) ATLEAST 2 minutes

   E1 = first job submitted, E2/E3 = two new jobs submitted (any order),
   E4 = first job terminated. The user's job was killed but the detector
   found no match: out-of-order log messages swapped E4 and E3. The
   timestamp modification explanation suggests exactly that reverse order.

   Run with: dune exec examples/cluster_jobs.exe *)

open Whynot
module Tuple = Events.Tuple

let () =
  let query = Pattern.Parse.pattern_exn "SEQ(E1, AND(E2, E3), E4) ATLEAST 2 minutes" in
  Format.printf "termination detector: %a@.@." Pattern.Ast.pp query;

  (* The paper's trivial inconsistency (ATLEAST 2 WITHIN 1) is already
     rejected at validation time; a subtler one needs Algorithm 1. *)
  (match Pattern.Parse.pattern "SEQ(E1, AND(E2, E3), E4) ATLEAST 2 WITHIN 1" with
  | Error msg -> Format.printf "parse-time rejection: %s@." msg
  | Ok _ -> assert false);
  let subtle =
    Pattern.Parse.pattern_exn "SEQ(SEQ(E1, E2) ATLEAST 3, E4) WITHIN 2"
  in
  Format.printf "subtle variant %a consistent? %b@." Pattern.Ast.pp subtle
    (Explain.Consistency.check [ subtle ]).consistent;

  (* The log as received (timestamps in seconds would also work; we use
     minutes since cluster start). E3's submission was logged late, AFTER
     the termination E4 — so the pattern cannot match. *)
  let log =
    Tuple.of_list [ ("E1", 100); ("E2", 109); ("E3", 114); ("E4", 112) ]
  in
  Format.printf "@.log tuple: %a@." Tuple.pp log;
  Format.printf "detector fires? %b (yet the job IS gone)@.@."
    (Pattern.Matcher.matches log query);

  match Explain.Modification.explain [ query ] log with
  | Some { repaired; cost; _ } ->
      Format.printf "why-not explanation (cost %d minute(s)):@." cost;
      List.iter
        (fun (e, old_ts, new_ts) -> Format.printf "  %s: %d -> %d@." e old_ts new_ts)
        (Tuple.diff log repaired);
      Format.printf
        "-> reversing the order of E3 (new job submission) and E4 (termination): \
         the messages arrived out of order@.";
      Format.printf "detector fires on repaired log? %b@."
        (Pattern.Matcher.matches repaired query)
  | None -> Format.printf "no explanation@."
