(* COVID-19 contact tracing over a month of flight data (Section 1 / 6.3.1).

   A reported passenger transferred in LGA; we trace passengers whose
   transfer overlapped. Some timestamps come from imprecise sources, so
   expected days are missing from the answer — the streaming engine flags
   them and proposes the minimal timestamp modification.

   Run with: dune exec examples/covid_tracing.exe *)

open Whynot
module Tuple = Events.Tuple
module Trace = Events.Trace
module Stream = Cep.Stream

let () =
  let prng = Numeric.Prng.create 2024 in
  let { Datagen.Flight.pattern; truth; observed } =
    Datagen.Flight.generate prng ~num_events:4 ~days:31 ~sources:3
      ~imprecise_probability:0.5
  in
  Format.printf "tracing query: %a@.@." Pattern.Ast.pp pattern;

  (* Batch: which days match on clean vs observed data? *)
  let expected = Cep.Query.answers [ pattern ] truth in
  let found = Cep.Query.answers [ pattern ] observed in
  Format.printf "expected contact days: %d, found in observed data: %d@."
    (List.length expected) (List.length found);
  let missing = List.filter (fun d -> not (List.mem d found)) expected in
  Format.printf "missing days (non-answers to explain): %s@.@."
    (String.concat ", " missing);

  (* Stream the observed events through the CEP engine with explanations
     enabled: every completed day gets a verdict. *)
  let engine = Stream.create ~explain:true [ pattern ] in
  Trace.fold
    (fun day tuple () ->
      Tuple.fold (fun e ts () -> ignore (Stream.feed engine ~key:day e ts)) tuple ())
    observed ();
  let failed_with_explanation =
    List.filter_map
      (fun (day, verdict) ->
        match verdict with
        | Stream.Failed { explanation = Some e; _ } -> Some (day, e)
        | _ -> None)
      (Stream.finished engine)
  in
  Format.printf "explained non-answers (single-binding, Definition 8):@.";
  List.iter
    (fun (day, e) ->
      Format.printf "  %s: cost %d minute(s)@." day e.Explain.Modification.cost;
      List.iter
        (fun (ev, old_ts, new_ts) ->
          let truth_ts = Tuple.find_opt (Option.get (Trace.find_opt truth day)) ev in
          Format.printf "    %s: %s -> %s (truth: %s)@." ev (Events.Time.to_hm old_ts)
            (Events.Time.to_hm new_ts)
            (match truth_ts with Some t -> Events.Time.to_hm t | None -> "?"))
        (Tuple.diff
           (Option.get (Trace.find_opt observed day))
           e.Explain.Modification.repaired))
    failed_with_explanation;

  (* How close do the explanations land to the labeled truth? *)
  let repaired = Cep.Query.explain_trace [ pattern ] observed in
  Format.printf "@.NRMSE of observed vs truth:  %.4f@."
    (Datagen.Metrics.trace_nrmse ~truth ~repaired:observed);
  Format.printf "NRMSE of repaired vs truth:  %.4f (smaller = better explanation)@."
    (Datagen.Metrics.trace_nrmse ~truth ~repaired);
  let found_after = Cep.Query.answers [ pattern ] repaired in
  let acc = Cep.Query.accuracy ~truth:expected ~found:found_after in
  Format.printf "query accuracy after explanation: %a@." Cep.Query.pp_accuracy acc
