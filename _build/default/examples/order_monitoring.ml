(* Order monitoring (Section 1.2): cancelled orders involving a supplier and
   a remote stock within 12 hours.

     SEQ(AND(SEQ(E1, E2), SEQ(E3, E4)), E5) WITHIN 12 hours

   E1 = order from supplier, E2 = quote with high price, E3 = use remote
   stock, E4 = generate invoice, E5 = cancel order.

   Shows both explanation modes of the paper on this scenario:
   (1) a mistyped sub-pattern makes the whole query unsatisfiable — the
       pattern consistency explanation reports it before touching data;
   (2) a reset invoice timestamp (midnight) hides an expected alert — the
       timestamp modification explanation pinpoints it.

   Run with: dune exec examples/order_monitoring.exe *)

open Whynot
module Tuple = Events.Tuple

let () =
  let query =
    Pattern.Parse.pattern_exn "SEQ(AND(SEQ(E1, E2), SEQ(E3, E4)), E5) WITHIN 12 hours"
  in
  Format.printf "alert query: %a@.@." Pattern.Ast.pp query;

  (* (1) Pattern consistency explanation during query development. *)
  let mistyped =
    Pattern.Parse.pattern_exn
      "SEQ(AND(SEQ(E1, E2) ATLEAST 24 hours, SEQ(E3, E4)), E5) WITHIN 12 hours"
  in
  let report = Explain.Consistency.check [ mistyped ] in
  Format.printf
    "mistyped query (ATLEAST 24 hours inside a 12-hour window) consistent? %b@."
    report.consistent;
  Format.printf "-> the developer is warned before the query ever runs@.@.";

  (* (2) Timestamp modification explanation during debugging. An order that
     should alert, except the invoice timestamp E4 was reset to 00:00. *)
  let order =
    Tuple.of_list
      [
        ("E1", Events.Time.of_hm "9:00");
        ("E2", Events.Time.of_hm "9:40");
        ("E3", Events.Time.of_hm "9:10");
        ("E4", 0) (* reset to midnight by a faulty system *);
        ("E5", Events.Time.of_hm "15:30");
      ]
  in
  Format.printf "order tuple: %a@." Tuple.pp_hm order;
  Format.printf "alerts? %b (but the warehouse insists it should)@.@."
    (Pattern.Matcher.matches order query);
  match Explain.Modification.explain [ query ] order with
  | Some { repaired; cost; _ } ->
      Format.printf "why not: minimal modification of %d minute(s):@." cost;
      List.iter
        (fun (e, old_ts, new_ts) ->
          Format.printf "  %s: %s -> %s@." e (Events.Time.to_hm old_ts)
            (Events.Time.to_hm new_ts))
        (Tuple.diff order repaired);
      Format.printf
        "-> the invoice timestamp E4 was reset and must lie between the stock \
         use and the cancellation@."
  | None -> Format.printf "no explanation@."
