(* Vehicle tracking (Section 1.2): counting complete excavation trips.

     SEQ(E1, AND(E2, E3) ATLEAST 30 minutes, E4) WITHIN 2 hours

   E1 = excavation, E2 = weighting, E3 = height measuring (any order),
   E4 = unloading. The trip count over a fleet's day comes out low;
   explanations reveal incomplete timestamps at the checkpoints.

   Run with: dune exec examples/vehicle_tracking.exe *)

open Whynot
module Tuple = Events.Tuple
module Trace = Events.Trace

let query =
  Pattern.Parse.pattern_exn
    "SEQ(E1, AND(E2, E3) ATLEAST 30 minutes, E4) WITHIN 2 hours"

let () =
  Format.printf "trip query: %a@.@." Pattern.Ast.pp query;

  (* The mistyped variant of the paper: hours instead of minutes. *)
  let mistyped =
    Pattern.Parse.pattern_exn "SEQ(E1, AND(E2, E3) ATLEAST 30 hours, E4) WITHIN 2 hours"
  in
  Format.printf "'ATLEAST 30 hours' variant consistent? %b@.@."
    (Explain.Consistency.check [ mistyped ]).consistent;

  (* A fleet of trucks; some checkpoints recorded incomplete timestamps
     (minutes lost: 11:47 became 11:00). *)
  let prng = Numeric.Prng.create 99 in
  let clean = Datagen.Workloads.matching_trace ~horizon:600 prng [ query ] ~tuples:40 in
  let truncate_minutes t =
    (* model the "11:-" incomplete-timestamp corruption *)
    Tuple.map (fun _ ts -> ts / 60 * 60) t
  in
  let observed =
    Trace.map
      (fun id t -> if String.length id > 0 && id.[5] < '2' then truncate_minutes t else t)
      clean
  in
  let complete_clean = List.length (Cep.Query.answers [ query ] clean) in
  let complete_observed = List.length (Cep.Query.answers [ query ] observed) in
  Format.printf "complete trips in clean data:    %d@." complete_clean;
  Format.printf "complete trips in observed data: %d (drivers dispute this)@.@."
    complete_observed;

  (* Explain every missing trip and re-count. *)
  let non_answers = Cep.Query.non_answers [ query ] observed in
  List.iter
    (fun id ->
      let t = Option.get (Trace.find_opt observed id) in
      match
        Explain.Modification.explain ~strategy:Explain.Modification.Single [ query ] t
      with
      | Some { cost; repaired; _ } ->
          Format.printf "trip %s explained with cost %d: %s@." id cost
            (String.concat ", "
               (List.map
                  (fun (e, o, n) -> Printf.sprintf "%s %d->%d" e o n)
                  (Tuple.diff t repaired)))
      | None -> Format.printf "trip %s: not explainable@." id)
    non_answers;
  let repaired = Cep.Query.explain_trace [ query ] observed in
  Format.printf "@.complete trips after explanation: %d@."
    (List.length (Cep.Query.answers [ query ] repaired))
