(* Quickstart: the paper's Table 1 / Example 1 scenario end to end.

   Run with: dune exec examples/quickstart.exe *)

open Whynot
module Tuple = Events.Tuple

let () =
  (* 1. Pose an event pattern query (Definition 1) in the paper's syntax. *)
  let p0 =
    Pattern.Parse.pattern_exn
      "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"
  in
  Format.printf "query p0: %a@.@." Pattern.Ast.pp p0;

  (* 2. Two tuples of flight events (Table 1). *)
  let hm = Events.Time.of_hm in
  let t1 =
    Tuple.of_list
      [ ("E1", hm "17:08"); ("E2", hm "18:58"); ("E3", hm "17:25"); ("E4", hm "19:13") ]
  in
  let t2 =
    Tuple.of_list
      [ ("E1", hm "17:06"); ("E2", hm "18:54"); ("E3", hm "17:24"); ("E4", hm "20:08") ]
  in

  (* 3. Match checking (Definition 2 / Proposition 1). *)
  Format.printf "t1 = %a@.  t1 |= p0? %b@.@." Tuple.pp_hm t1 (Pattern.Matcher.matches t1 p0);
  Format.printf "t2 = %a@.  t2 |= p0? %b@.@." Tuple.pp_hm t2 (Pattern.Matcher.matches t2 p0);

  (* 4. Why not? First make sure the query itself is satisfiable
        (pattern consistency explanation, Algorithm 1). *)
  let report = Explain.Consistency.check [ p0 ] in
  Format.printf "p0 consistent? %b (%d binding(s) checked)@.@." report.consistent
    report.bindings_checked;

  (* A buggy variant is caught before ever touching the data: *)
  let buggy =
    Pattern.Parse.pattern_exn
      "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45"
  in
  Format.printf "buggy variant consistent? %b (explains its non-answers)@.@."
    (Explain.Consistency.check [ buggy ]).consistent;

  (* 5. The query is fine, so the non-answer t2 gets a timestamp
        modification explanation (Algorithm 2): the minimal change making
        it an answer. *)
  (match Explain.Modification.explain [ p0 ] t2 with
  | Some { repaired; cost; bindings_tried; _ } ->
      Format.printf "t2 is explained by a %d-minute modification (%d bindings tried):@."
        cost bindings_tried;
      List.iter
        (fun (e, old_ts, new_ts) ->
          Format.printf "  %s: %s -> %s@." e (Events.Time.to_hm old_ts)
            (Events.Time.to_hm new_ts))
        (Tuple.diff t2 repaired);
      Format.printf "repaired tuple matches? %b@." (Pattern.Matcher.matches repaired p0)
  | None -> Format.printf "no explanation (query inconsistent)@.");

  (* 6. The cheaper single-binding approximation (Definition 8). *)
  match Explain.Modification.explain ~strategy:Explain.Modification.Single [ p0 ] t2 with
  | Some { cost; _ } ->
      Format.printf "Pattern(Single) explanation cost: %d minute(s)@." cost
  | None -> ()
