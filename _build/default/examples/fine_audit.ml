(* End-to-end audit of a road-traffic-fine process log.

   The full toolchain on one scenario: simulate a fine-management process
   (discrete-event simulation), corrupt some timestamps, export/reimport the
   log as an XES file (the process-mining interchange format the real RTFM
   corpus uses), run the aggregate why-not dashboard, and drill into one
   case with ranked explanations and the Figure 3 pipeline.

   Run with: dune exec examples/fine_audit.exe *)

open Whynot
module Trace = Events.Trace
module Tuple = Events.Tuple

let () =
  let prng = Numeric.Prng.create 7777 in

  (* 1. A month of fine cases from the process simulator. *)
  let clean = Datagen.Rtfm.generate prng ~tuples:60 in
  let patterns = Datagen.Rtfm.patterns in
  Format.printf "audit query:@.";
  List.iter (fun p -> Format.printf "  %a@." Pattern.Ast.pp p) patterns;

  (* 2. The recording system corrupts some timestamps. *)
  let observed = Datagen.Faults.trace prng ~rate:0.3 ~distance:900 clean in

  (* 3. Round-trip through XES, as if exchanged with a process-mining tool. *)
  let path = Filename.temp_file "fines" ".xes" in
  Events.Xes.write_file path observed;
  let observed, dropped =
    match Events.Xes.read_file path with
    | Ok r -> r
    | Error e -> failwith e
  in
  Sys.remove path;
  Format.printf "@.reloaded %d cases from XES (%d repeated events dropped)@."
    (Trace.cardinal observed) dropped;

  (* 4. The aggregate dashboard: what is failing, and how badly? *)
  let report = Explain.Diagnose.run patterns observed in
  Format.printf "@.%a@." Explain.Diagnose.pp report;

  (* 5. Drill into the worst case with ranked explanations. *)
  match
    List.sort (fun (_, a) (_, b) -> compare b a) report.repair_costs
  with
  | [] -> Format.printf "nothing to explain — the log is clean@."
  | (worst_id, worst_cost) :: _ -> (
      Format.printf "worst case %s (minimal repair %d minutes):@." worst_id worst_cost;
      let tuple = Option.get (Trace.find_opt observed worst_id) in
      (match Explain.Topk.explain ~k:3 patterns tuple with
      | Some { candidates; blames; _ } ->
          List.iteri
            (fun rank c ->
              Format.printf "  candidate #%d (cost %d): %s@." (rank + 1)
                c.Explain.Topk.cost
                (String.concat ", "
                   (List.map
                      (fun (e, o, n) -> Printf.sprintf "%s %d->%d" e o n)
                      (Tuple.diff tuple c.repaired))))
            candidates;
          (match blames with
          | top :: _ ->
              Format.printf "  most suspicious event: %s (%.0f%% of candidates)@."
                top.Explain.Topk.event (100.0 *. top.frequency)
          | [] -> ())
      | None -> assert false);
      (* 6. And the Figure 3 pipeline with a plausibility budget. *)
      match Explain.Pipeline.explain ~max_cost:600 patterns tuple with
      | Explain.Pipeline.Modify_timestamps r ->
          Format.printf "pipeline verdict: repair the data (cost %d)@."
            r.Explain.Modification.cost
      | Explain.Pipeline.Modify_query qr ->
          Format.printf
            "pipeline verdict: the data repair is implausible; relax the query:@.";
          List.iter
            (fun c -> Format.printf "  %a@." Explain.Query_repair.pp_window_change c)
            qr.Explain.Query_repair.changes
      | outcome ->
          Format.printf "pipeline verdict: %a@." Explain.Pipeline.pp_outcome outcome)
