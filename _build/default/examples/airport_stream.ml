(* Live detection over an interleaved airport event stream.

   Unlike the per-day tuples of the other examples, here arrivals and
   departures of MANY flights stream in as one sequence, and the detector
   must find every pair of passengers whose transfers overlap (the COVID
   tracing pattern) among all combinations — the skip-till-any-match
   semantics of CEP engines.

   Run with: dune exec examples/airport_stream.exe *)

open Whynot
module Detector = Cep.Detector

let () =
  (* E1/E3 = two arrivals within 30 minutes, E2/E4 = two departures within
     30 minutes, transfers overlapping by design of the SEQ + ATLEAST. *)
  let query =
    Pattern.Parse.pattern_exn
      "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"
  in
  Format.printf "query: %a@." Pattern.Ast.pp query;
  let detector = Detector.create ~horizon:300 [ query ] in

  (* One afternoon at the airport: the reported passenger's flights are
     UA104 (arrival = E1) and AA514 (departure = E2); every other passenger
     contributes a candidate arrival (E3) and departure (E4). *)
  let hm = Events.Time.of_hm in
  let stream =
    [
      ("E3", hm "16:40", "KL601/anna");
      ("E1", hm "17:08", "UA104/reported");
      ("E3", hm "17:25", "DL22/bob");
      ("E3", hm "17:49", "AF09/carol");
      ("E4", hm "18:02", "LH454/anna");
      ("E2", hm "18:58", "AA514/reported");
      ("E4", hm "19:13", "CO193/bob");
      ("E4", hm "19:21", "BA117/carol");
    ]
  in
  Format.printf "@.streaming %d events...@." (List.length stream);
  List.iter
    (fun (event, timestamp, tag) ->
      let matches = Detector.feed detector { Detector.event; timestamp; tag } in
      List.iter
        (fun m ->
          Format.printf "  CONTACT at %s: %a@."
            (Events.Time.to_hm timestamp)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
               (fun ppf (e, tag) ->
                 Format.fprintf ppf "%s(%s)" tag
                   (Events.Time.to_hm (Events.Tuple.find m.Detector.tuple e))))
            m.Detector.tags)
        matches)
    stream;
  Format.printf "live partial matches: %d (none dropped: %b)@.@."
    (Detector.partial_count detector)
    (Detector.dropped detector = 0);

  (* Anna almost matched: her arrival was 28 minutes before the reported
     passenger's, fine — but she departed 56 minutes early. Why-not, with
     candidates ranked: *)
  let anna =
    Events.Tuple.of_list
      [
        ("E1", hm "17:08"); ("E2", hm "18:58");
        ("E3", hm "16:40"); ("E4", hm "18:02");
      ]
  in
  match Explain.Topk.explain ~k:3 [ query ] anna with
  | None -> assert false
  | Some { candidates; blames; _ } ->
      Format.printf "why did anna not match? top candidates:@.";
      List.iteri
        (fun rank c ->
          Format.printf "  #%d (cost %d): %s@." (rank + 1) c.Explain.Topk.cost
            (String.concat ", "
               (List.map
                  (fun (e, o, n) ->
                    Printf.sprintf "%s %s->%s" e (Events.Time.to_hm o)
                      (Events.Time.to_hm n))
                  (Events.Tuple.diff anna c.repaired))))
        candidates;
      List.iter
        (fun b ->
          Format.printf "  blame %s: %.0f%% of candidates@." b.Explain.Topk.event
            (100.0 *. b.frequency))
        blames
