examples/order_monitoring.mli:
