examples/cluster_jobs.mli:
