examples/covid_tracing.ml: Cep Datagen Events Explain Format List Numeric Option Pattern String Whynot
