examples/airport_stream.ml: Cep Events Explain Format List Pattern Printf String Whynot
