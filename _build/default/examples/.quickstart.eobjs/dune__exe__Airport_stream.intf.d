examples/airport_stream.mli:
