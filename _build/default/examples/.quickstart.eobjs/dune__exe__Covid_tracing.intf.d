examples/covid_tracing.mli:
