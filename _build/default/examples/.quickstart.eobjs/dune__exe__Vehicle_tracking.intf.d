examples/vehicle_tracking.mli:
