examples/fine_audit.ml: Datagen Events Explain Filename Format List Numeric Option Pattern Printf String Sys Whynot
