examples/quickstart.mli:
