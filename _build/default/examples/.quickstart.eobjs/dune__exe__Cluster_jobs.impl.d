examples/cluster_jobs.ml: Events Explain Format List Pattern Whynot
