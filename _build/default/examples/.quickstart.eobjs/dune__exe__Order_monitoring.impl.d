examples/order_monitoring.ml: Events Explain Format List Pattern Whynot
