examples/fine_audit.mli:
