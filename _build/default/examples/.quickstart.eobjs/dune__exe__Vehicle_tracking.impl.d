examples/vehicle_tracking.ml: Cep Datagen Events Explain Format List Numeric Option Pattern Printf String Whynot
