examples/quickstart.ml: Events Explain Format List Pattern Whynot
