(** Event pattern query evaluation over traces.

    The paper's system sits on a complex event processing engine: a query
    (pattern set) is evaluated over a log of tuples and returns the matching
    ones. This module is that engine's batch side, plus the answer-quality
    metrics of Section 6.4 used to score explanations by the accuracy of
    query answers after repair. *)

val answers : Pattern.Ast.t list -> Events.Trace.t -> string list
(** Identifiers of the tuples matching every pattern of the query, in
    increasing order. *)

val non_answers : Pattern.Ast.t list -> Events.Trace.t -> string list
(** Identifiers of the tuples that do {e not} match — the candidates for
    why-not explanations. *)

type accuracy = { precision : float; recall : float; f_measure : float }

val accuracy : truth:string list -> found:string list -> accuracy
(** Precision/recall/f-measure of [found] against [truth] (Section 6.4).
    Conventions: empty [found] has precision 1; empty [truth] has recall 1. *)

val pp_accuracy : Format.formatter -> accuracy -> unit

val explain_trace :
  ?strategy:Explain.Modification.strategy ->
  ?engine:Explain.Modification.engine ->
  ?solver:Explain.Modification.solver ->
  ?max_cost:int ->
  Pattern.Ast.t list ->
  Events.Trace.t ->
  Events.Trace.t
(** Repair every non-answer of the trace with the timestamp modification
    explanation (answers pass through unchanged). Tuples that cannot be
    repaired (inconsistent query or missing events) also pass through
    unchanged, as do tuples whose minimal repair costs more than
    [max_cost] — per the paper, an explanation that must "significantly
    modify the timestamps on a great many of events" does not apply. This
    is the "query after explanation" pipeline of Figure 12. *)
