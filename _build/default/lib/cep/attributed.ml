module Event = Events.Event

type attrs = (string * Where.value) list

type record = { tuple : Events.Tuple.t; attributes : (Event.t * attrs) list }

module M = Map.Make (String)

type t = record M.t

let empty = M.empty
let add = M.add
let find_opt t id = M.find_opt id t
let cardinal = M.cardinal
let bindings = M.bindings
let of_list l = List.fold_left (fun acc (id, r) -> add id r acc) empty l

let timestamps t =
  M.fold (fun id r acc -> Events.Trace.add id r.tuple acc) t Events.Trace.empty

let lookup record event attr =
  match List.assoc_opt event record.attributes with
  | None -> None
  | Some attrs -> List.assoc_opt attr attrs

type query = { patterns : Pattern.Ast.t list; where : Where.expr }

let parse_query ~pattern ?where () =
  match Pattern.Parse.pattern_set pattern with
  | Error msg -> Error ("pattern: " ^ msg)
  | Ok patterns -> (
      match where with
      | None -> Ok { patterns; where = Where.True }
      | Some w -> (
          match Where.parse w with
          | Ok where -> Ok { patterns; where }
          | Error msg -> Error ("where: " ^ msg)))

type verdict =
  | Answer
  | Rejected_by_where
  | Rejected_by_pattern of Pattern.Matcher.failure

let classify query record =
  if not (Where.eval ~lookup:(lookup record) query.where) then Rejected_by_where
  else
    match Pattern.Matcher.explain_failure record.tuple query.patterns with
    | None -> Answer
    | Some failure -> Rejected_by_pattern failure

let answers query t =
  M.fold
    (fun id record acc -> if classify query record = Answer then id :: acc else acc)
    t []
  |> List.rev

let pattern_non_answers query t =
  M.fold
    (fun id record acc ->
      match classify query record with
      | Rejected_by_pattern _ -> (id, record) :: acc
      | Answer | Rejected_by_where -> acc)
    t []
  |> List.rev
