(** Attributed traces: tuples whose events carry attributes.

    The relational half of the paper's query language: a tuple's events have
    payloads (gate, price, operator...) filtered by a WHERE clause before
    the temporal pattern applies. An attributed trace stores, per tuple id,
    the timestamps (an {!Events.Tuple.t}) plus per-event attribute maps; a
    full query is a pattern set and a {!Where.expr}, and answers must both
    satisfy the predicate and match the patterns. For a non-answer, the
    verdict distinguishes which half rejected it: predicate rejections are
    out of scope for timestamp explanations (the paper defers them to
    relational why-not machinery), pattern rejections feed Algorithm 2. *)

type attrs = (string * Where.value) list
(** Attribute assignment of one event (name-value pairs). *)

type record = { tuple : Events.Tuple.t; attributes : (Events.Event.t * attrs) list }

type t
(** Trace of attributed records, keyed by tuple id. *)

val empty : t
val add : string -> record -> t -> t
val find_opt : t -> string -> record option
val cardinal : t -> int
val bindings : t -> (string * record) list
val of_list : (string * record) list -> t

val timestamps : t -> Events.Trace.t
(** Forget the attributes. *)

val lookup : record -> Events.Event.t -> string -> Where.value option

type query = { patterns : Pattern.Ast.t list; where : Where.expr }

val parse_query :
  pattern:string -> ?where:string -> unit -> (query, string) result
(** Parse both halves; [where] defaults to [TRUE]. *)

type verdict =
  | Answer
  | Rejected_by_where  (** relational machinery's territory *)
  | Rejected_by_pattern of Pattern.Matcher.failure
      (** candidate for the temporal explanations *)

val classify : query -> record -> verdict

val answers : query -> t -> string list

val pattern_non_answers : query -> t -> (string * record) list
(** Tuples passing the WHERE clause but failing the pattern — exactly the
    inputs of {!Explain.Modification} (Section 2.1: "our explanations on
    the event patterns are performed over the filtered events"). *)
