(** WHERE-clause predicates over event attributes (Section 2.1).

    The paper's query language admits clauses like
    [SEQ(E1, E2) WHERE E1.gate = "H15"]: attribute filters are evaluated
    first (by classic relational machinery), and the event-pattern
    explanations run over the filtered events. This module provides that
    front half: a small predicate language over per-event attributes, its
    parser, and its evaluator.

    Grammar (case-insensitive keywords):
    {v
      expr    := clause (AND clause)* | clause (OR clause)*
      clause  := NOT clause | '(' expr ')' | event '.' attr op literal
      op      := = | != | < | <= | > | >=
      literal := integer | 'string' | "string"
    v} *)

type value = Int of int | Str of string

val pp_value : Format.formatter -> value -> unit

type op = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Cmp of { event : Events.Event.t; attr : string; op : op; value : value }
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | True

val pp : Format.formatter -> expr -> unit
(** Parseable surface syntax. *)

val parse : string -> (expr, string) result
val parse_exn : string -> expr

val events : expr -> Events.Event.Set.t
(** Events whose attributes the predicate inspects. *)

val eval :
  lookup:(Events.Event.t -> string -> value option) -> expr -> bool
(** Evaluate; a comparison on a missing attribute is false (and its
    negation true), mirroring SQL-ish unknown-as-failure semantics for
    filters. Comparing [Int] with [Str] is false except under [Ne]. *)
