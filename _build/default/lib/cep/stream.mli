(** Streaming front end of the CEP engine.

    Event instances arrive one at a time as [(key, event, timestamp)] —
    the key groups instances into tuples (a day of flights, a fine case, a
    job id). As soon as a key has seen every event required by the query,
    the engine emits a verdict: [Matched], or [Failed] with the first
    match failure and, when explanation is enabled, the minimal timestamp
    modification that would have made it match. This is the paper's
    debugging loop ("an expected result is not returned — why?") run
    online. *)

type verdict =
  | Pending  (** some required events still missing for this key *)
  | Matched of Events.Tuple.t
  | Failed of {
      tuple : Events.Tuple.t;
      failure : Pattern.Matcher.failure;
      explanation : Explain.Modification.result option;
          (** present when the engine was created with [~explain:true] and
              the query is consistent *)
    }

type t

val create :
  ?explain:bool ->
  ?strategy:Explain.Modification.strategy ->
  Pattern.Ast.t list ->
  t
(** @raise Invalid_argument on invalid patterns. [explain] defaults to
    false. *)

val required_events : t -> Events.Event.Set.t

val feed : t -> key:string -> Events.Event.t -> Events.Time.t -> verdict
(** Add one event instance. A later instance for an already-seen event of
    the same key overwrites the old timestamp (latest wins) and the verdict
    is re-evaluated. Events outside the query are ignored ([Pending]). *)

val current : t -> key:string -> Events.Tuple.t
(** Partial tuple accumulated for a key (empty if unseen). *)

val finished : t -> (string * verdict) list
(** All keys whose tuples are complete, with their verdicts, in key order. *)
