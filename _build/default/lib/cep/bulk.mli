(** Parallel bulk explanation over multicore OCaml domains.

    Explaining a large trace is embarrassingly parallel: each non-answer's
    repair is independent (the temporal-network encoding is immutable and
    every solver allocates its own state). This module chunks the
    non-answers across [domains] and runs {!Explain.Modification} in
    parallel — the multi-tuple analogue of {!Query.explain_trace}, with
    identical results (asserted by tests).

    Figure 9's message — per-tuple cost independent of trace size — means
    throughput scales with cores; the ablation benchmark measures the
    speedup on this machine. *)

val explain_trace :
  ?domains:int ->
  ?strategy:Explain.Modification.strategy ->
  ?engine:Explain.Modification.engine ->
  ?solver:Explain.Modification.solver ->
  ?max_cost:int ->
  Pattern.Ast.t list ->
  Events.Trace.t ->
  Events.Trace.t
(** Same contract as {!Query.explain_trace}. [domains] defaults to
    [Domain.recommended_domain_count ()] capped at 8; [1] runs inline.
    @raise Invalid_argument on invalid patterns or [domains < 1]. *)

val map_tuples :
  ?domains:int ->
  (string -> Events.Tuple.t -> 'a) ->
  Events.Trace.t ->
  (string * 'a) list
(** Generic parallel map over a trace's tuples (id order preserved in the
    result). The function must be safe to run concurrently — pure
    computations over immutable inputs, like everything in this library. *)
