(** SQL representation of event patterns (Section 7.3).

    The paper notes that a pattern is expressible as a plain SQL filter over
    a relation with one timestamp column per event — e.g.
    [AND(E1, E2) WITHIN 30] becomes
    [(E1 >= E2 AND E1 <= E2 + 30) OR (E2 >= E1 AND E2 <= E1 + 30)] —
    "but with great complexity": one disjunct per binding of the temporal
    network. This module makes that translation executable: each full
    binding grounds the artificial AND events onto real ones (resolving the
    [\[0,0\]] equalities), leaving a conjunction of two-column comparisons;
    the query is the disjunction over bindings. An in-repo evaluator makes
    the translation testable: it agrees with {!Pattern.Matcher} on every
    tuple (a qcheck property). *)

type comparison = {
  left : Events.Event.t;
  right : Events.Event.t;
  offset : int;  (** the condition [t(left) <= t(right) + offset] *)
}

type condition =
  | True
  | False
  | Cmp of comparison
  | All of condition list  (** conjunction *)
  | Any of condition list  (** disjunction *)

val of_patterns : ?max_bindings:int -> Pattern.Ast.t list -> condition
(** Translate a pattern set. One disjunct per full binding (inconsistent
    bindings are dropped; an inconsistent query yields [False]).
    @raise Invalid_argument on an invalid set or when the binding space
    exceeds [max_bindings] (default 4096 — the paper's point about the
    translation's "great complexity" made concrete). *)

val eval : condition -> Events.Tuple.t -> bool
(** Evaluate over a tuple (a comparison on an unbound event is false). *)

val to_string : condition -> string
(** The boolean SQL expression ([1 = 1] / [1 = 0] for the trivial cases). *)

val select : ?table:string -> Pattern.Ast.t list -> string
(** [SELECT * FROM table WHERE ...] (table defaults to ["events"]). *)
