(** Pattern matching of tuples (Definition 2 / Proposition 1).

    [matches t p] decides [t |= p] by one recursive pass computing the start
    and end timestamps of every sub-pattern — linear in pattern size, well
    within the O(n^2) bound of Proposition 1. The matcher is the ground
    truth the rest of the system is tested against: the temporal-network
    encoding must agree with it (Proposition 5), and every timestamp
    modification explanation must make it return [true]. *)

type span = { start : Events.Time.t; stop : Events.Time.t }
(** Occurrence period [t[p^s]], [t[p^e]] of a matched (sub-)pattern. *)

type failure =
  | Missing_event of Events.Event.t  (** the tuple does not bind the event *)
  | Order_violation of Ast.t * Ast.t
      (** consecutive SEQ children overlap: the first ends after the second
          starts *)
  | Window_violation of Ast.t * span
      (** the pattern's occurrence period violates its ATLEAST/WITHIN *)

val pp_failure : Format.formatter -> failure -> unit

val span : Events.Tuple.t -> Ast.t -> (span, failure) result
(** Occurrence period of the whole pattern, or the first reason it fails. *)

val matches : Events.Tuple.t -> Ast.t -> bool
(** [matches t p] is [t |= p]. *)

val matches_set : Events.Tuple.t -> Ast.t list -> bool
(** [t |= P]: the tuple matches every pattern of the set. *)

val explain_failure : Events.Tuple.t -> Ast.t list -> failure option
(** First failure across the set, [None] if the tuple matches. *)
