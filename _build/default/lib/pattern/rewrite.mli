(** Semantics-preserving pattern rewrites.

    A light query-optimizer pass used before encoding: fewer nodes mean
    fewer artificial events, fewer binding conditions, and exponentially
    fewer bindings for the explanation algorithms. All rewrites preserve
    the matcher semantics of Definition 2 exactly (property-tested):

    - a windowless composite with a single child collapses to the child
      (with windows, the window is kept by merging when the child admits
      it);
    - a windowless SEQ child of a SEQ splices into its parent
      ([SEQ(a, SEQ(b, c), d)] = [SEQ(a, b, c, d)]);
    - a windowless AND child of an AND splices into its parent;
    - windows that cannot constrain anything ([ATLEAST 0], and for single
      events any [WITHIN b >= 0]) are dropped. *)

val normalize : Ast.t -> Ast.t
(** Fixpoint of the rewrites above. The result matches exactly the same
    tuples. The payoff is measured via
    [Tcn.Bindings.count (Tcn.Encode.pattern_set [p]).set_bindings]
    before and after (the binding-space size drives Algorithm 1/2 cost). *)
