(** Event patterns (Definition 1 of the paper).

    A pattern is an event, or a [SEQ]/[AND] composition of sub-patterns,
    optionally constrained by a window [ATLEAST a] [WITHIN b] on the length
    of the time period it spans. [SEQ] means sequential occurrence (each
    sub-pattern ends before the next starts), [AND] concurrent occurrence
    (any interleaving). *)

type window = { atleast : Events.Time.t option; within : Events.Time.t option }
(** Optional lower/upper bound on [t[p^e] - t[p^s]]. *)

type t =
  | Event of Events.Event.t
  | Seq of t list * window
  | And of t list * window

val no_window : window
val window : ?atleast:Events.Time.t -> ?within:Events.Time.t -> unit -> window

val event : Events.Event.t -> t
val seq : ?atleast:Events.Time.t -> ?within:Events.Time.t -> t list -> t
val and_ : ?atleast:Events.Time.t -> ?within:Events.Time.t -> t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val events : t -> Events.Event.Set.t
(** All events mentioned in the pattern. *)

val events_of_set : t list -> Events.Event.Set.t
(** Union over a pattern set [P]. *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int
(** Nesting depth; a single event has depth 1. *)

val count_and : t -> int
(** Number of AND nodes (each contributes two binding conditions). *)

type shape =
  | Simple  (** no AND at all: encodable as a simple temporal network *)
  | And_no_seq_inside
      (** has AND, but no SEQ nested (directly or transitively) under any
          AND: single binding is provably optimal (Proposition 8) *)
  | General  (** anything else *)

val classify : t -> shape
(** The pattern class of Table 2 that drives algorithm selection. *)

val classify_set : t list -> shape
(** Weakest class over a pattern set ([General] dominates). *)

type error =
  | Empty_composition  (** a SEQ or AND with no sub-pattern *)
  | Inverted_window of Events.Time.t * Events.Time.t
      (** ATLEAST a WITHIN b with a > b *)
  | Negative_bound of Events.Time.t
  | Duplicate_event of Events.Event.t
      (** the same event occurs twice in one pattern (tuples bind each event
          to a single timestamp, Definition 2) *)

val pp_error : Format.formatter -> error -> unit

val validate : t -> (unit, error) result
(** Structural well-formedness of Definition 1. *)

val validate_set : t list -> (unit, error) result
(** Each pattern of the set must be well-formed. Distinct patterns of a set
    may share events (that is how a set constrains a tuple jointly). *)

val pp : Format.formatter -> t -> unit
(** Canonical surface syntax, re-parseable by {!Parse.pattern}. *)

val to_string : t -> string
