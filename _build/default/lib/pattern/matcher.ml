module Tuple = Events.Tuple

type span = { start : Events.Time.t; stop : Events.Time.t }

type failure =
  | Missing_event of Events.Event.t
  | Order_violation of Ast.t * Ast.t
  | Window_violation of Ast.t * span

let pp_failure ppf = function
  | Missing_event e ->
      Format.fprintf ppf "tuple has no timestamp for event %a" Events.Event.pp e
  | Order_violation (p, q) ->
      Format.fprintf ppf "SEQ order violated: %a does not end before %a starts"
        Ast.pp p Ast.pp q
  | Window_violation (p, { start; stop }) ->
      Format.fprintf ppf "window violated by %a spanning [%d, %d] (length %d)"
        Ast.pp p start stop (stop - start)

let ( let* ) = Result.bind

let check_window p ({ start; stop } as sp) (w : Ast.window) =
  let len = stop - start in
  let lower_ok = match w.atleast with None -> true | Some a -> len >= a in
  let upper_ok = match w.within with None -> true | Some b -> len <= b in
  if lower_ok && upper_ok then Ok sp else Error (Window_violation (p, sp))

let rec span t p =
  match p with
  | Ast.Event e -> (
      match Tuple.find_opt t e with
      | Some ts -> Ok { start = ts; stop = ts }
      | None -> Error (Missing_event e))
  | Ast.Seq (ps, w) ->
      (* Children must occur back to back: each ends no later than the next
         starts (Definition 2, condition 2). *)
      let rec go first prev_pat prev_span = function
        | [] -> Ok { start = first.start; stop = prev_span.stop }
        | q :: rest ->
            let* sq = span t q in
            if prev_span.stop <= sq.start then go first q sq rest
            else Error (Order_violation (prev_pat, q))
      in
      let* result =
        match ps with
        | [] -> invalid_arg "Matcher.span: empty SEQ (validate first)"
        | p0 :: rest ->
            let* s0 = span t p0 in
            go s0 p0 s0 rest
      in
      check_window p result w
  | Ast.And (ps, w) ->
      let* result =
        List.fold_left
          (fun acc q ->
            let* sp = acc in
            let* sq = span t q in
            Ok { start = min sp.start sq.start; stop = max sp.stop sq.stop })
          (Ok { start = max_int; stop = min_int })
          ps
      in
      if result.start > result.stop then
        invalid_arg "Matcher.span: empty AND (validate first)"
      else check_window p result w

let matches t p = Result.is_ok (span t p)
let matches_set t ps = List.for_all (matches t) ps

let explain_failure t ps =
  List.find_map (fun p -> match span t p with Ok _ -> None | Error f -> Some f) ps
