let no_window (w : Ast.window) = w.atleast = None && w.within = None

let trivial_window (w : Ast.window) ~single_event =
  let atleast_trivial = match w.atleast with None -> true | Some a -> a <= 0 in
  let within_trivial =
    match w.within with
    | None -> true
    | Some b -> single_event && b >= 0 (* a single event always spans 0 *)
  in
  atleast_trivial && within_trivial

let rec normalize p =
  let p' = rewrite_once p in
  if Ast.equal p p' then p else normalize p'

and rewrite_once = function
  | Ast.Event _ as p -> p
  | Ast.Seq (children, w) -> composite true children w
  | Ast.And (children, w) -> composite false children w

and composite is_seq children w =
  let children = List.map rewrite_once children in
  (* splice windowless same-kind children into the parent *)
  let children =
    List.concat_map
      (fun child ->
        match (is_seq, child) with
        | true, Ast.Seq (grand, cw) when no_window cw -> grand
        | false, Ast.And (grand, cw) when no_window cw -> grand
        | _ -> [ child ])
      children
  in
  match children with
  | [ only ] when no_window w -> only
  | [ Ast.Event _ as only ] when trivial_window w ~single_event:true -> only
  | _ ->
      let w =
        (* drop ATLEAST 0 (implied); keep WITHIN (it constrains spans) *)
        match w.atleast with
        | Some a when a <= 0 -> { w with atleast = None }
        | _ -> w
      in
      if is_seq then Ast.Seq (children, w) else Ast.And (children, w)

