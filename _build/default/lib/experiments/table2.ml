module Prng = Numeric.Prng
module Ast = Pattern.Ast

type row = {
  pattern_class : string;
  claim : string;
  instances : int;
  verified : bool;
}

(* Small instances keep the grid-1 brute force tractable: its lattice then
   contains the true optimum, so equality is a real exactness check. *)
let fault_distance = 5
let brute_radius = 14

let numbered i = Printf.sprintf "E%d" i

let random_seq_pattern prng =
  let k = Prng.int_in prng 3 4 in
  let a = Prng.int_in prng 5 15 in
  let b = a + Prng.int_in prng 10 30 in
  Ast.seq ~atleast:a ~within:b (List.init k (fun i -> Ast.event (numbered (i + 1))))

let random_and_pattern prng =
  let k = Prng.int_in prng 2 5 in
  let a = Prng.int_in prng 5 15 in
  let b = a + Prng.int_in prng 5 20 in
  Ast.and_ ~atleast:a ~within:b (List.init k (fun i -> Ast.event (numbered (i + 1))))

let random_general_pattern prng =
  let a = Prng.int_in prng 8 16 in
  let b = a + Prng.int_in prng 5 15 in
  Ast.and_ ~atleast:a ~within:b
    [
      Ast.seq [ Ast.event "E1"; Ast.event "E2" ];
      Ast.seq [ Ast.event "E3"; Ast.event "E4" ];
    ]

let faulted_tuple prng patterns =
  let t = Datagen.Workloads.random_matching_tuple ~horizon:200 prng patterns in
  let rec degrade attempts =
    if attempts = 0 then t
    else
      let t' = Datagen.Faults.tuple prng ~rate:0.6 ~distance:fault_distance t in
      if Pattern.Matcher.matches_set t' patterns then degrade (attempts - 1) else t'
  in
  degrade 10

let cost_of strategy patterns tuple =
  Explain.Modification.explain ~strategy patterns tuple
  |> Option.map (fun r -> r.Explain.Modification.cost)

let brute_cost patterns tuple =
  Explain.Baselines.brute_force ~grid:1 ~radius:brute_radius patterns tuple
  |> Option.map (fun r -> r.Explain.Baselines.cost)

let check_simple prng =
  let patterns = [ random_seq_pattern prng ] in
  let net = Tcn.Encode.pattern_set patterns in
  let tuple = faulted_tuple prng patterns in
  net.set_bindings = []
  && cost_of Explain.Modification.Full patterns tuple = brute_cost patterns tuple

let check_and_no_seq prng =
  let patterns = [ random_and_pattern prng ] in
  let tuple = faulted_tuple prng patterns in
  cost_of Explain.Modification.Single patterns tuple
  = cost_of Explain.Modification.Full patterns tuple

let check_general prng =
  let patterns = [ random_general_pattern prng ] in
  let tuple = faulted_tuple prng patterns in
  match (cost_of Explain.Modification.Full patterns tuple, brute_cost patterns tuple) with
  | Some full, Some brute -> (
      full = brute
      && match cost_of Explain.Modification.Single patterns tuple with
         | Some single -> full <= single
         | None -> false)
  | _ -> false

let run ?(instances = 5) ?(seed = 9) () =
  let all check seed_offset =
    let prng = Prng.create (seed + seed_offset) in
    let rec go i = i = instances || (check prng && go (i + 1)) in
    go 0
  in
  [
    {
      pattern_class = "no AND (simple STN)";
      claim = "no bindings; one-LP repair is exact (= grid-1 brute force)";
      instances;
      verified = all check_simple 0;
    };
    {
      pattern_class = "no SEQ embedded in AND";
      claim = "single binding = full binding optimum (Proposition 8)";
      instances;
      verified = all check_and_no_seq 100;
    };
    {
      pattern_class = "general (SEQ in AND)";
      claim = "full binding is exact (= grid-1 brute force), single >= full";
      instances;
      verified = all check_general 200;
    };
  ]

let print rows =
  Harness.print_table ~title:"Table 2: major-results matrix (empirical checks)"
    ~header:[ "pattern class"; "claim"; "instances"; "verified" ]
    (List.map
       (fun { pattern_class; claim; instances; verified } ->
         [ pattern_class; claim; string_of_int instances; string_of_bool verified ])
       rows)
