module Trace = Events.Trace

type algo_result = {
  algorithm : string;
  rmse : float;
  nrmse : float;
  time : float;
  repaired_trace : Trace.t;
  unrepaired : int;
}

let non_answer_count patterns trace =
  List.length (Cep.Query.non_answers patterns trace)

let run ~algorithms ~patterns ~truth ~observed =
  let net = Tcn.Encode.pattern_set patterns in
  let non_answers =
    Trace.fold
      (fun id tuple acc ->
        if Pattern.Matcher.matches_set tuple patterns then acc else (id, tuple) :: acc)
      observed []
  in
  List.map
    (fun algorithm ->
      let name = Harness.algorithm_name algorithm in
      let unrepaired = ref 0 in
      let elapsed = ref 0.0 in
      let repaired_trace = ref observed in
      let rmses = ref [] and nrmses = ref [] in
      List.iter
        (fun (id, tuple) ->
          let result, dt =
            Harness.time (fun () -> Harness.repair_tuple algorithm net patterns tuple)
          in
          elapsed := !elapsed +. dt;
          let repaired =
            match result with
            | Some r -> r
            | None ->
                incr unrepaired;
                tuple
          in
          repaired_trace := Trace.add id repaired !repaired_trace;
          match Trace.find_opt truth id with
          | None -> ()
          | Some truth_tuple ->
              rmses := Datagen.Metrics.rmse ~truth:truth_tuple ~repaired :: !rmses;
              nrmses := Datagen.Metrics.nrmse ~truth:truth_tuple ~repaired :: !nrmses)
        non_answers;
      {
        algorithm = name;
        rmse = Datagen.Metrics.mean !rmses;
        nrmse = Datagen.Metrics.mean !nrmses;
        time = !elapsed;
        repaired_trace = !repaired_trace;
        unrepaired = !unrepaired;
      })
    algorithms
