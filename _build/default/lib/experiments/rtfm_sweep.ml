type point = { rate : float; distance : int; tuples : int }

type row = {
  point : point;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result) list;
}

let default_algorithms = [ Harness.Pattern_full; Harness.Pattern_single; Harness.Greedy ]

let run_point ?(algorithms = default_algorithms) ~seed point =
  let prng = Numeric.Prng.create seed in
  let truth = Datagen.Rtfm.generate prng ~tuples:point.tuples in
  let observed =
    Datagen.Faults.trace prng ~rate:point.rate ~distance:point.distance truth
  in
  let patterns = Datagen.Rtfm.patterns in
  let non_answers = Repair_run.non_answer_count patterns observed in
  let results = Repair_run.run ~algorithms ~patterns ~truth ~observed in
  {
    point;
    non_answers;
    per_algorithm = List.map (fun r -> (r.Repair_run.algorithm, r)) results;
  }

let fig7 ?(tuples = 10_000) ?(seed = 3) ~rates () =
  List.map (fun rate -> run_point ~seed { rate; distance = 200; tuples }) rates

let fig8 ?(tuples = 10_000) ?(seed = 4) ~distances () =
  List.map (fun distance -> run_point ~seed { rate = 0.1; distance; tuples }) distances

let fig9 ?(seed = 5) ~tuple_counts () =
  List.map
    (fun tuples -> run_point ~seed { rate = 0.1; distance = 200; tuples })
    tuple_counts

let print ~title ~vary rows =
  let key_label, key_of =
    match vary with
    | `Rate -> ("fault rate", fun p -> Printf.sprintf "%.2f" p.rate)
    | `Distance -> ("fault distance", fun p -> string_of_int p.distance)
    | `Tuples -> ("tuples", fun p -> string_of_int p.tuples)
  in
  let labels = match rows with [] -> [] | r :: _ -> List.map fst r.per_algorithm in
  Harness.print_table ~title:(title ^ " — RMS error")
    ~header:([ key_label; "non-answers" ] @ labels)
    (List.map
       (fun { point; non_answers; per_algorithm } ->
         [ key_of point; string_of_int non_answers ]
         @ List.map (fun (_, r) -> Harness.f3 r.Repair_run.rmse) per_algorithm)
       rows);
  Harness.print_table ~title:(title ^ " — total repair time (ms)")
    ~header:([ key_label ] @ labels)
    (List.map
       (fun { point; per_algorithm; _ } ->
         [ key_of point ]
         @ List.map (fun (_, r) -> Harness.ms r.Repair_run.time) per_algorithm)
       rows)
