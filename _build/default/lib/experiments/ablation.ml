module Prng = Numeric.Prng

type solver_row = {
  n : int;
  lp_time : float;
  flow_time : float;
  costs_equal : bool;
  integral : bool;
}

let solver_ablation ?(tuples = 50) ?(seed = 10) ~ns () =
  List.map
    (fun n ->
      let prng = Prng.create (seed + n) in
      let pattern = Datagen.Workloads.fig10_pattern ~n in
      let patterns = [ pattern ] in
      let net = Tcn.Encode.pattern_set patterns in
      let lp_time = ref 0.0 and flow_time = ref 0.0 in
      let equal = ref true and integral = ref true in
      for _ = 1 to tuples do
        let t = Datagen.Workloads.random_matching_tuple ~horizon:5000 prng patterns in
        let t = Datagen.Faults.tuple prng ~rate:0.4 ~distance:500 t in
        let lp, dt_lp =
          Harness.time (fun () ->
              Explain.Modification.explain_network ~solver:Explain.Modification.Lp net t)
        in
        let flow, dt_flow =
          Harness.time (fun () ->
              Explain.Modification.explain_network ~solver:Explain.Modification.Flow net t)
        in
        lp_time := !lp_time +. dt_lp;
        flow_time := !flow_time +. dt_flow;
        (match (lp, flow) with
        | Some a, Some b ->
            if a.Explain.Modification.cost <> b.Explain.Modification.cost then
              equal := false
        | None, None -> ()
        | _ -> equal := false);
        (* Integrality of the relaxation, probed directly on the extended
           tuple with the single binding. *)
        let extended = Tcn.Encode.extend net t in
        let phi =
          Tcn.Bindings.single extended net.set_bindings @ net.set_intervals
        in
        match Explain.Lp_repair.repair extended phi with
        | Some r -> if not r.Explain.Lp_repair.integral_relaxation then integral := false
        | None -> ()
      done;
      { n; lp_time = !lp_time; flow_time = !flow_time; costs_equal = !equal;
        integral = !integral })
    ns

type engine_row = {
  engine_n : int;
  full_time : float;
  pruned_time : float;
  agree : bool;
}

let consistency_engine_ablation ~ns () =
  List.map
    (fun n ->
      let full_time = ref 0.0 and pruned_time = ref 0.0 and agree = ref true in
      List.iter
        (fun b ->
          let patterns = Datagen.Workloads.fig4_pattern_set ~n ~b in
          let full, dt_full =
            Harness.time (fun () ->
                Explain.Consistency.check ~strategy:Explain.Consistency.Full patterns)
          in
          let pruned, dt_pruned =
            Harness.time (fun () ->
                Explain.Consistency.check ~strategy:Explain.Consistency.Pruned patterns)
          in
          full_time := !full_time +. dt_full;
          pruned_time := !pruned_time +. dt_pruned;
          if full.Explain.Consistency.consistent <> pruned.Explain.Consistency.consistent
          then agree := false)
        [ 1; 2 ];
      { engine_n = n; full_time = !full_time; pruned_time = !pruned_time;
        agree = !agree })
    ns

let print_engines rows =
  Harness.print_table
    ~title:"Ablation: exact consistency — full enumeration vs pruned DFS (fig4, b=1+b=2)"
    ~header:[ "n"; "Full (ms)"; "Pruned (ms)"; "agree" ]
    (List.map
       (fun { engine_n; full_time; pruned_time; agree } ->
         [
           string_of_int engine_n;
           Harness.ms full_time;
           Harness.ms pruned_time;
           string_of_bool agree;
         ])
       rows)

type sampling_row = { samples : int; accuracy : float; mean_time : float }

let sampling_ablation ?(seed = 11) ?(repeats = 20) ~n ~sample_counts () =
  (* A consistent instance where consistent bindings are rare, so small s
     produces false negatives. The Figure 4 family with b = 2 works: only
     bindings placing the extreme SEQ endpoints at the AND boundary are
     consistent. *)
  let patterns = Datagen.Workloads.fig4_pattern_set ~n ~b:2 in
  List.map
    (fun samples ->
      let ok = ref 0 and elapsed = ref 0.0 in
      for r = 1 to repeats do
        let report, dt =
          Harness.time (fun () ->
              Explain.Consistency.check
                ~strategy:(Explain.Consistency.Sampled samples)
                ~seed:(seed + (100 * samples) + r)
                patterns)
        in
        elapsed := !elapsed +. dt;
        if report.Explain.Consistency.consistent then incr ok
      done;
      {
        samples;
        accuracy = float_of_int !ok /. float_of_int repeats;
        mean_time = !elapsed /. float_of_int repeats;
      })
    sample_counts

type pw_row = {
  pw_n : int;
  worlds : int;
  modification_rmse : float;
  modification_time : float;
  pw_rmse : float;
  pw_time : float;
  mean_modification_cost : float;
  mean_pw_distance : float;
}

let possible_worlds_ablation ?(tuples = 20) ?(seed = 12) ~ns () =
  let radius = 16 in
  (* Tuples matching AND(E1..En) ATLEAST 900 WITHIN 1000 with a nearly-full
     span, so a small shift of the latest event reliably breaks the window
     while staying inside the uncertainty radius. *)
  let breaking_pair prng n =
    let base = Prng.int_in prng 0 2000 in
    let span = Prng.int_in prng 996 1000 in
    let events = List.init n (fun i -> Printf.sprintf "E%d" (i + 1)) in
    let truth =
      List.fold_left
        (fun (acc, i) e ->
          let ts =
            if i = 0 then base
            else if i = n - 1 then base + span
            else base + Prng.int_in prng 0 span
          in
          (Events.Tuple.add e ts acc, i + 1))
        (Events.Tuple.empty, 0) events
      |> fst
    in
    let last = Printf.sprintf "E%d" n in
    let shift = Prng.int_in prng 8 12 in
    let observed =
      Events.Tuple.add last (Events.Tuple.find truth last + shift) truth
    in
    (truth, observed)
  in
  List.map
    (fun n ->
      let prng = Prng.create (seed + n) in
      let patterns = [ Datagen.Workloads.fig11_pattern ~n ] in
      let mod_rmse = ref [] and pw_rmse = ref [] in
      let mod_time = ref 0.0 and pw_time = ref 0.0 in
      let mod_costs = ref [] and pw_dists = ref [] in
      let worlds = ref 0 in
      for _ = 1 to tuples do
        let truth, observed = breaking_pair prng n in
        assert (Pattern.Matcher.matches_set truth patterns);
        if not (Pattern.Matcher.matches_set observed patterns) then begin
          let modification, dt_mod =
            Harness.time (fun () -> Explain.Modification.explain patterns observed)
          in
          mod_time := !mod_time +. dt_mod;
          let uncertain = Explain.Possible_worlds.of_tuple ~radius observed in
          worlds := Explain.Possible_worlds.world_count uncertain;
          let world, dt_pw =
            Harness.time (fun () ->
                Explain.Possible_worlds.most_likely_matching_world
                  ~limit:5_000_000 uncertain patterns)
          in
          pw_time := !pw_time +. dt_pw;
          (* Score only tuples where both routes produced a repair, so the
             means compare like with like. *)
          match (modification, world) with
          | Some { repaired = mod_rep; cost; _ }, Some (pw_rep, dist) ->
              mod_rmse := Datagen.Metrics.rmse ~truth ~repaired:mod_rep :: !mod_rmse;
              mod_costs := float_of_int cost :: !mod_costs;
              pw_rmse := Datagen.Metrics.rmse ~truth ~repaired:pw_rep :: !pw_rmse;
              pw_dists := float_of_int dist :: !pw_dists
          | _ -> ()
        end
      done;
      {
        pw_n = n;
        worlds = !worlds;
        modification_rmse = Datagen.Metrics.mean !mod_rmse;
        modification_time = !mod_time;
        pw_rmse = Datagen.Metrics.mean !pw_rmse;
        pw_time = !pw_time;
        mean_modification_cost = Datagen.Metrics.mean !mod_costs;
        mean_pw_distance = Datagen.Metrics.mean !pw_dists;
      })
    ns

let print_pw rows =
  Harness.print_table
    ~title:
      "Ablation: min-change explanation vs possible-worlds most-likely world \
       (Section 7.2)"
    ~header:
      [ "n"; "worlds/tuple"; "min-change cost"; "PW distance"; "min-change RMSE";
        "PW RMSE"; "min-change (ms)"; "PW (ms)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.pw_n;
           string_of_int r.worlds;
           Harness.f3 r.mean_modification_cost;
           Harness.f3 r.mean_pw_distance;
           Harness.f3 r.modification_rmse;
           Harness.f3 r.pw_rmse;
           Harness.ms r.modification_time;
           Harness.ms r.pw_time;
         ])
       rows)

let print_solver rows =
  Harness.print_table ~title:"Ablation: exact repair engine — simplex LP vs min-cost flow"
    ~header:[ "n"; "LP time (ms)"; "flow time (ms)"; "equal optima"; "LP integral" ]
    (List.map
       (fun { n; lp_time; flow_time; costs_equal; integral } ->
         [
           string_of_int n;
           Harness.ms lp_time;
           Harness.ms flow_time;
           string_of_bool costs_equal;
           string_of_bool integral;
         ])
       rows)

let print_sampling rows =
  Harness.print_table
    ~title:"Ablation: randomized s-binding consistency (consistent needle instance)"
    ~header:[ "samples"; "accuracy"; "mean time (ms)" ]
    (List.map
       (fun { samples; accuracy; mean_time } ->
         [ string_of_int samples; Harness.f3 accuracy; Harness.ms mean_time ])
       rows)
