(** Figure 12: how a human perceives the explanations — accuracy of query
    answers after repairing the data with each explanation method.

    The clean trace mixes true answers (cases matching the query) with true
    non-answers (cases violating it by far more than any plausible fault).
    Faults degrade all tuples; each method repairs the resulting
    non-answers, but a repair is only accepted when its cost stays within a
    budget (an explanation that must massively rewrite the tuple "does not
    apply"). The query then runs over the repaired trace and its answer set
    is scored against the clean answer set by f-measure. Pattern(Single) is
    compared against Greedy, as in the paper (Full's RMSE is close to
    Single's). *)

type config = {
  answers : int;  (** true answers in the clean trace *)
  non_answers : int;  (** true non-answers *)
  cost_budget_factor : int;
      (** accepted repair cost <= factor * fault distance *)
  seed : int;
}

val default : config
(** 300 answers, 100 non-answers, budget factor 3. *)

type row = {
  rate : float;
  distance : int;
  single : Cep.Query.accuracy;
  greedy : Cep.Query.accuracy;
}

val run_point : config -> rate:float -> distance:int -> row

val fig12a : ?config:config -> rates:float list -> unit -> row list
(** Fault distance fixed at 160 (paper's Figure 12(a)). *)

val fig12b : ?config:config -> distances:int list -> unit -> row list
(** Fault rate fixed at 0.1 (paper's Figure 12(b)). *)

val print : title:string -> vary:[ `Rate | `Distance ] -> row list -> unit
