type config = {
  ns : int list;
  tuples : int;
  rate : float;
  distance : int;
  seed : int;
}

let default_fig10 =
  { ns = [ 4; 6; 8; 10; 12 ]; tuples = 1000; rate = 0.4; distance = 500; seed = 6 }

let default_fig11 =
  { ns = [ 2; 3; 4; 5; 6; 8; 10 ]; tuples = 1000; rate = 0.4; distance = 500; seed = 7 }

type row = {
  n : int;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result) list;
}

let algorithms = [ Harness.Pattern_full; Harness.Pattern_single; Harness.Greedy ]

let run ~pattern_of config =
  List.map
    (fun n ->
      let prng = Numeric.Prng.create (config.seed + n) in
      let patterns = [ pattern_of ~n ] in
      let truth =
        Datagen.Workloads.matching_trace ~horizon:5000 prng patterns
          ~tuples:config.tuples
      in
      let observed =
        Datagen.Faults.trace prng ~rate:config.rate ~distance:config.distance truth
      in
      let non_answers = Repair_run.non_answer_count patterns observed in
      let results = Repair_run.run ~algorithms ~patterns ~truth ~observed in
      {
        n;
        non_answers;
        per_algorithm = List.map (fun r -> (r.Repair_run.algorithm, r)) results;
      })
    config.ns

let fig10 config = run ~pattern_of:(fun ~n -> Datagen.Workloads.fig10_pattern ~n) config
let fig11 config = run ~pattern_of:(fun ~n -> Datagen.Workloads.fig11_pattern ~n) config

let print ~title rows =
  let labels = match rows with [] -> [] | r :: _ -> List.map fst r.per_algorithm in
  Harness.print_table ~title:(title ^ " — RMS error")
    ~header:([ "n"; "non-answers" ] @ labels)
    (List.map
       (fun { n; non_answers; per_algorithm } ->
         [ string_of_int n; string_of_int non_answers ]
         @ List.map (fun (_, r) -> Harness.f3 r.Repair_run.rmse) per_algorithm)
       rows);
  Harness.print_table ~title:(title ^ " — total repair time (ms)")
    ~header:([ "n" ] @ labels)
    (List.map
       (fun { n; per_algorithm; _ } ->
         [ string_of_int n ]
         @ List.map (fun (_, r) -> Harness.ms r.Repair_run.time) per_algorithm)
       rows)
