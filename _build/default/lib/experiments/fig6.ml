type config = {
  event_counts : int list;
  days : int;
  brute_force_max_events : int;
  seed : int;
}

let default =
  { event_counts = [ 4; 6; 8; 10 ]; days = 30; brute_force_max_events = 5; seed = 2 }

type row = {
  events : int;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result option) list;
}

let algorithms ~events ~max_bf =
  [
    (Harness.Pattern_full, true);
    (Harness.Pattern_single, true);
    (Harness.Brute_force { grid = 10; radius = 130 }, events <= max_bf);
    (Harness.Greedy, true);
  ]

let run config =
  List.map
    (fun events ->
      let prng = Numeric.Prng.create (config.seed + events) in
      let { Datagen.Flight.pattern; truth; observed } =
        Datagen.Flight.generate prng ~num_events:events ~days:config.days
      in
      let patterns = [ pattern ] in
      let non_answers = Repair_run.non_answer_count patterns observed in
      let wanted = algorithms ~events ~max_bf:config.brute_force_max_events in
      let active = List.filter_map (fun (a, on) -> if on then Some a else None) wanted in
      let results = Repair_run.run ~algorithms:active ~patterns ~truth ~observed in
      let per_algorithm =
        List.map
          (fun (a, on) ->
            let name = Harness.algorithm_name a in
            if on then
              (name, List.find_opt (fun r -> r.Repair_run.algorithm = name) results)
            else (name, None))
          wanted
      in
      { events; non_answers; per_algorithm })
    config.event_counts

let print rows =
  let cell = function
    | None -> ("-", "-")
    | Some r -> (Harness.f3 r.Repair_run.nrmse, Harness.ms r.Repair_run.time)
  in
  let labels =
    match rows with [] -> [] | r :: _ -> List.map fst r.per_algorithm
  in
  Harness.print_table ~title:"Figure 6(a): NRMSE vs number of events (Flight)"
    ~header:([ "events"; "non-answers" ] @ labels)
    (List.map
       (fun { events; non_answers; per_algorithm } ->
         [ string_of_int events; string_of_int non_answers ]
         @ List.map (fun (_, r) -> fst (cell r)) per_algorithm)
       rows);
  Harness.print_table ~title:"Figure 6(b): total repair time (ms) vs number of events (Flight)"
    ~header:([ "events" ] @ labels)
    (List.map
       (fun { events; per_algorithm; _ } ->
         [ string_of_int events ] @ List.map (fun (_, r) -> snd (cell r)) per_algorithm)
       rows)
