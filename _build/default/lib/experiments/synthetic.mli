(** Figures 10 and 11: timestamp modification on synthetic patterns.

    Figure 10 is the general case — SEQ embedded in AND:
    [AND(SEQ(E1..E(n/2)), SEQ(E(n/2+1)..En)) ATLEAST 900 WITHIN 1000];
    the binding conditions mention a constant two events each, so
    Pattern(Full) explores only 4 bindings and costs about 4x
    Pattern(Single).

    Figure 11 has no SEQ inside AND — [AND(E1..En) ATLEAST 900 WITHIN 1000]
    — where the single binding provably returns the Full optimum
    (Proposition 8), while Full's binding space grows as n^2.

    Both run over randomly generated matching tuples degraded with fault
    rate 0.4 and fault distance 500, as in the paper. *)

type config = {
  ns : int list;
  tuples : int;
  rate : float;
  distance : int;
  seed : int;
}

val default_fig10 : config
val default_fig11 : config

type row = {
  n : int;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result) list;
}

val run : pattern_of:(n:int -> Pattern.Ast.t) -> config -> row list
val fig10 : config -> row list
val fig11 : config -> row list
val print : title:string -> row list -> unit
