(** Figure 5: pattern-consistency checking on the Figure 4 family.

    20 pattern sets ([n = 1..10] with [b = 1] inconsistent and [b = 2]
    consistent) are checked by Full binding and by randomized [s]-binding
    for several [s]. Reported per strategy: overall accuracy
    (TP+TN)/(TP+TN+FN) — the randomized algorithm never produces false
    positives — and time versus the number of events [4n]. *)

type config = {
  ns : int list;  (** the [n] values (4n events each) *)
  sample_counts : int list;  (** the randomized strategies, e.g. [1;2;4;10] *)
  repeats : int;  (** randomized repetitions per pattern set *)
  seed : int;
}

val default : config
(** [ns = 1..10], [sample_counts = \[1;2;4;10\]], [repeats = 5]. *)

type strategy_row = {
  strategy : string;
  accuracy : float;
  total_time : float;  (** seconds, all pattern sets and repeats *)
}

type row = {
  n : int;
  events : int;
  times : (string * float) list;  (** strategy -> mean seconds per check *)
}

type result = { rows : row list; strategies : strategy_row list }

val run : config -> result
val print : result -> unit
