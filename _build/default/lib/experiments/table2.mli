(** Table 2: the paper's major-results matrix, checked empirically.

    For each pattern class the table verifies the claims that are checkable
    by computation:
    - {b no AND} (simple temporal networks): consistency decided with a
      single binding (PTIME path); the one-LP repair is exact (matches a
      brute-force grid optimum on small instances);
    - {b no SEQ embedded in AND}: Algorithm 2 with single binding returns
      the full-binding optimum (Proposition 8), checked over random
      instances;
    - {b general}: the exact algorithms enumerate f^|Gamma| bindings; the
      single-binding result is an upper bound on quality but can differ,
      and Full equals a brute-force grid optimum on small instances. *)

type row = {
  pattern_class : string;
  claim : string;
  instances : int;
  verified : bool;
}

val run : ?instances:int -> ?seed:int -> unit -> row list
val print : row list -> unit
