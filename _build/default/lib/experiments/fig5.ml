type config = {
  ns : int list;
  sample_counts : int list;
  repeats : int;
  seed : int;
}

let default =
  { ns = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]; sample_counts = [ 1; 2; 4; 10 ]; repeats = 5;
    seed = 1 }

type strategy_row = { strategy : string; accuracy : float; total_time : float }
type row = { n : int; events : int; times : (string * float) list }
type result = { rows : row list; strategies : strategy_row list }

let strategy_label = function
  | None -> "Full"
  | Some s -> Printf.sprintf "%d-binding" s

let run config =
  let strategies = None :: List.map Option.some config.sample_counts in
  let correct = Hashtbl.create 8 and total = Hashtbl.create 8 in
  let times = Hashtbl.create 8 in
  let bump tbl key v =
    Hashtbl.replace tbl key (v +. (Option.value ~default:0.0 (Hashtbl.find_opt tbl key)))
  in
  let rows =
    List.map
      (fun n ->
        let per_strategy =
          List.map
            (fun strategy ->
              let label = strategy_label strategy in
              let runs = ref 0 and elapsed = ref 0.0 in
              List.iter
                (fun b ->
                  let truth_consistent = b >= 2 in
                  let patterns = Datagen.Workloads.fig4_pattern_set ~n ~b in
                  let repeats =
                    match strategy with None -> 1 | Some _ -> config.repeats
                  in
                  for r = 1 to repeats do
                    let check () =
                      match strategy with
                      | None -> Explain.Consistency.check patterns
                      | Some s ->
                          Explain.Consistency.check
                            ~strategy:(Explain.Consistency.Sampled s)
                            ~seed:(config.seed + (1000 * n) + (10 * b) + r)
                            patterns
                    in
                    let report, dt = Harness.time check in
                    incr runs;
                    elapsed := !elapsed +. dt;
                    bump times (label, n) dt;
                    bump total label 1.0;
                    if report.Explain.Consistency.consistent = truth_consistent then
                      bump correct label 1.0
                  done)
                [ 1; 2 ];
              (label, !elapsed /. float_of_int (max 1 !runs)))
            strategies
        in
        { n; events = 4 * n; times = per_strategy })
      config.ns
  in
  let strategies =
    List.map
      (fun strategy ->
        let label = strategy_label strategy in
        let total_runs = Option.value ~default:1.0 (Hashtbl.find_opt total label) in
        let ok = Option.value ~default:0.0 (Hashtbl.find_opt correct label) in
        let total_time =
          List.fold_left
            (fun acc n ->
              acc +. Option.value ~default:0.0 (Hashtbl.find_opt times (label, n)))
            0.0 config.ns
        in
        { strategy = label; accuracy = ok /. total_runs; total_time })
      strategies
  in
  { rows; strategies }

let print { rows; strategies } =
  Harness.print_table ~title:"Figure 5(a): consistency-checking accuracy by strategy"
    ~header:[ "strategy"; "accuracy"; "total time (ms)" ]
    (List.map
       (fun { strategy; accuracy; total_time } ->
         [ strategy; Harness.f3 accuracy; Harness.ms total_time ])
       strategies);
  match rows with
  | [] -> ()
  | first :: _ ->
      let labels = List.map fst first.times in
      Harness.print_table
        ~title:"Figure 5(b): time per consistency check (ms) vs number of events"
        ~header:([ "n"; "events" ] @ labels)
        (List.map
           (fun { n; events; times } ->
             [ string_of_int n; string_of_int events ]
             @ List.map (fun (_, t) -> Harness.ms t) times)
           rows)
