(** Shared plumbing for the experiment harnesses: wall-clock timing,
    plain-text table rendering (one table per paper figure), and the roster
    of repair algorithms compared in Section 6.3. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Render an aligned table to stdout; when a CSV sink is set
    (see {!set_csv_dir}), also write the table as
    [<dir>/<slug-of-title>.csv]. *)

val set_csv_dir : string option -> unit
(** Direct every subsequently printed table to CSV files in this directory
    (created if missing); [None] turns the sink off. Used by
    [bench/main.exe --csv DIR] so each figure's series lands in a file a
    plotting notebook can read. *)

val csv_of_table : header:string list -> string list list -> string
(** The CSV rendering (quoted only where needed). *)

val format_table : title:string -> header:string list -> string list list -> string

val f3 : float -> string
(** Three decimals. *)

val ms : float -> string
(** Seconds rendered as milliseconds with three decimals. *)

(** The algorithms of the evaluation. [Brute_force] carries its grid and
    radius; it is only run when the pattern has few events. *)
type algorithm =
  | Pattern_full
  | Pattern_single
  | Brute_force of { grid : int; radius : int }
  | Greedy

val algorithm_name : algorithm -> string

val repair_tuple :
  algorithm ->
  Tcn.Encode.set ->
  Pattern.Ast.t list ->
  Events.Tuple.t ->
  Events.Tuple.t option
(** Run one algorithm on one tuple; [None] when it finds no matching repair
    (brute force out of range, greedy stuck, inconsistent pattern). *)
