(** Design-choice ablations beyond the paper's figures (see DESIGN.md).

    - {b LP vs min-cost flow}: both repair engines are exact; the flow dual
      avoids the rational tableau. The ablation confirms equal optima and
      quantifies the speed difference.
    - {b ILP vs LP relaxation}: the repair LP's optimum is integral on every
      generated instance (difference constraints are totally unimodular),
      which is why Algorithm 2 can use the relaxation.
    - {b binding sampling}: accuracy/time of s-binding consistency checking
      as s grows, on a consistent-but-needle-like instance (only few of the
      many bindings are consistent). *)

type solver_row = {
  n : int;
  lp_time : float;
  flow_time : float;
  costs_equal : bool;
  integral : bool;
}

val solver_ablation : ?tuples:int -> ?seed:int -> ns:int list -> unit -> solver_row list

type sampling_row = {
  samples : int;
  accuracy : float;
  mean_time : float;
}

type engine_row = {
  engine_n : int;
  full_time : float;  (** Algorithm 1, full enumeration *)
  pruned_time : float;  (** DFS refinement on the incremental STN *)
  agree : bool;  (** both returned the same verdicts *)
}

val consistency_engine_ablation : ns:int list -> unit -> engine_row list
(** Full vs Pruned exact consistency on the Figure 4 family (both b=1 and
    b=2). Pruned must agree with Full everywhere; the win is largest on
    inconsistent instances, where Full has to exhaust the binding space. *)

val print_engines : engine_row list -> unit

val sampling_ablation :
  ?seed:int -> ?repeats:int -> n:int -> sample_counts:int list -> unit -> sampling_row list

type pw_row = {
  pw_n : int;
  worlds : int;  (** possible worlds enumerated per tuple *)
  modification_rmse : float;
  modification_time : float;
  pw_rmse : float;
  pw_time : float;
  mean_modification_cost : float;  (** mean repair cost (unrestricted) *)
  mean_pw_distance : float;  (** mean best-world L1 distance (box-restricted) *)
}

val possible_worlds_ablation :
  ?tuples:int -> ?seed:int -> ns:int list -> unit -> pw_row list
(** Section 7.2 executable: minimum-change explanation (no interval
    knowledge) versus the possible-worlds most-likely matching world (which
    must be given the uncertainty radius). Comparable repair quality, with
    the possible-worlds route exponentially slower as events grow. Small
    faults/radii keep the enumeration finite. *)

val print_pw : pw_row list -> unit

val print_solver : solver_row list -> unit
val print_sampling : sampling_row list -> unit
