(** Shared runner for the timestamp-modification experiments (Figs 6–11).

    Given a query, a labeled-truth trace and an observed (imprecise) trace,
    run each algorithm over every non-answer of the observed trace and
    score the produced explanations against the truth. *)

type algo_result = {
  algorithm : string;
  rmse : float;  (** mean per-tuple RMSE of repaired non-answers vs truth *)
  nrmse : float;  (** same, normalised (the paper's Figure 6 metric) *)
  time : float;  (** total repair seconds across non-answers *)
  repaired_trace : Events.Trace.t;
      (** observed trace with every non-answer replaced by its repair *)
  unrepaired : int;  (** non-answers the algorithm could not repair *)
}

val run :
  algorithms:Harness.algorithm list ->
  patterns:Pattern.Ast.t list ->
  truth:Events.Trace.t ->
  observed:Events.Trace.t ->
  algo_result list

val non_answer_count : Pattern.Ast.t list -> Events.Trace.t -> int
