(** Figure 6: timestamp modification on Flight data with real-world-shaped
    imprecision and labeled truth — NRMSE and time versus the number of
    events in the query. Brute force (10-minute grid) only runs up to
    [brute_force_max_events] events; beyond that it is reported as "-"
    (the paper: "time costs are too high with more than 5 events"). *)

type config = {
  event_counts : int list;  (** even values >= 4 *)
  days : int;
  brute_force_max_events : int;
  seed : int;
}

val default : config
(** events 4..10, 30 days, brute force up to 5 events (grid 10). *)

type row = {
  events : int;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result option) list;
      (** [None] when the algorithm was skipped at this size *)
}

val run : config -> row list
val print : row list -> unit
