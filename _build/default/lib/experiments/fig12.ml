module Trace = Events.Trace
module Tuple = Events.Tuple

type config = {
  answers : int;
  non_answers : int;
  cost_budget_factor : int;
  seed : int;
}

let default = { answers = 300; non_answers = 100; cost_budget_factor = 1; seed = 8 }

type row = {
  rate : float;
  distance : int;
  single : Cep.Query.accuracy;
  greedy : Cep.Query.accuracy;
}

(* A true non-answer: the payment lands 5 to 20 hours outside the
   480-minute penalty window — clearly beyond any plausible fault at the
   swept distances, but within reach of a too-generous repair budget. The
   f-measure then degrades exactly along the paper's two axes: recall
   falls as faults push true answers' repairs over budget, and precision
   falls once the budget grows past the non-answers' excess. *)
let true_non_answer prng =
  let t = Datagen.Workloads.random_matching_tuple ~horizon:(90 * 1440) prng
            Datagen.Rtfm.patterns in
  let excess = 60 * Numeric.Prng.int_in prng 5 20 in
  let t = Tuple.add "Payment" (Tuple.find t "Add_penalty" + 480 + excess) t in
  assert (not (Pattern.Matcher.matches_set t Datagen.Rtfm.patterns));
  t

let build_clean config prng =
  let answers = Datagen.Rtfm.generate prng ~tuples:config.answers in
  let rec add_non_answers i trace =
    if i = config.non_answers then trace
    else
      add_non_answers (i + 1)
        (Trace.add (Printf.sprintf "n%06d" i) (true_non_answer prng) trace)
  in
  add_non_answers 0 answers

let greedy_trace ~budget patterns trace =
  Trace.map
    (fun _id tuple ->
      if Pattern.Matcher.matches_set tuple patterns then tuple
      else
        let r = Explain.Baselines.greedy patterns tuple in
        if r.Explain.Baselines.matched && r.Explain.Baselines.cost <= budget then
          r.Explain.Baselines.repaired
        else tuple)
    trace

let run_point config ~rate ~distance =
  let prng = Numeric.Prng.create config.seed in
  let clean = build_clean config prng in
  let patterns = Datagen.Rtfm.patterns in
  let truth = Cep.Query.answers patterns clean in
  let observed = Datagen.Faults.trace prng ~rate ~distance clean in
  let budget = config.cost_budget_factor * distance in
  let single_trace =
    Cep.Query.explain_trace ~strategy:Explain.Modification.Single ~max_cost:budget
      patterns observed
  in
  let single =
    Cep.Query.accuracy ~truth ~found:(Cep.Query.answers patterns single_trace)
  in
  let greedy_repaired = greedy_trace ~budget patterns observed in
  let greedy =
    Cep.Query.accuracy ~truth ~found:(Cep.Query.answers patterns greedy_repaired)
  in
  { rate; distance; single; greedy }

let fig12a ?(config = default) ~rates () =
  List.map (fun rate -> run_point config ~rate ~distance:160) rates

let fig12b ?(config = default) ~distances () =
  List.map (fun distance -> run_point config ~rate:0.1 ~distance) distances

let print ~title ~vary rows =
  let key_label, key_of =
    match vary with
    | `Rate -> ("fault rate", fun r -> Printf.sprintf "%.2f" r.rate)
    | `Distance -> ("fault distance", fun r -> string_of_int r.distance)
  in
  Harness.print_table ~title
    ~header:[ key_label; "Pattern(Single) f"; "Greedy f"; "Single p/r"; "Greedy p/r" ]
    (List.map
       (fun row ->
         [
           key_of row;
           Harness.f3 row.single.Cep.Query.f_measure;
           Harness.f3 row.greedy.Cep.Query.f_measure;
           Printf.sprintf "%.3f/%.3f" row.single.precision row.single.recall;
           Printf.sprintf "%.3f/%.3f" row.greedy.precision row.greedy.recall;
         ])
       rows)
