module Tuple = Events.Tuple

type result = {
  t1_matches : bool;
  t2_matches : bool;
  inconsistent_variant_rejected : bool;
  full_cost : int;
  full_bindings : int;
  single_cost : int;
  example3_cost : int;
  example3_e4 : string;
}

let p0 =
  Pattern.Parse.pattern_exn
    "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"

let inconsistent_variant =
  Pattern.Parse.pattern_exn
    "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45"

(* Example 3: both traced events later than the reported passenger's. *)
let example3 =
  Pattern.Parse.pattern_exn
    "SEQ(SEQ(E1, E3) WITHIN 30, SEQ(E2, E4) WITHIN 30) ATLEAST 2 hours"

let hm = Events.Time.of_hm

let t1 =
  Tuple.of_list
    [ ("E1", hm "17:08"); ("E2", hm "18:58"); ("E3", hm "17:25"); ("E4", hm "19:13") ]

let t2 =
  Tuple.of_list
    [ ("E1", hm "17:06"); ("E2", hm "18:54"); ("E3", hm "17:24"); ("E4", hm "20:08") ]

let run () =
  let full =
    Option.get (Explain.Modification.explain ~strategy:Explain.Modification.Full [ p0 ] t2)
  in
  let single =
    Option.get
      (Explain.Modification.explain ~strategy:Explain.Modification.Single [ p0 ] t2)
  in
  let ex3 =
    Option.get
      (Explain.Modification.explain ~strategy:Explain.Modification.Full [ example3 ] t2)
  in
  {
    t1_matches = Pattern.Matcher.matches t1 p0;
    t2_matches = Pattern.Matcher.matches t2 p0;
    inconsistent_variant_rejected =
      not (Explain.Consistency.check [ inconsistent_variant ]).consistent;
    full_cost = full.cost;
    full_bindings = full.bindings_tried;
    single_cost = single.cost;
    example3_cost = ex3.cost;
    example3_e4 = Events.Time.to_hm (Tuple.find ex3.repaired "E4");
  }

let print r =
  Harness.print_table ~title:"Table 1 / Examples 1-6: worked flight scenario"
    ~header:[ "check"; "measured"; "paper" ]
    [
      [ "t1 |= p0"; string_of_bool r.t1_matches; "true" ];
      [ "t2 |= p0"; string_of_bool r.t2_matches; "false" ];
      [
        "inconsistent variant rejected";
        string_of_bool r.inconsistent_variant_rejected;
        "true";
      ];
      [ "Pattern(Full) cost on t2 (min)"; string_of_int r.full_cost; "44" ];
      [ "bindings enumerated"; string_of_int r.full_bindings; "16" ];
      [ "Pattern(Single) cost on t2"; string_of_int r.single_cost; "44" ];
      [ "Example 3 (simple STN) cost"; string_of_int r.example3_cost; "44" ];
      [ "Example 5 repaired E4"; r.example3_e4; "19:24" ];
    ]
