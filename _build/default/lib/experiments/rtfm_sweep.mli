(** Figures 7, 8, 9: timestamp modification over the RTFM-style log.

    Clean cases are generated, degraded with BART-style faults, and every
    resulting non-answer is explained; RMS error against the clean truth
    and total repair time are reported. The three figures are the same
    experiment sweeping fault rate (Fig. 7), fault distance (Fig. 8) and
    tuple count (Fig. 9). *)

type point = { rate : float; distance : int; tuples : int }

type row = {
  point : point;
  non_answers : int;
  per_algorithm : (string * Repair_run.algo_result) list;
}

val run_point :
  ?algorithms:Harness.algorithm list -> seed:int -> point -> row
(** Default algorithms: Pattern(Full), Pattern(Single), Greedy (the paper
    omits brute force on RTFM: "takes too long"). *)

val fig7 : ?tuples:int -> ?seed:int -> rates:float list -> unit -> row list
(** Fault distance fixed at 200 (paper: rate 0.02..0.2, 10k tuples). *)

val fig8 : ?tuples:int -> ?seed:int -> distances:int list -> unit -> row list
(** Fault rate fixed at 0.1 (paper: distance sweep, 10k tuples). *)

val fig9 : ?seed:int -> tuple_counts:int list -> unit -> row list
(** Fault rate 0.1, distance 200 (paper: 2k..10k tuples). *)

val print : title:string -> vary:[ `Rate | `Distance | `Tuples ] -> row list -> unit
