(** Table 1 / Examples 1–6: the paper's worked flight scenario, end to end.

    Verifies and prints: tuple t1 matches the query p0; t2 does not; the
    inconsistent variant of the query is rejected by the consistency
    explanation; the full-binding modification of t2 costs 44 minutes (the
    paper's optimum — Example 6); the special-case simple-network query of
    Example 3 repairs t2 at the same cost with t2'(E4) = 19:24
    (Example 5). *)

type result = {
  t1_matches : bool;
  t2_matches : bool;
  inconsistent_variant_rejected : bool;
  full_cost : int;  (** expected 44 *)
  full_bindings : int;  (** expected 16 *)
  single_cost : int;
  example3_cost : int;  (** expected 44 *)
  example3_e4 : string;  (** expected "19:24" *)
}

val run : unit -> result
val print : result -> unit
