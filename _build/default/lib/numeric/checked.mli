(** Overflow-checked arithmetic on native [int].

    The explanation engine works on integer timestamps and an exact-rational
    simplex tableau. Native 63-bit ints are plenty for the magnitudes involved
    (timestamps in minutes, small pattern sizes), but a silent wrap-around in
    the middle of a pivot would corrupt an optimum invisibly, so every
    arithmetic step that could overflow goes through this module and raises
    instead of wrapping. *)

exception Overflow

val add : int -> int -> int
(** [add a b] is [a + b]; raises {!Overflow} on wrap-around. *)

val sub : int -> int -> int
(** [sub a b] is [a - b]; raises {!Overflow} on wrap-around. *)

val mul : int -> int -> int
(** [mul a b] is [a * b]; raises {!Overflow} on wrap-around. *)

val neg : int -> int
(** [neg a] is [-a]; raises {!Overflow} on [min_int]. *)

val abs : int -> int
(** [abs a] is the absolute value; raises {!Overflow} on [min_int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
