(** Exact rational arithmetic over native ints.

    Values are kept normalized: positive denominator, numerator and
    denominator coprime. Operations raise {!Checked.Overflow} rather than
    silently wrapping. Used as the number type of the simplex LP solver,
    where exactness matters: the LP relaxation of the timestamp-modification
    ILP has a totally unimodular constraint matrix, so exact arithmetic lets
    us observe (and test) that optima are integral. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val floor : t -> int
val ceil : t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
