exception Overflow

let add a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow else r

let sub a b =
  let r = a - b in
  if (a >= 0) <> (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow else r

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / a <> b || (a = -1 && b = min_int) || (b = -1 && a = min_int) then
      raise Overflow
    else r

let neg a = if a = min_int then raise Overflow else -a
let abs a = if a = min_int then raise Overflow else Stdlib.abs a

let rec gcd a b = if b = 0 then Stdlib.abs a else gcd b (a mod b)
