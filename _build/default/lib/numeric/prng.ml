type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value survives the 63-bit native int; modulo bias
     is negligible at this width. *)
  let r = Int64.to_int (Int64.shift_right_logical (next64 g) 2) in
  r mod bound

let int_in g lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  bound *. r /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next64 g) 1L = 1L
let coin g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let split g = { state = next64 g }
