(** Deterministic pseudo-random number generator (splitmix64).

    Every experiment in the repository must be reproducible run-to-run, so
    nothing uses the global [Random] state; each workload owns a [Prng.t]
    seeded explicitly. Splitmix64 is small, fast, and passes BigCrush-level
    statistical tests for this use (workload synthesis, fault injection,
    binding sampling). *)

type t

val create : int -> t
(** [create seed] is a fresh generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val coin : t -> float -> bool
(** [coin g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on empty. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)
