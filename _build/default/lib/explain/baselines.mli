(** Baseline repair algorithms from the paper's evaluation (Section 6.3).

    - {b Brute force} adapts Zhang et al.'s possible-worlds evaluation: each
      event's timestamp ranges over a grid around its observed value; the
      cheapest combination matching the query is the explanation. Exponential
      in the number of events and blind between grid points.
    - {b Greedy} repeatedly picks a violated interval condition (on the
      single-binding network) and moves one of its two endpoints just enough
      to satisfy it, choosing the cheaper move. Fast, but it can cycle or
      stop without satisfying the query — the paper notes it "cannot
      guarantee to find a modification explanation". *)

type result = {
  repaired : Events.Tuple.t;
  cost : int;
  matched : bool;  (** whether the result actually matches the query *)
}

val brute_force :
  ?grid:int ->
  ?radius:int ->
  Pattern.Ast.t list ->
  Events.Tuple.t ->
  result option
(** Enumerate timestamps on a [grid]-spaced lattice within [radius] of each
    observed value (defaults: grid 10, radius 500 — the paper enumerates in
    units of 10 minutes). [None] if no lattice point matches. The result
    always has [matched = true]. Cost is exponential:
    O((2*radius/grid + 1)^n) match checks. *)

val greedy :
  ?max_rounds:int -> Pattern.Ast.t list -> Events.Tuple.t -> result
(** Local repair (default 100 rounds over all conditions). Always returns
    its final tuple; check [matched]. *)
