(** Pattern consistency explanation (Problem 1, Algorithm 1).

    A pattern set is consistent iff some assignment of timestamps satisfies
    it. Encoded as a complex temporal network (Phi, Gamma), this holds iff
    at least one full binding [Phi_k] of [Aleph_Gamma] makes the simple
    temporal network [Phi ∪ Phi_k] consistent (Proposition 7). The exact
    algorithm enumerates [Aleph_Gamma]; the randomized variant samples [s]
    bindings and reports inconsistent when all fail — it can return false
    negatives but never false positives. *)

type strategy =
  | Full  (** enumerate all of [Aleph_Gamma] (exact, O(f^{|Gamma|} n^3)) —
              the paper's Algorithm 1 verbatim *)
  | Pruned
      (** exact depth-first refinement: ground the binding conditions one at
          a time, checking the partial network at every step and cutting off
          inconsistent prefixes. Same answers as [Full], usually far faster
          on inconsistent inputs (ablation in bench). *)
  | Sampled of int  (** check this many uniform random bindings *)

type report = {
  consistent : bool;
  witness : Events.Tuple.t option;
      (** a tuple over the real events matching the whole set, when
          consistent (a satisfying assignment read off the first consistent
          binding) *)
  bindings_checked : int;
  exact : bool;  (** false when a [Sampled] run reported inconsistent *)
}

val check_network :
  ?strategy:strategy ->
  ?seed:int ->
  ?events:Events.Event.Set.t ->
  ?pinned:Events.Tuple.t ->
  Tcn.Encode.set ->
  report
(** Algorithm 1 on an encoded network. [events] adds events the witness must
    bind even if no condition mentions them (e.g. a bare single-event
    pattern contributes no condition at all). [pinned] constrains the
    network with already-observed timestamps (their pairwise distances are
    enforced exactly): the report then says whether the observations can be
    completed into a match — the feasibility test of the streaming
    detector's partial matches. *)

val check : ?strategy:strategy -> ?seed:int -> Pattern.Ast.t list -> report
(** Encode a pattern set and run {!check_network}. The witness is verified
    against {!Pattern.Matcher.matches_set} (Proposition 5 end to end).
    @raise Invalid_argument on invalid patterns. *)
