(** Trace-level why-not diagnostics.

    Before explaining non-answers one by one, a developer usually wants the
    aggregate picture: how many tuples fail, on which sub-pattern, and in
    which way (missing events, violated SEQ order, violated window). This
    module folds {!Pattern.Matcher} failures and per-tuple repair costs
    over a trace into a report — the "dashboard" in front of the paper's
    per-tuple explanations (Figure 3 starts after the user has picked one
    tuple; this is how they pick). *)

type failure_class = {
  description : string;  (** rendered failure site, e.g. the violated node *)
  tuples : string list;  (** ids failing this way, in id order *)
}

type t = {
  total : int;
  answers : int;
  missing_events : failure_class list;
  order_violations : failure_class list;
  window_violations : failure_class list;
  repair_costs : (string * int) list;
      (** per non-answer minimal repair cost (single binding), id order;
          tuples the single binding cannot repair are absent *)
  median_repair_cost : int option;
}

val run : ?with_costs:bool -> Pattern.Ast.t list -> Events.Trace.t -> t
(** Aggregate over the trace; [with_costs] (default true) additionally
    computes the Pattern(Single) repair cost of every non-answer.
    @raise Invalid_argument on an invalid pattern set. *)

val pp : Format.formatter -> t -> unit
