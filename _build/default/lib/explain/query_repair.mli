(** Query modification explanation — the paper's declared future work
    (Section 2.2: "we leave the challenging problem of event pattern query
    modification explanation as the future study").

    Dual to {!Modification}: instead of repairing the data, repair the
    query. Given a pattern set and tuples the user expected to match,
    minimally adjust the ATLEAST/WITHIN window bounds so that every
    expected tuple becomes an answer; the changed windows explain why the
    tuples were not returned ("your WITHIN 45 should have been WITHIN 75").

    Key structural fact making this tractable: a sub-pattern's occurrence
    period ([t(p^s)], [t(p^e)], Definition 2) depends only on the tuple's
    timestamps, never on the windows. So with the tuples fixed, each
    window's minimal change is independent and closed-form:
    [a' = min(a, min_t len_t)], [b' = max(b, max_t len_t)], with cost
    [|a - a'| + |b - b'|]; and a SEQ order violation can never be fixed by
    window changes alone, which the explainer reports as such. *)

type window_change = {
  path : int list;
      (** pattern index in the set, then child indices to the node *)
  node : Pattern.Ast.t;  (** the sub-pattern whose window is adjusted *)
  old_window : Pattern.Ast.window;
  new_window : Pattern.Ast.window;
  change_cost : int;
}

val pp_window_change : Format.formatter -> window_change -> unit

type t = {
  patterns : Pattern.Ast.t list;  (** the repaired query *)
  changes : window_change list;  (** most expensive (most suspicious) first *)
  cost : int;  (** total bound adjustment (time units) *)
}

type failure =
  | Unbound_event of Events.Event.t
      (** an expected tuple does not bind a pattern event *)
  | Order_violation of Pattern.Ast.t * Pattern.Ast.t
      (** a SEQ is out of order in some expected tuple: no window
          modification can help (the events themselves are mis-ordered,
          see {!Modification}) *)

val pp_failure : Format.formatter -> failure -> unit

val explain :
  Pattern.Ast.t list -> Events.Tuple.t list -> (t, failure) result
(** [explain patterns expected] minimally relaxes the windows so every
    tuple of [expected] matches every pattern. [cost = 0] (no changes) iff
    they already all match. The repaired query is guaranteed to accept all
    expected tuples (checked against {!Pattern.Matcher}).
    @raise Invalid_argument on an invalid pattern set or empty [expected]. *)
