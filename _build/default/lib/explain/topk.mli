(** Top-k timestamp modification explanations and blame summaries.

    The paper returns the single minimum-change explanation and notes
    (citing provenance-summary work) that candidate explanations should be
    ranked. This module materialises that ranking: the k cheapest
    {e distinct} repairs across the binding space — useful when several
    near-minimal explanations exist and a human picks the plausible one —
    and a per-event blame summary saying how often each event is modified
    across candidate explanations (events blamed in every candidate are
    almost certainly the imprecise ones). *)

type candidate = {
  repaired : Events.Tuple.t;
  cost : int;
  binding : Tcn.Condition.interval list;
      (** the grounded binding this repair came from *)
}

type blame = {
  event : Events.Event.t;
  frequency : float;  (** fraction of candidates modifying this event *)
  mean_shift : float;  (** average |modification| over those candidates *)
}

type t = {
  candidates : candidate list;  (** cheapest first, pairwise distinct repairs *)
  blames : blame list;  (** most frequently blamed first *)
  bindings_tried : int;
      (** consistent full bindings actually solved; inconsistent subtrees
          are pruned by the incremental closure without enumeration *)
}

val explain :
  ?k:int -> Pattern.Ast.t list -> Events.Tuple.t -> t option
(** [explain ~k patterns tuple] ranks up to [k] (default 3) distinct
    repairs over all bindings. [None] iff no binding is feasible
    (inconsistent query). The head candidate equals Algorithm 2's Full
    optimum. @raise Invalid_argument like {!Modification.explain}. *)
