module Event = Events.Event
module Tuple = Events.Tuple
module Mcf = Lp.Mcf

let src = Logs.Src.create "whynot.flow_repair" ~doc:"min-cost-flow timestamp repair"

module Log = (val Logs.src_log src : Logs.LOG)

exception Inconsistent_potentials

(* Every difference constraint x_j - x_i <= u becomes an arc i->j with cost
   u - c_j + c_i (its slack at the input tuple c); node i may absorb dual
   imbalance up to its L1 weight via a super node s. The optimal circulation
   cost is the negated repair cost, and the optimal primal is c + potential,
   with potentials the shortest distances over the optimal residual graph. *)
let repair_exn ?weights ?(bounds = fun _ -> None) tuple intervals =
  let events = Event.Set.elements (Tcn.Condition.interval_events intervals) in
  let n = List.length events in
  let index =
    List.to_seq events
    |> Seq.mapi (fun i e -> (e, i))
    |> Seq.fold_left (fun acc (e, i) -> Event.Map.add e i acc) Event.Map.empty
  in
  let ts = Array.of_list (List.map (Tuple.find tuple) events) in
  let weight_of =
    match weights with
    | Some f -> fun e -> if Event.is_artificial e then 0 else f e
    | None -> fun e -> if Event.is_artificial e then 0 else 1
  in
  let weight =
    Array.of_list
      (List.map
         (fun e ->
           let w = weight_of e in
           if w < 0 then invalid_arg "Flow_repair: negative weight";
           w)
         events)
  in
  let origin = n and super = n + 1 in
  let total_weight = Array.fold_left ( + ) 0 weight in
  let origin_weight = total_weight + 1 in
  let arc_cap = (2 * (total_weight + origin_weight)) + 4 in
  let g = Mcf.create (n + 2) in
  let time_of node = if node = origin then 0 else ts.(node) in
  (* x_dst - x_src <= bound *)
  let add_difference ~src:i ~dst:j bound =
    ignore
      (Mcf.add_edge g ~src:i ~dst:j ~cap:arc_cap
         ~cost:(bound - time_of j + time_of i))
  in
  List.iter
    (fun { Tcn.Condition.src = s; dst = d; lo; hi } ->
      let i = Event.Map.find s index and j = Event.Map.find d index in
      (match hi with Some hi -> add_difference ~src:i ~dst:j hi | None -> ());
      add_difference ~src:j ~dst:i (-lo))
    intervals;
  (* Non-negativity: x_origin - x_i <= 0 with x_origin pinned to 0 by a
     dominating weight (deviating the origin always costs more than it can
     save elsewhere). Plausibility bounds are two more origin-anchored
     difference constraints: |x_i - c_i| <= r. *)
  for i = 0 to n - 1 do
    add_difference ~src:i ~dst:origin 0
  done;
  List.iteri
    (fun i e ->
      if not (Event.is_artificial e) then
        match bounds e with
        | Some r ->
            if r < 0 then invalid_arg "Flow_repair: negative bound";
            (* x_i - x_o <= c_i + r  and  x_o - x_i <= r - c_i *)
            add_difference ~src:origin ~dst:i (ts.(i) + r);
            add_difference ~src:i ~dst:origin (r - ts.(i))
        | None -> ())
    events;
  let add_super i w =
    if w > 0 then begin
      ignore (Mcf.add_edge g ~src:i ~dst:super ~cap:w ~cost:0);
      ignore (Mcf.add_edge g ~src:super ~dst:i ~cap:w ~cost:0)
    end
  in
  Array.iteri (fun i w -> add_super i w) weight;
  add_super origin origin_weight;
  let neg_cost = Mcf.min_cost_circulation g in
  (* Potentials: shortest residual distances from the super node, completed
     on unreachable nodes by lower-bound (longest-path) propagation. *)
  let dist = Mcf.residual_distances g ~source:super in
  let pi = Array.make (n + 2) None in
  Array.iteri (fun i d -> pi.(i) <- d) dist;
  let relax_pass () =
    let changed = ref false in
    Mcf.iter_residual g (fun ~src:u ~dst:v ~cost ->
        (* constraint: pi(v) <= pi(u) + cost, i.e. pi(u) >= pi(v) - cost *)
        match pi.(v) with
        | None -> ()
        | Some pv ->
            let lb = pv - cost in
            let raise_needed =
              match pi.(u) with None -> true | Some pu -> pu < lb
            in
            if raise_needed then begin
              (match pi.(u) with
              | Some _ when dist.(u) <> None ->
                  (* a settled shortest distance can never need raising *)
                  raise Inconsistent_potentials
              | _ -> ());
              pi.(u) <- Some lb;
              changed := true
            end);
    !changed
  in
  let passes = ref 0 in
  while relax_pass () do
    incr passes;
    if !passes > n + 3 then raise Inconsistent_potentials
  done;
  let pi = Array.map (Option.value ~default:0) pi in
  (* Verify every residual inequality (complementary slackness in full). *)
  Mcf.iter_residual g (fun ~src:u ~dst:v ~cost ->
      if pi.(v) > pi.(u) + cost then raise Inconsistent_potentials);
  if pi.(origin) <> pi.(super) then raise Inconsistent_potentials;
  let shift = pi.(super) in
  let repaired =
    List.fold_left
      (fun acc e ->
        let i = Event.Map.find e index in
        Tuple.add e (ts.(i) + pi.(i) - shift) acc)
      Tuple.empty events
  in
  let cost =
    List.fold_left
      (fun acc e ->
        acc + (weight_of e * abs (Tuple.find repaired e - Tuple.find tuple e)))
      0 events
  in
  if cost <> -neg_cost then raise Inconsistent_potentials;
  { Lp_repair.repaired; cost; integral_relaxation = true }

let repair ?weights ?bounds ?cutoff tuple intervals =
  if (match cutoff with Some c -> c <= 0 | None -> false) then None
  else
  let absolute =
    match bounds with
    | None -> []
    | Some bounds ->
        Event.Set.fold
          (fun e acc ->
            if Event.is_artificial e then acc
            else
              match bounds e with
              | Some r ->
                  let c = Tuple.find tuple e in
                  (e, max 0 (c - r), c + r) :: acc
              | None -> acc)
          (Tcn.Condition.interval_events intervals)
          []
  in
  let stn = Tcn.Stn.of_intervals ~absolute intervals in
  if not (Tcn.Stn.consistent stn) then None
  else
    let apply_cutoff result =
      (* The circulation has no budget row, so the cutoff is enforced on
         the computed optimum: a repair at or above the incumbent is as
         useless as an infeasible one. *)
      match (cutoff, result) with
      | Some c, Some { Lp_repair.cost; _ } when cost >= c -> None
      | _ -> result
    in
    match repair_exn ?weights ?bounds tuple intervals with
    | result -> apply_cutoff (Some result)
    | exception Inconsistent_potentials ->
        (* Defensive: fall back to the simplex route rather than return a
           wrong optimum. Exercised never in tests; kept for safety. *)
        Log.warn (fun m -> m "potential recovery failed; falling back to simplex");
        apply_cutoff (Lp_repair.repair ?weights ?bounds tuple intervals)
