(** Branch-and-bound binding search for the exact [Full] strategy.

    The flat sweep of {!Modification} enumerates [Aleph_Gamma] (the full
    cartesian product of binding choices), paying an O(n^3) Floyd–Warshall
    closure plus an LP/flow solve per binding. This engine traverses the
    binding tree instead — one level per binding condition, one child per
    {!Tcn.Bindings.choices} element — over a single {!Tcn.Stn_inc} network
    maintained by push/pop, so shared binding prefixes share their closure
    work (O(n^2) per edge instead of O(n^3) per leaf).

    At every node an admissible lower bound on the repair cost of {e any}
    leaf below it is read off the incremental closure: each event that is
    grounded on the current path (it appears in the base interval
    conditions or in a pushed binding choice, so it is constrained in
    every completion) must move at least the L1 distance from its observed
    timestamp to its closure window, at its weight. Closure windows only
    shrink along a root-to-leaf path and every leaf solution is feasible
    for every prefix closure, hence admissibility. Subtrees whose bound
    reaches the incumbent are pruned; so are subtrees in which some
    event's minimal forced move already exceeds its plausibility bound.
    The incumbent is also threaded into the leaf solver as a [cutoff], and
    the whole search stops early once a zero-cost repair is found.

    The search returns {e exactly} what the flat sweep returns — the first
    binding (in {!Tcn.Bindings.full} enumeration order) attaining the
    minimum repair cost, solved by the same deterministic solver — and the
    property tests assert bit-identical tuples. With [domains > 1],
    top-level subtrees are distributed round-robin across that many
    domains ({!Cep.Bulk}'s chunking pattern); each domain rebuilds the
    prefix network once and results are merged in enumeration order, so
    the outcome is deterministic regardless of scheduling (per-search
    statistics and the [bnb.*] observability counters may vary with
    timing, the result never does). *)

type stats = {
  nodes_expanded : int;
      (** nodes branched upon: consistent pushes that survived the bound
          checks and had their subtree explored *)
  leaves_solved : int;  (** LP/flow solves attempted at full bindings *)
  pruned_bound : int;  (** subtrees cut because lower bound >= incumbent *)
  pruned_inconsistent : int;  (** pushes refused by the incremental closure *)
  pruned_plausibility : int;
      (** subtrees cut because a forced move exceeds its plausibility bound *)
}

type outcome = {
  best : (Events.Tuple.t * int) option;
      (** repaired extended tuple and optimal cost; [None] when no binding
          is consistent and feasible *)
  stats : stats;
}

val search :
  ?domains:int ->
  repair:
    (?cutoff:int ->
    Events.Tuple.t ->
    Tcn.Condition.interval list ->
    Lp_repair.t option) ->
  ?weights:(Events.Event.t -> int) ->
  ?bounds:(Events.Event.t -> int option) ->
  Tcn.Encode.set ->
  Events.Tuple.t ->
  outcome
(** [search ~repair net extended] explores the binding tree of
    [net.set_bindings]. [extended] must bind every event of the network
    (artificial included — pass the result of {!Tcn.Encode.extend}).
    [repair] is the leaf solver, typically {!Lp_repair.repair} or
    {!Flow_repair.repair} partially applied; it must honour [cutoff] as
    "return [None] unless the optimum is strictly below". [weights] and
    [bounds] must be the same functions given to the solver — the lower
    bound uses them, and admissibility depends on the agreement.
    [domains] (default 1) caps the number of OCaml domains used.
    @raise Invalid_argument on [domains < 1], a negative weight or a
    negative bound. *)
