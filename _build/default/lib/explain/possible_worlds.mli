(** Possible-worlds evaluation under imprecise timestamps — the comparator
    of Zhang, Diao, Immerman (PVLDB 2010) the paper positions itself
    against (Section 7.2).

    Each event carries an uncertainty interval of possible occurrence
    times; a {e possible world} picks one timestamp per event. Matching is
    then quantified as a confidence — the fraction of worlds satisfying
    the query — and the "explanation" analogue is the matching world
    closest (L1) to the interval centres. The paper's point, which the
    ablation benchmark quantifies, is that minimum-change explanation needs
    no interval knowledge and is exponentially cheaper while producing
    comparable repairs; this module exists to make that comparison
    executable. *)

type t
(** A tuple with an uncertainty interval per event. *)

val of_tuple : radius:int -> Events.Tuple.t -> t
(** Symmetric intervals [\[ts - radius, ts + radius\]], clamped at 0. *)

val of_intervals : (Events.Event.t * Events.Time.t * Events.Time.t) list -> t
(** Explicit [(event, lo, hi)] intervals. @raise Invalid_argument on
    [lo > hi] or duplicates. *)

val center : t -> Events.Tuple.t
(** The interval midpoints (the "observed" tuple). *)

val world_count : t -> int
(** Number of possible worlds (product of interval widths).
    @raise Numeric.Checked.Overflow when astronomically large. *)

val confidence_exact : ?limit:int -> t -> Pattern.Ast.t list -> float
(** Fraction of worlds matching the query, by exhaustive enumeration.
    @raise Invalid_argument if {!world_count} exceeds [limit]
    (default 2_000_000). *)

val confidence_sampled :
  ?samples:int -> Numeric.Prng.t -> t -> Pattern.Ast.t list -> float
(** Monte-Carlo estimate over [samples] (default 10_000) uniform worlds. *)

val most_likely_matching_world :
  ?limit:int -> t -> Pattern.Ast.t list -> (Events.Tuple.t * int) option
(** The matching world with the smallest L1 distance to the interval
    centres, with that distance; [None] if no world matches. Exhaustive
    with branch-and-bound pruning; same [limit] discipline as
    {!confidence_exact}. *)
