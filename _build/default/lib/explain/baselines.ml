module Event = Events.Event
module Tuple = Events.Tuple

type result = { repaired : Tuple.t; cost : int; matched : bool }

let brute_force ?(grid = 10) ?(radius = 500) patterns tuple =
  if grid <= 0 then invalid_arg "Baselines.brute_force: grid must be positive";
  let events =
    Event.Set.elements (Pattern.Ast.events_of_set patterns)
    |> List.filter (fun e -> Tuple.mem e tuple)
  in
  let candidates e =
    let base = Tuple.find tuple e in
    let rec collect acc offset =
      if offset > radius then List.rev acc
      else
        let acc = if base + offset >= 0 then (base + offset) :: acc else acc in
        let acc =
          if offset > 0 && base - offset >= 0 then (base - offset) :: acc else acc
        in
        collect acc (offset + grid)
    in
    (* Nearest candidates first, so equal-cost worlds prefer small moves. *)
    collect [] 0
  in
  let best = ref None in
  let rec enumerate assigned cost_so_far = function
    | [] ->
        let t' =
          List.fold_left (fun acc (e, ts) -> Tuple.add e ts acc) tuple assigned
        in
        if Pattern.Matcher.matches_set t' patterns then begin
          match !best with
          | Some (_, c) when c <= cost_so_far -> ()
          | _ -> best := Some (t', cost_so_far)
        end
    | e :: rest ->
        let base = Tuple.find tuple e in
        List.iter
          (fun ts ->
            let cost = cost_so_far + abs (ts - base) in
            (* Prune branches already costlier than the best found world. *)
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> enumerate ((e, ts) :: assigned) cost rest)
          (candidates e)
  in
  enumerate [] 0 events;
  Option.map (fun (repaired, cost) -> { repaired; cost; matched = true }) !best

let greedy ?(max_rounds = 100) patterns tuple =
  let net = Tcn.Encode.pattern_set patterns in
  let extended = Tcn.Encode.extend net tuple in
  (* Ground the bindings once, the most likely way (Definition 8), and then
     chase interval violations locally. *)
  let intervals =
    Tcn.Bindings.single extended net.set_bindings @ net.set_intervals
  in
  let current = ref extended in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < max_rounds do
    progress := false;
    incr rounds;
    List.iter
      (fun { Tcn.Condition.src; dst; lo; hi } ->
        let t = !current in
        let ts = Tuple.find t src and td = Tuple.find t dst in
        let d = td - ts in
        (* [fix delta] restores [lo <= d + delta <= hi] by moving one
           endpoint: dst by [+delta] or src by [-delta]. Artificial
           endpoints move for free, so prefer them; otherwise move the
           destination (both moves have equal magnitude). Stay in the
           non-negative domain. *)
        let fix delta =
          let move_dst = Tuple.add dst (td + delta) t in
          let move_src = Tuple.add src (ts - delta) t in
          let pick =
            if Event.is_artificial dst then move_dst
            else if Event.is_artificial src then move_src
            else move_dst
          in
          let pick =
            if Tuple.find pick src < 0 || Tuple.find pick dst < 0 then
              if Tuple.find move_dst dst >= 0 then move_dst else move_src
            else pick
          in
          current := pick;
          progress := true
        in
        if d < lo then fix (lo - d)
        else match hi with Some hi when d > hi -> fix (hi - d) | _ -> ())
      intervals
  done;
  let repaired =
    Tuple.fold
      (fun e ts acc -> if Event.is_artificial e then acc else Tuple.add e ts acc)
      !current Tuple.empty
  in
  let repaired = Tuple.union_right tuple repaired in
  {
    repaired;
    cost = Tuple.delta tuple repaired;
    matched = Pattern.Matcher.matches_set repaired patterns;
  }
