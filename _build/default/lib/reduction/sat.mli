(** 3SAT instances and the reduction to pattern consistency (Theorem 2).

    The reduction builds, for a CNF formula, a pattern set that is
    consistent iff the formula is satisfiable: events [C0, C1..Cm] for the
    clauses and [Xj], [NXj] for the literals; patterns force every variable
    gadget to place [Xj]/[NXj] at distance exactly 1 (truth assignment) and
    every clause gadget to place at least one of its literals at distance 2
    from its clause event. A tiny DPLL-style brute-force solver provides the
    ground truth the reduction is validated against in tests. *)

type literal = { var : int; positive : bool }
(** Variables are numbered from 0. *)

type clause = literal list
type formula = { num_vars : int; clauses : clause list }

val pp_formula : Format.formatter -> formula -> unit

val eval : bool array -> formula -> bool
(** Evaluate under an assignment (indexed by variable). *)

val brute_force : formula -> bool array option
(** Exhaustive satisfiability check (tests only; 2^n). *)

val random_3sat : Numeric.Prng.t -> num_vars:int -> num_clauses:int -> formula
(** Uniform random 3-clauses (distinct variables within a clause). *)

val to_patterns : formula -> Pattern.Ast.t list
(** The Theorem 2 transformation. The resulting set is consistent iff the
    formula is satisfiable. *)

val assignment_of_witness : formula -> Events.Tuple.t -> bool array option
(** Read a truth assignment back from a satisfying tuple of
    {!to_patterns} (variable [j] is true iff [t(Xj) - t(C0) = 3]).
    [None] if the tuple does not bind the gadget events. *)
