module Tuple = Events.Tuple
module Ast = Pattern.Ast

type literal = { var : int; positive : bool }
type clause = literal list
type formula = { num_vars : int; clauses : clause list }

let pp_literal ppf { var; positive } =
  Format.fprintf ppf "%sx%d" (if positive then "" else "!") var

let pp_formula ppf { clauses; _ } =
  let pp_clause ppf c =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         pp_literal)
      c
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
    pp_clause ppf clauses

let eval assignment { clauses; _ } =
  List.for_all
    (List.exists (fun { var; positive } -> assignment.(var) = positive))
    clauses

let brute_force formula =
  let n = formula.num_vars in
  let assignment = Array.make n false in
  let rec go var =
    if var = n then if eval assignment formula then Some (Array.copy assignment) else None
    else begin
      assignment.(var) <- false;
      match go (var + 1) with
      | Some _ as found -> found
      | None ->
          assignment.(var) <- true;
          go (var + 1)
    end
  in
  go 0

let random_3sat prng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Sat.random_3sat: need at least 3 variables";
  let clause () =
    let vars = Array.init num_vars Fun.id in
    Numeric.Prng.shuffle prng vars;
    List.init 3 (fun i -> { var = vars.(i); positive = Numeric.Prng.bool prng })
  in
  { num_vars; clauses = List.init num_clauses (fun _ -> clause ()) }

let clause_event i = Printf.sprintf "C%d" i
let pos_event j = Printf.sprintf "X%d" j
let neg_event j = Printf.sprintf "NX%d" j
let literal_event { var; positive } = if positive then pos_event var else neg_event var

let to_patterns { num_vars; clauses } =
  let variable_gadget j =
    (* SEQ(C0, AND(Xj, NXj) ATLEAST 1 WITHIN 1) ATLEAST 3 WITHIN 3 *)
    Ast.seq ~atleast:3 ~within:3
      [
        Ast.event (clause_event 0);
        Ast.and_ ~atleast:1 ~within:1 [ Ast.event (pos_event j); Ast.event (neg_event j) ];
      ]
  in
  let clause_gadget i c =
    (* SEQ(Ci, AND(Xi1, Xi2, Xi3)) ATLEAST 2 WITHIN 2 *)
    Ast.seq ~atleast:2 ~within:2
      [
        Ast.event (clause_event (i + 1));
        Ast.and_ (List.map (fun l -> Ast.event (literal_event l)) c);
      ]
  in
  let anchor_gadget i =
    (* SEQ(C0, Ci) ATLEAST 1 WITHIN 1 *)
    Ast.seq ~atleast:1 ~within:1
      [ Ast.event (clause_event 0); Ast.event (clause_event (i + 1)) ]
  in
  List.init num_vars variable_gadget
  @ List.mapi clause_gadget clauses
  @ List.init (List.length clauses) anchor_gadget

let assignment_of_witness { num_vars; _ } tuple =
  match Tuple.find_opt tuple (clause_event 0) with
  | None -> None
  | Some c0 ->
      let rec go j acc =
        if j = num_vars then Some (Array.of_list (List.rev acc))
        else
          match Tuple.find_opt tuple (pos_event j) with
          | None -> None
          | Some xj -> go (j + 1) ((xj - c0 = 3) :: acc)
      in
      go 0 []
