(** SET COVER and the reduction to timestamp modification (Theorem 3).

    For an instance with elements [u_1..u_m] and sets [s_1..s_n], the
    reduction builds events [S_i], [S'_i], [U_j], a tuple placing them at
    [t(S'_i)=0], [t(U_j)=1], [t(S_i)=2], and patterns forcing each element
    gadget to see one covering set event at distance exactly 2 from its
    element event. The minimum modification cost of the tuple equals the
    minimum cover size: each chosen set is moved from 2 to 3 at cost 1,
    and moving any [U_j] instead is priced out by the anchor patterns.
    Validated in tests against a brute-force minimum cover. *)

type instance = { num_elements : int; sets : int list array }
(** [sets.(i)] lists the elements (numbered from 0) of set [i]. *)

val validate : instance -> (unit, string) result
(** Every element must be covered by some set and indices in range. *)

val brute_force_min_cover : instance -> int list option
(** Smallest cover by exhaustive search (tests only); [None] if the
    instance leaves an element uncovered. *)

val random_instance :
  Numeric.Prng.t -> num_elements:int -> num_sets:int -> density:float -> instance
(** Each (set, element) pair is included with probability [density];
    coverage is patched up by assigning stray elements to random sets. *)

val to_patterns : instance -> Pattern.Ast.t list
(** The Theorem 3 transformation. *)

val tuple : instance -> Events.Tuple.t
(** The tuple [t(S'_i)=0, t(U_j)=1, t(S_i)=2] of the reduction. *)

val cover_of_repair : instance -> Events.Tuple.t -> int list
(** Read the chosen cover back from a repaired tuple: the sets whose [S_i]
    event moved. *)
