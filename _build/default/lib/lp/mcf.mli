(** Minimum-cost circulation by negative-cycle canceling (Klein's algorithm).

    The L1 timestamp repair over a simple temporal network is the LP dual of
    a min-cost circulation; this solver provides an exact integral solution
    path independent of {!Simplex}, used both as a faster repair engine and
    as a cross-check in property tests (both must report the same optimum).

    Costs and capacities are machine integers; flows and objective values of
    an optimal circulation are integral by construction. *)

type t
type edge

val create : int -> t
(** [create n] is an empty graph over nodes [0 .. n-1]. *)

val num_nodes : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> edge
(** Directed edge with capacity [cap >= 0] and per-unit cost. *)

val min_cost_circulation : t -> int
(** Cancel negative residual cycles until none remain; returns the total
    cost of the resulting circulation (non-positive). Mutates flows. *)

val flow : t -> edge -> int
(** Flow on an edge after {!min_cost_circulation}. *)

val iter_residual : t -> (src:int -> dst:int -> cost:int -> unit) -> unit
(** Iterate over every residual arc (positive remaining capacity), forward
    and reverse alike, with its residual cost. *)

val residual_distances : t -> source:int -> int option array
(** Shortest-path distances over residual arcs (cost on forward residual
    arcs, negated cost on reverse arcs) from [source], after the
    circulation is optimal. [None] marks unreachable nodes. Used to read
    off the optimal primal (potentials) of the repair dual.
    @raise Invalid_argument if a negative residual cycle remains. *)
