(** Integer linear programming by branch-and-bound over {!Simplex}.

    Formula 4 of the paper is an ILP whose LP relaxation is integral in
    practice (difference-constraint matrix, totally unimodular), so the
    relaxation alone is what Algorithm 2 uses. This wrapper makes the
    "exact ILP" claim unconditional: it solves the relaxation, returns it
    when integral, and otherwise branches on a fractional variable. Tests
    exercise branching on purpose-built non-unimodular toy models. *)

type outcome =
  | Optimal of { objective : Numeric.Rat.t; values : int array }
  | Infeasible
  | Unbounded

val solve : ?max_nodes:int -> Simplex.model -> outcome
(** Minimize over integer assignments of all variables. [max_nodes]
    (default 10_000) bounds the search tree.
    @raise Failure if the node budget is exhausted. *)

val relaxation_is_integral : Simplex.model -> bool option
(** [Some true] if the LP optimum found is integral, [Some false] if
    fractional, [None] if infeasible/unbounded. Used by the integrality
    ablation benchmark. *)
