(** Linear programming by exact-rational two-phase primal simplex.

    No LP solver exists in the sealed build environment, so this module
    provides the one the paper's Algorithm 2 needs (Formula 4 and its
    LP-relaxation). All arithmetic is exact ({!Numeric.Rat}), so the solver
    reports true optima — in particular it lets the test suite observe that
    the timestamp-modification LP always has integral optima (its constraint
    matrix is a difference system, hence totally unimodular). Bland's rule
    guarantees termination in the presence of degeneracy.

    The model is: minimize [c^T x] subject to linear constraints, with every
    variable implicitly non-negative (which is what the u/v substitution of
    Formula 4 produces). *)

type var = int
(** Variable handle, dense from 0. *)

type model

type sense = Le | Ge | Eq

val create : unit -> model

val copy : model -> model
(** Independent copy; constraints added to one are invisible to the other
    (branch-and-bound relies on this). *)

val add_var : ?name:string -> model -> var
(** Fresh non-negative variable. *)

val num_vars : model -> int

val add_constraint : model -> (Numeric.Rat.t * var) list -> sense -> Numeric.Rat.t -> unit
(** [add_constraint m terms sense rhs] adds [sum terms (sense) rhs]. Terms
    may repeat a variable; coefficients are summed. *)

val set_objective : model -> (Numeric.Rat.t * var) list -> unit
(** Minimization objective; unset variables have zero cost. *)

type outcome =
  | Optimal of { objective : Numeric.Rat.t; values : Numeric.Rat.t array }
  | Infeasible
  | Unbounded

val solve : model -> outcome
(** Solve the current model. The model is reusable: constraints added after
    a solve are honoured by the next solve (used by the branch-and-bound
    ILP wrapper, which re-solves with added bounds). *)

val pp_outcome : Format.formatter -> outcome -> unit
