module Rat = Numeric.Rat

type outcome =
  | Optimal of { objective : Rat.t; values : int array }
  | Infeasible
  | Unbounded

let find_fractional values =
  let n = Array.length values in
  let rec go i =
    if i >= n then None
    else if Rat.is_integer values.(i) then go (i + 1)
    else Some i
  in
  go 0

let solve ?(max_nodes = 10_000) model =
  let best : (Rat.t * int array) option ref = ref None in
  let nodes = ref 0 in
  let unbounded = ref false in
  let rec go model =
    incr nodes;
    if !nodes > max_nodes then failwith "Ilp.solve: node budget exhausted";
    match Simplex.solve model with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* The relaxation being unbounded makes the ILP unbounded as soon as
           any integer point is feasible; we report Unbounded conservatively
           (our repair models are always bounded, so this is a corner). *)
        unbounded := true
    | Simplex.Optimal { objective; values } -> (
        let dominated =
          match !best with Some (b, _) -> Rat.compare objective b >= 0 | None -> false
        in
        if not dominated then
          match find_fractional values with
          | None ->
              best := Some (objective, Array.map Rat.to_int_exn values)
          | Some v ->
              let frac = values.(v) in
              let left = Simplex.copy model and right = Simplex.copy model in
              Simplex.add_constraint left
                [ (Rat.one, v) ]
                Simplex.Le
                (Rat.of_int (Rat.floor frac));
              Simplex.add_constraint right
                [ (Rat.one, v) ]
                Simplex.Ge
                (Rat.of_int (Rat.ceil frac));
              go left;
              go right)
  in
  go (Simplex.copy model);
  if !unbounded && !best = None then Unbounded
  else
    match !best with
    | Some (objective, values) -> Optimal { objective; values }
    | None -> Infeasible

let relaxation_is_integral model =
  match Simplex.solve model with
  | Simplex.Optimal { values; _ } -> Some (find_fractional values = None)
  | Simplex.Infeasible | Simplex.Unbounded -> None
