(** Lightweight observability: global counters, gauges, histograms and
    timing spans for the engine's hot paths.

    Every metric lives in one process-wide registry keyed by a dotted
    name ([simplex.pivots], [detector.matches], ...). Call sites obtain a
    handle once — typically at module initialisation — and then update it
    with no allocation and no lock on the hot path: all cells are
    {!Atomic} ints, so updates are safe and lossless under {!Cep.Bulk}'s
    domains.

    {b Determinism.} Counters, gauges and histograms are pure functions
    of the work performed, so a {!snapshot} restricted to them is
    byte-identical across runs on the same input. Spans measure
    wall-clock time and are not deterministic.

    This module is dependency-free; {!Report.Obs_json} renders a
    snapshot as JSON. Metric names, units and the snapshot schema are
    documented in [docs/OBSERVABILITY.md]. *)

type counter
type gauge
type histogram

(** {1 Registration (get-or-create, idempotent)} *)

val counter : string -> counter
(** Monotonic event count. @raise Invalid_argument if the name is
    already registered as a different metric kind. *)

val gauge : string -> gauge
(** Point-in-time level (last value wins; or use {!gauge_max} for a
    high-water mark). @raise Invalid_argument on a kind clash. *)

val histogram : ?buckets:int array -> string -> histogram
(** Distribution of integer sizes/latencies over fixed, strictly
    increasing bucket upper bounds ([buckets] defaults to
    {!default_buckets}; a final +inf bucket is implicit). On repeated
    registration the first bounds win. @raise Invalid_argument on a kind
    clash or non-increasing bounds. *)

val default_buckets : int array

(** {1 Hot-path updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge_set : gauge -> int -> unit
val gauge_max : gauge -> int -> unit
(** [gauge_max g v] raises the gauge to [v] if [v] is larger (atomic). *)

val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one sample into the bucket of the smallest bound [>=] sample. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span label f] runs [f ()] and aggregates its wall-clock
    duration (count / total / max, nanoseconds) under [label]. The
    duration is recorded even when [f] raises. Span registration is
    keyed like any other metric; @raise Invalid_argument on a kind
    clash. *)

(** {1 Snapshot / reset} *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_buckets : (int option * int) list;
      (** (upper bound, samples); [None] is the +inf overflow bucket *)
}

type span_snapshot = { s_count : int; total_ns : int; max_ns : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
  spans : (string * span_snapshot) list;
}
(** All sections sorted by metric name — deterministic apart from the
    timing fields of [spans]. *)

val find_counter : string -> int option
(** Current value of a registered counter, by name. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val snapshot : unit -> snapshot
