(** The paper's application scenarios (Section 1.2), packaged as process
    models + queries.

    Each scenario bundles a discrete-event {!Process_sim} model whose clean
    simulations always satisfy the scenario's event pattern query, the
    query itself, and the inconsistent query variant the paper uses to
    motivate the pattern consistency explanation. The examples and the
    scenario benchmark draw from here, so the prose scenarios of the paper
    are runnable artifacts. *)

type t = {
  name : string;
  description : string;
  model : Process_sim.model;
  query : Pattern.Ast.t;  (** clean simulations always match it *)
  broken_query : Pattern.Ast.t;
      (** the paper's mistyped variant — always inconsistent *)
}

val order_monitoring : t
(** Cancelled orders involving a supplier and a remote stock:
    [SEQ(AND(SEQ(E1, E2), SEQ(E3, E4)), E5) WITHIN 12 hours]. *)

val vehicle_tracking : t
(** Complete excavation trips:
    [SEQ(E1, AND(E2, E3) ATLEAST 30 minutes, E4) WITHIN 2 hours]. *)

val cluster_jobs : t
(** First job terminated by two new submissions:
    [SEQ(E1, AND(E2, E3), E4) ATLEAST 2 minutes]. *)

val all : t list

val generate : Numeric.Prng.t -> t -> cases:int -> Events.Trace.t
(** Clean cases from the scenario's model; each matches [query]. *)
