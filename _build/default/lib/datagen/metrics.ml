module Tuple = Events.Tuple
module Trace = Events.Trace
module Event = Events.Event

let per_event_errors ~truth ~repaired =
  Tuple.fold
    (fun e ts acc ->
      if Event.is_artificial e then acc
      else
        match Tuple.find_opt repaired e with
        | Some ts' -> float_of_int (ts' - ts) :: acc
        | None -> acc)
    truth []

let rmse ~truth ~repaired =
  match per_event_errors ~truth ~repaired with
  | [] -> 0.0
  | errors ->
      let n = float_of_int (List.length errors) in
      sqrt (List.fold_left (fun acc e -> acc +. (e *. e)) 0.0 errors /. n)

let nrmse ~truth ~repaired =
  let timestamps =
    Tuple.fold
      (fun e ts acc -> if Event.is_artificial e then acc else float_of_int ts :: acc)
      truth []
  in
  match timestamps with
  | [] -> 0.0
  | _ ->
      let mean_truth =
        List.fold_left ( +. ) 0.0 timestamps /. float_of_int (List.length timestamps)
      in
      if mean_truth = 0.0 then 0.0 else rmse ~truth ~repaired /. mean_truth

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let over_trace f ~truth ~repaired =
  Trace.fold
    (fun id truth_tuple acc ->
      match Trace.find_opt repaired id with
      | Some repaired_tuple -> f ~truth:truth_tuple ~repaired:repaired_tuple :: acc
      | None -> acc)
    truth []
  |> mean

let trace_nrmse = over_trace nrmse
let trace_rmse = over_trace rmse
