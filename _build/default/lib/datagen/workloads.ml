module Event = Events.Event
module Tuple = Events.Tuple
module Trace = Events.Trace
module Prng = Numeric.Prng
module Ast = Pattern.Ast

let strip_artificial tuple =
  Tuple.fold
    (fun e ts acc -> if Event.is_artificial e then acc else Tuple.add e ts acc)
    tuple Tuple.empty

let random_matching_tuple ?(horizon = 2000) prng patterns =
  let net = Tcn.Encode.pattern_set patterns in
  let events =
    Event.Set.union
      (Pattern.Ast.events_of_set patterns)
      (Event.Set.union
         (Tcn.Condition.interval_events net.set_intervals)
         (Tcn.Condition.binding_events net.set_bindings))
  in
  let reference () =
    Event.Set.fold (fun e acc -> Tuple.add e (Prng.int_in prng 0 horizon) acc) events
      Tuple.empty
  in
  let try_binding phi_k =
    let stn =
      Tcn.Stn.of_intervals ~events:(Event.Set.elements events)
        (phi_k @ net.set_intervals)
    in
    if Tcn.Stn.consistent stn then Tcn.Stn.solution_near stn (reference ()) else None
  in
  let rec sample_attempts remaining =
    if remaining = 0 then None
    else
      match try_binding (Tcn.Bindings.sample prng net.set_bindings) with
      | Some t -> Some t
      | None -> sample_attempts (remaining - 1)
  in
  let solution =
    match sample_attempts 16 with
    | Some t -> Some t
    | None ->
        (* Rare: the sampled bindings were all inconsistent. Fall back to
           scanning the full binding space. *)
        Seq.find_map try_binding (Tcn.Bindings.full net.set_bindings)
  in
  match solution with
  | None -> invalid_arg "Workloads.random_matching_tuple: inconsistent pattern set"
  | Some t ->
      let t = strip_artificial t in
      assert (Pattern.Matcher.matches_set t patterns);
      t

let matching_trace ?horizon prng patterns ~tuples =
  let rec go i acc =
    if i = tuples then acc
    else
      let t = random_matching_tuple ?horizon prng patterns in
      go (i + 1) (Trace.add (Printf.sprintf "t%06d" i) t acc)
  in
  go 0 Trace.empty

let fig4_event i k = Printf.sprintf "E%d_%d" i k

let fig4_pattern_set ~n ~b =
  if n < 1 then invalid_arg "Workloads.fig4_pattern_set: n >= 1";
  let pair i (k1, k2) =
    Ast.seq ~atleast:1 [ Ast.event (fig4_event i k1); Ast.event (fig4_event i k2) ]
  in
  let big_and =
    Ast.and_ ~atleast:1 ~within:b
      (List.concat (List.init n (fun i -> [ pair (i + 1) (1, 2); pair (i + 1) (3, 4) ])))
  in
  let anchors =
    List.init n (fun i ->
        Ast.seq ~atleast:0 ~within:0
          [ Ast.event (fig4_event (i + 1) 1); Ast.event (fig4_event (i + 1) 4) ])
  in
  big_and :: anchors

let numbered_event i = Printf.sprintf "E%d" i

let fig10_pattern ~n =
  if n < 4 then invalid_arg "Workloads.fig10_pattern: n >= 4";
  let half = n / 2 in
  let seq_of lo hi =
    Ast.seq (List.init (hi - lo + 1) (fun k -> Ast.event (numbered_event (lo + k))))
  in
  Ast.and_ ~atleast:900 ~within:1000 [ seq_of 1 half; seq_of (half + 1) n ]

let fig11_pattern ~n =
  if n < 2 then invalid_arg "Workloads.fig11_pattern: n >= 2";
  Ast.and_ ~atleast:900 ~within:1000
    (List.init n (fun i -> Ast.event (numbered_event (i + 1))))
