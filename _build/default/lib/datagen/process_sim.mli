(** Discrete-event process simulation.

    A small substrate for fabricating realistic event logs: a process model
    is a DAG of activities with delay ranges on its dependencies; simulating
    a case samples delays and schedules every activity after all of its
    predecessors — producing one tuple per case, by construction matching
    any pattern whose windows subsume the model's delay ranges. The RTFM
    generator and the application-scenario examples are instances.

    Optional activities model XOR branches: with the given probability the
    activity (and transitively everything requiring it) is skipped, which
    produces the "missing event" non-answers of real logs. *)

type dependency = {
  after : Events.Event.t;  (** the predecessor activity *)
  min_delay : int;
  max_delay : int;  (** inclusive bounds, [0 <= min <= max] *)
}

type activity = {
  name : Events.Event.t;
  requires : dependency list;  (** empty = a root activity, scheduled at the
                                   case start *)
  skip_probability : float;  (** 0.0 = always occurs *)
}

type model

val model : activity list -> (model, string) result
(** Validate: unique activity names, known dependencies, acyclic, sane
    delay bounds and probabilities. *)

val model_exn : activity list -> model

val activities : model -> Events.Event.t list
(** Topological order. *)

val simulate_case :
  ?start:Events.Time.t -> Numeric.Prng.t -> model -> Events.Tuple.t
(** One case: each occurring activity is timestamped
    [max over present predecessors (t(pred) + sampled delay)] (activities
    whose every predecessor was skipped are skipped too). [start] is the
    case start time (default 0). *)

val simulate :
  ?start_spread:int -> Numeric.Prng.t -> model -> cases:int -> Events.Trace.t
(** A log of cases, ids ["c000000"...]; each case starts uniformly in
    [\[0, start_spread\]] (default 0). *)
