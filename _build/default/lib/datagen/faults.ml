module Prng = Numeric.Prng

let fault prng ~distance ts =
  let magnitude = Prng.int_in prng 1 (max 1 distance) in
  let offset = if Prng.bool prng then magnitude else -magnitude in
  max 0 (ts + offset)

let tuple prng ~rate ~distance t =
  Events.Tuple.map
    (fun _e ts -> if Prng.coin prng rate then fault prng ~distance ts else ts)
    t

let trace prng ~rate ~distance tr =
  Events.Trace.map (fun _id t -> tuple prng ~rate ~distance t) tr
