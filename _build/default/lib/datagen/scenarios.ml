module Ast = Pattern.Ast

type t = {
  name : string;
  description : string;
  model : Process_sim.model;
  query : Ast.t;
  broken_query : Ast.t;
}

let dep ~min_delay ~max_delay after = { Process_sim.after; min_delay; max_delay }

let act ?(requires = []) name = { Process_sim.name; requires; skip_probability = 0.0 }

let q = Pattern.Parse.pattern_exn

let order_monitoring =
  {
    name = "order-monitoring";
    description =
      "cancelled orders involving both a supplier quote (E1->E2) and a \
       remote stock invoice (E3->E4), cancelled in E5 within 12 hours";
    model =
      Process_sim.model_exn
        [
          act "E1";
          act ~requires:[ dep ~min_delay:0 ~max_delay:60 "E1" ] "E3";
          act ~requires:[ dep ~min_delay:30 ~max_delay:180 "E1" ] "E2";
          act ~requires:[ dep ~min_delay:30 ~max_delay:180 "E3" ] "E4";
          act
            ~requires:
              [ dep ~min_delay:10 ~max_delay:120 "E2";
                dep ~min_delay:10 ~max_delay:120 "E4" ]
            "E5";
        ];
    query = q "SEQ(AND(SEQ(E1, E2), SEQ(E3, E4)), E5) WITHIN 12 hours";
    broken_query =
      q "SEQ(AND(SEQ(E1, E2) ATLEAST 24 hours, SEQ(E3, E4)), E5) WITHIN 12 hours";
  }

let vehicle_tracking =
  {
    name = "vehicle-tracking";
    description =
      "complete excavation trips: excavation E1, weighting/height E2,E3 in \
       any order at least 30 minutes apart, unloading E4, all within 2 hours";
    model =
      Process_sim.model_exn
        [
          act "E1";
          act ~requires:[ dep ~min_delay:5 ~max_delay:15 "E1" ] "E2";
          act ~requires:[ dep ~min_delay:30 ~max_delay:40 "E2" ] "E3";
          act ~requires:[ dep ~min_delay:5 ~max_delay:20 "E3" ] "E4";
        ];
    query = q "SEQ(E1, AND(E2, E3) ATLEAST 30 minutes, E4) WITHIN 2 hours";
    broken_query = q "SEQ(E1, AND(E2, E3) ATLEAST 30 hours, E4) WITHIN 2 hours";
  }

let cluster_jobs =
  {
    name = "cluster-jobs";
    description =
      "first job E1 terminated (E4) after two higher-priority submissions \
       E2, E3 in any order, taking at least 2 minutes";
    model =
      Process_sim.model_exn
        [
          act "E1";
          act ~requires:[ dep ~min_delay:1 ~max_delay:5 "E1" ] "E2";
          act ~requires:[ dep ~min_delay:1 ~max_delay:5 "E1" ] "E3";
          act
            ~requires:
              [ dep ~min_delay:1 ~max_delay:10 "E2";
                dep ~min_delay:1 ~max_delay:10 "E3" ]
            "E4";
        ];
    query = q "SEQ(E1, AND(E2, E3), E4) ATLEAST 2 minutes";
    broken_query = q "SEQ(E1, AND(E2, E3) ATLEAST 5, E4) WITHIN 3";
  }

let all = [ order_monitoring; vehicle_tracking; cluster_jobs ]

let generate prng scenario ~cases =
  Process_sim.simulate ~start_spread:10_000 prng scenario.model ~cases
