(** BART-style fault injection (Section 6.3.2).

    Originally-clean data is degraded by randomly modifying timestamps: an
    event's timestamp is faulted with probability [rate], by a uniform
    offset of magnitude 1..[distance] in a random direction (clamped to the
    non-negative domain). This mirrors the paper's protocol ("a fault
    distance of 200 means the fault timestamp is a random number t ± 200"). *)

val tuple :
  Numeric.Prng.t -> rate:float -> distance:int -> Events.Tuple.t -> Events.Tuple.t

val trace :
  Numeric.Prng.t -> rate:float -> distance:int -> Events.Trace.t -> Events.Trace.t
