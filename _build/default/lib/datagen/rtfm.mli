(** Synthetic Road Traffic Fine Management log (Section 6.3.2 substitute).

    The paper uses the 4TU "Road Traffic Fine Management" process log:
    per-case tuples of administrative activities with clean timestamps, into
    which synthetic faults are injected. The corpus is not available
    offline; this generator reproduces its structure: cases flowing through
    [Create_fine -> Send_fine -> Insert_notification -> {Add_penalty,
    Payment}], with the event-pattern queries the paper extracts from the
    clean data and confirms manually — notably
    [AND(Payment, Add_penalty) ATLEAST 10 WITHIN 480].

    All timestamps are minutes. Generated clean tuples match every query
    pattern; degrade them with {!Faults} before explaining. *)

val activities : Events.Event.t list
(** The five activities of a case. *)

val patterns : Pattern.Ast.t list
(** The confirmed query patterns over a case (all five activities). *)

val generate : Numeric.Prng.t -> tuples:int -> Events.Trace.t
(** [tuples] clean cases; every tuple matches {!patterns}. *)
