(** Synthetic Flight dataset with labeled truth (Section 6.3.1 substitute).

    The paper uses the Luna Dong flight data-fusion corpus: departure and
    arrival timestamps of flights, one tuple per day, each event reported by
    several heterogeneous sources of which some are imprecise — and the
    ground truth is labeled. That corpus is not available offline, so this
    generator reproduces its relevant structure: a per-day tuple of flight
    events whose true timestamps match a realistic transfer pattern
    (generalising Example 1), several conflicting sources per event, and an
    observed tuple obtained by picking one source at random.

    The query pattern over [n] events ([n/2] arrivals [A1..], [n/2]
    departures [D1..]) is
    [SEQ(AND(A1..Ak) WITHIN 30, AND(D1..Dk) WITHIN 30) ATLEAST 120] —
    passengers arriving within half an hour of each other and departing
    within half an hour, with at least two hours in between, as in the
    COVID-19 tracing scenario. *)

type t = {
  pattern : Pattern.Ast.t;
  truth : Events.Trace.t;  (** labeled true timestamps; every tuple matches *)
  observed : Events.Trace.t;
      (** the tuples after source selection; imprecise events deviate *)
}

val generate :
  ?sources:int ->
  ?imprecise_probability:float ->
  ?max_deviation:int ->
  Numeric.Prng.t ->
  num_events:int ->
  days:int ->
  t
(** [num_events] must be even and >= 4. Each event gets [sources] candidate
    reports (default 3): the truth, plus sources that are imprecise with
    probability [imprecise_probability] (default 0.4) by up to
    [max_deviation] minutes (default 120, skewed toward small errors). *)
