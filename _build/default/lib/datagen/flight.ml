module Tuple = Events.Tuple
module Trace = Events.Trace
module Prng = Numeric.Prng
module Ast = Pattern.Ast

type t = {
  pattern : Ast.t;
  truth : Trace.t;
  observed : Trace.t;
}

let arrival i = Printf.sprintf "A%d" (i + 1)
let departure i = Printf.sprintf "D%d" (i + 1)

let transfer_pattern ~passengers =
  Ast.seq ~atleast:120
    [
      Ast.and_ ~within:30 (List.init passengers (fun i -> Ast.event (arrival i)));
      Ast.and_ ~within:30 (List.init passengers (fun i -> Ast.event (departure i)));
    ]

(* Heterogeneous-source imprecision: most wrong reports are slightly off
   (rounded, stale by a few minutes), a few are badly wrong — a squared
   uniform draw gives that skew. *)
let deviation prng ~max_deviation =
  let u = Prng.float prng 1.0 in
  let magnitude = 1 + int_of_float (u *. u *. float_of_int (max_deviation - 1)) in
  if Prng.bool prng then magnitude else -magnitude

let generate ?(sources = 3) ?(imprecise_probability = 0.4) ?(max_deviation = 120)
    prng ~num_events ~days =
  if num_events < 4 || num_events mod 2 <> 0 then
    invalid_arg "Flight.generate: num_events must be even and >= 4";
  if sources < 1 then invalid_arg "Flight.generate: sources >= 1";
  let passengers = num_events / 2 in
  let pattern = transfer_pattern ~passengers in
  let observe tuple =
    Tuple.map
      (fun _e ts ->
        (* One source is the truth; pick uniformly among all reports. *)
        let pick = Prng.int prng sources in
        if pick = 0 then ts
        else if Prng.coin prng imprecise_probability then
          max 0 (ts + deviation prng ~max_deviation)
        else ts)
      tuple
  in
  let day d =
    let truth = Workloads.random_matching_tuple ~horizon:1440 prng [ pattern ] in
    (Printf.sprintf "day%03d" d, truth, observe truth)
  in
  let truth, observed =
    List.init days day
    |> List.fold_left
         (fun (truth, observed) (id, tt, ot) ->
           (Trace.add id tt truth, Trace.add id ot observed))
         (Trace.empty, Trace.empty)
  in
  { pattern; truth; observed }
