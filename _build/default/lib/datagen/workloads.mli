(** Workload builders for the paper's experiments.

    The synthetic pattern families of Figures 4, 10 and 11, plus generic
    generators for tuples that match a given pattern set (used to fabricate
    originally-clean data before fault injection, as in Sections 6.3.2 and
    6.3.3). *)

val random_matching_tuple :
  ?horizon:int -> Numeric.Prng.t -> Pattern.Ast.t list -> Events.Tuple.t
(** A random tuple with [t |= P]: sample a binding, solve the resulting
    simple temporal network anchored near a uniformly random reference over
    [\[0, horizon\]] (default 2000). Falls back to enumerating all bindings
    if sampling keeps hitting inconsistent ones.
    @raise Invalid_argument if the pattern set is inconsistent. *)

val matching_trace :
  ?horizon:int ->
  Numeric.Prng.t ->
  Pattern.Ast.t list ->
  tuples:int ->
  Events.Trace.t
(** [tuples] independent random matching tuples, ids ["t000000"...]. *)

val fig4_pattern_set : n:int -> b:int -> Pattern.Ast.t list
(** The consistency-evaluation family of Figure 4 over [4n] events:
    [AND(SEQ(E11,E12) ATLEAST 1, SEQ(E13,E14) ATLEAST 1, ...,
    SEQ(En3,En4) ATLEAST 1) ATLEAST 1 WITHIN b] together with
    [SEQ(Ei1, Ei4) ATLEAST 0 WITHIN 0] for each [i]. Inconsistent for
    [b = 1], consistent for [b >= 2]. *)

val fig10_pattern : n:int -> Pattern.Ast.t
(** [AND(SEQ(E1..E(n/2)), SEQ(E(n/2+1)..En)) ATLEAST 900 WITHIN 1000] —
    the general case with SEQ embedded in AND. [n >= 4]. *)

val fig11_pattern : n:int -> Pattern.Ast.t
(** [AND(E1..En) ATLEAST 900 WITHIN 1000] — no SEQ inside AND, where the
    single binding is provably optimal (Proposition 8). [n >= 2]. *)
