(** Repair-quality metrics of the evaluation (Section 6.3).

    NRMSE compares a produced modification [t'] against the labeled truth
    [t*]: the root-mean-square per-event error, normalised by the mean truth
    timestamp — exactly the paper's formula. Aggregations over a trace
    average the per-tuple values. *)

val rmse : truth:Events.Tuple.t -> repaired:Events.Tuple.t -> float
(** Root-mean-square timestamp error over the events of [truth]
    (artificial events excluded; events missing from [repaired] are treated
    as unmodified, i.e. contribute their full truth-vs-nothing error is NOT
    defined — they are skipped). *)

val nrmse : truth:Events.Tuple.t -> repaired:Events.Tuple.t -> float
(** [rmse / mean truth timestamp] (0 if the mean is 0). *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val trace_nrmse : truth:Events.Trace.t -> repaired:Events.Trace.t -> float
(** Mean per-tuple NRMSE over the tuple ids present in both traces. *)

val trace_rmse : truth:Events.Trace.t -> repaired:Events.Trace.t -> float
