module Event = Events.Event
module Tuple = Events.Tuple
module Trace = Events.Trace
module Prng = Numeric.Prng

type dependency = {
  after : Event.t;
  min_delay : int;
  max_delay : int;
}

type activity = {
  name : Event.t;
  requires : dependency list;
  skip_probability : float;
}

type model = { ordered : activity list (* topological *) }

let model acts =
  let names = List.map (fun a -> a.name) acts in
  let unique = List.sort_uniq Event.compare names in
  if List.length unique <> List.length names then Error "duplicate activity names"
  else if
    List.exists
      (fun a ->
        List.exists
          (fun d -> not (List.mem d.after names))
          a.requires)
      acts
  then Error "dependency on an unknown activity"
  else if
    List.exists
      (fun a ->
        List.exists (fun d -> d.min_delay < 0 || d.min_delay > d.max_delay) a.requires)
      acts
  then Error "delay bounds must satisfy 0 <= min <= max"
  else if List.exists (fun a -> a.skip_probability < 0.0 || a.skip_probability > 1.0) acts
  then Error "skip probability must be in [0, 1]"
  else begin
    (* Kahn topological sort; leftover activities witness a cycle. *)
    let placed = Hashtbl.create 16 in
    let rec place ordered remaining =
      let ready, rest =
        List.partition
          (fun a -> List.for_all (fun d -> Hashtbl.mem placed d.after) a.requires)
          remaining
      in
      match (ready, rest) with
      | [], [] -> Ok (List.rev ordered)
      | [], _ -> Error "cyclic dependencies"
      | _ ->
          List.iter (fun a -> Hashtbl.replace placed a.name ()) ready;
          place (List.rev_append ready ordered) rest
    in
    Result.map (fun ordered -> { ordered }) (place [] acts)
  end

let model_exn acts =
  match model acts with Ok m -> m | Error e -> invalid_arg ("Process_sim.model: " ^ e)

let activities m = List.map (fun a -> a.name) m.ordered

let simulate_case ?(start = 0) prng m =
  List.fold_left
    (fun tuple a ->
      if Prng.coin prng a.skip_probability then tuple
      else
        let schedule =
          if a.requires = [] then Some start
          else
            (* latest predecessor + its sampled delay; skipped predecessors
               contribute nothing, and if all were skipped the activity is
               skipped too *)
            List.fold_left
              (fun acc d ->
                match Tuple.find_opt tuple d.after with
                | None -> acc
                | Some pred_ts ->
                    let ts = pred_ts + Prng.int_in prng d.min_delay d.max_delay in
                    Some (match acc with None -> ts | Some best -> max best ts))
              None a.requires
        in
        match schedule with
        | Some ts -> Tuple.add a.name ts tuple
        | None -> tuple)
    Tuple.empty m.ordered

let simulate ?(start_spread = 0) prng m ~cases =
  let rec go i acc =
    if i = cases then acc
    else
      let start = if start_spread = 0 then 0 else Prng.int_in prng 0 start_spread in
      let tuple = simulate_case ~start prng m in
      go (i + 1) (Trace.add (Printf.sprintf "c%06d" i) tuple acc)
  in
  go 0 Trace.empty
