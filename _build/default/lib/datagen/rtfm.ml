module Ast = Pattern.Ast

let create_fine = "Create_fine"
let send_fine = "Send_fine"
let insert_notification = "Insert_notification"
let add_penalty = "Add_penalty"
let payment = "Payment"

let activities = [ create_fine; send_fine; insert_notification; add_penalty; payment ]

let day = 1440

(* Extracted from clean data in the paper's protocol: the fine is posted
   between one day and three weeks after creation, the notification lands
   within two weeks of posting, and the penalty and the payment happen on
   the same working day (10 minutes to 8 hours apart, either order) within
   two months of the notification. *)
let patterns =
  [
    Ast.seq ~atleast:day ~within:(21 * day)
      [ Ast.event create_fine; Ast.event send_fine ];
    Ast.seq ~atleast:0 ~within:(14 * day)
      [ Ast.event send_fine; Ast.event insert_notification ];
    Ast.seq ~within:(60 * day)
      [
        Ast.event insert_notification;
        Ast.and_ ~atleast:10 ~within:480 [ Ast.event add_penalty; Ast.event payment ];
      ];
  ]

(* Cases flow through the process simulator rather than being arbitrary
   satisfying assignments: delays are sampled inside the query windows, so
   every simulated case matches {!patterns} while exhibiting realistic
   case-flow correlations. The penalty and the payment may come in either
   order (the AND semantics), so half the cases use each orientation. *)
let dep ~min_delay ~max_delay after = { Process_sim.after; min_delay; max_delay }

let act ?(requires = []) name = { Process_sim.name; requires; skip_probability = 0.0 }

let flow ~penalty_first =
  let first, second = if penalty_first then (add_penalty, payment) else (payment, add_penalty) in
  Process_sim.model_exn
    [
      act create_fine;
      act ~requires:[ dep ~min_delay:day ~max_delay:(21 * day) create_fine ] send_fine;
      act
        ~requires:[ dep ~min_delay:60 ~max_delay:(14 * day) send_fine ]
        insert_notification;
      act
        ~requires:[ dep ~min_delay:day ~max_delay:(40 * day) insert_notification ]
        first;
      act ~requires:[ dep ~min_delay:10 ~max_delay:480 first ] second;
    ]

let penalty_first_flow = flow ~penalty_first:true
let payment_first_flow = flow ~penalty_first:false

let generate prng ~tuples =
  let rec go i acc =
    if i = tuples then acc
    else
      let model =
        if Numeric.Prng.bool prng then penalty_first_flow else payment_first_flow
      in
      let start = Numeric.Prng.int_in prng 0 (30 * day) in
      let tuple = Process_sim.simulate_case ~start prng model in
      go (i + 1) (Events.Trace.add (Printf.sprintf "t%06d" i) tuple acc)
  in
  let trace = go 0 Events.Trace.empty in
  trace
