module Tuple = Events.Tuple

let choices { Condition.bound; over; _ } =
  List.map (fun e -> Condition.exact bound e) over

let full gammas =
  let rec product = function
    | [] -> Seq.return []
    | g :: rest ->
        let tails = product rest in
        Seq.concat_map
          (fun phi -> Seq.map (fun tail -> phi :: tail) tails)
          (List.to_seq (choices g))
  in
  product gammas

let count gammas =
  (* [over] sizes multiply fast (|Aleph_Gamma| is exponential in the number
     of AND nodes); saturate instead of silently wrapping negative. *)
  List.fold_left
    (fun acc g ->
      if acc = max_int then max_int
      else
        match Numeric.Checked.mul acc (List.length g.Condition.over) with
        | product -> product
        | exception Numeric.Checked.Overflow -> max_int)
    1 gammas

let count_is_exact gammas = count gammas <> max_int

let single t gammas =
  let pick { Condition.bound; over; kind } =
    (* Ties broken apart on purpose: [min] keeps the first minimal member,
       [max] the last maximal one, so that an all-equal AND does not pin its
       start and end points to the same event (which would make the
       grounded network infeasible for ATLEAST windows even though other
       bindings work). *)
    let better a b =
      match kind with Condition.Min -> a < b | Condition.Max -> a >= b
    in
    let best =
      match over with
      | [] -> invalid_arg "Bindings.single: empty binding"
      | e0 :: rest ->
          List.fold_left
            (fun best e -> if better (Tuple.find t e) (Tuple.find t best) then e else best)
            e0 rest
    in
    Condition.exact bound best
  in
  List.map pick gammas

let sample prng gammas =
  List.map
    (fun ({ Condition.bound; over; _ } as _g) ->
      let arr = Array.of_list over in
      Condition.exact bound (Numeric.Prng.choose prng arr))
    gammas
