(** Binding enumeration (Definitions 7 and 8).

    Each binding condition [gamma(E, S):min|max] is replaced by the
    disjunction of the interval conditions [phi(E, E_j):\[0,0\]] for
    [E_j in S] — pinning the artificial event to one member. The cartesian
    product over all binding conditions is the full binding space
    [Aleph_Gamma]; the single binding keeps only the member that attains
    the min/max in a reference tuple; randomized algorithms sample
    uniformly. *)

val choices : Condition.binding -> Condition.interval list
(** The disjuncts of one binding condition: [phi(E, E_j):\[0,0\]] for each
    member [E_j]. *)

val full : Condition.binding list -> Condition.interval list Seq.t
(** All of [Aleph_Gamma], lazily: each element gives one [\[0,0\]] interval
    condition per binding condition. The singleton empty list when
    [Gamma] is empty. *)

val count : Condition.binding list -> int
(** [|Aleph_Gamma|] = product of the [over] sizes, computed with
    overflow-checked multiplication ({!Numeric.Checked.mul}) and saturated
    at [max_int] — a count of [max_int] means "too many to represent", never
    a silently wrapped (possibly negative) product. Use {!count_is_exact} to
    distinguish saturation from an exact count. *)

val count_is_exact : Condition.binding list -> bool
(** Whether {!count} is the exact cardinality (i.e. did not saturate). *)

val single : Events.Tuple.t -> Condition.binding list -> Condition.interval list
(** The single binding of Definition 8 w.r.t. a reference tuple: for a
    [min] condition pick the member with the smallest reference timestamp
    (ties broken by list order), for [max] the largest. The tuple must bind
    every member — extend it first with {!Encode.extend} when artificial
    events are nested. *)

val sample : Numeric.Prng.t -> Condition.binding list -> Condition.interval list
(** One uniform sample from [Aleph_Gamma]. *)
