(** Interval and binding conditions (Definitions 3 and 4).

    An interval condition [phi (src, dst) : \[lo, hi\]] constrains the
    timestamp distance [t(dst) - t(src)] to lie in [\[lo, hi\]]; [hi = None]
    means unbounded above (the paper's [w], the maximum distance, taken as
    infinity). A binding condition [gamma (bound, over) : kind] forces
    [t(bound)] to equal the minimum (resp. maximum) timestamp among the
    events of [over]. *)

type interval = {
  src : Events.Event.t;
  dst : Events.Event.t;
  lo : Events.Time.t;
  hi : Events.Time.t option;  (** [None] = unbounded *)
}

val interval : ?hi:Events.Time.t -> ?lo:Events.Time.t -> Events.Event.t -> Events.Event.t -> interval
(** [interval ~lo ~hi src dst]; [lo] defaults to 0, [hi] to unbounded. *)

val exact : Events.Event.t -> Events.Event.t -> interval
(** [\[0, 0\]]: the two events are simultaneous (a full-binding choice). *)

val interval_holds : Events.Tuple.t -> interval -> bool
(** [t |= phi]; false if either event is unbound in the tuple. *)

val intervals_hold : Events.Tuple.t -> interval list -> bool

type binding_kind = Min | Max

type binding = {
  bound : Events.Event.t;
  over : Events.Event.t list;  (** non-empty *)
  kind : binding_kind;
}

val binding_holds : Events.Tuple.t -> binding -> bool
(** [t |= gamma]; false if any involved event is unbound. *)

val bindings_hold : Events.Tuple.t -> binding list -> bool

val interval_events : interval list -> Events.Event.Set.t
val binding_events : binding list -> Events.Event.Set.t

val pp_interval : Format.formatter -> interval -> unit
val pp_binding : Format.formatter -> binding -> unit
