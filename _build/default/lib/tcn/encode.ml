module Event = Events.Event
module Tuple = Events.Tuple
module Ast = Pattern.Ast

type t = {
  intervals : Condition.interval list;
  bindings : Condition.binding list;
  start_event : Event.t;
  end_event : Event.t;
  artificial : Event.Set.t;
}

(* The optional window [ATLEAST a] [WITHIN b] of a composite pattern becomes
   one interval condition phi(start, end):[a, b] — omitted entirely when the
   pattern carries no window (the [0, w] bound is already implied). *)
let window_interval start_event end_event (w : Ast.window) =
  match (w.atleast, w.within) with
  | None, None -> []
  | atleast, within ->
      [
        {
          Condition.src = start_event;
          dst = end_event;
          lo = Option.value atleast ~default:0;
          hi = within;
        };
      ]

let rec encode next_id = function
  | Ast.Event e ->
      ( { intervals = []; bindings = []; start_event = e; end_event = e;
          artificial = Event.Set.empty },
        next_id )
  | Ast.Seq (ps, w) ->
      let children, next_id =
        List.fold_left
          (fun (acc, id) p ->
            let enc, id = encode id p in
            (enc :: acc, id))
          ([], next_id) ps
      in
      let children = List.rev children in
      let rec chain = function
        | a :: (b :: _ as rest) ->
            Condition.interval a.end_event b.start_event :: chain rest
        | [ _ ] | [] -> []
      in
      let first = List.hd children and last = List.nth children (List.length children - 1) in
      let intervals =
        chain children
        @ List.concat_map (fun c -> c.intervals) children
        @ window_interval first.start_event last.end_event w
      in
      ( {
          intervals;
          bindings = List.concat_map (fun c -> c.bindings) children;
          start_event = first.start_event;
          end_event = last.end_event;
          artificial =
            List.fold_left
              (fun acc c -> Event.Set.union acc c.artificial)
              Event.Set.empty children;
        },
        next_id )
  | Ast.And (ps, w) ->
      let children, next_id =
        List.fold_left
          (fun (acc, id) p ->
            let enc, id = encode id p in
            (enc :: acc, id))
          ([], next_id) ps
      in
      let children = List.rev children in
      let s = Event.artificial_start next_id and e = Event.artificial_end next_id in
      let span_intervals =
        List.concat_map
          (fun c ->
            [ Condition.interval s c.start_event; Condition.interval c.end_event e ])
          children
      in
      let intervals =
        span_intervals
        @ List.concat_map (fun c -> c.intervals) children
        @ window_interval s e w
      in
      let bindings =
        List.concat_map (fun c -> c.bindings) children
        @ [
            { Condition.bound = s; over = List.map (fun c -> c.start_event) children;
              kind = Condition.Min };
            { Condition.bound = e; over = List.map (fun c -> c.end_event) children;
              kind = Condition.Max };
          ]
      in
      ( {
          intervals;
          bindings;
          start_event = s;
          end_event = e;
          artificial =
            List.fold_left
              (fun acc c -> Event.Set.union acc c.artificial)
              (Event.Set.of_list [ s; e ])
              children;
        },
        next_id + 1 )

let pattern ?(first_and_id = 0) p =
  (match Ast.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Encode.pattern: %a" Ast.pp_error e));
  fst (encode first_and_id p)

type set = {
  set_intervals : Condition.interval list;
  set_bindings : Condition.binding list;
  set_artificial : Event.Set.t;
}

let pattern_set ps =
  let encs, _ =
    List.fold_left
      (fun (acc, id) p ->
        (match Ast.validate p with
        | Ok () -> ()
        | Error e -> invalid_arg (Format.asprintf "Encode.pattern_set: %a" Ast.pp_error e));
        let enc, id = encode id p in
        (enc :: acc, id))
      ([], 0) ps
  in
  let encs = List.rev encs in
  {
    set_intervals = List.concat_map (fun e -> e.intervals) encs;
    set_bindings = List.concat_map (fun e -> e.bindings) encs;
    set_artificial =
      List.fold_left (fun acc e -> Event.Set.union acc e.artificial) Event.Set.empty encs;
  }

let extend set t =
  (* Bindings are listed bottom-up, so each [over] member is a real event or
     an artificial one already placed by an earlier binding. *)
  List.fold_left
    (fun t { Condition.bound; over; kind } ->
      let ts = List.map (fun e -> Tuple.find t e) over in
      let v =
        match kind with
        | Condition.Min -> List.fold_left min max_int ts
        | Condition.Max -> List.fold_left max min_int ts
      in
      Tuple.add bound v t)
    t set.set_bindings

let satisfies set t =
  match extend set t with
  | extended ->
      Condition.intervals_hold extended set.set_intervals
      && Condition.bindings_hold extended set.set_bindings
  | exception Not_found -> false
