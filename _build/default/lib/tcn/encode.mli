(** Encoding event patterns as complex temporal networks (Definition 5).

    A pattern becomes a pair (Phi, Gamma) of interval and binding conditions.
    Each AND node introduces two artificial events — its start point [AND^s]
    and end point [AND^e] — related to the children by [\[0, w\]] interval
    conditions and min/max binding conditions. Patterns without AND need no
    bindings and yield a simple temporal network directly (Definition 6).

    Satisfaction is preserved both ways (Proposition 5): [t |= p] iff the
    {!extend} of [t] satisfies all interval and binding conditions. *)

type t = {
  intervals : Condition.interval list;
  bindings : Condition.binding list;
      (** bottom-up: a binding's [over] events are either real or bound by an
          earlier binding of the list *)
  start_event : Events.Event.t;
  end_event : Events.Event.t;
  artificial : Events.Event.Set.t;
}

val pattern : ?first_and_id:int -> Pattern.Ast.t -> t
(** Encode one pattern. Artificial events are numbered from [first_and_id]
    (default 0). @raise Invalid_argument on an invalid pattern. *)

type set = {
  set_intervals : Condition.interval list;
  set_bindings : Condition.binding list;
  set_artificial : Events.Event.Set.t;
}

val pattern_set : Pattern.Ast.t list -> set
(** Encode a pattern set [P] as the union of the per-pattern networks
    (artificial events numbered apart). *)

val extend : set -> Events.Tuple.t -> Events.Tuple.t
(** Extend a tuple over the real events with the induced timestamps of all
    artificial events ([AND^s] = min of children starts, [AND^e] = max of
    children ends), making the binding conditions checkable.
    @raise Not_found if a required real event is unbound. *)

val satisfies : set -> Events.Tuple.t -> bool
(** [t |= (Phi, Gamma)] on the {!extend}ed tuple — the right-hand side of
    Proposition 5. [false] if some required event is unbound. *)
