lib/lp/simplex.mli: Format Numeric
