lib/numeric/checked.mli:
