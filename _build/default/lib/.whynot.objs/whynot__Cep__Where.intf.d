lib/cep/where.mli: Events Format
