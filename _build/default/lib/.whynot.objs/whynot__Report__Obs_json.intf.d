lib/report/obs_json.mli: Json Obs
