lib/events/time.ml: Format Printf String
