lib/explain/pipeline.ml: Consistency Events Format Modification Pattern Query_repair
