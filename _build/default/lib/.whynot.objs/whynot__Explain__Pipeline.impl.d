lib/explain/pipeline.ml: Consistency Events Format Modification Obs Pattern Query_repair
