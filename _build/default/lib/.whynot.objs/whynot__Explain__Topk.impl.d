lib/explain/topk.ml: Array Events Format Hashtbl List Lp_repair Option Pattern Tcn
