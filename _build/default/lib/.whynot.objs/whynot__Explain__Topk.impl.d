lib/explain/topk.ml: Events Format Hashtbl List Lp_repair Option Pattern Seq Tcn
