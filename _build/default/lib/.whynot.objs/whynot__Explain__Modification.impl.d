lib/explain/modification.ml: Events Flow_repair Format Lp_repair Numeric Obs Pattern Seq Tcn
