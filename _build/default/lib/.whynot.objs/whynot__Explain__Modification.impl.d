lib/explain/modification.ml: Bnb Events Flow_repair Format Hashtbl Lp_repair Numeric Obs Pattern Seq Tcn
