lib/explain/modification.mli: Events Pattern Tcn
