lib/datagen/scenarios.ml: Pattern Process_sim
