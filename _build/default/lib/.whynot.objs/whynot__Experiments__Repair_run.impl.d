lib/experiments/repair_run.ml: Cep Datagen Events Harness List Pattern Tcn
