lib/events/xes.ml: Buffer Fun In_channel List Printf Result String Trace Tuple
