lib/explain/lint.mli: Format Pattern
