lib/datagen/workloads.mli: Events Numeric Pattern
