lib/cep/bulk.ml: Array Domain Events Explain Format List Obs Option Pattern Tcn
