lib/cep/bulk.ml: Array Domain Events Explain Format List Option Pattern Tcn
