lib/explain/query_repair.ml: Events Format List Option Pattern String
