lib/lp/mcf.ml: Array List
