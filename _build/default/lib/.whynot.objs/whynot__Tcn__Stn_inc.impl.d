lib/tcn/stn_inc.ml: Array Condition Events List Obs Seq Stn
