lib/tcn/stn_inc.ml: Array Condition Events List Seq Stn
