lib/datagen/metrics.ml: Events List
