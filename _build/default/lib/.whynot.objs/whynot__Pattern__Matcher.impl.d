lib/pattern/matcher.ml: Ast Events Format List Result
