lib/pattern/matcher.mli: Ast Events Format
