lib/numeric/rat.ml: Checked Format Stdlib
