lib/explain/flow_repair.ml: Array Events List Logs Lp Lp_repair Option Seq Tcn
