lib/lp/ilp.mli: Numeric Simplex
