lib/datagen/workloads.ml: Events List Numeric Pattern Printf Seq Tcn
