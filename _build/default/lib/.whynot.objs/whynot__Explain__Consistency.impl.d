lib/explain/consistency.ml: Array Events List Numeric Pattern Seq Tcn
