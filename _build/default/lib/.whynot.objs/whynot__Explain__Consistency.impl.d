lib/explain/consistency.ml: Array Events List Numeric Obs Pattern Seq Tcn
