lib/events/trace.mli: Format Tuple
