lib/experiments/rtfm_sweep.ml: Datagen Harness List Numeric Printf Repair_run
