lib/explain/baselines.mli: Events Pattern
