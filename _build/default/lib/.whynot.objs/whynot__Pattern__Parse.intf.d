lib/pattern/parse.mli: Ast
