lib/events/trace.ml: Format List Map String Tuple
