lib/explain/pipeline.mli: Consistency Events Format Modification Pattern Query_repair
