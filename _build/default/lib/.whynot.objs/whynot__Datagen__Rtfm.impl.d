lib/datagen/rtfm.ml: Events Numeric Pattern Printf Process_sim
