lib/events/tuple.mli: Event Format Time
