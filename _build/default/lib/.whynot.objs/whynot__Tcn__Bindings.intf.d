lib/tcn/bindings.mli: Condition Events Numeric Seq
