lib/explain/consistency.mli: Events Pattern Tcn
