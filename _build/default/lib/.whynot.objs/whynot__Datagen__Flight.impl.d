lib/datagen/flight.ml: Events List Numeric Pattern Printf Workloads
