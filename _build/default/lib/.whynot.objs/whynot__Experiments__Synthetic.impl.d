lib/experiments/synthetic.ml: Datagen Harness List Numeric Repair_run
