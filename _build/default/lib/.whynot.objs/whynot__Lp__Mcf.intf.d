lib/lp/mcf.mli:
