lib/cep/bulk.mli: Events Explain Pattern
