lib/cep/query.ml: Events Explain Format List Pattern Set String Tcn
