lib/report/json.mli: Format
