lib/cep/where.ml: Array Events Format List Printf String
