lib/cep/stream.ml: Events Explain Format List Map Pattern String Tcn
