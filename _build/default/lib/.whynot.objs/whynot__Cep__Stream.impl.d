lib/cep/stream.ml: Events Explain Format List Map Obs Pattern String Tcn
