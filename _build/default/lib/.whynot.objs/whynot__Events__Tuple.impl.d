lib/events/tuple.ml: Event Format Int List Time
