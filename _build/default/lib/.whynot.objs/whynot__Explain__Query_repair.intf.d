lib/explain/query_repair.mli: Events Format Pattern
