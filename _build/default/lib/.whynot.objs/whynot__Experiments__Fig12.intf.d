lib/experiments/fig12.mli: Cep
