lib/numeric/checked.ml: Stdlib
