lib/experiments/ablation.ml: Datagen Events Explain Harness List Numeric Pattern Printf Tcn
