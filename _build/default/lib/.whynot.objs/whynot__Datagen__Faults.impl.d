lib/datagen/faults.ml: Events Numeric
