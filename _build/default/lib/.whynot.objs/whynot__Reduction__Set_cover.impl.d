lib/reduction/set_cover.ml: Array Events Fun List Numeric Option Pattern Printf
