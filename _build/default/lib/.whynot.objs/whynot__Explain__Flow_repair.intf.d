lib/explain/flow_repair.mli: Events Lp_repair Tcn
