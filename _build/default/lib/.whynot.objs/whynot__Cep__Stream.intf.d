lib/cep/stream.mli: Events Explain Pattern
