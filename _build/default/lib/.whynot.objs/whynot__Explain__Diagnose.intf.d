lib/explain/diagnose.mli: Events Format Pattern
