lib/report/render.ml: Events Explain Json List Pattern
