lib/datagen/scenarios.mli: Events Numeric Pattern Process_sim
