lib/events/event.ml: Format Map Printf Set String
