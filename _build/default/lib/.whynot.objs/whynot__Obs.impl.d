lib/obs.ml: Array Atomic Fun Hashtbl List Mutex Option Printf Stdlib String Unix
