lib/tcn/encode.mli: Condition Events Pattern
