lib/pattern/ast.ml: Events Format List Option Result Stdlib
