lib/explain/bnb.mli: Events Lp_repair Tcn
