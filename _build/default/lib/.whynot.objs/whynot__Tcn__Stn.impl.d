lib/tcn/stn.ml: Array Condition Events List Seq
