lib/experiments/fig6.ml: Datagen Harness List Numeric Repair_run
