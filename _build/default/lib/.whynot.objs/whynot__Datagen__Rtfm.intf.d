lib/datagen/rtfm.mli: Events Numeric Pattern
