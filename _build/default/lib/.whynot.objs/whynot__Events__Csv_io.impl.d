lib/events/csv_io.ml: Buffer Fun In_channel List Printf String Trace Tuple
