lib/lp/simplex.ml: Array Format List Numeric Obs
