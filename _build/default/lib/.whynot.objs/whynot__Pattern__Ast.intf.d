lib/pattern/ast.mli: Events Format
