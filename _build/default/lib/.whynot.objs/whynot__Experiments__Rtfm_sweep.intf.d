lib/experiments/rtfm_sweep.mli: Harness Repair_run
