lib/experiments/synthetic.mli: Pattern Repair_run
