lib/tcn/bindings.ml: Array Condition Events List Numeric Seq
