lib/explain/topk.mli: Events Pattern Tcn
