lib/events/event.mli: Format Map Set
