lib/pattern/parse.ml: Array Ast Events Format List Printf Result String
