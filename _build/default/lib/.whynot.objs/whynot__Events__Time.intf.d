lib/events/time.mli: Format
