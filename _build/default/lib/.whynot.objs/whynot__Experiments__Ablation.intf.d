lib/experiments/ablation.mli:
