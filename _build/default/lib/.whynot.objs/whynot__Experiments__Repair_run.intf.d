lib/experiments/repair_run.mli: Events Harness Pattern
