lib/numeric/prng.ml: Array Int64
