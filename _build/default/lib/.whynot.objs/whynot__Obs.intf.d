lib/obs.mli:
