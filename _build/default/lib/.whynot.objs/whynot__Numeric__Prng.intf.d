lib/numeric/prng.mli:
