lib/explain/lp_repair.ml: Array Events List Lp Numeric Tcn
