lib/events/csv_io.mli: Trace
