lib/reduction/sat.mli: Events Format Numeric Pattern
