lib/datagen/process_sim.mli: Events Numeric
