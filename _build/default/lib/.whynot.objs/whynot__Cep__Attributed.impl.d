lib/cep/attributed.ml: Events List Map Pattern String Where
