lib/cep/sql.ml: Events Format List Pattern Printf Seq String Tcn
