lib/experiments/fig6.mli: Repair_run
