lib/events/xes.mli: Time Trace
