lib/experiments/table2.ml: Datagen Explain Harness List Numeric Option Pattern Printf Tcn
