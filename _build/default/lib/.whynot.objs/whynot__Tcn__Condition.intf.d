lib/tcn/condition.mli: Events Format
