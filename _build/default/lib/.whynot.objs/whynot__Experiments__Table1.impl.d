lib/experiments/table1.ml: Events Explain Harness Option Pattern
