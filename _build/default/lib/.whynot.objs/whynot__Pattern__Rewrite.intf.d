lib/pattern/rewrite.mli: Ast
