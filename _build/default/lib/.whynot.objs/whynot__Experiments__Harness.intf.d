lib/experiments/harness.mli: Events Pattern Tcn
