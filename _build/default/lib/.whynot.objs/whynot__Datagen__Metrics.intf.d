lib/datagen/metrics.mli: Events
