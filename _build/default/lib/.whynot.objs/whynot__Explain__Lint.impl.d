lib/explain/lint.ml: Consistency Events Format List Option Pattern Printf Seq String Tcn
