lib/lp/ilp.ml: Array Numeric Simplex
