lib/cep/sql.mli: Events Pattern
