lib/report/render.mli: Events Explain Json Pattern
