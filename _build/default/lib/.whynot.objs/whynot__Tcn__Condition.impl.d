lib/tcn/condition.ml: Events Format Fun List Option
