lib/explain/possible_worlds.ml: Events List Numeric Pattern Printf
