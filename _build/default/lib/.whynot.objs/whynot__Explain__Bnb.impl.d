lib/explain/bnb.ml: Array Atomic Domain Events Fun List Lp_repair Obs Seq Tcn
