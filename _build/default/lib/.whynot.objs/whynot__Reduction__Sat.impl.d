lib/reduction/sat.ml: Array Events Format Fun List Numeric Pattern Printf
