lib/cep/detector.ml: Events Explain Format List Obs Pattern Tcn
