lib/cep/detector.ml: Events Explain Format List Pattern Tcn
