lib/tcn/encode.ml: Condition Events Format List Option Pattern
