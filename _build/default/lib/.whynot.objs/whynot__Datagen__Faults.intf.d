lib/datagen/faults.mli: Events Numeric
