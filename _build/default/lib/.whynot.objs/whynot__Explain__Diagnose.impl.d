lib/explain/diagnose.ml: Events Format Hashtbl List Modification Option Pattern String Tcn
