lib/numeric/rat.mli: Format
