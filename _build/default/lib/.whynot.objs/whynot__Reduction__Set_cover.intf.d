lib/reduction/set_cover.mli: Events Numeric Pattern
