lib/explain/lp_repair.mli: Events Tcn
