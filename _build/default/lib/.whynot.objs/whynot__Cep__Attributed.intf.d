lib/cep/attributed.mli: Events Pattern Where
