lib/datagen/flight.mli: Events Numeric Pattern
