lib/explain/baselines.ml: Events List Option Pattern Tcn
