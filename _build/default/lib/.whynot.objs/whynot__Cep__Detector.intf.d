lib/cep/detector.mli: Events Pattern
