lib/experiments/fig5.ml: Datagen Explain Harness Hashtbl List Option Printf
