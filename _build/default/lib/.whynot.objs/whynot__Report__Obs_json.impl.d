lib/report/obs_json.ml: Json List Obs
