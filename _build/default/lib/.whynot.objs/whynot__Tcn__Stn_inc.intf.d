lib/tcn/stn_inc.mli: Condition Events
