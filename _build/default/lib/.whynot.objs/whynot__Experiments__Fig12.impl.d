lib/experiments/fig12.ml: Cep Datagen Events Explain Harness List Numeric Pattern Printf
