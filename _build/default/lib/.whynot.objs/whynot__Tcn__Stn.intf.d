lib/tcn/stn.mli: Condition Events
