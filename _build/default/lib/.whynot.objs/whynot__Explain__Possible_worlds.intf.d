lib/explain/possible_worlds.mli: Events Numeric Pattern
