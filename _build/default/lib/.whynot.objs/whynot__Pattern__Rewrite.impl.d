lib/pattern/rewrite.ml: Ast List
