lib/report/json.ml: Buffer Char Float Format List Printf String
