lib/cep/query.mli: Events Explain Format Pattern
