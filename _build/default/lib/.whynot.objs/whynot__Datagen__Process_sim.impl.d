lib/datagen/process_sim.ml: Events Hashtbl List Numeric Printf Result
