lib/experiments/harness.ml: Buffer Char Explain Filename Fun List Option Printf String Sys Unix
