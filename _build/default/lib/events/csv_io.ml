let header = "tuple_id,event,timestamp"

let trace_to_string trace =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.fold
    (fun id tuple () ->
      List.iter
        (fun (e, ts) -> Buffer.add_string buf (Printf.sprintf "%s,%s,%d\n" id e ts))
        (Tuple.bindings tuple))
    trace ();
  Buffer.contents buf

let parse_line lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ id; e; ts ] -> (
      match int_of_string_opt (String.trim ts) with
      | Some ts -> Ok (String.trim id, String.trim e, ts)
      | None -> Error (Printf.sprintf "line %d: bad timestamp %S" lineno ts))
  | _ -> Error (Printf.sprintf "line %d: expected 3 comma-separated fields" lineno)

let trace_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok acc
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || (lineno = 1 && trimmed = header) then go (lineno + 1) acc rest
        else (
          match parse_line lineno trimmed with
          | Error _ as e -> e
          | Ok (id, e, ts) ->
              let tuple =
                match Trace.find_opt acc id with Some t -> t | None -> Tuple.empty
              in
              go (lineno + 1) (Trace.add id (Tuple.add e ts tuple) acc) rest)
  in
  go 1 Trace.empty lines

let write_trace path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_to_string trace))

let read_trace path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> trace_of_string s
  | exception Sys_error msg -> Error msg
