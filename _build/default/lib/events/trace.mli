(** Traces: identified collections of tuples (an event log).

    A trace stores one tuple per identifier (e.g. one tuple per day of
    flights, or one tuple per road-traffic-fine case). It is the unit the
    benchmarks sweep over ("tuple number") and the input of the CEP query
    evaluator. *)

type t

val empty : t
val add : string -> Tuple.t -> t -> t
(** [add id tuple trace] binds [id]; replaces an existing binding. *)

val find_opt : t -> string -> Tuple.t option
val cardinal : t -> int
val ids : t -> string list
(** Identifiers in increasing order. *)

val bindings : t -> (string * Tuple.t) list
val of_list : (string * Tuple.t) list -> t
val map : (string -> Tuple.t -> Tuple.t) -> t -> t
val fold : (string -> Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (string -> Tuple.t -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
