type t = int

let of_hm s =
  match String.index_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Time.of_hm: missing ':' in %S" s)
  | Some i -> (
      let h = String.sub s 0 i and m = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt h, int_of_string_opt m) with
      | Some h, Some m when m >= 0 && m < 60 && h >= 0 -> (h * 60) + m
      | _ -> invalid_arg (Printf.sprintf "Time.of_hm: bad time %S" s))

let to_hm t = Printf.sprintf "%d:%02d" (t / 60) (t mod 60)
let pp = Format.pp_print_int
let pp_hm ppf t = Format.pp_print_string ppf (to_hm t)
