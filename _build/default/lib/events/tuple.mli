(** Tuples of event instances.

    A tuple [t] is the one-to-one mapping from events to occurrence
    timestamps of Section 2 of the paper: each event in the tuple occurs
    exactly once, at [find t e]. Tuples are immutable; timestamp
    modification produces a new tuple and {!delta} measures the L1
    modification cost of Formula 1. *)

type t

val empty : t
val is_empty : t -> bool
val add : Event.t -> Time.t -> t -> t
(** [add e ts t] binds [e] to [ts], replacing any previous binding. *)

val remove : Event.t -> t -> t
val find : t -> Event.t -> Time.t
(** @raise Not_found if the event is absent. *)

val find_opt : t -> Event.t -> Time.t option
val mem : Event.t -> t -> bool
val cardinal : t -> int
val events : t -> Event.t list
(** Events in increasing name order. *)

val bindings : t -> (Event.t * Time.t) list
val of_list : (Event.t * Time.t) list -> t
val map : (Event.t -> Time.t -> Time.t) -> t -> t
val fold : (Event.t -> Time.t -> 'a -> 'a) -> t -> 'a -> 'a
val union_right : t -> t -> t
(** [union_right a b] contains all bindings of both; [b] wins on clashes. *)

val restrict : Event.Set.t -> t -> t
(** Keep only the bindings whose event is in the set. *)

val equal : t -> t -> bool

val delta : t -> t -> int
(** [delta t t'] is the modification cost
    [sum_i |t[Ei] - t'[Ei]|] of Formula 1, over the union of events bound in
    either tuple. Artificial events (per {!Event.is_artificial}) are excluded
    — they are bookkeeping of the encoding, not data. An event bound in only
    one of the two tuples contributes nothing (it was introduced, not
    modified). *)

val diff : t -> t -> (Event.t * Time.t * Time.t) list
(** [diff t t'] lists the (real) events whose timestamps differ, as
    [(event, old, new)], in event order. *)

val pp : Format.formatter -> t -> unit
val pp_hm : Format.formatter -> t -> unit
