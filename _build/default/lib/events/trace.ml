module M = Map.Make (String)

type t = Tuple.t M.t

let empty = M.empty
let add = M.add
let find_opt t id = M.find_opt id t
let cardinal = M.cardinal
let ids t = List.map fst (M.bindings t)
let bindings = M.bindings
let of_list l = List.fold_left (fun acc (id, tup) -> add id tup acc) empty l
let map f t = M.mapi f t
let fold = M.fold
let filter = M.filter

let pp ppf t =
  let pp_entry ppf (id, tup) = Format.fprintf ppf "%s: %a" id Tuple.pp tup in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (bindings t)
