(** XES event-log interop (IEEE 1849, the process-mining log format).

    The paper's RTFM dataset is published as an XES log; this module reads
    and writes the subset needed to exchange traces with process-mining
    tooling: one [<trace>] per tuple (id from the trace's [concept:name]),
    one [<event>] per event instance ([concept:name] = event,
    [time:timestamp] = ISO-8601 date, imported at minute resolution as
    minutes since the Unix epoch). Other attributes are ignored on import;
    export writes the canonical two attributes.

    A tuple binds each event once, so on import a repeated activity inside
    one trace keeps its {e first} occurrence (later repeats are dropped and
    counted). The XML parser handles exactly the XES shape: elements,
    attributes, self-closing tags, XML declarations and comments. *)

val of_string : string -> (Trace.t * int, string) result
(** Parse a log; returns the trace and the number of dropped repeated
    events. *)

val to_string : Trace.t -> string
(** Render as an XES document (traces and events in deterministic order,
    events by timestamp). *)

val read_file : string -> (Trace.t * int, string) result
val write_file : string -> Trace.t -> unit

val minutes_of_iso8601 : string -> (Time.t, string) result
(** ["2020-01-31T10:30:00..."] to minutes since the Unix epoch (seconds and
    timezone suffixes are accepted and ignored — minute resolution). *)

val iso8601_of_minutes : Time.t -> string
(** Inverse, rendered as UTC with seconds zero. *)
