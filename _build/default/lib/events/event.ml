type t = string

let compare = String.compare
let equal = String.equal
let pp = Format.pp_print_string

(* The '$' prefix cannot appear in parsed pattern identifiers, so reserved
   names can never collide with user events. *)
let artificial_start id = Printf.sprintf "$and%d.s" id
let artificial_end id = Printf.sprintf "$and%d.e" id
let is_artificial e = String.length e > 0 && e.[0] = '$'

let repeat_alias ~base ~group ~index = Printf.sprintf "%s#%d_%d" base group index

let alias_info e =
  match String.index_opt e '#' with
  | None -> None
  | Some hash -> (
      let base = String.sub e 0 hash in
      let rest = String.sub e (hash + 1) (String.length e - hash - 1) in
      match String.index_opt rest '_' with
      | None -> None
      | Some us -> (
          match
            ( int_of_string_opt (String.sub rest 0 us),
              int_of_string_opt (String.sub rest (us + 1) (String.length rest - us - 1))
            )
          with
          | Some group, Some index when base <> "" && group >= 0 && index >= 1 ->
              Some (base, group, index)
          | _ -> None))

module Set = Set.Make (String)
module Map = Map.Make (String)
