(** Integer timestamps.

    The domain [T] of the paper: non-negative integers. The unit is
    deliberately abstract (the experiments use minutes); helpers convert
    to and from "HH:MM" clock strings for the flight examples. *)

type t = int

val of_hm : string -> t
(** [of_hm "17:08"] is [17*60 + 8]. @raise Invalid_argument on bad syntax. *)

val to_hm : t -> string
(** Inverse of {!of_hm} modulo 24h wrapping is NOT applied: [to_hm 1448]
    is ["24:08"], preserving day arithmetic in examples. *)

val pp : Format.formatter -> t -> unit
val pp_hm : Format.formatter -> t -> unit
