(** CSV import/export of traces.

    Long format, one event instance per line: [tuple_id,event,timestamp].
    A header line ["tuple_id,event,timestamp"] is written on export and
    skipped on import when present. This is the interchange format of the
    [whynot] CLI. *)

val trace_to_string : Trace.t -> string
val trace_of_string : string -> (Trace.t, string) result
(** Parse; [Error msg] points at the first offending line. *)

val write_trace : string -> Trace.t -> unit
(** [write_trace path trace] writes the CSV file at [path]. *)

val read_trace : string -> (Trace.t, string) result
(** [read_trace path] reads the CSV file at [path]; [Error] on I/O or
    parse failure. *)
