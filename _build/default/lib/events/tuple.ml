type t = Time.t Event.Map.t

let empty = Event.Map.empty
let is_empty = Event.Map.is_empty
let add = Event.Map.add
let remove = Event.Map.remove
let find t e = Event.Map.find e t
let find_opt t e = Event.Map.find_opt e t
let mem = Event.Map.mem
let cardinal = Event.Map.cardinal
let events t = List.map fst (Event.Map.bindings t)
let bindings = Event.Map.bindings
let of_list l = List.fold_left (fun acc (e, ts) -> add e ts acc) empty l
let map f t = Event.Map.mapi f t
let fold = Event.Map.fold
let union_right a b = Event.Map.union (fun _ _ vb -> Some vb) a b
let restrict set t = Event.Map.filter (fun e _ -> Event.Set.mem e set) t
let equal = Event.Map.equal Int.equal

let delta t t' =
  let cost e ts acc =
    if Event.is_artificial e then acc
    else
      match Event.Map.find_opt e t' with
      | None -> acc
      | Some ts' -> acc + abs (ts - ts')
  in
  Event.Map.fold cost t 0

let diff t t' =
  Event.Map.fold
    (fun e ts acc ->
      if Event.is_artificial e then acc
      else
        match Event.Map.find_opt e t' with
        | Some ts' when ts' <> ts -> (e, ts, ts') :: acc
        | _ -> acc)
    t []
  |> List.rev

let pp_with pp_time ppf t =
  let pp_binding ppf (e, ts) = Format.fprintf ppf "%a=%a" Event.pp e pp_time ts in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_binding)
    (bindings t)

let pp = pp_with Time.pp
let pp_hm = pp_with Time.pp_hm
