(** Event identifiers.

    An event (in the paper's sense, e.g. "arrival of flight UA104") is named
    by a string. Artificial events introduced by the complex-temporal-network
    encoding of AND patterns (the [AND^s]/[AND^e] start and end points) are
    regular events with reserved names, distinguished by {!is_artificial}
    so that cost functions and explanations can ignore them. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val artificial_start : int -> t
(** [artificial_start id] is the reserved name of the start point
    [AND^s] of the AND pattern numbered [id]. *)

val artificial_end : int -> t
(** [artificial_end id] is the reserved name of the end point [AND^e]. *)

val is_artificial : t -> bool
(** Whether the event was introduced by the encoding (not user data). *)

val repeat_alias : base:t -> group:int -> index:int -> t
(** The [index]-th copy (1-based) of event type [base] produced by the
    [group]-th [REPEAT] node of a query — a regular event named
    ["base#<group>_<index>"]. ['#'] cannot occur in parsed identifiers, so
    aliases never collide with user events. *)

val alias_info : t -> (t * int * int) option
(** [Some (base, group, index)] when the event is a repeat alias. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
