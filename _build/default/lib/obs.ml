type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bounds : int array; (* strictly increasing upper bounds *)
  buckets : int Atomic.t array; (* length bounds + 1; last = +inf *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

type span = {
  s_count : int Atomic.t;
  total_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram
  | Span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"
  | Span _ -> "span"

(* Get-or-create under the registry lock; the returned handle is then
   updated lock-free. Handles are meant to be obtained once (at module
   initialisation), so this lock is never on a hot path. *)
let register name make select =
  Mutex.lock lock;
  let metric =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry name m;
        m
  in
  Mutex.unlock lock;
  match select metric with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs: %S is already registered as a %s" name
           (kind_name metric))

let counter name =
  register name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0))
    (function Gauge g -> Some g | _ -> None)

let default_buckets =
  [| 0; 1; 2; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000 |]

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Obs.histogram: bucket bounds must be strictly increasing")
    buckets;
  register name
    (fun () ->
      Hist
        {
          bounds = Array.copy buckets;
          buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
        })
    (function Hist h -> Some h | _ -> None)

let span name =
  register name
    (fun () ->
      Span { s_count = Atomic.make 0; total_ns = Atomic.make 0; max_ns = Atomic.make 0 })
    (function Span s -> Some s | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge_set g v = Atomic.set g v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let gauge_max g v = atomic_max g v
let gauge_value g = Atomic.get g

let observe h v =
  (* Bounds arrays are short (tens of cells); a linear scan beats binary
     search at this size and stays branch-predictable. *)
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  Atomic.incr h.buckets.(!i);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v)

let with_span name f =
  let s = span name in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      let ns = int_of_float (dt *. 1e9) in
      Atomic.incr s.s_count;
      ignore (Atomic.fetch_and_add s.total_ns ns);
      atomic_max s.max_ns ns)
    f

let find_counter name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock lock;
  match r with Some (Counter c) -> Some (Atomic.get c) | _ -> None

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | Counter c | Gauge c -> Atomic.set c 0
      | Hist h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0
      | Span s ->
          Atomic.set s.s_count 0;
          Atomic.set s.total_ns 0;
          Atomic.set s.max_ns 0)
    registry;
  Mutex.unlock lock

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_buckets : (int option * int) list;
}

type span_snapshot = { s_count : int; total_ns : int; max_ns : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
  spans : (string * span_snapshot) list;
}

let snapshot () =
  Mutex.lock lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock lock;
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let section pred = List.filter_map (fun (name, m) -> Option.map (fun v -> (name, v)) (pred m)) entries in
  {
    counters = section (function Counter c -> Some (Atomic.get c) | _ -> None);
    gauges = section (function Gauge g -> Some (Atomic.get g) | _ -> None);
    histograms =
      section (function
        | Hist h ->
            Some
              {
                h_count = Atomic.get h.h_count;
                h_sum = Atomic.get h.h_sum;
                h_buckets =
                  List.init (Array.length h.buckets) (fun i ->
                      ( (if i < Array.length h.bounds then Some h.bounds.(i) else None),
                        Atomic.get h.buckets.(i) ));
              }
        | _ -> None);
    spans =
      section (function
        | Span s ->
            Some
              {
                s_count = Atomic.get s.s_count;
                total_ns = Atomic.get s.total_ns;
                max_ns = Atomic.get s.max_ns;
              }
        | _ -> None);
  }
