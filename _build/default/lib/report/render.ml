module Tuple = Events.Tuple
module Event = Events.Event

let tuple t =
  Json.Obj
    (Tuple.fold
       (fun e ts acc -> if Event.is_artificial e then acc else (e, Json.Int ts) :: acc)
       t []
    |> List.rev)

let diff ~before ~after =
  Json.List
    (List.map
       (fun (e, o, n) ->
         Json.Obj [ ("event", Json.String e); ("from", Json.Int o); ("to", Json.Int n) ])
       (Tuple.diff before after))

let consistency (r : Explain.Consistency.report) =
  Json.Obj
    ([
       ("consistent", Json.Bool r.consistent);
       ("bindings_checked", Json.Int r.bindings_checked);
       ("exact", Json.Bool r.exact);
     ]
    @ match r.witness with Some w -> [ ("witness", tuple w) ] | None -> [])

let modification ~original (r : Explain.Modification.result) =
  Json.Obj
    [
      ("cost", Json.Int r.cost);
      ("bindings_tried", Json.Int r.bindings_tried);
      ("exact", Json.Bool r.exact);
      ("changes", diff ~before:original ~after:r.repaired);
      ("repaired", tuple r.repaired);
    ]

let window (w : Pattern.Ast.window) =
  Json.Obj
    ((match w.atleast with Some a -> [ ("atleast", Json.Int a) ] | None -> [])
    @ match w.within with Some b -> [ ("within", Json.Int b) ] | None -> [])

let query_repair (r : Explain.Query_repair.t) =
  Json.Obj
    [
      ("cost", Json.Int r.cost);
      ( "patterns",
        Json.List (List.map (fun p -> Json.String (Pattern.Ast.to_string p)) r.patterns)
      );
      ( "changes",
        Json.List
          (List.map
             (fun (c : Explain.Query_repair.window_change) ->
               Json.Obj
                 [
                   ( "path",
                     Json.List (List.map (fun i -> Json.Int i) c.path) );
                   ("node", Json.String (Pattern.Ast.to_string c.node));
                   ("old_window", window c.old_window);
                   ("new_window", window c.new_window);
                   ("cost", Json.Int c.change_cost);
                 ])
             r.changes) );
    ]

let topk ~original (r : Explain.Topk.t) =
  Json.Obj
    [
      ("bindings_tried", Json.Int r.bindings_tried);
      ( "candidates",
        Json.List
          (List.map
             (fun (c : Explain.Topk.candidate) ->
               Json.Obj
                 [
                   ("cost", Json.Int c.cost);
                   ("changes", diff ~before:original ~after:c.repaired);
                 ])
             r.candidates) );
      ( "blame",
        Json.List
          (List.map
             (fun (b : Explain.Topk.blame) ->
               Json.Obj
                 [
                   ("event", Json.String b.event);
                   ("frequency", Json.Float b.frequency);
                   ("mean_shift", Json.Float b.mean_shift);
                 ])
             r.blames) );
    ]

let matcher_failure = function
  | Pattern.Matcher.Missing_event e ->
      Json.Obj [ ("kind", Json.String "missing_event"); ("event", Json.String e) ]
  | Pattern.Matcher.Order_violation (a, b) ->
      Json.Obj
        [
          ("kind", Json.String "order_violation");
          ("first", Json.String (Pattern.Ast.to_string a));
          ("second", Json.String (Pattern.Ast.to_string b));
        ]
  | Pattern.Matcher.Window_violation (p, { start; stop }) ->
      Json.Obj
        [
          ("kind", Json.String "window_violation");
          ("pattern", Json.String (Pattern.Ast.to_string p));
          ("start", Json.Int start);
          ("stop", Json.Int stop);
        ]

let pipeline ~original = function
  | Explain.Pipeline.Already_answer ->
      Json.Obj [ ("outcome", Json.String "already_answer") ]
  | Explain.Pipeline.Inconsistent_query r ->
      Json.Obj
        [ ("outcome", Json.String "inconsistent_query"); ("consistency", consistency r) ]
  | Explain.Pipeline.Modify_timestamps r ->
      Json.Obj
        [
          ("outcome", Json.String "modify_timestamps");
          ("explanation", modification ~original r);
        ]
  | Explain.Pipeline.Modify_query r ->
      Json.Obj
        [ ("outcome", Json.String "modify_query"); ("explanation", query_repair r) ]
  | Explain.Pipeline.No_explanation ->
      Json.Obj [ ("outcome", Json.String "no_explanation") ]

let failure_class (c : Explain.Diagnose.failure_class) =
  Json.Obj
    [
      ("description", Json.String c.description);
      ("tuples", Json.List (List.map (fun id -> Json.String id) c.tuples));
    ]

let diagnose (d : Explain.Diagnose.t) =
  Json.Obj
    [
      ("total", Json.Int d.total);
      ("answers", Json.Int d.answers);
      ("missing_events", Json.List (List.map failure_class d.missing_events));
      ("order_violations", Json.List (List.map failure_class d.order_violations));
      ("window_violations", Json.List (List.map failure_class d.window_violations));
      ( "repair_costs",
        Json.Obj (List.map (fun (id, c) -> (id, Json.Int c)) d.repair_costs) );
      ( "median_repair_cost",
        match d.median_repair_cost with Some m -> Json.Int m | None -> Json.Null );
    ]
