(** JSON renderings of the library's results — the machine-readable side of
    the [whynot] CLI ([--json]) and of downstream tooling (dashboards,
    notebooks plotting the benchmark series). All renderings are plain data
    (no identifiers invented here beyond field names). *)

val tuple : Events.Tuple.t -> Json.t
(** Object mapping event names to timestamps (artificial events omitted). *)

val diff : before:Events.Tuple.t -> after:Events.Tuple.t -> Json.t
(** List of [{event, from, to}] objects for the modified events. *)

val consistency : Explain.Consistency.report -> Json.t
val modification : original:Events.Tuple.t -> Explain.Modification.result -> Json.t
val query_repair : Explain.Query_repair.t -> Json.t
val topk : original:Events.Tuple.t -> Explain.Topk.t -> Json.t
val pipeline : original:Events.Tuple.t -> Explain.Pipeline.outcome -> Json.t
val diagnose : Explain.Diagnose.t -> Json.t
val matcher_failure : Pattern.Matcher.failure -> Json.t
