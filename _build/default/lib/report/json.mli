(** Minimal JSON values and serialization (no external dependency exists in
    the sealed environment). Output is deterministic: object fields keep
    insertion order, strings are escaped per RFC 8259, and only the integer
    and float shapes produced by this library are emitted. A small parser
    is included for round-trip testing and for tools consuming the CLI's
    [--json] output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] > 0 pretty-prints with that step (default compact). *)

val pp : Format.formatter -> t -> unit
(** Compact form. *)

val of_string : string -> (t, string) result
(** Parse a JSON document (numbers with '.', 'e' or 'E' become [Float],
    others [Int]). *)

val member : string -> t -> t option
(** Field of an object, [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
val to_list : t -> t list option
val to_string_opt : t -> string option
val to_bool : t -> bool option
