let hist (h : Obs.hist_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Int h.h_sum);
      ( "buckets",
        Json.List
          (List.map
             (fun (bound, n) ->
               Json.Obj
                 [
                   ( "le",
                     match bound with
                     | Some b -> Json.Int b
                     | None -> Json.String "inf" );
                   ("n", Json.Int n);
                 ])
             h.h_buckets) );
    ]

let span (s : Obs.span_snapshot) =
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("total_ms", Json.Float (float_of_int s.total_ns /. 1e6));
      ("max_ms", Json.Float (float_of_int s.max_ns /. 1e6));
    ]

let render ?(timers = true) (snap : Obs.snapshot) =
  let obj section f = Json.Obj (List.map (fun (name, v) -> (name, f v)) section) in
  Json.Obj
    (("counters", obj snap.counters (fun n -> Json.Int n))
    :: ("gauges", obj snap.gauges (fun n -> Json.Int n))
    :: ("histograms", obj snap.histograms hist)
    :: (if timers then [ ("spans", obj snap.spans span) ] else []))

let snapshot ?timers () = render ?timers (Obs.snapshot ())
