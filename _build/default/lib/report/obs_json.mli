(** JSON rendering of {!Obs} metric snapshots.

    Schema (see [docs/OBSERVABILITY.md]):
    {v
    { "counters":   { "<name>": <int>, ... },
      "gauges":     { "<name>": <int>, ... },
      "histograms": { "<name>": { "count": n, "sum": s,
                                  "buckets": [ {"le": <int|"inf">, "n": k}, ... ] } },
      "spans":      { "<name>": { "count": n, "total_ms": f, "max_ms": f } } }
    v}
    Names are sorted; with [~timers:false] the [spans] section is
    omitted and the output is deterministic for a given workload. *)

val render : ?timers:bool -> Obs.snapshot -> Json.t
(** [timers] defaults to [true]. *)

val snapshot : ?timers:bool -> unit -> Json.t
(** [render] of {!Obs.snapshot}[ ()]. *)
