open Whynot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh
    && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

(* Global registry: each test resets all metrics first; names are
   namespaced under "test." to avoid colliding with engine metrics. *)

let test_counter_semantics () =
  let c = Obs.counter "test.counter" in
  Obs.reset ();
  check_int "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.add c 5;
  check_int "incr + add" 6 (Obs.value c);
  (* get-or-create returns the same cell *)
  let c' = Obs.counter "test.counter" in
  Obs.incr c';
  check_int "same cell via re-registration" 7 (Obs.value c);
  check_bool "find_counter" true (Obs.find_counter "test.counter" = Some 7);
  check_bool "find_counter missing" true (Obs.find_counter "test.nosuch" = None)

let test_kind_clash_rejected () =
  ignore (Obs.counter "test.clash");
  check_bool "gauge over counter name raises" true
    (try ignore (Obs.gauge "test.clash"); false with Invalid_argument _ -> true);
  check_bool "histogram over counter name raises" true
    (try ignore (Obs.histogram "test.clash"); false with Invalid_argument _ -> true)

let test_gauge_semantics () =
  let g = Obs.gauge "test.gauge" in
  Obs.reset ();
  Obs.gauge_set g 5;
  check_int "set" 5 (Obs.gauge_value g);
  Obs.gauge_max g 3;
  check_int "max keeps larger" 5 (Obs.gauge_value g);
  Obs.gauge_max g 9;
  check_int "max raises" 9 (Obs.gauge_value g)

let find_hist name (snap : Obs.snapshot) =
  match List.assoc_opt name snap.histograms with
  | Some h -> h
  | None -> Alcotest.failf "histogram %s not in snapshot" name

let test_histogram_buckets () =
  let h = Obs.histogram ~buckets:[| 10; 20 |] "test.hist" in
  Obs.reset ();
  List.iter (Obs.observe h) [ 5; 10; 15; 99 ];
  let hs = find_hist "test.hist" (Obs.snapshot ()) in
  check_int "count" 4 hs.Obs.h_count;
  check_int "sum" 129 hs.Obs.h_sum;
  Alcotest.(check (list (pair (option int) int)))
    "bucket placement (le 10 / le 20 / inf)"
    [ (Some 10, 2); (Some 20, 1); (None, 1) ]
    hs.Obs.h_buckets;
  check_bool "non-increasing bounds rejected" true
    (try ignore (Obs.histogram ~buckets:[| 5; 5 |] "test.hist2"); false
     with Invalid_argument _ -> true)

let test_find_accessors () =
  let g = Obs.gauge "test.gauge" in
  let h = Obs.histogram ~buckets:[| 10; 20 |] "test.hist" in
  Obs.reset ();
  Obs.gauge_set g 42;
  Obs.observe h 15;
  check_bool "find_gauge" true (Obs.find_gauge "test.gauge" = Some 42);
  check_bool "find_gauge missing" true (Obs.find_gauge "test.nosuch" = None);
  (match Obs.find_histogram "test.hist" with
  | Some hs ->
      check_int "find_histogram count" 1 hs.Obs.h_count;
      check_int "find_histogram sum" 15 hs.Obs.h_sum
  | None -> Alcotest.fail "find_histogram missed a registered histogram");
  check_bool "find_histogram missing" true
    (Obs.find_histogram "test.nosuch" = None);
  check_bool "find_histogram ignores other kinds" true
    (Obs.find_histogram "test.gauge" = None)

let test_span_latency_histogram () =
  Obs.reset ();
  let out =
    Obs.with_span ~hist_buckets:[| 1_000; 1_000_000 |] "test.latspan"
      (fun () -> 99)
  in
  check_int "wrapped value returned" 99 out;
  (match Obs.find_histogram "test.latspan.duration_us" with
  | Some hs ->
      check_int "one duration observed" 1 hs.Obs.h_count;
      check_int "derived histogram keeps the requested bounds" 2
        (List.length (List.filter (fun (b, _) -> b <> None) hs.Obs.h_buckets))
  | None -> Alcotest.fail "with_span ~hist_buckets did not register");
  ignore
    (Obs.with_span ~hist_buckets:[| 1_000; 1_000_000 |] "test.latspan"
       (fun () -> 0));
  (match Obs.find_histogram "test.latspan.duration_us" with
  | Some hs -> check_int "durations accumulate" 2 hs.Obs.h_count
  | None -> Alcotest.fail "histogram vanished");
  (* plain spans never grow a histogram *)
  ignore (Obs.with_span "test.plainspan" (fun () -> ()));
  check_bool "no histogram without hist_buckets" true
    (Obs.find_histogram "test.plainspan.duration_us" = None)

let test_log () =
  let captured = Buffer.create 256 in
  Obs.Log.set_sink (Buffer.add_string captured);
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.reset_sink ();
      Obs.Log.set_level None)
    (fun () ->
      Obs.Log.set_level None;
      Obs.Log.emit Warn "test.silent" [];
      check_int "disabled level writes nothing" 0 (Buffer.length captured);
      check_bool "log.lines untouched when filtered" true
        (Obs.find_counter "log.lines" = Some 0);
      Obs.Log.set_level (Some Obs.Log.Warn);
      check_bool "warn enabled at warn" true (Obs.Log.enabled Obs.Log.Warn);
      check_bool "error enabled at warn" true (Obs.Log.enabled Obs.Log.Error);
      check_bool "info filtered at warn" false (Obs.Log.enabled Obs.Log.Info);
      Obs.Log.emit Info "test.filtered" [];
      check_int "info filtered writes nothing" 0 (Buffer.length captured);
      Obs.Log.emit Warn "test.event"
        [
          ("text", Obs.Log.Str "a\"b\nc");
          ("n", Obs.Log.Num 7);
          ("x", Obs.Log.Flt 1.5);
          ("flag", Obs.Log.Bool true);
        ];
      let line = Buffer.contents captured in
      check_bool "one JSON line emitted" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      check_bool "level field" true
        (contains line "\"level\":\"warn\"");
      check_bool "event field" true
        (contains line "\"event\":\"test.event\"");
      check_bool "string values escaped" true
        (contains line "\"text\":\"a\\\"b\\nc\"");
      check_bool "numeric fields" true (contains line "\"n\":7");
      check_bool "float fields" true (contains line "\"x\":1.5");
      check_bool "bool fields" true (contains line "\"flag\":true");
      check_bool "line counted" true (Obs.find_counter "log.lines" = Some 1);
      check_bool "level_of_string round-trips" true
        (Obs.Log.level_of_string "debug" = Some Obs.Log.Debug
        && Obs.Log.level_of_string "warning" = Some Obs.Log.Warn
        && Obs.Log.level_of_string "loud" = None);
      check_bool "current level readable" true
        (Obs.Log.level () = Some Obs.Log.Warn))

let test_runtime_refresh () =
  Obs.Runtime.refresh ();
  check_bool "heap words gauge populated" true
    (match Obs.find_gauge "runtime.gc.heap_words" with
    | Some n -> n > 0
    | None -> false);
  check_bool "minor collections gauge present" true
    (Obs.find_gauge "runtime.gc.minor_collections" <> None);
  check_bool "uptime monotone and nonnegative" true
    (match Obs.find_gauge "runtime.uptime_ms" with
    | Some n -> n >= 0
    | None -> false);
  check_bool "trace capacity mirrored" true
    (Obs.find_gauge "trace.capacity" <> None)

(* Cumulative GC word counts on a long-lived process exceed the float
   range int_of_float is defined on; the gauges go through the
   saturating conversion instead. *)
let test_saturating_conversion () =
  let s = Obs.Runtime.saturating_int_of_float in
  check_int "nan maps to 0" 0 (s Float.nan);
  check_int "plain values truncate as int_of_float" 42 (s 42.9);
  check_int "negative values truncate as int_of_float" (-7) (s (-7.2));
  check_bool "1e30 clamps to max_int" true (s 1e30 = max_int);
  check_bool "-1e30 clamps to min_int" true (s (-1e30) = min_int);
  check_bool "infinity clamps to max_int" true (s Float.infinity = max_int);
  check_bool "neg infinity clamps to min_int" true
    (s Float.neg_infinity = min_int);
  check_bool "float max_int boundary stays in range" true
    (s (float_of_int max_int) = max_int);
  (* refresh itself must survive whatever quick_stat reports *)
  Obs.Runtime.refresh ();
  check_bool "minor words gauge populated via saturation" true
    (Obs.find_gauge "runtime.gc.minor_words" <> None)

(* Rt_events attribution edges, driven through the synthetic-inject
   path: the real recording pipeline (ring, split counters, histogram,
   gauges) without depending on actual GC timing. *)
let test_rt_overlap_edges () =
  Obs.Rt_events.reset_for_test ();
  Obs.reset ();
  let us = 1000 in
  (* pause [5us, 15us) straddles the span boundary at 10us: only the
     inside half attributes *)
  Obs.Rt_events.inject_for_test ~dom:0 ~cls:Obs.Rt_events.Minor
    ~t0_ns:(5 * us) ~t1_ns:(15 * us);
  let window = Obs.Rt_events.pauses_between ~t0_ns:(10 * us) ~t1_ns:(30 * us) () in
  check_int "straddling pause clips to the span" 5
    (Obs.Rt_events.overlap_us window ~t0_ns:(10 * us) ~t1_ns:(30 * us));
  (* the same pause against a span entirely after it: zero attribution *)
  let later = Obs.Rt_events.pauses_between ~t0_ns:(40 * us) ~t1_ns:(60 * us) () in
  check_int "no pauses intersect the later span" 0 (List.length later);
  check_int "pause between spans attributes nothing" 0
    (Obs.Rt_events.overlap_us later ~t0_ns:(40 * us) ~t1_ns:(60 * us));
  (* overlap_us re-clips: a sub-window of the query window *)
  let full = Obs.Rt_events.pauses_between ~t0_ns:0 ~t1_ns:(100 * us) () in
  check_int "sub-window overlap re-clips" 3
    (Obs.Rt_events.overlap_us full ~t0_ns:(12 * us) ~t1_ns:(20 * us));
  Obs.Rt_events.reset_for_test ()

let test_rt_multi_domain_union () =
  Obs.Rt_events.reset_for_test ();
  Obs.reset ();
  let us = 1000 in
  (* concurrent pauses on two domains overlap in wall-clock; the merged
     disjoint list must not double-count the shared microseconds *)
  Obs.Rt_events.inject_for_test ~dom:0 ~cls:Obs.Rt_events.Major
    ~t0_ns:(10 * us) ~t1_ns:(20 * us);
  Obs.Rt_events.inject_for_test ~dom:1 ~cls:Obs.Rt_events.Minor
    ~t0_ns:(15 * us) ~t1_ns:(25 * us);
  let pauses = Obs.Rt_events.pauses_between ~t0_ns:0 ~t1_ns:(100 * us) () in
  check_int "overlapping cross-domain pauses merge" 1 (List.length pauses);
  check_int "union of 10+10 with 5 shared is 15" 15
    (Obs.Rt_events.overlap_us pauses ~t0_ns:0 ~t1_ns:(100 * us));
  (* summaries keep the per-domain split and sort by domain *)
  (match Obs.Rt_events.summaries () with
  | [ d0; d1 ] ->
      check_int "domain 0 first" 0 d0.Obs.Rt_events.d_dom;
      check_int "domain 1 second" 1 d1.Obs.Rt_events.d_dom;
      check_int "one pause on domain 0" 1 d0.Obs.Rt_events.d_pauses;
      check_int "major split on domain 0" 1 d0.Obs.Rt_events.d_major;
      check_int "minor split on domain 1" 1 d1.Obs.Rt_events.d_minor
  | l -> Alcotest.failf "expected two domains, got %d" (List.length l));
  check_bool "per-domain max-pause gauges fed" true
    (Obs.find_gauge "runtime.dom.0.gc.max_pause_us" = Some 10
    && Obs.find_gauge "runtime.dom.1.gc.max_pause_us" = Some 10);
  Obs.Rt_events.reset_for_test ()

let test_rt_ring_drop_accounting () =
  Obs.Rt_events.reset_for_test ~ring_capacity:4 ();
  Obs.reset ();
  let us = 1000 in
  for i = 0 to 9 do
    Obs.Rt_events.inject_for_test ~dom:0 ~cls:Obs.Rt_events.Minor
      ~t0_ns:(i * 10 * us)
      ~t1_ns:(((i * 10) + 2) * us)
  done;
  check_bool "runtime.events.dropped is exact" true
    (Obs.find_counter "runtime.events.dropped" = Some 6);
  (match Obs.Rt_events.summaries () with
  | [ d ] ->
      check_int "all pauses counted" 10 d.Obs.Rt_events.d_pauses;
      check_int "exact eviction count" 6 d.Obs.Rt_events.d_dropped;
      check_int "ring keeps the newest capacity entries" 4
        (List.length d.Obs.Rt_events.d_recent);
      (match d.Obs.Rt_events.d_recent with
      | first :: _ ->
          check_int "oldest surviving entry is pause #6" (60 * us)
            first.Obs.Rt_events.p_start_ns
      | [] -> Alcotest.fail "empty ring");
      check_int "minor split counts every pause" 10 d.Obs.Rt_events.d_minor
  | l -> Alcotest.failf "expected one domain, got %d" (List.length l));
  (match Obs.find_histogram "runtime.gc.pause.duration_us" with
  | Some h -> check_int "pause histogram fed through the real path" 10 h.Obs.h_count
  | None -> Alcotest.fail "pause histogram missing");
  (* evicted pauses no longer attribute *)
  let early = Obs.Rt_events.pauses_between ~t0_ns:0 ~t1_ns:(50 * us) () in
  check_int "evicted pauses are gone from attribution" 0 (List.length early);
  Obs.Rt_events.reset_for_test
    ~ring_capacity:Obs.Rt_events.default_ring_capacity ()

(* End to end against the real runtime: start the poller, force GC
   work, and require decoded pauses with a live calibration. *)
let test_rt_live_decode () =
  Obs.reset ();
  Obs.Rt_events.reset_for_test ();
  Obs.Rt_events.start ();
  Fun.protect ~finally:Obs.Rt_events.stop (fun () ->
      check_bool "running after start" true (Obs.Rt_events.running ());
      for _ = 1 to 3 do
        Gc.full_major ()
      done;
      ignore (Obs.Rt_events.poll_now ()));
  check_bool "stopped after stop" false (Obs.Rt_events.running ());
  let total =
    List.fold_left
      (fun acc d -> acc + d.Obs.Rt_events.d_pauses)
      0
      (Obs.Rt_events.summaries ())
  in
  check_bool "live GC pauses decoded" true (total > 0);
  check_bool "pauses stay attributable after stop" true
    (Obs.Rt_events.active ());
  check_bool "recorded pauses carry positive wall-clock ends" true
    (List.for_all
       (fun d ->
         List.for_all
           (fun p ->
             p.Obs.Rt_events.p_end_ns >= p.Obs.Rt_events.p_start_ns
             && p.Obs.Rt_events.p_start_ns > 0)
           d.Obs.Rt_events.d_recent)
       (Obs.Rt_events.summaries ()));
  Obs.Rt_events.reset_for_test ();
  check_bool "reset clears attribution" false (Obs.Rt_events.active ())

let span_count name (snap : Obs.snapshot) =
  match List.assoc_opt name snap.spans with
  | Some s -> s.Obs.s_count
  | None -> Alcotest.failf "span %s not in snapshot" name

let test_span_semantics () =
  Obs.reset ();
  let r = Obs.with_span "test.span" (fun () -> 41 + 1) in
  check_int "with_span returns the result" 42 r;
  check_int "span counted" 1 (span_count "test.span" (Obs.snapshot ()));
  check_bool "exception propagates" true
    (try ignore (Obs.with_span "test.span" (fun () -> raise Exit)); false
     with Exit -> true);
  check_int "raising span still counted" 2 (span_count "test.span" (Obs.snapshot ()))

let json_no_timers () =
  (* Latency histograms (".duration_us") record wall-clock like spans do,
     so they are stripped alongside timers for determinism checks. *)
  let snap = Obs.snapshot () in
  let snap =
    {
      snap with
      Obs.histograms =
        List.filter
          (fun (name, _) ->
            not (String.ends_with ~suffix:".duration_us" name))
          snap.Obs.histograms;
    }
  in
  Report.Json.to_string (Report.Obs_json.render ~timers:false snap)

(* The same deterministic workload twice, from a reset registry each
   time: identical snapshots (spans and latency histograms excluded —
   they time wall-clock). *)
let test_snapshot_determinism () =
  let p0 =
    Pattern.Parse.pattern_exn
      "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"
  in
  let t2 =
    Events.Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]
  in
  let workload () =
    Obs.reset ();
    ignore (Explain.Pipeline.explain [ p0 ] t2);
    ignore (Explain.Consistency.check ~strategy:Explain.Consistency.Pruned [ p0 ]);
    json_no_timers ()
  in
  let s1 = workload () in
  let s2 = workload () in
  check_str "snapshot identical across two identical runs" s1 s2;
  check_bool "snapshot mentions simplex.pivots" true
    (let json = Report.Obs_json.snapshot ~timers:false () in
     match Report.Json.member "counters" json with
     | Some counters -> (
         match Report.Json.member "simplex.pivots" counters with
         | Some (Report.Json.Int n) -> n > 0
         | _ -> false)
     | None -> false);
  check_bool "timers excluded on demand" true
    (Report.Json.member "spans" (Report.Obs_json.snapshot ~timers:false ()) = None);
  check_bool "timers included by default" true
    (Report.Json.member "spans" (Report.Obs_json.snapshot ()) <> None)

(* A span in flight across a reset must not fold its pre-reset start
   time into the zeroed cell. *)
let test_reset_during_span () =
  Obs.reset ();
  Obs.with_span "test.reset_span" (fun () -> Obs.reset ());
  check_int "straddling span records nothing"
    0 (span_count "test.reset_span" (Obs.snapshot ()));
  ignore (Obs.with_span "test.reset_span" (fun () -> ()));
  check_int "next span records normally"
    1 (span_count "test.reset_span" (Obs.snapshot ()))

(* Counter updates are atomic: concurrent increments from Bulk's domains
   are lossless. *)
let test_merge_under_domains () =
  let c = Obs.counter "test.domains" in
  Obs.reset ();
  let trace =
    Events.Trace.of_list
      (List.init 64 (fun i ->
           (Printf.sprintf "t%02d" i, Events.Tuple.of_list [ ("A", i) ])))
  in
  let results =
    Cep.Bulk.map_tuples ~domains:4
      (fun _id tuple ->
        Obs.incr c;
        Events.Tuple.cardinal tuple)
      trace
  in
  check_int "all tuples mapped" 64 (List.length results);
  check_int "no lost increments under 4 domains" 64 (Obs.value c)

(* Raw domains hammering one cell of each metric kind: every update
   lands (counters/histograms are lossless; gauge_max keeps the max). *)
let test_hammer_under_domains () =
  let c = Obs.counter "test.hammer.counter" in
  let g = Obs.gauge "test.hammer.gauge" in
  let h = Obs.histogram ~buckets:[| 10 |] "test.hammer.hist" in
  Obs.reset ();
  let per_domain = 25_000 in
  let worker base () =
    for i = 1 to per_domain do
      Obs.incr c;
      Obs.gauge_max g ((base * per_domain) + i);
      Obs.observe h (i mod 20)
    done
  in
  let spawned = List.init 3 (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  check_int "counter lossless under 4 domains" (4 * per_domain) (Obs.value c);
  check_int "gauge_max kept the maximum" (4 * per_domain) (Obs.gauge_value g);
  let hs = find_hist "test.hammer.hist" (Obs.snapshot ()) in
  check_int "histogram lossless under 4 domains" (4 * per_domain) hs.Obs.h_count

(* Prometheus requires the +Inf cumulative to equal _count in every
   exposition. [observe] bumps a bucket cell before h_count, so a
   snapshot racing an observe on another domain must derive the count
   from the cells it actually read, not from h_count. *)
let test_snapshot_invariant_under_domains () =
  let h = Obs.histogram ~buckets:[| 5; 10 |] "test.race.hist" in
  Obs.reset ();
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          Stdlib.incr i;
          Obs.observe h (!i mod 20)
        done)
  in
  for _ = 1 to 2_000 do
    match Obs.find_histogram "test.race.hist" with
    | None -> Alcotest.fail "histogram missing"
    | Some hs ->
        let bucket_sum =
          List.fold_left (fun acc (_, n) -> acc + n) 0 hs.Obs.h_buckets
        in
        check_int "+Inf cumulative equals _count" hs.Obs.h_count bucket_sum
  done;
  Atomic.set stop true;
  Domain.join writer

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
      Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
      Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "span semantics" `Quick test_span_semantics;
      Alcotest.test_case "find accessors" `Quick test_find_accessors;
      Alcotest.test_case "span latency histogram" `Quick
        test_span_latency_histogram;
      Alcotest.test_case "structured log" `Quick test_log;
      Alcotest.test_case "runtime refresh" `Quick test_runtime_refresh;
      Alcotest.test_case "saturating word-count conversion" `Quick
        test_saturating_conversion;
      Alcotest.test_case "rt_events overlap edges" `Quick test_rt_overlap_edges;
      Alcotest.test_case "rt_events multi-domain union" `Quick
        test_rt_multi_domain_union;
      Alcotest.test_case "rt_events ring drop accounting" `Quick
        test_rt_ring_drop_accounting;
      Alcotest.test_case "rt_events live decode" `Quick test_rt_live_decode;
      Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
      Alcotest.test_case "reset during span" `Quick test_reset_during_span;
      Alcotest.test_case "merge under domains" `Quick test_merge_under_domains;
      Alcotest.test_case "hammer under domains" `Quick test_hammer_under_domains;
      Alcotest.test_case "snapshot invariant under domains" `Quick
        test_snapshot_invariant_under_domains;
    ] )
