open Whynot
module Where = Cep.Where
module Attributed = Cep.Attributed
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lookup_of alist event attr =
  match List.assoc_opt (event, attr) alist with Some v -> Some v | None -> None

let test_parse_and_eval_cmp () =
  let e = Where.parse_exn "E1.gate = 'H15'" in
  check_bool "match" true
    (Where.eval ~lookup:(lookup_of [ (("E1", "gate"), Where.Str "H15") ]) e);
  check_bool "mismatch" false
    (Where.eval ~lookup:(lookup_of [ (("E1", "gate"), Where.Str "B2") ]) e);
  check_bool "missing attr is false" false (Where.eval ~lookup:(lookup_of []) e)

let test_numeric_ops () =
  let lookup = lookup_of [ (("E1", "delay"), Where.Int 15) ] in
  let holds s = Where.eval ~lookup (Where.parse_exn s) in
  check_bool ">=" true (holds "E1.delay >= 15");
  check_bool ">" false (holds "E1.delay > 15");
  check_bool "<=" true (holds "E1.delay <= 20");
  check_bool "<" true (holds "E1.delay < 20");
  check_bool "=" true (holds "E1.delay = 15");
  check_bool "!=" false (holds "E1.delay != 15");
  check_bool "<>" false (holds "E1.delay <> 15");
  check_bool "type mismatch eq" false (holds "E1.delay = 'fifteen'");
  check_bool "type mismatch ne" true (holds "E1.delay != 'fifteen'")

let test_boolean_structure () =
  let lookup =
    lookup_of [ (("A", "x"), Where.Int 1); (("B", "y"), Where.Int 2) ]
  in
  let holds s = Where.eval ~lookup (Where.parse_exn s) in
  check_bool "and" true (holds "A.x = 1 AND B.y = 2");
  check_bool "and fails" false (holds "A.x = 1 AND B.y = 3");
  check_bool "or" true (holds "A.x = 9 OR B.y = 2");
  check_bool "not" true (holds "NOT A.x = 9");
  check_bool "parens" true (holds "(A.x = 9 OR B.y = 2) AND A.x = 1");
  check_bool "true" true (holds "TRUE");
  check_bool "case-insensitive keywords" true (holds "not a.x = 9")

let test_parse_errors () =
  let fails s = check_bool s true (Result.is_error (Where.parse s)) in
  fails "E1.gate =";
  fails "E1 = 3";
  fails "E1.gate ~ 3";
  fails "(E1.gate = 3";
  fails "E1.gate = 'unterminated";
  fails "E1.gate = 3 AND";
  fails "";
  (* an oversized integer literal is a parse error, not an escaping Failure *)
  fails "E1.gate = 99999999999999999999"

let test_pp_roundtrip () =
  let inputs =
    [
      "E1.gate = 'H15'";
      "A.x = 1 AND (B.y >= 2 OR NOT C.z != 'q')";
      "TRUE";
    ]
  in
  List.iter
    (fun s ->
      let e = Where.parse_exn s in
      let e' = Where.parse_exn (Format.asprintf "%a" Where.pp e) in
      check_bool s true (e = e'))
    inputs

let test_where_events () =
  let e = Where.parse_exn "A.x = 1 AND (B.y = 2 OR NOT C.z = 3)" in
  check_bool "events" true
    (Events.Event.Set.equal (Where.events e)
       (Events.Event.Set.of_list [ "A"; "B"; "C" ]))

(* --- attributed traces --- *)

let flights =
  let record gate e1 e2 matched =
    let tuple = Tuple.of_list [ ("E1", e1); ("E2", e2) ] in
    let tuple = if matched then tuple else Tuple.add "E2" (e1 + 500) tuple in
    {
      Attributed.tuple;
      attributes = [ ("E1", [ ("gate", Where.Str gate); ("delay", Where.Int 5) ]) ];
    }
  in
  Attributed.of_list
    [
      ("d1", record "H15" 0 100 true);
      ("d2", record "B2" 0 100 true);
      ("d3", record "H15" 0 100 false);
    ]

let query =
  match
    Attributed.parse_query ~pattern:"SEQ(E1, E2) ATLEAST 50 WITHIN 200"
      ~where:"E1.gate = 'H15'" ()
  with
  | Ok q -> q
  | Error e -> failwith e

let test_attributed_answers () =
  Alcotest.(check (list string)) "answers pass both halves" [ "d1" ]
    (Attributed.answers query flights);
  let non = Attributed.pattern_non_answers query flights in
  check_int "one pattern non-answer" 1 (List.length non);
  check_bool "it is d3" true (fst (List.hd non) = "d3")

let test_attributed_classify () =
  let d2 = Option.get (Attributed.find_opt flights "d2") in
  check_bool "where rejection" true
    (Attributed.classify query d2 = Attributed.Rejected_by_where);
  let d1 = Option.get (Attributed.find_opt flights "d1") in
  check_bool "answer" true (Attributed.classify query d1 = Attributed.Answer);
  let d3 = Option.get (Attributed.find_opt flights "d3") in
  check_bool "pattern rejection" true
    (match Attributed.classify query d3 with
    | Attributed.Rejected_by_pattern _ -> true
    | _ -> false)

let test_attributed_explanation_flow () =
  (* The paper's composition: WHERE filters first, then the timestamp
     modification explains the pattern non-answers. *)
  List.iter
    (fun (_, record) ->
      match Explain.Modification.explain query.patterns record.Attributed.tuple with
      | Some { repaired; _ } ->
          check_bool "explained" true
            (Pattern.Matcher.matches_set repaired query.patterns)
      | None -> Alcotest.fail "expected explanation")
    (Attributed.pattern_non_answers query flights)

let test_timestamps_projection () =
  let trace = Attributed.timestamps flights in
  check_int "all ids" 3 (Events.Trace.cardinal trace)

let suite =
  ( "where",
    [
      Alcotest.test_case "comparison parse + eval" `Quick test_parse_and_eval_cmp;
      Alcotest.test_case "numeric operators" `Quick test_numeric_ops;
      Alcotest.test_case "boolean structure" `Quick test_boolean_structure;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "pp round trip" `Quick test_pp_roundtrip;
      Alcotest.test_case "events of predicate" `Quick test_where_events;
      Alcotest.test_case "attributed answers" `Quick test_attributed_answers;
      Alcotest.test_case "attributed classify" `Quick test_attributed_classify;
      Alcotest.test_case "where -> explain composition" `Quick
        test_attributed_explanation_flow;
      Alcotest.test_case "timestamps projection" `Quick test_timestamps_projection;
    ] )
