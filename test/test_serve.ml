open Whynot
module Http = Serve.Http
module Ingest = Serve.Ingest
module Service = Serve.Service

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let queries s = [ Pattern.Parse.pattern_exn s ]

(* --- Ingest: the CSV line grammar shared by `detect` and `serve` --- *)

let test_ingest_lines () =
  let ok_keyed = function
    | Ok (Some (k : Ingest.keyed)) -> k
    | Ok None -> Alcotest.fail "expected an instance, got a skip"
    | Error e -> Alcotest.failf "unexpected error: %s" (Ingest.error_to_string e)
  in
  let ok_instance r = (ok_keyed r).Ingest.instance in
  let i = ok_instance (Ingest.parse_line ~lineno:2 "A,17,x1") in
  check_str "event" "A" i.Cep.Detector.event;
  check_int "timestamp" 17 i.Cep.Detector.timestamp;
  check_str "tag" "x1" i.Cep.Detector.tag;
  check_str "missing key defaults to the keyless stream" ""
    (ok_keyed (Ingest.parse_line ~lineno:2 "A,17,x1")).Ingest.key;
  let d = ok_instance (Ingest.parse_line ~lineno:5 "B,3") in
  check_str "missing tag defaults to line marker" "#5" d.Cep.Detector.tag;
  let d2 = ok_instance (Ingest.parse_line ~lineno:7 "B,3,") in
  check_str "empty tag also defaults" "#7" d2.Cep.Detector.tag;
  (* the optional fourth column is the partition key *)
  let k = ok_keyed (Ingest.parse_line ~lineno:2 "A,17,x1,acct42") in
  check_str "fourth column parses as the partition key" "acct42" k.Ingest.key;
  check_str "keyed line keeps its tag" "x1" k.Ingest.instance.Cep.Detector.tag;
  let k2 = ok_keyed (Ingest.parse_line ~lineno:3 "A,17,,acct42") in
  check_str "keyed line with empty tag still defaults the tag" "#3"
    k2.Ingest.instance.Cep.Detector.tag;
  check_str "empty key column is the keyless stream" ""
    (ok_keyed (Ingest.parse_line ~lineno:3 "A,17,x,")).Ingest.key;
  let kq = ok_keyed (Ingest.parse_line ~lineno:4 "A,17,x,\"k, comma\"") in
  check_str "quoted key keeps its comma" "k, comma" kq.Ingest.key;
  check_bool "five fields rejected" true
    (match Ingest.parse_line ~lineno:6 "A,17,x,k,extra" with
    | Error { Ingest.line = 6; _ } -> true
    | _ -> false);
  check_bool "blank line skipped" true
    (Ingest.parse_line ~lineno:4 "   " = Ok None);
  check_bool "header skipped on line 1" true
    (Ingest.parse_line ~lineno:1 Ingest.header = Ok None);
  (* the serve ingest numbers lines across requests, so the header can
     legitimately arrive on any line (a second POST re-sending it) *)
  check_bool "header skipped at any line number" true
    (Ingest.parse_line ~lineno:3 Ingest.header = Ok None);
  check_bool "keyed header skipped too" true
    (Ingest.parse_line ~lineno:1 Ingest.keyed_header = Ok None);
  (* RFC-4180 quoting: tags (and events) with commas or quotes *)
  let q = ok_instance (Ingest.parse_line ~lineno:2 "A,17,\"batch 3, retry\"") in
  check_str "quoted tag keeps its comma" "batch 3, retry" q.Cep.Detector.tag;
  let q2 = ok_instance (Ingest.parse_line ~lineno:2 "A,17,\"say \"\"hi\"\"\"") in
  check_str "doubled quotes unescape" "say \"hi\"" q2.Cep.Detector.tag;
  let q3 = ok_instance (Ingest.parse_line ~lineno:2 "\"A\",17,x") in
  check_str "quoted event name" "A" q3.Cep.Detector.event;
  check_bool "unterminated quote rejected" true
    (match Ingest.parse_line ~lineno:6 "A,17,\"oops" with
    | Error { Ingest.line = 6; reason } ->
        String.equal reason "unterminated quoted field"
    | _ -> false);
  check_bool "text after closing quote rejected" true
    (match Ingest.parse_line ~lineno:6 "A,17,\"x\"y" with
    | Error { Ingest.line = 6; _ } -> true
    | _ -> false);
  check_str "quoted tag followed by a key parses" "extra"
    (ok_keyed (Ingest.parse_line ~lineno:6 "A,17,\"x\",extra")).Ingest.key;
  check_bool "quoted tag with too many fields rejected" true
    (match Ingest.parse_line ~lineno:6 "A,17,\"x\",k,extra" with
    | Error { Ingest.line = 6; _ } -> true
    | _ -> false);
  check_bool "bad timestamp rejected" true
    (match Ingest.parse_line ~lineno:9 "A,soon" with
    | Error { Ingest.line = 9; reason } ->
        String.equal reason "bad timestamp"
    | _ -> false);
  check_bool "empty event rejected" true
    (match Ingest.parse_line ~lineno:2 ",5" with
    | Error _ -> true
    | _ -> false);
  check_str "error rendering carries the line" "line 9: bad timestamp"
    (Ingest.error_to_string { Ingest.line = 9; reason = "bad timestamp" });
  (* all-or-nothing batch parse *)
  check_bool "batch parses with header and blanks" true
    (match
       Ingest.parse_lines [ "event,timestamp,tag"; "A,1,x"; ""; "B,2" ]
     with
    | Ok [ _; _ ] -> true
    | _ -> false);
  check_bool "batch fails on first bad line" true
    (match Ingest.parse_lines [ "A,1,x"; "B,oops"; "C,3,z" ] with
    | Error { Ingest.line = 2; _ } -> true
    | _ -> false)

(* --- Service.handle: routing without a socket --- *)

let req ?(body = "") meth path = { Http.meth; path; headers = []; body }

let test_routing () =
  let s = Service.create (queries "SEQ(A, B) WITHIN 20") in
  let r = Service.handle s (req "GET" "/health") in
  check_int "health 200" 200 r.Http.status;
  let r = Service.handle s (req "GET" "/ready") in
  check_int "ready 200 while running" 200 r.Http.status;
  let r = Service.handle s (req "GET" "/metrics") in
  check_int "metrics 200" 200 r.Http.status;
  check_str "prometheus content type" Service.prom_content_type
    r.Http.content_type;
  check_bool "exposition parses" true
    (match Report.Prom_text.parse_values r.Http.body with
    | Ok (_ :: _) -> true
    | _ -> false);
  let r = Service.handle s (req "GET" "/metrics?format=prometheus") in
  check_int "query string does not break routing" 200 r.Http.status;
  let r = Service.handle s (req "GET" "/health?x=1#frag") in
  check_int "query and fragment stripped before dispatch" 200 r.Http.status;
  let r = Service.handle s (req "GET" "/nosuch") in
  check_int "unknown path 404" 404 r.Http.status;
  let r = Service.handle s (req "POST" "/metrics") in
  check_int "wrong method 405" 405 r.Http.status;
  Service.log_stop s;
  let r = Service.handle s (req "GET" "/ready") in
  check_int "ready 503 after stop" 503 r.Http.status;
  let r = Service.handle s (req "GET" "/health") in
  check_int "health still 200 after stop" 200 r.Http.status

let test_stdin_mode_rejects_http_ingest () =
  let s = Service.create ~http_ingest:false (queries "SEQ(A, B) WITHIN 20") in
  let r = Service.handle s (req ~body:"A,1,x\n" "POST" "/ingest") in
  check_int "ingest 503 when fed from stdin" 503 r.Http.status

let test_ingest_route () =
  let s = Service.create (queries "SEQ(A, B) WITHIN 20") in
  let r =
    Service.handle s (req ~body:"A,1,x\nB,5,y\nC,bad\n" "POST" "/ingest")
  in
  check_int "ingest answers 200 even with bad lines" 200 r.Http.status;
  check_str "jsonl content type" Service.jsonl_content_type r.Http.content_type;
  let lines =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' r.Http.body)
  in
  check_int "one match and one error object" 2 (List.length lines);
  check_bool "match verdict serialized with its input line number" true
    (List.exists
       (fun l -> String.starts_with ~prefix:"{\"type\":\"match\",\"line\":2" l)
       lines);
  check_bool "error carries the running line number" true
    (List.exists
       (fun l ->
         String.starts_with ~prefix:"{\"type\":\"error\",\"line\":3" l)
       lines);
  (* line numbers persist across POSTs (the first batch consumed lines
     1-4, counting its trailing newline), but a header in a second batch
     must still be a skip, not a spurious "bad timestamp" — clients
     naturally prepend their header to every request *)
  let r2 =
    Service.handle s
      (req ~body:"event,timestamp,tag\nA,10,x2\nB,12,y2\n" "POST" "/ingest")
  in
  check_int "second batch with header still 200" 200 r2.Http.status;
  let lines2 =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' r2.Http.body)
  in
  (* B@12 completes both the fresh A@10 and the still-live A@1, so two
     matches and, crucially, zero error objects for the header line *)
  check_bool "header in a second request is skipped, stream keeps matching"
    true
    (List.length lines2 = 2
    && List.for_all
         (String.starts_with ~prefix:"{\"type\":\"match\"")
         lines2);
  (* quoted tags survive the HTTP path end to end *)
  let r3 =
    Service.handle s
      (req ~body:"A,20,\"t, with comma\"\nB,22,z\n" "POST" "/ingest")
  in
  let lines3 =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' r3.Http.body)
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "quoted tag with comma round-trips over ingest" true
    (lines3 <> []
    && List.for_all (String.starts_with ~prefix:"{\"type\":\"match\"") lines3
    && List.exists (contains ~needle:"t, with comma") lines3)

let test_ingest_line_results () =
  let s = Service.create (queries "SEQ(A, B) WITHIN 20") in
  check_bool "pending instance yields no match" true
    (Service.ingest_line s ~lineno:1 "A,1,x" = Ok []);
  (match Service.ingest_line s ~lineno:2 "B,5,y" with
  | Ok [ m ] ->
      check_bool "completed match binds both tags" true
        (List.length m.Cep.Detector.tags = 2)
  | _ -> Alcotest.fail "expected exactly one match");
  check_bool "bare reason, no line prefix" true
    (Service.ingest_line s ~lineno:3 "A,zap" = Error "bad timestamp");
  check_bool "decreasing timestamp surfaces as an ingest error" true
    (match Service.ingest_line s ~lineno:4 "A,0,z" with
    | Error _ -> true
    | Ok _ -> false)

(* --- Http: the responder itself, loopback end-to-end --- *)

let with_server ?io_timeout handler f =
  let server = Http.listen ~port:0 () in
  let d = Domain.spawn (fun () -> Http.serve ?io_timeout server handler) in
  Fun.protect
    ~finally:(fun () ->
      Http.stop server;
      Domain.join d)
    (fun () -> f (Http.port server))

let test_http_end_to_end () =
  with_server
    (fun r ->
      if String.equal r.Http.path "/echo" then
        Http.response (r.Http.meth ^ ":" ^ r.Http.body)
      else Http.response ~status:404 "nope\n")
    (fun port ->
      (match Http.get ~port "/echo" with
      | Ok (200, body) -> check_str "GET round-trip" "GET:" body
      | other ->
          Alcotest.failf "GET failed: %s"
            (match other with
            | Ok (st, b) -> Printf.sprintf "HTTP %d %s" st b
            | Error e -> e)
      );
      (match Http.post ~port "/echo" "payload" with
      | Ok (200, body) -> check_str "POST body round-trip" "POST:payload" body
      | _ -> Alcotest.fail "POST failed");
      match Http.get ~port "/other" with
      | Ok (404, _) -> ()
      | _ -> Alcotest.fail "expected 404")

let test_http_rejects_malformed () =
  with_server
    (fun _ -> Http.response "ok")
    (fun port ->
      (* raw garbage: no request line terminator then EOF *)
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let msg = "GARBAGE\r\n\r\n" in
      ignore (Unix.write_substring s msg 0 (String.length msg));
      let buf = Bytes.create 1024 in
      let n = Unix.read s buf 0 (Bytes.length buf) in
      Unix.close s;
      let raw = Bytes.sub_string buf 0 n in
      check_bool "malformed request answered with 400" true
        (String.starts_with ~prefix:"HTTP/1.1 400" raw))

let test_http_idle_connection_times_out () =
  with_server ~io_timeout:0.2
    (fun _ -> Http.response "ok")
    (fun port ->
      (* A client that connects and sends nothing must not wedge the
         sequential accept loop forever: the read deadline answers 408. *)
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Bytes.create 1024 in
      let n = Unix.read s buf 0 (Bytes.length buf) in
      Unix.close s;
      let raw = Bytes.sub_string buf 0 n in
      check_bool "idle connection answered with 408" true
        (String.starts_with ~prefix:"HTTP/1.1 408" raw);
      (* ... and the loop is free again for the next client. *)
      match Http.get ~port "/anything" with
      | Ok (200, _) -> ()
      | _ -> Alcotest.fail "server wedged after idle connection")

let test_http_survives_client_reset () =
  (* A peer that resets the connection while the response is being
     written must surface as a catchable EPIPE/ECONNRESET, not as a
     fatal SIGPIPE. The big body forces the server through multiple
     writes so at least one lands after the RST. *)
  let big = String.make (8 * 1024 * 1024) 'x' in
  with_server
    (fun _ -> Http.response big)
    (fun port ->
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let msg = "GET /big HTTP/1.1\r\n\r\n" in
      ignore (Unix.write_substring s msg 0 (String.length msg));
      (* linger 0 turns close into an RST instead of an orderly FIN *)
      Unix.setsockopt_optint s Unix.SO_LINGER (Some 0);
      Unix.close s;
      (* the server must still be alive and serving *)
      match Http.get ~port "/again" with
      | Ok (200, _) -> ()
      | _ -> Alcotest.fail "server died after client reset")

(* --- The acceptance scenario: replayed stream under concurrent scrape,
   scraped counters equal to the post-run registry exactly --- *)

let test_replay_under_scrape () =
  let events = 2_000 in
  let service = Service.create ~max_partials:256 (queries "SEQ(E1, E2) WITHIN 20") in
  let server = Http.listen ~port:0 () in
  let port = Http.port server in
  let http_domain =
    Domain.spawn (fun () -> Http.serve server (Service.handle service))
  in
  let stop_scraper = Atomic.make false in
  let scraper =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop_scraper) do
          match Http.get ~port "/metrics" with
          | Ok (200, _) -> incr n
          | Ok _ | Error _ -> ()
        done;
        !n)
  in
  let matches0 = Option.value ~default:0 (Obs.find_counter "serve.matches") in
  let lines0 =
    Option.value ~default:0 (Obs.find_counter "serve.ingest.lines")
  in
  let batch = Buffer.create 4096 in
  let sent = ref 0 in
  while !sent < events do
    Buffer.clear batch;
    let k = min 250 (events - !sent) in
    for i = 0 to k - 1 do
      let seq = !sent + i in
      Buffer.add_string batch
        (Printf.sprintf "E%d,%d,s%d\n" (1 + (seq mod 2)) (seq * 3) seq)
    done;
    (match Http.post ~port "/ingest" (Buffer.contents batch) with
    | Ok (200, _) -> ()
    | Ok (st, b) -> Alcotest.failf "ingest HTTP %d: %s" st b
    | Error e -> Alcotest.failf "ingest: %s" e);
    sent := !sent + k
  done;
  Atomic.set stop_scraper true;
  let concurrent = Domain.join scraper in
  (* final quiescent scrape, then silence the server before snapshotting *)
  let final =
    match Http.get ~port "/metrics" with
    | Ok (200, body) -> body
    | _ -> Alcotest.fail "final scrape failed"
  in
  Http.stop server;
  Domain.join http_domain;
  check_bool "at least one concurrent scrape landed" true (concurrent > 0);
  check_int "every line ingested" events
    (Option.value ~default:0 (Obs.find_counter "serve.ingest.lines") - lines0);
  check_bool "stream produced matches" true
    (Option.value ~default:0 (Obs.find_counter "serve.matches") > matches0);
  let samples =
    match Report.Prom_text.parse_values final with
    | Ok s -> s
    | Error e -> Alcotest.failf "final scrape did not parse: %s" e
  in
  let sample key =
    List.find_map
      (fun (k, v) -> if String.equal k key then Some v else None)
      samples
  in
  (* The server went quiet after the final scrape, so every counter the
     scrape reported must equal the post-run registry value exactly. *)
  let snap = Obs.snapshot () in
  List.iter
    (fun (name, value) ->
      if not (String.starts_with ~prefix:"test." name) then
        match sample (Report.Prom_text.mangle name) with
        | Some v ->
            check_int (Printf.sprintf "scraped %s equals the registry" name)
              value (int_of_float v)
        | None ->
            Alcotest.failf "counter %s missing from the scrape" name)
    snap.Obs.counters;
  (* runtime gauges refresh on scrape: the uptime gauge must have moved *)
  check_bool "runtime gauges refreshed on scrape" true
    (match sample "whynot_runtime_uptime_ms" with
    | Some v -> v >= 0.0
    | None -> false)

(* --- Sharded pool: routing, differential equivalence, shedding --- *)

module Shard = Serve.Shard

let test_shard_routing () =
  let pool = Shard.create ~shards:4 (queries "SEQ(A, B) WITHIN 20") in
  check_int "keyless stream pins to shard 0" 0 (Shard.shard_of_key pool "");
  let k = Shard.shard_of_key pool "some-key" in
  check_bool "keys route inside the pool" true (k >= 0 && k < 4);
  check_int "routing is stable" k (Shard.shard_of_key pool "some-key");
  Shard.stop pool

(* Keyed streams through a threaded 4-shard pool must produce exactly the
   match set of one sequential detector per key fed in the same order —
   verdict-set equality, compared as rendered JSONL so tags, timestamps
   and line numbers all participate. 8 keys over 4 shards forces
   collisions, so per-shard key isolation is exercised too. *)
let test_cross_shard_differential () =
  let query = "SEQ(A, B) WITHIN 20" in
  let nkeys = 8 in
  let line_of i =
    let key = Printf.sprintf "k%d" (i mod nkeys) in
    let step = i / nkeys in
    let event = if step mod 2 = 0 then "A" else "B" in
    Printf.sprintf "%s,%d,%s-%d,%s" event (step * 6) key step key
  in
  let bodies =
    (* five POSTs of 80 lines each, every body with a trailing newline *)
    List.init 5 (fun b ->
        String.concat ""
          (List.init 80 (fun j -> line_of ((b * 80) + j) ^ "\n")))
  in
  let service =
    Service.create ~shards:4 ~threaded:true (queries query)
  in
  let pooled =
    List.concat_map
      (fun body ->
        let r = Service.handle service (req ~body "POST" "/ingest") in
        check_int "keyed ingest answers 200" 200 r.Http.status;
        List.filter
          (fun l -> not (String.equal l ""))
          (String.split_on_char '\n' r.Http.body))
      bodies
  in
  Service.shutdown service;
  check_bool "no error verdicts on the keyed stream" true
    (List.for_all (String.starts_with ~prefix:"{\"type\":\"match\"") pooled);
  (* sequential oracle: one plain detector per key, same feed order, same
     running line numbers (each split slot consumes one, as ingest does) *)
  let dets = Hashtbl.create 16 in
  let det_for key =
    match Hashtbl.find_opt dets key with
    | Some d -> d
    | None ->
        let d = Cep.Detector.create (queries query) in
        Hashtbl.add dets key d;
        d
  in
  let lineno = ref 0 in
  let expected = ref [] in
  List.iter
    (fun body ->
      List.iter
        (fun line ->
          incr lineno;
          if not (String.equal line "") then begin
            match String.split_on_char ',' line with
            | [ event; ts; tag; key ] ->
                let inst =
                  {
                    Cep.Detector.event;
                    timestamp = int_of_string ts;
                    tag;
                  }
                in
                List.iter
                  (fun m ->
                    expected :=
                      Report.Json.to_string
                        (Service.match_json ~line:!lineno m)
                      :: !expected)
                  (Cep.Detector.feed (det_for key) inst)
            | _ -> Alcotest.fail "test generated an unparseable line"
          end)
        (String.split_on_char '\n' body))
    bodies;
  check_bool "the keyed stream produced matches at all" true (pooled <> []);
  Alcotest.(check (list string))
    "sharded verdict set equals the per-key sequential detectors"
    (List.sort compare !expected)
    (List.sort compare pooled)

(* On keyless input a threaded multi-shard service must be bit-identical
   to the inline single-shard one: same key "" -> same shard 0 -> one
   detector, so every JSONL response body matches byte for byte. *)
let test_keyless_bit_identity () =
  let bodies =
    [
      "A,1,x\nB,5,y\nC,bad\n";
      "event,timestamp,tag\nA,10,x2\nB,12,y2\n";
      "A,20,\"t, with comma\"\nB,22,z\n";
    ]
  in
  let pooled = Service.create ~shards:4 ~threaded:true (queries "SEQ(A, B) WITHIN 20") in
  let inline = Service.create (queries "SEQ(A, B) WITHIN 20") in
  List.iter
    (fun body ->
      let rp = Service.handle pooled (req ~body "POST" "/ingest") in
      let ri = Service.handle inline (req ~body "POST" "/ingest") in
      check_int "same status" ri.Http.status rp.Http.status;
      check_str "bit-identical JSONL on keyless input" ri.Http.body
        rp.Http.body)
    bodies;
  Service.shutdown pooled;
  Service.shutdown inline

let test_shed_429 () =
  let shed0 = Option.value ~default:0 (Obs.find_counter "serve.shed") in
  (* unit level: capacity 0 sheds every threaded batch, all-or-nothing *)
  let pool =
    Shard.create ~shards:2 ~queue_capacity:0 ~threaded:true
      (queries "SEQ(A, B) WITHIN 20")
  in
  let outcome =
    Shard.submit pool
      [| ("k", { Cep.Detector.event = "A"; timestamp = 0; tag = "t" }) |]
  in
  check_bool "capacity-0 pool sheds" true
    (match outcome with Shard.Shed -> true | Shard.Processed _ -> false);
  Shard.stop pool;
  (* service level: the whole batch is shed -> 429 + Retry-After, and no
     line of it was applied (safe to retry wholesale) *)
  let s =
    Service.create ~shards:2 ~shard_queue:0 ~threaded:true
      (queries "SEQ(A, B) WITHIN 20")
  in
  let lines0 = Option.value ~default:0 (Obs.find_counter "serve.ingest.lines") in
  let r = Service.handle s (req ~body:"A,1,x,k\nB,5,y,k\n" "POST" "/ingest") in
  check_int "shed ingest answers 429" 429 r.Http.status;
  check_bool "429 advertises Retry-After" true
    (List.mem_assoc "Retry-After" r.Http.headers);
  check_int "no line of a shed batch is applied" 0
    (Option.value ~default:0 (Obs.find_counter "serve.ingest.lines") - lines0);
  check_bool "shed counter accounts both sheds" true
    (Option.value ~default:0 (Obs.find_counter "serve.shed") - shed0 >= 2);
  (* a batch that parses to nothing never reaches the queues: still 200 *)
  let r2 = Service.handle s (req ~body:"event,timestamp,tag,key\n\n" "POST" "/ingest") in
  check_int "all-skip batch bypasses the full queue" 200 r2.Http.status;
  Service.shutdown s

(* --- serve_pool: concurrent soak, keep-alive, clean stop --- *)

let test_pool_soak () =
  let service =
    Service.create ~shards:2 ~threaded:true (queries "SEQ(A, B) WITHIN 20")
  in
  let server = Http.listen ~port:0 () in
  let port = Http.port server in
  let pool_d =
    Domain.spawn (fun () ->
        Http.serve_pool ~workers:3 server (Service.handle service))
  in
  let clients =
    List.init 3 (fun c ->
        Domain.spawn (fun () ->
            (* one keep-alive connection per client, mixed ingest/scrape *)
            let conn = Http.Client.connect ~port in
            let ok = ref 0 in
            for i = 0 to 24 do
              let key = Printf.sprintf "c%d" c in
              let ts = i * 10 in
              let body =
                Printf.sprintf "A,%d,a,%s\nB,%d,b,%s\n" ts key (ts + 5) key
              in
              (match Http.Client.post conn "/ingest" body with
              | Ok (200, _) -> incr ok
              | _ -> ());
              match Http.Client.get conn "/metrics" with
              | Ok (200, _) -> incr ok
              | _ -> ()
            done;
            Http.Client.close conn;
            !ok))
  in
  let totals = List.map Domain.join clients in
  Http.stop server;
  Domain.join pool_d;
  Service.shutdown service;
  List.iter (fun n -> check_int "every soak request succeeded" 50 n) totals;
  (* 25 matches per client stream, all keys isolated *)
  check_bool "soak streams matched" true
    (Option.value ~default:0 (Obs.find_counter "serve.matches") > 0)

let test_pool_clean_stop () =
  let service =
    Service.create ~shards:2 ~threaded:true (queries "SEQ(A, B) WITHIN 20")
  in
  let server = Http.listen ~port:0 () in
  let port = Http.port server in
  let pool_d =
    Domain.spawn (fun () ->
        Http.serve_pool ~workers:2 server (Service.handle service))
  in
  let idle = Http.Client.connect ~port in
  (match Http.Client.get idle "/health" with
  | Ok (200, _) -> ()
  | _ -> Alcotest.fail "health over keep-alive failed");
  (* [idle] now sits in its keep-alive read on a worker; stop must shut
     its read side down and join promptly instead of waiting out the
     10s deadline *)
  let t0 = Unix.gettimeofday () in
  Http.stop server;
  Domain.join pool_d;
  Service.shutdown service;
  check_bool "stop returns promptly with an in-flight keep-alive conn" true
    (Unix.gettimeofday () -. t0 < 5.0);
  check_bool "idle keep-alive connection was closed by stop" true
    (match Http.Client.get idle "/health" with
    | Error _ -> true
    | Ok _ -> false);
  Http.Client.close idle

let test_keepalive_reuse_and_cap () =
  let reuses0 =
    Option.value ~default:0 (Obs.find_counter "serve.keepalive.reuses")
  in
  with_server
    (fun _ -> Http.response "ok")
    (fun port ->
      let c = Http.Client.connect ~port in
      for i = 1 to 5 do
        match Http.Client.get c "/x" with
        | Ok (200, "ok") -> ()
        | _ -> Alcotest.failf "keep-alive request %d failed" i
      done;
      Http.Client.close c);
  let reuses1 =
    Option.value ~default:0 (Obs.find_counter "serve.keepalive.reuses")
  in
  check_bool "reuse counter counts kept-alive turns" true
    (reuses1 - reuses0 >= 4);
  (* the per-connection cap: a limit of 2 closes after the second
     response, the third request on that connection fails cleanly *)
  let server = Http.listen ~port:0 () in
  let d =
    Domain.spawn (fun () ->
        Http.serve ~keepalive_limit:2 server (fun _ -> Http.response "ok"))
  in
  let port = Http.port server in
  let c = Http.Client.connect ~port in
  (match Http.Client.get c "/1" with
  | Ok (200, _) -> ()
  | _ -> Alcotest.fail "first capped request failed");
  (match Http.Client.get c "/2" with
  | Ok (200, _) -> ()
  | _ -> Alcotest.fail "second capped request failed");
  check_bool "third request past the cap fails cleanly" true
    (match Http.Client.get c "/3" with Error _ -> true | Ok _ -> false);
  Http.Client.close c;
  Http.stop server;
  Domain.join d

(* --- Request tracing: ids, /ready back-pressure, tail capture --- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_ready_backpressure () =
  (* capacity-0 queues count as full, so an admission right now would
     shed — readiness must say so and name the shards *)
  let sat =
    Service.create ~shards:2 ~shard_queue:0 ~threaded:true
      (queries "SEQ(A, B) WITHIN 20")
  in
  let r = Service.handle sat (req "GET" "/ready") in
  check_int "saturated pool answers 503" 503 r.Http.status;
  check_str "back-pressure body is JSON" "application/json" r.Http.content_type;
  check_bool "body names the reason and both saturated shards" true
    (contains ~needle:"\"reason\":\"backpressure\"" r.Http.body
    && contains ~needle:"\"shard\":0" r.Http.body
    && contains ~needle:"\"shard\":1" r.Http.body
    && contains ~needle:"\"capacity\":0" r.Http.body);
  Service.log_stop sat;
  let r = Service.handle sat (req "GET" "/ready") in
  check_int "stopping still answers 503" 503 r.Http.status;
  check_str "stopping takes precedence over back-pressure" "stopping\n"
    r.Http.body;
  Service.shutdown sat;
  (* queues with room: readiness transitions back to plain 200 *)
  let ok = Service.create ~shards:2 ~threaded:true (queries "SEQ(A, B) WITHIN 20") in
  let r = Service.handle ok (req "GET" "/ready") in
  check_int "unsaturated pool stays ready" 200 r.Http.status;
  check_str "plain ready body" "ready\n" r.Http.body;
  Service.shutdown ok

let test_request_id_echo () =
  let s = Service.create (queries "SEQ(A, B) WITHIN 20") in
  with_server (Service.handle s) (fun port ->
      let id_of headers =
        match List.assoc_opt "x-request-id" headers with
        | Some id -> id
        | None -> Alcotest.fail "response missing X-Request-Id"
      in
      let first =
        match
          Http.request_full ~port ~meth:"POST" ~body:"A,1,x\nB,5,y\n" "/ingest"
        with
        | Ok (200, headers, body) ->
            let id = id_of headers in
            check_bool "id is non-empty" true (String.length id > 0);
            check_bool "verdict lines carry the same request id" true
              (contains
                 ~needle:(Printf.sprintf "\"request_id\":\"%s\"" id)
                 body);
            id
        | Ok (st, _, b) -> Alcotest.failf "ingest HTTP %d: %s" st b
        | Error e -> Alcotest.failf "ingest: %s" e
      in
      (match Http.request_full ~port ~meth:"GET" "/health" with
      | Ok (200, headers, _) ->
          check_bool "each request gets a fresh id" true
            (not (String.equal first (id_of headers)))
      | _ -> Alcotest.fail "health failed");
      (* errors echo the id too *)
      match Http.request_full ~port ~meth:"GET" "/nosuch" with
      | Ok (404, headers, _) ->
          check_bool "404 carries an id as well" true
            (String.length (id_of headers) > 0)
      | _ -> Alcotest.fail "expected 404")

(* The tentpole acceptance: a pooled keep-alive soak with capture on
   retains complete span trees — unique ids, exactly one conn-queue-wait
   pair, at least one shard-service span, one write span, and no
   orphaned opens after a clean stop. *)
let test_trace_capture_soak () =
  Obs.Request.configure ~threshold_us:0 ~capacity:256 ();
  Obs.Request.clear_retained ();
  Fun.protect ~finally:Obs.Request.disable (fun () ->
      let service =
        Service.create ~shards:2 ~threaded:true (queries "SEQ(A, B) WITHIN 20")
      in
      let server = Http.listen ~port:0 () in
      let port = Http.port server in
      let pool_d =
        Domain.spawn (fun () ->
            Http.serve_pool ~workers:3 server (Service.handle service))
      in
      let clients =
        List.init 3 (fun c ->
            Domain.spawn (fun () ->
                let conn = Http.Client.connect ~port in
                let ok = ref 0 in
                for i = 0 to 9 do
                  let key = Printf.sprintf "t%d" c in
                  let ts = i * 10 in
                  let body =
                    Printf.sprintf "A,%d,a,%s\nB,%d,b,%s\n" ts key (ts + 5) key
                  in
                  match Http.Client.post conn "/ingest" body with
                  | Ok (200, _) -> incr ok
                  | _ -> ()
                done;
                Http.Client.close conn;
                !ok))
      in
      let totals = List.map Domain.join clients in
      (* the debug surface over HTTP while the pool is still serving *)
      let slow_json =
        match Http.get ~port "/debug/slow" with
        | Ok (200, body) -> body
        | _ -> Alcotest.fail "GET /debug/slow failed"
      in
      (match Http.get ~port "/debug/slow?format=jsonl" with
      | Ok (200, _) -> ()
      | _ -> Alcotest.fail "jsonl export failed");
      (match Http.get ~port "/debug/slow?format=chrome" with
      | Ok (200, _) -> ()
      | _ -> Alcotest.fail "chrome export failed");
      (match Http.get ~port "/debug/slow?format=nope" with
      | Ok (400, _) -> ()
      | _ -> Alcotest.fail "unknown format must answer 400");
      Http.stop server;
      Domain.join pool_d;
      Service.shutdown service;
      List.iter (fun n -> check_int "every soak ingest succeeded" 10 n) totals;
      check_bool "/debug/slow shows shard-service spans" true
        (contains ~needle:"serve.shard.service" slow_json
        && contains ~needle:"\"queue_wait\":" slow_json);
      let retained = Obs.Request.retained () in
      let ids = List.map (fun (i : Obs.Request.info) -> i.r_id) retained in
      check_int "request ids are unique across the soak" (List.length ids)
        (List.length (List.sort_uniq compare ids));
      let posts =
        List.filter
          (fun (i : Obs.Request.info) -> String.equal i.r_meth "POST")
          retained
      in
      check_int "every soak ingest was retained at threshold 0" 30
        (List.length posts);
      List.iter
        (fun (i : Obs.Request.info) ->
          let opens =
            List.filter_map
              (fun (e : Obs.Trace.event) ->
                match e.kind with
                | Obs.Trace.Span_open { name; _ } -> Some (e.span, name)
                | _ -> None)
              i.r_events
          in
          let closes =
            List.filter_map
              (fun (e : Obs.Trace.event) ->
                match e.kind with
                | Obs.Trace.Span_close _ -> Some e.span
                | _ -> None)
              i.r_events
          in
          let count name =
            List.length
              (List.filter (fun (_, n) -> String.equal n name) opens)
          in
          check_int "no capture events were dropped" 0 i.r_events_dropped;
          check_int "one serve.request root span" 1 (count "serve.request");
          check_int "exactly one conn-queue-wait span" 1
            (count "serve.request.queue_wait");
          check_bool "at least one shard-service span" true
            (count "serve.shard.service" >= 1);
          check_int "exactly one write span" 1 (count "serve.request.write");
          check_int "no orphaned span opens after clean stop" 0
            (List.length
               (List.filter (fun (id, _) -> not (List.mem id closes)) opens));
          check_bool "all events share the request's trace id" true
            (match i.r_events with
            | [] -> false
            | e0 :: rest ->
                List.for_all
                  (fun (e : Obs.Trace.event) -> e.trace_id = e0.trace_id)
                  rest))
        posts;
      Obs.Request.clear_retained ())

let test_shed_capture_and_429_body () =
  Obs.Request.configure ~threshold_us:0 ~capacity:16 ();
  Obs.Request.clear_retained ();
  Fun.protect ~finally:Obs.Request.disable (fun () ->
      let s =
        Service.create ~shards:2 ~shard_queue:0 ~threaded:true
          (queries "SEQ(A, B) WITHIN 20")
      in
      let shed_id =
        with_server (Service.handle s) (fun port ->
            match
              Http.request_full ~port ~meth:"POST" ~body:"A,1,x,k\nB,5,y,k\n"
                "/ingest"
            with
            | Ok (429, headers, body) ->
                let id =
                  match List.assoc_opt "x-request-id" headers with
                  | Some id -> id
                  | None -> Alcotest.fail "429 missing X-Request-Id"
                in
                check_bool "429 body is JSON naming the overload" true
                  (contains ~needle:"overloaded" body);
                check_bool "429 body carries the request id" true
                  (contains ~needle:id body);
                id
            | Ok (st, _, b) -> Alcotest.failf "expected 429, got %d: %s" st b
            | Error e -> Alcotest.failf "shed request failed: %s" e)
      in
      Service.shutdown s;
      let infos = Obs.Request.retained () in
      check_bool "the shed request was retained with its flags" true
        (List.exists
           (fun (i : Obs.Request.info) ->
             String.equal i.r_id shed_id && i.r_shed && i.r_status = 429)
           infos);
      Obs.Request.clear_retained ())

let test_access_log () =
  let buf = Buffer.create 512 in
  let old_level = Obs.Log.level () in
  Obs.Log.set_sink (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  Obs.Log.set_level (Some Obs.Log.Info);
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_level old_level;
      Obs.Request.set_access_level (Some Obs.Log.Info);
      Obs.Log.reset_sink ())
    (fun () ->
      let s = Service.create (queries "SEQ(A, B) WITHIN 20") in
      with_server (Service.handle s) (fun port ->
          match Http.post ~port "/ingest" "A,1,x\nB,5,y\n" with
          | Ok (200, _) -> ()
          | _ -> Alcotest.fail "ingest failed");
      let out = Buffer.contents buf in
      check_bool "serve.access line emitted at info" true
        (contains ~needle:"\"event\":\"serve.access\"" out);
      check_bool "access line decomposes the latency" true
        (contains ~needle:"\"queue_wait_us\":" out
        && contains ~needle:"\"read_us\":" out
        && contains ~needle:"\"service_us\":" out
        && contains ~needle:"\"write_us\":" out
        && contains ~needle:"\"total_us\":" out);
      check_bool "access line carries id, route and flags" true
        (contains ~needle:"\"id\":\"" out
        && contains ~needle:"\"path\":\"/ingest\"" out
        && contains ~needle:"\"status\":200" out
        && contains ~needle:"\"shed\":false" out);
      (* --access-log off: the line disappears without touching the rest
         of the logging config *)
      Obs.Request.set_access_level None;
      Buffer.clear buf;
      let s2 = Service.create (queries "SEQ(A, B) WITHIN 20") in
      with_server (Service.handle s2) (fun port ->
          match Http.post ~port "/ingest" "A,1,x\nB,5,y\n" with
          | Ok (200, _) -> ()
          | _ -> Alcotest.fail "second ingest failed");
      check_bool "access level None suppresses the line" false
        (contains ~needle:"\"event\":\"serve.access\"" (Buffer.contents buf)))

(* /debug/gc, /debug/slow?limit, POST /debug/slow/clear, and the GC/shard
   fields woven into slow_json — end to end against a live server with the
   runtime-events poller running. *)
let test_debug_gc_and_slow_controls () =
  Obs.Request.configure ~threshold_us:0 ~capacity:64 ();
  Obs.Request.clear_retained ();
  Obs.Rt_events.reset_for_test ();
  Obs.Rt_events.start ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Rt_events.stop ();
      Obs.Rt_events.reset_for_test ();
      Obs.Request.disable ();
      Obs.Request.clear_retained ())
    (fun () ->
      let s =
        Service.create ~shards:4 ~threaded:true (queries "SEQ(A, B) WITHIN 20")
      in
      with_server (Service.handle s) (fun port ->
          for i = 1 to 5 do
            let body =
              Printf.sprintf "A,%d,a,k%d\nB,%d,b,k%d\n" i i (i + 3) i
            in
            match Http.post ~port "/ingest" body with
            | Ok (200, _) -> ()
            | Ok (st, b) -> Alcotest.failf "ingest %d: status %d: %s" i st b
            | Error e -> Alcotest.failf "ingest %d failed: %s" i e
          done;
          (* slow_json carries the shard set and the GC decomposition *)
          (match Http.get ~port "/debug/slow" with
          | Ok (200, body) ->
              check_bool "slow_json rows carry shard indices" true
                (contains ~needle:"\"shards\":[" body);
              check_bool "slow_json rows carry the gc_us object" true
                (contains ~needle:"\"gc_us\":" body);
              check_bool "slow_json spans carry per-span gc overlap" true
                (contains ~needle:"\"gc_overlap_us\":" body)
          | Ok (st, b) -> Alcotest.failf "/debug/slow: status %d: %s" st b
          | Error e -> Alcotest.failf "/debug/slow failed: %s" e);
          (* ?limit=N returns the N most recent requests *)
          (match Http.get ~port "/debug/slow?limit=2" with
          | Ok (200, body) -> (
              match Report.Json.of_string body with
              | Ok (Report.Json.Obj fields) -> (
                  match List.assoc_opt "requests" fields with
                  | Some (Report.Json.List reqs) ->
                      check_int "limit=2 returns two requests" 2
                        (List.length reqs)
                  | _ -> Alcotest.fail "limit=2: no requests array")
              | _ -> Alcotest.fail "limit=2: response is not a JSON object")
          | Ok (st, b) -> Alcotest.failf "limit=2: status %d: %s" st b
          | Error e -> Alcotest.failf "limit=2 failed: %s" e);
          (match Http.get ~port "/debug/slow?limit=0" with
          | Ok (200, body) ->
              check_bool "limit=0 returns an empty request list" true
                (contains ~needle:"\"requests\":[]" body)
          | Ok (st, b) -> Alcotest.failf "limit=0: status %d: %s" st b
          | Error e -> Alcotest.failf "limit=0 failed: %s" e);
          (match Http.get ~port "/debug/slow?limit=bogus" with
          | Ok (400, _) -> ()
          | Ok (st, b) ->
              Alcotest.failf "malformed limit: expected 400, got %d: %s" st b
          | Error e -> Alcotest.failf "malformed limit failed: %s" e);
          (* /debug/gc reports the live poller state *)
          Gc.full_major ();
          ignore (Obs.Rt_events.poll_now ());
          (match Http.get ~port "/debug/gc" with
          | Ok (200, body) ->
              check_bool "/debug/gc says the poller is running" true
                (contains ~needle:"\"running\":true" body);
              check_bool "/debug/gc lists per-domain summaries" true
                (contains ~needle:"\"dom\":" body);
              check_bool "/debug/gc carries the recent-pause rings" true
                (contains ~needle:"\"recent\":" body)
          | Ok (st, b) -> Alcotest.failf "/debug/gc: status %d: %s" st b
          | Error e -> Alcotest.failf "/debug/gc failed: %s" e);
          (match Http.get ~port "/metrics" with
          | Ok (200, body) ->
              check_bool "pause histogram reaches the exposition" true
                (contains ~needle:"whynot_runtime_gc_pause_duration_us" body)
          | Ok (st, b) -> Alcotest.failf "/metrics: status %d: %s" st b
          | Error e -> Alcotest.failf "/metrics failed: %s" e);
          (* clearing the retained set: POST only *)
          (match Http.get ~port "/debug/slow/clear" with
          | Ok (405, _) -> ()
          | Ok (st, b) ->
              Alcotest.failf "GET clear: expected 405, got %d: %s" st b
          | Error e -> Alcotest.failf "GET clear failed: %s" e);
          (match Http.post ~port "/debug/slow/clear" "" with
          | Ok (200, body) ->
              check_bool "clear acknowledges" true
                (contains ~needle:"cleared" body)
          | Ok (st, b) -> Alcotest.failf "POST clear: status %d: %s" st b
          | Error e -> Alcotest.failf "POST clear failed: %s" e);
          (* the clear request itself may be retained after its own scope
             finalizes, but no earlier /ingest capture survives *)
          let infos = Obs.Request.retained () in
          check_bool "clear drops the retained ingest requests" false
            (List.exists
               (fun (i : Obs.Request.info) ->
                 String.equal i.r_path "/ingest")
               infos));
      Service.shutdown s)

let suite =
  ( "serve",
    [
      Alcotest.test_case "ingest line grammar" `Quick test_ingest_lines;
      Alcotest.test_case "routing" `Quick test_routing;
      Alcotest.test_case "stdin mode rejects HTTP ingest" `Quick
        test_stdin_mode_rejects_http_ingest;
      Alcotest.test_case "POST /ingest JSONL verdicts" `Quick test_ingest_route;
      Alcotest.test_case "ingest_line results" `Quick test_ingest_line_results;
      Alcotest.test_case "http end-to-end" `Quick test_http_end_to_end;
      Alcotest.test_case "http rejects malformed input" `Quick
        test_http_rejects_malformed;
      Alcotest.test_case "http idle connection times out" `Quick
        test_http_idle_connection_times_out;
      Alcotest.test_case "http survives client reset" `Quick
        test_http_survives_client_reset;
      Alcotest.test_case "replay under concurrent scrape" `Quick
        test_replay_under_scrape;
      Alcotest.test_case "shard routing" `Quick test_shard_routing;
      Alcotest.test_case "cross-shard differential vs sequential detectors"
        `Quick test_cross_shard_differential;
      Alcotest.test_case "keyless streams bit-identical to inline" `Quick
        test_keyless_bit_identity;
      Alcotest.test_case "full shard queue sheds with 429" `Quick
        test_shed_429;
      Alcotest.test_case "pool soak: concurrent ingest and scrape" `Quick
        test_pool_soak;
      Alcotest.test_case "pool clean stop with in-flight connections" `Quick
        test_pool_clean_stop;
      Alcotest.test_case "keep-alive reuse and per-connection cap" `Quick
        test_keepalive_reuse_and_cap;
      Alcotest.test_case "/ready reflects shard back-pressure" `Quick
        test_ready_backpressure;
      Alcotest.test_case "request ids echoed and stamped on verdicts" `Quick
        test_request_id_echo;
      Alcotest.test_case "trace capture soak: complete span trees" `Quick
        test_trace_capture_soak;
      Alcotest.test_case "shed requests captured with 429 JSON body" `Quick
        test_shed_capture_and_429_body;
      Alcotest.test_case "access log decomposition" `Quick test_access_log;
      Alcotest.test_case "/debug/gc and slow-capture controls" `Quick
        test_debug_gc_and_slow_controls;
    ] )
