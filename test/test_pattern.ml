open Whynot
module Ast = Pattern.Ast
module Parse = Pattern.Parse
module Matcher = Pattern.Matcher
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p s = Parse.pattern_exn s

(* --- AST --- *)

let test_constructors_and_size () =
  let q = Ast.seq ~atleast:10 [ Ast.event "A"; Ast.and_ [ Ast.event "B"; Ast.event "C" ] ] in
  check_int "size" 5 (Ast.size q);
  check_int "depth" 3 (Ast.depth q);
  check_int "count_and" 1 (Ast.count_and q);
  check_bool "events" true
    (Events.Event.Set.equal (Ast.events q) (Events.Event.Set.of_list [ "A"; "B"; "C" ]))

let shape =
  Alcotest.testable
    (fun ppf -> function
      | Ast.Simple -> Format.fprintf ppf "Simple"
      | Ast.And_no_seq_inside -> Format.fprintf ppf "And_no_seq_inside"
      | Ast.General -> Format.fprintf ppf "General")
    ( = )

let test_classify () =
  Alcotest.check shape "single event" Ast.Simple (Ast.classify (p "E1"));
  Alcotest.check shape "seq only" Ast.Simple (Ast.classify (p "SEQ(E1, SEQ(E2, E3))"));
  Alcotest.check shape "flat and" Ast.And_no_seq_inside (Ast.classify (p "AND(E1, E2)"));
  Alcotest.check shape "and of events under seq" Ast.And_no_seq_inside
    (Ast.classify (p "SEQ(E1, AND(E2, E3))"));
  Alcotest.check shape "seq inside and" Ast.General
    (Ast.classify (p "AND(SEQ(E1, E2), E3)"));
  Alcotest.check shape "deep seq inside and" Ast.General
    (Ast.classify (p "SEQ(AND(E0, AND(E1, SEQ(E2, E3))), E4)"));
  Alcotest.check shape "set join takes worst" Ast.General
    (Ast.classify_set [ p "SEQ(E1, E2)"; p "AND(SEQ(E3, E4), E5)" ]);
  Alcotest.check shape "empty set is simple" Ast.Simple (Ast.classify_set [])

let test_validate () =
  check_bool "valid" true (Result.is_ok (Ast.validate (p "SEQ(E1, E2) ATLEAST 1 WITHIN 2")));
  check_bool "inverted window" true
    (Ast.validate (Ast.seq ~atleast:5 ~within:2 [ Ast.event "A"; Ast.event "B" ])
    = Error (Ast.Inverted_window (5, 2)));
  check_bool "duplicate event" true
    (Ast.validate (Ast.seq [ Ast.event "A"; Ast.event "A" ])
    = Error (Ast.Duplicate_event "A"));
  check_bool "empty composition" true
    (Ast.validate (Ast.seq []) = Error Ast.Empty_composition);
  check_bool "negative bound" true
    (Ast.validate (Ast.seq ~atleast:(-1) [ Ast.event "A"; Ast.event "B" ])
    = Error (Ast.Negative_bound (-1)));
  check_bool "duplicate across set is fine" true
    (Result.is_ok (Ast.validate_set [ p "SEQ(E1, E2)"; p "AND(E1, E3)" ]))

(* --- Parser --- *)

let test_parse_basics () =
  check_bool "single event" true (p "E1" = Ast.event "E1");
  check_bool "keywords case-insensitive" true
    (p "seq(E1, E2) atleast 3 within 5" = Ast.seq ~atleast:3 ~within:5 [ Ast.event "E1"; Ast.event "E2" ]);
  check_bool "units hours" true
    (p "SEQ(E1, E2) ATLEAST 2 hours" = Ast.seq ~atleast:120 [ Ast.event "E1"; Ast.event "E2" ]);
  check_bool "units minutes" true
    (p "SEQ(E1, E2) WITHIN 30 minutes" = Ast.seq ~within:30 [ Ast.event "E1"; Ast.event "E2" ]);
  check_bool "units days" true
    (p "SEQ(E1, E2) WITHIN 2 d" = Ast.seq ~within:2880 [ Ast.event "E1"; Ast.event "E2" ]);
  check_bool "window order free" true
    (p "SEQ(E1, E2) WITHIN 5 ATLEAST 3" = p "SEQ(E1, E2) ATLEAST 3 WITHIN 5")

let test_parse_errors () =
  let fails s = check_bool s true (Result.is_error (Parse.pattern s)) in
  fails "SEQ(E1,)";
  fails "SEQ()";
  fails "SEQ(E1";
  fails "E1 E2";
  fails "SEQ(E1, E2) ATLEAST 5 ATLEAST 6";
  fails "SEQ(E1, E2) ATLEAST 9 WITHIN 3" (* inverted window caught by validate *);
  fails "SEQ(E1, E1)" (* duplicate event *);
  fails "WITHIN 3";
  fails "SEQ(E1, E2) ATLEAST x";
  fails "@#!";
  fails ""

let contains msg needle =
  let nl = String.length needle and ml = String.length msg in
  let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let test_parse_error_positions () =
  let check_has name needle = function
    | Ok _ -> Alcotest.failf "%s: expected a parse error" name
    | Error msg ->
        check_bool (Printf.sprintf "%s: %S in %S" name needle msg) true
          (contains msg needle)
  in
  (* failure on line 3 of a multi-line pattern set *)
  let input = "SEQ(E1, E2);\nAND(E3, E4) WITHIN 9;\nSEQ(E5,)" in
  check_has "line of failure" "line 3" (Parse.pattern_set input);
  check_has "column of failure" "column 8" (Parse.pattern_set input);
  check_has "single-line position" "line 1, column 5" (Parse.pattern "SEQ(,E1)");
  (* an oversized integer literal is a parse error, not an escaping Failure *)
  check_has "huge duration literal" "out of range"
    (Parse.pattern "SEQ(E1, E2) WITHIN 99999999999999999999")

let test_parse_set () =
  match Parse.pattern_set "SEQ(E1, E2); AND(E3, E4) WITHIN 9" with
  | Ok [ a; b ] ->
      check_bool "first" true (a = p "SEQ(E1, E2)");
      check_bool "second" true (b = p "AND(E3, E4) WITHIN 9")
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip" ~count:300 (Gen.pattern ())
    (fun pat ->
      match Parse.pattern (Ast.to_string pat) with
      | Ok pat' -> Ast.equal pat pat'
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

let prop_validate_generated =
  QCheck.Test.make ~name:"generated patterns are valid" ~count:300 (Gen.pattern ())
    (fun pat -> Result.is_ok (Ast.validate pat))

(* --- Matcher --- *)

let test_match_event () =
  let t = Tuple.of_list [ ("E1", 5) ] in
  check_bool "present" true (Matcher.matches t (p "E1"));
  check_bool "missing" false (Matcher.matches t (p "E2"))

let test_match_seq () =
  let q = p "SEQ(E1, E2, E3)" in
  check_bool "ordered" true
    (Matcher.matches (Tuple.of_list [ ("E1", 1); ("E2", 2); ("E3", 3) ]) q);
  check_bool "equal timestamps allowed" true
    (Matcher.matches (Tuple.of_list [ ("E1", 2); ("E2", 2); ("E3", 2) ]) q);
  check_bool "out of order" false
    (Matcher.matches (Tuple.of_list [ ("E1", 1); ("E2", 5); ("E3", 3) ]) q)

let test_match_seq_window () =
  let q = p "SEQ(E1, E2) ATLEAST 10 WITHIN 20" in
  let t d = Tuple.of_list [ ("E1", 100); ("E2", 100 + d) ] in
  check_bool "below atleast" false (Matcher.matches (t 9) q);
  check_bool "at atleast" true (Matcher.matches (t 10) q);
  check_bool "inside" true (Matcher.matches (t 15) q);
  check_bool "at within" true (Matcher.matches (t 20) q);
  check_bool "above within" false (Matcher.matches (t 21) q)

let test_match_and () =
  let q = p "AND(E1, E2) WITHIN 30" in
  check_bool "either order ok (E1 first)" true
    (Matcher.matches (Tuple.of_list [ ("E1", 10); ("E2", 35) ]) q);
  check_bool "either order ok (E2 first)" true
    (Matcher.matches (Tuple.of_list [ ("E1", 35); ("E2", 10) ]) q);
  check_bool "too far apart" false
    (Matcher.matches (Tuple.of_list [ ("E1", 10); ("E2", 41) ]) q)

let test_match_nested () =
  (* The paper's p0: overlap of two transfers with >= 2h span. *)
  let q = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" in
  let t = Tuple.of_list [ ("E1", 1028); ("E2", 1138); ("E3", 1045); ("E4", 1153) ] in
  check_bool "matches" true (Matcher.matches t q);
  (* E3 after E2 starts the second AND before the first ends: SEQ broken. *)
  let t_bad = Tuple.add "E3" 1140 t in
  check_bool "overlap violation" false (Matcher.matches t_bad q)

let test_match_failure_reporting () =
  let q = p "SEQ(E1, E2) WITHIN 5" in
  (match Matcher.span (Tuple.of_list [ ("E1", 0) ]) q with
  | Error (Matcher.Missing_event "E2") -> ()
  | _ -> Alcotest.fail "expected Missing_event E2");
  (match Matcher.span (Tuple.of_list [ ("E1", 9); ("E2", 3) ]) q with
  | Error (Matcher.Order_violation _) -> ()
  | _ -> Alcotest.fail "expected Order_violation");
  (match Matcher.span (Tuple.of_list [ ("E1", 0); ("E2", 9) ]) q with
  | Error (Matcher.Window_violation _) -> ()
  | _ -> Alcotest.fail "expected Window_violation");
  check_bool "explain_failure none on match" true
    (Matcher.explain_failure (Tuple.of_list [ ("E1", 0); ("E2", 3) ]) [ q ] = None)

let test_match_set () =
  let ps = [ p "SEQ(E1, E2)"; p "AND(E2, E3) WITHIN 4" ] in
  check_bool "all match" true
    (Matcher.matches_set (Tuple.of_list [ ("E1", 0); ("E2", 5); ("E3", 3) ]) ps);
  check_bool "one fails" false
    (Matcher.matches_set (Tuple.of_list [ ("E1", 0); ("E2", 5); ("E3", 0) ]) ps)

(* matching is invariant under time shift *)
let prop_shift_invariance =
  QCheck.Test.make ~name:"matching invariant under time shift" ~count:300
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      let shifted = Tuple.map (fun _ ts -> ts + 37) t in
      Matcher.matches t pat = Matcher.matches shifted pat)

let qt = Gen.qt

let suite =
  ( "pattern",
    [
      Alcotest.test_case "constructors/size/depth" `Quick test_constructors_and_size;
      Alcotest.test_case "classification (Table 2)" `Quick test_classify;
      Alcotest.test_case "validation" `Quick test_validate;
      Alcotest.test_case "parse basics" `Quick test_parse_basics;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse error positions" `Quick test_parse_error_positions;
      Alcotest.test_case "parse pattern set" `Quick test_parse_set;
      qt prop_roundtrip;
      qt prop_validate_generated;
      Alcotest.test_case "match single event" `Quick test_match_event;
      Alcotest.test_case "match SEQ order" `Quick test_match_seq;
      Alcotest.test_case "match SEQ window" `Quick test_match_seq_window;
      Alcotest.test_case "match AND any order" `Quick test_match_and;
      Alcotest.test_case "match nested (paper p0)" `Quick test_match_nested;
      Alcotest.test_case "failure reporting" `Quick test_match_failure_reporting;
      Alcotest.test_case "match pattern set" `Quick test_match_set;
      qt prop_shift_invariance;
    ] )
