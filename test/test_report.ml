open Whynot
module Json = Report.Json
module Render = Report.Render
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let p = Pattern.Parse.pattern_exn

let test_to_string_basics () =
  check_str "null" "null" (Json.to_string Json.Null);
  check_str "bool" "true" (Json.to_string (Json.Bool true));
  check_str "int" "-42" (Json.to_string (Json.Int (-42)));
  check_str "float" "1.5" (Json.to_string (Json.Float 1.5));
  check_str "integral float keeps decimal" "3.0" (Json.to_string (Json.Float 3.0));
  check_str "string escaped" "\"a\\\"b\\nc\"" (Json.to_string (Json.String "a\"b\nc"));
  check_str "list" "[1,2]" (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]));
  check_str "obj" "{\"a\":1}" (Json.to_string (Json.Obj [ ("a", Json.Int 1) ]));
  check_str "empty containers" "[{},[]]"
    (Json.to_string (Json.List [ Json.Obj []; Json.List [] ]))

let test_pretty_print () =
  let v = Json.Obj [ ("a", Json.List [ Json.Int 1 ]) ] in
  check_str "indented" "{\n  \"a\": [\n    1\n  ]\n}" (Json.to_string ~indent:2 v)

let test_parse_basics () =
  check_bool "null" true (Json.of_string "null" = Ok Json.Null);
  check_bool "ints" true (Json.of_string "[1, -2, 30]"
                          = Ok (Json.List [ Json.Int 1; Json.Int (-2); Json.Int 30 ]));
  check_bool "float" true (Json.of_string "1.25" = Ok (Json.Float 1.25));
  check_bool "nested" true
    (Json.of_string "{\"a\": {\"b\": [true, false, null]}}"
    = Ok
        (Json.Obj
           [ ("a", Json.Obj [ ("b", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]) ]) ]));
  check_bool "string escapes" true
    (Json.of_string "\"a\\nb\"" = Ok (Json.String "a\nb"))

let test_parse_errors () =
  let fails s = check_bool s true (Result.is_error (Json.of_string s)) in
  fails "";
  fails "{";
  fails "[1,]";
  fails "{\"a\" 1}";
  fails "\"unterminated";
  fails "tru";
  fails "1 2"

let test_accessors () =
  let v = Json.Obj [ ("n", Json.Int 5); ("s", Json.String "x") ] in
  check_bool "member" true (Json.member "n" v = Some (Json.Int 5));
  check_bool "member missing" true (Json.member "z" v = None);
  check_bool "to_int" true (Json.to_int (Json.Int 3) = Some 3);
  check_bool "to_float of int" true (Json.to_float (Json.Int 3) = Some 3.0);
  check_bool "to_string_opt" true (Json.to_string_opt (Json.String "q") = Some "q");
  check_bool "to_bool" true (Json.to_bool (Json.Bool false) = Some false);
  check_bool "to_list" true (Json.to_list (Json.List []) = Some [])

(* Round trip: serialize then parse gives the same value. *)
let json_gen : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 1 then
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun n -> Json.Int n) (int_range (-1000) 1000);
                map (fun s -> Json.String s) (string_size ~gen:printable (return 5));
              ]
          else
            oneof
              [
                map (fun l -> Json.List l) (list_size (return 3) (self (size / 2)));
                map
                  (fun l -> Json.Obj (List.mapi (fun i v -> ("k" ^ string_of_int i, v)) l))
                  (list_size (return 3) (self (size / 2)));
              ])
        (min size 16))

let prop_roundtrip =
  QCheck.Test.make ~name:"json print/parse round trip" ~count:300
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~indent:2 v) = Ok v)

(* --- renderings --- *)

let p0 = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120"
let t2 = Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]

let test_render_modification () =
  let r = Option.get (Explain.Modification.explain [ p0 ] t2) in
  let v = Render.modification ~original:t2 r in
  check_bool "cost field" true (Json.member "cost" v = Some (Json.Int 44));
  check_bool "valid json" true (Result.is_ok (Json.of_string (Json.to_string v)))

let test_render_pipeline_routes () =
  let outcome = Explain.Pipeline.explain [ p0 ] t2 in
  let v = Render.pipeline ~original:t2 outcome in
  check_bool "outcome tagged" true
    (Json.member "outcome" v = Some (Json.String "modify_timestamps"));
  let inconsistent =
    Explain.Pipeline.explain
      [ p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45" ]
      t2
  in
  check_bool "inconsistent tagged" true
    (Json.member "outcome" (Render.pipeline ~original:t2 inconsistent)
    = Some (Json.String "inconsistent_query"))

let test_render_tuple_hides_artificial () =
  let t = Tuple.add (Events.Event.artificial_start 0) 7 t2 in
  match Render.tuple t with
  | Json.Obj fields -> check_bool "four fields" true (List.length fields = 4)
  | _ -> Alcotest.fail "expected object"

let test_render_diagnose () =
  let trace = Events.Trace.of_list [ ("x", t2) ] in
  let d = Explain.Diagnose.run [ p0 ] trace in
  let v = Render.diagnose d in
  check_bool "total" true (Json.member "total" v = Some (Json.Int 1));
  check_bool "reparses" true (Result.is_ok (Json.of_string (Json.to_string ~indent:2 v)))

(* --- Obs_json.snapshot_delta: per-section interval arithmetic --- *)

let check_int = Alcotest.(check int)

let hist ?(bounds = [ Some 10; None ]) count sum per_bin =
  { Obs.h_count = count; h_sum = sum; h_buckets = List.combine bounds per_bin }

let test_snapshot_delta () =
  let old_ =
    {
      Obs.counters = [ ("c.kept", 10); ("c.gone", 4) ];
      gauges = [ ("g.live", 5) ];
      histograms = [ ("h.lat", hist 3 30 [ 2; 1 ]) ];
      spans = [ ("s.t", { Obs.s_count = 2; total_ns = 200; max_ns = 150 }) ];
    }
  in
  let cur =
    {
      Obs.counters = [ ("c.kept", 17); ("c.new", 3) ];
      gauges = [ ("g.live", 9) ];
      histograms = [ ("h.lat", hist 7 95 [ 4; 3 ]) ];
      spans = [ ("s.t", { Obs.s_count = 5; total_ns = 900; max_ns = 400 }) ];
    }
  in
  let d = Report.Obs_json.snapshot_delta old_ cur in
  check_int "counter subtracts" 7 (List.assoc "c.kept" d.Obs.counters);
  check_int "counter missing in old counts from zero" 3
    (List.assoc "c.new" d.Obs.counters);
  check_bool "counter only in old dropped" true
    (List.assoc_opt "c.gone" d.Obs.counters = None);
  check_int "gauge is point-in-time, not a difference" 9
    (List.assoc "g.live" d.Obs.gauges);
  let dh = List.assoc "h.lat" d.Obs.histograms in
  check_int "histogram count subtracts" 4 dh.Obs.h_count;
  check_int "histogram sum subtracts" 65 dh.Obs.h_sum;
  Alcotest.(check (list (pair (option int) int)))
    "matching buckets subtract pairwise"
    [ (Some 10, 2); (None, 2) ]
    dh.Obs.h_buckets;
  let ds = List.assoc "s.t" d.Obs.spans in
  check_int "span count subtracts" 3 ds.Obs.s_count;
  check_int "span total subtracts" 700 ds.Obs.total_ns;
  check_int "span max is the current running max" 400 ds.Obs.max_ns;
  (* changed bucket bounds: no pairwise story, keep the current shape *)
  let rebucketed =
    Report.Obs_json.snapshot_delta
      { old_ with Obs.histograms = [ ("h.lat", hist ~bounds:[ Some 99; None ] 3 30 [ 3; 0 ]) ] }
      cur
  in
  Alcotest.(check (list (pair (option int) int)))
    "mismatched bounds keep current buckets"
    [ (Some 10, 4); (None, 3) ]
    (List.assoc "h.lat" rebucketed.Obs.histograms).Obs.h_buckets;
  (* a reset between the snapshots shows up as a negative delta, not a lie *)
  let reset_delta = Report.Obs_json.snapshot_delta cur old_ in
  check_int "negative delta is visible" (-7)
    (List.assoc "c.kept" reset_delta.Obs.counters)

let suite =
  ( "report",
    [
      Alcotest.test_case "serialize basics" `Quick test_to_string_basics;
      Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
      Alcotest.test_case "pretty print" `Quick test_pretty_print;
      Alcotest.test_case "parse basics" `Quick test_parse_basics;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Gen.qt prop_roundtrip;
      Alcotest.test_case "render modification" `Quick test_render_modification;
      Alcotest.test_case "render pipeline routes" `Quick test_render_pipeline_routes;
      Alcotest.test_case "render hides artificial events" `Quick
        test_render_tuple_hides_artificial;
      Alcotest.test_case "render diagnose" `Quick test_render_diagnose;
    ] )
