open Whynot
module Detector = Cep.Detector
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

let inst event timestamp tag = { Detector.event; timestamp; tag }

let test_simple_seq_match () =
  let d = Detector.create [ p "SEQ(A, B) ATLEAST 2 WITHIN 10" ] in
  let m1 = Detector.feed d (inst "A" 0 "a0") in
  check_int "no match yet" 0 (List.length m1);
  let m2 = Detector.feed d (inst "B" 5 "b0") in
  check_int "one match" 1 (List.length m2);
  let m = List.hd m2 in
  check_int "tuple A" 0 (Tuple.find m.Detector.tuple "A");
  check_int "tuple B" 5 (Tuple.find m.Detector.tuple "B");
  check_bool "tags recorded" true
    (List.sort compare m.Detector.tags = [ ("A", "a0"); ("B", "b0") ])

let test_all_combinations () =
  (* two As then two Bs in window: 4 matches *)
  let d = Detector.create [ p "SEQ(A, B) WITHIN 100" ] in
  let matches =
    Detector.feed_all d
      [ inst "A" 0 "a0"; inst "A" 1 "a1"; inst "B" 2 "b0"; inst "B" 3 "b1" ]
  in
  check_int "four combinations" 4 (List.length matches)

let test_window_pruning () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  ignore (Detector.feed d (inst "A" 0 "a0"));
  check_int "one partial" 1 (Detector.partial_count d);
  (* B arrives too late for a0 *)
  let m = Detector.feed d (inst "B" 50 "b0") in
  check_int "no match" 0 (List.length m);
  (* the expired A partial is gone; only the fresh B partial remains *)
  check_int "expired partial evicted" 1 (Detector.partial_count d)

let test_infeasible_prefix_pruned () =
  (* In SEQ(A, B), a B-then-A pair is infeasible; the A instance cannot
     extend the B partial (it would need A after B). *)
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  ignore (Detector.feed d (inst "B" 0 "b0"));
  let m = Detector.feed d (inst "A" 5 "a0") in
  check_int "no match for reversed order" 0 (List.length m);
  (* partials: fresh B, fresh A; the B+A combination was rejected *)
  check_int "two singleton partials" 2 (Detector.partial_count d)

let test_and_any_order () =
  let d = Detector.create [ p "AND(A, B) WITHIN 10" ] in
  let m = Detector.feed_all d [ inst "B" 3 "b"; inst "A" 5 "a" ] in
  check_int "AND matches in any order" 1 (List.length m)

let test_irrelevant_events_ignored () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  let m = Detector.feed_all d [ inst "X" 0 "x"; inst "A" 1 "a"; inst "Y" 2 "y" ] in
  check_int "no match" 0 (List.length m);
  check_int "X/Y created no partials" 1 (Detector.partial_count d)

let test_out_of_order_feed_rejected () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  ignore (Detector.feed d (inst "A" 10 "a"));
  check_bool "decreasing timestamp raises" true
    (try ignore (Detector.feed d (inst "B" 5 "b")); false
     with Invalid_argument _ -> true)

let test_capacity_bound () =
  let d = Detector.create ~max_partials:3 [ p "SEQ(A, B) WITHIN 1000" ] in
  for i = 0 to 9 do
    ignore (Detector.feed d (inst "A" i (string_of_int i)))
  done;
  check_int "capped" 3 (Detector.partial_count d);
  check_int "evictions counted" 7 (Detector.dropped d);
  check_int "capacity counted as capacity" 7 (Detector.dropped_capacity d);
  check_int "none horizon-evicted" 0 (Detector.evicted_horizon d)

(* Regression: feed used to return early on instances of irrelevant
   types, skipping horizon eviction — dead partials lingered (and
   inflated partial_count) on streams dominated by other event types. *)
let test_irrelevant_feed_still_evicts () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  ignore (Detector.feed d (inst "A" 0 "a0"));
  check_int "one partial" 1 (Detector.partial_count d);
  (* X is not in the query; by now a0 is far beyond the horizon *)
  ignore (Detector.feed d (inst "X" 100 "x0"));
  check_int "dead partial evicted on irrelevant feed" 0 (Detector.partial_count d);
  check_int "horizon eviction accounted" 1 (Detector.evicted_horizon d)

(* Regression: horizon-expired partials were silently discarded without
   touching any counter, so "dropped" accounting only covered capacity
   eviction. The two causes must be distinguishable: capacity evictions
   are lost matches, horizon evictions are not. *)
let test_horizon_vs_capacity_counters () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  ignore (Detector.feed d (inst "A" 0 "a0"));
  ignore (Detector.feed d (inst "A" 1 "a1"));
  ignore (Detector.feed d (inst "A" 100 "a2"));
  check_int "both stale partials evicted by horizon" 2 (Detector.evicted_horizon d);
  check_int "horizon evictions are not capacity drops" 0 (Detector.dropped_capacity d);
  check_int "dropped aliases capacity" 0 (Detector.dropped d);
  check_int "fresh partial lives" 1 (Detector.partial_count d)

let test_create_validation () =
  check_bool "needs horizon" true
    (try ignore (Detector.create [ p "SEQ(A, B)" ]); false
     with Invalid_argument _ -> true);
  check_bool "explicit horizon ok" true
    (ignore (Detector.create ~horizon:50 [ p "SEQ(A, B)" ]); true);
  check_bool "inconsistent query rejected" true
    (try
       ignore (Detector.create [ p "SEQ(SEQ(A, B) ATLEAST 5, C) WITHIN 2" ]);
       false
     with Invalid_argument _ -> true)

let test_paper_pattern_stream () =
  (* p0 over a stream containing exactly one valid transfer combination. *)
  let q = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" in
  (* the root carries no WITHIN, so the stream horizon is explicit: look for
     transfers overlapping within a 4-hour span *)
  let d = Detector.create ~horizon:240 [ q ] in
  let matches =
    Detector.feed_all d
      [
        inst "E1" 1028 "ua104";
        inst "E3" 1045 "dl22";
        inst "E2" 1138 "aa514";
        inst "E4" 1153 "co193";
      ]
  in
  check_int "one match" 1 (List.length matches);
  check_bool "emitted tuple matches the query" true
    (Pattern.Matcher.matches (List.hd matches).Detector.tuple q)

(* Exhaustiveness against a reference: generate a random short stream,
   compare against checking all instance combinations with the matcher. *)
let detector_stream_gen : (Pattern.Ast.t * Detector.instance list) QCheck.Gen.t =
 fun st ->
  let pattern =
    (* small SEQ/AND over 2-3 events with a root window *)
    let open Pattern.Ast in
    let events = [ "A"; "B"; "C" ] in
    let k = 2 + Random.State.int st 2 in
    let evs = List.filteri (fun i _ -> i < k) events in
    let children = List.map event evs in
    if Random.State.bool st then seq ~within:(5 + Random.State.int st 20) children
    else and_ ~within:(5 + Random.State.int st 20) children
  in
  let len = 4 + Random.State.int st 6 in
  let stream =
    List.init len (fun i ->
        let event = List.nth [ "A"; "B"; "C" ] (Random.State.int st 3) in
        { Detector.event; timestamp = i * (1 + Random.State.int st 4);
          tag = string_of_int i })
  in
  let stream =
    List.sort (fun a b -> compare a.Detector.timestamp b.Detector.timestamp) stream
  in
  (pattern, stream)

let reference_matches pattern stream =
  let events = Events.Event.Set.elements (Pattern.Ast.events pattern) in
  (* all ways to pick one instance per event *)
  let rec assignments = function
    | [] -> [ [] ]
    | e :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun i ->
            if i.Detector.event = e then List.map (fun tl -> (e, i) :: tl) tails
            else [])
          stream
  in
  assignments events
  |> List.filter_map (fun choice ->
         let tuple =
           List.fold_left
             (fun acc (e, i) -> Tuple.add e i.Detector.timestamp acc)
             Tuple.empty choice
         in
         if Pattern.Matcher.matches tuple pattern then
           Some (List.sort compare (List.map (fun (e, i) -> (e, i.Detector.tag)) choice))
         else None)
  |> List.sort_uniq compare

let prop_exhaustive =
  QCheck.Test.make ~name:"detector finds exactly the matcher's combinations"
    ~count:150
    (QCheck.make
       ~print:(fun (pat, stream) ->
         Format.asprintf "%a over %d instances" Pattern.Ast.pp pat
           (List.length stream))
       detector_stream_gen)
    (fun (pattern, stream) ->
      let d = Detector.create [ pattern ] in
      let found =
        Detector.feed_all d stream
        |> List.map (fun m -> List.sort compare m.Detector.tags)
        |> List.sort_uniq compare
      in
      Detector.dropped d = 0 && found = reference_matches pattern stream)

let suite =
  ( "detector",
    [
      Alcotest.test_case "simple SEQ match" `Quick test_simple_seq_match;
      Alcotest.test_case "all combinations found" `Quick test_all_combinations;
      Alcotest.test_case "window pruning" `Quick test_window_pruning;
      Alcotest.test_case "infeasible prefix pruned" `Quick test_infeasible_prefix_pruned;
      Alcotest.test_case "AND any order" `Quick test_and_any_order;
      Alcotest.test_case "irrelevant events ignored" `Quick test_irrelevant_events_ignored;
      Alcotest.test_case "out-of-order feed rejected" `Quick test_out_of_order_feed_rejected;
      Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
      Alcotest.test_case "irrelevant feed still evicts" `Quick
        test_irrelevant_feed_still_evicts;
      Alcotest.test_case "horizon vs capacity counters" `Quick
        test_horizon_vs_capacity_counters;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "paper pattern over a stream" `Quick test_paper_pattern_stream;
      Gen.qt prop_exhaustive;
    ] )
