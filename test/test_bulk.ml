open Whynot
module Bulk = Cep.Bulk
module Query = Cep.Query
module Trace = Events.Trace
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let traces_equal a b =
  List.length (Trace.bindings a) = List.length (Trace.bindings b)
  && List.for_all2
       (fun (i1, t1) (i2, t2) -> i1 = i2 && Tuple.equal t1 t2)
       (Trace.bindings a) (Trace.bindings b)

let make_workload seed tuples =
  let prng = Numeric.Prng.create seed in
  let clean = Datagen.Rtfm.generate prng ~tuples in
  let observed = Datagen.Faults.trace prng ~rate:0.2 ~distance:300 clean in
  (Datagen.Rtfm.patterns, observed)

let test_matches_sequential () =
  let patterns, observed = make_workload 21 40 in
  let sequential = Query.explain_trace ~strategy:Explain.Modification.Single patterns observed in
  List.iter
    (fun domains ->
      let parallel =
        Bulk.explain_trace ~domains ~strategy:Explain.Modification.Single patterns
          observed
      in
      check_bool
        (Printf.sprintf "parallel(%d) = sequential" domains)
        true
        (traces_equal sequential parallel))
    [ 1; 2; 4 ]

let test_budget_respected () =
  let patterns, observed = make_workload 22 30 in
  let sequential = Query.explain_trace ~max_cost:100 patterns observed in
  let parallel = Bulk.explain_trace ~domains:3 ~max_cost:100 patterns observed in
  check_bool "budgeted results equal" true (traces_equal sequential parallel)

let test_map_tuples_order_and_coverage () =
  let trace =
    Trace.of_list (List.init 17 (fun i -> (Printf.sprintf "t%02d" i, Tuple.of_list [ ("A", i) ])))
  in
  let results = Bulk.map_tuples ~domains:4 (fun _id t -> Tuple.find t "A" * 2) trace in
  check_int "all covered" 17 (List.length results);
  List.iteri
    (fun i (id, v) ->
      check_bool "order preserved" true (id = Printf.sprintf "t%02d" i && v = 2 * i))
    results

(* Regression: tuples whose repair attempt raises used to be kept silently;
   the failure is now recorded in the bulk.tuples_failed counter. *)
let test_failed_tuples_accounted () =
  let patterns = [ Pattern.Parse.pattern_exn "SEQ(A, B)" ] in
  (* misses event B entirely, so explain_network rejects it outright *)
  let observed = Trace.of_list [ ("t1", Tuple.of_list [ ("A", 0) ]) ] in
  let before = Option.value ~default:0 (Obs.find_counter "bulk.tuples_failed") in
  let out = Bulk.explain_trace ~domains:1 patterns observed in
  let after = Option.value ~default:0 (Obs.find_counter "bulk.tuples_failed") in
  check_bool "tuple kept unchanged" true (traces_equal observed out);
  check_int "failure counted" 1 (after - before)

let test_single_domain_and_empty () =
  let trace = Trace.empty in
  check_int "empty trace" 0 (List.length (Bulk.map_tuples ~domains:4 (fun _ _ -> ()) trace));
  check_bool "domains=0 rejected" true
    (try ignore (Bulk.map_tuples ~domains:0 (fun _ _ -> ()) (Trace.of_list [ ("a", Tuple.empty); ("b", Tuple.empty) ])); false
     with Invalid_argument _ -> true)

let test_more_domains_than_tuples () =
  let trace = Trace.of_list [ ("a", Tuple.of_list [ ("A", 1) ]); ("b", Tuple.of_list [ ("A", 2) ]) ] in
  let r = Bulk.map_tuples ~domains:16 (fun _ t -> Tuple.find t "A") trace in
  check_int "both processed" 2 (List.length r)

let suite =
  ( "bulk",
    [
      Alcotest.test_case "parallel = sequential" `Slow test_matches_sequential;
      Alcotest.test_case "budget respected" `Slow test_budget_respected;
      Alcotest.test_case "map order and coverage" `Quick test_map_tuples_order_and_coverage;
      Alcotest.test_case "edge cases" `Quick test_single_domain_and_empty;
      Alcotest.test_case "failed tuples accounted" `Quick
        test_failed_tuples_accounted;
      Alcotest.test_case "more domains than tuples" `Quick test_more_domains_than_tuples;
    ] )
