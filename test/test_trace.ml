open Whynot
module T = Obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* The tracer is process-global: every test configures its own ring and
   disables tracing on the way out so the other suites run untraced. *)
let with_tracer ?capacity ?sample f =
  T.configure ?capacity ?sample ();
  Fun.protect ~finally:T.disable f

let spans_of events =
  List.filter_map
    (fun (e : T.event) ->
      match e.kind with
      | T.Span_open { name; parent } -> Some (e.span, name, parent, e.trace_id)
      | _ -> None)
    events

let test_span_tree () =
  with_tracer @@ fun () ->
  T.with_trace "root" (fun () ->
      T.with_span "child" (fun () -> T.with_span "grand" (fun () -> ()));
      T.with_span "sibling" (fun () -> ()));
  let events = T.events () in
  check_int "drop-free" 0 (T.dropped ());
  (match spans_of events with
  | [ (root, "root", 0, 1); (c, "child", pc, 1); (g, "grand", pg, 1);
      (_, "sibling", ps, 1) ] ->
      check_int "child's parent is root" root pc;
      check_int "grandchild's parent is child" c pg;
      check_int "sibling's parent is root" root ps;
      check_bool "span ids are distinct" true (c <> g && g <> root)
  | other -> Alcotest.failf "unexpected span shape (%d opens)" (List.length other));
  let opens, closes =
    List.fold_left
      (fun (o, c) (e : T.event) ->
        match e.kind with
        | T.Span_open _ -> (o + 1, c)
        | T.Span_close _ -> (o, c + 1)
        | _ -> (o, c))
      (0, 0) events
  in
  check_int "every span closed" opens closes

let test_exception_safety () =
  with_tracer @@ fun () ->
  check_bool "exception propagates" true
    (try
       T.with_trace "boom" (fun () ->
           T.with_span "inner" (fun () -> raise Exit))
     with Exit -> true);
  let events = T.events () in
  let closes =
    List.filter_map
      (fun (e : T.event) ->
        match e.kind with T.Span_close { name } -> Some name | _ -> None)
      events
  in
  Alcotest.(check (list string))
    "both spans closed despite the raise" [ "inner"; "boom" ] closes;
  (* The domain context was restored: the next trace is top-level again. *)
  T.with_trace "after" (fun () -> ());
  let trace_ids =
    List.sort_uniq compare
      (List.map (fun (e : T.event) -> e.trace_id) (T.events ()))
  in
  Alcotest.(check (list int)) "second trace got a fresh id" [ 1; 2 ] trace_ids

let test_nested_with_trace () =
  with_tracer @@ fun () ->
  T.with_trace "outer" (fun () -> T.with_trace "inner" (fun () -> ()));
  let events = T.events () in
  check_bool "events recorded" true (events <> []);
  List.iter
    (fun (e : T.event) -> check_int "single trace id" 1 e.trace_id)
    events;
  match spans_of events with
  | [ (outer, "outer", 0, _); (_, "inner", p, _) ] ->
      check_int "inner nests as a child span" outer p
  | _ -> Alcotest.fail "expected exactly two spans"

let test_sampling () =
  with_tracer ~sample:3 @@ fun () ->
  for i = 1 to 7 do
    T.with_trace "q" (fun () ->
        (* Sampled-out traces must suppress child events too. *)
        T.emit (T.Mark { label = string_of_int i }))
  done;
  let ids =
    List.sort_uniq compare
      (List.map (fun (e : T.event) -> e.trace_id) (T.events ()))
  in
  Alcotest.(check (list int)) "every 3rd trace by arrival order" [ 1; 4; 7 ] ids;
  let marks =
    List.filter
      (fun (e : T.event) -> match e.kind with T.Mark _ -> true | _ -> false)
      (T.events ())
  in
  check_int "one mark per sampled trace" 3 (List.length marks)

let test_disabled_is_silent () =
  T.configure ();
  T.disable ();
  check_bool "should_emit false when disabled" false (T.should_emit ());
  T.with_trace "q" (fun () -> T.emit (T.Mark { label = "x" }));
  check_int "nothing emitted" 0 (T.emitted ());
  check_int "nothing recorded" 0 (T.recorded ())

let test_emit_outside_trace_is_silent () =
  with_tracer @@ fun () ->
  T.emit (T.Mark { label = "stray" });
  check_int "events outside any trace are not recorded" 0 (T.emitted ())

let test_ring_drop_accounting () =
  let capacity = 16 in
  with_tracer ~capacity @@ fun () ->
  let worker () =
    T.with_trace "hammer" (fun () ->
        for i = 1 to 50 do
          T.emit (T.Mark { label = string_of_int i })
        done)
  in
  let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* 4 domains x (50 marks + span open/close) = 208 claims on 16 slots. *)
  check_int "emitted counts every claim" 208 (T.emitted ());
  check_int "recorded saturates at capacity" capacity (T.recorded ());
  check_int "drops are exact: emitted = recorded + dropped" 208
    (T.recorded () + T.dropped ());
  check_int "events readable after join" capacity (List.length (T.events ()))

let test_cross_domain_context () =
  with_tracer @@ fun () ->
  T.with_trace "spawner" (fun () ->
      let ctx = T.context () in
      let d =
        Domain.spawn (fun () ->
            T.with_context ctx (fun () ->
                T.with_span "worker" (fun () ->
                    T.emit (T.Mark { label = "from-worker" }))))
      in
      Domain.join d);
  let events = T.events () in
  let worker_mark =
    List.find_opt
      (fun (e : T.event) ->
        match e.kind with T.Mark { label } -> label = "from-worker" | _ -> false)
      events
  in
  match worker_mark with
  | None -> Alcotest.fail "worker event not recorded"
  | Some e ->
      check_int "worker event joins the spawning trace" 1 e.trace_id;
      check_bool "worker event carries its own domain id" true
        (e.dom <> (List.hd events).dom)

(* --- renderer round-trips on a real engine workload --- *)

let p0 =
  Pattern.Parse.pattern_exn
    "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours"

let t2 =
  Events.Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]

let explain_workload () = ignore (Explain.Pipeline.explain [ p0 ] t2)

let test_engine_events_present () =
  with_tracer @@ fun () ->
  explain_workload ();
  let names =
    List.sort_uniq compare (List.map (fun (e : T.event) -> T.kind_name e.kind) (T.events ()))
  in
  List.iter
    (fun expected ->
      check_bool (expected ^ " present") true (List.mem expected names))
    [ "span.open"; "span.close"; "bnb.node"; "stn.push"; "stn.pop";
      "simplex.phase"; "simplex.outcome"; "bnb.incumbent" ];
  let span_names =
    List.filter_map
      (fun (e : T.event) ->
        match e.kind with T.Span_open { name; _ } -> Some name | _ -> None)
      (T.events ())
  in
  List.iter
    (fun expected ->
      check_bool ("span " ^ expected) true (List.mem expected span_names))
    [ "pipeline.explain"; "modification.explain"; "bnb.search"; "simplex.solve" ]

let test_jsonl_deterministic () =
  let run () =
    T.clear ();
    explain_workload ();
    check_int "ring did not overrun" 0 (T.dropped ());
    Report.Trace_json.jsonl ~timings:false (T.events ())
  in
  with_tracer @@ fun () ->
  let a = run () in
  let b = run () in
  check_bool "trace is non-trivial" true (String.length a > 200);
  check_str "timings-stripped JSONL byte-identical across runs" a b;
  check_bool "timings included by default" true
    (let timed = Report.Trace_json.jsonl (T.events ()) in
     String.length timed > String.length b)

let test_chrome_export_valid () =
  with_tracer @@ fun () ->
  explain_workload ();
  let events = T.events () in
  match Report.Json.of_string (Report.Trace_json.chrome events) with
  | Error msg -> Alcotest.failf "chrome export is not valid JSON: %s" msg
  | Ok (Report.Json.List items) ->
      check_int "one chrome record per event" (List.length events)
        (List.length items);
      let get k item =
        match Report.Json.member k item with
        | Some v -> v
        | None -> Alcotest.failf "chrome record lacks %S" k
      in
      let phase item =
        match get "ph" item with
        | Report.Json.String s -> s
        | _ -> Alcotest.fail "ph is not a string"
      in
      let b = List.length (List.filter (fun i -> phase i = "B") items) in
      let e = List.length (List.filter (fun i -> phase i = "E") items) in
      check_bool "has duration events" true (b > 0);
      check_int "B/E balanced" b e;
      List.iter
        (fun item ->
          ignore (get "name" item);
          ignore (get "ts" item);
          ignore (get "pid" item);
          ignore (get "tid" item);
          check_bool "ph is B, E or i" true
            (List.mem (phase item) [ "B"; "E"; "i" ]))
        items
  | Ok _ -> Alcotest.fail "chrome export is not a JSON array"

let test_folded_export () =
  with_tracer @@ fun () ->
  explain_workload ();
  let folded = Report.Trace_json.folded (T.events ()) in
  let lines = String.split_on_char '\n' (String.trim folded) in
  check_bool "has stacks" true (lines <> [ "" ]);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "folded line without weight: %S" line
      | Some i ->
          let stack = String.sub line 0 i in
          let weight = String.sub line (i + 1) (String.length line - i - 1) in
          check_bool "weight is a non-negative integer" true
            (match int_of_string_opt weight with Some n -> n >= 0 | None -> false);
          check_bool "stack is non-empty" true (String.length stack > 0))
    lines;
  check_bool "nested stack path present" true
    (List.exists
       (String.starts_with ~prefix:"pipeline.explain;modification.explain")
       lines)

(* --- the bench compare gate --- *)

let bench_doc counters =
  Report.Json.Obj
    [
      ("schema", Report.Json.String "whynot.bench/1");
      ( "sections",
        Report.Json.List
          [
            Report.Json.Obj
              [
                ("name", Report.Json.String "bnb");
                ("seconds", Report.Json.Float 1.0);
              ];
          ] );
      ( "metrics",
        Report.Json.Obj
          [
            ( "counters",
              Report.Json.Obj
                (List.map (fun (k, v) -> (k, Report.Json.Int v)) counters) );
            ("gauges", Report.Json.Obj []);
          ] );
    ]

let test_compare_gate () =
  let base = bench_doc [ ("simplex.pivots", 1000); ("bnb.nodes_expanded", 50) ] in
  (match Report.Bench_compare.run ~baseline:base ~current:base () with
  | Ok r ->
      check_bool "self-comparison passes" true (Report.Bench_compare.passed r);
      check_int "no regressions" 0 (List.length r.Report.Bench_compare.regressions);
      check_int "timings matched" 1 (List.length r.Report.Bench_compare.timings)
  | Error msg -> Alcotest.failf "parity compare failed: %s" msg);
  let regressed =
    bench_doc [ ("simplex.pivots", 1100); ("bnb.nodes_expanded", 50) ]
  in
  (match Report.Bench_compare.run ~baseline:base ~current:regressed () with
  | Ok r ->
      check_bool "10%% pivot growth fails the 2%% gate" false
        (Report.Bench_compare.passed r);
      check_int "exactly one regression" 1
        (List.length r.Report.Bench_compare.regressions);
      check_bool "regression names the counter" true
        ((List.hd r.Report.Bench_compare.regressions).Report.Bench_compare.key
        = "simplex.pivots")
  | Error msg -> Alcotest.failf "regression compare failed: %s" msg);
  (match Report.Bench_compare.run ~threshold:15.0 ~baseline:base ~current:regressed () with
  | Ok r ->
      check_bool "wider threshold admits the same delta" true
        (Report.Bench_compare.passed r)
  | Error msg -> Alcotest.failf "threshold compare failed: %s" msg);
  (match
     Report.Bench_compare.run ~baseline:base
       ~current:(bench_doc [ ("simplex.pivots", 900); ("bnb.nodes_expanded", 50) ])
       ()
   with
  | Ok r ->
      check_bool "improvements do not gate" true (Report.Bench_compare.passed r);
      check_int "improvement reported" 1
        (List.length r.Report.Bench_compare.improvements)
  | Error msg -> Alcotest.failf "improvement compare failed: %s" msg);
  match
    Report.Bench_compare.run ~baseline:(Report.Json.Obj []) ~current:base ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-bench document accepted"

let suite =
  ( "trace",
    [
      Alcotest.test_case "span tree structure" `Quick test_span_tree;
      Alcotest.test_case "exception safety" `Quick test_exception_safety;
      Alcotest.test_case "nested with_trace joins" `Quick test_nested_with_trace;
      Alcotest.test_case "deterministic sampling" `Quick test_sampling;
      Alcotest.test_case "disabled tracer is silent" `Quick test_disabled_is_silent;
      Alcotest.test_case "emit outside trace is silent" `Quick
        test_emit_outside_trace_is_silent;
      Alcotest.test_case "ring drop accounting" `Quick test_ring_drop_accounting;
      Alcotest.test_case "cross-domain context" `Quick test_cross_domain_context;
      Alcotest.test_case "engine events present" `Quick test_engine_events_present;
      Alcotest.test_case "jsonl determinism" `Quick test_jsonl_deterministic;
      Alcotest.test_case "chrome export valid" `Quick test_chrome_export_valid;
      Alcotest.test_case "folded export" `Quick test_folded_export;
      Alcotest.test_case "bench compare gate" `Quick test_compare_gate;
    ] )
