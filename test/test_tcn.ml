open Whynot
module Ast = Pattern.Ast
module Tuple = Events.Tuple
module Condition = Tcn.Condition
module Stn = Tcn.Stn
module Encode = Tcn.Encode
module Bindings = Tcn.Bindings

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

(* --- Condition --- *)

let test_interval_holds () =
  let phi = Condition.interval ~lo:5 ~hi:10 "A" "B" in
  let t d = Tuple.of_list [ ("A", 100); ("B", 100 + d) ] in
  check_bool "below" false (Condition.interval_holds (t 4) phi);
  check_bool "at lo" true (Condition.interval_holds (t 5) phi);
  check_bool "at hi" true (Condition.interval_holds (t 10) phi);
  check_bool "above" false (Condition.interval_holds (t 11) phi);
  check_bool "unbound event" false
    (Condition.interval_holds (Tuple.of_list [ ("A", 0) ]) phi);
  let unbounded = Condition.interval ~lo:5 "A" "B" in
  check_bool "no upper bound" true (Condition.interval_holds (t 1000) unbounded);
  let exact = Condition.exact "A" "B" in
  check_bool "exact holds on equality" true (Condition.interval_holds (t 0) exact);
  check_bool "exact fails otherwise" false (Condition.interval_holds (t 1) exact)

let test_binding_holds () =
  let gmin = { Condition.bound = "S"; over = [ "A"; "B" ]; kind = Condition.Min } in
  let gmax = { Condition.bound = "S"; over = [ "A"; "B" ]; kind = Condition.Max } in
  let t v = Tuple.of_list [ ("S", v); ("A", 3); ("B", 7) ] in
  check_bool "min ok" true (Condition.binding_holds (t 3) gmin);
  check_bool "min wrong" false (Condition.binding_holds (t 7) gmin);
  check_bool "max ok" true (Condition.binding_holds (t 7) gmax);
  check_bool "max wrong" false (Condition.binding_holds (t 3) gmax);
  check_bool "unbound member" false
    (Condition.binding_holds (Tuple.of_list [ ("S", 3); ("A", 3) ]) gmin)

(* --- STN --- *)

let test_stn_consistent_chain () =
  let phis =
    [ Condition.interval ~lo:1 ~hi:5 "A" "B"; Condition.interval ~lo:1 ~hi:5 "B" "C" ]
  in
  let stn = Stn.of_intervals phis in
  check_bool "consistent" true (Stn.consistent stn);
  match Stn.solution stn with
  | None -> Alcotest.fail "expected solution"
  | Some t ->
      check_bool "solution satisfies" true (Condition.intervals_hold t phis);
      check_bool "non-negative" true (Tuple.fold (fun _ ts acc -> acc && ts >= 0) t true)

let test_stn_negative_cycle () =
  (* A -> B at least 5, B -> A at least 0 means B-A <= ... contradiction. *)
  let phis =
    [ Condition.interval ~lo:5 "A" "B"; Condition.interval ~lo:0 ~hi:2 "B" "A" ]
  in
  let stn = Stn.of_intervals phis in
  check_bool "inconsistent" false (Stn.consistent stn);
  check_bool "no solution" true (Stn.solution stn = None)

let test_stn_distance_minimal_network () =
  let phis =
    [ Condition.interval ~lo:1 ~hi:5 "A" "B"; Condition.interval ~lo:1 ~hi:5 "B" "C" ]
  in
  let stn = Stn.of_intervals phis in
  check_bool "implied upper A->C" true (Stn.distance stn "A" "C" = Some 10);
  check_bool "implied lower A->C (via -d(C,A))" true (Stn.distance stn "C" "A" = Some (-2));
  check_bool "isolated unbounded" true
    (Stn.distance (Stn.of_intervals ~events:[ "A"; "X" ] phis) "A" "X" = None)

let test_stn_solution_near () =
  let phis = [ Condition.interval ~lo:0 ~hi:10 "A" "B" ] in
  let stn = Stn.of_intervals phis in
  let reference = Tuple.of_list [ ("A", 100); ("B", 104) ] in
  match Stn.solution_near stn reference with
  | None -> Alcotest.fail "expected solution"
  | Some t ->
      check_int "keeps satisfying reference A" 100 (Tuple.find t "A");
      check_int "keeps satisfying reference B" 104 (Tuple.find t "B")

let prop_stn_solution_satisfies =
  QCheck.Test.make ~name:"stn: consistent iff solution exists and satisfies"
    ~count:300 (Gen.intervals ()) (fun phis ->
      let stn = Stn.of_intervals phis in
      match Stn.solution stn with
      | Some t -> Stn.consistent stn && Condition.intervals_hold t phis
      | None -> not (Stn.consistent stn))

(* Cross-check the O(n^3) consistency with the LP's phase-1 feasibility. *)
let prop_stn_consistency_equals_lp_feasibility =
  QCheck.Test.make ~name:"stn consistency = LP feasibility" ~count:200
    (Gen.intervals ()) (fun phis ->
      let stn = Stn.of_intervals phis in
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let t =
        List.fold_left (fun acc e -> Tuple.add e 50 acc) Tuple.empty events
      in
      let lp_feasible = Explain.Lp_repair.repair t phis <> None in
      Stn.consistent stn = lp_feasible)

let prop_stn_solution_near_feasible =
  QCheck.Test.make ~name:"stn: solution_near always satisfies" ~count:200
    (QCheck.make
       (QCheck.Gen.pair (Gen.intervals_gen ()) (fun st -> Random.State.int st 1000)))
    (fun (phis, seed) ->
      let stn = Stn.of_intervals phis in
      let events = Events.Event.Set.elements (Condition.interval_events phis) in
      let st = Random.State.make [| seed |] in
      let reference = Gen.tuple_over events ~horizon:150 st in
      match Stn.solution_near stn reference with
      | Some t -> Condition.intervals_hold t phis
      | None -> not (Stn.consistent stn))

(* --- Encode --- *)

let test_encode_simple_has_no_bindings () =
  let net = Encode.pattern_set [ p "SEQ(E1, SEQ(E2, E3) WITHIN 9) ATLEAST 2" ] in
  check_int "no bindings" 0 (List.length net.set_bindings);
  check_bool "no artificial" true (Events.Event.Set.is_empty net.set_artificial)

let test_encode_and_structure () =
  let enc = Encode.pattern (p "AND(E1, E2) ATLEAST 3 WITHIN 9") in
  check_int "two bindings per AND" 2 (List.length enc.bindings);
  check_int "artificial start+end" 2 (Events.Event.Set.cardinal enc.artificial);
  (* 4 span intervals + 1 window interval *)
  check_int "interval count" 5 (List.length enc.intervals);
  check_bool "start is artificial" true (Events.Event.is_artificial enc.start_event)

let test_encode_example2 () =
  (* The paper's p0 has 4 binding conditions, each over 2 events: 16 full
     bindings (Example 4). *)
  let net =
    Encode.pattern_set
      [ p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" ]
  in
  check_int "4 binding conditions" 4 (List.length net.set_bindings);
  check_int "16 full bindings" 16 (Bindings.count net.set_bindings)

let test_extend () =
  let net = Encode.pattern_set [ p "AND(E1, E2)" ] in
  let t = Tuple.of_list [ ("E1", 10); ("E2", 4) ] in
  let ext = Encode.extend net t in
  let s, e =
    match net.set_bindings with
    | [ { Condition.bound = s; _ }; { Condition.bound = e; _ } ] -> (s, e)
    | _ -> Alcotest.fail "expected two bindings"
  in
  check_int "AND^s = min" 4 (Tuple.find ext s);
  check_int "AND^e = max" 10 (Tuple.find ext e)

(* Proposition 5: t |= p iff extended t satisfies (Phi, Gamma). *)
let prop_encode_equivalence =
  QCheck.Test.make ~name:"Proposition 5: matcher = network satisfaction" ~count:500
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      let net = Encode.pattern_set [ pat ] in
      Pattern.Matcher.matches t pat = Encode.satisfies net t)

(* Corollary 6: for AND-free patterns the interval conditions alone decide. *)
let prop_simple_encoding_equivalence =
  QCheck.Test.make ~name:"Corollary 6: simple network equivalence" ~count:300
    (Gen.pattern_and_tuple ()) (fun (pat, t) ->
      QCheck.assume (Ast.classify pat = Ast.Simple);
      let net = Encode.pattern_set [ pat ] in
      Pattern.Matcher.matches t pat = Condition.intervals_hold t net.set_intervals)

(* --- Bindings --- *)

let gammas_of pat = (Encode.pattern_set [ pat ]).set_bindings

let test_full_binding_enumeration () =
  let gammas = gammas_of (p "AND(E1, E2, E3)") in
  check_int "count 3*3" 9 (Bindings.count gammas);
  let all = List.of_seq (Bindings.full gammas) in
  check_int "enumerated" 9 (List.length all);
  (* every choice is one [0,0] interval per binding condition *)
  check_bool "shape" true
    (List.for_all
       (fun phis ->
         List.length phis = 2
         && List.for_all (fun phi -> phi.Condition.lo = 0 && phi.Condition.hi = Some 0) phis)
       all);
  (* all distinct *)
  check_int "distinct" 9 (List.length (List.sort_uniq compare all))

let test_empty_bindings () =
  check_int "count" 1 (Bindings.count []);
  check_int "full singleton" 1 (List.length (List.of_seq (Bindings.full [])));
  check_bool "single empty" true (Bindings.single Tuple.empty [] = [])

let test_count_saturates () =
  (* |Aleph_Gamma| is exponential in the number of AND nodes; the product
     must saturate at max_int instead of silently wrapping negative. *)
  let wide i =
    {
      Condition.bound = Printf.sprintf "B%d" i;
      over = List.init 512 (fun j -> Printf.sprintf "G%d_%d" i j);
      kind = Condition.Min;
    }
  in
  let huge = List.init 7 wide in
  check_int "saturated at max_int" max_int (Bindings.count huge);
  check_bool "saturation flagged" false (Bindings.count_is_exact huge);
  let small = gammas_of (p "AND(E1, E2, E3)") in
  check_bool "small space is exact" true (Bindings.count_is_exact small);
  check_bool "count never negative" true (Bindings.count huge > 0)

let test_single_binding_picks_extremes () =
  let gammas = gammas_of (p "AND(E1, E2, E3)") in
  let t = Tuple.of_list [ ("E1", 5); ("E2", 1); ("E3", 9) ] in
  let net = Encode.pattern_set [ p "AND(E1, E2, E3)" ] in
  let ext = Encode.extend net t in
  let phis = Bindings.single ext gammas in
  check_int "one interval per binding" 2 (List.length phis);
  let bound_to =
    List.map (fun phi -> (phi.Condition.src, phi.Condition.dst)) phis
  in
  check_bool "min picks E2" true (List.exists (fun (_, d) -> d = "E2") bound_to);
  check_bool "max picks E3" true (List.exists (fun (_, d) -> d = "E3") bound_to)

let prop_sample_in_full =
  QCheck.Test.make ~name:"sampled binding is a member of the full space" ~count:200
    (Gen.pattern ()) (fun pat ->
      let gammas = gammas_of pat in
      let prng = Whynot.Numeric.Prng.create 5 in
      let sample = Bindings.sample prng gammas in
      Seq.exists (fun phis -> phis = sample) (Bindings.full gammas))

(* Regression: adversarially large bounds used to wrap the closure sums and
   report an impossible network as consistent. Weights are now clamped into
   the sentinel range and sums saturate. *)
let test_stn_extreme_bounds () =
  let stn =
    Stn.of_intervals
      [ Condition.interval ~lo:max_int "A" "B"; Condition.interval ~lo:2 "B" "A" ]
  in
  check_bool "huge opposing lower bounds are inconsistent" false
    (Stn.consistent stn);
  let ok =
    Stn.of_intervals [ Condition.interval ~lo:(max_int / 2) "A" "B" ]
  in
  check_bool "one huge bound alone stays consistent" true (Stn.consistent ok)

let test_interval_holds_extreme_timestamps () =
  (* t(B) - t(A) must saturate, not wrap to a small positive number. *)
  let phi = Condition.interval ~lo:0 "A" "B" in
  let t = Tuple.of_list [ ("A", max_int - 1); ("B", min_int + 1) ] in
  check_bool "B long before A does not satisfy lo=0" false
    (Condition.interval_holds t phi)

let qt = Gen.qt

let suite =
  ( "tcn",
    [
      Alcotest.test_case "interval satisfaction" `Quick test_interval_holds;
      Alcotest.test_case "binding satisfaction" `Quick test_binding_holds;
      Alcotest.test_case "stn consistent chain" `Quick test_stn_consistent_chain;
      Alcotest.test_case "stn negative cycle" `Quick test_stn_negative_cycle;
      Alcotest.test_case "stn minimal network distances" `Quick test_stn_distance_minimal_network;
      Alcotest.test_case "stn solution_near anchors" `Quick test_stn_solution_near;
      Alcotest.test_case "stn extreme bounds saturate" `Quick test_stn_extreme_bounds;
      Alcotest.test_case "interval extreme timestamps saturate" `Quick
        test_interval_holds_extreme_timestamps;
      qt prop_stn_solution_satisfies;
      qt prop_stn_consistency_equals_lp_feasibility;
      qt prop_stn_solution_near_feasible;
      Alcotest.test_case "encode simple: no bindings" `Quick test_encode_simple_has_no_bindings;
      Alcotest.test_case "encode AND structure" `Quick test_encode_and_structure;
      Alcotest.test_case "encode paper Example 2/4" `Quick test_encode_example2;
      Alcotest.test_case "extend computes min/max" `Quick test_extend;
      qt prop_encode_equivalence;
      qt prop_simple_encoding_equivalence;
      Alcotest.test_case "full binding enumeration" `Quick test_full_binding_enumeration;
      Alcotest.test_case "empty bindings" `Quick test_empty_bindings;
      Alcotest.test_case "count saturates on overflow" `Quick test_count_saturates;
      Alcotest.test_case "single binding extremes" `Quick test_single_binding_picks_extremes;
      qt prop_sample_in_full;
    ] )
