open Whynot
module Modification = Explain.Modification
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn

(* The branch-and-bound engine must return exactly what the flat sweep
   returns: same cost AND bit-identical repaired tuple (same winning
   binding, same solver vertex). Only [bindings_tried] may differ. *)
let equal_result a b =
  match (a, b) with
  | None, None -> true
  | Some ra, Some rb ->
      ra.Modification.cost = rb.Modification.cost
      && Tuple.equal ra.Modification.repaired rb.Modification.repaired
      && ra.Modification.exact = rb.Modification.exact
  | _ -> false

let explain engine ?solver ?weights ?bounds pat t =
  Modification.explain ~strategy:Modification.Full ~engine ?solver ?weights
    ?bounds [ pat ] t

let some_weights e = 1 + (Hashtbl.hash e mod 3)
let some_bounds e = if Hashtbl.hash e mod 2 = 0 then Some 25 else None

let prop_bnb_equals_flat =
  QCheck.Test.make ~name:"BnB Full = flat Full (cost and repaired tuple)"
    ~count:150
    (Gen.pattern_and_tuple ~horizon:120 ())
    (fun (pat, t) ->
      equal_result
        (explain Modification.Flat pat t)
        (explain (Modification.Bnb { domains = 1 }) pat t))

let prop_bnb_equals_flat_weighted =
  QCheck.Test.make ~name:"BnB = flat under per-event weights" ~count:100
    (Gen.pattern_and_tuple ~horizon:120 ())
    (fun (pat, t) ->
      equal_result
        (explain Modification.Flat ~weights:some_weights pat t)
        (explain (Modification.Bnb { domains = 1 }) ~weights:some_weights pat t))

let prop_bnb_equals_flat_bounded =
  QCheck.Test.make ~name:"BnB = flat under plausibility bounds" ~count:100
    (Gen.pattern_and_tuple ~horizon:120 ())
    (fun (pat, t) ->
      equal_result
        (explain Modification.Flat ~bounds:some_bounds pat t)
        (explain (Modification.Bnb { domains = 1 }) ~bounds:some_bounds pat t))

let prop_bnb_equals_flat_flow =
  QCheck.Test.make ~name:"BnB = flat with the flow solver" ~count:100
    (Gen.pattern_and_tuple ~horizon:120 ())
    (fun (pat, t) ->
      equal_result
        (explain Modification.Flat ~solver:Modification.Flow pat t)
        (explain (Modification.Bnb { domains = 1 }) ~solver:Modification.Flow
           pat t))

let prop_parallel_equals_serial =
  QCheck.Test.make ~name:"parallel BnB = serial BnB" ~count:80
    (Gen.pattern_and_tuple ~horizon:120 ())
    (fun (pat, t) ->
      equal_result
        (explain (Modification.Bnb { domains = 1 }) pat t)
        (explain (Modification.Bnb { domains = 3 }) pat t))

let test_paper_example () =
  let p0 = p "SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 120" in
  let t2 =
    Tuple.of_list [ ("E1", 1026); ("E2", 1134); ("E3", 1044); ("E4", 1208) ]
  in
  let flat = explain Modification.Flat p0 t2 in
  let bnb = explain (Modification.Bnb { domains = 1 }) p0 t2 in
  check_bool "identical to the flat sweep" true (equal_result flat bnb);
  match (flat, bnb) with
  | Some f, Some b ->
      check_int "cost 44 (Example 6)" 44 b.Modification.cost;
      check_bool "exact" true b.Modification.exact;
      check_int "flat tries every binding" 16 f.Modification.bindings_tried;
      check_bool "bnb solves at most as many leaves" true
        (b.Modification.bindings_tried <= 16)
  | _ -> Alcotest.fail "expected a repair from both engines"

let test_bnb_prunes () =
  (* AND(E1..E6): 36 bindings; a heavily faulted tuple gives the search an
     incumbent early and the bound prunes whole subtrees. *)
  let pat = Datagen.Workloads.fig11_pattern ~n:6 in
  let prng = Numeric.Prng.create 11 in
  let t =
    Datagen.Faults.tuple prng ~rate:0.5 ~distance:400
      (Datagen.Workloads.random_matching_tuple ~horizon:5000 prng [ pat ])
  in
  match
    (explain Modification.Flat pat t, explain (Modification.Bnb { domains = 1 }) pat t)
  with
  | Some f, Some b ->
      check_bool "same optimum" true (equal_result (Some f) (Some b));
      check_int "flat enumerates all 36" 36 f.Modification.bindings_tried;
      check_bool "bnb solves strictly fewer leaves" true
        (b.Modification.bindings_tried < 36)
  | _ -> Alcotest.fail "expected a repair from both engines"

let test_zero_cost_short_circuit () =
  let pat = p "SEQ(E1, E2) WITHIN 10" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 5) ] in
  match explain (Modification.Bnb { domains = 1 }) pat t with
  | Some { cost; repaired; _ } ->
      check_int "already an answer: cost 0" 0 cost;
      check_bool "tuple unchanged" true (Tuple.equal t repaired)
  | None -> Alcotest.fail "expected a zero-cost repair"

let test_invalid_domains () =
  let pat = p "SEQ(E1, E2) WITHIN 10" in
  let t = Tuple.of_list [ ("E1", 0); ("E2", 5) ] in
  check_bool "domains < 1 rejected" true
    (try
       ignore (explain (Modification.Bnb { domains = 0 }) pat t);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "bnb",
    [
      Gen.qt prop_bnb_equals_flat;
      Gen.qt prop_bnb_equals_flat_weighted;
      Gen.qt prop_bnb_equals_flat_bounded;
      Gen.qt prop_bnb_equals_flat_flow;
      Gen.qt prop_parallel_equals_serial;
      Alcotest.test_case "paper example (Table 1)" `Quick test_paper_example;
      Alcotest.test_case "bound pruning on AND(E1..E6)" `Quick test_bnb_prunes;
      Alcotest.test_case "zero-cost short circuit" `Quick
        test_zero_cost_short_circuit;
      Alcotest.test_case "invalid domain count" `Quick test_invalid_domains;
    ] )
