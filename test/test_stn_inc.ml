open Whynot
module Condition = Tcn.Condition
module Stn = Tcn.Stn
module Stn_inc = Tcn.Stn_inc
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_push_pop_basic () =
  let inc = Stn_inc.create [ "A"; "B"; "C" ] in
  check_bool "fresh is consistent" true (Stn_inc.consistent inc);
  check_bool "push ok" true (Stn_inc.push inc (Condition.interval ~lo:1 ~hi:5 "A" "B"));
  check_bool "push ok 2" true (Stn_inc.push inc (Condition.interval ~lo:1 ~hi:5 "B" "C"));
  check_int "depth" 2 (Stn_inc.depth inc);
  (* contradiction: C before A *)
  check_bool "contradiction detected" false
    (Stn_inc.push inc (Condition.interval ~lo:0 ~hi:1 "C" "A"));
  check_bool "inconsistent now" false (Stn_inc.consistent inc);
  Stn_inc.pop inc;
  check_bool "consistent after pop" true (Stn_inc.consistent inc);
  check_bool "can push again" true
    (Stn_inc.push inc (Condition.interval ~lo:0 "A" "C"))

let test_push_while_inconsistent_raises () =
  let inc = Stn_inc.create [ "A"; "B" ] in
  ignore (Stn_inc.push inc (Condition.interval ~lo:5 ~hi:5 "A" "B"));
  ignore (Stn_inc.push inc (Condition.interval ~lo:5 ~hi:5 "B" "A"));
  check_bool "inconsistent" false (Stn_inc.consistent inc);
  check_bool "push raises" true
    (try ignore (Stn_inc.push inc (Condition.interval "A" "B")); false
     with Invalid_argument _ -> true);
  Stn_inc.pop inc;
  Stn_inc.pop inc;
  check_bool "pop on empty raises" true
    (try Stn_inc.pop inc; false with Invalid_argument _ -> true)

let test_unknown_event () =
  let inc = Stn_inc.create [ "A" ] in
  check_bool "unknown event raises" true
    (try ignore (Stn_inc.push inc (Condition.interval "A" "Z")); false
     with Invalid_argument _ -> true)

let test_solution () =
  let inc = Stn_inc.create [ "A"; "B" ] in
  ignore (Stn_inc.push inc (Condition.interval ~lo:3 ~hi:3 "A" "B"));
  match Stn_inc.solution inc with
  | Some t -> check_int "distance respected" 3 (Tuple.find t "B" - Tuple.find t "A")
  | None -> Alcotest.fail "expected solution"

(* Regression: a huge lower bound used to wrap [add_arc]'s negative-cycle
   test, so a clearly impossible pair of pushes was accepted as consistent. *)
let test_extreme_bounds_no_wrap () =
  let inc = Stn_inc.create [ "A"; "B" ] in
  check_bool "huge lower bound accepted" true
    (Stn_inc.push inc (Condition.interval ~lo:max_int "A" "B"));
  check_bool "opposing bound detected as inconsistent" false
    (Stn_inc.push inc (Condition.interval ~lo:2 "B" "A"));
  check_bool "network flagged inconsistent" false (Stn_inc.consistent inc);
  Stn_inc.pop inc;
  check_bool "pop restores consistency" true (Stn_inc.consistent inc)

(* Equivalence with the batch engine under random push/pop sequences. *)
let prop_matches_batch =
  QCheck.Test.make ~name:"incremental consistency = batch consistency under pushes"
    ~count:300 (Gen.intervals ()) (fun phis ->
      let events =
        Events.Event.Set.elements (Condition.interval_events phis)
      in
      let inc = Stn_inc.create events in
      let rec push_all prefix = function
        | [] -> true
        | phi :: rest ->
            let prefix = phi :: prefix in
            let batch = Stn.consistent (Stn.of_intervals ~events prefix) in
            let ok = Stn_inc.push inc phi in
            (* each prefix must agree with the batch engine *)
            if ok <> batch then false
            else if not ok then true (* stop: caller may not push further *)
            else push_all prefix rest
      in
      push_all [] phis)

let prop_pop_restores =
  QCheck.Test.make ~name:"pop restores the exact previous state" ~count:200
    (QCheck.pair (Gen.intervals ()) (Gen.intervals ()))
    (fun (base, extra) ->
      let events =
        Events.Event.Set.elements
          (Condition.interval_events (base @ extra))
      in
      let inc = Stn_inc.create events in
      let rec push_while = function
        | [] -> true
        | phi :: rest -> if Stn_inc.push inc phi then push_while rest else false
      in
      if not (push_while base) then QCheck.assume_fail ()
      else begin
        let solution_before = Stn_inc.solution inc in
        let depth_before = Stn_inc.depth inc in
        (* push the extras (stopping on inconsistency), then pop them all *)
        let pushed = ref 0 in
        (try
           List.iter
             (fun phi ->
               incr pushed;
               if not (Stn_inc.push inc phi) then raise Exit)
             extra
         with Exit -> ());
        for _ = 1 to !pushed do
          Stn_inc.pop inc
        done;
        Stn_inc.depth inc = depth_before
        && Stn_inc.consistent inc
        && Stn_inc.solution inc = solution_before
      end)

(* Deep random push/pop interleavings: after every operation the maintained
   network must agree — consistency and every closure window — with a fresh
   network replaying the live stack from scratch. This is the exact-undo
   guarantee the branch-and-bound search rests on. *)
let test_push_pop_stress () =
  let st = Random.State.make [| 4711 |] in
  let events = List.init 6 (fun i -> Printf.sprintf "E%d" i) in
  let random_interval () =
    let pick () = List.nth events (Random.State.int st 6) in
    let src = pick () in
    let dst = ref (pick ()) in
    while !dst = src do
      dst := pick ()
    done;
    let lo = Random.State.int st 40 - 15 in
    let hi =
      if Random.State.bool st then Some (lo + Random.State.int st 30) else None
    in
    { Condition.src; dst = !dst; lo; hi }
  in
  let inc = Stn_inc.create events in
  let stack = ref [] in
  for step = 1 to 400 do
    (if (!stack = [] || Random.State.int st 3 > 0) && Stn_inc.consistent inc
     then begin
       let phi = random_interval () in
       ignore (Stn_inc.push inc phi);
       stack := phi :: !stack
     end
     else if !stack <> [] then begin
       Stn_inc.pop inc;
       stack := List.tl !stack
     end);
    let fresh = Stn_inc.create events in
    List.iter
      (fun phi -> if Stn_inc.consistent fresh then ignore (Stn_inc.push fresh phi))
      (List.rev !stack);
    check_bool
      (Printf.sprintf "consistency agrees at step %d (depth %d)" step
         (List.length !stack))
      (Stn_inc.consistent fresh) (Stn_inc.consistent inc);
    if Stn_inc.consistent inc then
      List.iter
        (fun e ->
          Alcotest.(check (pair int (option int)))
            (Printf.sprintf "window of %s agrees at step %d" e step)
            (Stn_inc.window fresh e) (Stn_inc.window inc e))
        events
  done

(* Closure windows are tight: pinning an event at either end of its window
   keeps the network (over the non-negative time domain) consistent, and
   pinning it just outside breaks it. *)
let prop_window_tight =
  QCheck.Test.make ~name:"closure windows are tight unary projections"
    ~count:200 (Gen.intervals ()) (fun phis ->
      let events =
        Events.Event.Set.elements (Condition.interval_events phis)
      in
      let inc = Stn_inc.create events in
      if not (List.for_all (fun phi -> Stn_inc.push inc phi) phis) then
        QCheck.assume_fail ()
      else begin
        let big = 1_000_000_000 in
        let pinned e v =
          let absolute =
            (e, v, v) :: List.map (fun e' -> (e', 0, big)) events
          in
          Stn.consistent (Stn.of_intervals ~events ~absolute phis)
        in
        List.for_all
          (fun e ->
            let lo, hi = Stn_inc.window inc e in
            pinned e lo
            && (lo = 0 || not (pinned e (lo - 1)))
            && match hi with
               | None -> true
               | Some h -> pinned e h && not (pinned e (h + 1)))
          events
      end)

let suite =
  ( "stn_inc",
    [
      Alcotest.test_case "push/pop basics" `Quick test_push_pop_basic;
      Alcotest.test_case "inconsistent state discipline" `Quick
        test_push_while_inconsistent_raises;
      Alcotest.test_case "unknown event" `Quick test_unknown_event;
      Alcotest.test_case "solution extraction" `Quick test_solution;
      Alcotest.test_case "push/pop stress interleavings" `Quick
        test_push_pop_stress;
      Alcotest.test_case "extreme bounds saturate" `Quick
        test_extreme_bounds_no_wrap;
      Gen.qt prop_matches_batch;
      Gen.qt prop_pop_restores;
      Gen.qt prop_window_tight;
    ] )
