open Whynot.Events

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_event_artificial () =
  check_bool "start is artificial" true (Event.is_artificial (Event.artificial_start 0));
  check_bool "end is artificial" true (Event.is_artificial (Event.artificial_end 3));
  check_bool "user event is not" false (Event.is_artificial "E1");
  check_bool "distinct ids distinct names" true
    (Event.artificial_start 1 <> Event.artificial_start 2);
  check_bool "start <> end" true (Event.artificial_start 1 <> Event.artificial_end 1)

let test_time_hm () =
  check_int "17:08" ((17 * 60) + 8) (Time.of_hm "17:08");
  check_int "0:00" 0 (Time.of_hm "0:00");
  check_str "round trip" "17:08" (Time.to_hm (Time.of_hm "17:08"));
  check_str "past midnight preserved" "25:30" (Time.to_hm ((25 * 60) + 30));
  Alcotest.check_raises "missing colon" (Invalid_argument "Time.of_hm: missing ':' in \"1708\"")
    (fun () -> ignore (Time.of_hm "1708"));
  Alcotest.check_raises "bad minutes" (Invalid_argument "Time.of_hm: bad time \"17:65\"")
    (fun () -> ignore (Time.of_hm "17:65"))

let t0 = Tuple.of_list [ ("A", 10); ("B", 20); ("C", 30) ]

let test_tuple_basics () =
  check_int "find" 20 (Tuple.find t0 "B");
  check_bool "find_opt missing" true (Tuple.find_opt t0 "Z" = None);
  check_int "cardinal" 3 (Tuple.cardinal t0);
  check_bool "mem" true (Tuple.mem "A" t0);
  Alcotest.(check (list string)) "events sorted" [ "A"; "B"; "C" ] (Tuple.events t0);
  let t1 = Tuple.add "B" 25 t0 in
  check_int "add replaces" 25 (Tuple.find t1 "B");
  check_int "original untouched" 20 (Tuple.find t0 "B");
  let t2 = Tuple.remove "A" t0 in
  check_int "remove" 2 (Tuple.cardinal t2)

let test_tuple_delta () =
  let t1 = Tuple.of_list [ ("A", 12); ("B", 20); ("C", 27) ] in
  check_int "delta sums absolute differences" 5 (Tuple.delta t0 t1);
  check_int "delta self" 0 (Tuple.delta t0 t0);
  check_int "delta symmetric" (Tuple.delta t0 t1) (Tuple.delta t1 t0);
  (* artificial events never count *)
  let ta = Tuple.add (Event.artificial_start 0) 999 t0 in
  let tb = Tuple.add (Event.artificial_start 0) 0 t1 in
  check_int "artificial excluded" 5 (Tuple.delta ta tb);
  (* events bound on one side only do not count *)
  let extra = Tuple.add "Z" 1000 t1 in
  check_int "one-sided event ignored" 5 (Tuple.delta t0 extra)

let test_tuple_diff () =
  let t1 = Tuple.of_list [ ("A", 12); ("B", 20); ("C", 27) ] in
  Alcotest.(check (list (triple string int int)))
    "diff lists changed events" [ ("A", 10, 12); ("C", 30, 27) ] (Tuple.diff t0 t1)

let test_tuple_union_restrict () =
  let other = Tuple.of_list [ ("B", 99); ("D", 40) ] in
  let u = Tuple.union_right t0 other in
  check_int "right wins" 99 (Tuple.find u "B");
  check_int "both kept" 40 (Tuple.find u "D");
  check_int "left kept" 10 (Tuple.find u "A");
  let r = Tuple.restrict (Event.Set.of_list [ "A"; "D" ]) u in
  check_int "restrict keeps listed" 2 (Tuple.cardinal r)

let test_trace () =
  let tr =
    Trace.of_list [ ("t2", Tuple.of_list [ ("A", 1) ]); ("t1", Tuple.of_list [ ("A", 2) ]) ]
  in
  Alcotest.(check (list string)) "ids sorted" [ "t1"; "t2" ] (Trace.ids tr);
  check_int "cardinal" 2 (Trace.cardinal tr);
  check_bool "find_opt" true (Trace.find_opt tr "t1" <> None);
  let tr2 = Trace.map (fun _ t -> Tuple.add "B" 9 t) tr in
  check_int "map applied" 9 (Tuple.find (Option.get (Trace.find_opt tr2 "t2")) "B");
  let tr3 = Trace.filter (fun id _ -> id = "t1") tr in
  check_int "filter" 1 (Trace.cardinal tr3)

let test_csv_roundtrip () =
  let tr =
    Trace.of_list
      [
        ("day1", Tuple.of_list [ ("E1", 1026); ("E2", 1134) ]);
        ("day2", Tuple.of_list [ ("E1", 1028) ]);
      ]
  in
  let s = Csv_io.trace_to_string tr in
  match Csv_io.trace_of_string s with
  | Error e -> Alcotest.fail e
  | Ok tr' ->
      check_bool "round trip equal" true
        (List.for_all2
           (fun (i1, t1) (i2, t2) -> i1 = i2 && Tuple.equal t1 t2)
           (Trace.bindings tr) (Trace.bindings tr'))

(* Regression: ids/event names containing commas, quotes or newlines
   used to be written raw and then misparsed (wrong field count or
   corrupted ids). They are now RFC-4180-quoted on write and unquoted on
   read. *)
let test_csv_quoting_roundtrip () =
  let tr =
    Trace.of_list
      [
        ("plain", Tuple.of_list [ ("E1", 1) ]);
        ("comma,id", Tuple.of_list [ ("E,1", 2); ("E2", 3) ]);
        ("say \"hi\"", Tuple.of_list [ ("E1", 4) ]);
        ("two\nlines", Tuple.of_list [ ("E1", 5) ]);
        (" padded ", Tuple.of_list [ ("E1", 6) ]);
      ]
  in
  let s = Csv_io.trace_to_string tr in
  match Csv_io.trace_of_string s with
  | Error e -> Alcotest.fail e
  | Ok tr' ->
      check_int "all tuples back" (Trace.cardinal tr) (Trace.cardinal tr');
      List.iter2
        (fun (i1, t1) (i2, t2) ->
          check_str "id round trips" i1 i2;
          check_bool ("tuple round trips: " ^ i1) true (Tuple.equal t1 t2))
        (Trace.bindings tr) (Trace.bindings tr')

(* Regression: the header was only recognised at line 1, so a leading
   blank line turned it into a parse error. *)
let test_csv_header_after_blanks () =
  match Csv_io.trace_of_string "\n  \ntuple_id,event,timestamp\nid1,E1,5\n" with
  | Ok tr -> check_int "header after leading blanks accepted" 1 (Trace.cardinal tr)
  | Error e -> Alcotest.fail e

let test_csv_ambiguous_rejected () =
  let expect_error label s =
    match Csv_io.trace_of_string s with
    | Error msg -> check_bool (label ^ " reported") true (String.length msg > 0)
    | Ok _ -> Alcotest.fail ("expected error: " ^ label)
  in
  expect_error "quote inside unquoted field" "ab\"cd,E1,5\n";
  expect_error "unterminated quote" "\"abcd,E1,5\n";
  expect_error "text after closing quote" "\"ab\"cd,E1,5\n"

let test_split_line () =
  let ok label line expected =
    match Csv_io.split_line line with
    | Ok fields -> check_bool label true (fields = expected)
    | Error e -> Alcotest.failf "%s: %s" label e
  in
  ok "plain fields trimmed" "a, b ,c" [ "a"; "b"; "c" ];
  ok "quoted field keeps comma" "a,\"b, c\",d" [ "a"; "b, c"; "d" ];
  ok "quoted field verbatim (no trim)" "\" b \",c" [ " b "; "c" ];
  ok "doubled quotes unescape" "\"say \"\"hi\"\"\"" [ "say \"hi\"" ];
  ok "empty string is no fields" "" [];
  ok "single field" "abc" [ "abc" ];
  (match Csv_io.split_line "a,\"unterminated" with
  | Error msg ->
      check_bool "split_line error has no line prefix" false
        (String.starts_with ~prefix:"line " msg)
  | Ok _ -> Alcotest.fail "expected unterminated-quote error");
  match Csv_io.split_line "a,\"x\"y" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected text-after-quote error"

let test_csv_errors () =
  (match Csv_io.trace_of_string "a,b\n" with
  | Error msg -> check_bool "field count error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected field-count error");
  (match Csv_io.trace_of_string "id,E1,notanumber\n" with
  | Error msg -> check_bool "timestamp error reported" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected timestamp error");
  match Csv_io.trace_of_string "tuple_id,event,timestamp\n\n  \nid1,E1,5\n" with
  | Ok tr -> check_int "header and blanks skipped" 1 (Trace.cardinal tr)
  | Error e -> Alcotest.fail e

let suite =
  ( "events",
    [
      Alcotest.test_case "artificial events" `Quick test_event_artificial;
      Alcotest.test_case "time of/to hm" `Quick test_time_hm;
      Alcotest.test_case "tuple basics" `Quick test_tuple_basics;
      Alcotest.test_case "tuple delta (Formula 1)" `Quick test_tuple_delta;
      Alcotest.test_case "tuple diff" `Quick test_tuple_diff;
      Alcotest.test_case "tuple union/restrict" `Quick test_tuple_union_restrict;
      Alcotest.test_case "trace operations" `Quick test_trace;
      Alcotest.test_case "csv round trip" `Quick test_csv_roundtrip;
      Alcotest.test_case "csv quoting round trip" `Quick test_csv_quoting_roundtrip;
      Alcotest.test_case "csv header after blanks" `Quick test_csv_header_after_blanks;
      Alcotest.test_case "csv ambiguous input rejected" `Quick
        test_csv_ambiguous_rejected;
      Alcotest.test_case "csv split_line" `Quick test_split_line;
      Alcotest.test_case "csv errors" `Quick test_csv_errors;
    ] )
