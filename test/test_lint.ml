open Whynot
module Lint = Explain.Lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p s = [ Pattern.Parse.pattern_exn s ]

let find_bound report pred =
  List.find_opt (fun f -> pred f.Lint.bound) report.Lint.findings

let test_ok_bounds () =
  let r = Lint.run (p "SEQ(A, B) ATLEAST 10 WITHIN 20") in
  check_bool "consistent" true r.consistent;
  check_int "two findings" 2 (List.length r.findings);
  check_bool "both ok" true
    (List.for_all (fun f -> f.Lint.verdict = Lint.Ok_bound) r.findings)

let test_dead_atleast () =
  (* outer ATLEAST 5 is implied by the inner ATLEAST 30 *)
  let r = Lint.run (p "SEQ(SEQ(A, B) ATLEAST 30, C) ATLEAST 5") in
  match find_bound r (function `Atleast 5 -> true | _ -> false) with
  | Some { verdict = Lint.Dead { implied }; _ } ->
      check_int "implied by inner bound" 30 implied
  | _ -> Alcotest.fail "expected outer ATLEAST to be dead"

let test_dead_within () =
  (* The second pattern's WITHIN 100 is implied by the first's WITHIN 20
     (same events, joint constraint set). *)
  let set =
    match Pattern.Parse.pattern_set "SEQ(A, B) WITHIN 20; SEQ(A, B) WITHIN 100" with
    | Ok ps -> ps
    | Error e -> Alcotest.fail e
  in
  let r = Lint.run set in
  match List.find_opt (fun f -> f.Lint.bound = `Within 100) r.findings with
  | Some { verdict = Lint.Dead { implied }; _ } -> check_int "implied 20" 20 implied
  | _ -> Alcotest.fail "expected the loose WITHIN to be dead"

let test_fatal_bound () =
  (* The paper's 1.1.1 bug: 30+30 can never fit WITHIN 45 — the linter
     blames the WITHIN bound specifically. *)
  let r =
    Lint.run (p "SEQ(AND(E1, E3) ATLEAST 30, AND(E2, E4) ATLEAST 30) WITHIN 45")
  in
  check_bool "whole query inconsistent" false r.consistent;
  (match find_bound r (function `Within 45 -> true | _ -> false) with
  | Some { verdict = Lint.Fatal { implied_lo = Some lo; _ }; _ } ->
      check_bool "implied lower bound beyond 45" true (lo > 45)
  | _ -> Alcotest.fail "expected the WITHIN 45 to be fatal");
  (* every bound participates in the conflict, so each is flagged as a
     candidate fix — relaxing any one of the three restores consistency *)
  check_bool "all three bounds flagged" true
    (List.for_all
       (fun f -> match f.Lint.verdict with Lint.Fatal _ -> true | _ -> false)
       r.findings);
  check_int "three findings" 3 (List.length r.findings)

let test_normalization_savings () =
  let r = Lint.run (p "AND(AND(A, B), AND(C, D))") in
  let before, after = r.normalized_savings in
  check_int "before" 64 before;
  check_int "after" 16 after

let test_no_windows () =
  let r = Lint.run (p "SEQ(A, AND(B, C))") in
  check_int "no findings" 0 (List.length r.findings);
  check_bool "consistent" true r.consistent

(* Removing ONE Dead bound must preserve the matcher's semantics on random
   tuples (that is what "dead" means; removing several at once is not
   implied — two bounds can each be dead only given the other). *)
let prop_dead_bounds_removable =
  QCheck.Test.make ~name:"each dead bound is individually removable" ~count:60
    (Gen.pattern_and_tuple ~horizon:150 ~max_events:5 ()) (fun (pat, t) ->
      let report = Lint.run [ pat ] in
      List.for_all
        (fun f ->
          match f.Lint.verdict with
          | Lint.Dead _ ->
              let stripped =
                Lint.map_window [ pat ] f.Lint.path (fun w ->
                    match f.Lint.bound with
                    | `Atleast _ -> { w with Pattern.Ast.atleast = None }
                    | `Within _ -> { w with Pattern.Ast.within = None })
              in
              Pattern.Matcher.matches_set t [ pat ]
              = Pattern.Matcher.matches_set t stripped
          | _ -> true)
        report.findings)

(* --- metrics lint: docs/OBSERVABILITY.md must name every metric --- *)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Span metrics register at first call, not at module init, so run one
   explain through each entry point to materialize the full registry
   before snapshotting it. *)
let materialize_registry () =
  let p0 = Pattern.Parse.pattern_exn "SEQ(A, B) WITHIN 20" in
  let t = Events.Tuple.of_list [ ("A", 0); ("B", 50) ] in
  ignore (Explain.Pipeline.explain [ p0 ] t);
  ignore (Cep.Bulk.explain_trace [ p0 ] (Events.Trace.of_list [ ("t0", t) ]));
  let detector = Cep.Detector.create [ p0 ] in
  ignore (Cep.Detector.feed detector { Cep.Detector.event = "A"; timestamp = 0; tag = "x" });
  let stream = Cep.Stream.create [ p0 ] in
  ignore (Cep.Stream.feed stream ~key:"k" "A" 0);
  (* the serve counters and the scrape span register when the service
     renders a scrape body, no listening socket needed *)
  let service = Serve.Service.create ~shards:4 [ p0 ] in
  ignore (Serve.Service.metrics_body service);
  (* shed and keep-alive counters register on their first event; pin them
     here so the lint covers their catalog entries too *)
  ignore (Obs.counter "serve.shed");
  ignore (Obs.counter "serve.keepalive.reuses");
  (* the request-path latency decomposition registers at first request;
     observe through the same registrar the serving stack uses *)
  List.iter
    (fun name ->
      Obs.observe_span ~hist_buckets:Serve.Http.latency_buckets name ~ns:0)
    [ "serve.request.queue_wait"; "serve.shard.service"; "serve.request.write" ]

let test_metrics_documented () =
  materialize_registry ();
  let docs =
    (* dune runtest runs in _build/default/test with ../docs staged as a
       dep; the fallbacks cover running the executable by hand. *)
    let candidates =
      [
        "../docs/OBSERVABILITY.md";
        "docs/OBSERVABILITY.md";
        "../../docs/OBSERVABILITY.md";
        "../../../docs/OBSERVABILITY.md";
      ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some path -> In_channel.with_open_text path In_channel.input_all
    | None -> Alcotest.fail "docs/OBSERVABILITY.md not found"
  in
  let snap = Obs.snapshot () in
  let keep names =
    List.filter
      (fun n -> not (String.starts_with ~prefix:"test." n))
      (List.map fst names)
  in
  let registry_names =
    keep snap.Obs.counters @ keep snap.Obs.gauges @ keep snap.Obs.histograms
    @ keep snap.Obs.spans
  in
  (* Samples on /metrics carry mangled names: counters, gauges and
     histograms expose the mangled name directly; spans surface as a
     _seconds summary. All of those must be documented too, alongside
     the raw names, the trace kinds and the structured-log events. *)
  let exposition_names =
    List.map Report.Prom_text.mangle
      (keep snap.Obs.counters @ keep snap.Obs.gauges @ keep snap.Obs.histograms)
    @ List.map
        (fun n -> Report.Prom_text.mangle n ^ Report.Prom_text.span_suffix)
        (keep snap.Obs.spans)
  in
  let missing =
    List.filter
      (fun name -> not (contains_substring docs name))
      (registry_names @ exposition_names @ Obs.Trace.kind_names
     @ Obs.Log.event_names)
  in
  Alcotest.(check (list string))
    "every registered metric, exposition, trace and log name appears in \
     docs/OBSERVABILITY.md"
    [] missing

let test_map_window_bad_paths () =
  let ps = p "SEQ(A, B) WITHIN 20" in
  let raises name f =
    check_bool name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  raises "empty path" (fun () -> Lint.map_window ps [] Fun.id);
  raises "pattern index out of range" (fun () -> Lint.map_window ps [ 5 ] Fun.id);
  raises "negative pattern index" (fun () -> Lint.map_window ps [ -1 ] Fun.id);
  raises "child index out of range" (fun () -> Lint.map_window ps [ 0; 7 ] Fun.id);
  raises "path ends at an event" (fun () -> Lint.map_window ps [ 0; 0 ] Fun.id);
  raises "path through an event leaf" (fun () ->
      Lint.map_window ps [ 0; 0; 0 ] Fun.id);
  (* a valid path still rewrites the window *)
  match Lint.map_window ps [ 0 ] (fun w -> { w with Pattern.Ast.within = None }) with
  | [ Pattern.Ast.Seq (_, w) ] ->
      check_bool "window erased" true (w.Pattern.Ast.within = None)
  | _ -> Alcotest.fail "expected the rewritten SEQ"

let suite =
  ( "lint",
    [
      Alcotest.test_case "genuinely constraining bounds" `Quick test_ok_bounds;
      Alcotest.test_case "dead ATLEAST detected" `Quick test_dead_atleast;
      Alcotest.test_case "dead WITHIN detected" `Quick test_dead_within;
      Alcotest.test_case "fatal bound blamed (paper 1.1.1)" `Quick test_fatal_bound;
      Alcotest.test_case "normalization savings" `Quick test_normalization_savings;
      Alcotest.test_case "window-less query" `Quick test_no_windows;
      Alcotest.test_case "map_window rejects bad paths" `Quick
        test_map_window_bad_paths;
      Alcotest.test_case "metrics documented (@metrics-lint)" `Quick
        test_metrics_documented;
      Gen.qt prop_dead_bounds_removable;
    ] )
