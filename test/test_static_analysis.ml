(* Fixture tests for the whynot-check static-analysis engine: each rule has
   at least one flagged (positive) and one clean (negative) fixture, checked
   at the engine level so the dune alias stays a thin wrapper. *)

module Engine = Whynot_check.Engine
module Config = Whynot_check.Config
module Diag = Whynot_check.Diag
module Baseline = Whynot_check.Baseline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let config = Config.default

let analyze ?(filename = "lib/fixture.ml") source =
  match Engine.check_source ~config ~filename source with
  | Ok pair -> pair
  | Error msg -> Alcotest.failf "fixture failed to parse: %s" msg

let rules ?filename source =
  let fr, _ = analyze ?filename source in
  List.map (fun d -> d.Diag.rule) fr.Engine.diags

let count rule ds = List.length (List.filter (String.equal rule) ds)

let test_poly_compare () =
  check_int "structured (=) flagged" 1
    (count "poly-compare" (rules "let f x = x = Some 1"));
  check_int "structured (<>) flagged" 1
    (count "poly-compare" (rules "let f x = x <> Some 'a'"));
  check_int "bare compare flagged" 1
    (count "poly-compare" (rules "let f xs = List.sort compare xs"));
  check_int "physical equality flagged" 1
    (count "poly-compare" (rules "let f a b = a == b"));
  check_int "Stdlib.compare flagged" 1
    (count "poly-compare" (rules "let f a b = Stdlib.compare a b"));
  (* negatives *)
  check_int "Int.compare clean" 0
    (count "poly-compare" (rules "let f xs = List.sort Int.compare xs"));
  check_int "int literal (=) clean" 0
    (count "poly-compare" (rules "let f x = x = 1"));
  check_int "nullary constructor (=) clean" 0
    (count "poly-compare" (rules "let f x = x = None"));
  check_int "locally defined compare clean" 0
    (count "poly-compare"
       (rules "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs"))

let test_checked_arith () =
  let in_tcn = rules ~filename:"lib/tcn/fixture.ml" in
  check_int "bare (+) flagged in lib/tcn" 1
    (count "checked-arith" (in_tcn "let f a b = a + b"));
  check_int "bare unary negation flagged" 1
    (count "checked-arith" (in_tcn "let f a = -a"));
  (* negatives *)
  check_int "small literal operand exempt" 0
    (count "checked-arith" (in_tcn "let f a = a + 1"));
  check_int "Checked module clean" 0
    (count "checked-arith" (in_tcn "let f a b = Numeric.Checked.add a b"));
  check_int "outside configured paths clean" 0
    (count "checked-arith" (rules ~filename:"lib/cep/fixture.ml" "let f a b = a + b"));
  (* an annotated site lands in the suppressed bucket, not the findings *)
  let fr, suppressed =
    analyze ~filename:"lib/tcn/fixture.ml"
      "let f a b = a + b (* check: idx - fixture reason *)"
  in
  check_int "annotation suppresses the finding" 0 (List.length fr.Engine.diags);
  check_int "suppressed is recorded" 1 (List.length suppressed)

let test_exn_swallow () =
  check_int "catch-all swallow flagged" 1
    (count "exn-swallow" (rules "let f g = try g () with _ -> 0"));
  check_int "named catch-all swallow flagged" 1
    (count "exn-swallow" (rules "let f g = try g () with e -> ignore e; 0"));
  (* negatives *)
  check_int "re-raise clean" 0
    (count "exn-swallow" (rules "let f g = try g () with e -> raise e"));
  check_int "recorded to Obs clean" 0
    (count "exn-swallow"
       (rules "let f g c = try g () with _ -> Obs.incr c; 0"));
  check_int "specific constructor clean" 0
    (count "exn-swallow" (rules "let f g = try g () with Not_found -> 0"))

let test_no_stdout () =
  check_int "print_string flagged in lib" 1
    (count "no-stdout" (rules "let f () = print_string \"hi\""));
  check_int "Printf.printf flagged in lib" 1
    (count "no-stdout" (rules "let f x = Printf.printf \"%d\" x"));
  (* negatives *)
  check_int "lib/report is allowed" 0
    (count "no-stdout"
       (rules ~filename:"lib/report/fixture.ml" "let f () = print_string \"hi\""));
  check_int "bin is allowed" 0
    (count "no-stdout"
       (rules ~filename:"bin/fixture.ml" "let f () = print_string \"hi\""));
  check_int "stderr is fine" 0
    (count "no-stdout" (rules "let f x = Printf.eprintf \"%d\" x"))

let test_domain_safety () =
  let spawning =
    "let total = ref 0\n\
     let run f = ignore (Domain.spawn f)\n\
     let bump () = incr total\n"
  in
  check_int "unguarded toplevel ref mutation flagged" 1
    (count "domain-safety" (rules spawning));
  let guarded =
    "let m = Mutex.create ()\n\
     let total = ref 0\n\
     let run f = ignore (Domain.spawn f)\n\
     let bump () = Mutex.lock m; incr total; Mutex.unlock m\n"
  in
  check_int "mutex-guarded mutation clean" 0 (count "domain-safety" (rules guarded));
  let no_domains = "let total = ref 0\nlet bump () = incr total\n" in
  check_int "no Domain.spawn, no rule" 0 (count "domain-safety" (rules no_domains))

let test_metrics_doc () =
  let missing ~docs source =
    let fr, _ = analyze source in
    List.length (Engine.missing_metric_diags ~docs fr.Engine.metrics)
  in
  let fr, _ = analyze "let c = Obs.counter \"fixture.metric\"" in
  check_int "registration site collected" 1 (List.length fr.Engine.metrics);
  (* one diag per missing required name: the raw name and its exposition name *)
  check_int "undocumented name reported" 2
    (List.length (Engine.missing_metric_diags ~docs:"unrelated text" fr.Engine.metrics));
  (* counters need the raw name AND the exposition name documented *)
  check_int "raw name alone is not enough" 1
    (missing ~docs:"| `fixture.metric` | counter |"
       "let c = Obs.counter \"fixture.metric\"");
  check_int "raw + exposition name clean" 0
    (missing
       ~docs:"| `fixture.metric` | counter | `whynot_fixture_metric` |"
       "let c = Obs.counter \"fixture.metric\"");
  (* spans map to a _seconds summary, not the bare mangled name *)
  check_int "span needs its _seconds series" 1
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span` |"
       "let f g = Obs.with_span \"fixture.span\" g");
  check_int "span with _seconds clean" 0
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span_seconds` |"
       "let f g = Obs.with_span \"fixture.span\" g");
  (* ~hist_buckets derives a .duration_us histogram that must be documented
     (raw and exposition names, hence two diags when absent) *)
  check_int "hist_buckets span also requires the derived histogram" 2
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span_seconds` |"
       "let f b g = Obs.with_span ~hist_buckets:b \"fixture.span\" g");
  check_int "derived histogram documented clean" 0
    (missing
       ~docs:
         "| `fixture.span` | `whynot_fixture_span_seconds` |\n\
          | `fixture.span.duration_us` | `whynot_fixture_span_duration_us` |"
       "let f b g = Obs.with_span ~hist_buckets:b \"fixture.span\" g");
  (* Log/Trace names are internal-only: raw name suffices *)
  check_int "log event raw name clean" 0
    (missing ~docs:"| `fixture.event` | info |"
       "let f () = Obs.Log.emit Obs.Log.Info \"fixture.event\" []");
  check_int "catalog entries collected raw-only" 0
    (missing ~docs:"`fixture.a` and `fixture.b`"
       "let event_names = [ \"fixture.a\"; \"fixture.b\" ]");
  check_int "catalog entries still reported when absent" 2
    (missing ~docs:"nothing"
       "let event_names = [ \"fixture.a\"; \"fixture.b\" ]");
  let test_prefixed, _ = analyze "let c = Obs.counter \"test.only\"" in
  check_int "test.* names are exempt" 0
    (List.length
       (Engine.missing_metric_diags ~docs:"nothing" test_prefixed.Engine.metrics))

let test_baseline_and_gate () =
  let d =
    {
      Diag.file = "lib/fixture.ml";
      line = 3;
      col = 1;
      rule = "poly-compare";
      severity = Diag.Error;
      message = "fixture";
    }
  in
  let entry reason file rule line = { Baseline.file; rule; line; reason } in
  let b = [ entry "documented exception" "lib/fixture.ml" "poly-compare" (Some 3) ] in
  let kept, baselined, stale = Baseline.apply b [ d ] in
  check_int "matching entry absorbs the diag" 0 (List.length kept);
  check_int "baselined recorded" 1 (List.length baselined);
  check_int "no stale entries" 0 (List.length stale);
  let stale_b = [ entry "gone" "lib/other.ml" "no-stdout" None ] in
  let kept, _, stale = Baseline.apply stale_b [ d ] in
  check_int "unmatched diag kept" 1 (List.length kept);
  check_int "unmatched entry is stale" 1 (List.length stale);
  let result findings errors =
    {
      Engine.findings;
      suppressed = [];
      baselined = [];
      stale_baseline = [];
      errors;
      files_scanned = 1;
    }
  in
  check_int "clean gates 0" 0 (Engine.gate (result [] []));
  check_int "findings gate 1" 1 (Engine.gate (result [ d ] []));
  check_int "infrastructure gates 2" 2 (Engine.gate (result [] [ "io error" ]))

let test_parse_failure_is_error () =
  check_bool "unparsable fixture is an infrastructure error" true
    (match
       Engine.check_source ~config ~filename:"lib/broken.ml" "let = = ="
     with
    | Error _ -> true
    | Ok _ -> false)

let suite =
  ( "static_analysis",
    [
      Alcotest.test_case "poly-compare fixtures" `Quick test_poly_compare;
      Alcotest.test_case "checked-arith fixtures" `Quick test_checked_arith;
      Alcotest.test_case "exn-swallow fixtures" `Quick test_exn_swallow;
      Alcotest.test_case "no-stdout fixtures" `Quick test_no_stdout;
      Alcotest.test_case "domain-safety fixtures" `Quick test_domain_safety;
      Alcotest.test_case "metrics-doc fixtures" `Quick test_metrics_doc;
      Alcotest.test_case "baseline and exit gating" `Quick test_baseline_and_gate;
      Alcotest.test_case "parse failure is infrastructure" `Quick
        test_parse_failure_is_error;
    ] )
