(* Fixture tests for the whynot-check static-analysis engine: each rule has
   at least one flagged (positive) and one clean (negative) fixture, checked
   at the engine level so the dune alias stays a thin wrapper. *)

module Engine = Whynot_check.Engine
module Config = Whynot_check.Config
module Diag = Whynot_check.Diag
module Baseline = Whynot_check.Baseline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let config = Config.default

let analyze ?(filename = "lib/fixture.ml") source =
  match Engine.check_source ~config ~filename source with
  | Ok pair -> pair
  | Error msg -> Alcotest.failf "fixture failed to parse: %s" msg

let rules ?filename source =
  let fr, _ = analyze ?filename source in
  List.map (fun d -> d.Diag.rule) fr.Engine.diags

let count rule ds = List.length (List.filter (String.equal rule) ds)

let test_poly_compare () =
  check_int "structured (=) flagged" 1
    (count "poly-compare" (rules "let f x = x = Some 1"));
  check_int "structured (<>) flagged" 1
    (count "poly-compare" (rules "let f x = x <> Some 'a'"));
  check_int "bare compare flagged" 1
    (count "poly-compare" (rules "let f xs = List.sort compare xs"));
  check_int "physical equality flagged" 1
    (count "poly-compare" (rules "let f a b = a == b"));
  check_int "Stdlib.compare flagged" 1
    (count "poly-compare" (rules "let f a b = Stdlib.compare a b"));
  (* negatives *)
  check_int "Int.compare clean" 0
    (count "poly-compare" (rules "let f xs = List.sort Int.compare xs"));
  check_int "int literal (=) clean" 0
    (count "poly-compare" (rules "let f x = x = 1"));
  check_int "nullary constructor (=) clean" 0
    (count "poly-compare" (rules "let f x = x = None"));
  check_int "locally defined compare clean" 0
    (count "poly-compare"
       (rules "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs"))

let test_checked_arith () =
  let in_tcn = rules ~filename:"lib/tcn/fixture.ml" in
  check_int "bare (+) flagged in lib/tcn" 1
    (count "checked-arith" (in_tcn "let f a b = a + b"));
  check_int "bare unary negation flagged" 1
    (count "checked-arith" (in_tcn "let f a = -a"));
  (* negatives *)
  check_int "small literal operand exempt" 0
    (count "checked-arith" (in_tcn "let f a = a + 1"));
  check_int "Checked module clean" 0
    (count "checked-arith" (in_tcn "let f a b = Numeric.Checked.add a b"));
  check_int "outside configured paths clean" 0
    (count "checked-arith" (rules ~filename:"lib/cep/fixture.ml" "let f a b = a + b"));
  (* an annotated site lands in the suppressed bucket, not the findings *)
  let fr, suppressed =
    analyze ~filename:"lib/tcn/fixture.ml"
      "let f a b = a + b (* check: idx - fixture reason *)"
  in
  check_int "annotation suppresses the finding" 0 (List.length fr.Engine.diags);
  check_int "suppressed is recorded" 1 (List.length suppressed)

let test_exn_swallow () =
  check_int "catch-all swallow flagged" 1
    (count "exn-swallow" (rules "let f g = try g () with _ -> 0"));
  check_int "named catch-all swallow flagged" 1
    (count "exn-swallow" (rules "let f g = try g () with e -> ignore e; 0"));
  (* negatives *)
  check_int "re-raise clean" 0
    (count "exn-swallow" (rules "let f g = try g () with e -> raise e"));
  check_int "recorded to Obs clean" 0
    (count "exn-swallow"
       (rules "let f g c = try g () with _ -> Obs.incr c; 0"));
  check_int "specific constructor clean" 0
    (count "exn-swallow" (rules "let f g = try g () with Not_found -> 0"))

let test_no_stdout () =
  check_int "print_string flagged in lib" 1
    (count "no-stdout" (rules "let f () = print_string \"hi\""));
  check_int "Printf.printf flagged in lib" 1
    (count "no-stdout" (rules "let f x = Printf.printf \"%d\" x"));
  (* negatives *)
  check_int "lib/report is allowed" 0
    (count "no-stdout"
       (rules ~filename:"lib/report/fixture.ml" "let f () = print_string \"hi\""));
  check_int "bin is allowed" 0
    (count "no-stdout"
       (rules ~filename:"bin/fixture.ml" "let f () = print_string \"hi\""));
  check_int "stderr is fine" 0
    (count "no-stdout" (rules "let f x = Printf.eprintf \"%d\" x"))

let test_domain_safety () =
  let spawning =
    "let total = ref 0\n\
     let run f = ignore (Domain.spawn f)\n\
     let bump () = incr total\n"
  in
  check_int "unguarded toplevel ref mutation flagged" 1
    (count "domain-safety" (rules spawning));
  let guarded =
    "let m = Mutex.create ()\n\
     let total = ref 0\n\
     let run f = ignore (Domain.spawn f)\n\
     let bump () = Mutex.lock m; incr total; Mutex.unlock m\n"
  in
  check_int "mutex-guarded mutation clean" 0 (count "domain-safety" (rules guarded));
  let no_domains = "let total = ref 0\nlet bump () = incr total\n" in
  check_int "no Domain.spawn, no rule" 0 (count "domain-safety" (rules no_domains))

let test_metrics_doc () =
  let missing ~docs source =
    let fr, _ = analyze source in
    List.length (Engine.missing_metric_diags ~docs fr.Engine.metrics)
  in
  let fr, _ = analyze "let c = Obs.counter \"fixture.metric\"" in
  check_int "registration site collected" 1 (List.length fr.Engine.metrics);
  (* one diag per missing required name: the raw name and its exposition name *)
  check_int "undocumented name reported" 2
    (List.length (Engine.missing_metric_diags ~docs:"unrelated text" fr.Engine.metrics));
  (* counters need the raw name AND the exposition name documented *)
  check_int "raw name alone is not enough" 1
    (missing ~docs:"| `fixture.metric` | counter |"
       "let c = Obs.counter \"fixture.metric\"");
  check_int "raw + exposition name clean" 0
    (missing
       ~docs:"| `fixture.metric` | counter | `whynot_fixture_metric` |"
       "let c = Obs.counter \"fixture.metric\"");
  (* spans map to a _seconds summary, not the bare mangled name *)
  check_int "span needs its _seconds series" 1
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span` |"
       "let f g = Obs.with_span \"fixture.span\" g");
  check_int "span with _seconds clean" 0
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span_seconds` |"
       "let f g = Obs.with_span \"fixture.span\" g");
  (* ~hist_buckets derives a .duration_us histogram that must be documented
     (raw and exposition names, hence two diags when absent) *)
  check_int "hist_buckets span also requires the derived histogram" 2
    (missing ~docs:"| `fixture.span` | `whynot_fixture_span_seconds` |"
       "let f b g = Obs.with_span ~hist_buckets:b \"fixture.span\" g");
  check_int "derived histogram documented clean" 0
    (missing
       ~docs:
         "| `fixture.span` | `whynot_fixture_span_seconds` |\n\
          | `fixture.span.duration_us` | `whynot_fixture_span_duration_us` |"
       "let f b g = Obs.with_span ~hist_buckets:b \"fixture.span\" g");
  (* Log/Trace names are internal-only: raw name suffices *)
  check_int "log event raw name clean" 0
    (missing ~docs:"| `fixture.event` | info |"
       "let f () = Obs.Log.emit Obs.Log.Info \"fixture.event\" []");
  check_int "catalog entries collected raw-only" 0
    (missing ~docs:"`fixture.a` and `fixture.b`"
       "let event_names = [ \"fixture.a\"; \"fixture.b\" ]");
  check_int "catalog entries still reported when absent" 2
    (missing ~docs:"nothing"
       "let event_names = [ \"fixture.a\"; \"fixture.b\" ]");
  let test_prefixed, _ = analyze "let c = Obs.counter \"test.only\"" in
  check_int "test.* names are exempt" 0
    (List.length
       (Engine.missing_metric_diags ~docs:"nothing" test_prefixed.Engine.metrics))

let test_baseline_and_gate () =
  let d =
    {
      Diag.file = "lib/fixture.ml";
      line = 3;
      col = 1;
      rule = "poly-compare";
      severity = Diag.Error;
      message = "fixture";
    }
  in
  let entry reason file rule line = { Baseline.file; rule; line; reason } in
  let b = [ entry "documented exception" "lib/fixture.ml" "poly-compare" (Some 3) ] in
  let kept, baselined, stale = Baseline.apply b [ d ] in
  check_int "matching entry absorbs the diag" 0 (List.length kept);
  check_int "baselined recorded" 1 (List.length baselined);
  check_int "no stale entries" 0 (List.length stale);
  let stale_b = [ entry "gone" "lib/other.ml" "no-stdout" None ] in
  let kept, _, stale = Baseline.apply stale_b [ d ] in
  check_int "unmatched diag kept" 1 (List.length kept);
  check_int "unmatched entry is stale" 1 (List.length stale);
  let result findings errors =
    {
      Engine.findings;
      suppressed = [];
      baselined = [];
      stale_baseline = [];
      errors;
      files_scanned = 1;
      files_analyzed = 1;
      timings = [];
      lock_pairs = [];
    }
  in
  check_int "clean gates 0" 0 (Engine.gate (result [] []));
  check_int "findings gate 1" 1 (Engine.gate (result [ d ] []));
  check_int "infrastructure gates 2" 2 (Engine.gate (result [] [ "io error" ]))

(* ---- interprocedural lock-discipline fixtures ----------------------- *)

(* Lock fixtures go through [analyze_sources], the same whole-tree pipeline
   the CLI uses, so call-graph summaries and the global order checks run. *)
let tree ?(config = config) sources =
  let r = Engine.analyze_sources ~config sources in
  r.Engine.findings

let tree_rules ?config sources =
  List.map (fun d -> d.Diag.rule) (tree ?config sources)

let message_with rule ds =
  match List.find_opt (fun d -> String.equal d.Diag.rule rule) ds with
  | Some d -> d.Diag.message
  | None -> Alcotest.failf "no %s finding" rule

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fx source = [ ("lib/fixture.ml", source) ]

let test_lock_balance () =
  check_int "early raise while holding flagged" 1
    (count "lock-balance"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f x = Mutex.lock m; if x then failwith \"boom\"; \
              Mutex.unlock m\n")));
  check_int "unlock missing on one branch flagged" 1
    (count "lock-balance"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f x = Mutex.lock m; if x then Mutex.unlock m\n")));
  check_int "unlock with no matching lock flagged" 1
    (count "lock-balance"
       (tree_rules (fx "let m = Mutex.create ()\nlet f () = Mutex.unlock m\n")));
  (* negatives: the three sanctioned release shapes *)
  check_int "straight-line lock/unlock clean" 0
    (count "lock-balance"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f g = Mutex.lock m; let v = g 1 in Mutex.unlock m; v\n")));
  check_int "Fun.protect releases on raise" 0
    (count "lock-balance"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f () =\n\
             \  Mutex.lock m;\n\
             \  Fun.protect ~finally:(fun () -> Mutex.unlock m)\n\
             \    (fun () -> failwith \"boom\")\n")));
  check_int "match-exception handler releases on raise" 0
    (count "lock-balance"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f g =\n\
             \  Mutex.lock m;\n\
             \  match g () with\n\
             \  | v -> Mutex.unlock m; v\n\
             \  | exception e -> Mutex.unlock m; raise e\n")))

let lock_ab_ba =
  "let a = Mutex.create ()\n\
   let b = Mutex.create ()\n\
   let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
   let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n"

let test_lock_order () =
  let pinned = { config with Config.lock_order = [ "fixture.a"; "fixture.b" ] } in
  (* AB in one function, BA in another: a deadlock finding naming both
     locks and both acquisition paths *)
  let findings = tree ~config:pinned (fx lock_ab_ba) in
  check_bool "conflict reported" true
    (List.exists (fun d -> String.equal d.Diag.rule "lock-order") findings);
  let msg = message_with "lock-order" findings in
  check_bool "names the conflict" true (contains msg "conflicting");
  check_bool "names lock a" true (contains msg "fixture.a");
  check_bool "names lock b" true (contains msg "fixture.b");
  check_bool "names path f" true (contains msg "fixture.f");
  check_bool "names path g" true (contains msg "fixture.g");
  (* one direction only, but against the pinned order *)
  let reversed_only =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n"
  in
  check_int "pinned-order violation flagged" 1
    (count "lock-order" (tree_rules ~config:pinned (fx reversed_only)));
  let ordered =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n"
  in
  check_int "pinned order respected clean" 0
    (count "lock-order" (tree_rules ~config:pinned (fx ordered)));
  check_int "pair outside lock_order must be pinned" 1
    (count "lock-order" (tree_rules (fx ordered)));
  (* transitive acquisition through a callee is still a pair *)
  let transitive =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let inner g = Mutex.lock a; let v = g 1 in Mutex.unlock a; v\n\
     let outer g = Mutex.lock b; let v = inner g in Mutex.unlock b; v\n"
  in
  check_int "transitive reversed pair flagged" 1
    (count "lock-order" (tree_rules ~config:pinned (fx transitive)))

let test_lock_multi_acquire () =
  let batch =
    "type sh = { lk : Mutex.t }\n\
     let admit shards =\n\
    \  List.iter (fun s -> Mutex.lock s.lk) shards;\n\
    \  List.iter (fun s -> Mutex.unlock s.lk) shards\n"
  in
  let base = { config with Config.lock_order = [ "fixture.lk" ] } in
  check_int "batch same-class acquisition needs sanction" 1
    (count "lock-order"
       (tree_rules
          ~config:{ base with Config.lock_multi_acquire = [] }
          (fx batch)));
  check_int "lock_multi_acquire sanctions the batch" 0
    (count "lock-order"
       (tree_rules
          ~config:{ base with Config.lock_multi_acquire = [ "fixture.lk" ] }
          (fx batch)))

let test_blocking_under_lock () =
  check_int "Unix.write under lock flagged" 1
    (count "blocking-under-lock"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f fd buf = Mutex.lock m; let n = Unix.write fd buf 0 1 in \
              Mutex.unlock m; n\n")));
  check_int "Unix.write outside the lock clean" 0
    (count "blocking-under-lock"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f fd buf = let n = Unix.write fd buf 0 1 in Mutex.lock m; \
              Mutex.unlock m; n\n")));
  check_int "non-blocking Unix call under lock clean" 0
    (count "blocking-under-lock"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let f () = Mutex.lock m; let t = Unix.gettimeofday () in \
              Mutex.unlock m; t\n")));
  (* interprocedural: the blocking call is one hop away; the finding cites
     the acquisition path *)
  let transitive =
    "let m = Mutex.create ()\n\
     let slow () = Unix.sleep 1\n\
     let f () = Mutex.lock m; slow (); Mutex.unlock m\n"
  in
  let findings = tree (fx transitive) in
  check_int "transitive blocking flagged" 1
    (count "blocking-under-lock" (List.map (fun d -> d.Diag.rule) findings));
  check_bool "finding cites the call path" true
    (contains (message_with "blocking-under-lock" findings) "fixture.slow")

let test_condition_discipline () =
  check_int "canonical wait loop clean" 0
    (List.length
       (tree
          (fx
             "let m = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let wait_ready p =\n\
             \  Mutex.lock m;\n\
             \  while not (p ()) do Condition.wait cv m done;\n\
             \  Mutex.unlock m\n")));
  check_int "wait without holding its mutex flagged" 1
    (count "condition-discipline"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let f p = while not (p ()) do Condition.wait cv m done\n")));
  check_int "wait outside a while loop flagged" 1
    (count "condition-discipline"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let f () = Mutex.lock m; Condition.wait cv m; Mutex.unlock m\n")));
  check_int "one condition under two mutexes flagged" 1
    (count "condition-discipline"
       (tree_rules
          (fx
             "let a = Mutex.create ()\n\
              let b = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let f p = Mutex.lock a; while not (p ()) do Condition.wait cv \
              a done; Mutex.unlock a\n\
              let g p = Mutex.lock b; while not (p ()) do Condition.wait cv \
              b done; Mutex.unlock b\n")));
  check_int "signal without the associated mutex flagged" 1
    (count "condition-discipline"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let f p = Mutex.lock m; while not (p ()) do Condition.wait cv \
              m done; Mutex.unlock m\n\
              let g () = Condition.signal cv\n")));
  check_int "signal under the associated mutex clean" 0
    (count "condition-discipline"
       (tree_rules
          (fx
             "let m = Mutex.create ()\n\
              let cv = Condition.create ()\n\
              let f p = Mutex.lock m; while not (p ()) do Condition.wait cv \
              m done; Mutex.unlock m\n\
              let g () = Mutex.lock m; Condition.signal cv; Mutex.unlock m\n")))

let test_stale_suppression () =
  (* a comment that suppresses nothing is itself a finding... *)
  let dead =
    tree (fx "let f a b = a + b (* check: idx - nothing to suppress here *)\n")
  in
  check_int "dead suppression flagged" 1
    (count "stale-suppression" (List.map (fun d -> d.Diag.rule) dead));
  (* ...while a live one suppresses its finding and stays silent *)
  let live =
    Engine.analyze_sources ~config
      [
        ( "lib/tcn/fixture.ml",
          "let f a b = a + b (* check: idx - fixture reason *)\n" );
      ]
  in
  check_int "live suppression is not stale" 0 (List.length live.Engine.findings);
  check_int "live suppression recorded" 1 (List.length live.Engine.suppressed)

(* The real serving stack must stay clean under the lock rules, and its
   observed acquisition structure must stay what DESIGN.md documents: the
   only nested acquisition is shard.sm -> shard.sm batch admission. *)
let repo_file p =
  (* runs from test/ under `dune runtest` and from the root under exec *)
  match List.find_opt Sys.file_exists [ "../" ^ p; p; "../../" ^ p ] with
  | Some path -> path
  | None -> Alcotest.failf "%s not found" p

let test_real_tree_lock_discipline () =
  let read p = In_channel.with_open_text (repo_file p) In_channel.input_all in
  let sources =
    List.map
      (fun p -> (p, read p))
      [ "lib/obs.ml"; "lib/serve/http.ml"; "lib/serve/shard.ml";
        "lib/serve/service.ml" ]
  in
  let lock_only = { config with Config.rules = Config.lock_rules } in
  let r = Engine.analyze_sources ~config:lock_only sources in
  List.iter
    (fun d ->
      Alcotest.failf "unexpected finding: %s" (Format.asprintf "%a" Diag.pp d))
    r.Engine.findings;
  check_bool "admission pair observed" true
    (List.exists
       (fun (o, i, _) -> String.equal o "shard.sm" && String.equal i "shard.sm")
       r.Engine.lock_pairs);
  check_bool "no other nested acquisition" true
    (List.for_all
       (fun (o, i, _) -> String.equal o "shard.sm" && String.equal i "shard.sm")
       r.Engine.lock_pairs)

let test_config_pins_lock_order () =
  match Config.load (repo_file "tools/whynot_check/config.json") with
  | Error msg -> Alcotest.failf "config.json unreadable: %s" msg
  | Ok c ->
      check_bool "lock_order matches the built-in default" true
        (c.Config.lock_order = Config.default.Config.lock_order);
      check_bool "shard.sm batch admission sanctioned" true
        (List.mem "shard.sm" c.Config.lock_multi_acquire);
      check_bool "order is outermost-first from the request path" true
        (c.Config.lock_order
        = [ "http.qm"; "http.cm"; "shard.sm"; "shard.cm"; "obs.rt_lock";
            "obs.ring_lock"; "obs.lock" ])

let test_parse_failure_is_error () =
  check_bool "unparsable fixture is an infrastructure error" true
    (match
       Engine.check_source ~config ~filename:"lib/broken.ml" "let = = ="
     with
    | Error _ -> true
    | Ok _ -> false)

let suite =
  ( "static_analysis",
    [
      Alcotest.test_case "poly-compare fixtures" `Quick test_poly_compare;
      Alcotest.test_case "checked-arith fixtures" `Quick test_checked_arith;
      Alcotest.test_case "exn-swallow fixtures" `Quick test_exn_swallow;
      Alcotest.test_case "no-stdout fixtures" `Quick test_no_stdout;
      Alcotest.test_case "domain-safety fixtures" `Quick test_domain_safety;
      Alcotest.test_case "metrics-doc fixtures" `Quick test_metrics_doc;
      Alcotest.test_case "lock-balance fixtures" `Quick test_lock_balance;
      Alcotest.test_case "lock-order fixtures" `Quick test_lock_order;
      Alcotest.test_case "lock_multi_acquire fixtures" `Quick
        test_lock_multi_acquire;
      Alcotest.test_case "blocking-under-lock fixtures" `Quick
        test_blocking_under_lock;
      Alcotest.test_case "condition-discipline fixtures" `Quick
        test_condition_discipline;
      Alcotest.test_case "stale-suppression fixtures" `Quick
        test_stale_suppression;
      Alcotest.test_case "real tree obeys the lock discipline" `Quick
        test_real_tree_lock_discipline;
      Alcotest.test_case "config.json pins the global lock order" `Quick
        test_config_pins_lock_order;
      Alcotest.test_case "baseline and exit gating" `Quick test_baseline_and_gate;
      Alcotest.test_case "parse failure is infrastructure" `Quick
        test_parse_failure_is_error;
    ] )
