open Whynot
module P = Report.Prom_text

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_mangle () =
  check_str "dots become underscores" "whynot_detector_matches"
    (P.mangle "detector.matches");
  check_str "namespace suppressible" "detector_matches"
    (P.mangle ~namespace:"" "detector.matches");
  check_str "custom namespace" "acme_a_b" (P.mangle ~namespace:"acme" "a.b");
  check_str "hostile characters collapse to underscores" "whynot_a_b_c_d"
    (P.mangle "a-b c{d");
  check_str "already-clean name keeps shape" "whynot_log_lines"
    (P.mangle "log.lines")

(* The mangling is many-to-one in general ("a.b" and "a_b" collide), so
   injectivity is a property of the catalog we actually register, checked
   here over the fully materialized registry. *)
let test_mangle_injective_on_catalog () =
  let p0 = Pattern.Parse.pattern_exn "SEQ(A, B) WITHIN 20" in
  let t = Events.Tuple.of_list [ ("A", 0); ("B", 50) ] in
  ignore (Explain.Pipeline.explain [ p0 ] t);
  ignore (Cep.Bulk.explain_trace [ p0 ] (Events.Trace.of_list [ ("t0", t) ]));
  let detector = Cep.Detector.create [ p0 ] in
  ignore
    (Cep.Detector.feed detector
       { Cep.Detector.event = "A"; timestamp = 0; tag = "x" });
  let stream = Cep.Stream.create [ p0 ] in
  ignore (Cep.Stream.feed stream ~key:"k" "A" 0);
  let service = Serve.Service.create [ p0 ] in
  ignore (Serve.Service.metrics_body service);
  let snap = Obs.snapshot () in
  let names =
    List.map fst snap.Obs.counters
    @ List.map fst snap.Obs.gauges
    @ List.map fst snap.Obs.histograms
    @ List.map fst snap.Obs.spans
  in
  let mangled = List.map P.mangle names in
  let distinct = List.sort_uniq String.compare mangled in
  check_int "no two catalog names collide after mangling"
    (List.length mangled) (List.length distinct)

let test_escape_help () =
  check_str "backslash doubled" "a\\\\b" (P.escape_help "a\\b");
  check_str "newline escaped" "line one\\nline two"
    (P.escape_help "line one\nline two");
  check_str "plain text untouched" "events fed" (P.escape_help "events fed")

let fixed_snapshot =
  {
    Obs.counters = [ ("fix.errors", 0); ("fix.lines", 12) ];
    gauges = [ ("fix.live", 7) ];
    histograms =
      [
        ( "fix.latency",
          {
            Obs.h_count = 6;
            h_sum = 91;
            h_buckets =
              [ (Some 10, 2); (Some 50, 3); (Some 100, 0); (None, 1) ];
          } );
      ];
    spans = [ ("fix.span", { Obs.s_count = 2; total_ns = 3_000_000; max_ns = 2_000_000 }) ];
  }

let rendered_lines ?help ?(timers = false) () =
  String.split_on_char '\n' (P.render ?help ~timers fixed_snapshot)

let find_sample lines key =
  List.find_map
    (fun line ->
      if String.starts_with ~prefix:(key ^ " ") line then
        Some
          (float_of_string
             (String.sub line
                (String.length key + 1)
                (String.length line - String.length key - 1)))
      else None)
    lines

let test_bucket_cumulativity () =
  let lines = rendered_lines () in
  let bucket le =
    match
      find_sample lines (Printf.sprintf "whynot_fix_latency_bucket{le=\"%s\"}" le)
    with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "bucket le=%s missing" le
  in
  (* per-bin counts 2,3,0,1 must render as running totals *)
  check_int "first bucket" 2 (bucket "10");
  check_int "second bucket accumulates" 5 (bucket "50");
  check_int "empty bin keeps the running total" 5 (bucket "100");
  check_int "+Inf bucket is the grand total" 6 (bucket "+Inf");
  check_int "+Inf equals _count" 6
    (match find_sample lines "whynot_fix_latency_count" with
    | Some v -> int_of_float v
    | None -> Alcotest.fail "_count missing");
  check_int "_sum preserved" 91
    (match find_sample lines "whynot_fix_latency_sum" with
    | Some v -> int_of_float v
    | None -> Alcotest.fail "_sum missing")

let test_help_and_type_lines () =
  let help name =
    if String.equal name "fix.lines" then Some "lines ingested\nso far"
    else None
  in
  let text = P.render ~help ~timers:false fixed_snapshot in
  check_bool "custom HELP escaped inline" true
    (List.mem "# HELP whynot_fix_lines lines ingested\\nso far"
       (String.split_on_char '\n' text));
  check_bool "default HELP is the dotted source name" true
    (List.mem "# HELP whynot_fix_live fix.live" (String.split_on_char '\n' text));
  check_bool "counter TYPE line" true
    (List.mem "# TYPE whynot_fix_lines counter" (String.split_on_char '\n' text));
  check_bool "histogram TYPE line" true
    (List.mem "# TYPE whynot_fix_latency histogram"
       (String.split_on_char '\n' text))

let test_timers_toggle () =
  let without = P.render ~timers:false fixed_snapshot in
  let with_ = P.render fixed_snapshot in
  check_bool "span summary omitted without timers" false
    (List.exists
       (fun l -> String.starts_with ~prefix:"whynot_fix_span_seconds" l)
       (String.split_on_char '\n' without));
  let lines = String.split_on_char '\n' with_ in
  check_bool "span count surfaces" true
    (match find_sample lines "whynot_fix_span_seconds_count" with
    | Some v -> int_of_float v = 2
    | None -> false);
  check_bool "span sum in seconds" true
    (match find_sample lines "whynot_fix_span_seconds_sum" with
    | Some v -> Float.abs (v -. 0.003) < 1e-9
    | None -> false);
  check_bool "max gauge in seconds" true
    (match find_sample lines "whynot_fix_span_max_seconds" with
    | Some v -> Float.abs (v -. 0.002) < 1e-9
    | None -> false)

let test_parse_values_round_trip () =
  let text = P.render fixed_snapshot in
  match P.parse_values text with
  | Error msg -> Alcotest.failf "rendered exposition did not parse: %s" msg
  | Ok samples ->
      let find key =
        List.find_map
          (fun (k, v) -> if String.equal k key then Some v else None)
          samples
      in
      check_bool "counter sample" true
        (find "whynot_fix_lines" = Some 12.0);
      check_bool "labelled bucket keyed verbatim" true
        (find "whynot_fix_latency_bucket{le=\"50\"}" = Some 5.0);
      check_bool "zero-valued counter still sampled" true
        (find "whynot_fix_errors" = Some 0.0);
      check_bool "malformed line rejected" true
        (match P.parse_values "whynot_good 1\nnot-a-sample\n" with
        | Error _ -> true
        | Ok _ -> false);
      check_bool "comments and blanks skipped" true
        (match P.parse_values "# HELP x y\n\nwhynot_x 4\n" with
        | Ok [ ("whynot_x", 4.0) ] -> true
        | _ -> false)

let test_help_of_markdown () =
  let docs =
    "### Serving\n\n\
     | metric | kind | meaning |\n\
     |---|---|---|\n\
     | `serve.requests` | counter | HTTP requests accepted |\n\
     | `serve.errors` | counter | responses with status >= 400 |\n"
  in
  check_bool "meaning column extracted" true
    (P.help_of_markdown docs "serve.requests"
    = Some "HTTP requests accepted");
  check_bool "second row reachable" true
    (P.help_of_markdown docs "serve.errors"
    = Some "responses with status >= 400");
  check_bool "unknown name is None" true
    (P.help_of_markdown docs "serve.nosuch" = None);
  check_bool "separator row never matches" true
    (P.help_of_markdown docs "---" = None)

(* The golden file pins the full exposition byte-for-byte for the fixed
   snapshot above (timers off). Regenerate deliberately after a format
   change, from the repo root:
     PROM_GOLDEN_REGEN=1 dune exec test/main.exe -- test prom *)
let test_golden () =
  let candidates =
    [ "prom_golden.txt"; "test/prom_golden.txt"; "../test/prom_golden.txt" ]
  in
  let rendered = P.render ~timers:false fixed_snapshot in
  match Sys.getenv_opt "PROM_GOLDEN_REGEN" with
  | Some _ ->
      let path =
        Option.value ~default:"test/prom_golden.txt"
          (List.find_opt Sys.file_exists candidates)
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc rendered)
  | None ->
      let golden_path =
        match List.find_opt Sys.file_exists candidates with
        | Some p -> p
        | None -> Alcotest.fail "prom_golden.txt not found"
      in
      let golden =
        In_channel.with_open_text golden_path In_channel.input_all
      in
      check_str "exposition matches the golden file byte-for-byte" golden
        rendered

let suite =
  ( "prom",
    [
      Alcotest.test_case "mangle basics" `Quick test_mangle;
      Alcotest.test_case "mangle injective on catalog" `Quick
        test_mangle_injective_on_catalog;
      Alcotest.test_case "HELP escaping" `Quick test_escape_help;
      Alcotest.test_case "bucket cumulativity and +Inf" `Quick
        test_bucket_cumulativity;
      Alcotest.test_case "HELP/TYPE lines" `Quick test_help_and_type_lines;
      Alcotest.test_case "timers toggle and span units" `Quick
        test_timers_toggle;
      Alcotest.test_case "parse_values round-trip" `Quick
        test_parse_values_round_trip;
      Alcotest.test_case "help_of_markdown" `Quick test_help_of_markdown;
      Alcotest.test_case "golden exposition" `Quick test_golden;
    ] )
