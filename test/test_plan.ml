open Whynot
module Detector = Cep.Detector
module Plan = Cep.Plan
module Compile = Cep.Compile
module Tuple = Events.Tuple

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Pattern.Parse.pattern_exn
let inst event timestamp tag = { Detector.event; timestamp; tag }

(* --- the compiled plan itself --- *)

let test_plan_shape () =
  let plan = Compile.plan [ p "SEQ(A, B) WITHIN 10" ] in
  check_bool "matrices materialized" true (Plan.matrix_count plan > 0);
  check_bool "no fallback when under the cap" true (plan.Plan.fallback = None);
  let fired = ref 0 in
  let forced =
    Compile.plan ~max_matrices:0
      ~on_fallback:(fun () -> incr fired)
      [ p "SEQ(A, B) WITHIN 10" ]
  in
  check_int "no matrices when forced over the cap" 0 (Plan.matrix_count forced);
  (match forced.Plan.fallback with
  | Some check ->
      check_bool "fallback accepts a feasible prefix" true
        (check (Tuple.of_list [ ("A", 0) ]));
      check_bool "fallback callback fired" true (!fired > 0)
  | None -> Alcotest.fail "expected a fallback closure");
  (* targets_of is shared with the naive engine: base event plus aliases *)
  let required = Pattern.Ast.events_of_set [ p "SEQ(A, REPEAT(B, 2)) WITHIN 9" ] in
  check_int "repeat aliases are targets of their base" 2
    (List.length (Compile.targets_of required "B"));
  check_int "plain event targets itself" 1
    (List.length (Compile.targets_of required "A"));
  check_int "unknown type has no targets" 0
    (List.length (Compile.targets_of required "Z"))

let test_engine_accessor () =
  let d = Detector.create [ p "SEQ(A, B) WITHIN 10" ] in
  check_bool "compiled is the default engine" true
    (Detector.engine d = Detector.Compiled);
  let dn = Detector.create ~engine:Detector.Naive [ p "SEQ(A, B) WITHIN 10" ] in
  check_bool "naive on request" true (Detector.engine dn = Detector.Naive)

(* --- differential fuzzing: the compiled engine against the naive oracle ---

   Random query sets and random streams (with irrelevant types, repeated
   timestamps, tight horizons and tiny capacities to force evictions);
   matches must be identical feed by feed — same tuples, same tags, same
   order — and every buffer counter must agree. *)

let query_set_gen st =
  let w lo span = lo + Random.State.int st span in
  match Random.State.int st 8 with
  | 0 -> [ Printf.sprintf "SEQ(A, B) WITHIN %d" (w 3 25) ]
  | 1 -> [ Printf.sprintf "SEQ(A, B, C) WITHIN %d" (w 5 35) ]
  | 2 -> [ Printf.sprintf "AND(A, B) WITHIN %d" (w 3 25) ]
  | 3 ->
      [
        Printf.sprintf "SEQ(AND(A, B) WITHIN %d, C) WITHIN %d" (w 2 10)
          (w 8 30);
      ]
  | 4 -> [ Printf.sprintf "SEQ(A, REPEAT(B, 2)) WITHIN %d" (w 5 35) ]
  | 5 ->
      [
        Printf.sprintf "AND(SEQ(A, B) WITHIN %d, C) WITHIN %d" (w 2 10)
          (w 8 30);
      ]
  | 6 ->
      let a = w 0 10 in
      [ Printf.sprintf "SEQ(A, B) ATLEAST %d WITHIN %d" a (a + w 1 20) ]
  | _ ->
      [
        Printf.sprintf "SEQ(A, B) WITHIN %d" (w 3 20);
        Printf.sprintf "AND(B, C) WITHIN %d" (w 3 20);
      ]

let stream_gen st =
  let len = 5 + Random.State.int st 14 in
  let ts = ref 0 in
  List.init len (fun i ->
      ts := !ts + Random.State.int st 5;
      let event =
        List.nth [ "A"; "B"; "C"; "X" ] (Random.State.int st 4)
      in
      inst event !ts (Printf.sprintf "i%d" i))

let case_gen : (string list * Detector.instance list * int) QCheck.Gen.t =
 fun st ->
  let queries = query_set_gen st in
  let stream = stream_gen st in
  let max_partials =
    if Random.State.bool st then 1 + Random.State.int st 8 else 4096
  in
  (queries, stream, max_partials)

let case =
  QCheck.make
    ~print:(fun (queries, stream, max_partials) ->
      Printf.sprintf "%s over %d instances, max_partials=%d"
        (String.concat " ; " queries)
        (List.length stream) max_partials)
    case_gen

(* Per-feed observable state: the matches (tuples and tags, in emission
   order) and the live-buffer size. *)
let run_detector d stream =
  List.map
    (fun i ->
      let ms = Detector.feed d i in
      ( List.map
          (fun (m : Detector.match_) -> (Tuple.bindings m.tuple, m.tags))
          ms,
        Detector.partial_count d ))
    stream

let prop_differential =
  QCheck.Test.make
    ~name:"compiled engine is bit-identical to the naive oracle" ~count:300
    case
    (fun (queries, stream, max_partials) ->
      let patterns = List.map p queries in
      match Detector.create ~engine:Detector.Naive ~max_partials patterns with
      | exception Invalid_argument _ ->
          (* e.g. a randomly inconsistent combined set: both engines must
             reject it identically *)
          (match
             Detector.create ~engine:Detector.Compiled ~max_partials patterns
           with
          | exception Invalid_argument _ -> true
          | _ -> false)
      | dn ->
          let dc =
            Detector.create ~engine:Detector.Compiled ~max_partials patterns
          in
          run_detector dn stream = run_detector dc stream
          && Detector.partial_count dn = Detector.partial_count dc
          && Detector.evicted_horizon dn = Detector.evicted_horizon dc
          && Detector.dropped_capacity dn = Detector.dropped_capacity dc)

(* The same differential, driving {!Plan.step} directly with the matrix
   cap forced to zero so every feasibility test goes through the fallback
   closure (the path large binding spaces take in production). *)
let run_fallback_plan patterns ~horizon ~max_partials stream =
  let plan = Compile.plan ~max_matrices:0 patterns in
  let store = Plan.create_store ~horizon ~max_partials plan in
  let horizon_total = ref 0 and capacity_total = ref 0 in
  let per_feed =
    List.map
      (fun (i : Detector.instance) ->
        let out =
          Plan.step store ~event:i.event ~timestamp:i.timestamp ~tag:i.tag
        in
        horizon_total := !horizon_total + out.Plan.out_horizon_evicted;
        capacity_total := !capacity_total + out.Plan.out_capacity_evicted;
        let ms =
          List.filter
            (fun (t, _) -> Pattern.Matcher.matches_set t patterns)
            out.Plan.out_matches
        in
        ( List.map (fun (t, tags) -> (Tuple.bindings t, List.rev tags)) ms,
          Plan.live store ))
      stream
  in
  (per_feed, !horizon_total, !capacity_total)

let prop_fallback_differential =
  QCheck.Test.make
    ~name:"forced-fallback plan is bit-identical to the naive oracle"
    ~count:150 case
    (fun (queries, stream, max_partials) ->
      let patterns = List.map p queries in
      match Detector.create ~engine:Detector.Naive ~max_partials patterns with
      | exception Invalid_argument _ -> true
      | dn ->
          let horizon =
            (* replicate the detector's default so both sides agree *)
            List.fold_left
              (fun acc q ->
                match q with
                | Pattern.Ast.Event _ -> acc
                | Pattern.Ast.Seq (_, w) | Pattern.Ast.And (_, w) ->
                    max acc (Option.value w.Pattern.Ast.within ~default:0))
              0 patterns
          in
          let plan_run, plan_horizon, plan_capacity =
            run_fallback_plan patterns ~horizon ~max_partials stream
          in
          run_detector dn stream = plan_run
          && Detector.evicted_horizon dn = plan_horizon
          && Detector.dropped_capacity dn = plan_capacity)

(* --- capacity at scale ---

   Regression for two sized-buffer hazards: the naive engine's capacity
   truncation must not be stack-bound (its [take] recursion depth is the
   configured capacity), and the compiled store must keep up when the
   buffer holds ~10^5 partials and sheds tens of thousands (its evictions
   pop queue fronts, O(evicted), never a full-buffer rebuild). The two
   engines must agree on every counter and every match at that scale. *)

let test_large_capacity_compiled () =
  let n = 400 and cap = 100_000 in
  let d =
    Detector.create ~max_partials:cap [ p "AND(A, B, C) WITHIN 2000" ]
  in
  check_bool "compiled engine" true (Detector.engine d = Detector.Compiled);
  for i = 0 to n - 1 do
    ignore (Detector.feed d (inst "A" i (Printf.sprintf "a%d" i)))
  done;
  for i = 0 to n - 1 do
    ignore (Detector.feed d (inst "B" (n + i) (Printf.sprintf "b%d" i)))
  done;
  (* n + n singletons and n*n A+B pairs overflow the capacity *)
  check_int "buffer pinned at capacity" cap (Detector.partial_count d);
  check_bool "capacity eviction exercised" true
    (Detector.dropped_capacity d > 0);
  check_int "nothing horizon-evicted inside the window" 0
    (Detector.evicted_horizon d);
  let matches = Detector.feed d (inst "C" (2 * n) "c0") in
  check_bool "surviving pairs complete" true (List.length matches > 0)

let test_large_capacity_engines_agree () =
  let n = 90 and cap = 6_000 in
  let query = [ p "AND(A, B, C) WITHIN 2000" ] in
  let feed_all d =
    let total = ref 0 in
    for i = 0 to n - 1 do
      total :=
        !total + List.length (Detector.feed d (inst "A" i (Printf.sprintf "a%d" i)))
    done;
    for i = 0 to n - 1 do
      total :=
        !total
        + List.length (Detector.feed d (inst "B" (n + i) (Printf.sprintf "b%d" i)))
    done;
    total := !total + List.length (Detector.feed d (inst "C" (2 * n) "c0"));
    !total
  in
  let dn = Detector.create ~engine:Detector.Naive ~max_partials:cap query in
  let dc = Detector.create ~engine:Detector.Compiled ~max_partials:cap query in
  let mn = feed_all dn and mc = feed_all dc in
  check_bool "overflow actually happened" true (Detector.dropped_capacity dn > 0);
  check_int "same matches" mn mc;
  check_int "same live buffer" (Detector.partial_count dn)
    (Detector.partial_count dc);
  check_int "same capacity drops" (Detector.dropped_capacity dn)
    (Detector.dropped_capacity dc);
  check_int "same horizon evictions" (Detector.evicted_horizon dn)
    (Detector.evicted_horizon dc)

let suite =
  ( "plan",
    [
      Alcotest.test_case "plan shape and fallback" `Quick test_plan_shape;
      Alcotest.test_case "engine accessor" `Quick test_engine_accessor;
      Gen.qt prop_differential;
      Gen.qt prop_fallback_differential;
      Alcotest.test_case "compiled store at 10^5 partials" `Quick
        test_large_capacity_compiled;
      Alcotest.test_case "engines agree under capacity pressure" `Quick
        test_large_capacity_engines_agree;
    ] )
