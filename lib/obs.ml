type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bounds : int array; (* strictly increasing upper bounds *)
  buckets : int Atomic.t array; (* length bounds + 1; last = +inf *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

type span = {
  s_count : int Atomic.t;
  total_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram
  | Span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"
  | Span _ -> "span"

(* Get-or-create under the registry lock; the returned handle is then
   updated lock-free. Handles are meant to be obtained once (at module
   initialisation), so this lock is never on a hot path. *)
let register name make select =
  Mutex.lock lock;
  let metric =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry name m;
        m
  in
  Mutex.unlock lock;
  match select metric with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs: %S is already registered as a %s" name
           (kind_name metric))

let counter name =
  register name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0))
    (function Gauge g -> Some g | _ -> None)

let default_buckets =
  [| 0; 1; 2; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000 |]

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Obs.histogram: bucket bounds must be strictly increasing")
    buckets;
  register name
    (fun () ->
      Hist
        {
          bounds = Array.copy buckets;
          buckets = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
        })
    (function Hist h -> Some h | _ -> None)

let span name =
  register name
    (fun () ->
      Span { s_count = Atomic.make 0; total_ns = Atomic.make 0; max_ns = Atomic.make 0 })
    (function Span s -> Some s | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge_set g v = Atomic.set g v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let gauge_max g v = atomic_max g v
let gauge_value g = Atomic.get g

let observe h v =
  (* Bounds arrays are short (tens of cells); a linear scan beats binary
     search at this size and stays branch-predictable. *)
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  Atomic.incr h.buckets.(!i);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v)

(* Bumped by [reset]; an in-flight [with_span] that straddles a reset
   would otherwise record a pre-reset start time into a zeroed cell. *)
let generation = Atomic.make 0

let span_hist_suffix = ".duration_us"

let with_span ?hist_buckets name f =
  let s = span name in
  let h =
    match hist_buckets with
    | None -> None
    | Some buckets -> Some (histogram ~buckets (name ^ span_hist_suffix))
  in
  let g0 = Atomic.get generation in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      if Atomic.get generation = g0 then begin
        let dt = Unix.gettimeofday () -. t0 in
        let ns = int_of_float (dt *. 1e9) in
        Atomic.incr s.s_count;
        ignore (Atomic.fetch_and_add s.total_ns ns);
        atomic_max s.max_ns ns;
        match h with None -> () | Some h -> observe h (ns / 1000)
      end)
    f

let observe_span ?hist_buckets name ~ns =
  let s = span name in
  Atomic.incr s.s_count;
  ignore (Atomic.fetch_and_add s.total_ns ns);
  atomic_max s.max_ns ns;
  match hist_buckets with
  | None -> ()
  | Some buckets -> observe (histogram ~buckets (name ^ span_hist_suffix)) (ns / 1000)

let find name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt registry name in
  Mutex.unlock lock;
  r

let find_counter name =
  match find name with Some (Counter c) -> Some (Atomic.get c) | _ -> None

let find_gauge name =
  match find name with Some (Gauge g) -> Some (Atomic.get g) | _ -> None

let reset () =
  Atomic.incr generation;
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | Counter c | Gauge c -> Atomic.set c 0
      | Hist h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0
      | Span s ->
          Atomic.set s.s_count 0;
          Atomic.set s.total_ns 0;
          Atomic.set s.max_ns 0)
    registry;
  Mutex.unlock lock

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_buckets : (int option * int) list;
}

type span_snapshot = { s_count : int; total_ns : int; max_ns : int }

let hist_snapshot_of (h : histogram) =
  (* [observe] bumps a bucket cell before [h_count], so reading h_count
     here independently could lag the bucket total mid-ingest and yield
     an exposition where the +Inf cumulative exceeds [_count]. Read the
     cells once and derive the count as their sum — the Prometheus
     invariant (+Inf cumulative = _count) then holds by construction.
     [h_sum] is read first (it is written last) so the sum never covers
     an observation the buckets have not seen. *)
  let h_sum = Atomic.get h.h_sum in
  let cells = Array.map Atomic.get h.buckets in
  {
    h_count = Array.fold_left ( + ) 0 cells;
    h_sum;
    h_buckets =
      List.init (Array.length cells) (fun i ->
          ( (if i < Array.length h.bounds then Some h.bounds.(i) else None),
            cells.(i) ));
  }

let find_histogram name =
  match find name with Some (Hist h) -> Some (hist_snapshot_of h) | _ -> None

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
  spans : (string * span_snapshot) list;
}

let snapshot () =
  Mutex.lock lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock lock;
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  let section pred = List.filter_map (fun (name, m) -> Option.map (fun v -> (name, v)) (pred m)) entries in
  {
    counters = section (function Counter c -> Some (Atomic.get c) | _ -> None);
    gauges = section (function Gauge g -> Some (Atomic.get g) | _ -> None);
    histograms =
      section (function Hist h -> Some (hist_snapshot_of h) | _ -> None);
    spans =
      section (function
        | Span s ->
            Some
              {
                s_count = Atomic.get s.s_count;
                total_ns = Atomic.get s.total_ns;
                max_ns = Atomic.get s.max_ns;
              }
        | _ -> None);
  }

(* --- structured tracing ------------------------------------------------ *)

module Trace = struct
  type prune_reason = Bound | Inconsistent | Plausibility
  type evict_reason = Horizon | Capacity

  type kind =
    | Span_open of { name : string; parent : int }
    | Span_close of { name : string }
    | Bnb_node of { level : int }
    | Bnb_prune of { reason : prune_reason; gap : int }
    | Bnb_incumbent of { cost : int }
    | Bnb_zero_stop of { top : int }
    | Stn_push of { depth : int; consistent : bool }
    | Stn_pop of { depth : int }
    | Simplex_phase of { phase : int }
    | Simplex_outcome of { outcome : string }
    | Detector_admit of { live : int }
    | Detector_evict of { reason : evict_reason; count : int }
    | Detector_match of { count : int }
    | Stream_verdict of { verdict : string }
    | Mark of { label : string }

  type event = {
    ts_ns : int;
    dom : int;
    trace_id : int;
    span : int;
    kind : kind;
  }

  let prune_reason_name = function
    | Bound -> "bound"
    | Inconsistent -> "inconsistent"
    | Plausibility -> "plausibility"

  let evict_reason_name = function Horizon -> "horizon" | Capacity -> "capacity"

  let kind_name = function
    | Span_open _ -> "span.open"
    | Span_close _ -> "span.close"
    | Bnb_node _ -> "bnb.node"
    | Bnb_prune _ -> "bnb.prune"
    | Bnb_incumbent _ -> "bnb.incumbent"
    | Bnb_zero_stop _ -> "bnb.zero_stop"
    | Stn_push _ -> "stn.push"
    | Stn_pop _ -> "stn.pop"
    | Simplex_phase _ -> "simplex.phase"
    | Simplex_outcome _ -> "simplex.outcome"
    | Detector_admit _ -> "detector.admit"
    | Detector_evict _ -> "detector.evict"
    | Detector_match _ -> "detector.match"
    | Stream_verdict _ -> "stream.verdict"
    | Mark _ -> "mark"

  let kind_names =
    [
      "span.open"; "span.close"; "bnb.node"; "bnb.prune"; "bnb.incumbent";
      "bnb.zero_stop"; "stn.push"; "stn.pop"; "simplex.phase";
      "simplex.outcome"; "detector.admit"; "detector.evict"; "detector.match";
      "stream.verdict"; "mark";
    ]

  (* Shared state. The ring is claim-then-write: a writer reserves slot i
     with one fetch-and-add and fills it; a reservation past the end is a
     drop. Every slot is written by exactly one domain, so the only
     cross-domain contention is on the cursor itself. *)
  let enabled = Atomic.make false
  let sample_every = Atomic.make 1
  let ring : event option array Atomic.t = Atomic.make [||]
  let cursor = Atomic.make 0
  let dropped_n = Atomic.make 0
  let trace_seq = Atomic.make 0
  let span_seq = Atomic.make 0

  (* A per-request capture buffer: a CAS cons-list so shard worker
     domains can append concurrently with the accepting domain. Bounded;
     appends past the limit are counted, never blocked on. Unlike the
     ring, a buffer works even with global tracing disabled — tail-based
     capture must not require paying for a process-wide ring. *)
  type buffer = {
    b_items : event list Atomic.t;
    b_count : int Atomic.t;
    b_limit : int;
    b_dropped : int Atomic.t;
  }

  let default_buffer_limit = 4096

  let buffer ?(limit = default_buffer_limit) () =
    if limit < 1 then invalid_arg "Obs.Trace.buffer: limit must be >= 1";
    {
      b_items = Atomic.make [];
      b_count = Atomic.make 0;
      b_limit = limit;
      b_dropped = Atomic.make 0;
    }

  let buf_push b ev =
    let n = Atomic.fetch_and_add b.b_count 1 in
    if n >= b.b_limit then Atomic.incr b.b_dropped
    else begin
      let rec go () =
        let cur = Atomic.get b.b_items in
        if not (Atomic.compare_and_set b.b_items cur (ev :: cur)) then go ()
      in
      go ()
    end

  let buffer_events b = List.rev (Atomic.get b.b_items)
  let buffer_dropped b = Atomic.get b.b_dropped

  (* Domain-local trace context: which trace this domain is inside, the
     current span, whether the trace was sampled into the ring, and the
     request buffer (if any) capturing it. *)
  type ctx = {
    mutable depth : int; (* nesting of [with_trace] *)
    mutable c_active : bool;
    mutable c_trace : int;
    mutable c_span : int;
    mutable c_buf : buffer option;
  }

  let ctx_key =
    Domain.DLS.new_key (fun () ->
        { depth = 0; c_active = false; c_trace = 0; c_span = 0; c_buf = None })

  let ctx () = Domain.DLS.get ctx_key

  let default_capacity = 1 lsl 18

  let reset_ctx () =
    let c = ctx () in
    c.depth <- 0;
    c.c_active <- false;
    c.c_trace <- 0;
    c.c_span <- 0;
    c.c_buf <- None

  let configure ?(capacity = default_capacity) ?(sample = 1) () =
    if capacity < 1 then invalid_arg "Obs.Trace.configure: capacity must be >= 1";
    if sample < 1 then invalid_arg "Obs.Trace.configure: sample must be >= 1";
    Atomic.set enabled false;
    Atomic.set ring (Array.make capacity None);
    Atomic.set cursor 0;
    Atomic.set dropped_n 0;
    Atomic.set trace_seq 0;
    Atomic.set span_seq 0;
    Atomic.set sample_every sample;
    reset_ctx ();
    Atomic.set enabled true

  let clear () =
    let cap = Array.length (Atomic.get ring) in
    if cap > 0 then begin
      let was = Atomic.get enabled in
      configure ~capacity:cap ~sample:(Atomic.get sample_every) ();
      Atomic.set enabled was
    end

  let enable () =
    if Array.length (Atomic.get ring) = 0 then configure ()
    else Atomic.set enabled true

  let disable () = Atomic.set enabled false
  let enabled_now () = Atomic.get enabled
  let sampling () = Atomic.get sample_every
  let capacity () = Array.length (Atomic.get ring)

  (* Number of live capture scopes process-wide (with_capture plus
     adopted worker contexts). Lets the fully-disabled [should_emit]
     path stay two atomic loads with no DLS access. *)
  let captures_live = Atomic.make 0

  (* The hot-path guard: with tracing off and no capture in flight, two
     atomic loads and a branch (the common case), so instrumented sites
     allocate nothing unless this is true. *)
  let should_emit () =
    if Atomic.get enabled then begin
      let c = ctx () in
      c.c_active || (match c.c_buf with Some _ -> true | None -> false)
    end
    else if Atomic.get captures_live > 0 then
      match (ctx ()).c_buf with Some _ -> true | None -> false
    else false

  let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

  let record_at ~ts_ns ~span kind =
    let c = ctx () in
    let ev =
      { ts_ns; dom = (Domain.self () :> int); trace_id = c.c_trace; span; kind }
    in
    (match c.c_buf with Some b -> buf_push b ev | None -> ());
    if c.c_active then begin
      let b = Atomic.get ring in
      let i = Atomic.fetch_and_add cursor 1 in
      if i < Array.length b then b.(i) <- Some ev else Atomic.incr dropped_n
    end

  let record ~span kind = record_at ~ts_ns:(now_ns ()) ~span kind

  let emit kind = if should_emit () then record ~span:(ctx ()).c_span kind

  let with_span name f =
    if not (should_emit ()) then f ()
    else begin
      let c = ctx () in
      let parent = c.c_span in
      let id = 1 + Atomic.fetch_and_add span_seq 1 in
      record ~span:id (Span_open { name; parent });
      c.c_span <- id;
      Fun.protect
        ~finally:(fun () ->
          c.c_span <- parent;
          record ~span:id (Span_close { name }))
        f
    end

  let with_trace name f =
    if not (Atomic.get enabled) then f ()
    else begin
      let c = ctx () in
      if c.depth > 0 then begin
        (* Nested query scope: stay in the enclosing trace, just open a
           child span (suppressed with the rest if the trace was sampled
           out). *)
        c.depth <- c.depth + 1;
        Fun.protect
          ~finally:(fun () -> c.depth <- c.depth - 1)
          (fun () -> with_span name f)
      end
      else begin
        let n = 1 + Atomic.fetch_and_add trace_seq 1 in
        let active = (n - 1) mod Atomic.get sample_every = 0 in
        c.depth <- 1;
        c.c_active <- active;
        c.c_trace <- n;
        c.c_span <- 0;
        Fun.protect
          ~finally:(fun () ->
            c.depth <- 0;
            c.c_active <- false;
            c.c_trace <- 0;
            c.c_span <- 0)
          (fun () -> with_span name f)
      end
    end

  let span_interval name ~t0_ns ~t1_ns =
    if should_emit () then begin
      let c = ctx () in
      let parent = c.c_span in
      let id = 1 + Atomic.fetch_and_add span_seq 1 in
      record_at ~ts_ns:t0_ns ~span:id (Span_open { name; parent });
      record_at ~ts_ns:t1_ns ~span:id (Span_close { name })
    end

  let with_capture buf name f =
    let c = ctx () in
    let saved = (c.depth, c.c_active, c.c_trace, c.c_span, c.c_buf) in
    let n = 1 + Atomic.fetch_and_add trace_seq 1 in
    let ring_active =
      Atomic.get enabled && (n - 1) mod Atomic.get sample_every = 0
    in
    Atomic.incr captures_live;
    c.depth <- 1;
    c.c_active <- ring_active;
    c.c_trace <- n;
    c.c_span <- 0;
    c.c_buf <- Some buf;
    Fun.protect
      ~finally:(fun () ->
        let d, a, t, s, bf = saved in
        c.depth <- d;
        c.c_active <- a;
        c.c_trace <- t;
        c.c_span <- s;
        c.c_buf <- bf;
        Atomic.decr captures_live)
      (fun () -> with_span name f)

  type context = {
    x_active : bool;
    x_trace : int;
    x_span : int;
    x_buf : buffer option;
  }

  let context () =
    let c = ctx () in
    {
      x_active = c.c_active && Atomic.get enabled;
      x_trace = c.c_trace;
      x_span = c.c_span;
      x_buf = c.c_buf;
    }

  let context_active x =
    x.x_active || (match x.x_buf with Some _ -> true | None -> false)

  let with_context x f =
    let c = ctx () in
    let saved = (c.depth, c.c_active, c.c_trace, c.c_span, c.c_buf) in
    let adopted_buf = match x.x_buf with Some _ -> true | None -> false in
    if adopted_buf then Atomic.incr captures_live;
    c.depth <- (if x.x_trace > 0 then 1 else 0);
    c.c_active <- x.x_active;
    c.c_trace <- x.x_trace;
    c.c_span <- x.x_span;
    c.c_buf <- x.x_buf;
    Fun.protect
      ~finally:(fun () ->
        let d, a, t, s, bf = saved in
        c.depth <- d;
        c.c_active <- a;
        c.c_trace <- t;
        c.c_span <- s;
        c.c_buf <- bf;
        if adopted_buf then Atomic.decr captures_live)
      f

  let emitted () = Atomic.get cursor
  let dropped () = Atomic.get dropped_n
  let recorded () = min (Atomic.get cursor) (Array.length (Atomic.get ring))

  let events () =
    let b = Atomic.get ring in
    let n = min (Atomic.get cursor) (Array.length b) in
    List.filter_map (fun i -> b.(i)) (List.init n Fun.id)
end

(* --- leveled structured logging ---------------------------------------- *)

module Log = struct
  type level = Error | Warn | Info | Debug

  let level_name = function
    | Error -> "error"
    | Warn -> "warn"
    | Info -> "info"
    | Debug -> "debug"

  let level_of_string = function
    | "error" -> Some Error
    | "warn" | "warning" -> Some Warn
    | "info" -> Some Info
    | "debug" -> Some Debug
    | _ -> None

  let rank = function Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

  (* 0 = logging disabled; otherwise the rank of the most verbose level
     still emitted. An atomic so worker domains see level changes and the
     disabled-path check is one atomic load. *)
  let current = Atomic.make 0

  let set_level = function
    | None -> Atomic.set current 0
    | Some l -> Atomic.set current (rank l)

  let level () =
    match Atomic.get current with
    | 1 -> Some Error
    | 2 -> Some Warn
    | 3 -> Some Info
    | 4 -> Some Debug
    | _ -> None

  let enabled l = rank l <= Atomic.get current

  type value = Str of string | Num of int | Flt of float | Bool of bool

  (* The output hook. {!Report.Sink.log} presents this channel alongside
     the report sink (it delegates here — Obs cannot depend on Report
     without a module cycle). Held in an Atomic so worker domains see
     redirections. *)
  let default_sink s =
    output_string stderr s;
    flush stderr

  let sink : (string -> unit) Atomic.t = Atomic.make default_sink
  let write s = (Atomic.get sink) s
  let set_sink f = Atomic.set sink f
  let reset_sink () = Atomic.set sink default_sink

  let lines_c = counter "log.lines"

  let add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let add_value b = function
    | Str s ->
        Buffer.add_char b '"';
        add_escaped b s;
        Buffer.add_char b '"'
    | Num n -> Buffer.add_string b (string_of_int n)
    | Flt f ->
        if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
        else Buffer.add_string b "null"
    | Bool bo -> Buffer.add_string b (if bo then "true" else "false")

  let emit lvl event fields =
    if enabled lvl then begin
      incr lines_c;
      let b = Buffer.create 128 in
      Buffer.add_string b "{\"ts_ms\":";
      Buffer.add_string b
        (string_of_int (int_of_float (Unix.gettimeofday () *. 1e3)));
      Buffer.add_string b ",\"level\":\"";
      Buffer.add_string b (level_name lvl);
      Buffer.add_string b "\",\"event\":\"";
      add_escaped b event;
      Buffer.add_char b '"';
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ",\"";
          add_escaped b k;
          Buffer.add_string b "\":";
          add_value b v)
        fields;
      Buffer.add_string b "}\n";
      write (Buffer.contents b)
    end

  (* The event-type catalog the engine itself emits — like
     {!Trace.kind_names}, every member must be documented in
     docs/OBSERVABILITY.md (enforced by @metrics-lint and whynot-check's
     metrics-doc rule). *)
  let event_names =
    [
      "serve.start"; "serve.stop"; "serve.request"; "serve.error";
      "serve.access"; "ingest.error"; "detector.match"; "detector.evict";
      "detector.pressure";
    ]
end

(* --- runtime-events GC pause profiling ---------------------------------- *)

module Rt_events = struct
  (* Consumes the OCaml 5 [Runtime_events] ring in self-monitoring mode:
     a poller domain decodes GC phase begin/end pairs into per-domain
     pause histograms and a bounded per-domain ring of recent pause
     intervals, so the request path can answer "was it the GC?" for
     every slow request.

     Locking: all mutable decoder state lives under the single [rt_lock]
     (class obs.rt_lock, pinned in the global lock order); every metric
     handle is obtained at module initialisation, so nothing running
     under [rt_lock] ever touches the registry [lock]. Cursor access is
     serialized by a lock-free CAS flag rather than a second mutex —
     [read_poll] runs outside every lock, and only the per-event decode
     callbacks it invokes take [rt_lock]. *)

  (* Microsecond pause buckets: the serving stack's request-stage latency
     buckets (Serve.Http.latency_buckets), duplicated literally because
     Obs cannot depend on Serve; registering the same bounds twice is a
     get-or-create no-op, so sharing stays safe either way. *)
  let pause_buckets =
    [|
      50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000; 100000;
      250000; 1000000;
    |]

  let pause_h = histogram ~buckets:pause_buckets "runtime.gc.pause.duration_us"
  let minor_c = counter "runtime.gc.pause.minor"
  let major_c = counter "runtime.gc.pause.major"
  let compact_c = counter "runtime.gc.pause.compact"
  let dropped_c = counter "runtime.events.dropped"
  let lost_c = counter "runtime.events.lost"

  (* Per-domain max-pause gauges are registered up front for a fixed
     domain range: gauge cardinality must not scale with whatever ring
     indices the runtime hands out. Pauses on higher ring domains still
     feed the shared histogram, the split counters and the /debug/gc
     summaries. *)
  let max_gauge_domains = 8

  let max_pause_g =
    Array.init max_gauge_domains (fun d ->
        gauge (Printf.sprintf "runtime.dom.%d.gc.max_pause_us" d))

  type pause_class = Minor | Major | Compact

  let pause_class_name = function
    | Minor -> "minor"
    | Major -> "major"
    | Compact -> "compact"

  (* One recorded stop-the-world interval. Exposed timestamps are
     wall-clock nanoseconds; the ring stores the runtime's monotonic
     clock and converts at read time through [offset_ns]. *)
  type pause = { p_class : pause_class; p_start_ns : int; p_end_ns : int }

  type dom_state = {
    (* open classified phases, innermost first: (class, mono-ns begin) *)
    mutable ds_stack : (pause_class * int) list;
    ds_ring : pause option array;
    (* monotone write cursor; slot = cursor mod capacity, so
       [cursor - capacity] (when positive) is exactly the evicted count *)
    mutable ds_cursor : int;
    mutable ds_minor : int;
    mutable ds_major : int;
    mutable ds_compact : int;
    mutable ds_max_us : int;
  }

  type state = {
    doms : (int, dom_state) Hashtbl.t;
    (* wall minus mono, ns; set once per [start] by the calibration pause *)
    mutable offset_ns : int option;
    (* wall-clock anchor awaiting its first classified begin event *)
    mutable calib_wall : int option;
    mutable ring_cap : int;
  }

  let rt_lock = Mutex.create ()
  let default_ring_capacity = 256

  let st =
    {
      doms = Hashtbl.create 8;
      offset_ns = None;
      calib_wall = None;
      ring_cap = default_ring_capacity;
    }

  (* Mirrors [st.offset_ns <> None] so the request path can skip the
     pause query (and its lock) entirely until a pause source exists. *)
  let calibrated = Atomic.make false

  type lifecycle = {
    mutable lc_poller : unit Domain.t option;
    mutable lc_cursor : Runtime_events.cursor option;
    mutable lc_rt_started : bool;
  }

  let lc = { lc_poller = None; lc_cursor = None; lc_rt_started = false }
  let running_a = Atomic.make false
  let stop_flag = Atomic.make false

  (* serializes cursor access between the poller, [poll_now] and [stop] *)
  let polling = Atomic.make false
  let running () = Atomic.get running_a
  let active () = Atomic.get running_a || Atomic.get calibrated

  (* The phases that begin/end a stop-the-world pause as observed by the
     mutator. Sub-phases (mark/sweep slices, root scans, ...) nest inside
     these and are ignored — one pause, one interval. *)
  let classify = function
    | Runtime_events.EV_MINOR | Runtime_events.EV_EXPLICIT_GC_MINOR ->
        Some Minor
    | Runtime_events.EV_MAJOR | Runtime_events.EV_MAJOR_SLICE
    | Runtime_events.EV_EXPLICIT_GC_MAJOR
    | Runtime_events.EV_EXPLICIT_GC_FULL_MAJOR
    | Runtime_events.EV_EXPLICIT_GC_MAJOR_SLICE ->
        Some Major
    | Runtime_events.EV_EXPLICIT_GC_COMPACT -> Some Compact
    | _ -> None

  let new_dom_state () =
    {
      ds_stack = [];
      ds_ring = Array.make st.ring_cap None;
      ds_cursor = 0;
      ds_minor = 0;
      ds_major = 0;
      ds_compact = 0;
      ds_max_us = 0;
    }

  (* Record one completed pause. Must run with [rt_lock] held (callers
     below); the metric cells themselves are atomics. *)
  let record_pause_locked ds ~dom ~cls ~t0 ~t1 =
    let dur_ns = t1 - t0 in
    if dur_ns >= 0 then begin
      let us = dur_ns / 1000 in
      observe pause_h us;
      (match cls with
      | Minor ->
          ds.ds_minor <- ds.ds_minor + 1;
          incr minor_c
      | Major ->
          ds.ds_major <- ds.ds_major + 1;
          incr major_c
      | Compact ->
          ds.ds_compact <- ds.ds_compact + 1;
          incr compact_c);
      if us > ds.ds_max_us then ds.ds_max_us <- us;
      if dom >= 0 && dom < max_gauge_domains then
        gauge_max max_pause_g.(dom) us;
      let cap = Array.length ds.ds_ring in
      if ds.ds_cursor >= cap then incr dropped_c;
      ds.ds_ring.(ds.ds_cursor mod cap) <-
        Some { p_class = cls; p_start_ns = t0; p_end_ns = t1 };
      ds.ds_cursor <- ds.ds_cursor + 1
    end

  let on_begin ring_dom ts phase =
    match classify phase with
    | None -> ()
    | Some cls ->
        let mono = Int64.to_int (Runtime_events.Timestamp.to_int64 ts) in
        Mutex.lock rt_lock;
        (match st.calib_wall with
        | Some wall ->
            (* first classified begin after [start] planted the anchor:
               it is (or immediately follows) the explicit minor
               collection just forced, so its monotonic timestamp
               corresponds to the anchored wall clock *)
            st.offset_ns <- Some (wall - mono);
            Atomic.set calibrated true;
            st.calib_wall <- None
        | None -> ());
        let ds =
          match Hashtbl.find_opt st.doms ring_dom with
          | Some ds -> ds
          | None ->
              let ds = new_dom_state () in
              Hashtbl.add st.doms ring_dom ds;
              ds
        in
        ds.ds_stack <- (cls, mono) :: ds.ds_stack;
        Mutex.unlock rt_lock

  let on_end ring_dom ts phase =
    match classify phase with
    | None -> ()
    | Some _ ->
        let mono = Int64.to_int (Runtime_events.Timestamp.to_int64 ts) in
        Mutex.lock rt_lock;
        (match Hashtbl.find_opt st.doms ring_dom with
        | None -> ()
        | Some ds -> (
            (* pop the innermost open phase; a pause interval is recorded
               only when the stack empties, classed by the outermost
               phase — nested phases (a minor collection inside a major
               slice) count as one pause, never two *)
            match ds.ds_stack with
            | [] -> () (* end without a begin: the cursor opened mid-phase *)
            | [ (outer_cls, t0) ] ->
                ds.ds_stack <- [];
                record_pause_locked ds ~dom:ring_dom ~cls:outer_cls ~t0
                  ~t1:mono
            | _ :: rest -> ds.ds_stack <- rest));
        Mutex.unlock rt_lock

  let on_lost _ring_dom n = add lost_c n

  let callbacks =
    Runtime_events.Callbacks.create ~runtime_begin:on_begin
      ~runtime_end:on_end ~lost_events:on_lost ()

  (* Drain the runtime ring through the decode callbacks. Returns the
     number of events consumed; 0 when another thread holds the polling
     slot or no cursor is open. Runs outside every lock — only the
     per-event callbacks take [rt_lock]. *)
  let poll_now () =
    if Atomic.compare_and_set polling false true then
      Fun.protect
        ~finally:(fun () -> Atomic.set polling false)
        (fun () ->
          match lc.lc_cursor with
          | None -> 0
          | Some cursor -> Runtime_events.read_poll cursor callbacks None)
    else 0

  let default_interval_s = 0.002

  let rec poll_loop interval_s =
    if not (Atomic.get stop_flag) then begin
      ignore (poll_now ());
      Unix.sleepf interval_s;
      poll_loop interval_s
    end

  let start ?(interval_s = default_interval_s)
      ?(ring_capacity = default_ring_capacity) () =
    if interval_s <= 0.0 then
      invalid_arg "Obs.Rt_events.start: interval_s must be > 0";
    if ring_capacity < 1 then
      invalid_arg "Obs.Rt_events.start: ring_capacity must be >= 1";
    if not (Atomic.get running_a) then begin
      if lc.lc_rt_started then Runtime_events.resume ()
      else begin
        Runtime_events.start ();
        lc.lc_rt_started <- true
      end;
      Mutex.lock rt_lock;
      Hashtbl.reset st.doms;
      st.offset_ns <- None;
      st.calib_wall <- None;
      st.ring_cap <- ring_capacity;
      Mutex.unlock rt_lock;
      Atomic.set calibrated false;
      lc.lc_cursor <- Some (Runtime_events.create_cursor None);
      Atomic.set stop_flag false;
      (* drain whatever predates this start so the calibration anchor
         below pairs with a fresh pause, not a stale ring entry *)
      ignore (poll_now ());
      let w0 = Trace.now_ns () in
      Gc.minor ();
      let w1 = Trace.now_ns () in
      Mutex.lock rt_lock;
      (* discard drain-decoded state (its wall anchor is unknown), plant
         the anchor, and decode the forced minor collection: its begin
         event calibrates the monotonic clock against the wall clock *)
      Hashtbl.reset st.doms;
      st.offset_ns <- None;
      st.calib_wall <- Some (w0 + ((w1 - w0) / 2));
      Mutex.unlock rt_lock;
      ignore (poll_now ());
      lc.lc_poller <- Some (Domain.spawn (fun () -> poll_loop interval_s));
      Atomic.set running_a true
    end

  let stop () =
    if Atomic.get running_a then begin
      Atomic.set stop_flag true;
      (match lc.lc_poller with
      | Some d ->
          Domain.join d;
          lc.lc_poller <- None
      | None -> ());
      (* final drain, then pause the runtime stream and release the
         cursor — holding the polling slot so no concurrent [poll_now]
         can touch the freed cursor *)
      ignore (poll_now ());
      Runtime_events.pause ();
      let rec acquire () =
        if not (Atomic.compare_and_set polling false true) then acquire ()
      in
      acquire ();
      (match lc.lc_cursor with
      | Some cursor ->
          lc.lc_cursor <- None;
          Runtime_events.free_cursor cursor
      | None -> ());
      Atomic.set polling false;
      Atomic.set running_a false
    end

  (* mono -> wall conversion for one ring entry; unknown until calibrated *)
  let wall_of_locked p =
    match st.offset_ns with
    | None -> None
    | Some off ->
        Some
          {
            p_class = p.p_class;
            p_start_ns = p.p_start_ns + off;
            p_end_ns = p.p_end_ns + off;
          }

  (* ring entries oldest first, converted to wall clock *)
  let ring_entries_locked ds =
    let cap = Array.length ds.ds_ring in
    let n = min ds.ds_cursor cap in
    let first = ds.ds_cursor - n in
    List.filter_map
      (fun k ->
        match ds.ds_ring.((first + k) mod cap) with
        | Some p -> wall_of_locked p
        | None -> None)
      (List.init n Fun.id)

  type dom_summary = {
    d_dom : int;
    d_pauses : int;
    d_minor : int;
    d_major : int;
    d_compact : int;
    d_max_pause_us : int;
    d_dropped : int;
    d_recent : pause list; (* oldest first, wall-clock ns *)
  }

  let summaries () =
    Mutex.lock rt_lock;
    let out =
      Hashtbl.fold
        (fun dom ds acc ->
          {
            d_dom = dom;
            d_pauses = ds.ds_cursor;
            d_minor = ds.ds_minor;
            d_major = ds.ds_major;
            d_compact = ds.ds_compact;
            d_max_pause_us = ds.ds_max_us;
            d_dropped = max 0 (ds.ds_cursor - Array.length ds.ds_ring);
            d_recent = ring_entries_locked ds;
          }
          :: acc)
        st.doms []
    in
    Mutex.unlock rt_lock;
    List.sort (fun a b -> Int.compare a.d_dom b.d_dom) out

  (* All recorded pauses (any domain) intersecting [t0_ns, t1_ns],
     wall-clock, clipped to the window, sorted and merged: overlapping
     per-domain pauses collapse, so the result is a disjoint interval
     list — summing overlaps against it never double-counts concurrent
     multi-domain collections. *)
  let pauses_between ~t0_ns ~t1_ns () =
    Mutex.lock rt_lock;
    let raw =
      Hashtbl.fold
        (fun _ ds acc -> List.rev_append (ring_entries_locked ds) acc)
        st.doms []
    in
    Mutex.unlock rt_lock;
    let clipped =
      List.filter_map
        (fun p ->
          let s = max p.p_start_ns t0_ns and e = min p.p_end_ns t1_ns in
          if s < e then Some (s, e) else None)
        raw
      |> List.sort (fun (sa, _) (sb, _) -> Int.compare sa sb)
    in
    let rec merge = function
      | (s0, e0) :: (s1, e1) :: rest when s1 <= e0 ->
          merge ((s0, max e0 e1) :: rest)
      | iv :: rest -> iv :: merge rest
      | [] -> []
    in
    merge clipped

  (* Microseconds of [intervals] (disjoint, as returned by
     [pauses_between]) falling inside [t0_ns, t1_ns]. *)
  let overlap_us intervals ~t0_ns ~t1_ns =
    List.fold_left
      (fun acc (s, e) ->
        let s = max s t0_ns and e = min e t1_ns in
        if s < e then acc + (e - s) else acc)
      0 intervals
    / 1000

  (* Test hook: push a synthetic pause through the real recording path
     (ring eviction, split counters, histogram, gauges). Wall-clock
     nanosecond interval; pins the mono->wall offset to 0 when no real
     calibration has happened, so injected and queried times agree. *)
  let inject_for_test ~dom ~cls ~t0_ns ~t1_ns =
    Mutex.lock rt_lock;
    let off =
      match st.offset_ns with
      | Some off -> off
      | None ->
          st.offset_ns <- Some 0;
          Atomic.set calibrated true;
          0
    in
    let ds =
      match Hashtbl.find_opt st.doms dom with
      | Some ds -> ds
      | None ->
          let ds = new_dom_state () in
          Hashtbl.add st.doms dom ds;
          ds
    in
    record_pause_locked ds ~dom ~cls ~t0:(t0_ns - off) ~t1:(t1_ns - off);
    Mutex.unlock rt_lock

  (* Test hook: forget decoded pauses and the calibration (the metric
     cells are cumulative and stay). *)
  let reset_for_test ?ring_capacity () =
    Mutex.lock rt_lock;
    Hashtbl.reset st.doms;
    st.offset_ns <- None;
    st.calib_wall <- None;
    (match ring_capacity with
    | Some c when c >= 1 -> st.ring_cap <- c
    | Some _ | None -> ());
    Mutex.unlock rt_lock;
    Atomic.set calibrated false
end

(* --- per-request scopes: ids, latency decomposition, tail capture ------ *)

module Request = struct
  (* Request ids must be unique across a run and cheap to mint: a boot
     token (pid + start-of-process milliseconds) plus a dense per-process
     sequence number. The token keeps ids from colliding across restarts
     when client logs are joined against server traces. *)
  let boot_token =
    Printf.sprintf "%x-%x" (Unix.getpid ())
      (int_of_float (Unix.gettimeofday () *. 1e3) land 0xffffffff)

  let req_seq = Atomic.make 0

  (* Tail capture is off by default so embedding the library costs
     nothing; `whynot serve` turns it on. *)
  let capture_on = Atomic.make false
  let threshold_us_a = Atomic.make 100_000
  let default_capacity = 64

  type info = {
    r_id : string;
    r_meth : string;
    r_path : string;
    r_status : int;
    r_bytes_in : int;
    r_bytes_out : int;
    r_shed : bool;
    r_keep_alive : bool;
    r_start_ms : int;
    r_queue_wait_us : int;
    r_read_us : int;
    r_service_us : int;
    r_write_us : int;
    r_total_us : int;
    (* shard indices this request's ingest lines were routed to,
       ascending *)
    r_shards : int list;
    (* merged GC pause intervals (wall-clock ns) intersecting the
       request window, captured at completion so span overlaps stay
       computable (and deterministic) after retention *)
    r_gc_pauses : (int * int) list;
    r_gc_overlap_us : int;
    r_gc_queue_wait_us : int;
    r_gc_read_us : int;
    r_gc_service_us : int;
    r_gc_write_us : int;
    r_events : Trace.event list;
    r_events_dropped : int;
  }

  (* Retained slow/shed/error requests: a small Mutex-guarded ring —
     retention happens at most once per request, never on a hot path. *)
  let ring_lock = Mutex.create ()

  let retained_ring : info option array ref =
    ref (Array.make default_capacity None)

  let retained_cursor = ref 0
  let retained_c = counter "serve.slow.retained"

  (* Level the per-request access-log line is emitted at; [None]
     silences access logging independently of the global log level. *)
  let access_level_a : Log.level option Atomic.t = Atomic.make (Some Log.Info)

  let set_access_level l = Atomic.set access_level_a l
  let access_level () = Atomic.get access_level_a

  let configure ?threshold_us ?capacity () =
    (match threshold_us with
    | Some t when t < 0 ->
        invalid_arg "Obs.Request.configure: threshold_us must be >= 0"
    | Some t -> Atomic.set threshold_us_a t
    | None -> ());
    match capacity with
    | Some c when c <= 0 -> Atomic.set capture_on false
    | Some c ->
        Mutex.lock ring_lock;
        retained_ring := Array.make c None;
        retained_cursor := 0;
        Mutex.unlock ring_lock;
        Atomic.set capture_on true
    | None -> Atomic.set capture_on true

  let disable () = Atomic.set capture_on false
  let capture_enabled () = Atomic.get capture_on
  let threshold_us () = Atomic.get threshold_us_a

  let capacity () =
    Mutex.lock ring_lock;
    let n = Array.length !retained_ring in
    Mutex.unlock ring_lock;
    n

  type scope = {
    sc_id : string;
    sc_start : float;
    sc_buf : Trace.buffer option;
    mutable sc_meth : string;
    mutable sc_path : string;
    mutable sc_status : int;
    mutable sc_bytes_in : int;
    mutable sc_bytes_out : int;
    mutable sc_keep_alive : bool;
    mutable sc_queue_wait_ns : int;
    mutable sc_read_ns : int;
    mutable sc_service_ns : int;
    mutable sc_write_ns : int;
    mutable sc_shards : int list;
    mutable sc_abandoned : bool;
  }

  let id sc = sc.sc_id
  let set_route sc ~meth ~path =
    sc.sc_meth <- meth;
    sc.sc_path <- path
  let set_status sc st = sc.sc_status <- st
  let set_bytes_in sc n = sc.sc_bytes_in <- n
  let set_bytes_out sc n = sc.sc_bytes_out <- n
  let set_keep_alive sc b = sc.sc_keep_alive <- b
  let set_queue_wait sc ns = sc.sc_queue_wait_ns <- ns
  let set_read sc ns = sc.sc_read_ns <- ns
  let set_service sc ns = sc.sc_service_ns <- ns
  let set_write sc ns = sc.sc_write_ns <- ns
  let abandon sc = sc.sc_abandoned <- true

  (* The accepting domain's current scope, so verdict renderers deep
     inside [Service] can stamp the request id — and ingest routing can
     note shard indices — without threading the scope through every
     call. Worker domains see [None] — they report through the scope's
     capture buffer instead. *)
  let scope_key : scope option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let current_id () =
    match Domain.DLS.get scope_key with
    | Some sc -> Some sc.sc_id
    | None -> None

  (* Shard visibility: [Service.ingest_body] notes the shard index each
     batch line was routed to. Single-writer — only the accepting domain
     (the scope owner) calls this. *)
  let note_shard k =
    match Domain.DLS.get scope_key with
    | None -> ()
    | Some sc ->
        if not (List.exists (fun s -> Int.equal s k) sc.sc_shards) then
          sc.sc_shards <- k :: sc.sc_shards

  let retain info =
    Mutex.lock ring_lock;
    let a = !retained_ring in
    let n = Array.length a in
    if n > 0 then begin
      a.(!retained_cursor) <- Some info;
      retained_cursor := (!retained_cursor + 1) mod n
    end;
    Mutex.unlock ring_lock;
    incr retained_c

  let retained () =
    Mutex.lock ring_lock;
    let a = !retained_ring in
    let n = Array.length a in
    let cur = !retained_cursor in
    let out = ref [] in
    for k = 0 to n - 1 do
      (* oldest-to-newest scan, consed so the result is newest first *)
      match a.((cur + k) mod n) with
      | Some i -> out := i :: !out
      | None -> ()
    done;
    Mutex.unlock ring_lock;
    !out

  let clear_retained () =
    Mutex.lock ring_lock;
    Array.fill !retained_ring 0 (Array.length !retained_ring) None;
    retained_cursor := 0;
    Mutex.unlock ring_lock

  let us_of_ns ns = ns / 1000

  (* GC overlap histogram on the shared microsecond pause buckets; the
     handle is registered at module initialisation like every other. *)
  let gc_overlap_h =
    histogram ~buckets:Rt_events.pause_buckets "serve.request.gc_overlap_us"

  let info_of sc =
    (* Reconstruct the request's stage intervals on the wall clock:
       [sc_start] is taken right as the connection turn begins, so the
       queue wait lies just before it and read/service/write follow in
       order. Overlapping the recorded GC pauses against these intervals
       attributes each pause to the stage it actually stalled. *)
    let b_ns = int_of_float (sc.sc_start *. 1e9) in
    let w0 = b_ns - sc.sc_queue_wait_ns in
    let read_end = b_ns + sc.sc_read_ns in
    let service_end = read_end + sc.sc_service_ns in
    let w1 = service_end + sc.sc_write_ns in
    let pauses =
      if Rt_events.active () then
        Rt_events.pauses_between ~t0_ns:w0 ~t1_ns:w1 ()
      else []
    in
    let ov t0 t1 = Rt_events.overlap_us pauses ~t0_ns:t0 ~t1_ns:t1 in
    {
      r_id = sc.sc_id;
      r_meth = sc.sc_meth;
      r_path = sc.sc_path;
      r_status = sc.sc_status;
      r_bytes_in = sc.sc_bytes_in;
      r_bytes_out = sc.sc_bytes_out;
      r_shed = sc.sc_status = 429;
      r_keep_alive = sc.sc_keep_alive;
      r_start_ms = int_of_float (sc.sc_start *. 1e3);
      r_queue_wait_us = us_of_ns sc.sc_queue_wait_ns;
      r_read_us = us_of_ns sc.sc_read_ns;
      r_service_us = us_of_ns sc.sc_service_ns;
      r_write_us = us_of_ns sc.sc_write_ns;
      r_total_us =
        int_of_float ((Unix.gettimeofday () -. sc.sc_start) *. 1e6);
      r_shards = List.sort Int.compare sc.sc_shards;
      r_gc_pauses = pauses;
      r_gc_overlap_us = ov w0 w1;
      r_gc_queue_wait_us = ov w0 b_ns;
      r_gc_read_us = ov b_ns read_end;
      r_gc_service_us = ov read_end service_end;
      r_gc_write_us = ov service_end w1;
      r_events =
        (match sc.sc_buf with Some b -> Trace.buffer_events b | None -> []);
      r_events_dropped =
        (match sc.sc_buf with Some b -> Trace.buffer_dropped b | None -> 0);
    }

  let finalize sc =
    if not sc.sc_abandoned then begin
      let info = info_of sc in
      (match Atomic.get access_level_a with
      | Some lvl ->
          Log.emit lvl "serve.access"
            [
              ("id", Log.Str info.r_id);
              ("method", Log.Str info.r_meth);
              ("path", Log.Str info.r_path);
              ("status", Log.Num info.r_status);
              ("bytes_in", Log.Num info.r_bytes_in);
              ("bytes_out", Log.Num info.r_bytes_out);
              ("queue_wait_us", Log.Num info.r_queue_wait_us);
              ("read_us", Log.Num info.r_read_us);
              ("service_us", Log.Num info.r_service_us);
              ("write_us", Log.Num info.r_write_us);
              ("total_us", Log.Num info.r_total_us);
              ( "shards",
                Log.Str
                  (String.concat ","
                     (List.map string_of_int info.r_shards)) );
              ("gc_overlap_us", Log.Num info.r_gc_overlap_us);
              ("gc_queue_wait_us", Log.Num info.r_gc_queue_wait_us);
              ("gc_read_us", Log.Num info.r_gc_read_us);
              ("gc_service_us", Log.Num info.r_gc_service_us);
              ("gc_write_us", Log.Num info.r_gc_write_us);
              ("keep_alive", Log.Bool info.r_keep_alive);
              ("shed", Log.Bool info.r_shed);
            ]
      | None -> ());
      if Rt_events.running () then observe gc_overlap_h info.r_gc_overlap_us;
      if Atomic.get capture_on then begin
        (* Tail-retention trigger: the time the server spent on the
           request (service + write), not wall time — a keep-alive
           connection parked in its read between requests is idle, not
           slow. Shed and error responses are always retained. *)
        let spent_us = us_of_ns (sc.sc_service_ns + sc.sc_write_ns) in
        if info.r_status >= 400 || spent_us >= Atomic.get threshold_us_a then
          retain info
      end
    end

  let with_scope f =
    let n = 1 + Atomic.fetch_and_add req_seq 1 in
    let rid = Printf.sprintf "%s-%d" boot_token n in
    let buf =
      if Atomic.get capture_on then Some (Trace.buffer ()) else None
    in
    let sc =
      {
        sc_id = rid;
        sc_start = Unix.gettimeofday ();
        sc_buf = buf;
        sc_meth = "-";
        sc_path = "-";
        sc_status = 0;
        sc_bytes_in = 0;
        sc_bytes_out = 0;
        sc_keep_alive = false;
        sc_queue_wait_ns = 0;
        sc_read_ns = 0;
        sc_service_ns = 0;
        sc_write_ns = 0;
        sc_shards = [];
        sc_abandoned = false;
      }
    in
    Domain.DLS.set scope_key (Some sc);
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set scope_key None;
        (* after the capture scope closed, so the root span's close
           event is already in the buffer *)
        finalize sc)
      (fun () ->
        match buf with
        | Some b -> Trace.with_capture b "serve.request" (fun () -> f sc)
        | None -> f sc)
end

(* --- runtime / GC gauges ------------------------------------------------ *)

module Runtime = struct
  let minor_collections_g = gauge "runtime.gc.minor_collections"
  let major_collections_g = gauge "runtime.gc.major_collections"
  let compactions_g = gauge "runtime.gc.compactions"
  let heap_words_g = gauge "runtime.gc.heap_words"
  let top_heap_words_g = gauge "runtime.gc.top_heap_words"
  let minor_words_g = gauge "runtime.gc.minor_words"
  let promoted_words_g = gauge "runtime.gc.promoted_words"
  let major_words_g = gauge "runtime.gc.major_words"
  let uptime_ms_g = gauge "runtime.uptime_ms"
  let trace_emitted_g = gauge "trace.emitted"
  let trace_recorded_g = gauge "trace.recorded"
  let trace_dropped_g = gauge "trace.dropped"
  let trace_capacity_g = gauge "trace.capacity"

  let started = Unix.gettimeofday ()

  (* [Gc.quick_stat] reports cumulative word counts as floats; on a
     long-lived allocation-heavy process they eventually exceed
     [max_int], where a bare [int_of_float] is undefined (and wraps
     negative in practice). Saturate at the int range instead. *)
  let saturating_int_of_float f =
    if Float.is_nan f then 0
    else if f >= float_of_int max_int then max_int
    else if f <= float_of_int min_int then min_int
    else int_of_float f

  let refresh () =
    let s = Gc.quick_stat () in
    gauge_set minor_collections_g s.Gc.minor_collections;
    gauge_set major_collections_g s.Gc.major_collections;
    gauge_set compactions_g s.Gc.compactions;
    gauge_set heap_words_g s.Gc.heap_words;
    gauge_set top_heap_words_g s.Gc.top_heap_words;
    gauge_set minor_words_g (saturating_int_of_float s.Gc.minor_words);
    gauge_set promoted_words_g (saturating_int_of_float s.Gc.promoted_words);
    gauge_set major_words_g (saturating_int_of_float s.Gc.major_words);
    gauge_set uptime_ms_g
      (int_of_float ((Unix.gettimeofday () -. started) *. 1e3));
    gauge_set trace_emitted_g (Trace.emitted ());
    gauge_set trace_recorded_g (Trace.recorded ());
    gauge_set trace_dropped_g (Trace.dropped ());
    gauge_set trace_capacity_g (Trace.capacity ())
end
