(** Distance-graph weights with an "unbounded" sentinel.

    STN distance matrices use [inf] as the sentinel for "no bound". Weights
    entering a network are clamped into [[-inf, inf]] and propagation sums
    saturate instead of wrapping, so adversarially large user bounds can
    never corrupt a shortest-path closure. *)

val inf : int
(** The "unbounded" sentinel ([max_int / 4]): large enough to dominate any
    clamped weight, small enough that sums of two weights never wrap. *)

val clamp : int -> int
(** Pin a weight into [[-inf, inf]]. *)

val neg : int -> int
(** Negation that cannot wrap ([neg min_int = max_int]). *)

val sat_add : int -> int -> int
(** Saturating addition: a sum that would wrap is pinned to
    [max_int] / [min_int] instead. *)

val sat_add3 : int -> int -> int -> int
(** [sat_add3 a b c = sat_add (sat_add a b) c]. *)
