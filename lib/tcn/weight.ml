let inf = max_int / 4

(* check: sentinel - negating the positive sentinel cannot wrap *)
let clamp w = if w > inf then inf else if w < -inf then -inf else w

let neg w =
  if w = min_int then max_int
  else -w (* check: sentinel - min_int is handled on the previous line *)

let sat_add a b =
  let s = a + b (* check: sentinel - a wrapped sum is detected and pinned below *) in
  if a > 0 && b > 0 && s < 0 then max_int
  else if a < 0 && b < 0 && s >= 0 then min_int
  else s

let sat_add3 a b c = sat_add (sat_add a b) c
