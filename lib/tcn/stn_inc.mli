(** Incremental simple temporal networks with backtracking.

    {!Stn} recomputes an O(n^3) Floyd–Warshall closure from scratch; this
    engine maintains the closure under single-constraint additions in
    O(n^2) each and supports exact undo — the workhorse of the [Pruned]
    depth-first consistency search (Algorithm 1 with prefix pruning), where
    thousands of near-identical networks differ by a handful of binding
    choices.

    Standard incremental-closure argument: with the matrix a valid
    shortest-path closure, a new arc (u,v,w) creates a negative cycle iff
    [d(v,u) + w < 0]; otherwise any shortest path uses the new arc at most
    once and [d'(x,y) = min(d(x,y), d(x,u) + w + d(v,y))] restores the
    closure. *)

type t

val create : Events.Event.t list -> t
(** Network over a fixed event universe (all events must be known up
    front), initially unconstrained except for the implicit non-negative
    domain. *)

val consistent : t -> bool

val push : t -> Condition.interval -> bool
(** Add an interval condition; returns the consistency of the extended
    network. Every push — including a failing one — must be matched by a
    {!pop}. @raise Invalid_argument if the network is already inconsistent
    (pop first) or the condition mentions an unknown event. *)

val pop : t -> unit
(** Undo the most recent {!push} exactly. @raise Invalid_argument if there
    is nothing to undo. *)

val depth : t -> int
(** Number of pushes not yet popped. *)

val events : t -> Events.Event.t array
(** The fixed event universe in internal index order. *)

val window : t -> Events.Event.t -> Events.Time.t * Events.Time.t option
(** [(lo, hi)] — the exact unary projection of the current closure onto
    one event: every feasible assignment has [lo <= t(e)], and [t(e) <= h]
    when [hi = Some h] ([None] = unbounded above). Because the matrix is a
    shortest-path closure these bounds are tight (minimal-network
    property), and they only shrink under further pushes — the heart of
    the branch-and-bound lower bound of {!Explain.Bnb}.
    @raise Invalid_argument if the network is inconsistent or the event
    unknown. *)

val solution : t -> Events.Tuple.t option
(** A feasible non-negative assignment for the currently-pushed conditions
    ([None] if inconsistent). *)
