(** Simple temporal networks (Dechter, Meiri, Pearl 1991; Definition 6).

    An STN is a conjunction of interval conditions over a set of events. Its
    consistency is decided in O(n^3) by computing all-pairs shortest paths on
    the distance graph: condition [phi(i,j):\[a,b\]] contributes the arcs
    [i -> j] with weight [b] and [j -> i] with weight [-a]; the network is
    consistent iff the graph has no negative cycle. The shortest-path matrix
    is also the {e minimal network} (tightest equivalent bounds), from which
    a concrete feasible assignment is read off. *)

type t

val of_intervals :
  ?events:Events.Event.t list ->
  ?absolute:(Events.Event.t * Events.Time.t * Events.Time.t) list ->
  Condition.interval list ->
  t
(** Build the network over the union of the mentioned events and [events]
    (extra isolated events are allowed and stay unconstrained).
    [absolute] adds per-event absolute-time bounds [lo <= t(e) <= hi]
    (anchored on the network's internal origin) — used e.g. to express
    plausibility bounds around observed timestamps. *)

val events : t -> Events.Event.t array
(** The network's events in their internal index order. *)

val consistent : t -> bool
(** No negative cycle in the distance graph (Floyd–Warshall, cached). *)

val distance : t -> Events.Event.t -> Events.Event.t -> Events.Time.t option
(** Minimal-network entry: the tightest upper bound on
    [t(dst) - t(src)], [None] if unbounded.
    @raise Invalid_argument if the network is inconsistent or an event is
    unknown. *)

val distance_matrix : t -> Events.Event.t array -> int array array
(** [distance_matrix t evs] projects the minimal network onto [evs]:
    entry [(i, j)] is the tightest upper bound on
    [t(evs.(j)) - t(evs.(i))], with {!Weight.inf} for "unbounded". Events
    not in the network are treated as unconstrained (every bound
    [Weight.inf], diagonal 0) rather than rejected, so callers can project
    onto a fixed event universe. Because minimal STNs are decomposable, a
    partial assignment extends to a full solution iff every assigned pair
    satisfies these bounds — the basis for the detector's compiled
    feasibility checks. @raise Invalid_argument if [t] is inconsistent. *)

val solution : t -> Events.Tuple.t option
(** A feasible assignment with non-negative timestamps, [None] if
    inconsistent. All events (including isolated ones) are bound. *)

val solution_near : t -> Events.Tuple.t -> Events.Tuple.t option
(** Like {!solution} but anchored close to a reference tuple: the returned
    assignment satisfies the network and is pulled toward the reference
    per-event (a cheap heuristic seed, NOT the L1 optimum — Algorithm 2's
    LP gives that). Events missing from the reference are placed freely. *)
