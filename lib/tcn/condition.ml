module Event = Events.Event
module Tuple = Events.Tuple

type interval = {
  src : Event.t;
  dst : Event.t;
  lo : Events.Time.t;
  hi : Events.Time.t option;
}

let interval ?hi ?(lo = 0) src dst = { src; dst; lo; hi }
let exact src dst = { src; dst; lo = 0; hi = Some 0 }

let interval_holds t { src; dst; lo; hi } =
  match (Tuple.find_opt t src, Tuple.find_opt t dst) with
  | Some ts, Some td ->
      (* Saturating difference: adversarial timestamps must not wrap the
         comparison around. *)
      let d = Weight.sat_add td (Weight.neg ts) in
      d >= lo && (match hi with None -> true | Some hi -> d <= hi)
  | _ -> false

let intervals_hold t phis = List.for_all (interval_holds t) phis

type binding_kind = Min | Max

type binding = { bound : Event.t; over : Event.t list; kind : binding_kind }

let binding_holds t { bound; over; kind } =
  match Tuple.find_opt t bound with
  | None -> false
  | Some tb -> (
      let ts = List.map (Tuple.find_opt t) over in
      if List.exists Option.is_none ts then false
      else
        let ts = List.filter_map Fun.id ts in
        match kind with
        | Min -> tb = List.fold_left min max_int ts
        | Max -> tb = List.fold_left max min_int ts)

let bindings_hold t gammas = List.for_all (binding_holds t) gammas

let interval_events phis =
  List.fold_left
    (fun acc { src; dst; _ } -> Event.Set.add src (Event.Set.add dst acc))
    Event.Set.empty phis

let binding_events gammas =
  List.fold_left
    (fun acc { bound; over; _ } ->
      List.fold_left (fun acc e -> Event.Set.add e acc) (Event.Set.add bound acc) over)
    Event.Set.empty gammas

let pp_interval ppf { src; dst; lo; hi } =
  Format.fprintf ppf "phi(%a, %a):[%d, %s]" Event.pp src Event.pp dst lo
    (match hi with None -> "w" | Some hi -> string_of_int hi)

let pp_binding ppf { bound; over; kind } =
  Format.fprintf ppf "gamma(%a, {%a}):%s" Event.pp bound
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Event.pp)
    over
    (match kind with Min -> "min" | Max -> "max")
