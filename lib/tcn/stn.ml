module Event = Events.Event
module Tuple = Events.Tuple

(* Distances use [Weight.inf] for "unbounded". User-supplied bounds are
   clamped into [-inf, inf] on entry and propagation sums saturate, so
   adversarially large bounds can never silently wrap. *)
let inf = Weight.inf
let clamp = Weight.clamp
let neg = Weight.neg
let sat_add = Weight.sat_add

type t = {
  events : Event.t array;
  index : int Event.Map.t;
  dist : int array array; (* (n+1) x (n+1); last index = virtual origin *)
  consistent : bool;
}

let of_intervals ?(events = []) ?(absolute = []) intervals =
  let set =
    List.fold_left
      (fun acc e -> Event.Set.add e acc)
      (Condition.interval_events intervals)
      events
  in
  let set =
    List.fold_left (fun acc (e, _, _) -> Event.Set.add e acc) set absolute
  in
  let evs = Array.of_list (Event.Set.elements set) in
  let n = Array.length evs in
  let index =
    Array.to_seqi evs
    |> Seq.fold_left (fun acc (i, e) -> Event.Map.add e i acc) Event.Map.empty
  in
  let dist = Array.init (n + 1) (fun _ -> Array.make (n + 1) inf) in
  for i = 0 to n do
    dist.(i).(i) <- 0
  done;
  (* Virtual origin at index n, pinned at time 0: every event is >= 0. *)
  for i = 0 to n - 1 do
    dist.(i).(n) <- 0
  done;
  let tighten i j w = if w < dist.(i).(j) then dist.(i).(j) <- w in
  List.iter
    (fun { Condition.src; dst; lo; hi } ->
      let i = Event.Map.find src index and j = Event.Map.find dst index in
      (match hi with Some hi -> tighten i j (clamp hi) | None -> ());
      tighten j i (neg (clamp lo)))
    intervals;
  (* absolute bounds: t(e) - t(origin) in [lo, hi] with the origin at 0 *)
  List.iter
    (fun (e, lo, hi) ->
      let i = Event.Map.find e index in
      tighten n i (clamp hi);
      tighten i n (neg (clamp lo)))
    absolute;
  for k = 0 to n do
    for i = 0 to n do
      if dist.(i).(k) < inf then
        for j = 0 to n do
          if dist.(k).(j) < inf then
            let via = sat_add dist.(i).(k) dist.(k).(j) in
            if via < dist.(i).(j) then dist.(i).(j) <- via
        done
    done
  done;
  let consistent =
    let rec ok i = i > n || (dist.(i).(i) >= 0 && ok (i + 1)) in
    ok 0
  in
  { events = evs; index; dist; consistent }

let events t = t.events
let consistent t = t.consistent

let find_index t e =
  match Event.Map.find_opt e t.index with
  | Some i -> i
  | None -> invalid_arg "Stn: unknown event"

let distance t src dst =
  if not t.consistent then invalid_arg "Stn.distance: inconsistent network";
  let d = t.dist.(find_index t src).(find_index t dst) in
  if d >= inf then None else Some d

let distance_matrix t evs =
  if not t.consistent then
    invalid_arg "Stn.distance_matrix: inconsistent network";
  let m = Array.length evs in
  let idx = Array.map (fun e -> Event.Map.find_opt e t.index) evs in
  Array.init m (fun i ->
      Array.init m (fun j ->
          if i = j then 0
          else
            match (idx.(i), idx.(j)) with
            | Some a, Some b -> t.dist.(a).(b)
            | None, _ | _, None -> inf))

(* Minimal STNs are decomposable: assigning events one by one, each inside
   the bounds induced by the already-assigned ones (origin included), can
   never get stuck. [pick] chooses a value within [lower, upper]. *)
let assign_greedy t pick =
  if not t.consistent then None
  else begin
    let n = Array.length t.events in
    let value = Array.make (n + 1) 0 in
    let assigned = Array.make (n + 1) false in
    assigned.(n) <- true (* origin at 0 *);
    for i = 0 to n - 1 do
      let lower = ref min_int and upper = ref max_int in
      for j = 0 to n do
        if assigned.(j) then begin
          (* value_i - value_j <= dist(j)(i)  and  value_j - value_i <= dist(i)(j) *)
          if t.dist.(j).(i) < inf then
            upper := min !upper (sat_add value.(j) t.dist.(j).(i));
          if t.dist.(i).(j) < inf then
            lower := max !lower (sat_add value.(j) (neg t.dist.(i).(j)))
        end
      done;
      let lower = if !lower = min_int then 0 else !lower in
      assert (lower <= !upper);
      value.(i) <- pick i lower !upper;
      assigned.(i) <- true
    done;
    let tuple = ref Tuple.empty in
    Array.iteri (fun i e -> tuple := Tuple.add e value.(i) !tuple) t.events;
    Some !tuple
  end

let solution t = assign_greedy t (fun _ lower _upper -> lower)

let solution_near t reference =
  assign_greedy t (fun i lower upper ->
      match Tuple.find_opt reference t.events.(i) with
      | None -> lower
      | Some r -> if r < lower then lower else if r > upper then upper else r)
