module Event = Events.Event

let inf = Weight.inf

type frame = {
  saved : (int * int * int) list; (* (x, y, previous distance) *)
  interval : Condition.interval;
  made_inconsistent : bool;
}

type t = {
  events : Event.t array;
  index : int Event.Map.t;
  dist : int array array; (* (n+1)^2, last index = origin pinned at 0 *)
  mutable frames : frame list;
  mutable nframes : int; (* List.length frames, kept O(1) for metrics *)
  mutable inconsistent : bool;
}

let pushes_c = Obs.counter "stn_inc.pushes"
let pops_c = Obs.counter "stn_inc.pops"
let inconsistent_c = Obs.counter "stn_inc.inconsistency_hits"
let depth_g = Obs.gauge "stn_inc.max_depth"

let create events =
  let events = Array.of_list (List.sort_uniq Event.compare events) in
  let n = Array.length events in
  let index =
    Array.to_seqi events
    |> Seq.fold_left (fun acc (i, e) -> Event.Map.add e i acc) Event.Map.empty
  in
  let dist = Array.init (n + 1) (fun _ -> Array.make (n + 1) inf) in
  for i = 0 to n do
    dist.(i).(i) <- 0
  done;
  for i = 0 to n - 1 do
    (* t(i) >= 0: arc i -> origin with weight 0 *)
    dist.(i).(n) <- 0
  done;
  { events; index; dist; frames = []; nframes = 0; inconsistent = false }

let consistent t = not t.inconsistent

let find_index t e =
  match Event.Map.find_opt e t.index with
  | Some i -> i
  | None -> invalid_arg "Stn_inc: unknown event"

(* Add one arc u -> v of weight w, recording every touched cell. Returns
   the cells saved (prepended to [saved]) and whether a negative cycle
   appeared (in which case nothing was modified). *)
let add_arc t u v w saved =
  let w = Weight.clamp w in
  let d = t.dist in
  if d.(v).(u) < inf && Weight.sat_add d.(v).(u) w < 0 then (saved, false)
  else if w >= d.(u).(v) then (saved, true) (* not tightening *)
  else begin
    let n = Array.length t.events in
    let saved = ref saved in
    for x = 0 to n do
      if d.(x).(u) < inf then
        for y = 0 to n do
          if d.(v).(y) < inf then begin
            let cand = Weight.sat_add3 d.(x).(u) w d.(v).(y) in
            if cand < d.(x).(y) then begin
              saved := (x, y, d.(x).(y)) :: !saved;
              d.(x).(y) <- cand
            end
          end
        done
    done;
    (!saved, true)
  end

let push t ({ Condition.src; dst; lo; hi } as interval) =
  if t.inconsistent then invalid_arg "Stn_inc.push: inconsistent network (pop first)";
  Obs.incr pushes_c;
  let u = find_index t src and v = find_index t dst in
  let saved, ok =
    match hi with Some hi -> add_arc t u v hi [] | None -> ([], true)
  in
  let saved, ok =
    if ok then add_arc t v u (Weight.neg (Weight.clamp lo)) saved
    else (saved, ok)
  in
  if not ok then Obs.incr inconsistent_c;
  t.inconsistent <- not ok;
  t.frames <- { saved; interval; made_inconsistent = not ok } :: t.frames;
  t.nframes <- t.nframes + 1;
  Obs.gauge_max depth_g t.nframes;
  if Obs.Trace.should_emit () then
    Obs.Trace.emit (Obs.Trace.Stn_push { depth = t.nframes; consistent = ok });
  ok

let pop t =
  match t.frames with
  | [] -> invalid_arg "Stn_inc.pop: empty stack"
  | { saved; made_inconsistent; _ } :: rest ->
      Obs.incr pops_c;
      List.iter (fun (x, y, old) -> t.dist.(x).(y) <- old) saved;
      if made_inconsistent then t.inconsistent <- false;
      t.frames <- rest;
      t.nframes <- t.nframes - 1;
      if Obs.Trace.should_emit () then
        Obs.Trace.emit (Obs.Trace.Stn_pop { depth = t.nframes })

let depth t = t.nframes

let events t = t.events

let window t e =
  if t.inconsistent then invalid_arg "Stn_inc.window: inconsistent network";
  let i = find_index t e in
  let n = Array.length t.events in
  (* Rows/columns of the origin (pinned at 0) are the unary projections of
     the closure: t(e) <= d(origin, e) and t(e) >= -d(e, origin). The
     implicit non-negative domain keeps the lower bound at >= 0. *)
  let lo = Weight.neg t.dist.(i).(n) in
  let hi = if t.dist.(n).(i) >= inf then None else Some t.dist.(n).(i) in
  (lo, hi)

let solution t =
  if t.inconsistent then None
  else
    (* One plain network at the success leaf is cheap and reuses the
       well-tested extraction of [Stn]. *)
    Stn.of_intervals
      ~events:(Array.to_list t.events)
      (List.map (fun f -> f.interval) t.frames)
    |> Stn.solution
