module Event = Events.Event
module Tuple = Events.Tuple

type candidate = {
  repaired : Tuple.t;
  cost : int;
  binding : Tcn.Condition.interval list;
}

type blame = {
  event : Event.t;
  frequency : float;
  mean_shift : float;
}

type t = {
  candidates : candidate list;
  blames : blame list;
  bindings_tried : int;
}

let strip_artificial tuple =
  Tuple.fold
    (fun e ts acc -> if Event.is_artificial e then acc else Tuple.add e ts acc)
    tuple Tuple.empty

let blames_of tuple candidates =
  let stats = Hashtbl.create 8 in
  let total = List.length candidates in
  List.iter
    (fun { repaired; _ } ->
      List.iter
        (fun (e, old_ts, new_ts) ->
          let count, shift =
            Option.value ~default:(0, 0) (Hashtbl.find_opt stats e)
          in
          Hashtbl.replace stats e (count + 1, shift + abs (new_ts - old_ts)))
        (Tuple.diff tuple repaired))
    candidates;
  Hashtbl.fold
    (fun event (count, shift) acc ->
      {
        event;
        frequency = float_of_int count /. float_of_int total;
        mean_shift = float_of_int shift /. float_of_int count;
      }
      :: acc)
    stats []
  |> List.sort (fun a b ->
         match Float.compare b.frequency a.frequency with
         | 0 -> Float.compare b.mean_shift a.mean_shift
         | c -> c)

let explain ?(k = 3) patterns tuple =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Topk.explain: %a" Pattern.Ast.pp_error e));
  if k < 1 then invalid_arg "Topk.explain: k must be positive";
  let net = Tcn.Encode.pattern_set patterns in
  let extended =
    match Tcn.Encode.extend net tuple with
    | extended -> extended
    | exception Not_found ->
        invalid_arg "Topk.explain: tuple does not bind every pattern event"
  in
  let tried = ref 0 in
  let candidates = ref [] in
  (* Depth-first over the binding tree on one incremental closure, so
     shared binding prefixes share their consistency work and whole
     inconsistent subtrees are skipped without enumerating their leaves.
     Leaf order equals {!Tcn.Bindings.full} enumeration order. *)
  let gammas = Array.of_list net.set_bindings in
  let ngammas = Array.length gammas in
  let choices = Array.map Tcn.Bindings.choices gammas in
  let universe =
    Event.Set.union
      (Tcn.Condition.interval_events net.set_intervals)
      (Tcn.Condition.binding_events net.set_bindings)
  in
  let inc = Tcn.Stn_inc.create (Event.Set.elements universe) in
  let base_ok =
    List.for_all (fun phi -> Tcn.Stn_inc.push inc phi) net.set_intervals
  in
  let dummy = Tcn.Condition.exact "" "" in
  let path = Array.make ngammas dummy in
  let solve_leaf () =
    incr tried;
    let phi_k = Array.to_list path in
    match Lp_repair.repair extended (phi_k @ net.set_intervals) with
    | None -> ()
    | Some { repaired; cost; _ } ->
        let repaired = Tuple.union_right tuple (strip_artificial repaired) in
        candidates := { repaired; cost; binding = phi_k } :: !candidates
  in
  let rec dfs level =
    if level = ngammas then solve_leaf ()
    else
      List.iter
        (fun phi ->
          if Tcn.Stn_inc.push inc phi then begin
            path.(level) <- phi;
            dfs (level + 1)
          end;
          Tcn.Stn_inc.pop inc)
        choices.(level)
  in
  if base_ok then dfs 0;
  match !candidates with
  | [] -> None
  | all ->
      let distinct =
        List.sort
          (fun a b ->
            match Int.compare a.cost b.cost with
            | 0 ->
                List.compare
                  (fun (e1, t1) (e2, t2) ->
                    match Event.compare e1 e2 with 0 -> Int.compare t1 t2 | c -> c)
                  (Tuple.bindings a.repaired)
                  (Tuple.bindings b.repaired)
            | c -> c)
          all
        |> List.fold_left
             (fun acc c ->
               if List.exists (fun kept -> Tuple.equal kept.repaired c.repaired) acc
               then acc
               else c :: acc)
             []
        |> List.rev
      in
      let top =
        List.filteri (fun i _ -> i < k) distinct
      in
      Some
        {
          candidates = top;
          blames = blames_of tuple distinct;
          bindings_tried = !tried;
        }
