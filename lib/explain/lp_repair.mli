(** L1 timestamp repair over a simple temporal network (Formulas 2–4).

    Given a tuple [t] and interval conditions [Phi], find [t'] satisfying
    every condition while minimising [sum_i |t(Ei) - t'(Ei)|] over the real
    events — artificial [AND^s]/[AND^e] events move for free (they are
    bookkeeping, not data). The u/v substitution of Formula 4 turns the
    absolute values into a linear objective; the LP relaxation is solved by
    the exact simplex and, because the constraint matrix is a difference
    system (totally unimodular), the optimum is integral. Should a
    fractional optimum ever appear, the branch-and-bound {!Lp.Ilp} is used
    as a safety net, keeping the result exact unconditionally. *)

type t = {
  repaired : Events.Tuple.t;
      (** all events of the network, artificial included, at feasible
          non-negative timestamps *)
  cost : int;  (** Delta(t, repaired) over real events (Formula 1) *)
  integral_relaxation : bool;
      (** whether the LP relaxation was already integral (always true in
          our experiments; recorded for the integrality ablation) *)
}

val repair :
  ?weights:(Events.Event.t -> int) ->
  ?bounds:(Events.Event.t -> int option) ->
  ?cutoff:int ->
  Events.Tuple.t ->
  Tcn.Condition.interval list ->
  t option
(** [None] when the conditions are unsatisfiable. The input tuple must bind
    every event occurring in the conditions (extend it first via
    {!Tcn.Encode.extend} when artificial events occur). [weights] prices
    each real event's per-unit modification (default 1; weight 0 = free to
    move, e.g. an untrusted source; artificial events are always free).
    [bounds] caps how far each real event may move (plausibility: a repair
    shifting a timestamp across days is no explanation); [None] (the
    default everywhere) leaves it unbounded, and too-tight bounds make the
    repair infeasible ([None] result). [cutoff] is a branch-and-bound
    incumbent: only repairs of cost strictly below it are wanted, so any
    instance whose optimum is [>= cutoff] returns [None] (implemented as a
    budget constraint of [cutoff - 1]; costs are integral).
    @raise Not_found if an event of the conditions is unbound.
    @raise Invalid_argument on a negative weight or bound. *)
