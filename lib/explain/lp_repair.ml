module Event = Events.Event
module Tuple = Events.Tuple
module Rat = Numeric.Rat
module Simplex = Lp.Simplex

type t = {
  repaired : Tuple.t;
  cost : int;
  integral_relaxation : bool;
}

(* Variables u_i, v_i >= 0 with t'(Ei) = t(Ei) - u_i + v_i (Formula 4). *)
type vars = { u : int; v : int }

let default_weight e = if Event.is_artificial e then 0 else 1

let build ?(weights = default_weight) ?(bounds = fun _ -> None) ?cutoff tuple intervals =
  let events = Event.Set.elements (Tcn.Condition.interval_events intervals) in
  let model = Simplex.create () in
  let vars =
    List.fold_left
      (fun acc e ->
        let u = Simplex.add_var ~name:(e ^ ".u") model in
        let v = Simplex.add_var ~name:(e ^ ".v") model in
        Event.Map.add e { u; v } acc)
      Event.Map.empty events
  in
  (* Only real events pay for moving (Formula 1 sums over E in the schema;
     artificial events are artifacts of the encoding), each at its weight. *)
  let objective =
    List.concat_map
      (fun e ->
        let w = if Event.is_artificial e then 0 else weights e in
        if w < 0 then invalid_arg "Lp_repair: negative weight";
        if w = 0 then []
        else
          let { u; v } = Event.Map.find e vars in
          [ (Rat.of_int w, u); (Rat.of_int w, v) ])
      events
  in
  Simplex.set_objective model objective;
  (* Incumbent cutoff (branch-and-bound): only repairs strictly cheaper
     than [cutoff] are of interest, and costs are integral, so a budget
     constraint of [cutoff - 1] makes every dominated binding infeasible
     instead of paying for its exact optimum. *)
  (match cutoff with
  | Some c -> Simplex.add_constraint model objective Simplex.Le (Rat.of_int (c - 1))
  | None -> ());
  List.iter
    (fun { Tcn.Condition.src; dst; lo; hi } ->
      let vs = Event.Map.find src vars and vd = Event.Map.find dst vars in
      let base = Tuple.find tuple dst - Tuple.find tuple src in
      (* t'(dst) - t'(src) = base - u_d + v_d + u_s - v_s, constrained to
         [lo, hi]. *)
      let terms =
        [
          (Rat.minus_one, vd.u);
          (Rat.one, vd.v);
          (Rat.one, vs.u);
          (Rat.minus_one, vs.v);
        ]
      in
      Simplex.add_constraint model terms Simplex.Ge (Rat.of_int (lo - base));
      match hi with
      | Some hi -> Simplex.add_constraint model terms Simplex.Le (Rat.of_int (hi - base))
      | None -> ())
    intervals;
  (* Timestamps stay in the domain T (non-negative): t(Ei) - u_i + v_i >= 0;
     and each event respects its plausibility bound |t - t'| <= r when one
     is given (u_i + v_i >= |t - t'| always, and the optimum never pads, so
     bounding the sum bounds the move without cutting feasible targets). *)
  List.iter
    (fun e ->
      let { u; v } = Event.Map.find e vars in
      Simplex.add_constraint model
        [ (Rat.minus_one, u); (Rat.one, v) ]
        Simplex.Ge
        (Rat.of_int (-Tuple.find tuple e));
      if not (Event.is_artificial e) then
        match bounds e with
        | Some r ->
            if r < 0 then invalid_arg "Lp_repair: negative bound";
            Simplex.add_constraint model
              [ (Rat.one, u); (Rat.one, v) ]
              Simplex.Le (Rat.of_int r)
        | None -> ())
    events;
  (model, vars, events)

let repaired_tuple tuple vars read =
  Event.Map.fold
    (fun e { u; v } acc ->
      let t' = Tuple.find tuple e - read u + read v in
      Tuple.add e t' acc)
    vars Tuple.empty

let cost_of ?(weights = default_weight) tuple repaired =
  Tuple.fold
    (fun e ts acc ->
      if Event.is_artificial e then acc
      else
        match Tuple.find_opt tuple e with
        | Some orig -> acc + (weights e * abs (orig - ts))
        | None -> acc)
    repaired 0

let repair ?weights ?bounds ?cutoff tuple intervals =
  if (match cutoff with Some c -> c <= 0 | None -> false) then None
  else
  let model, vars, _events = build ?weights ?bounds ?cutoff tuple intervals in
  match Simplex.solve model with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded ->
      (* The objective is a sum of non-negative variables: impossible. *)
      assert false
  | Simplex.Optimal { values; _ } ->
      let integral = Array.for_all Rat.is_integer values in
      if integral then
        let repaired = repaired_tuple tuple vars (fun i -> Rat.to_int_exn values.(i)) in
        Some { repaired; cost = cost_of ?weights tuple repaired; integral_relaxation = true }
      else begin
        (* Never observed (difference systems are totally unimodular), but
           kept so the exactness claim does not rest on that observation. *)
        match Lp.Ilp.solve model with
        | Lp.Ilp.Optimal { values; _ } ->
            let repaired = repaired_tuple tuple vars (fun i -> values.(i)) in
            Some { repaired; cost = cost_of ?weights tuple repaired; integral_relaxation = false }
        | Lp.Ilp.Infeasible | Lp.Ilp.Unbounded -> assert false
      end
