module Ast = Pattern.Ast
module Tuple = Events.Tuple

type window_change = {
  path : int list;
  node : Ast.t;
  old_window : Ast.window;
  new_window : Ast.window;
  change_cost : int;
}

let pp_window ppf (w : Ast.window) =
  match (w.atleast, w.within) with
  | None, None -> Format.fprintf ppf "(no window)"
  | _ ->
      Option.iter (fun a -> Format.fprintf ppf "ATLEAST %d" a) w.atleast;
      if w.atleast <> None && w.within <> None then Format.fprintf ppf " ";
      Option.iter (fun b -> Format.fprintf ppf "WITHIN %d" b) w.within

let pp_window_change ppf { path; node; old_window; new_window; change_cost } =
  Format.fprintf ppf "at %s: %a — %a -> %a (cost %d)"
    (String.concat "." (List.map string_of_int path))
    Ast.pp node pp_window old_window pp_window new_window change_cost

type t = {
  patterns : Ast.t list;
  changes : window_change list;
  cost : int;
}

type failure =
  | Unbound_event of Events.Event.t
  | Order_violation of Ast.t * Ast.t

let pp_failure ppf = function
  | Unbound_event e ->
      Format.fprintf ppf "expected tuple does not bind event %a" Events.Event.pp e
  | Order_violation (p, q) ->
      Format.fprintf ppf
        "window changes cannot help: %a occurs after %a in an expected tuple \
         (consider a timestamp modification explanation instead)"
        Ast.pp p Ast.pp q

exception Failed of failure

(* Occurrence period of [p] under [tuple], ignoring windows entirely —
   Definition 2 without its bracketed window clauses. Raises [Failed] when
   structure alone rules the tuple out. *)
let rec span tuple p =
  match p with
  | Ast.Event e -> (
      match Tuple.find_opt tuple e with
      | Some ts -> (ts, ts)
      | None -> raise (Failed (Unbound_event e)))
  | Ast.Seq (children, _) ->
      let rec go prev_pat (start, prev_stop) = function
        | [] -> (start, prev_stop)
        | q :: rest ->
            let qs, qe = span tuple q in
            if prev_stop <= qs then go q (start, qe) rest
            else raise (Failed (Order_violation (prev_pat, q)))
      in
      (match children with
      | [] -> invalid_arg "Query_repair.span: empty SEQ"
      | first :: rest -> go first (span tuple first) rest)
  | Ast.And (children, _) ->
      let s, e =
        List.fold_left
          (fun (s, e) q ->
            let qs, qe = span tuple q in
            (min s qs, max e qe))
          (max_int, min_int) children
      in
      if s > e then invalid_arg "Query_repair.span: empty AND" else (s, e)

(* Rewrite one pattern: each windowed node's bounds are stretched to cover
   the observed span lengths across all expected tuples. *)
let rec rewrite tuples path p acc =
  match p with
  | Ast.Event _ -> (p, acc)
  | Ast.Seq (children, w) ->
      let children, acc = rewrite_children tuples path children acc in
      let w', acc = adjust tuples path (Ast.Seq (children, w)) w acc in
      (Ast.Seq (children, w'), acc)
  | Ast.And (children, w) ->
      let children, acc = rewrite_children tuples path children acc in
      let w', acc = adjust tuples path (Ast.And (children, w)) w acc in
      (Ast.And (children, w'), acc)

and rewrite_children tuples path children acc =
  let children, acc, _ =
    List.fold_left
      (fun (kids, acc, i) child ->
        let child, acc = rewrite tuples (path @ [ i ]) child acc in
        (child :: kids, acc, i + 1))
      ([], acc, 0) children
  in
  (List.rev children, acc)

and adjust tuples path node (w : Ast.window) acc =
  match (w.atleast, w.within) with
  | None, None -> (w, acc)
  | _ ->
      let lengths =
        List.map
          (fun tuple ->
            let s, e = span tuple node in
            e - s)
          tuples
      in
      let min_len = List.fold_left min max_int lengths in
      let max_len = List.fold_left max min_int lengths in
      let atleast' = Option.map (fun a -> min a min_len) w.atleast in
      let within' = Option.map (fun b -> max b max_len) w.within in
      let cost_of old fresh =
        match (old, fresh) with Some o, Some f -> abs (o - f) | _ -> 0
      in
      let change_cost = cost_of w.atleast atleast' + cost_of w.within within' in
      let w' = { Ast.atleast = atleast'; within = within' } in
      if change_cost = 0 then (w, acc)
      else
        ( w',
          { path; node; old_window = w; new_window = w'; change_cost } :: acc )

let explain patterns expected =
  (match Ast.validate_set patterns with
  | Ok () -> ()
  | Error e ->
      invalid_arg (Format.asprintf "Query_repair.explain: %a" Ast.pp_error e));
  if expected = [] then invalid_arg "Query_repair.explain: no expected tuples";
  match
    (* Structural screening first: windows cannot fix a missing event or a
       SEQ order violation, windowed or not. *)
    List.iter
      (fun pat -> List.iter (fun t -> ignore (span t pat)) expected)
      patterns;
    let patterns, changes, _ =
      List.fold_left
        (fun (ps, acc, i) p ->
          let p, acc = rewrite expected [ i ] p acc in
          (p :: ps, acc, i + 1))
        ([], [], 0) patterns
    in
    (List.rev patterns, changes)
  with
  | patterns', changes ->
      (* the repaired query must accept every expected tuple *)
      assert (
        List.for_all (fun t -> Pattern.Matcher.matches_set t patterns') expected);
      let changes =
        List.sort (fun a b -> Int.compare b.change_cost a.change_cost) changes
      in
      Ok
        {
          patterns = patterns';
          changes;
          cost = List.fold_left (fun acc c -> acc + c.change_cost) 0 changes;
        }
  | exception Failed f -> Error f
