module Event = Events.Event
module Tuple = Events.Tuple

type stats = {
  nodes_expanded : int;
  leaves_solved : int;
  pruned_bound : int;
  pruned_inconsistent : int;
  pruned_plausibility : int;
}

type outcome = { best : (Tuple.t * int) option; stats : stats }

let searches_c = Obs.counter "bnb.searches"
let nodes_c = Obs.counter "bnb.nodes_expanded"
let leaves_c = Obs.counter "bnb.leaves_solved"
let pruned_bound_c = Obs.counter "bnb.pruned_bound"
let pruned_inconsistent_c = Obs.counter "bnb.pruned_inconsistent"
let pruned_plausibility_c = Obs.counter "bnb.pruned_plausibility"
let resolves_c = Obs.counter "bnb.incumbent_resolves"
let domains_c = Obs.counter "bnb.domains_spawned"
let zero_stops_c = Obs.counter "bnb.zero_stops"
let gap_h = Obs.histogram "bnb.lb_gap"

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

(* Per-domain mutable search state. The closure engine, the grounded
   counts and the incumbent are all domain-local; only [best_global] and
   [zero_at] (below) are shared, and only as monotone pruning hints. *)
type worker = {
  inc : Tcn.Stn_inc.t;
  grounded : int array; (* per universe index: pushes grounding the event *)
  path : Tcn.Condition.interval array; (* binding choice per level *)
  mutable leaf_lb : int; (* lower bound at the deepest pushed node *)
  mutable local_best : int;
  mutable local_tuple : Tuple.t option;
  mutable local_phi : Tcn.Condition.interval list;
  mutable local_top : int; (* top-level subtree of the local incumbent *)
  mutable cutoff_used : bool; (* incumbent solve carried a cutoff row *)
  mutable nodes : int;
  mutable leaves : int;
  mutable pr_bound : int;
  mutable pr_inc : int;
  mutable pr_plaus : int;
}

let search ?(domains = 1)
    ~(repair :
        ?cutoff:int ->
        Tuple.t ->
        Tcn.Condition.interval list ->
        Lp_repair.t option) ?weights ?bounds (net : Tcn.Encode.set) tuple =
  if domains < 1 then invalid_arg "Bnb.search: domains must be >= 1";
  Obs.incr searches_c;
  Obs.Trace.with_span "bnb.search" @@ fun () ->
  let gammas = Array.of_list net.set_bindings in
  let ngammas = Array.length gammas in
  let choices = Array.map Tcn.Bindings.choices gammas in
  let universe =
    Event.Set.union
      (Tcn.Condition.interval_events net.set_intervals)
      (Tcn.Condition.binding_events net.set_bindings)
  in
  let ev = Array.of_list (Event.Set.elements universe) in
  let n = Array.length ev in
  let index =
    Array.to_seqi ev
    |> Seq.fold_left (fun acc (i, e) -> Event.Map.add e i acc) Event.Map.empty
  in
  let idx e = Event.Map.find e index in
  let ts = Array.map (fun e -> Tuple.find tuple e) ev in
  let weight_of e =
    if Event.is_artificial e then 0
    else match weights with None -> 1 | Some f -> f e
  in
  let w_arr = Array.map weight_of ev in
  Array.iter (fun w -> if w < 0 then invalid_arg "Bnb: negative weight") w_arr;
  let bnd_arr =
    Array.map
      (fun e ->
        if Event.is_artificial e then None
        else
          match bounds with
          | None -> None
          | Some f -> (
              match f e with
              | Some r when r < 0 -> invalid_arg "Bnb: negative bound"
              | b -> b))
      ev
  in
  (* Only events whose closure window has been constrained on the current
     path are guaranteed to appear in every leaf repair below the node, so
     only those may contribute to an admissible bound. *)
  let base_grounded = Array.make n false in
  List.iter
    (fun { Tcn.Condition.src; dst; _ } ->
      base_grounded.(idx src) <- true;
      base_grounded.(idx dst) <- true)
    net.set_intervals;
  let relevant =
    List.filter
      (fun i -> w_arr.(i) > 0 || bnd_arr.(i) <> None)
      (List.init n Fun.id)
  in
  (* The admissible L1 lower bound: each grounded event independently must
     move at least the distance from its observed timestamp to its current
     closure window (windows only shrink deeper in the tree, and every leaf
     solution is feasible for every prefix closure, so the bound holds for
     all leaves of the subtree). [None] = some event's minimal forced move
     already exceeds its plausibility bound: no leaf below is feasible. *)
  let lower_bound wk =
    let rec go acc = function
      | [] -> Some acc
      | i :: rest ->
          if not (base_grounded.(i) || wk.grounded.(i) > 0) then go acc rest
          else
            let lo, hi = Tcn.Stn_inc.window wk.inc ev.(i) in
            let c = ts.(i) in
            let move =
              if c < lo then lo - c
              else match hi with Some h when c > h -> c - h | _ -> 0
            in
            (match bnd_arr.(i) with
            | Some r when move > r -> None
            | _ -> go (acc + (w_arr.(i) * move)) rest)
    in
    go 0 relevant
  in
  let ground wk { Tcn.Condition.src; dst; _ } delta =
    let s = idx src and d = idx dst in
    wk.grounded.(s) <- wk.grounded.(s) + delta;
    wk.grounded.(d) <- wk.grounded.(d) + delta
  in
  let best_global = Atomic.make max_int in
  (* Earliest top-level subtree (in enumeration order) that reached cost 0:
     no later subtree can still win, so they stop outright. Earlier
     subtrees keep running — the sequential sweep would have kept their
     first zero-cost binding, and determinism requires the same. *)
  let zero_at = Atomic.make max_int in
  let dummy_interval = Tcn.Condition.{ src = ""; dst = ""; lo = 0; hi = None } in
  let make_worker () =
    let inc = Tcn.Stn_inc.create (Array.to_list ev) in
    let base_ok =
      List.for_all (fun phi -> Tcn.Stn_inc.push inc phi) net.set_intervals
    in
    ( {
        inc;
        grounded = Array.make n 0;
        path = Array.make ngammas dummy_interval;
        leaf_lb = 0;
        local_best = max_int;
        local_tuple = None;
        local_phi = [];
        local_top = 0;
        cutoff_used = false;
        nodes = 0;
        leaves = 0;
        pr_bound = 0;
        pr_inc = 0;
        pr_plaus = 0;
      },
      base_ok )
  in
  let solve_leaf wk top_idx =
    let phi_k = Array.to_list wk.path in
    let g = Atomic.get best_global in
    let cross = if g = max_int then max_int else g + 1 in
    (* Strict improvement locally; across domains, keep any leaf at or
       below the global incumbent so enumeration-order merging stays
       bit-identical to the sequential sweep. *)
    let cutoff = min wk.local_best cross in
    wk.leaves <- wk.leaves + 1;
    let result =
      if cutoff = max_int then repair tuple (phi_k @ net.set_intervals)
      else repair ~cutoff tuple (phi_k @ net.set_intervals)
    in
    match result with
    | None -> ()
    | Some { Lp_repair.repaired; cost; _ } ->
        wk.local_best <- cost;
        wk.local_tuple <- Some repaired;
        wk.local_phi <- phi_k;
        wk.local_top <- top_idx;
        wk.cutoff_used <- cutoff <> max_int;
        Obs.observe gap_h (cost - wk.leaf_lb);
        atomic_min best_global cost;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit (Obs.Trace.Bnb_incumbent { cost });
        if cost = 0 then begin
          Obs.incr zero_stops_c;
          if Obs.Trace.should_emit () then
            Obs.Trace.emit (Obs.Trace.Bnb_zero_stop { top = top_idx });
          atomic_min zero_at top_idx
        end
  in
  let rec descend wk level top_idx =
    if level = ngammas then solve_leaf wk top_idx
    else List.iter (fun phi -> try_child wk level top_idx phi) choices.(level)
  and try_child wk level top_idx phi =
    if Atomic.get zero_at >= top_idx then begin
      if Tcn.Stn_inc.push wk.inc phi then begin
        ground wk phi 1;
        (match lower_bound wk with
        | None ->
            wk.pr_plaus <- wk.pr_plaus + 1;
            if Obs.Trace.should_emit () then
              Obs.Trace.emit
                (Obs.Trace.Bnb_prune { reason = Plausibility; gap = 0 })
        | Some lb ->
            if lb >= wk.local_best || lb > Atomic.get best_global then begin
              wk.pr_bound <- wk.pr_bound + 1;
              if Obs.Trace.should_emit () then
                let g = min wk.local_best (Atomic.get best_global) in
                Obs.Trace.emit
                  (Obs.Trace.Bnb_prune
                     {
                       reason = Bound;
                       gap = (if g = max_int then 0 else lb - g);
                     })
            end
            else begin
              (* Only a node we branch upon counts as expanded; a push
                 discarded by its bound is a prune, not an expansion. *)
              wk.nodes <- wk.nodes + 1;
              if Obs.Trace.should_emit () then
                Obs.Trace.emit (Obs.Trace.Bnb_node { level });
              wk.path.(level) <- phi;
              wk.leaf_lb <- lb;
              descend wk (level + 1) top_idx
            end);
        ground wk phi (-1)
      end
      else begin
        wk.pr_inc <- wk.pr_inc + 1;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit
            (Obs.Trace.Bnb_prune { reason = Inconsistent; gap = 0 })
      end;
      Tcn.Stn_inc.pop wk.inc
    end
  in
  let tops = if ngammas = 0 then [||] else Array.of_list choices.(0) in
  let ntop = if ngammas = 0 then 1 else Array.length tops in
  (* Round-robin top-level subtrees across domains (the Cep.Bulk chunking
     pattern); each domain rebuilds the shared prefix network once. *)
  let run_worker k w_idx () =
    let wk, base_ok = make_worker () in
    if base_ok then
      if ngammas = 0 then begin
        if w_idx = 0 then
          match lower_bound wk with
          | None -> wk.pr_plaus <- wk.pr_plaus + 1
          | Some lb ->
              wk.leaf_lb <- lb;
              solve_leaf wk 0
      end
      else begin
        let i = ref w_idx in
        while !i < ntop do
          try_child wk 0 !i tops.(!i);
          i := !i + k
        done
      end;
    wk
  in
  let k = max 1 (min domains ntop) in
  let workers =
    if k = 1 then [ run_worker 1 0 () ]
    else begin
      Obs.add domains_c (k - 1);
      (* Worker domains start with a fresh trace context; adopt the
         spawning trace so their spans and events join its tree. *)
      let tctx = Obs.Trace.context () in
      let spawned =
        List.init (k - 1) (fun i ->
            Domain.spawn (fun () ->
                Obs.Trace.with_context tctx (run_worker k (i + 1))))
      in
      let own = run_worker k 0 () in
      own :: List.map Domain.join spawned
    end
  in
  (* Deterministic merge: global enumeration order = (top-level subtree,
     DFS order inside it), so min-cost with the smallest top index is
     exactly the first optimal binding the flat sweep would have kept. *)
  let winner =
    List.fold_left
      (fun acc wk ->
        match wk.local_tuple with
        | None -> acc
        | Some t -> (
            match acc with
            | Some (c, top, _, _, _)
              when c < wk.local_best || (c = wk.local_best && top < wk.local_top)
              ->
                acc
            | _ ->
                Some
                  (wk.local_best, wk.local_top, t, wk.local_phi, wk.cutoff_used)
            ))
      None workers
  in
  let best =
    match winner with
    | None -> None
    | Some (cost, _top, repaired, phi_k, cutoff_used) ->
        if not cutoff_used then Some (repaired, cost)
        else begin
          (* The winning solve carried an incumbent-cutoff row, which can
             select a different vertex among equal-cost optima than the
             plain model. Re-solve the winning binding without it so the
             result is bit-identical to the flat sweep. *)
          Obs.incr resolves_c;
          match repair tuple (phi_k @ net.set_intervals) with
          | Some { Lp_repair.repaired; cost = c; _ } ->
              assert (c = cost);
              Some (repaired, c)
          | None -> assert false
        end
  in
  let stats =
    List.fold_left
      (fun acc wk ->
        {
          nodes_expanded = acc.nodes_expanded + wk.nodes;
          leaves_solved = acc.leaves_solved + wk.leaves;
          pruned_bound = acc.pruned_bound + wk.pr_bound;
          pruned_inconsistent = acc.pruned_inconsistent + wk.pr_inc;
          pruned_plausibility = acc.pruned_plausibility + wk.pr_plaus;
        })
      {
        nodes_expanded = 0;
        leaves_solved = 0;
        pruned_bound = 0;
        pruned_inconsistent = 0;
        pruned_plausibility = 0;
      }
      workers
  in
  Obs.add nodes_c stats.nodes_expanded;
  Obs.add leaves_c stats.leaves_solved;
  Obs.add pruned_bound_c stats.pruned_bound;
  Obs.add pruned_inconsistent_c stats.pruned_inconsistent;
  Obs.add pruned_plausibility_c stats.pruned_plausibility;
  { best; stats }
