module Event = Events.Event
module Tuple = Events.Tuple
module Checked = Numeric.Checked

type t = { intervals : (Event.t * int * int) list (* sorted by event *) }

let of_intervals intervals =
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> Event.compare a b) intervals
  in
  let rec validate = function
    | (e, lo, hi) :: rest ->
        if lo > hi then
          invalid_arg (Printf.sprintf "Possible_worlds: empty interval for %s" e);
        if lo < 0 then invalid_arg "Possible_worlds: negative timestamps";
        (match rest with
        | (e', _, _) :: _ when Event.equal e e' ->
            invalid_arg (Printf.sprintf "Possible_worlds: duplicate event %s" e)
        | _ -> ());
        validate rest
    | [] -> ()
  in
  validate sorted;
  { intervals = sorted }

let of_tuple ~radius tuple =
  if radius < 0 then invalid_arg "Possible_worlds.of_tuple: negative radius";
  of_intervals
    (List.map
       (fun (e, ts) -> (e, max 0 (ts - radius), ts + radius))
       (Tuple.bindings tuple))

let center t =
  List.fold_left
    (fun acc (e, lo, hi) -> Tuple.add e ((lo + hi) / 2) acc)
    Tuple.empty t.intervals

let world_count t =
  List.fold_left
    (fun acc (_, lo, hi) -> Checked.mul acc (hi - lo + 1))
    1 t.intervals

let check_limit ?(limit = 2_000_000) t =
  let count = try world_count t with Checked.Overflow -> max_int in
  if count > limit then
    invalid_arg
      (Printf.sprintf
         "Possible_worlds: %d worlds exceed the enumeration limit %d" count limit)

let confidence_exact ?limit t patterns =
  check_limit ?limit t;
  let matched = ref 0 and total = ref 0 in
  let rec enumerate world = function
    | [] ->
        incr total;
        if Pattern.Matcher.matches_set world patterns then incr matched
    | (e, lo, hi) :: rest ->
        for ts = lo to hi do
          enumerate (Tuple.add e ts world) rest
        done
  in
  enumerate Tuple.empty t.intervals;
  if !total = 0 then 0.0 else float_of_int !matched /. float_of_int !total

let confidence_sampled ?(samples = 10_000) prng t patterns =
  if samples <= 0 then invalid_arg "Possible_worlds: samples must be positive";
  let matched = ref 0 in
  for _ = 1 to samples do
    let world =
      List.fold_left
        (fun acc (e, lo, hi) -> Tuple.add e (Numeric.Prng.int_in prng lo hi) acc)
        Tuple.empty t.intervals
    in
    if Pattern.Matcher.matches_set world patterns then incr matched
  done;
  float_of_int !matched /. float_of_int samples

let most_likely_matching_world ?limit t patterns =
  check_limit ?limit t;
  let centre = center t in
  let best = ref None in
  (* Enumerate each event's candidates nearest-to-centre first and prune
     branches that cannot beat the incumbent. *)
  let candidates e lo hi =
    let c = Tuple.find centre e in
    List.init (hi - lo + 1) (fun i -> lo + i)
    |> List.sort (fun a b -> Int.compare (abs (a - c)) (abs (b - c)))
  in
  let rec enumerate world cost = function
    | [] -> (
        if Pattern.Matcher.matches_set world patterns then
          match !best with
          | Some (_, c) when c <= cost -> ()
          | _ -> best := Some (world, cost))
    | (e, lo, hi) :: rest ->
        List.iter
          (fun ts ->
            let cost = cost + abs (ts - Tuple.find centre e) in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> enumerate (Tuple.add e ts world) cost rest)
          (candidates e lo hi)
  in
  enumerate Tuple.empty 0 t.intervals;
  !best
