module Trace = Events.Trace

type failure_class = {
  description : string;
  tuples : string list;
}

type t = {
  total : int;
  answers : int;
  missing_events : failure_class list;
  order_violations : failure_class list;
  window_violations : failure_class list;
  repair_costs : (string * int) list;
  median_repair_cost : int option;
}

let classes_of table =
  Hashtbl.fold
    (fun description tuples acc -> { description; tuples = List.rev tuples } :: acc)
    table []
  |> List.sort (fun a b ->
         match Int.compare (List.length b.tuples) (List.length a.tuples) with
         | 0 -> String.compare a.description b.description
         | c -> c)

let median = function
  | [] -> None
  | xs ->
      let sorted = List.sort Int.compare xs in
      Some (List.nth sorted (List.length sorted / 2))

let run ?(with_costs = true) patterns trace =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Diagnose.run: %a" Pattern.Ast.pp_error e));
  let net = Tcn.Encode.pattern_set patterns in
  let missing = Hashtbl.create 8 in
  let order = Hashtbl.create 8 in
  let window = Hashtbl.create 8 in
  let bucket table key id =
    Hashtbl.replace table key
      (id :: Option.value ~default:[] (Hashtbl.find_opt table key))
  in
  let answers = ref 0 and total = ref 0 in
  let costs = ref [] in
  Trace.fold
    (fun id tuple () ->
      incr total;
      match Pattern.Matcher.explain_failure tuple patterns with
      | None -> incr answers
      | Some failure ->
          (match failure with
          | Pattern.Matcher.Missing_event e -> bucket missing e id
          | Pattern.Matcher.Order_violation (p, q) ->
              bucket order
                (Format.asprintf "%a before %a" Pattern.Ast.pp p Pattern.Ast.pp q)
                id
          | Pattern.Matcher.Window_violation (p, _) ->
              bucket window (Pattern.Ast.to_string p) id);
          if with_costs then
            match
              Modification.explain_network ~strategy:Modification.Single net tuple
            with
            | Some r -> costs := (id, r.Modification.cost) :: !costs
            | None | (exception Invalid_argument _) -> ())
    trace ();
  let repair_costs =
    List.sort
      (fun (ida, ca) (idb, cb) ->
        match String.compare ida idb with 0 -> Int.compare ca cb | c -> c)
      !costs
  in
  {
    total = !total;
    answers = !answers;
    missing_events = classes_of missing;
    order_violations = classes_of order;
    window_violations = classes_of window;
    repair_costs;
    median_repair_cost = median (List.map snd repair_costs);
  }

let pp_class_list ppf (label, classes) =
  if classes <> [] then begin
    Format.fprintf ppf "%s:@." label;
    List.iter
      (fun { description; tuples } ->
        Format.fprintf ppf "  %s — %d tuple(s)%s@." description (List.length tuples)
          (if List.length tuples <= 5 then " (" ^ String.concat ", " tuples ^ ")"
           else ""))
      classes
  end

let pp ppf t =
  Format.fprintf ppf "%d/%d tuples answer the query@." t.answers t.total;
  pp_class_list ppf ("missing events", t.missing_events);
  pp_class_list ppf ("order violations (first offending pair)", t.order_violations);
  pp_class_list ppf ("window violations (violated sub-pattern)", t.window_violations);
  match t.median_repair_cost with
  | Some m ->
      Format.fprintf ppf "median minimal repair cost of non-answers: %d (%d repaired)@."
        m (List.length t.repair_costs)
  | None -> ()
