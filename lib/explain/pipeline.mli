(** The paper's system structure (Figure 3), as one entry point.

    Input: an event pattern query and a tuple the user expected among the
    answers. The pipeline (1) encodes the query as a complex temporal
    network, (2) checks pattern consistency (Algorithm 1) — an inconsistent
    query is itself the explanation — and (3) otherwise produces the
    timestamp modification explanation (Algorithm 2). On top of the paper's
    figure, the pipeline also reports when the tuple actually matches
    (nothing to explain) and can fall back to the query-modification
    explanation when the data repair is implausibly large. *)

type outcome =
  | Already_answer
      (** the tuple matches; whatever is missing, it is not this tuple *)
  | Inconsistent_query of Consistency.report
      (** pattern consistency explanation: no tuple can ever match *)
  | Modify_timestamps of Modification.result
      (** timestamp modification explanation *)
  | Modify_query of Query_repair.t
      (** the data repair exceeded [max_cost]; relaxing the query's windows
          is the cheaper story (only produced when [max_cost] is given) *)
  | No_explanation
      (** data repair over budget and the query unfixable by windows *)

val pp_outcome : Format.formatter -> outcome -> unit

val explain :
  ?strategy:Modification.strategy ->
  ?engine:Modification.engine ->
  ?solver:Modification.solver ->
  ?max_cost:int ->
  Pattern.Ast.t list ->
  Events.Tuple.t ->
  outcome
(** Run Figure 3 on one expected-but-missing tuple.
    @raise Invalid_argument on invalid patterns or a tuple missing pattern
    events. *)
