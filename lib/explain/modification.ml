module Event = Events.Event
module Tuple = Events.Tuple

type strategy = Full | Single | Sampled of int
type engine = Flat | Bnb of { domains : int }
type solver = Lp | Flow

type result = {
  repaired : Tuple.t;
  cost : int;
  bindings_tried : int;
  exact : bool;
}

let explains_c = Obs.counter "modification.explains"
let bindings_c = Obs.counter "modification.bindings_tried"
let found_c = Obs.counter "modification.outcome.found"
let none_c = Obs.counter "modification.outcome.none"
let cost_h = Obs.histogram "modification.cost"

let repair_of solver ?weights ?bounds =
  match solver with
  | Lp -> Lp_repair.repair ?weights ?bounds
  | Flow -> Flow_repair.repair ?weights ?bounds

let strip_artificial tuple =
  Tuple.fold
    (fun e ts acc -> if Event.is_artificial e then acc else Tuple.add e ts acc)
    tuple Tuple.empty

let explain_network ?(strategy = Full) ?(engine = Bnb { domains = 1 })
    ?(solver = Lp) ?(seed = 0) ?weights ?bounds (net : Tcn.Encode.set) tuple =
  let repair = repair_of solver ?weights ?bounds in
  let required =
    Event.Set.union
      (Tcn.Condition.interval_events net.set_intervals)
      (Tcn.Condition.binding_events net.set_bindings)
    |> Event.Set.filter (fun e -> not (Event.is_artificial e))
  in
  if not (Event.Set.for_all (fun e -> Tuple.mem e tuple) required) then
    invalid_arg "Modification.explain: tuple does not bind every pattern event";
  let extended = Tcn.Encode.extend net tuple in
  Obs.Trace.with_trace "modification.explain" @@ fun () ->
  let finish best tried exact =
    Obs.incr explains_c;
    Obs.add bindings_c tried;
    Obs.incr (if best = None then none_c else found_c);
    match best with
    | None -> None
    | Some (repaired, cost) ->
        Obs.observe cost_h cost;
        (* Events of the input tuple untouched by the network keep their
           original timestamps. *)
        let repaired = Tuple.union_right tuple (strip_artificial repaired) in
        Some { repaired; cost; bindings_tried = tried; exact }
  in
  match (strategy, engine) with
  | Full, Bnb { domains } ->
      let { Bnb.best; stats } =
        Bnb.search ~domains ~repair ?weights ?bounds net extended
      in
      finish best stats.Bnb.leaves_solved true
  | (Full | Single | Sampled _), _ ->
      let bindings_seq =
        match strategy with
        | Full -> Tcn.Bindings.full net.set_bindings
        | Single -> Seq.return (Tcn.Bindings.single extended net.set_bindings)
        | Sampled s ->
            (* The single binding is the cheap informed guess; the samples add
               exploration around it. *)
            let prng = Numeric.Prng.create seed in
            Seq.append
              (Seq.return (Tcn.Bindings.single extended net.set_bindings))
              (Seq.init s (fun _ -> Tcn.Bindings.sample prng net.set_bindings))
      in
      (* Random sampling repeats itself (and often re-draws the single
         binding); solving a binding twice buys nothing, so only distinct
         bindings are tried and counted. *)
      let seen =
        match strategy with
        | Sampled _ -> Some (Hashtbl.create 16)
        | Full | Single -> None
      in
      let best = ref None in
      let tried = ref 0 in
      Seq.iter
        (fun phi_k ->
          let fresh =
            match seen with
            | None -> true
            | Some h ->
                if Hashtbl.mem h phi_k then false
                else begin
                  Hashtbl.add h phi_k ();
                  true
                end
          in
          if fresh then begin
            incr tried;
            let intervals = phi_k @ net.set_intervals in
            (* An O(n^3) consistency check screens out infeasible bindings
               before paying for an LP solve. *)
            if not (Tcn.Stn.consistent (Tcn.Stn.of_intervals intervals)) then ()
            else
              match repair extended intervals with
              | None -> ()
              | Some { Lp_repair.repaired; cost; _ } -> (
                  match !best with
                  | Some (_, best_cost) when best_cost <= cost -> ()
                  | _ -> best := Some (repaired, cost))
          end)
        bindings_seq;
      finish !best !tried (strategy = Full)

let explain ?strategy ?engine ?solver ?seed ?weights ?bounds patterns tuple =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e ->
      invalid_arg (Format.asprintf "Modification.explain: %a" Pattern.Ast.pp_error e));
  let net = Tcn.Encode.pattern_set patterns in
  let result =
    explain_network ?strategy ?engine ?solver ?seed ?weights ?bounds net tuple
  in
  (match result with
  | Some { repaired; cost; _ } ->
      (* Every produced explanation must actually turn the tuple into an
         answer, at the advertised cost. *)
      assert (Pattern.Matcher.matches_set repaired patterns);
      assert (weights <> None || Tuple.delta tuple repaired = cost)
  | None -> ());
  result
