(** L1 timestamp repair via the min-cost-circulation dual.

    Same problem as {!Lp_repair} (minimum L1 modification under a simple
    temporal network) solved through a different exact route: the LP dual of
    the repair problem is a min-cost circulation on the constraint graph —
    each difference constraint becomes an arc with cost equal to its slack
    at the input tuple, and each event may absorb imbalance up to its weight
    through a super node. The optimal primal is read off the shortest-path
    potentials of the optimal residual network (complementary slackness).

    This is the repository's independent witness for {!Lp_repair}: property
    tests assert both report identical optima. It is also markedly faster
    (integer arithmetic, no tableau), which the ablation bench quantifies. *)

val repair :
  ?weights:(Events.Event.t -> int) ->
  ?bounds:(Events.Event.t -> int option) ->
  ?cutoff:int ->
  Events.Tuple.t ->
  Tcn.Condition.interval list ->
  Lp_repair.t option
(** Same contract as {!Lp_repair.repair}, weights and incumbent [cutoff]
    included (the [integral_relaxation] field is always [true]: flows are
    integral by construction). *)
