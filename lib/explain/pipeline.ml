type outcome =
  | Already_answer
  | Inconsistent_query of Consistency.report
  | Modify_timestamps of Modification.result
  | Modify_query of Query_repair.t
  | No_explanation

let pp_outcome ppf = function
  | Already_answer -> Format.fprintf ppf "the tuple already matches the query"
  | Inconsistent_query r ->
      Format.fprintf ppf
        "the query is inconsistent (no tuple can match; %d binding(s) checked)"
        r.Consistency.bindings_checked
  | Modify_timestamps r ->
      Format.fprintf ppf "modify timestamps at cost %d, giving %a"
        r.Modification.cost Events.Tuple.pp r.Modification.repaired
  | Modify_query r ->
      Format.fprintf ppf "relax the query windows (total %d): %a" r.Query_repair.cost
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Query_repair.pp_window_change)
        r.Query_repair.changes
  | No_explanation -> Format.fprintf ppf "no plausible explanation found"

let outcome_counter =
  let already = Obs.counter "pipeline.outcome.already_answer"
  and inconsistent = Obs.counter "pipeline.outcome.inconsistent_query"
  and timestamps = Obs.counter "pipeline.outcome.modify_timestamps"
  and query = Obs.counter "pipeline.outcome.modify_query"
  and none = Obs.counter "pipeline.outcome.no_explanation" in
  function
  | Already_answer -> already
  | Inconsistent_query _ -> inconsistent
  | Modify_timestamps _ -> timestamps
  | Modify_query _ -> query
  | No_explanation -> none

let explains_c = Obs.counter "pipeline.explains"

(* End-to-end explain latencies in microseconds: sub-millisecond for the
   typical query, with room for branch-and-bound blowups. *)
let explain_buckets = [| 100; 250; 500; 1000; 2500; 5000; 10000; 50000; 250000 |]

let explain_inner ?strategy ?engine ?solver ?max_cost patterns tuple =
  if Pattern.Matcher.matches_set tuple patterns then Already_answer
  else
    (* Step 2 of Figure 3: pattern consistency first — no data explanation
       exists for an unsatisfiable query. *)
    let consistency =
      Consistency.check ~strategy:Consistency.Pruned patterns
    in
    if not consistency.Consistency.consistent then Inconsistent_query consistency
    else
      let modification =
        Modification.explain ?strategy ?engine ?solver patterns tuple
      in
      let within_budget cost =
        match max_cost with None -> true | Some budget -> cost <= budget
      in
      match modification with
      | Some r when within_budget r.Modification.cost -> Modify_timestamps r
      | Some _ | None -> (
          match max_cost with
          | None -> (
              (* no budget given: a found repair is the answer; otherwise the
                 chosen strategy missed every feasible binding *)
              match modification with
              | Some r -> Modify_timestamps r
              | None -> No_explanation)
          | Some _ -> (
              match Query_repair.explain patterns [ tuple ] with
              | Ok qr -> Modify_query qr
              | Error _ -> No_explanation))

let explain ?strategy ?engine ?solver ?max_cost patterns tuple =
  Obs.incr explains_c;
  let outcome =
    (* The pipeline is the outermost layer, so this is usually the call
       that starts the per-query trace; nested instrumented layers
       attach to it as child spans. *)
    Obs.Trace.with_trace "pipeline.explain" (fun () ->
        Obs.with_span ~hist_buckets:explain_buckets "pipeline.explain"
          (fun () ->
            explain_inner ?strategy ?engine ?solver ?max_cost patterns tuple))
  in
  Obs.incr (outcome_counter outcome);
  outcome
