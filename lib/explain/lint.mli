(** Query linting: window diagnostics from the minimal temporal network.

    Pattern consistency (Algorithm 1) answers only "can anything match?".
    This linter goes window by window: for each ATLEAST/WITHIN bound it
    computes the span range the {e rest} of the query already implies for
    that sub-pattern (across all consistent bindings), and classifies the
    declared bound as

    - {b dead} — implied by the rest of the query, never filters anything
      ([ATLEAST 10] on a span that is always at least 30);
    - {b fatal} — incompatible with the implied range, making the whole
      query unsatisfiable (the §1.1.1 bug, pinpointed to the bound rather
      than just reported globally);
    - {b ok} — genuinely constraining.

    A second pass reports the dual hygiene check: {!Pattern.Rewrite}
    structural savings. Together these are the "query development time"
    tooling the paper motivates. *)

type verdict =
  | Ok_bound
  | Dead of { implied : int }
      (** the bound is implied: the span is always >= (ATLEAST case) or
          <= (WITHIN case) the declared value even without it *)
  | Fatal of { implied_lo : int option; implied_hi : int option }
      (** no span allowed by the rest of the query satisfies this bound *)

type finding = {
  path : int list;  (** pattern index in the set, then child indexes *)
  node : Pattern.Ast.t;
  bound : [ `Atleast of int | `Within of int ];
  verdict : verdict;
}

val pp_finding : Format.formatter -> finding -> unit

type t = {
  findings : finding list;  (** one per declared bound, document order *)
  consistent : bool;  (** Algorithm 1 verdict for the whole set *)
  normalized_savings : int * int;
      (** full-binding-space size before and after {!Pattern.Rewrite} *)
}

val map_window :
  Pattern.Ast.t list ->
  int list ->
  (Pattern.Ast.window -> Pattern.Ast.window) ->
  Pattern.Ast.t list
(** Rewrite the window of the node at a finding's [path] (pattern index
    first) — apply a finding, e.g. erase a dead bound.
    @raise Invalid_argument if the path is empty, an index is out of range,
    or the path reaches an [Event] leaf (events carry no window). *)

val run : Pattern.Ast.t list -> t
(** @raise Invalid_argument on an invalid pattern set. Worst case
    exponential in the number of binding conditions (exact, like
    Algorithm 1); fine for hand-written queries. *)
