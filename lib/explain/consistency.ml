module Event = Events.Event
module Tuple = Events.Tuple

type strategy = Full | Pruned | Sampled of int

type report = {
  consistent : bool;
  witness : Tuple.t option;
  bindings_checked : int;
  exact : bool;
}

let checks_c = Obs.counter "consistency.checks"
let nodes_c = Obs.counter "consistency.search_nodes"
let consistent_c = Obs.counter "consistency.outcome.consistent"
let inconsistent_c = Obs.counter "consistency.outcome.inconsistent"
let strategy_full_c = Obs.counter "consistency.strategy.full"
let strategy_pruned_c = Obs.counter "consistency.strategy.pruned"
let strategy_sampled_c = Obs.counter "consistency.strategy.sampled"

let real_events tuple =
  Tuple.fold
    (fun e ts acc -> if Event.is_artificial e then acc else Tuple.add e ts acc)
    tuple Tuple.empty

let all_events (net : Tcn.Encode.set) =
  Event.Set.union
    (Tcn.Condition.interval_events net.set_intervals)
    (Tcn.Condition.binding_events net.set_bindings)

let try_binding net events phi_k =
  let stn =
    Tcn.Stn.of_intervals ~events:(Event.Set.elements events)
      (phi_k @ net.Tcn.Encode.set_intervals)
  in
  if Tcn.Stn.consistent stn then Tcn.Stn.solution stn else None

(* Pin the relative distances of already-known timestamps: consecutive
   pinned events are linked by exact intervals, so a completion exists iff
   the network is consistent with those observations (up to a global
   shift, which pattern satisfaction ignores). *)
let pin_intervals pinned =
  let bindings = Tuple.bindings pinned in
  let rec chain = function
    | (e1, v1) :: ((e2, v2) :: _ as rest) ->
        { Tcn.Condition.src = e1; dst = e2; lo = v2 - v1; hi = Some (v2 - v1) }
        :: chain rest
    | [ _ ] | [] -> []
  in
  chain bindings

let check_network ?(strategy = Full) ?(seed = 0) ?(events = Event.Set.empty)
    ?(pinned = Tuple.empty) (net : Tcn.Encode.set) =
  let net =
    if Tuple.is_empty pinned then net
    else
      { net with Tcn.Encode.set_intervals = pin_intervals pinned @ net.set_intervals }
  in
  let events = Event.Set.union events (all_events net) in
  Obs.Trace.with_trace "consistency.check" @@ fun () ->
  Obs.incr checks_c;
  Obs.incr
    (match strategy with
    | Full -> strategy_full_c
    | Pruned -> strategy_pruned_c
    | Sampled _ -> strategy_sampled_c);
  let checked = ref 0 in
  let found = ref None in
  (match strategy with
  | Full ->
      let rec scan seq =
        match Seq.uncons seq with
        | None -> ()
        | Some (phi_k, rest) -> (
            incr checked;
            match try_binding net events phi_k with
            | Some w -> found := Some w
            | None -> scan rest)
      in
      scan (Tcn.Bindings.full net.set_bindings)
  | Pruned ->
      (* Exact depth-first refinement: adding a binding's interval condition
         only shrinks the solution space, so an inconsistent prefix rules
         out its whole subtree. The incremental closure engine makes each
         refinement step O(n^2) with exact undo. Exponentially faster than
         Full on inconsistent instances in practice (same worst case). *)
      let inc = Tcn.Stn_inc.create (Event.Set.elements events) in
      let base_ok =
        List.fold_left
          (fun ok phi ->
            if ok then
              if Tcn.Stn_inc.push inc phi then true
              else begin
                Tcn.Stn_inc.pop inc;
                false
              end
            else ok)
          true net.set_intervals
      in
      let gammas = Array.of_list net.set_bindings in
      let rec dfs idx =
        if !found = None then
          if idx = Array.length gammas then found := Tcn.Stn_inc.solution inc
          else
            List.iter
              (fun phi ->
                if !found = None then begin
                  incr checked;
                  if Tcn.Stn_inc.push inc phi then dfs (idx + 1);
                  Tcn.Stn_inc.pop inc
                end)
              (Tcn.Bindings.choices gammas.(idx))
      in
      if base_ok then begin
        incr checked;
        dfs 0
      end
  | Sampled s ->
      let prng = Numeric.Prng.create seed in
      let rec scan remaining =
        if remaining > 0 && !found = None then begin
          incr checked;
          let phi_k = Tcn.Bindings.sample prng net.set_bindings in
          (match try_binding net events phi_k with
          | Some w -> found := Some w
          | None -> ());
          scan (remaining - 1)
        end
      in
      scan s);
  Obs.add nodes_c !checked;
  Obs.incr (if !found <> None then consistent_c else inconsistent_c);
  match !found with
  | Some w ->
      {
        consistent = true;
        witness = Some (real_events w);
        bindings_checked = !checked;
        exact = true;
      }
  | None ->
      {
        consistent = false;
        witness = None;
        bindings_checked = !checked;
        exact = (match strategy with Full | Pruned -> true | Sampled _ -> false);
      }

let check ?strategy ?seed patterns =
  let net = Tcn.Encode.pattern_set patterns in
  let events = Pattern.Ast.events_of_set patterns in
  let report = check_network ?strategy ?seed ~events net in
  (* The solution of a consistent binding satisfies Phi ∪ Phi_k by
     construction; restricted to real events it must match the original
     patterns (Propositions 5 and 7). Guard against encoder drift. *)
  (match report.witness with
  | Some w -> assert (Pattern.Matcher.matches_set w patterns)
  | None -> ());
  report
