(** Timestamp modification explanation (Problem 2, Algorithm 2).

    Given a tuple [t] that fails an event pattern query, produce the
    minimum-change tuple [t'] with [t' |= P]: the explanation is that the
    timestamps differing between [t] and [t'] are imprecise. The general
    case iterates over bindings [Phi_k] of [Aleph_Gamma], repairs the simple
    temporal network [Phi ∪ Phi_k] (L1, via LP-relaxation or the flow dual),
    and keeps the cheapest repair:

    - [Full] — all bindings: exact (Pattern(Full) in the paper);
    - [Single] — only the most likely binding of Definition 8
      (Pattern(Single)): approximate in general, provably optimal for AND
      patterns without embedded SEQ (Proposition 8);
    - [Sampled s] — [s] random bindings plus the single binding.

    [weights] generalizes Formula 1 to a weighted L1 cost: per-unit prices
    per event (default 1 everywhere). Use it to encode trust — events from
    a reliable source get high weights and are modified last, a weight of
    0 marks a value as freely adjustable. The [cost] field is then the
    weighted cost. [bounds] caps each event's move (plausibility); a tuple
    whose every binding needs a move beyond its bound gets no explanation
    ([None]) — the "does not apply" verdict of Section 1.1.2. *)

type strategy = Full | Single | Sampled of int

type engine = Flat | Bnb of { domains : int }
(** How the [Full] strategy explores [Aleph_Gamma]. [Flat] is the textbook
    sweep: every binding, one Floyd–Warshall closure plus one solve each.
    [Bnb] is the branch-and-bound search of {!Bnb} over an incremental
    closure with cost-bound pruning — same result, bit-identical, usually
    far fewer solves; [domains > 1] additionally spreads top-level subtrees
    over that many OCaml domains. The default is [Bnb { domains = 1 }].
    [Single] and [Sampled] have no binding tree; they ignore [engine]. *)

type solver = Lp | Flow

type result = {
  repaired : Events.Tuple.t;
      (** the explanation [t']: all real events of the input tuple, with the
          imprecise timestamps modified *)
  cost : int;  (** Delta(t, t') of Formula 1 *)
  bindings_tried : int;
      (** bindings actually solved: [|Aleph_Gamma|] for [Full]+[Flat],
          the (strictly smaller on non-trivial sets) number of leaves the
          branch-and-bound could not prune for [Full]+[Bnb], and the
          number of {e distinct} bindings drawn for [Sampled] *)
  exact : bool;  (** true iff the strategy guarantees the optimum *)
}

val explain :
  ?strategy:strategy ->
  ?engine:engine ->
  ?solver:solver ->
  ?seed:int ->
  ?weights:(Events.Event.t -> int) ->
  ?bounds:(Events.Event.t -> int option) ->
  Pattern.Ast.t list ->
  Events.Tuple.t ->
  result option
(** [None] when no binding admits a repair — i.e. the pattern set is
    inconsistent (with [Single]/[Sampled], possibly a false negative on a
    consistent but tricky set). The input tuple must bind every pattern
    event.
    @raise Invalid_argument on invalid patterns or unbound pattern events. *)

val explain_network :
  ?strategy:strategy ->
  ?engine:engine ->
  ?solver:solver ->
  ?seed:int ->
  ?weights:(Events.Event.t -> int) ->
  ?bounds:(Events.Event.t -> int option) ->
  Tcn.Encode.set ->
  Events.Tuple.t ->
  result option
(** Algorithm 2 on an already-encoded network (the tuple still ranges over
    real events only). *)
