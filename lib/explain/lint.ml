module Ast = Pattern.Ast
module Event = Events.Event

type verdict =
  | Ok_bound
  | Dead of { implied : int }
  | Fatal of { implied_lo : int option; implied_hi : int option }

type finding = {
  path : int list;
  node : Ast.t;
  bound : [ `Atleast of int | `Within of int ];
  verdict : verdict;
}

let pp_finding ppf { path; node; bound; verdict } =
  let bound_str =
    match bound with
    | `Atleast a -> Printf.sprintf "ATLEAST %d" a
    | `Within b -> Printf.sprintf "WITHIN %d" b
  in
  Format.fprintf ppf "at %s: %s on %a — %s"
    (String.concat "." (List.map string_of_int path))
    bound_str Ast.pp node
    (match verdict with
    | Ok_bound -> "ok (genuinely constraining)"
    | Dead { implied } ->
        Printf.sprintf "dead: the rest of the query already implies %d" implied
    | Fatal { implied_lo; implied_hi } ->
        Printf.sprintf "FATAL: the rest of the query forces the span into [%s, %s]"
          (match implied_lo with Some v -> string_of_int v | None -> "0")
          (match implied_hi with Some v -> string_of_int v | None -> "inf"))

type t = {
  findings : finding list;
  consistent : bool;
  normalized_savings : int * int;
}

(* A single walk that yields, per windowed node: path, node, its start/end
   events under the encoder's numbering. *)
let windowed_nodes patterns =
  let acc = ref [] in
  let rec walk next_id path p =
    match p with
    | Ast.Event e -> (e, e, next_id)
    | Ast.Seq (children, w) ->
        let spans, next_id = walk_children next_id path children in
        let s = fst (List.hd spans) in
        let e = snd (List.nth spans (List.length spans - 1)) in
        record path p w s e;
        (s, e, next_id)
    | Ast.And (children, w) ->
        let _, next_id = walk_children next_id path children in
        let s = Event.artificial_start next_id
        and e = Event.artificial_end next_id in
        record path p w s e;
        (s, e, next_id + 1)
  and walk_children next_id path children =
    let spans, next_id, _ =
      List.fold_left
        (fun (spans, id, i) child ->
          let s, e, id = walk id (path @ [ i ]) child in
          ((s, e) :: spans, id, i + 1))
        ([], next_id, 0) children
    in
    (List.rev spans, next_id)
  and record path node (w : Ast.window) s e =
    if w.atleast <> None || w.within <> None then
      acc := (path, node, w, s, e) :: !acc
  in
  let _ =
    List.fold_left
      (fun (id, i) p ->
        let _, _, id = walk id [ i ] p in
        (id, i + 1))
      (0, 0) patterns
  in
  List.rev !acc

(* Replace the window of the node at [path] (pattern index first). *)
let map_window patterns path f =
  let bad fmt =
    Format.kasprintf
      (fun msg ->
        invalid_arg
          (Printf.sprintf "Lint.map_window: %s (path %s)" msg
             (String.concat "." (List.map string_of_int path))))
      fmt
  in
  let step i children =
    if i < 0 || i >= List.length children then
      bad "index %d out of range (node has %d children)" i (List.length children)
  in
  let rec go p = function
    | [] -> (
        match p with
        | Ast.Seq (children, w) -> Ast.Seq (children, f w)
        | Ast.And (children, w) -> Ast.And (children, f w)
        | Ast.Event _ -> bad "path ends at an event, which has no window")
    | i :: rest -> (
        match p with
        | Ast.Seq (children, w) ->
            step i children;
            Ast.Seq (List.mapi (fun j c -> if j = i then go c rest else c) children, w)
        | Ast.And (children, w) ->
            step i children;
            Ast.And (List.mapi (fun j c -> if j = i then go c rest else c) children, w)
        | Ast.Event _ -> bad "path descends into an event leaf")
  in
  match path with
  | pat_index :: rest ->
      if pat_index < 0 || pat_index >= List.length patterns then
        bad "pattern index %d out of range (%d patterns)" pat_index
          (List.length patterns);
      List.mapi (fun i p -> if i = pat_index then go p rest else p) patterns
  | [] -> bad "empty path"

let binding_cap = 20_000

(* Feasible span range of (s, e) across all consistent bindings of the
   encoded set: [lo = min over bindings of -d(e,s), hi = max of d(s,e)]. *)
let span_range patterns s e =
  let net = Tcn.Encode.pattern_set patterns in
  if Tcn.Bindings.count net.set_bindings > binding_cap then None
  else begin
    let events =
      Event.Set.elements
        (Event.Set.union
           (Ast.events_of_set patterns)
           (Event.Set.union
              (Tcn.Condition.interval_events net.set_intervals)
              (Tcn.Condition.binding_events net.set_bindings)))
    in
    let lo = ref None and hi = ref None and unbounded_hi = ref false in
    let feasible = ref false in
    Seq.iter
      (fun phi_k ->
        let stn = Tcn.Stn.of_intervals ~events (phi_k @ net.set_intervals) in
        if Tcn.Stn.consistent stn then begin
          feasible := true;
          (match Tcn.Stn.distance stn e s with
          | Some d ->
              let candidate = -d in
              lo :=
                Some (match !lo with None -> candidate | Some v -> min v candidate)
          | None -> lo := Some 0 (* no lower restriction beyond span >= 0 *));
          match Tcn.Stn.distance stn s e with
          | Some d -> hi := Some (match !hi with None -> d | Some v -> max v d)
          | None -> unbounded_hi := true
        end)
      (Tcn.Bindings.full net.set_bindings);
    if not !feasible then None
    else Some (Option.value ~default:0 !lo, if !unbounded_hi then None else !hi)
  end

let check_bound patterns path s e bound =
  let erase (w : Ast.window) =
    match bound with
    | `Atleast _ -> { w with Ast.atleast = None }
    | `Within _ -> { w with Ast.within = None }
  in
  match span_range (map_window patterns path erase) s e with
  | None -> Ok_bound (* rest already inconsistent, or too many bindings *)
  | Some (implied_lo, implied_hi) -> (
      match bound with
      | `Atleast a ->
          if implied_lo >= a then Dead { implied = implied_lo }
          else if (match implied_hi with Some h -> a > h | None -> false) then
            Fatal { implied_lo = Some implied_lo; implied_hi }
          else Ok_bound
      | `Within b -> (
          match implied_hi with
          | Some h when h <= b -> Dead { implied = h }
          | _ ->
              if b < implied_lo then
                Fatal { implied_lo = Some implied_lo; implied_hi }
              else Ok_bound))

let run patterns =
  (match Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Lint.run: %a" Ast.pp_error e));
  let findings =
    List.concat_map
      (fun (path, node, (w : Ast.window), s, e) ->
        let for_bound bound =
          { path; node; bound; verdict = check_bound patterns path s e bound }
        in
        (match w.atleast with Some a -> [ for_bound (`Atleast a) ] | None -> [])
        @ match w.within with Some b -> [ for_bound (`Within b) ] | None -> [])
      (windowed_nodes patterns)
  in
  let consistent =
    (Consistency.check ~strategy:Consistency.Pruned patterns).Consistency.consistent
  in
  let count ps =
    Tcn.Bindings.count (Tcn.Encode.pattern_set ps).Tcn.Encode.set_bindings
  in
  let normalized = List.map Pattern.Rewrite.normalize patterns in
  { findings; consistent; normalized_savings = (count patterns, count normalized) }
