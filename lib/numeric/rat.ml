type t = { num : int; den : int }

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let num, den = if den < 0 then (Checked.neg num, Checked.neg den) else (num, den) in
    let g = Checked.gcd num den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num r = r.num
let den r = r.den

(* a/b + c/d computed via the reduced denominators to delay overflow:
   g = gcd(b, d); result = (a*(d/g) + c*(b/g)) / (b*(d/g)). *)
let add a b =
  let g = Checked.gcd a.den b.den in
  let db = b.den / g and da = a.den / g in
  make (Checked.add (Checked.mul a.num db) (Checked.mul b.num da)) (Checked.mul a.den db)

let neg a = { a with num = Checked.neg a.num }
let sub a b = add a (neg b)

(* Cross-reduce before multiplying to keep intermediates small. *)
let mul a b =
  let g1 = Checked.gcd a.num b.den and g2 = Checked.gcd b.num a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make
    (Checked.mul (a.num / g1) (b.num / g2))
    (Checked.mul (a.den / g2) (b.den / g1))

let inv a = if a.num = 0 then raise Division_by_zero else make a.den a.num
let div a b = mul a (inv b)
let abs a = { a with num = Checked.abs a.num }
let sign a = Int.compare a.num 0

let compare a b =
  (* Same trick as [add]: compare a.num*db with b.num*da. *)
  let g = Checked.gcd a.den b.den in
  let db = b.den / g and da = a.den / g in
  Int.compare (Checked.mul a.num db) (Checked.mul b.num da)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den = 1 then a.num else invalid_arg "Rat.to_int_exn: not an integer"

let floor a =
  if a.num >= 0 then a.num / a.den else -(((-a.num) + a.den - 1) / a.den)

let ceil a =
  if a.num >= 0 then (a.num + a.den - 1) / a.den else -((-a.num) / a.den)

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
