(** CSV import/export of traces.

    Long format, one event instance per line: [tuple_id,event,timestamp].
    A header line ["tuple_id,event,timestamp"] is written on export and
    skipped on import when it is the first non-blank record. This is the
    interchange format of the [whynot] CLI.

    Ids and event names are quoted RFC-4180 style on export when they
    contain commas, quotes, newlines, or leading/trailing whitespace, and
    unquoted on import — so [trace_of_string (trace_to_string t)] round
    trips for {e any} id/event strings. Unquoted fields are trimmed;
    quoted fields are taken verbatim. Ambiguous input (a quote opening
    mid-field, text after a closing quote, an unterminated quote) is
    rejected with [Error] rather than guessed at. *)

val trace_to_string : Trace.t -> string
val trace_of_string : string -> (Trace.t, string) result
(** Parse; [Error msg] points at the first offending line. *)

val split_line : string -> (string list, string) result
(** Split one newline-free CSV line into fields with the same RFC-4180
    quoting rules as {!trace_of_string} (a quoted field may contain
    commas and doubled quotes; unquoted fields are trimmed, quoted fields
    taken verbatim). [Ok \[\]] for the empty string. The error is the bare
    reason, without a line-number prefix — callers that track their own
    line numbers (the ingest path) prepend their own. *)

val write_trace : string -> Trace.t -> unit
(** [write_trace path trace] writes the CSV file at [path]. *)

val read_trace : string -> (Trace.t, string) result
(** [read_trace path] reads the CSV file at [path]; [Error] on I/O or
    parse failure. *)
