(* --- civil-date <-> epoch arithmetic (Howard Hinnant's algorithms) --- *)

let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let minutes_of_iso8601 s =
  (* YYYY-MM-DDTHH:MM[:SS[.fff]][Z|+hh:mm] — minute resolution, zone ignored *)
  let fail () = Error (Printf.sprintf "bad ISO-8601 date %S" s) in
  if String.length s < 16 then fail ()
  else
    let num off len = int_of_string_opt (String.sub s off len) in
    match (num 0 4, num 5 2, num 8 2, num 11 2, num 14 2) with
    | Some y, Some mo, Some d, Some h, Some mi
      when s.[4] = '-' && s.[7] = '-' && (s.[10] = 'T' || s.[10] = ' ') && s.[13] = ':'
           && mo >= 1 && mo <= 12 && d >= 1 && d <= 31 && h >= 0 && h < 24 && mi >= 0
           && mi < 60 ->
        Ok ((days_from_civil y mo d * 1440) + (h * 60) + mi)
    | _ -> fail ()

let iso8601_of_minutes t =
  let days = if t >= 0 then t / 1440 else (t - 1439) / 1440 in
  let rem = t - (days * 1440) in
  let y, m, d = civil_from_days days in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:00.000+00:00" y m d (rem / 60) (rem mod 60)

(* --- minimal XML --- *)

type xml = { tag : string; attrs : (string * string) list; children : xml list }

exception Xml_error of int * string

let parse_xml input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Xml_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let peek_is c = !pos < n && Char.equal input.[!pos] c in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      incr pos
    done
  in
  let name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = ':' || c = '-' || c = '_' || c = '.'
  in
  let read_name () =
    let start = !pos in
    while (match peek () with Some c when name_char c -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a name";
    String.sub input start (!pos - start)
  in
  let unescape s =
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | Some j ->
            (match String.sub s (!i + 1) (j - !i - 1) with
            | "amp" -> Buffer.add_char buf '&'
            | "lt" -> Buffer.add_char buf '<'
            | "gt" -> Buffer.add_char buf '>'
            | "quot" -> Buffer.add_char buf '"'
            | "apos" -> Buffer.add_char buf '\''
            | other -> Buffer.add_string buf ("&" ^ other ^ ";"));
            i := j + 1
        | None ->
            Buffer.add_char buf '&';
            incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let read_attr () =
    let key = read_name () in
    skip_ws ();
    if not (peek_is '=') then fail "expected '='";
    incr pos;
    skip_ws ();
    let quote =
      match peek () with
      | Some ('"' as q) | Some ('\'' as q) -> q
      | _ -> fail "expected a quoted value"
    in
    incr pos;
    let start = !pos in
    while (match peek () with Some c when c <> quote -> true | _ -> false) do
      incr pos
    done;
    if not (peek_is quote) then fail "unterminated attribute";
    let value = unescape (String.sub input start (!pos - start)) in
    incr pos;
    (key, value)
  in
  let rec skip_misc () =
    skip_ws ();
    if !pos + 3 < n && String.sub input !pos 4 = "<!--" then begin
      match String.index_from_opt input (!pos + 4) '>' with
      | Some _ ->
          let rec find i =
            if i + 2 >= n then fail "unterminated comment"
            else if String.sub input i 3 = "-->" then pos := i + 3
            else find (i + 1)
          in
          find (!pos + 4);
          skip_misc ()
      | None -> fail "unterminated comment"
    end
    else if !pos + 1 < n && input.[!pos] = '<' && input.[!pos + 1] = '?' then begin
      match String.index_from_opt input !pos '>' with
      | Some j ->
          pos := j + 1;
          skip_misc ()
      | None -> fail "unterminated declaration"
    end
  in
  let rec read_element () =
    skip_misc ();
    if not (peek_is '<') then fail "expected '<'";
    incr pos;
    let tag = read_name () in
    let rec attrs acc =
      skip_ws ();
      match peek () with
      | Some '/' ->
          incr pos;
          if not (peek_is '>') then fail "expected '>'";
          incr pos;
          { tag; attrs = List.rev acc; children = [] }
      | Some '>' ->
          incr pos;
          let children = read_children () in
          (* </tag> *)
          let close = read_name () in
          if close <> tag then fail (Printf.sprintf "mismatched </%s>" close);
          skip_ws ();
          if not (peek_is '>') then fail "expected '>'";
          incr pos;
          { tag; attrs = List.rev acc; children }
      | Some _ -> attrs (read_attr () :: acc)
      | None -> fail "unexpected end of input"
    in
    attrs []
  and read_children () =
    (* children until '</'; stray text is skipped *)
    let rec go acc =
      match String.index_from_opt input !pos '<' with
      | None -> fail "missing closing tag"
      | Some j ->
          pos := j;
          if j + 1 < n && input.[j + 1] = '/' then begin
            pos := j + 2;
            List.rev acc
          end
          else if j + 3 < n && String.sub input j 4 = "<!--" then begin
            skip_misc ();
            go acc
          end
          else go (read_element () :: acc)
    in
    go []
  in
  let root = read_element () in
  skip_ws ();
  root

(* --- XES mapping --- *)

let attr key xml = List.assoc_opt key xml.attrs

let attr_is key value xml =
  match attr key xml with Some v -> String.equal v value | None -> false

let find_string_attr key xml =
  List.find_map
    (fun child ->
      if child.tag = "string" && attr_is "key" key child then attr "value" child
      else None)
    xml.children

let find_date_attr key xml =
  List.find_map
    (fun child ->
      if child.tag = "date" && attr_is "key" key child then attr "value" child
      else None)
    xml.children

let of_string input =
  match parse_xml input with
  | exception Xml_error (pos, msg) -> Error (Printf.sprintf "XML error at %d: %s" pos msg)
  | root ->
      if root.tag <> "log" then Error "expected a <log> root element"
      else begin
        let dropped = ref 0 in
        let result = ref (Ok Trace.empty) in
        List.iteri
          (fun i trace_xml ->
            match !result with
            | Error _ -> ()
            | Ok acc ->
                if trace_xml.tag = "trace" then begin
                  let id =
                    match find_string_attr "concept:name" trace_xml with
                    | Some name -> name
                    | None -> Printf.sprintf "trace%06d" i
                  in
                  let tuple = ref Tuple.empty in
                  List.iter
                    (fun event_xml ->
                      if event_xml.tag = "event" then
                        match
                          ( find_string_attr "concept:name" event_xml,
                            find_date_attr "time:timestamp" event_xml )
                        with
                        | Some name, Some date -> (
                            match minutes_of_iso8601 date with
                            | Ok ts ->
                                if Tuple.mem name !tuple then incr dropped
                                else tuple := Tuple.add name ts !tuple
                            | Error msg -> result := Error msg)
                        | _ -> () (* events without name/timestamp are skipped *))
                    trace_xml.children;
                  match !result with
                  | Ok _ -> result := Ok (Trace.add id !tuple acc)
                  | Error _ -> ()
                end)
          root.children;
        Result.map (fun trace -> (trace, !dropped)) !result
      end

let xml_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '&' -> "&amp;"
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string buf "<log xes.version=\"1.0\">\n";
  Trace.fold
    (fun id tuple () ->
      Buffer.add_string buf "  <trace>\n";
      Buffer.add_string buf
        (Printf.sprintf "    <string key=\"concept:name\" value=\"%s\"/>\n"
           (xml_escape id));
      let events =
        Tuple.bindings tuple |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
      in
      List.iter
        (fun (e, ts) ->
          Buffer.add_string buf "    <event>\n";
          Buffer.add_string buf
            (Printf.sprintf "      <string key=\"concept:name\" value=\"%s\"/>\n"
               (xml_escape e));
          Buffer.add_string buf
            (Printf.sprintf "      <date key=\"time:timestamp\" value=\"%s\"/>\n"
               (iso8601_of_minutes ts));
          Buffer.add_string buf "    </event>\n")
        events;
      Buffer.add_string buf "  </trace>\n")
    trace ();
  Buffer.add_string buf "</log>\n";
  Buffer.contents buf

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let write_file path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string trace))
