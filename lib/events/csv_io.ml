let header = "tuple_id,event,timestamp"
let header_fields = String.split_on_char ',' header

(* RFC-4180-style quoting: a field is quoted when it contains a comma, a
   quote, a CR/LF, or leading/trailing whitespace (unquoted fields are
   trimmed on read, so bare whitespace would not round-trip). *)
let needs_quoting s =
  (s <> "" && (s.[0] = ' ' || s.[String.length s - 1] = ' '))
  || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r' || c = '\t') s

let quote_field s =
  "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let field s = if needs_quoting s then quote_field s else s

let trace_to_string trace =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.fold
    (fun id tuple () ->
      List.iter
        (fun (e, ts) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d\n" (field id) (field e) ts))
        (Tuple.bindings tuple))
    trace ();
  Buffer.contents buf

(* Quote-aware record reader over the whole input (quoted fields may
   contain commas and newlines, so records cannot be found by splitting
   on '\n' first). Returns the records with the line number each started
   on, or [Error] at the first ambiguous construct — a quote opening
   mid-field, text following a closing quote, or an unterminated quote —
   rather than guessing and corrupting data. *)
let records_of_string_raw input =
  let n = String.length input in
  let pos = ref 0 and line = ref 1 in
  let records = ref [] in
  let error = ref None in
  let fail lineno msg = if !error = None then error := Some (lineno, msg) in
  while !pos < n && !error = None do
    let start_line = !line in
    (* parse one record *)
    let fields = ref [] and buf = Buffer.create 16 in
    let quoted = ref false (* current field was quoted *) in
    let finished = ref false in
    let flush_field () =
      let raw = Buffer.contents buf in
      Buffer.clear buf;
      let v = if !quoted then raw else String.trim raw in
      quoted := false;
      fields := v :: !fields
    in
    while not !finished && !error = None do
      if !pos >= n then begin
        flush_field ();
        finished := true
      end
      else
        match input.[!pos] with
        | '\n' ->
            incr pos;
            incr line;
            flush_field ();
            finished := true
        | '\r' when !pos + 1 < n && input.[!pos + 1] = '\n' ->
            pos := !pos + 2;
            incr line;
            flush_field ();
            finished := true
        | ',' ->
            incr pos;
            flush_field ()
        | '"' when String.trim (Buffer.contents buf) = "" && not !quoted ->
            (* opening quote (only whitespace seen so far in this field) *)
            Buffer.clear buf;
            incr pos;
            let closed = ref false in
            while (not !closed) && !error = None do
              if !pos >= n then fail start_line "unterminated quoted field"
              else
                match input.[!pos] with
                | '"' when !pos + 1 < n && input.[!pos + 1] = '"' ->
                    Buffer.add_char buf '"';
                    pos := !pos + 2
                | '"' ->
                    incr pos;
                    closed := true
                | '\n' as c ->
                    incr line;
                    Buffer.add_char buf c;
                    incr pos
                | c ->
                    Buffer.add_char buf c;
                    incr pos
            done;
            quoted := true;
            (* only whitespace may follow before the delimiter *)
            while
              !error = None && !pos < n
              && (match input.[!pos] with ' ' | '\t' -> true | _ -> false)
            do
              incr pos
            done;
            if
              !error = None && !pos < n
              && not
                   (match input.[!pos] with
                   | ',' | '\n' -> true
                   | '\r' -> !pos + 1 < n && input.[!pos + 1] = '\n'
                   | _ -> false)
            then fail !line "text after closing quote"
        | '"' ->
            fail !line "quote inside unquoted field (quote the whole field)"
        | c ->
            Buffer.add_char buf c;
            incr pos
    done;
    if !error = None then records := (start_line, List.rev !fields) :: !records
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !records)

let records_of_string input =
  match records_of_string_raw input with
  | Error (lineno, msg) -> Error (Printf.sprintf "line %d: %s" lineno msg)
  | Ok records -> Ok records

let split_line line =
  match records_of_string_raw line with
  | Error (_, msg) -> Error msg
  | Ok [] -> Ok []
  | Ok [ (_, fields) ] -> Ok fields
  | Ok _ ->
      (* callers split on '\n' first, so this only fires on misuse *)
      Error "unexpected newline in line"

let is_blank = function [] | [ "" ] -> true | _ -> false

let trace_of_string s =
  match records_of_string s with
  | Error _ as e -> e
  | Ok records ->
      let rec go ~seen_data acc = function
        | [] -> Ok acc
        | (_, fields) :: rest when is_blank fields -> go ~seen_data acc rest
        | (_, fields) :: rest when (not seen_data) && fields = header_fields ->
            (* the header is recognised on the first non-blank record, not
               just at line 1 (leading blank lines are common) *)
            go ~seen_data:true acc rest
        | (lineno, [ id; e; ts ]) :: rest -> (
            match int_of_string_opt (String.trim ts) with
            | Some ts ->
                let tuple =
                  match Trace.find_opt acc id with
                  | Some t -> t
                  | None -> Tuple.empty
                in
                go ~seen_data:true (Trace.add id (Tuple.add e ts tuple) acc) rest
            | None -> Error (Printf.sprintf "line %d: bad timestamp %S" lineno ts))
        | (lineno, _) :: _ ->
            Error (Printf.sprintf "line %d: expected 3 comma-separated fields" lineno)
      in
      go ~seen_data:false Trace.empty records

let write_trace path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_to_string trace))

let read_trace path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> trace_of_string s
  | exception Sys_error msg -> Error msg
