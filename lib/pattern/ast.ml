module Event = Events.Event

type window = { atleast : Events.Time.t option; within : Events.Time.t option }

type t =
  | Event of Event.t
  | Seq of t list * window
  | And of t list * window

let compare_window w v =
  let c = Option.compare Int.compare w.atleast v.atleast in
  if c <> 0 then c else Option.compare Int.compare w.within v.within

let no_window = { atleast = None; within = None }
let window ?atleast ?within () = { atleast; within }
let event e = Event e
let seq ?atleast ?within ps = Seq (ps, { atleast; within })
let and_ ?atleast ?within ps = And (ps, { atleast; within })

let rec compare p q =
  match (p, q) with
  | Event a, Event b -> Event.compare a b
  | Event _, _ -> -1
  | _, Event _ -> 1
  | Seq (ps, w), Seq (qs, v) | And (ps, w), And (qs, v) ->
      let c = List.compare compare ps qs in
      if c <> 0 then c else compare_window w v
  | Seq _, And _ -> -1
  | And _, Seq _ -> 1

let equal p q = compare p q = 0

let rec events = function
  | Event e -> Event.Set.singleton e
  | Seq (ps, _) | And (ps, _) ->
      List.fold_left (fun acc p -> Event.Set.union acc (events p)) Event.Set.empty ps

let events_of_set ps =
  List.fold_left (fun acc p -> Event.Set.union acc (events p)) Event.Set.empty ps

let rec size = function
  | Event _ -> 1
  | Seq (ps, _) | And (ps, _) -> List.fold_left (fun acc p -> acc + size p) 1 ps

let rec depth = function
  | Event _ -> 1
  | Seq (ps, _) | And (ps, _) ->
      1 + List.fold_left (fun acc p -> Stdlib.max acc (depth p)) 0 ps

let rec count_and = function
  | Event _ -> 0
  | Seq (ps, _) -> List.fold_left (fun acc p -> acc + count_and p) 0 ps
  | And (ps, _) -> List.fold_left (fun acc p -> acc + count_and p) 1 ps

type shape = Simple | And_no_seq_inside | General

let rec has_seq = function
  | Event _ -> false
  | Seq _ -> true
  | And (ps, _) -> List.exists has_seq ps

let rec seq_inside_and = function
  | Event _ -> false
  | Seq (ps, _) -> List.exists seq_inside_and ps
  | And (ps, _) -> List.exists has_seq ps || List.exists seq_inside_and ps

let classify p =
  if count_and p = 0 then Simple
  else if seq_inside_and p then General
  else And_no_seq_inside

let classify_set ps =
  let join a b =
    match (a, b) with
    | General, _ | _, General -> General
    | And_no_seq_inside, _ | _, And_no_seq_inside -> And_no_seq_inside
    | Simple, Simple -> Simple
  in
  List.fold_left (fun acc p -> join acc (classify p)) Simple ps

type error =
  | Empty_composition
  | Inverted_window of Events.Time.t * Events.Time.t
  | Negative_bound of Events.Time.t
  | Duplicate_event of Event.t

let pp_error ppf = function
  | Empty_composition -> Format.fprintf ppf "SEQ/AND with no sub-pattern"
  | Inverted_window (a, b) -> Format.fprintf ppf "ATLEAST %d WITHIN %d requires %d <= %d" a b a b
  | Negative_bound a -> Format.fprintf ppf "negative window bound %d" a
  | Duplicate_event e -> Format.fprintf ppf "event %a occurs twice in one pattern" Event.pp e

let ( let* ) = Result.bind

let check_window { atleast; within } =
  let check_bound = function
    | Some a when a < 0 -> Error (Negative_bound a)
    | _ -> Ok ()
  in
  let* () = check_bound atleast in
  let* () = check_bound within in
  match (atleast, within) with
  | Some a, Some b when a > b -> Error (Inverted_window (a, b))
  | _ -> Ok ()

let validate p =
  (* A single scan collects seen events to reject duplicates within one
     pattern: a tuple binds each event once, so "E then E again" cannot be
     expressed (the paper's tuples have no duplicated events). *)
  let rec go seen = function
    | Event e ->
        if Event.Set.mem e seen then Error (Duplicate_event e)
        else Ok (Event.Set.add e seen)
    | Seq (ps, w) | And (ps, w) ->
        let* () = check_window w in
        if ps = [] then Error Empty_composition
        else
          List.fold_left
            (fun acc p ->
              let* seen = acc in
              go seen p)
            (Ok seen) ps
  in
  Result.map (fun (_ : Event.Set.t) -> ()) (go Event.Set.empty p)

let validate_set ps =
  List.fold_left
    (fun acc p ->
      let* () = acc in
      validate p)
    (Ok ()) ps

let pp_window ppf { atleast; within } =
  Option.iter (fun a -> Format.fprintf ppf " ATLEAST %d" a) atleast;
  Option.iter (fun b -> Format.fprintf ppf " WITHIN %d" b) within

let rec pp ppf = function
  | Event e -> Event.pp ppf e
  | Seq (ps, w) -> pp_composite ppf "SEQ" ps w
  | And (ps, w) -> pp_composite ppf "AND" ps w

and pp_composite ppf kw ps w =
  Format.fprintf ppf "%s(%a)%a" kw
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
    ps pp_window w

let to_string p = Format.asprintf "%a" pp p
