(** Parser for the paper's pattern surface syntax.

    Examples of accepted input:
    {v
      SEQ(AND(E1, E3) WITHIN 30, AND(E2, E4) WITHIN 30) ATLEAST 2 hours
      AND(Payment, Add_penalty) ATLEAST 10 WITHIN 480
      E1
    v}

    Keywords are case-insensitive. Durations are integers with an optional
    unit ([m]/[min]/[minute]/[minutes] = 1, [h]/[hour]/[hours] = 60,
    [d]/[day]/[days] = 1440); the base unit is minutes, matching the paper's
    experiments. [ATLEAST] and [WITHIN] may appear in either order, each at
    most once. Parsed patterns are validated with {!Ast.validate}.

    {b Bounded Kleene sugar.} [REPEAT(E, k)] (k >= 1, E a single event
    type) desugars to [SEQ(E#g_1, ..., E#g_k)] over fresh repeat-alias
    events ({!Events.Event.repeat_alias}; [g] numbers the REPEAT nodes of
    the parse). Batch tuples bind the alias names directly; the streaming
    {!Cep.Detector} fills them from plain [E] instances. The paper leaves
    unbounded Kleene open; this is the bounded fragment. *)

val pattern : string -> (Ast.t, string) result
(** Parse a single pattern; the error message includes the 1-based line and
    column of the failure plus the byte offset. *)

val pattern_exn : string -> Ast.t
(** @raise Invalid_argument on parse or validation failure. *)

val pattern_set : string -> (Ast.t list, string) result
(** Parse a set of patterns separated by [';'] or newlines. *)
