type token =
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Int of int
  | Ident of string
  | Kw_seq
  | Kw_and
  | Kw_repeat
  | Kw_atleast
  | Kw_within
  | Eof

let pp_token ppf = function
  | Lparen -> Format.fprintf ppf "'('"
  | Rparen -> Format.fprintf ppf "')'"
  | Comma -> Format.fprintf ppf "','"
  | Semicolon -> Format.fprintf ppf "';'"
  | Int n -> Format.fprintf ppf "number %d" n
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Kw_seq -> Format.fprintf ppf "SEQ"
  | Kw_and -> Format.fprintf ppf "AND"
  | Kw_repeat -> Format.fprintf ppf "REPEAT"
  | Kw_atleast -> Format.fprintf ppf "ATLEAST"
  | Kw_within -> Format.fprintf ppf "WITHIN"
  | Eof -> Format.fprintf ppf "end of input"

exception Parse_error of int * string

let fail pos fmt = Format.kasprintf (fun msg -> raise (Parse_error (pos, msg))) fmt

(* 1-based line/column of a byte offset, for messages on multi-line input. *)
let line_col input pos =
  let limit = min pos (String.length input) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to limit - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, limit - !bol + 1)

let error_message input pos msg =
  let line, col = line_col input pos in
  Printf.sprintf "parse error at line %d, column %d (offset %d): %s" line col pos
    msg

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let keyword_of s =
  match String.uppercase_ascii s with
  | "SEQ" -> Some Kw_seq
  | "AND" -> Some Kw_and
  | "REPEAT" -> Some Kw_repeat
  | "ATLEAST" -> Some Kw_atleast
  | "WITHIN" -> Some Kw_within
  | _ -> None

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push tok pos = tokens := (tok, pos) :: !tokens in
  while !i < n do
    let c = input.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Lparen pos; incr i)
    else if c = ')' then (push Rparen pos; incr i)
    else if c = ',' then (push Comma pos; incr i)
    else if c = ';' then (push Semicolon pos; incr i)
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit input.[!j] do incr j done;
      let digits = String.sub input !i (!j - !i) in
      (match int_of_string_opt digits with
      | Some v -> push (Int v) pos
      | None -> fail pos "integer literal out of range: %s" digits);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let word = String.sub input !i (!j - !i) in
      (match keyword_of word with
      | Some kw -> push kw pos
      | None -> push (Ident word) pos);
      i := !j
    end
    else fail pos "unexpected character %C" c
  done;
  push Eof n;
  Array.of_list (List.rev !tokens)

type state = {
  tokens : (token * int) array;
  mutable cursor : int;
  mutable groups : int; (* REPEAT nodes seen so far, for alias numbering *)
}

let peek st = fst st.tokens.(st.cursor)
let pos st = snd st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let expect st tok =
  if peek st = tok then advance st
  else fail (pos st) "expected %a but found %a" pp_token tok pp_token (peek st)

let unit_factor = function
  | "m" | "min" | "mins" | "minute" | "minutes" -> Some 1
  | "h" | "hour" | "hours" -> Some 60
  | "d" | "day" | "days" -> Some 1440
  | _ -> None

let parse_duration st =
  match peek st with
  | Int v ->
      advance st;
      (match peek st with
      | Ident u -> (
          match unit_factor (String.lowercase_ascii u) with
          | Some f ->
              advance st;
              v * f
          | None -> v)
      | _ -> v)
  | tok -> fail (pos st) "expected a duration but found %a" pp_token tok

let parse_window st =
  let atleast = ref None and within = ref None in
  let rec loop () =
    match peek st with
    | Kw_atleast ->
        if !atleast <> None then fail (pos st) "duplicate ATLEAST";
        advance st;
        atleast := Some (parse_duration st);
        loop ()
    | Kw_within ->
        if !within <> None then fail (pos st) "duplicate WITHIN";
        advance st;
        within := Some (parse_duration st);
        loop ()
    | _ -> ()
  in
  loop ();
  { Ast.atleast = !atleast; within = !within }

let rec parse_pattern st =
  match peek st with
  | Ident e ->
      advance st;
      Ast.Event e
  | Kw_repeat ->
      (* REPEAT(E, k): bounded Kleene sugar — k sequential copies of the
         event type E, as alias events E#g_1 .. E#g_k (see
         {!Events.Event.repeat_alias}). *)
      advance st;
      let open_pos = pos st in
      expect st Lparen;
      let base =
        match peek st with
        | Ident e ->
            advance st;
            e
        | tok -> fail (pos st) "REPEAT needs an event type, found %a" pp_token tok
      in
      expect st Comma;
      let count =
        match peek st with
        | Int k when k >= 1 ->
            advance st;
            k
        | Int k -> fail (pos st) "REPEAT count must be >= 1, found %d" k
        | tok -> fail (pos st) "REPEAT needs a count, found %a" pp_token tok
      in
      if peek st <> Rparen then fail open_pos "expected ')' closing REPEAT";
      advance st;
      let w = parse_window st in
      st.groups <- st.groups + 1;
      let group = st.groups in
      Ast.Seq
        ( List.init count (fun i ->
              Ast.Event (Events.Event.repeat_alias ~base ~group ~index:(i + 1))),
          w )
  | Kw_seq ->
      advance st;
      let ps = parse_args st in
      let w = parse_window st in
      Ast.Seq (ps, w)
  | Kw_and ->
      advance st;
      let ps = parse_args st in
      let w = parse_window st in
      Ast.And (ps, w)
  | tok -> fail (pos st) "expected a pattern but found %a" pp_token tok

and parse_args st =
  expect st Lparen;
  let rec loop acc =
    let p = parse_pattern st in
    match peek st with
    | Comma ->
        advance st;
        loop (p :: acc)
    | Rparen ->
        advance st;
        List.rev (p :: acc)
    | tok -> fail (pos st) "expected ',' or ')' but found %a" pp_token tok
  in
  loop []

let run_validated p =
  match Ast.validate p with
  | Ok () -> Ok p
  | Error e -> Error (Format.asprintf "invalid pattern: %a" Ast.pp_error e)

let pattern input =
  match
    let st = { tokens = tokenize input; cursor = 0; groups = 0 } in
    let p = parse_pattern st in
    expect st Eof;
    p
  with
  | p -> run_validated p
  | exception Parse_error (pos, msg) -> Error (error_message input pos msg)

let pattern_exn input =
  match pattern input with Ok p -> p | Error msg -> invalid_arg msg

let pattern_set input =
  match
    let st = { tokens = tokenize input; cursor = 0; groups = 0 } in
    let rec loop acc =
      let p = parse_pattern st in
      match peek st with
      | Semicolon ->
          advance st;
          if peek st = Eof then (advance st; List.rev (p :: acc))
          else loop (p :: acc)
      | Eof ->
          advance st;
          List.rev (p :: acc)
      | tok -> fail (pos st) "expected ';' or end of input but found %a" pp_token tok
    in
    loop []
  with
  | ps ->
      List.fold_left
        (fun acc p ->
          Result.bind acc (fun acc ->
              Result.map (fun p -> p :: acc) (run_validated p)))
        (Ok []) ps
      |> Result.map List.rev
  | exception Parse_error (pos, msg) -> Error (error_message input pos msg)
