type t = {
  n : int;
  mutable to_ : int array;
  mutable cap : int array; (* residual capacity *)
  mutable cost : int array;
  mutable from_ : int array;
  mutable m : int; (* number of arcs (forward + reverse) *)
}

type edge = int (* index of the forward arc; reverse is [edge lxor 1] *)

let create n = { n; to_ = [||]; cap = [||]; cost = [||]; from_ = [||]; m = 0 }
let num_nodes g = g.n

let grow g =
  let cap_now = Array.length g.to_ in
  if g.m + 2 > cap_now then begin
    let ncap = max 16 (2 * cap_now) in
    let extend a = Array.append a (Array.make (ncap - cap_now) 0) (* check: idx - arc-array sizes *) in
    g.to_ <- extend g.to_;
    g.cap <- extend g.cap;
    g.cost <- extend g.cost;
    g.from_ <- extend g.from_
  end

let add_edge g ~src ~dst ~cap ~cost =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Mcf.add_edge: node out of range";
  if cap < 0 then invalid_arg "Mcf.add_edge: negative capacity";
  grow g;
  let e = g.m in
  g.to_.(e) <- dst;
  g.from_.(e) <- src;
  g.cap.(e) <- cap;
  g.cost.(e) <- cost;
  g.to_.(e + 1) <- src;
  g.from_.(e + 1) <- dst;
  g.cap.(e + 1) <- 0;
  g.cost.(e + 1) <- Numeric.Checked.neg cost;
  g.m <- g.m + 2;
  e

(* One Bellman-Ford sweep initialised at distance 0 everywhere (a virtual
   zero-cost source to all nodes): any relaxation surviving n passes exposes
   a negative residual cycle, recovered by walking predecessor arcs. *)
let find_negative_cycle g =
  let dist = Array.make g.n 0 in
  let pred = Array.make g.n (-1) in
  let updated_node = ref (-1) in
  for _pass = 1 to g.n do
    updated_node := -1;
    for e = 0 to g.m - 1 do
      if g.cap.(e) > 0 then begin
        let u = g.from_.(e) and v = g.to_.(e) in
        let cand = Numeric.Checked.add dist.(u) g.cost.(e) in
        if cand < dist.(v) then begin
          dist.(v) <- cand;
          pred.(v) <- e;
          updated_node := v
        end
      end
    done
  done;
  if !updated_node < 0 then None
  else begin
    (* Walk back n steps to guarantee landing inside the cycle. *)
    let v = ref !updated_node in
    for _ = 1 to g.n do
      v := g.from_.(pred.(!v))
    done;
    let start = !v in
    let rec collect v acc =
      let e = pred.(v) in
      let u = g.from_.(e) in
      if u = start then e :: acc else collect u (e :: acc)
    in
    Some (collect start [])
  end

let min_cost_circulation g =
  let total = ref 0 in
  let rec loop () =
    match find_negative_cycle g with
    | None -> !total
    | Some cycle ->
        let bottleneck =
          List.fold_left (fun acc e -> min acc g.cap.(e)) max_int cycle
        in
        List.iter
          (fun e ->
            g.cap.(e) <- g.cap.(e) - bottleneck (* check: arith - bottleneck <= cap by construction *);
            g.cap.(e lxor 1) <- Numeric.Checked.add g.cap.(e lxor 1) bottleneck;
            total := Numeric.Checked.add !total (Numeric.Checked.mul bottleneck g.cost.(e)))
          cycle;
        loop ()
  in
  loop ()

let flow g e = g.cap.(e lxor 1)

let iter_residual g f =
  for e = 0 to g.m - 1 do
    if g.cap.(e) > 0 then f ~src:g.from_.(e) ~dst:g.to_.(e) ~cost:g.cost.(e)
  done

let residual_distances g ~source =
  if source < 0 || source >= g.n then invalid_arg "Mcf.residual_distances: bad source";
  let dist = Array.make g.n None in
  dist.(source) <- Some 0;
  let changed = ref true in
  let passes = ref 0 in
  while !changed do
    changed := false;
    incr passes;
    if !passes > g.n then
      invalid_arg "Mcf.residual_distances: negative residual cycle";
    for e = 0 to g.m - 1 do
      if g.cap.(e) > 0 then
        match dist.(g.from_.(e)) with
        | None -> ()
        | Some du ->
            let cand = Numeric.Checked.add du g.cost.(e) in
            let better =
              match dist.(g.to_.(e)) with None -> true | Some dv -> cand < dv
            in
            if better then begin
              dist.(g.to_.(e)) <- Some cand;
              changed := true
            end
    done
  done;
  dist
