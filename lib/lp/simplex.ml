module Rat = Numeric.Rat

type var = int
type sense = Le | Ge | Eq

type constr = { terms : (Rat.t * var) list; sense : sense; rhs : Rat.t }

type model = {
  mutable nvars : int;
  mutable names : string list; (* reversed *)
  mutable constraints : constr list; (* reversed *)
  mutable objective : (Rat.t * var) list;
}

type outcome =
  | Optimal of { objective : Rat.t; values : Rat.t array }
  | Infeasible
  | Unbounded

let solves_c = Obs.counter "simplex.solves"
let pivots_c = Obs.counter "simplex.pivots"
let phase1_c = Obs.counter "simplex.phase1_iters"
let phase2_c = Obs.counter "simplex.phase2_iters"
let degenerate_c = Obs.counter "simplex.degenerate_pivots"
let infeasible_c = Obs.counter "simplex.infeasible"

let create () = { nvars = 0; names = []; constraints = []; objective = [] }

let copy m =
  {
    nvars = m.nvars;
    names = m.names;
    constraints = m.constraints;
    objective = m.objective;
  }

let add_var ?(name = "") m =
  let v = m.nvars in
  m.nvars <- v + 1;
  m.names <- name :: m.names;
  v

let num_vars m = m.nvars

let add_constraint m terms sense rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Simplex.add_constraint: unknown variable")
    terms;
  m.constraints <- { terms; sense; rhs } :: m.constraints

let set_objective m terms =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Simplex.set_objective: unknown variable")
    terms;
  m.objective <- terms

(* The tableau holds one row per constraint plus a separate reduced-cost row.
   Column layout: structural variables, then slacks/surpluses, then
   artificials, then the right-hand side as the last column. *)

type tableau = {
  rows : Rat.t array array;
  obj : Rat.t array; (* reduced costs; last cell = -(objective value) *)
  basis : int array; (* basis.(i) = column basic in row i *)
  width : int; (* number of variable columns (rhs excluded) *)
}

let pivot tb r c =
  Obs.incr pivots_c;
  if Rat.sign tb.rows.(r).(tb.width) = 0 then Obs.incr degenerate_c;
  let piv = tb.rows.(r).(c) in
  assert (Rat.sign piv <> 0);
  let row = tb.rows.(r) in
  for j = 0 to tb.width do
    row.(j) <- Rat.div row.(j) piv
  done;
  let eliminate target =
    let f = target.(c) in
    if Rat.sign f <> 0 then
      for j = 0 to tb.width do
        target.(j) <- Rat.sub target.(j) (Rat.mul f row.(j))
      done
  in
  Array.iteri (fun i target -> if i <> r then eliminate target) tb.rows;
  eliminate tb.obj;
  tb.basis.(r) <- c

(* Bland's rule: entering = smallest eligible column index; leaving = among
   minimum-ratio rows, the one whose basic variable has the smallest index.
   This precludes cycling under degeneracy. *)
let rec optimize ~iters ~allowed tb =
  Obs.incr iters;
  let entering = ref (-1) in
  (try
     for j = 0 to tb.width - 1 do
       if allowed j && Rat.sign tb.obj.(j) < 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let c = !entering in
    let best_row = ref (-1) and best_ratio = ref Rat.zero in
    Array.iteri
      (fun i row ->
        if Rat.sign row.(c) > 0 then begin
          let ratio = Rat.div row.(tb.width) row.(c) in
          if
            !best_row < 0
            || Rat.compare ratio !best_ratio < 0
            || (Rat.equal ratio !best_ratio && tb.basis.(i) < tb.basis.(!best_row))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end)
      tb.rows;
    if !best_row < 0 then `Unbounded
    else begin
      pivot tb !best_row c;
      optimize ~iters ~allowed tb
    end
  end

let solve m =
  Obs.incr solves_c;
  let constraints = Array.of_list (List.rev m.constraints) in
  let nrows = Array.length constraints in
  let n = m.nvars in
  (* One slack/surplus column per inequality, one artificial per Ge/Eq row
     (after normalising the rhs to be non-negative). *)
  let normalized =
    Array.map
      (fun { terms; sense; rhs } ->
        if Rat.sign rhs >= 0 then (terms, sense, rhs)
        else
          let terms = List.map (fun (c, v) -> (Rat.neg c, v)) terms in
          let sense = match sense with Le -> Ge | Ge -> Le | Eq -> Eq in
          (terms, sense, Rat.neg rhs))
      constraints
  in
  let num_slack =
    Array.fold_left
      (fun acc (_, sense, _) -> match sense with Le | Ge -> acc + 1 | Eq -> acc)
      0 normalized
  in
  let num_art =
    Array.fold_left
      (fun acc (_, sense, _) -> match sense with Ge | Eq -> acc + 1 | Le -> acc)
      0 normalized
  in
  let art_start = n + num_slack (* check: idx - tableau column counts *) in
  let width = n + num_slack + num_art (* check: idx - tableau column counts *) in
  let rows = Array.init nrows (fun _ -> Array.make (width + 1) Rat.zero) in
  let basis = Array.make nrows (-1) in
  let next_slack = ref n and next_art = ref art_start in
  Array.iteri
    (fun i (terms, sense, rhs) ->
      let row = rows.(i) in
      List.iter (fun (c, v) -> row.(v) <- Rat.add row.(v) c) terms;
      row.(width) <- rhs;
      (match sense with
      | Le ->
          row.(!next_slack) <- Rat.one;
          basis.(i) <- !next_slack;
          incr next_slack
      | Ge ->
          row.(!next_slack) <- Rat.minus_one;
          incr next_slack
      | Eq -> ());
      match sense with
      | Ge | Eq ->
          row.(!next_art) <- Rat.one;
          basis.(i) <- !next_art;
          incr next_art
      | Le -> ())
    normalized;
  let tb = { rows; obj = Array.make (width + 1) Rat.zero; basis; width } in
  (* Phase 1: minimise the sum of artificials. Reduced costs start as the
     raw costs (1 on artificial columns), then basic columns are priced out
     by subtracting their rows. *)
  if num_art > 0 then begin
    if Obs.Trace.should_emit () then
      Obs.Trace.emit (Obs.Trace.Simplex_phase { phase = 1 });
    for j = art_start to width - 1 do
      tb.obj.(j) <- Rat.one
    done;
    Array.iteri
      (fun i b ->
        if b >= art_start then
          for j = 0 to width do
            tb.obj.(j) <- Rat.sub tb.obj.(j) tb.rows.(i).(j)
          done)
      tb.basis;
    match optimize ~iters:phase1_c ~allowed:(fun _ -> true) tb with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal ->
        if Rat.sign (Rat.neg tb.obj.(width)) > 0 then raise Exit
        else
          (* Degenerate artificials may linger in the basis at value zero;
             pivot them out on any structural/slack column, or leave them
             (their row is then redundant and stays at zero). *)
          Array.iteri
            (fun i b ->
              if b >= art_start then begin
                let col = ref (-1) in
                (try
                   for j = 0 to art_start - 1 do
                     if Rat.sign tb.rows.(i).(j) <> 0 then begin
                       col := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !col >= 0 then pivot tb i !col
              end)
            tb.basis
  end;
  (* Phase 2: real objective, artificial columns barred from entering. *)
  let cost = Array.make width Rat.zero in
  List.iter (fun (c, v) -> cost.(v) <- Rat.add cost.(v) c) m.objective;
  Array.fill tb.obj 0 (width + 1) Rat.zero;
  Array.blit cost 0 tb.obj 0 width;
  Array.iteri
    (fun i b ->
      if b >= 0 && b < width && Rat.sign cost.(b) <> 0 then
        let f = cost.(b) in
        for j = 0 to width do
          tb.obj.(j) <- Rat.sub tb.obj.(j) (Rat.mul f tb.rows.(i).(j))
        done)
    tb.basis;
  if Obs.Trace.should_emit () then
    Obs.Trace.emit (Obs.Trace.Simplex_phase { phase = 2 });
  match optimize ~iters:phase2_c ~allowed:(fun j -> j < art_start) tb with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let values = Array.make n Rat.zero in
      Array.iteri
        (fun i b -> if b >= 0 && b < n then values.(b) <- tb.rows.(i).(width))
        tb.basis;
      let objective =
        List.fold_left
          (fun acc (c, v) -> Rat.add acc (Rat.mul c values.(v)))
          Rat.zero m.objective
      in
      Optimal { objective; values }

let solve_checked m =
  try solve m
  with Exit ->
    Obs.incr infeasible_c;
    Infeasible

(* Direct call when tracing is off: the span wrapper (and its closure)
   exists only on the sampled-in path. *)
let solve m =
  if Obs.Trace.should_emit () then
    Obs.Trace.with_span "simplex.solve" (fun () ->
        let outcome = solve_checked m in
        Obs.Trace.emit
          (Obs.Trace.Simplex_outcome
             {
               outcome =
                 (match outcome with
                 | Optimal _ -> "optimal"
                 | Infeasible -> "infeasible"
                 | Unbounded -> "unbounded");
             });
        outcome)
  else solve_checked m

let pp_outcome ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal { objective; values } ->
      Format.fprintf ppf "optimal %a at [%a]" Rat.pp objective
        (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Rat.pp)
        (Array.to_seq values)
