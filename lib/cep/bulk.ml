module Trace = Events.Trace

let default_domains () = min 8 (Domain.recommended_domain_count ())

let maps_c = Obs.counter "bulk.parallel_maps"
let items_c = Obs.counter "bulk.items"
let domains_c = Obs.counter "bulk.domains_spawned"
let explained_c = Obs.counter "bulk.tuples_explained"
let repaired_c = Obs.counter "bulk.tuples_repaired"
let failed_c = Obs.counter "bulk.tuples_failed"

(* Split [items] into [k] round-robin chunks (balanced even when costs
   correlate with position), run [f] on each chunk in its own domain, and
   reassemble in the original order. *)
let parallel_map ~domains f items =
  if domains < 1 then invalid_arg "Bulk: domains must be >= 1";
  let items = Array.of_list items in
  let n = Array.length items in
  Obs.incr maps_c;
  Obs.add items_c n;
  if domains = 1 || n <= 1 then Array.to_list (Array.map f items)
  else begin
    let k = min domains n in
    Obs.add domains_c (k - 1);
    let results = Array.make n None in
    let worker w () =
      let out = ref [] in
      let i = ref w in
      while !i < n do
        out := (!i, f items.(!i)) :: !out;
        i := !i + k
      done;
      !out
    in
    let spawned = List.init (k - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    let own = worker 0 () in
    let collect chunk = List.iter (fun (i, r) -> results.(i) <- Some r) chunk in
    collect own;
    List.iter (fun d -> collect (Domain.join d)) spawned;
    Array.to_list (Array.map Option.get results)
  end

let map_tuples ?domains f trace =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let bindings = Trace.bindings trace in
  parallel_map ~domains (fun (id, tuple) -> (id, f id tuple)) bindings

let explain_trace ?domains ?strategy ?engine ?solver ?max_cost patterns trace =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Bulk.explain_trace: %a" Pattern.Ast.pp_error e));
  let net = Tcn.Encode.pattern_set patterns in
  let within_budget cost =
    match max_cost with None -> true | Some budget -> cost <= budget
  in
  (* Each tuple is its own top-level trace (worker domains start with a
     fresh trace context), so --trace-sample applies per tuple. *)
  let repair _id tuple =
    Obs.incr explained_c;
    Obs.Trace.with_trace "bulk.tuple" @@ fun () ->
    if Pattern.Matcher.matches_set tuple patterns then tuple
    else
      match
        Explain.Modification.explain_network ?strategy ?engine ?solver net tuple
      with
      | Some { repaired; cost; _ } when within_budget cost ->
          Obs.incr repaired_c;
          repaired
      | Some _ | None -> tuple
      | exception Invalid_argument _ ->
          (* Repair gave up on this tuple (e.g. binding blow-up); keep it
             as-is but account for the failure instead of hiding it. *)
          Obs.incr failed_c;
          tuple
  in
  Obs.with_span "bulk.explain_trace" (fun () ->
      map_tuples ?domains repair trace
      |> List.fold_left (fun acc (id, tuple) -> Trace.add id tuple acc) Trace.empty)
