module Event = Events.Event
module Tuple = Events.Tuple

type instance = {
  event : Event.t;
  timestamp : Events.Time.t;
  tag : string;
}

type match_ = {
  tuple : Tuple.t;
  tags : (Event.t * string) list;
}

type engine = Naive | Compiled

type partial = {
  assigned : Tuple.t;
  p_tags : (Event.t * string) list;
  earliest : Events.Time.t;
}

type naive_buffer = { mutable partials : partial list (* newest first *) }

type state =
  | Naive_buffer of naive_buffer
  | Compiled_store of Plan.store

type t = {
  patterns : Pattern.Ast.t list;
  net : Tcn.Encode.set;
  required : Event.Set.t;
  horizon : int;
  max_partials : int;
  engine : engine;
  state : state;
  mutable count : int; (* naive only; the compiled store tracks its own *)
  mutable dropped : int; (* capacity evictions *)
  mutable horizon_evicted : int;
  mutable clock : Events.Time.t;
}

let fed_c = Obs.counter "detector.instances_fed"
let irrelevant_c = Obs.counter "detector.instances_irrelevant"
let matches_c = Obs.counter "detector.matches"
let horizon_c = Obs.counter "detector.evicted_horizon"
let capacity_c = Obs.counter "detector.dropped_capacity"
let live_g = Obs.gauge "detector.partials_live"
let peak_g = Obs.gauge "detector.partials_peak"
let plan_matrices_g = Obs.gauge "detector.plan.matrices"
let plan_fallback_c = Obs.counter "detector.plan.fallback_checks"

let root_within = function
  | Pattern.Ast.Event _ -> None
  | Pattern.Ast.Seq (_, w) | Pattern.Ast.And (_, w) -> w.within

(* Everything about a query that is independent of detector state:
   validation, horizon inference, the consistency pre-check and (for the
   compiled engine) the compiled plan. Sharded serving instantiates one
   detector per partition key; paying validation + compilation once per
   query instead of once per key is what makes that affordable. All fields
   are immutable after construction, so a template may be shared across
   domains — each [of_template] call builds a fresh mutable store. *)
type template = {
  tpl_patterns : Pattern.Ast.t list;
  tpl_net : Tcn.Encode.set;
  tpl_required : Event.Set.t;
  tpl_horizon : int;
  tpl_max_partials : int;
  tpl_engine : engine;
  tpl_plan : Plan.t option; (* [Some] iff [tpl_engine = Compiled] *)
}

let template ?(engine = Compiled) ?horizon ?(max_partials = 4096) patterns =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e ->
      invalid_arg (Format.asprintf "Detector.create: %a" Pattern.Ast.pp_error e));
  let horizon =
    match horizon with
    | Some h ->
        if h < 0 then invalid_arg "Detector.create: negative horizon" else h
    | None -> (
        match
          List.fold_left
            (fun acc p ->
              match (acc, root_within p) with
              | Some a, Some b -> Some (max a b)
              | None, w -> w
              | w, None -> w)
            None patterns
        with
        | Some h -> h
        | None ->
            invalid_arg
              "Detector.create: no root WITHIN bound; give ~horizon explicitly")
  in
  let report =
    Explain.Consistency.check ~strategy:Explain.Consistency.Pruned patterns
  in
  if not report.consistent then
    invalid_arg "Detector.create: inconsistent query (it can never match)";
  let plan =
    match engine with
    | Naive -> None
    | Compiled ->
        let plan =
          Compile.plan ~on_fallback:(fun () -> Obs.incr plan_fallback_c)
            patterns
        in
        Obs.gauge_set plan_matrices_g (Plan.matrix_count plan);
        Some plan
  in
  {
    tpl_patterns = patterns;
    tpl_net = Tcn.Encode.pattern_set patterns;
    tpl_required = Pattern.Ast.events_of_set patterns;
    tpl_horizon = horizon;
    tpl_max_partials = max_partials;
    tpl_engine = engine;
    tpl_plan = plan;
  }

let of_template tpl =
  let state =
    match tpl.tpl_plan with
    | None -> Naive_buffer { partials = [] }
    | Some plan ->
        Compiled_store
          (Plan.create_store ~horizon:tpl.tpl_horizon
             ~max_partials:tpl.tpl_max_partials plan)
  in
  {
    patterns = tpl.tpl_patterns;
    net = tpl.tpl_net;
    required = tpl.tpl_required;
    horizon = tpl.tpl_horizon;
    max_partials = tpl.tpl_max_partials;
    engine = tpl.tpl_engine;
    state;
    count = 0;
    dropped = 0;
    horizon_evicted = 0;
    clock = min_int;
  }

let template_horizon tpl = tpl.tpl_horizon

let create ?engine ?horizon ?max_partials patterns =
  of_template (template ?engine ?horizon ?max_partials patterns)

let engine t = t.engine

let partial_count t =
  match t.state with
  | Naive_buffer _ -> t.count
  | Compiled_store store -> Plan.live store

let dropped t = t.dropped
let dropped_capacity t = t.dropped
let evicted_horizon t = t.horizon_evicted

(* Targets an instance of a given type may fill: the event itself, plus
   every repeat alias of that base. Aliases are filled canonically in index
   order (the copies of one REPEAT group are totally ordered by the
   desugared SEQ, so the ascending-by-arrival assignment is complete). *)
let targets_of t instance_type = Compile.targets_of t.required instance_type

let alias_ready assigned e =
  match Event.alias_info e with
  | Some (_, _, 1) | None -> true
  | Some (base, group, index) ->
      Tuple.mem (Event.repeat_alias ~base ~group ~index:(index - 1)) assigned

let feasible t assigned =
  (Explain.Consistency.check_network ~strategy:Explain.Consistency.Pruned
     ~pinned:assigned t.net)
    .consistent

let complete t partial = Event.Set.for_all (fun e -> Tuple.mem e partial.assigned) t.required

(* The reference engine: enumerate straight off the AST with a full pinned
   consistency check per candidate extension. Kept as the differential-
   testing oracle for the compiled plan (the same role the flat binding
   sweep plays for Bnb). *)
let feed_naive t buf inst =
  (* Horizon eviction: a partial whose earliest instance is out of reach of
     the root window can never complete. This must happen on every feed —
     including instances of irrelevant types — or dead partials linger (and
     inflate the buffer) on streams dominated by other event types. *)
  let alive, expired =
    List.partition (fun p -> inst.timestamp - p.earliest <= t.horizon) buf.partials
  in
  (match expired with
  | [] -> ()
  | _ ->
      let n = List.length expired in
      t.horizon_evicted <- t.horizon_evicted + n;
      Obs.add horizon_c n;
      if Obs.Trace.should_emit () then
        Obs.Trace.emit
          (Obs.Trace.Detector_evict { reason = Horizon; count = n });
      buf.partials <- alive;
      t.count <- t.count - n);
  let targets = targets_of t inst.event in
  if targets = [] then begin
    Obs.incr irrelevant_c;
    Obs.gauge_set live_g t.count;
    if Obs.Trace.should_emit () then
      Obs.Trace.emit (Obs.Trace.Detector_admit { live = t.count });
    []
  end
  else begin
    let extend p target =
      if Tuple.mem target p.assigned || not (alias_ready p.assigned target) then None
      else
        let assigned = Tuple.add target inst.timestamp p.assigned in
        let candidate =
          {
            assigned;
            p_tags = (target, inst.tag) :: p.p_tags;
            earliest = min p.earliest inst.timestamp;
          }
        in
        if feasible t assigned then Some candidate else None
    in
    let fresh =
      List.filter_map
        (fun target ->
          if alias_ready Tuple.empty target then
            Some
              {
                assigned = Tuple.add target inst.timestamp Tuple.empty;
                p_tags = [ (target, inst.tag) ];
                earliest = inst.timestamp;
              }
          else None)
        targets
    in
    let extensions =
      List.concat_map (fun p -> List.filter_map (extend p) targets) alive
    in
    let matches, keep =
      List.partition (fun p -> complete t p) extensions
    in
    let matches =
      (* Pruning is conservative; the matcher is the final authority. *)
      List.filter (fun p -> Pattern.Matcher.matches_set p.assigned t.patterns) matches
    in
    let partials = keep @ fresh @ alive in
    let count = List.length partials in
    let partials, count =
      if count > t.max_partials then begin
        (* newest first: truncate the tail (oldest). Tail-recursive — the
           prefix length is the configurable max_partials, so a non-tail
           take could blow the stack on large capacities. *)
        let take k l =
          let rec go acc k = function
            | [] -> List.rev acc
            | _ when k = 0 -> List.rev acc
            | p :: rest -> go (p :: acc) (k - 1) rest
          in
          go [] k l
        in
        let evicted = count - t.max_partials in
        t.dropped <- t.dropped + evicted;
        Obs.add capacity_c evicted;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit
            (Obs.Trace.Detector_evict { reason = Capacity; count = evicted });
        (take t.max_partials partials, t.max_partials)
      end
      else (partials, count)
    in
    buf.partials <- partials;
    t.count <- count;
    Obs.gauge_set live_g count;
    Obs.gauge_max peak_g count;
    if Obs.Trace.should_emit () then
      Obs.Trace.emit (Obs.Trace.Detector_admit { live = count });
    (match matches with
    | [] -> ()
    | _ ->
        let n = List.length matches in
        Obs.add matches_c n;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit (Obs.Trace.Detector_match { count = n }));
    List.map
      (fun p -> { tuple = p.assigned; tags = List.rev p.p_tags })
      matches
  end

(* The compiled engine: same observable behavior (matches, order, tags,
   counters, trace events), driven by the plan's indexed store. *)
let feed_compiled t store inst =
  let out =
    Plan.step store ~event:inst.event ~timestamp:inst.timestamp ~tag:inst.tag
  in
  (match out.Plan.out_horizon_evicted with
  | 0 -> ()
  | n ->
      t.horizon_evicted <- t.horizon_evicted + n;
      Obs.add horizon_c n;
      if Obs.Trace.should_emit () then
        Obs.Trace.emit
          (Obs.Trace.Detector_evict { reason = Horizon; count = n }));
  if out.Plan.out_irrelevant then begin
    Obs.incr irrelevant_c;
    Obs.gauge_set live_g (Plan.live store);
    if Obs.Trace.should_emit () then
      Obs.Trace.emit (Obs.Trace.Detector_admit { live = Plan.live store });
    []
  end
  else begin
    (match out.Plan.out_capacity_evicted with
    | 0 -> ()
    | n ->
        t.dropped <- t.dropped + n;
        Obs.add capacity_c n;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit
            (Obs.Trace.Detector_evict { reason = Capacity; count = n }));
    let live = Plan.live store in
    Obs.gauge_set live_g live;
    Obs.gauge_max peak_g live;
    if Obs.Trace.should_emit () then
      Obs.Trace.emit (Obs.Trace.Detector_admit { live });
    let matches =
      (* Pruning is conservative; the matcher is the final authority. *)
      List.filter
        (fun (tuple, _) -> Pattern.Matcher.matches_set tuple t.patterns)
        out.Plan.out_matches
    in
    (match matches with
    | [] -> ()
    | _ ->
        let n = List.length matches in
        Obs.add matches_c n;
        if Obs.Trace.should_emit () then
          Obs.Trace.emit (Obs.Trace.Detector_match { count = n }));
    List.map (fun (tuple, tags) -> { tuple; tags = List.rev tags }) matches
  end

let feed t inst =
  if inst.timestamp < t.clock then
    invalid_arg "Detector.feed: timestamps must be non-decreasing";
  t.clock <- inst.timestamp;
  Obs.incr fed_c;
  Obs.Trace.with_trace "detector.feed" @@ fun () ->
  match t.state with
  | Naive_buffer buf -> feed_naive t buf inst
  | Compiled_store store -> feed_compiled t store inst

let feed_all t instances = List.concat_map (feed t) instances
