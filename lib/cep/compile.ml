module Event = Events.Event

let max_matrices = 62

(* Exactly the naive engine's [targets_of] fold, precomputed per instance
   type: the event itself plus every REPEAT alias of that base, in the
   fold's (descending) order — plan extensions must try targets in the
   same order to stay bit-identical. *)
let targets_of required instance_type =
  Event.Set.fold
    (fun e acc ->
      match Event.alias_info e with
      | Some (base, _, _) when Event.equal base instance_type -> e :: acc
      | Some _ -> acc
      | None -> if Event.equal e instance_type then e :: acc else acc)
    required []

let matrix_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun r1 r2 ->
         Array.length r1 = Array.length r2 && Array.for_all2 Int.equal r1 r2)
       a b

let plan ?(max_matrices = max_matrices) ?(on_fallback = fun () -> ())
    patterns =
  let net = Tcn.Encode.pattern_set patterns in
  let required = Pattern.Ast.events_of_set patterns in
  let events = Array.of_list (Event.Set.elements required) in
  let index_of =
    Array.to_seqi events
    |> Seq.fold_left (fun acc (i, e) -> Event.Map.add e i acc) Event.Map.empty
  in
  let target_of_event e =
    {
      Plan.tgt_event = e;
      tgt_index = Event.Map.find e index_of;
      tgt_prereq =
        (match Event.alias_info e with
        | Some (_, _, 1) | None -> -1
        | Some (base, group, index) ->
            Event.Map.find
              (Event.repeat_alias ~base ~group ~index:(index - 1))
              index_of);
    }
  in
  let instance_types =
    Event.Set.fold
      (fun e acc ->
        let ty =
          match Event.alias_info e with Some (base, _, _) -> base | None -> e
        in
        Event.Set.add ty acc)
      required Event.Set.empty
  in
  let transitions =
    Event.Set.fold
      (fun ty acc ->
        match List.map target_of_event (targets_of required ty) with
        | [] -> acc
        | targets ->
            Event.Map.add ty
              {
                Plan.tr_targets = targets;
                tr_fresh =
                  List.filter (fun t -> t.Plan.tgt_prereq < 0) targets;
              }
              acc)
      instance_types Event.Map.empty
  in
  let use_fallback =
    (not (Tcn.Bindings.count_is_exact net.set_bindings))
    || Tcn.Bindings.count net.set_bindings > max_matrices
  in
  let matrices, fallback =
    if use_fallback then
      ( [||],
        Some
          (fun assigned ->
            on_fallback ();
            (Explain.Consistency.check_network
               ~strategy:Explain.Consistency.Pruned ~pinned:assigned net)
              .consistent) )
    else begin
      (* The STN universe must cover the artificial AND^s/AND^e events so
         each binding's matrix reflects the constraints they relay; the
         projection below then keeps the real-event rows only. *)
      let stn_events =
        Event.Set.elements
          (Event.Set.union required
             (Event.Set.union
                (Tcn.Condition.interval_events net.set_intervals)
                (Tcn.Condition.binding_events net.set_bindings)))
      in
      let mats = ref [] in
      Seq.iter
        (fun phi_k ->
          let stn =
            Tcn.Stn.of_intervals ~events:stn_events
              (phi_k @ net.set_intervals)
          in
          if Tcn.Stn.consistent stn then begin
            let m = Tcn.Stn.distance_matrix stn events in
            if not (List.exists (matrix_equal m) !mats) then mats := m :: !mats
          end)
        (Tcn.Bindings.full net.set_bindings);
      (Array.of_list (List.rev !mats), None)
    end
  in
  {
    Plan.events;
    index_of;
    required_count = Array.length events;
    transitions;
    matrices;
    fallback;
  }
