(** Compiling a validated pattern set into a {!Plan} (see ROADMAP item 2:
    automaton-style evaluation in the spirit of CORE / timed-window
    frameworks, with the enumerating detector kept as the oracle).

    Compilation encodes the set once ({!Tcn.Encode.pattern_set}),
    enumerates its bindings, and keeps the minimal-network distance matrix
    of every consistent binding, projected onto the real pattern events
    and deduplicated. When the binding space is larger than
    {!max_matrices}, the plan degrades gracefully: matrices are skipped
    and per-extension feasibility falls back to the naive engine's pinned
    consistency check (still behind the same {!Plan.step} interface). *)

val max_matrices : int
(** Default cap on materialized binding matrices (62, so a partial's
    viable-binding set fits an [int] bitmask). *)

val targets_of : Events.Event.Set.t -> Events.Event.t -> Events.Event.t list
(** The pattern events (the event itself plus every REPEAT alias of that
    base) an instance of the given type may fill, in the engines' shared
    trial order. Shared with the naive engine so both stay in lockstep. *)

val plan :
  ?max_matrices:int ->
  ?on_fallback:(unit -> unit) ->
  Pattern.Ast.t list ->
  Plan.t
(** Compile a validated pattern set. [on_fallback] is invoked on every
    fallback feasibility check (the detector counts them in
    [detector.plan.fallback_checks]). Pass [~max_matrices:0] to force the
    fallback path (the differential tests do). @raise Invalid_argument on
    an invalid pattern set (via the encoder). *)
