(** Compiled evaluation plans for the streaming detector.

    A plan is the query's detection logic precomputed once at
    {!Compile.plan} time, so the per-instance work of {!Detector.feed}
    drops from "re-derive everything from the AST and run a full STN
    consistency check per candidate extension" to table lookups and
    O(assigned) window-distance arithmetic:

    - {e transition tables}: for each instance type, the pattern events
      (including REPEAT aliases) an incoming instance may fill, in the
      exact order the naive engine tries them, with the alias-chain
      prerequisite resolved to an event index;
    - {e binding distance matrices}: one minimal-network (all-pairs
      shortest path) matrix over the real pattern events per consistent
      binding of the encoded TCN. Minimal STNs are decomposable
      (Dechter–Meiri–Pearl), so a partial assignment extends to a full
      match under {e some} binding iff every assigned pair fits one
      matrix — exactly the predicate the naive engine evaluates with
      [Consistency.check_network ~pinned], for at most
      [O(assigned * matrices)] integer comparisons;
    - an {e indexed partial store}: partials bucketed by the instance
      types they can still accept (so extension candidates are found
      without scanning the whole buffer), a queue of same-[earliest]
      buckets for O(evicted) horizon eviction, and an insertion-order
      queue for O(evicted) capacity eviction. Evicted partials are
      tombstoned and compacted away amortized O(1).

    The store replays the naive engine {e bit-identically}: matches,
    match order, tags, live partial counts and both eviction counters are
    equal on any stream (the differential fuzz suite asserts this).
    Window-distance arithmetic sticks to the saturating {!Tcn.Weight}
    operations, mirroring how bounds enter an STN. *)

type target = {
  tgt_event : Events.Event.t;  (** pattern event or REPEAT alias to fill *)
  tgt_index : int;  (** index of [tgt_event] in {!field-events} *)
  tgt_prereq : int;
      (** index of the alias with the preceding REPEAT index, which must
          already be assigned ([alias_ready]); [-1] when always ready *)
}

type transition = {
  tr_targets : target list;
      (** every target an instance of this type may fill, in the naive
          engine's trial order *)
  tr_fresh : target list;
      (** the subset that can start a new partial (prerequisite-free),
          in the same order *)
}

type t = {
  events : Events.Event.t array;  (** real pattern events, sorted *)
  index_of : int Events.Event.Map.t;  (** event -> index in [events] *)
  required_count : int;
  transitions : transition Events.Event.Map.t;
      (** instance type -> transition; absent types are irrelevant *)
  matrices : int array array array;
      (** per consistent binding, deduplicated: [(k).(i).(j)] is the
          tightest upper bound on [t(events.(j)) - t(events.(i))], with
          {!Tcn.Weight.inf} for unbounded *)
  fallback : (Events.Tuple.t -> bool) option;
      (** [Some check] when the binding space was too large to
          materialize ({!Compile.max_matrices}): per-extension
          feasibility falls back to [check] on the extended assignment *)
}

val matrix_count : t -> int

(** {1 The indexed partial store} *)

type store

val create_store : horizon:int -> max_partials:int -> t -> store

val live : store -> int
(** Current number of live (non-evicted) partials. *)

type outcome = {
  out_matches : (Events.Tuple.t * (Events.Event.t * string) list) list;
      (** completed assignments in generation order, tags newest-first;
          {e candidates} — the caller confirms them with
          {!Pattern.Matcher} exactly like the naive engine *)
  out_horizon_evicted : int;
  out_capacity_evicted : int;
  out_irrelevant : bool;
      (** the instance type fills no pattern event (horizon eviction
          still ran) *)
}

val step : store -> event:Events.Event.t -> timestamp:Events.Time.t ->
  tag:string -> outcome
(** Advance the store by one instance. Timestamps must be fed
    non-decreasing (the caller — {!Detector.feed} — enforces this). *)
