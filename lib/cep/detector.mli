(** Streaming pattern detection over an unkeyed event stream.

    Unlike {!Stream} (which groups instances into tuples by an external
    key), the detector consumes a single interleaved stream of event
    instances and finds {e every} combination of instances — one per
    pattern event — that matches the query, in the skip-till-any-match
    style of SASE-like CEP engines. Partial matches are kept in a buffer
    and pruned by:

    - the time horizon: once the stream has advanced past [horizon] time
      units after a partial's earliest instance, the partial can never
      satisfy the root window and is dropped;
    - exact feasibility: a partial is kept only if its observed timestamps
      can be completed into a full match (a pinned consistency check on the
      query's temporal network, Algorithm 1 with prefix pruning);
    - a hard capacity bound (oldest partials evicted first).

    Matching is confirmed with {!Pattern.Matcher} before a match is
    emitted, so emitted matches are exact regardless of pruning.

    {b Bounded Kleene.} Queries may use the parser's
    [REPEAT(E, k)] sugar: the pattern then contains alias events
    [E#g_1 .. E#g_k] (one REPEAT group), and incoming instances of type
    [E] fill the aliases of each group in ascending index order (the
    canonical assignment — complete because a group's copies are totally
    ordered by the desugared SEQ, so each matching instance set is
    reported exactly once). *)

type instance = {
  event : Events.Event.t;
  timestamp : Events.Time.t;
  tag : string;  (** opaque payload identifier carried into matches *)
}

type match_ = {
  tuple : Events.Tuple.t;
  tags : (Events.Event.t * string) list;  (** which instance filled each event *)
}

type engine =
  | Naive
      (** enumerate partial matches straight off the AST, with a full
          pinned consistency check ({!Explain.Consistency.check_network})
          per candidate extension — the reference implementation, kept as
          the differential-testing oracle *)
  | Compiled
      (** evaluate on a compiled {!Plan} (see {!Compile.plan} and
          [docs/DETECTION.md]): precomputed transition tables, per-binding
          window-distance matrices and an indexed partial store.
          Bit-identical matches and counters, much cheaper per event. *)

type t

type template
(** A validated, compiled query with no detector state: the parsed
    patterns, the inferred horizon, the consistency pre-check result and
    (for the {!Compiled} engine) the compiled {!Plan}. Immutable after
    construction, so one template may be shared across domains; each
    {!of_template} call derives an independent detector with fresh partial
    state. Sharded serving keeps one detector {e per partition key} — the
    template makes that O(keys) stores instead of O(keys) compilations. *)

val template :
  ?engine:engine ->
  ?horizon:int ->
  ?max_partials:int ->
  Pattern.Ast.t list ->
  template
(** [engine] defaults to [Compiled]. [horizon] defaults to the largest
    root [WITHIN] bound of the query; it must be given when no pattern has
    one. [max_partials] defaults to 4096. @raise Invalid_argument on an
    invalid or window-less unbounded query, or an inconsistent query. *)

val of_template : template -> t
(** A fresh detector (empty partial buffer, clock reset) sharing the
    template's validated query and compiled plan. *)

val template_horizon : template -> int
(** The horizon the template resolved (given or inferred). *)

val create :
  ?engine:engine -> ?horizon:int -> ?max_partials:int -> Pattern.Ast.t list -> t
(** [of_template (template ...)] — validate and compile the query, then
    build one detector on it. *)

val engine : t -> engine

val feed : t -> instance -> match_ list
(** Advance the stream by one instance (timestamps must be fed in
    non-decreasing order; @raise Invalid_argument otherwise) and return the
    matches completed by it. *)

val feed_all : t -> instance list -> match_ list
(** Convenience fold of {!feed}. *)

val partial_count : t -> int
(** Current size of the partial-match buffer. Horizon-expired partials
    are evicted on {e every} feed (even of an irrelevant event type), so
    this never counts partials that can no longer complete. *)

val dropped : t -> int
(** Partials evicted by the capacity bound so far (0 means the result is
    exhaustive). Alias of {!dropped_capacity}. *)

val dropped_capacity : t -> int
(** Partials evicted because the buffer exceeded [max_partials]; these
    are lost matches. *)

val evicted_horizon : t -> int
(** Partials discarded because the stream advanced past the horizon;
    these could never have completed, so they are {e not} lost matches
    and are accounted separately from {!dropped_capacity}. *)
