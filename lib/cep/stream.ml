module Event = Events.Event
module Tuple = Events.Tuple

type verdict =
  | Pending
  | Matched of Tuple.t
  | Failed of {
      tuple : Tuple.t;
      failure : Pattern.Matcher.failure;
      explanation : Explain.Modification.result option;
    }

module M = Map.Make (String)

let feeds_c = Obs.counter "stream.feeds"
let irrelevant_c = Obs.counter "stream.instances_irrelevant"
let matched_c = Obs.counter "stream.verdict.matched"
let failed_c = Obs.counter "stream.verdict.failed"
let pending_c = Obs.counter "stream.verdict.pending"
let keys_g = Obs.gauge "stream.keys_live"

type t = {
  patterns : Pattern.Ast.t list;
  net : Tcn.Encode.set;
  required : Event.Set.t;
  explain : bool;
  strategy : Explain.Modification.strategy;
  mutable partial : Tuple.t M.t;
}

let create ?(explain = false) ?(strategy = Explain.Modification.Single) patterns =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Stream.create: %a" Pattern.Ast.pp_error e));
  {
    patterns;
    net = Tcn.Encode.pattern_set patterns;
    required = Pattern.Ast.events_of_set patterns;
    explain;
    strategy;
    partial = M.empty;
  }

let required_events t = t.required

let verdict_of t tuple =
  if not (Event.Set.for_all (fun e -> Tuple.mem e tuple) t.required) then Pending
  else
    match Pattern.Matcher.explain_failure tuple t.patterns with
    | None -> Matched tuple
    | Some failure ->
        let explanation =
          if t.explain then
            Explain.Modification.explain_network ~strategy:t.strategy t.net tuple
          else None
        in
        Failed { tuple; failure; explanation }

let feed t ~key event ts =
  Obs.incr feeds_c;
  if not (Event.Set.mem event t.required) then begin
    Obs.incr irrelevant_c;
    Pending
  end
  else
    Obs.Trace.with_trace "stream.feed" @@ fun () ->
    let tuple =
      match M.find_opt key t.partial with Some tu -> tu | None -> Tuple.empty
    in
    let tuple = Tuple.add event ts tuple in
    t.partial <- M.add key tuple t.partial;
    Obs.gauge_max keys_g (M.cardinal t.partial);
    let verdict = verdict_of t tuple in
    Obs.incr
      (match verdict with
      | Matched _ -> matched_c
      | Failed _ -> failed_c
      | Pending -> pending_c);
    if Obs.Trace.should_emit () then
      Obs.Trace.emit
        (Obs.Trace.Stream_verdict
           {
             verdict =
               (match verdict with
               | Matched _ -> "matched"
               | Failed _ -> "failed"
               | Pending -> "pending");
           });
    verdict

let current t ~key =
  match M.find_opt key t.partial with Some tu -> tu | None -> Tuple.empty

let finished t =
  M.fold
    (fun key tuple acc ->
      match verdict_of t tuple with
      | Pending -> acc
      | verdict -> (key, verdict) :: acc)
    t.partial []
  |> List.rev
