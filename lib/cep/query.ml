module Trace = Events.Trace

let answers patterns trace =
  Trace.fold
    (fun id tuple acc ->
      if Pattern.Matcher.matches_set tuple patterns then id :: acc else acc)
    trace []
  |> List.rev

let non_answers patterns trace =
  Trace.fold
    (fun id tuple acc ->
      if Pattern.Matcher.matches_set tuple patterns then acc else id :: acc)
    trace []
  |> List.rev

type accuracy = { precision : float; recall : float; f_measure : float }

module S = Set.Make (String)

let accuracy ~truth ~found =
  let truth = S.of_list truth and found = S.of_list found in
  let inter = float_of_int (S.cardinal (S.inter truth found)) in
  let precision =
    if S.is_empty found then 1.0 else inter /. float_of_int (S.cardinal found)
  in
  let recall =
    if S.is_empty truth then 1.0 else inter /. float_of_int (S.cardinal truth)
  in
  let f_measure =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f_measure }

let pp_accuracy ppf { precision; recall; f_measure } =
  Format.fprintf ppf "p=%.3f r=%.3f f=%.3f" precision recall f_measure

let explain_trace ?strategy ?engine ?solver ?max_cost patterns trace =
  let net = Tcn.Encode.pattern_set patterns in
  let within_budget cost =
    match max_cost with None -> true | Some budget -> cost <= budget
  in
  Trace.map
    (fun _id tuple ->
      if Pattern.Matcher.matches_set tuple patterns then tuple
      else
        match
          Explain.Modification.explain_network ?strategy ?engine ?solver net
            tuple
        with
        | Some { repaired; cost; _ } when within_budget cost -> repaired
        | Some _ | None | (exception Invalid_argument _) -> tuple)
    trace
