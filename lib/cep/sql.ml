module Event = Events.Event
module Tuple = Events.Tuple

type comparison = {
  left : Event.t;
  right : Event.t;
  offset : int;
}

type condition =
  | True
  | False
  | Cmp of comparison
  | All of condition list
  | Any of condition list

let compare_comparison a b =
  let c = Event.compare a.left b.left in
  if c <> 0 then c
  else
    let c = Event.compare a.right b.right in
    if c <> 0 then c else Int.compare a.offset b.offset

let rec compare_condition a b =
  match (a, b) with
  | True, True | False, False -> 0
  | Cmp x, Cmp y -> compare_comparison x y
  | All xs, All ys | Any xs, Any ys -> List.compare compare_condition xs ys
  | True, _ -> -1
  | _, True -> 1
  | False, _ -> -1
  | _, False -> 1
  | Cmp _, _ -> -1
  | _, Cmp _ -> 1
  | All _, _ -> -1
  | _, All _ -> 1

(* Resolve the [0,0] equalities of one grounded binding: every artificial
   event maps to the real event it is pinned to (bindings are listed
   bottom-up, so members resolve transitively). *)
let resolution phi_k =
  List.fold_left
    (fun acc { Tcn.Condition.src; dst; _ } ->
      (* src is the artificial bound event, dst the chosen member *)
      let target =
        match Event.Map.find_opt dst acc with Some r -> r | None -> dst
      in
      Event.Map.add src target acc)
    Event.Map.empty phi_k

let resolve table e =
  match Event.Map.find_opt e table with Some r -> r | None -> e

(* One conjunct: the interval conditions with artificial events substituted
   away. Self-comparisons collapse to true/false. *)
let conjunct_of_binding intervals phi_k =
  let table = resolution phi_k in
  let comparisons =
    List.concat_map
      (fun { Tcn.Condition.src; dst; lo; hi } ->
        let a = resolve table src and b = resolve table dst in
        (* lo <= t(b) - t(a) <= hi *)
        let lower = { left = a; right = b; offset = -lo } in
        let upper =
          match hi with Some hi -> [ { left = b; right = a; offset = hi } ] | None -> []
        in
        (lower :: upper)
        |> List.filter_map (fun c ->
               if Event.equal c.left c.right then
                 if c.offset >= 0 then None (* trivially true *) else Some False
               else Some (Cmp c))
      )
      intervals
  in
  if List.mem False comparisons then False
  else
    match List.sort_uniq compare_condition comparisons with
    | [] -> True
    | [ one ] -> one
    | several -> All several

let of_patterns ?(max_bindings = 4096) patterns =
  (match Pattern.Ast.validate_set patterns with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Sql.of_patterns: %a" Pattern.Ast.pp_error e));
  let net = Tcn.Encode.pattern_set patterns in
  let count = Tcn.Bindings.count net.set_bindings in
  if count > max_bindings then
    invalid_arg
      (Printf.sprintf "Sql.of_patterns: %d bindings exceed the limit %d" count
         max_bindings);
  let events =
    Event.Set.elements
      (Event.Set.union
         (Pattern.Ast.events_of_set patterns)
         (Event.Set.union
            (Tcn.Condition.interval_events net.set_intervals)
            (Tcn.Condition.binding_events net.set_bindings)))
  in
  let disjuncts =
    Tcn.Bindings.full net.set_bindings
    |> Seq.filter_map (fun phi_k ->
           (* drop bindings no tuple can satisfy: they only bloat the SQL *)
           let stn =
             Tcn.Stn.of_intervals ~events (phi_k @ net.set_intervals)
           in
           if not (Tcn.Stn.consistent stn) then None
           else
             match conjunct_of_binding net.set_intervals phi_k with
             | False -> None
             | c -> Some c)
    |> List.of_seq |> List.sort_uniq compare_condition
  in
  match disjuncts with
  | [] -> False
  | _ when List.mem True disjuncts -> True
  | [ one ] -> one
  | several -> Any several

let rec eval condition tuple =
  match condition with
  | True -> true
  | False -> false
  | Cmp { left; right; offset } -> (
      match (Tuple.find_opt tuple left, Tuple.find_opt tuple right) with
      | Some l, Some r -> l <= r + offset
      | _ -> false)
  | All cs -> List.for_all (fun c -> eval c tuple) cs
  | Any cs -> List.exists (fun c -> eval c tuple) cs

let comparison_to_string { left; right; offset } =
  if offset = 0 then Printf.sprintf "%s <= %s" left right
  else if offset > 0 then Printf.sprintf "%s <= %s + %d" left right offset
  else Printf.sprintf "%s + %d <= %s" left (-offset) right

let rec to_string = function
  | True -> "1 = 1"
  | False -> "1 = 0"
  | Cmp c -> comparison_to_string c
  | All cs -> "(" ^ String.concat " AND " (List.map to_string cs) ^ ")"
  | Any cs -> "(" ^ String.concat " OR " (List.map to_string cs) ^ ")"

let select ?(table = "events") patterns =
  Printf.sprintf "SELECT * FROM %s WHERE %s" table (to_string (of_patterns patterns))
