module Event = Events.Event

type value = Int of int | Str of string

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s

type op = Eq | Ne | Lt | Le | Gt | Ge

let op_symbol = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

type expr =
  | Cmp of { event : Event.t; attr : string; op : op; value : value }
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | True

let rec pp ppf = function
  | True -> Format.fprintf ppf "TRUE"
  | Cmp { event; attr; op; value } ->
      Format.fprintf ppf "%s.%s %s %a" event attr (op_symbol op) pp_value value
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "NOT %a" pp a

let rec events = function
  | True -> Event.Set.empty
  | Cmp { event; _ } -> Event.Set.singleton event
  | And (a, b) | Or (a, b) -> Event.Set.union (events a) (events b)
  | Not a -> events a

let compare_values op a b =
  let c =
    match (a, b) with
    | Int x, Int y -> Some (Int.compare x y)
    | Str x, Str y -> Some (String.compare x y)
    | Int _, Str _ | Str _, Int _ -> None
  in
  match (c, op) with
  | None, Ne -> true
  | None, _ -> false
  | Some c, Eq -> c = 0
  | Some c, Ne -> c <> 0
  | Some c, Lt -> c < 0
  | Some c, Le -> c <= 0
  | Some c, Gt -> c > 0
  | Some c, Ge -> c >= 0

let rec eval ~lookup = function
  | True -> true
  | Cmp { event; attr; op; value } -> (
      match lookup event attr with
      | Some actual -> compare_values op actual value
      | None -> ( match op with Ne -> true | _ -> false))
  | And (a, b) -> eval ~lookup a && eval ~lookup b
  | Or (a, b) -> eval ~lookup a || eval ~lookup b
  | Not a -> not (eval ~lookup a)

(* --- parser --- *)

type token =
  | Tident of string
  | Tint of int
  | Tstr of string
  | Tdot
  | Tlparen
  | Trparen
  | Top of op
  | Tand
  | Tor
  | Tnot
  | Ttrue
  | Teof

exception Parse_error of int * string

let fail pos fmt = Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  let push tok pos = out := (tok, pos) :: !out in
  while !i < n do
    let c = input.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Tlparen pos; incr i)
    else if c = ')' then (push Trparen pos; incr i)
    else if c = '.' then (push Tdot pos; incr i)
    else if c = '=' then (push (Top Eq) pos; incr i)
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then (push (Top Ne) pos; i := !i + 2)
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then (push (Top Le) pos; i := !i + 2)
      else if !i + 1 < n && input.[!i + 1] = '>' then (push (Top Ne) pos; i := !i + 2)
      else (push (Top Lt) pos; incr i)
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then (push (Top Ge) pos; i := !i + 2)
      else (push (Top Gt) pos; incr i)
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let j = ref (!i + 1) in
      while !j < n && input.[!j] <> quote do incr j done;
      if !j >= n then fail pos "unterminated string literal";
      push (Tstr (String.sub input (!i + 1) (!j - !i - 1))) pos;
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1]) then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit input.[!j] do incr j done;
      let digits = String.sub input !i (!j - !i) in
      (match int_of_string_opt digits with
      | Some v -> push (Tint v) pos
      | None -> fail pos "integer literal out of range: %s" digits);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let word = String.sub input !i (!j - !i) in
      (match String.uppercase_ascii word with
      | "AND" -> push Tand pos
      | "OR" -> push Tor pos
      | "NOT" -> push Tnot pos
      | "TRUE" -> push Ttrue pos
      | _ -> push (Tident word) pos);
      i := !j
    end
    else fail pos "unexpected character %C" c
  done;
  push Teof n;
  Array.of_list (List.rev !out)

type state = { tokens : (token * int) array; mutable cursor : int }

let peek st = fst st.tokens.(st.cursor)
let pos st = snd st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let rec parse_or st =
  let left = parse_and st in
  if peek st = Tor then begin
    advance st;
    Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_clause st in
  if peek st = Tand then begin
    advance st;
    And (left, parse_and st)
  end
  else left

and parse_clause st =
  match peek st with
  | Tnot ->
      advance st;
      Not (parse_clause st)
  | Ttrue ->
      advance st;
      True
  | Tlparen ->
      advance st;
      let e = parse_or st in
      if peek st <> Trparen then fail (pos st) "expected ')'";
      advance st;
      e
  | Tident event -> (
      advance st;
      if peek st <> Tdot then fail (pos st) "expected '.' after event name";
      advance st;
      match peek st with
      | Tident attr -> (
          advance st;
          match peek st with
          | Top op -> (
              advance st;
              match peek st with
              | Tint n ->
                  advance st;
                  Cmp { event; attr; op; value = Int n }
              | Tstr s ->
                  advance st;
                  Cmp { event; attr; op; value = Str s }
              | _ -> fail (pos st) "expected a literal")
          | _ -> fail (pos st) "expected a comparison operator")
      | _ -> fail (pos st) "expected an attribute name")
  | _ -> fail (pos st) "expected a clause"

let parse input =
  match
    let st = { tokens = tokenize input; cursor = 0 } in
    let e = parse_or st in
    if peek st <> Teof then fail (pos st) "trailing input";
    e
  with
  | e -> Ok e
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)

let parse_exn input =
  match parse input with Ok e -> e | Error msg -> invalid_arg msg
