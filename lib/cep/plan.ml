module Event = Events.Event
module Tuple = Events.Tuple
module Weight = Tcn.Weight
module Checked = Numeric.Checked

type target = {
  tgt_event : Event.t;
  tgt_index : int;
  tgt_prereq : int;
}

type transition = {
  tr_targets : target list;
  tr_fresh : target list;
}

type t = {
  events : Event.t array;
  index_of : int Event.Map.t;
  required_count : int;
  transitions : transition Event.Map.t;
  matrices : int array array array;
  fallback : (Tuple.t -> bool) option;
}

let matrix_count t = Array.length t.matrices

(* --- partials --- *)

(* Partials are immutable snapshots (skip-till-any-match keeps the parent
   alive when an extension is made), so which instance types a partial can
   accept — and therefore its bucket memberships — are fixed at creation.
   [dead] is the only mutable bit: eviction tombstones a partial in place
   and every index skips tombstones until the next compaction. *)
type partial = {
  assigned : Tuple.t;
  idx_ts : (int * Events.Time.t) list;  (* (event index, timestamp) *)
  p_tags : (Event.t * string) list;  (* newest first *)
  earliest : Events.Time.t;
  n_assigned : int;
  viable : int;  (* bitmask over [matrices]; unused in fallback mode *)
  e_bucket : partial list ref;  (* the same-earliest bucket holding it *)
  mutable dead : bool;
}

type store = {
  plan : t;
  horizon : int;
  max_partials : int;
  full_mask : int;
  buckets : partial list ref Event.Map.t;
      (* per instance type, the partials that can still accept it,
         newest first *)
  by_earliest : (Events.Time.t * partial list ref) Queue.t;
      (* buckets keyed by ascending [earliest]; horizon eviction pops
         whole buckets off the front *)
  by_insertion : partial Queue.t;
      (* oldest first; capacity eviction pops off the front *)
  mutable last_bucket : (Events.Time.t * partial list ref) option;
  mutable live_count : int;
  mutable deaths : int;  (* tombstones since the last compaction *)
}

let create_store ~horizon ~max_partials plan =
  {
    plan;
    horizon;
    max_partials;
    full_mask =
      (match plan.fallback with
      | Some _ -> 0
      | None -> (1 lsl Array.length plan.matrices) - 1);
    buckets = Event.Map.map (fun _ -> ref []) plan.transitions;
    by_earliest = Queue.create ();
    by_insertion = Queue.create ();
    last_bucket = None;
    live_count = 0;
    deaths = 0;
  }

let live s = s.live_count

type outcome = {
  out_matches : (Tuple.t * (Event.t * string) list) list;
  out_horizon_evicted : int;
  out_capacity_evicted : int;
  out_irrelevant : bool;
}

(* Saturating t(j) - t(i), clamped into [-inf, inf] exactly like a bound
   entering an STN — so the comparison against a minimal-network entry
   matches what the naive engine's pinned consistency check would see. *)
let diff a b = Weight.clamp (Weight.sat_add a (Weight.neg b))

(* Would assigning [events.(j) := ts] fit matrix [m] given the already
   assigned (index, timestamp) pairs? By decomposability, pairwise bounds
   against the assigned events are exact. *)
let fits m idx_ts j ts =
  List.for_all
    (fun (i, ti) ->
      let d = diff ts ti in
      d <= m.(i).(j) && Weight.neg d <= m.(j).(i))
    idx_ts

(* Matrices from [mask] that also admit the new assignment. *)
let refine_mask plan mask idx_ts j ts =
  let out = ref 0 in
  Array.iteri
    (fun k m ->
      if mask land (1 lsl k) <> 0 && fits m idx_ts j ts then
        out := !out lor (1 lsl k))
    plan.matrices;
  !out

(* Which instance types can extend this assignment: type [ty] is accepted
   iff some target of [ty] is unassigned with its prerequisite met. Fixed
   for the partial's lifetime (the assignment is immutable). *)
let accepts plan assigned tr =
  List.exists
    (fun tgt ->
      (not (Tuple.mem tgt.tgt_event assigned))
      && (tgt.tgt_prereq < 0
         || Tuple.mem plan.events.(tgt.tgt_prereq) assigned))
    tr.tr_targets

let tombstone s p =
  p.dead <- true;
  s.live_count <- s.live_count - 1;
  s.deaths <- s.deaths + 1

(* Rebuild every index without tombstones. Triggered once the tombstone
   count exceeds max(64, live), so the O(live + dead) rebuild is paid at
   most once per O(live + dead) evictions — amortized O(1) per death. *)
let compact s =
  let alive = Queue.create () in
  Queue.iter (fun p -> if not p.dead then Queue.push p alive) s.by_insertion;
  Queue.clear s.by_insertion;
  Queue.transfer alive s.by_insertion;
  Event.Map.iter
    (fun _ b -> b := List.filter (fun p -> not p.dead) !b)
    s.buckets;
  let kept = Queue.create () in
  Queue.iter
    (fun (e, b) ->
      b := List.filter (fun p -> not p.dead) !b;
      if not (!b = []) then Queue.push (e, b) kept)
    s.by_earliest;
  Queue.clear s.by_earliest;
  Queue.transfer kept s.by_earliest;
  (* a dropped empty bucket must never be resurrected by key reuse *)
  s.last_bucket <- None;
  s.deaths <- 0

let maybe_compact s =
  let threshold = if s.live_count > 64 then s.live_count else 64 in
  if s.deaths > threshold then compact s

(* The same-earliest bucket for a fresh partial born at [ts]. Fresh
   partials' [earliest] is non-decreasing across feeds, so reusing the
   newest bucket (or pushing a new one) keeps the queue sorted. *)
let earliest_bucket s ts =
  match s.last_bucket with
  | Some (t0, b) when t0 = ts -> b
  | _ ->
      let b = ref [] in
      Queue.push (ts, b) s.by_earliest;
      s.last_bucket <- Some (ts, b);
      b

(* Register a newly created partial in every index. Callers insert the
   batch of one feed oldest-first, so each bucket stays newest-first and
   the insertion queue stays oldest-first — the exact order the naive
   engine's [keep @ fresh @ alive] list encodes. *)
let insert s p =
  Queue.push p s.by_insertion;
  p.e_bucket := p :: !(p.e_bucket);
  Event.Map.iter
    (fun ty b ->
      let tr = Event.Map.find ty s.plan.transitions in
      if accepts s.plan p.assigned tr then b := p :: !b)
    s.buckets

let step s ~event ~timestamp ~tag =
  (* Horizon eviction pops whole expired buckets: every partial in a
     bucket shares its [earliest], so the work is O(evicted), not
     O(live). Runs on every feed, irrelevant instance types included. *)
  let horizon_evicted = ref 0 in
  let expired e0 =
    (* mirrors the naive `timestamp - earliest <= horizon` cut, without
       the wrap *)
    Weight.sat_add timestamp (Weight.neg e0) > s.horizon
  in
  let rec evict_horizon () =
    match Queue.peek_opt s.by_earliest with
    | Some (e0, bucket) when expired e0 ->
        ignore (Queue.pop s.by_earliest);
        List.iter
          (fun p ->
            if not p.dead then begin
              tombstone s p;
              incr horizon_evicted
            end)
          !bucket;
        bucket := [];
        evict_horizon ()
    | _ -> ()
  in
  evict_horizon ();
  match Event.Map.find_opt event s.plan.transitions with
  | None ->
      maybe_compact s;
      {
        out_matches = [];
        out_horizon_evicted = !horizon_evicted;
        out_capacity_evicted = 0;
        out_irrelevant = true;
      }
  | Some tr ->
      let plan = s.plan in
      (* Snapshot the bucket before inserting this feed's partials: only
         pre-existing partials are extension candidates, and the list is
         newest-first — the order the naive engine scans its buffer. *)
      let candidates = !(Event.Map.find event s.buckets) in
      let extend p tgt =
        if
          Tuple.mem tgt.tgt_event p.assigned
          || (tgt.tgt_prereq >= 0
             && not (Tuple.mem plan.events.(tgt.tgt_prereq) p.assigned))
        then None
        else
          let make viable =
            Some
              {
                assigned = Tuple.add tgt.tgt_event timestamp p.assigned;
                idx_ts = (tgt.tgt_index, timestamp) :: p.idx_ts;
                p_tags = (tgt.tgt_event, tag) :: p.p_tags;
                (* the clock never runs backwards, so the parent's
                   earliest is inherited (and with it its bucket) *)
                earliest = p.earliest;
                n_assigned = p.n_assigned + 1;
                viable;
                e_bucket = p.e_bucket;
                dead = false;
              }
          in
          match plan.fallback with
          | Some check ->
              if check (Tuple.add tgt.tgt_event timestamp p.assigned) then
                make 0
              else None
          | None ->
              let viable =
                refine_mask plan p.viable p.idx_ts tgt.tgt_index timestamp
              in
              if viable = 0 then None else make viable
      in
      let extensions = ref [] in
      List.iter
        (fun p ->
          if not p.dead then
            List.iter
              (fun tgt ->
                match extend p tgt with
                | Some ext -> extensions := ext :: !extensions
                | None -> ())
              tr.tr_targets)
        candidates;
      let extensions = List.rev !extensions (* generation order *) in
      let matches, keep =
        List.partition (fun p -> p.n_assigned = plan.required_count) extensions
      in
      let fresh =
        (* like the naive engine, fresh singletons skip the feasibility
           check (a single event always fits some binding matrix) *)
        List.filter_map
          (fun tgt ->
            if tgt.tgt_prereq >= 0 then None
            else
              Some
                {
                  assigned = Tuple.add tgt.tgt_event timestamp Tuple.empty;
                  idx_ts = [ (tgt.tgt_index, timestamp) ];
                  p_tags = [ (tgt.tgt_event, tag) ];
                  earliest = timestamp;
                  n_assigned = 1;
                  viable = s.full_mask;
                  e_bucket = earliest_bucket s timestamp;
                  dead = false;
                })
          tr.tr_fresh
      in
      (* naive buffer order is [keep @ fresh @ alive]; insert oldest
         first, so: fresh (reversed), then keep (reversed) *)
      List.iter (insert s) (List.rev fresh);
      List.iter (insert s) (List.rev keep);
      s.live_count <-
        Checked.add s.live_count
          (Checked.add (List.length fresh) (List.length keep));
      let capacity_evicted = ref 0 in
      while s.live_count > s.max_partials do
        (* oldest live partial first; popped tombstones cost nothing *)
        let p = Queue.pop s.by_insertion in
        if not p.dead then begin
          tombstone s p;
          incr capacity_evicted
        end
      done;
      maybe_compact s;
      {
        out_matches =
          List.map (fun p -> (p.assigned, p.p_tags)) matches;
        out_horizon_evicted = !horizon_evicted;
        out_capacity_evicted = !capacity_evicted;
        out_irrelevant = false;
      }
